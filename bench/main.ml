(* Benchmark harness.

   Part 1 — Bechamel micro-benchmarks: one Test.make per figure/experiment
   kernel (the simulation that regenerates it) plus the core DHT operations,
   so regressions in any reproduction path are visible as timings.

   Part 2 — BENCH_runtime.json: a machine-readable snapshot of the snode
   runtime (host ops/s, simulated messages/bytes, latency and hop
   quantiles from the telemetry histograms).

   Part 3 — figure regeneration: prints the series of every paper figure
   (4-9) and the section-4.1.1 claims at a reduced number of runs, in the
   same rows the paper reports. `bin/dht_sim.exe` produces the full
   100-run versions. *)

open Bechamel
open Toolkit
open Dht_core
module Figures = Dht_experiments.Figures
module Extensions = Dht_experiments.Extensions
module Curve = Dht_experiments.Curve
module Sims = Dht_experiments.Sims
module Csim = Dht_protocol.Creation_sim
module Rng = Dht_prng.Rng
module Table = Dht_report.Table
module Registry = Dht_telemetry.Registry
module Histogram = Dht_telemetry.Histogram

let vid i = Vnode_id.make ~snode:i ~vnode:0

(* ------------------------------------------------------------------ *)
(* Part 1: micro-benchmarks                                            *)

let bench_fig4_kernel pair =
  Test.make
    ~name:(Printf.sprintf "fig4: local growth (Pmin,Vmin)=(%d,%d), 128 vnodes" pair pair)
    (Staged.stage (fun () ->
         Sims.local_curve ~pmin:pair ~vmin:pair ~vnodes:128
           ~sample:Local_dht.sigma_qv (Rng.of_int 1)))

let bench_fig6_kernel =
  Test.make ~name:"fig6: local growth Pmin=32 Vmin=8, 128 vnodes"
    (Staged.stage (fun () ->
         Sims.local_curve ~pmin:32 ~vmin:8 ~vnodes:128 ~sample:Local_dht.sigma_qv
           (Rng.of_int 1)))

let bench_fig7_kernel =
  Test.make ~name:"fig7/8: group dynamics sampling, 128 vnodes"
    (Staged.stage (fun () ->
         Sims.local_curves ~pmin:32 ~vmin:32 ~vnodes:128
           ~samples:
             [|
               (fun d -> float_of_int (Local_dht.group_count d));
               Local_dht.sigma_qg;
             |]
           (Rng.of_int 1)))

let bench_fig9_ch_kernel =
  Test.make ~name:"fig9: CH ring growth, 128 nodes x 32 points"
    (Staged.stage (fun () ->
         Sims.ch_curve ~points_per_node:32 ~nodes:128 (Rng.of_int 1)))

let bench_global_kernel =
  Test.make ~name:"global approach growth, 128 vnodes"
    (Staged.stage (fun () ->
         Sims.global_curve ~pmin:32 ~vnodes:128 ~sample:Global_dht.sigma_qv ()))

let bench_creation_op =
  (* Amortized cost of one local-approach vnode creation (without metric
     sampling): grow a fresh 256-vnode DHT per run. *)
  Test.make ~name:"local approach: 256 creations (no sampling)"
    (Staged.stage (fun () ->
         let dht =
           Local_dht.create ~pmin:32 ~vmin:32 ~rng:(Rng.of_int 3) ~first:(vid 0) ()
         in
         for i = 1 to 255 do
           ignore (Local_dht.add_vnode dht ~id:(vid i))
         done))

let bench_lookup =
  let dht =
    Local_dht.create ~pmin:32 ~vmin:32 ~rng:(Rng.of_int 4) ~first:(vid 0) ()
  in
  for i = 1 to 511 do
    ignore (Local_dht.add_vnode dht ~id:(vid i))
  done;
  let space = (Local_dht.params dht).Params.space in
  let rng = Rng.of_int 5 in
  let size = Dht_hashspace.Space.size space in
  Test.make ~name:"lookup: route one hash index (512-vnode DHT)"
    (Staged.stage (fun () -> ignore (Local_dht.lookup dht (Rng.int rng size))))

let bench_protocol_kernel =
  Test.make ~name:"ext-parallel: protocol sim, 64 creations"
    (Staged.stage (fun () ->
         let arrivals =
           Dht_workload.Trace.poisson ~rng:(Rng.of_int 6) ~n:64 ~rate:2000.
         in
         let cfg =
           { (Csim.default_config (Csim.Local_approach { vmin = 16 })) with
             Csim.snodes = 16 }
         in
         ignore (Csim.simulate cfg ~arrivals ~seed:6)))

let bench_removal =
  Test.make ~name:"ext-churn: 64 creations + 32 removals"
    (Staged.stage (fun () ->
         let dht =
           Local_dht.create ~pmin:16 ~vmin:8 ~rng:(Rng.of_int 8) ~first:(vid 0) ()
         in
         for i = 1 to 63 do
           ignore (Local_dht.add_vnode dht ~id:(vid i))
         done;
         for i = 0 to 31 do
           ignore (Local_dht.remove_vnode dht ~id:(vid (2 * i)))
         done))

let bench_snode_runtime =
  Test.make ~name:"ext-distributed: snode runtime, 32 concurrent creations"
    (Staged.stage (fun () ->
         let rt =
           Dht_snode.Runtime.create ~pmin:8 ~approach:(Dht_snode.Runtime.Local { vmin = 4 }) ~snodes:8 ~seed:9 ()
         in
         for i = 1 to 32 do
           Dht_snode.Runtime.create_vnode rt
             ~id:(Vnode_id.make ~snode:(i mod 8) ~vnode:(i / 8))
             ()
         done;
         Dht_snode.Runtime.run rt))

let bench_snode_runtime_faulty =
  Test.make
    ~name:"ext-chaos: snode runtime, 32 creations, 5% drop + 2% dup"
    (Staged.stage (fun () ->
         let faults =
           Dht_snode.Runtime.Fault.create ~drop:0.05 ~duplicate:0.02
             ~jitter:1e-4 ~seed:9 ()
         in
         let rt =
           Dht_snode.Runtime.create ~pmin:8 ~approach:(Dht_snode.Runtime.Local { vmin = 4 }) ~faults ~snodes:8 ~seed:9 ()
         in
         for i = 1 to 32 do
           Dht_snode.Runtime.create_vnode rt
             ~id:(Vnode_id.make ~snode:(i mod 8) ~vnode:(i / 8))
             ()
         done;
         Dht_snode.Runtime.run rt))

let bench_snapshot =
  let dht =
    Local_dht.create ~pmin:32 ~vmin:16 ~rng:(Rng.of_int 10) ~first:(vid 0) ()
  in
  for i = 1 to 255 do
    ignore (Local_dht.add_vnode dht ~id:(vid i))
  done;
  Test.make ~name:"snapshot: save + load a 256-vnode DHT"
    (Staged.stage (fun () ->
         match
           Snapshot.load_local ~rng:(Rng.of_int 11) (Snapshot.save_local dht)
         with
         | Ok _ -> ()
         | Error m -> failwith m))

let bench_quorum_put_get =
  Test.make
    ~name:"ext-replication: 64 quorum puts + gets (rfactor 3, R=W=2)"
    (Staged.stage (fun () ->
         let rt =
           Dht_snode.Runtime.create ~rfactor:3 ~read_quorum:2 ~write_quorum:2
             ~snodes:5 ~seed:11 ()
         in
         for i = 0 to 63 do
           Dht_snode.Runtime.put rt ~via:(i mod 5)
             ~key:("q-" ^ string_of_int i) ~value:"v" ()
         done;
         Dht_snode.Runtime.run rt;
         for i = 0 to 63 do
           Dht_snode.Runtime.get rt ~via:(i mod 5) ~key:("q-" ^ string_of_int i)
             (fun _ -> ())
         done;
         Dht_snode.Runtime.run rt))

let bench_kv_put_get =
  let store =
    Dht_kv.Local_store.create ~pmin:32 ~vmin:16 ~rng:(Rng.of_int 7) ~first:(vid 0) ()
  in
  for i = 1 to 31 do
    ignore (Dht_kv.Local_store.add_vnode store ~id:(vid i))
  done;
  let counter = ref 0 in
  Test.make ~name:"ext-kv: put + get of one key (32-vnode store)"
    (Staged.stage (fun () ->
         incr counter;
         let key = "bench-" ^ string_of_int !counter in
         Dht_kv.Local_store.put store ~key ~value:"v";
         ignore (Dht_kv.Local_store.get store ~key)))

let run_benchmarks () =
  print_endline "== Micro-benchmarks (Bechamel, OLS time/run) ==";
  let tests =
    Test.make_grouped ~name:"dht"
      [
        bench_fig4_kernel 8;
        bench_fig4_kernel 32;
        bench_fig6_kernel;
        bench_fig7_kernel;
        bench_fig9_ch_kernel;
        bench_global_kernel;
        bench_creation_op;
        bench_lookup;
        bench_protocol_kernel;
        bench_removal;
        bench_snode_runtime;
        bench_snode_runtime_faulty;
        bench_snapshot;
        bench_kv_put_get;
        bench_quorum_put_get;
      ]
  in
  let cfg = Benchmark.cfg ~limit:2000 ~quota:(Time.second 0.5) ~kde:None () in
  let raw = Benchmark.all cfg Instance.[ monotonic_clock ] tests in
  let ols =
    Analyze.ols ~r_square:true ~bootstrap:0 ~predictors:[| Measure.run |]
  in
  let results = Analyze.all ols Instance.monotonic_clock raw in
  let rows =
    Hashtbl.fold
      (fun name r acc ->
        let ns =
          match Analyze.OLS.estimates r with Some [ e ] -> e | _ -> nan
        in
        let r2 = Option.value ~default:nan (Analyze.OLS.r_square r) in
        (name, ns, r2) :: acc)
      results []
    |> List.sort (fun (a, _, _) (b, _, _) -> compare a b)
  in
  let table = Table.create ~headers:[ "benchmark"; "time/run"; "r^2" ] in
  List.iter
    (fun (name, ns, r2) ->
      let pretty =
        if ns > 1e9 then Printf.sprintf "%.3f s" (ns /. 1e9)
        else if ns > 1e6 then Printf.sprintf "%.3f ms" (ns /. 1e6)
        else if ns > 1e3 then Printf.sprintf "%.3f us" (ns /. 1e3)
        else Printf.sprintf "%.1f ns" ns
      in
      Table.add_row table [ name; pretty; Printf.sprintf "%.4f" r2 ])
    rows;
  Table.print table

(* ------------------------------------------------------------------ *)
(* Part 2: machine-readable perf snapshot of the snode runtime         *)

(* An instrumented runtime workload (48 creations, 512 puts, 512 gets)
   whose telemetry feeds BENCH_runtime.json: host throughput plus the
   simulated traffic and latency quantiles, so the perf trajectory of the
   message-level runtime is tracked as data, not prose. *)
let emit_runtime_json path =
  let reg = Registry.create () in
  let rt =
    Dht_snode.Runtime.create ~pmin:8
      ~approach:(Dht_snode.Runtime.Local { vmin = 4 })
      ~metrics:reg ~snodes:8 ~seed:2004 ()
  in
  let t0 = Sys.time () in
  for i = 1 to 48 do
    Dht_snode.Runtime.create_vnode rt
      ~id:(Vnode_id.make ~snode:(i mod 8) ~vnode:(i / 8))
      ()
  done;
  Dht_snode.Runtime.run rt;
  for i = 0 to 511 do
    Dht_snode.Runtime.put rt ~key:("bench-" ^ string_of_int i) ~value:"v" ()
  done;
  Dht_snode.Runtime.run rt;
  for i = 0 to 511 do
    Dht_snode.Runtime.get rt ~key:("bench-" ^ string_of_int i) (fun _ -> ())
  done;
  Dht_snode.Runtime.run rt;
  let cpu = Sys.time () -. t0 in
  Dht_snode.Runtime.record_metrics rt reg;
  let ops =
    Dht_snode.Runtime.completed_creations rt
    + Dht_snode.Runtime.completed_puts rt
    + Dht_snode.Runtime.completed_gets rt
  in
  let counter name = Registry.counter_value (Registry.counter reg name) in
  let quantile h p = if Histogram.count h = 0 then 0. else Histogram.quantile h p in
  let lat op p =
    quantile (Registry.histogram reg ~labels:[ ("op", op) ] "runtime.op.latency") p
  in
  let hops = Registry.histogram reg "runtime.route.hops" in
  (* Quorum section: the same put/get volume against a replicated cluster
     (rfactor 3, R = W = 2), so the fan-out cost of quorum coordination is
     tracked alongside the single-copy numbers. Run twice — with the
     default one-quantum linger window (the headline block, what the CI
     perf gate watches), with batching off (the before/after comparison),
     and with causal tracing armed (the observability tax: bigger frames,
     span emission on the hot path) so tracing overhead is tracked as
     data. *)
  let quorum_run ?(causal = false) ~linger () =
    let tbuf = Buffer.create (if causal then 1 lsl 20 else 16) in
    let trace =
      if causal then Dht_telemetry.Trace.(to_buffer Jsonl tbuf)
      else Dht_telemetry.Trace.noop
    in
    let qreg = Registry.create () in
    let qrt =
      Dht_snode.Runtime.create ~pmin:8
        ~approach:(Dht_snode.Runtime.Local { vmin = 4 })
        ~rfactor:3 ~read_quorum:2 ~write_quorum:2 ~linger ~metrics:qreg
        ~trace ~causal ~snodes:8 ~seed:2004 ()
    in
    let qt0 = Sys.time () in
    for i = 1 to 48 do
      Dht_snode.Runtime.create_vnode qrt
        ~id:(Vnode_id.make ~snode:(i mod 8) ~vnode:(i / 8))
        ()
    done;
    Dht_snode.Runtime.run qrt;
    for i = 0 to 511 do
      Dht_snode.Runtime.put qrt ~via:(i mod 8)
        ~key:("bench-" ^ string_of_int i) ~value:"v" ()
    done;
    Dht_snode.Runtime.run qrt;
    for i = 0 to 511 do
      Dht_snode.Runtime.get qrt ~via:(i mod 8)
        ~key:("bench-" ^ string_of_int i) (fun _ -> ())
    done;
    Dht_snode.Runtime.run qrt;
    let qcpu = Sys.time () -. qt0 in
    Dht_snode.Runtime.record_metrics qrt qreg;
    let qops =
      Dht_snode.Runtime.completed_creations qrt
      + Dht_snode.Runtime.completed_puts qrt
      + Dht_snode.Runtime.completed_gets qrt
    in
    Dht_telemetry.Trace.close trace;
    (qreg, qops, qcpu, Dht_telemetry.Trace.events trace)
  in
  let default_linger = Dht_snode.Runtime.Network.(gigabit.base_latency) in
  let qreg, qops, qcpu, _ = quorum_run ~linger:default_linger () in
  let ureg, uops, ucpu, _ = quorum_run ~linger:0. () in
  let treg, tops, tcpu, tevents =
    quorum_run ~causal:true ~linger:default_linger ()
  in
  let qcounter name = Registry.counter_value (Registry.counter qreg name) in
  let ucounter name = Registry.counter_value (Registry.counter ureg name) in
  let tcounter name = Registry.counter_value (Registry.counter treg name) in
  let qlat op p =
    quantile
      (Registry.histogram qreg ~labels:[ ("op", op) ] "runtime.quorum.latency")
      p
  in
  let ulat op p =
    quantile
      (Registry.histogram ureg ~labels:[ ("op", op) ] "runtime.quorum.latency")
      p
  in
  (* Overload section: the chaos scenario's degraded run (backpressure,
     retry budget, adaptive RTO, admission control) at 2x capacity with one
     gray-failed snode — goodput under overload is a tracked perf number,
     not just a pass/fail gate. *)
  let ot0 = Sys.time () in
  let ov = Extensions.overload ~seed:2004 () in
  let ocpu = Sys.time () -. ot0 in
  let phase name f =
    match
      List.find_opt
        (fun (p : Extensions.overload_phase) -> p.Extensions.ph_name = name)
        ov.Extensions.ov_phases
    with
    | Some p -> f p
    | None -> nan
  in
  let goodput name = phase name (fun p -> p.Extensions.ph_goodput) in
  (* Skew section: the active balancer's acceptance run — one seeded
     0.99-Zipf stream over a queueing-capable fabric, balancer off then
     on. The off/on Gini and latency quantiles are tracked as data; the
     CI perf gate reports drift on this block without failing on it
     (placement decisions move these numbers legitimately). *)
  let st0 = Sys.time () in
  let sk = Extensions.skew ~seed:2004 () in
  let scpu = Sys.time () -. st0 in
  (* Routing-scaling section: the O(log N) prefix-routing sweep at
     N = 100 / 1k / 10k snodes — windowed hop percentiles, messages/op
     and cache occupancy/bytes under bounded caches with mid-window
     churn. The 10k point dominates the bench's wall time (cluster
     construction is the cost, not the ops), so BENCH_routing_sizes
     trims the sweep for quick local runs; CI and the committed snapshot
     use the full ladder. *)
  let routing_sizes =
    match Sys.getenv_opt "BENCH_ROUTING_SIZES" with
    | None | Some "" -> [ 100; 1000; 10000 ]
    | Some s ->
        String.split_on_char ',' s
        |> List.filter_map (fun x -> int_of_string_opt (String.trim x))
  in
  let rt0 = Sys.time () in
  let routing =
    List.map
      (fun snodes -> Extensions.routing_scaling ~snodes ~seed:2004 ())
      routing_sizes
  in
  let rtcpu = Sys.time () -. rt0 in
  let routing_json =
    String.concat ",\n"
      (List.map
         (fun (r : Extensions.routing_run) ->
           let module R = Dht_snode.Runtime in
           let probes = r.Extensions.rs_cache.R.rcs_hits + r.Extensions.rs_cache.R.rcs_misses in
           let hit_pct =
             if probes = 0 then 0.
             else
               100. *. float_of_int r.Extensions.rs_cache.R.rcs_hits
               /. float_of_int probes
           in
           Printf.sprintf
             "    \"n%d\": {\"snodes\": %d, \"vnodes\": %d, \"level\": %d, \
              \"route_cap\": %d, \"ops\": %d, \"hops_p50\": %.1f, \
              \"hops_p99\": %.1f, \"hops_max\": %d, \"msgs_per_op\": %.3f, \
              \"cache_entries_max\": %d, \"cache_bytes_max\": %d, \
              \"cache_hit_pct\": %.2f, \"evictions\": %d, \
              \"sigma_pct\": %.3f, \"findings\": %d}"
             r.Extensions.rs_snodes r.Extensions.rs_snodes
             r.Extensions.rs_vnodes r.Extensions.rs_level r.Extensions.rs_cap
             r.Extensions.rs_ops r.Extensions.rs_hops_p50
             r.Extensions.rs_hops_p99 r.Extensions.rs_hops_max
             r.Extensions.rs_msgs_per_op r.Extensions.rs_cache_entries_max
             r.Extensions.rs_cache_bytes_max hit_pct
             r.Extensions.rs_cache.R.rcs_evictions r.Extensions.rs_sigma
             (List.length r.Extensions.rs_findings
             + List.length r.Extensions.rs_linear))
         routing)
  in
  (* Anti-entropy section: reconciliation cost of full-digest vs
     Merkle-descent AE over a converged 2-replica store with a small
     planted divergence. Both replicas are seeded with byte-identical
     cells (same origin stamp), a fixed set of keys is overwritten fresh
     on one side, and anti-entropy rounds run to convergence. Full mode
     ([mt_threshold = max_int]) answers every digest mismatch by shipping
     the whole span; Merkle mode ([mt_threshold = 0]) descends the hash
     tree and ships only the differing cells — the tracked numbers are
     wire bytes (control + cells), messages and rounds-to-convergence.
     The 1M point dominates this section's wall time, so BENCH_AE_KEYS
     trims the ladder for quick local runs; CI gates on the 10k point. *)
  let ae_sizes =
    match Sys.getenv_opt "BENCH_AE_KEYS" with
    | None | Some "" -> [ 10_000; 1_000_000 ]
    | Some s ->
        String.split_on_char ',' s
        |> List.filter_map (fun x -> int_of_string_opt (String.trim x))
  in
  let ae_run ~keys ~diverge ~merkle =
    let module R = Dht_snode.Runtime in
    let rt =
      R.create ~pmin:8
        ~approach:(R.Local { vmin = 4 })
        ~rfactor:2 ~read_quorum:1 ~write_quorum:2
        ~mt_threshold:(if merkle then 0 else max_int)
        ~snodes:2 ~seed:2004 ()
    in
    let at0 = Sys.time () in
    for k = 0 to keys - 1 do
      let key = "ae-" ^ string_of_int k in
      let value = "v" ^ string_of_int k in
      R.plant rt ~snode:0 ~origin:0 ~key ~value ~ts:1e-6 ();
      R.plant rt ~snode:1 ~origin:0 ~key ~value ~ts:1e-6 ()
    done;
    for d = 0 to diverge - 1 do
      let k = d * (keys / diverge) in
      R.plant rt ~snode:0 ~origin:0
        ~key:("ae-" ^ string_of_int k)
        ~value:("fresh-" ^ string_of_int k)
        ~ts:2e-6 ()
    done;
    let rounds = ref 0 in
    while R.replica_divergence rt <> [] && !rounds < 8 do
      incr rounds;
      R.anti_entropy rt;
      R.run rt
    done;
    let acpu = Sys.time () -. at0 in
    let ae_tag tag =
      tag = "repl:digest" || tag = "repl:sync-request" || tag = "repl:sync"
      || tag = "ae-request"
      || (String.length tag >= 3 && String.sub tag 0 3 = "mt:")
    in
    let msgs, total, cells =
      List.fold_left
        (fun (m, t, c) (tag, tm, tb) ->
          if not (ae_tag tag) then (m, t, c)
          else (m + tm, t + tb, if tag = "repl:sync" then c + tb else c))
        (0, 0, 0)
        (R.Network.per_tag (R.network rt))
    in
    let stats = R.ae_stats rt in
    ( !rounds,
      R.replica_divergence rt = [],
      msgs,
      total,
      total - cells,
      cells,
      stats,
      acpu )
  in
  let ae_cpu0 = Sys.time () in
  let ae_points =
    List.map
      (fun keys ->
        let diverge = 64 in
        let full = ae_run ~keys ~diverge ~merkle:false in
        let merkle = ae_run ~keys ~diverge ~merkle:true in
        (keys, diverge, full, merkle))
      ae_sizes
  in
  let ae_cpu = Sys.time () -. ae_cpu0 in
  let ae_json =
    let mode (rounds, converged, msgs, total, control, cells, stats, cpu) =
      let module R = Dht_snode.Runtime in
      Printf.sprintf
        "{\"rounds\": %d, \"converged\": %b, \"messages\": %d, \
         \"bytes_total\": %d, \"bytes_control\": %d, \"bytes_cells\": %d, \
         \"digests\": %d, \"tree_roots\": %d, \"tree_frames\": %d, \
         \"divergent_leaves\": %d, \"cells_shipped\": %d, \
         \"cpu_seconds\": %.6f}"
        rounds converged msgs total control cells stats.R.ae_digests
        stats.R.ae_roots stats.R.ae_frames stats.R.ae_leaves
        stats.R.ae_keys_sent cpu
    in
    String.concat ",\n"
      (List.map
         (fun (keys, diverge, full, merkle) ->
           let total (_, _, _, t, _, _, _, _) = float_of_int t in
           let reduction =
             if total merkle > 0. then total full /. total merkle else 0.
           in
           Printf.sprintf
             "    \"n%d\": {\"keys\": %d, \"divergent\": %d,\n\
             \      \"full\": %s,\n\
             \      \"merkle\": %s,\n\
             \      \"byte_reduction\": %.2f}"
             keys keys diverge (mode full) (mode merkle) reduction)
         ae_points)
  in
  let skrun (x : Extensions.skew_run) =
    Printf.sprintf
      "{\"gini\": %.6f, \"sigma_pct\": %.3f, \"p50\": %.9f, \"p99\": %.9f, \
       \"completed\": %d, \"acked\": %d, \"lost\": %d, \"transfers\": %d, \
       \"findings\": %d}"
      x.Extensions.sk_gini x.Extensions.sk_sigma x.Extensions.sk_p50
      x.Extensions.sk_p99 x.Extensions.sk_completed x.Extensions.sk_acked
      x.Extensions.sk_lost x.Extensions.sk_lb.Dht_snode.Runtime.lbs_transfers
      (List.length x.Extensions.sk_findings
      + List.length x.Extensions.sk_linear)
  in
  let improvement off on = if off > 0. then 100. *. (off -. on) /. off else 0. in
  let oc = open_out path in
  Printf.fprintf oc
    "{\n\
    \  \"benchmark\": \"snode-runtime\",\n\
    \  \"seed\": 2004,\n\
    \  \"snodes\": 8,\n\
    \  \"operations\": %d,\n\
    \  \"cpu_seconds\": %.6f,\n\
    \  \"ops_per_second\": %.1f,\n\
    \  \"messages\": %d,\n\
    \  \"bytes\": %d,\n\
    \  \"put_latency_p50\": %.9f,\n\
    \  \"put_latency_p99\": %.9f,\n\
    \  \"get_latency_p50\": %.9f,\n\
    \  \"get_latency_p99\": %.9f,\n\
    \  \"route_hops_p50\": %.2f,\n\
    \  \"route_hops_p99\": %.2f,\n\
    \  \"quorum\": {\n\
    \    \"rfactor\": 3,\n\
    \    \"read_quorum\": 2,\n\
    \    \"write_quorum\": 2,\n\
    \    \"linger\": %.9f,\n\
    \    \"operations\": %d,\n\
    \    \"cpu_seconds\": %.6f,\n\
    \    \"ops_per_second\": %.1f,\n\
    \    \"messages\": %d,\n\
    \    \"bytes\": %d,\n\
    \    \"batches\": %d,\n\
    \    \"batch_parts\": %d,\n\
    \    \"batch_saved_bytes\": %d,\n\
    \    \"put_latency_p50\": %.9f,\n\
    \    \"put_latency_p99\": %.9f,\n\
    \    \"get_latency_p50\": %.9f,\n\
    \    \"get_latency_p99\": %.9f\n\
    \  },\n\
    \  \"quorum_unbatched\": {\n\
    \    \"rfactor\": 3,\n\
    \    \"read_quorum\": 2,\n\
    \    \"write_quorum\": 2,\n\
    \    \"linger\": 0,\n\
    \    \"operations\": %d,\n\
    \    \"cpu_seconds\": %.6f,\n\
    \    \"ops_per_second\": %.1f,\n\
    \    \"messages\": %d,\n\
    \    \"bytes\": %d,\n\
    \    \"put_latency_p50\": %.9f,\n\
    \    \"put_latency_p99\": %.9f,\n\
    \    \"get_latency_p50\": %.9f,\n\
    \    \"get_latency_p99\": %.9f\n\
    \  },\n\
    \  \"quorum_traced\": {\n\
    \    \"rfactor\": 3,\n\
    \    \"read_quorum\": 2,\n\
    \    \"write_quorum\": 2,\n\
    \    \"causal\": true,\n\
    \    \"operations\": %d,\n\
    \    \"cpu_seconds\": %.6f,\n\
    \    \"ops_per_second\": %.1f,\n\
    \    \"messages\": %d,\n\
    \    \"bytes\": %d,\n\
    \    \"trace_events\": %d,\n\
    \    \"bytes_overhead_pct\": %.2f,\n\
    \    \"host_overhead_pct\": %.2f\n\
    \  },\n\
    \  \"quorum_overload\": {\n\
    \    \"rate\": %.1f,\n\
    \    \"burst_rate\": %.1f,\n\
    \    \"slow_snode\": %d,\n\
    \    \"slow_factor\": %.1f,\n\
    \    \"slo_seconds\": %.4f,\n\
    \    \"cpu_seconds\": %.6f,\n\
    \    \"acked\": %d,\n\
    \    \"lost_acked\": %d,\n\
    \    \"busy\": %d,\n\
    \    \"pending\": %d,\n\
    \    \"audit_ok\": %b,\n\
    \    \"goodput_pre\": %.1f,\n\
    \    \"goodput_burst\": %.1f,\n\
    \    \"goodput_post\": %.1f,\n\
    \    \"recovery_ratio\": %.4f,\n\
    \    \"retransmits_per_op\": %.4f,\n\
    \    \"retransmits_per_op_fixed_rto\": %.4f,\n\
    \    \"sheds\": %d,\n\
    \    \"probes\": %d,\n\
    \    \"backpressured\": %d,\n\
    \    \"ingress_overflows\": %d\n\
    \  },\n\
    \  \"routing_scaling\": {\n\
    \    \"cpu_seconds\": %.6f,\n\
    %s\n\
    \  },\n\
    \  \"anti_entropy\": {\n\
    \    \"replicas\": 2,\n\
    \    \"cpu_seconds\": %.6f,\n\
    %s\n\
    \  },\n\
    \  \"quorum_skewed\": {\n\
    \    \"zipf\": %.2f,\n\
    \    \"keys\": %d,\n\
    \    \"rate\": %.1f,\n\
    \    \"duration\": %.2f,\n\
    \    \"cpu_seconds\": %.6f,\n\
    \    \"off\": %s,\n\
    \    \"on\": %s,\n\
    \    \"gini_improvement_pct\": %.2f,\n\
    \    \"p99_improvement_pct\": %.2f\n\
    \  }\n\
     }\n"
    ops cpu
    (if cpu > 0. then float_of_int ops /. cpu else 0.)
    (counter "net.messages") (counter "net.bytes") (lat "put" 0.5)
    (lat "put" 0.99) (lat "get" 0.5) (lat "get" 0.99) (quantile hops 0.5)
    (quantile hops 0.99) default_linger qops qcpu
    (if qcpu > 0. then float_of_int qops /. qcpu else 0.)
    (qcounter "net.messages") (qcounter "net.bytes") (qcounter "net.batches")
    (qcounter "net.batch.parts")
    (qcounter "net.batch.saved_bytes")
    (qlat "put" 0.5) (qlat "put" 0.99) (qlat "get" 0.5) (qlat "get" 0.99)
    uops ucpu
    (if ucpu > 0. then float_of_int uops /. ucpu else 0.)
    (ucounter "net.messages") (ucounter "net.bytes") (ulat "put" 0.5)
    (ulat "put" 0.99) (ulat "get" 0.5) (ulat "get" 0.99) tops tcpu
    (if tcpu > 0. then float_of_int tops /. tcpu else 0.)
    (tcounter "net.messages") (tcounter "net.bytes") tevents
    (let qb = float_of_int (qcounter "net.bytes") in
     if qb > 0. then
       100. *. (float_of_int (tcounter "net.bytes") -. qb) /. qb
     else 0.)
    (let qrate = if qcpu > 0. then float_of_int qops /. qcpu else 0. in
     let trate = if tcpu > 0. then float_of_int tops /. tcpu else 0. in
     if qrate > 0. then 100. *. (1. -. (trate /. qrate)) else 0.)
    ov.Extensions.ov_rate ov.Extensions.ov_burst_rate
    ov.Extensions.ov_slow_snode ov.Extensions.ov_slow_factor
    ov.Extensions.ov_slo ocpu ov.Extensions.ov_acked
    ov.Extensions.ov_lost_acked ov.Extensions.ov_busy_total
    ov.Extensions.ov_pending ov.Extensions.ov_audit_ok (goodput "pre")
    (goodput "burst") (goodput "post") ov.Extensions.ov_recovery_ratio
    ov.Extensions.ov_retx_per_op ov.Extensions.ov_fixed_retx_per_op
    ov.Extensions.ov_overload.Dht_snode.Runtime.sheds
    ov.Extensions.ov_overload.Dht_snode.Runtime.probes
    ov.Extensions.ov_overload.Dht_snode.Runtime.backpressured
    ov.Extensions.ov_overload.Dht_snode.Runtime.ingress_overflows
    rtcpu routing_json ae_cpu ae_json
    sk.Extensions.sk_zipf sk.Extensions.sk_keys sk.Extensions.sk_rate
    sk.Extensions.sk_duration scpu
    (skrun sk.Extensions.sk_off)
    (skrun sk.Extensions.sk_on)
    (improvement sk.Extensions.sk_off.Extensions.sk_gini
       sk.Extensions.sk_on.Extensions.sk_gini)
    (improvement sk.Extensions.sk_off.Extensions.sk_p99
       sk.Extensions.sk_on.Extensions.sk_p99);
  close_out oc;
  Printf.printf
    "\nwrote %s (%d ops single-copy at %.0f ops/s; %d ops quorum at %.0f \
     ops/s batched, %.0f ops/s unbatched, %.0f ops/s causally traced \
     (%d span events) on the host; overload goodput %.0f -> %.0f -> %.0f \
     acked-in-SLO/s; skew balancer gini %.3f -> %.3f, p99 %.1f -> %.1f ms; \
     routing p99 hops %s; anti-entropy byte reduction %s)\n"
    path ops
    (if cpu > 0. then float_of_int ops /. cpu else 0.)
    qops
    (if qcpu > 0. then float_of_int qops /. qcpu else 0.)
    (if ucpu > 0. then float_of_int uops /. ucpu else 0.)
    (if tcpu > 0. then float_of_int tops /. tcpu else 0.)
    tevents (goodput "pre") (goodput "burst") (goodput "post")
    sk.Extensions.sk_off.Extensions.sk_gini
    sk.Extensions.sk_on.Extensions.sk_gini
    (1e3 *. sk.Extensions.sk_off.Extensions.sk_p99)
    (1e3 *. sk.Extensions.sk_on.Extensions.sk_p99)
    (String.concat ", "
       (List.map
          (fun (r : Extensions.routing_run) ->
            Printf.sprintf "N=%d: %.0f" r.Extensions.rs_snodes
              r.Extensions.rs_hops_p99)
          routing))
    (String.concat ", "
       (List.map
          (fun (keys, _, (_, _, _, ft, _, _, _, _), (_, _, _, mt, _, _, _, _)) ->
            Printf.sprintf "%dk keys: %.1fx" (keys / 1000)
              (if mt > 0 then float_of_int ft /. float_of_int mt else 0.))
          ae_points))

(* ------------------------------------------------------------------ *)
(* Part 3: figure regeneration (reduced runs; dht_sim for full scale)  *)

let checkpoints = [ 128; 256; 512; 768; 1024 ]

let print_curves ~title curves =
  Printf.printf "\n== %s ==\n" title;
  let table =
    Table.create
      ~headers:("V" :: List.map (fun (c : Curve.t) -> c.Curve.label) curves)
  in
  List.iter
    (fun v ->
      let row =
        string_of_int v
        :: List.map
             (fun (c : Curve.t) ->
               if v <= Array.length c.Curve.ys then
                 Printf.sprintf "%.3f" c.Curve.ys.(v - 1)
               else "-")
             curves
      in
      Table.add_row table row)
    checkpoints;
  Table.print table

let runs = 10
let seed = 2004

let () =
  Dht_core.Log.setup_from_env ();
  run_benchmarks ();
  emit_runtime_json "BENCH_runtime.json";

  let fig4 = Figures.fig4 ~runs ~seed () in
  print_curves
    ~title:"Figure 4: sigma(Qv) %, Pmin = Vmin (paper: ~22.5/15/10/7/5 plateaus)"
    fig4;

  let thetas = Figures.fig5 ~runs ~seed () in
  Printf.printf "\n== Figure 5: theta(Vmin), alpha = beta = 0.5 (paper: min at 32) ==\n";
  List.iter (fun (v, t) -> Printf.printf "  Vmin=%-4d theta=%.4f\n" v t) thetas;
  Printf.printf "  theta minimizes at Vmin = %d\n" (Figures.argmin_theta thetas);

  print_curves
    ~title:"Figure 6: sigma(Qv) %, Pmin = 32 (paper: Vmin=512 matches global)"
    (Figures.fig6 ~runs ~seed ());

  let d = Figures.fig7_fig8 ~runs ~seed () in
  print_curves ~title:"Figure 7: number of groups (paper: Greal overshoots Gideal)"
    [ d.Figures.greal; d.Figures.gideal ];
  print_curves ~title:"Figure 8: sigma(Qg) % between groups (paper: spiky, 0-40%)"
    [ d.Figures.sigma_qg ];

  print_curves
    ~title:
      "Figure 9: sigma(Qn) % vs Consistent Hashing (paper: local < CH when Vmin >= 64)"
    (Figures.fig9 ~runs ~seed ());

  (* §4.1.1 claims *)
  Printf.printf "\n== Claim: zone 1 (V <= Vmax) local = global ==\n";
  let local, global = Figures.zone1 ~runs:3 ~seed () in
  let max_diff = ref 0. in
  Array.iteri
    (fun i y -> max_diff := Float.max !max_diff (abs_float (y -. global.Curve.ys.(i))))
    local.Curve.ys;
  Printf.printf "  max |local - global| over V=1..64: %.6f %%\n" !max_diff;

  Printf.printf "\n== Claim: doubling (Pmin,Vmin) shaves ~30%% off the plateau ==\n";
  List.iter
    (fun (label, final, ratio) ->
      Printf.printf "  %-24s final=%6.3f%%  ratio=%.3f\n" label final ratio)
    (Figures.plateau_ratios fig4);

  Printf.printf "\n== Claim: stable out to 8192 vnodes ==\n";
  let curve, slope = Figures.stability ~runs:2 ~vnodes:4096 ~seed () in
  Printf.printf
    "  sigma at V=1024: %.3f%%, at V=4096: %.3f%%, tail slope %.4f %%/1000v\n"
    (Curve.at_x curve 1024.) (Curve.last curve) slope;

  (* Extension experiments *)
  Printf.printf "\n== Extension: creation protocol under load (512 creations @1000/s) ==\n";
  let rows = Extensions.parallel ~seed () in
  List.iter
    (fun { Extensions.label; result = r } ->
      Printf.printf
        "  %-16s makespan %6.3fs  mean-lat %7.2fms  msgs %7d  conc %3d\n" label
        r.Csim.makespan
        (1000. *. Csim.mean_latency r)
        r.Csim.messages r.Csim.max_concurrent)
    rows;

  Printf.printf "\n== Extension: heterogeneous enrollment ==\n";
  let h = Extensions.hetero ~seed () in
  Printf.printf "  max relative quota error %.3f, rms %.3f\n"
    h.Extensions.max_rel_err h.Extensions.rms_rel_err;

  Printf.printf "\n== Extension: data plane (100k keys, 64 -> 128 vnodes) ==\n";
  let k = Extensions.kvload ~seed () in
  Printf.printf
    "  load sigma %.2f%% -> %.2f%% (quota sigma %.2f%%), migrated %d, lost %d\n"
    k.Extensions.load_sigma_before k.Extensions.load_sigma_after
    k.Extensions.quota_sigma_after k.Extensions.migrations k.Extensions.lost;

  Printf.printf "\n== Extension: churn (joins + leaves) ==\n";
  let c = Extensions.churn ~seed () in
  Printf.printf
    "  %d joins, %d leaves (%d blocked by the L2 floor), %d vnodes left;\n"
    c.Extensions.joins c.Extensions.leaves c.Extensions.blocked_leaves
    c.Extensions.final_vnodes;
  Printf.printf "  sigma(Qv) max %.2f%%, keys lost %d, audit failures %d\n"
    (Array.fold_left Float.max 0. c.Extensions.sigma_qv_curve)
    c.Extensions.churn_keys_lost c.Extensions.audit_failures;

  Printf.printf "\n== Ablation: victim selection (section 3.6) ==\n";
  let a = Extensions.ablation_selection ~runs:10 ~seed () in
  Printf.printf
    "  sigma(Qv): quota lookup %.2f%% vs uniform group %.2f%%\n"
    a.Extensions.quota_sigma_qv a.Extensions.uniform_sigma_qv;

  Printf.printf "\n== Extension: access-aware fine-grain balancing (section 6) ==\n";
  let hs = Extensions.hotspot ~seed () in
  Printf.printf
    "  access sigma %.2f%% -> %.2f%% after %d swaps (keys lost %d)\n"
    hs.Extensions.access_sigma_before hs.Extensions.access_sigma_after
    hs.Extensions.partitions_moved hs.Extensions.hotspot_keys_lost;

  Printf.printf "\n== Extension: heterogeneous quota tracking vs weighted CH ==\n";
  let hc = Extensions.hetero_compare ~seed () in
  Printf.printf "  rms |quota/share - 1|: local %.3f vs weighted CH %.3f\n"
    hc.Extensions.local_rms_err hc.Extensions.ch_rms_err;

  Printf.printf "\n== Extension: distributed snode runtime ==\n";
  let d = Extensions.distributed ~seed () in
  Printf.printf
    "  sigma(Qv) %.2f%% (oracle %.2f%%), %d msgs, %d retries, keys wrong %d, audit %s\n"
    d.Extensions.dist_sigma_qv d.Extensions.oracle_sigma_qv
    d.Extensions.dist_messages d.Extensions.dist_retries
    d.Extensions.dist_keys_wrong
    (if d.Extensions.dist_audit_ok then "ok" else "FAILED");

  Printf.printf "\n== Extension: multi-DHT coexistence with external load ==\n";
  let cx = Extensions.coexist ~seed () in
  List.iteri
    (fun i name ->
      Printf.printf "  %s: rms err %.3f (idle) -> %.3f (loaded) -> %.3f (retargeted)\n"
        name
        (List.nth cx.Extensions.error_before i)
        (List.nth cx.Extensions.error_after_load i)
        (List.nth cx.Extensions.error_after_retarget i))
    cx.Extensions.dht_names
