(* Experiment driver: regenerates every figure of the paper and the
   extension experiments. `dht_sim --help` lists the commands. *)

open Cmdliner
module Figures = Dht_experiments.Figures
module Extensions = Dht_experiments.Extensions
module Curve = Dht_experiments.Curve
module Chart = Dht_report.Ascii_chart
module Table = Dht_report.Table
module Csv = Dht_report.Csv
module Csim = Dht_protocol.Creation_sim
module Registry = Dht_telemetry.Registry
module Trace = Dht_telemetry.Trace

(* ------------------------------------------------------------------ *)
(* Common options                                                      *)

let runs_arg default =
  let doc = "Number of independent runs to average." in
  Arg.(value & opt int default & info [ "runs" ] ~docv:"N" ~doc)

let seed_arg =
  let doc = "Master random seed (results are reproducible per seed)." in
  Arg.(value & opt int 2004 & info [ "seed" ] ~docv:"SEED" ~doc)

let vnodes_arg default =
  let doc = "Number of vnodes (or nodes) to create." in
  Arg.(value & opt int default & info [ "vnodes" ] ~docv:"V" ~doc)

let rfactor_arg default =
  let doc = "Replicas per partition (1 disables replication)." in
  Arg.(value & opt int default & info [ "rfactor" ] ~docv:"N" ~doc)

let read_quorum_arg default =
  let doc = "Replica replies required before a get is answered." in
  Arg.(value & opt int default & info [ "read-quorum" ] ~docv:"R" ~doc)

let write_quorum_arg default =
  let doc = "Replica acks required before a put is acknowledged." in
  Arg.(value & opt int default & info [ "write-quorum" ] ~docv:"W" ~doc)

(* One network-latency quantum on the default gigabit link: traffic to one
   destination coalesces for at most one hop worth of latency. *)
let default_linger = Dht_event_sim.Network.gigabit.Dht_event_sim.Network.base_latency

let linger_arg =
  let doc =
    "Transmission-batching window (virtual seconds): messages toward one \
     destination coalesce into a single envelope for at most this long. 0 \
     disables batching and reproduces the pre-batching message flow \
     byte-for-byte. Default: one network-latency quantum (50 µs)."
  in
  Arg.(value & opt float default_linger & info [ "linger" ] ~docv:"S" ~doc)

let csv_arg =
  let doc = "Also write the series to $(docv)." in
  Arg.(value & opt (some string) None & info [ "csv" ] ~docv:"FILE" ~doc)

let no_chart_arg =
  let doc = "Suppress the ASCII chart (print only the summary table)." in
  Arg.(value & flag & info [ "no-chart" ] ~doc)

(* ------------------------------------------------------------------ *)
(* Telemetry options (available on every subcommand)                   *)

(* A per-invocation metrics registry and trace sink, built from --metrics,
   --metrics-csv and --trace. Commands that drive an engine feed both;
   the rest still accept the flags and report an empty registry, so the
   interface is uniform across subcommands. *)
type telemetry = {
  tel_reg : Registry.t;
  tel_trace : Trace.t;
  tel_show : bool;
  tel_csv : string option;
  tel_trace_path : string option;
  tel_causal : bool;
}

let make_telemetry show csv trace_path trace_limit causal =
  let tel_trace =
    match trace_path with
    | None -> Trace.noop
    | Some path ->
        Trace.to_channel ?limit:trace_limit (Trace.format_of_path path)
          (open_out path)
  in
  {
    tel_reg = Registry.create ();
    tel_trace;
    tel_show = show || csv <> None;
    tel_csv = csv;
    tel_trace_path = trace_path;
    tel_causal = causal;
  }

(* Print/write/close whatever telemetry the command produced. Runs before
   any failure [exit] so trace files are always valid JSON. *)
let finish_telemetry tel =
  Trace.close tel.tel_trace;
  if tel.tel_trace_path <> None then
    Registry.inc
      (Registry.counter tel.tel_reg "trace_dropped_total")
      (Trace.dropped tel.tel_trace);
  Option.iter
    (fun path ->
      Printf.printf "wrote %s (%d trace events%s)\n" path
        (Trace.events tel.tel_trace)
        (match Trace.dropped tel.tel_trace with
        | 0 -> ""
        | n -> Printf.sprintf ", %d dropped by --trace-limit" n))
    tel.tel_trace_path;
  if tel.tel_show then begin
    print_endline "== telemetry ==";
    if Registry.is_empty tel.tel_reg then
      print_endline "(this command registered no instruments)"
    else Table.print (Registry.to_table tel.tel_reg)
  end;
  Option.iter
    (fun path ->
      Csv.write ~path ~header:Registry.csv_header (Registry.csv_rows tel.tel_reg);
      Printf.printf "wrote %s\n" path)
    tel.tel_csv

let telemetry_term =
  let show =
    Arg.(value & flag
         & info [ "metrics" ]
             ~doc:"Print the telemetry metrics table after the run.")
  in
  let csv =
    Arg.(value & opt (some string) None
         & info [ "metrics-csv" ] ~docv:"FILE"
             ~doc:"Write the telemetry metrics to $(docv) as CSV.")
  in
  let trace =
    Arg.(value & opt (some string) None
         & info [ "trace" ] ~docv:"FILE"
             ~doc:
               "Record a protocol trace to $(docv): JSON-lines when the \
                name ends in .jsonl, Chrome trace-event format (open at \
                ui.perfetto.dev) otherwise. Timestamps are virtual, so the \
                trace is byte-identical across runs with the same seed.")
  in
  let trace_limit =
    Arg.(value & opt (some int) None
         & info [ "trace-limit" ] ~docv:"N"
             ~doc:
               "Cap the trace sink at $(docv) events; the excess is counted \
                by the trace_dropped_total metric instead of written, \
                bounding sink memory and file size.")
  in
  let causal =
    Arg.(value & flag
         & info [ "causal" ]
             ~doc:
               "With --trace, propagate span contexts inside wire frames \
                and emit parent-linked causal events (op.begin/end, \
                msg.send/xmit/recv) for $(b,dht_sim trace analyze). \
                Honoured by the commands that drive the snode runtime (kv, \
                chaos). Frames grow by the 20-byte context, so byte counts \
                shift relative to an untraced run.")
  in
  Term.(const make_telemetry $ show $ csv $ trace $ trace_limit $ causal)

(* ------------------------------------------------------------------ *)
(* Rendering helpers                                                   *)

let to_chart_series (c : Curve.t) =
  Chart.series ~label:c.Curve.label ~xs:c.Curve.xs ~ys:c.Curve.ys

let summary_table ~x_name ~y_name curves =
  let checkpoints =
    match curves with
    | [] -> []
    | c :: _ ->
        let n = Array.length c.Curve.xs in
        List.sort_uniq compare [ n / 8; n / 4; n / 2; (3 * n) / 4; n - 1 ]
        |> List.filter (fun i -> i >= 0 && i < n)
  in
  let headers =
    x_name
    :: List.map (fun (c : Curve.t) -> c.Curve.label ^ " " ^ y_name) curves
  in
  let table = Table.create ~headers in
  List.iter
    (fun i ->
      let row =
        Printf.sprintf "%.0f" (List.hd curves).Curve.xs.(i)
        :: List.map
             (fun (c : Curve.t) -> Printf.sprintf "%.3f" c.Curve.ys.(i))
             curves
      in
      Table.add_row table row)
    checkpoints;
  table

let emit ?(y_label = "sigma(Qv) %") ?(x_label = "overall number of vnodes")
    ~title ~csv ~no_chart curves =
  Printf.printf "== %s ==\n" title;
  if not no_chart then
    Chart.print ~x_label ~y_label (List.map to_chart_series curves);
  Table.print (summary_table ~x_name:"V" ~y_name:"" curves);
  Option.iter
    (fun path ->
      let header =
        "x" :: List.map (fun (c : Curve.t) -> c.Curve.label) curves
      in
      Csv.write_columns ~path ~header
        ((List.hd curves).Curve.xs :: List.map (fun c -> c.Curve.ys) curves);
      Printf.printf "wrote %s\n" path)
    csv

(* ------------------------------------------------------------------ *)
(* Figure commands                                                     *)

let fig4_cmd =
  let run tel runs vnodes seed csv no_chart =
    let curves = Figures.fig4 ~runs ~vnodes ~seed () in
    emit ~title:"Figure 4: sigma(Qv) when Pmin = Vmin" ~csv ~no_chart curves;
    finish_telemetry tel
  in
  let term =
    Term.(const run $ telemetry_term $ runs_arg 100 $ vnodes_arg 1024
          $ seed_arg $ csv_arg $ no_chart_arg)
  in
  Cmd.v
    (Cmd.info "fig4"
       ~doc:"Quality of the balancement for Pmin = Vmin in {8..128} (figure 4).")
    term

let fig5_cmd =
  let run tel runs vnodes seed alpha =
    let thetas = Figures.fig5 ~runs ~vnodes ~alpha ~seed () in
    Printf.printf "== Figure 5: theta(Vmin), alpha = beta = %.2f ==\n" alpha;
    let table = Table.create ~headers:[ "Vmin"; "theta" ] in
    List.iter
      (fun (v, t) -> Table.add_row table [ string_of_int v; Printf.sprintf "%.4f" t ])
      thetas;
    Table.print table;
    Printf.printf "theta minimizes at Vmin = %d (paper: 32)\n"
      (Figures.argmin_theta thetas);
    finish_telemetry tel
  in
  let alpha =
    Arg.(value & opt float 0.5 & info [ "alpha" ] ~docv:"A"
           ~doc:"Weight of the Vmin term (beta = 1 - alpha).")
  in
  let term =
    Term.(const run $ telemetry_term $ runs_arg 100 $ vnodes_arg 1024
          $ seed_arg $ alpha)
  in
  Cmd.v (Cmd.info "fig5" ~doc:"Parameter-choice functional theta (figure 5).") term

let fig6_cmd =
  let run tel runs vnodes seed csv no_chart =
    let curves = Figures.fig6 ~runs ~vnodes ~seed () in
    emit ~title:"Figure 6: sigma(Qv) when Pmin = 32, Vmin in {8..512}" ~csv
      ~no_chart curves;
    finish_telemetry tel
  in
  let term =
    Term.(const run $ telemetry_term $ runs_arg 100 $ vnodes_arg 1024
          $ seed_arg $ csv_arg $ no_chart_arg)
  in
  Cmd.v
    (Cmd.info "fig6" ~doc:"Degradation of the balancement quality (figure 6).")
    term

let fig78 ~which tel runs vnodes seed csv no_chart =
  let d = Figures.fig7_fig8 ~runs ~vnodes ~seed () in
  (match which with
  | `Fig7 ->
      emit ~title:"Figure 7: evolution of the number of groups"
        ~y_label:"overall number of groups" ~csv ~no_chart
        [ d.Figures.greal; d.Figures.gideal ]
  | `Fig8 ->
      emit ~title:"Figure 8: evolution of sigma(Qg)" ~y_label:"sigma(Qg) %" ~csv
        ~no_chart [ d.Figures.sigma_qg ]);
  finish_telemetry tel

let fig7_cmd =
  let term =
    Term.(const (fig78 ~which:`Fig7) $ telemetry_term $ runs_arg 100
          $ vnodes_arg 1024 $ seed_arg $ csv_arg $ no_chart_arg)
  in
  Cmd.v (Cmd.info "fig7" ~doc:"Greal vs Gideal, Pmin = Vmin = 32 (figure 7).") term

let fig8_cmd =
  let term =
    Term.(const (fig78 ~which:`Fig8) $ telemetry_term $ runs_arg 100
          $ vnodes_arg 1024 $ seed_arg $ csv_arg $ no_chart_arg)
  in
  Cmd.v
    (Cmd.info "fig8" ~doc:"Balancement between groups sigma(Qg) (figure 8).")
    term

let fig9_cmd =
  let run tel runs vnodes seed csv no_chart =
    let curves = Figures.fig9 ~runs ~nodes:vnodes ~seed () in
    emit ~title:"Figure 9: local approach vs Consistent Hashing"
      ~y_label:"sigma(Qn) %" ~x_label:"overall number of cluster nodes" ~csv
      ~no_chart curves;
    finish_telemetry tel
  in
  let term =
    Term.(const run $ telemetry_term $ runs_arg 100 $ vnodes_arg 1024
          $ seed_arg $ csv_arg $ no_chart_arg)
  in
  Cmd.v (Cmd.info "fig9" ~doc:"Comparison with Consistent Hashing (figure 9).") term

(* ------------------------------------------------------------------ *)
(* Claim checks                                                        *)

let zones_cmd =
  let run tel runs seed =
    let local, global = Figures.zone1 ~runs ~seed () in
    Printf.printf
      "== 1st zone (V <= Vmax): local approach vs global approach ==\n";
    let table = Table.create ~headers:[ "V"; "local"; "global"; "diff" ] in
    let n = Array.length local.Curve.ys in
    List.iter
      (fun i ->
        if i < n then
          Table.add_row table
            [
              string_of_int (i + 1);
              Printf.sprintf "%.4f" local.Curve.ys.(i);
              Printf.sprintf "%.4f" global.Curve.ys.(i);
              Printf.sprintf "%.4f" (local.Curve.ys.(i) -. global.Curve.ys.(i));
            ])
      [ 0; 7; 15; 31; 47; 63 ];
    Table.print table;
    finish_telemetry tel
  in
  let term = Term.(const run $ telemetry_term $ runs_arg 100 $ seed_arg) in
  Cmd.v
    (Cmd.info "zones" ~doc:"Check the zone-1 claim: local = global while V <= Vmax.")
    term

let ratios_cmd =
  let run tel runs vnodes seed =
    let curves = Figures.fig4 ~runs ~vnodes ~seed () in
    Printf.printf
      "== Plateau ratios: doubling (Pmin,Vmin) should shave ~30%% ==\n";
    let table = Table.create ~headers:[ "config"; "final sigma %"; "ratio" ] in
    List.iter
      (fun (label, final, ratio) ->
        Table.add_row table
          [ label; Printf.sprintf "%.3f" final; Printf.sprintf "%.3f" ratio ])
      (Figures.plateau_ratios curves);
    Table.print table;
    finish_telemetry tel
  in
  let term =
    Term.(const run $ telemetry_term $ runs_arg 100 $ vnodes_arg 1024 $ seed_arg)
  in
  Cmd.v (Cmd.info "ratios" ~doc:"Check the ~30% improvement-per-doubling claim.") term

let stability_cmd =
  let run tel runs vnodes seed csv no_chart =
    let curve, slope = Figures.stability ~runs ~vnodes ~seed () in
    emit ~title:"Stability out to 8192 vnodes (Pmin = Vmin = 32)" ~csv ~no_chart
      [ curve ];
    Printf.printf "second-half slope: %+.4f %% per 1000 vnodes (stable ~ 0)\n"
      slope;
    finish_telemetry tel
  in
  let term =
    Term.(const run $ telemetry_term $ runs_arg 10 $ vnodes_arg 8192 $ seed_arg
          $ csv_arg $ no_chart_arg)
  in
  Cmd.v (Cmd.info "stability" ~doc:"Check the 8192-vnode stability claim.") term

(* ------------------------------------------------------------------ *)
(* Extension experiments                                               *)

let cost_cmd =
  let run tel runs vnodes seed =
    let rows = Figures.cost ~runs ~vnodes ~seed () in
    Printf.printf
      "== Resource cost of Vmin (section 4.1.2, the other side of theta) ==\n";
    let table =
      Table.create
        ~headers:
          [ "Vmin"; "mean Vg"; "groups"; "LPDR bytes"; "sync snodes";
            "sigma(Qv) %" ]
    in
    List.iter
      (fun (r : Figures.cost_row) ->
        Table.add_row table
          [
            string_of_int r.Figures.vmin;
            Printf.sprintf "%.1f" r.Figures.mean_group_size;
            Printf.sprintf "%.1f" r.Figures.group_count;
            Printf.sprintf "%.0f" r.Figures.lpdr_bytes;
            Printf.sprintf "%.1f" r.Figures.sync_snodes;
            Printf.sprintf "%.3f" r.Figures.final_sigma;
          ])
      rows;
    Table.print table;
    finish_telemetry tel
  in
  let term =
    Term.(const run $ telemetry_term $ runs_arg 20 $ vnodes_arg 1024 $ seed_arg)
  in
  Cmd.v
    (Cmd.info "cost"
       ~doc:"Measure the storage/synchronization cost that grows with Vmin.")
    term

let parallel_cmd =
  let run tel vnodes rate snodes seed =
    let rows = Extensions.parallel ~snodes ~vnodes ~rate ~seed () in
    Printf.printf
      "== Creation protocol: %d creations, Poisson %.0f/s, %d snodes ==\n"
      vnodes rate snodes;
    let table =
      Table.create
        ~headers:
          [
            "approach"; "makespan s"; "mean lat ms"; "p95 lat ms"; "msgs";
            "MB"; "max conc"; "conflicts";
          ]
    in
    List.iter
      (fun { Extensions.label; result = r } ->
        Table.add_row table
          [
            label;
            Printf.sprintf "%.3f" r.Csim.makespan;
            Printf.sprintf "%.2f" (1000. *. Csim.mean_latency r);
            Printf.sprintf "%.2f" (1000. *. Csim.p95_latency r);
            string_of_int r.Csim.messages;
            Printf.sprintf "%.1f" (float_of_int r.Csim.bytes /. 1e6);
            string_of_int r.Csim.max_concurrent;
            string_of_int r.Csim.conflicts;
          ])
      rows;
    Table.print table;
    List.iter
      (fun { Extensions.label; result = r } ->
        List.iter
          (fun (tag, msgs, bytes) ->
            let labels = [ ("approach", label); ("tag", tag) ] in
            Registry.inc (Registry.counter tel.tel_reg ~labels "net.messages")
              msgs;
            Registry.inc (Registry.counter tel.tel_reg ~labels "net.bytes")
              bytes)
          r.Csim.traffic_by_tag)
      rows;
    finish_telemetry tel
  in
  let rate =
    Arg.(value & opt float 1000. & info [ "rate" ] ~docv:"R"
           ~doc:"Poisson arrival rate of creation requests (per second).")
  in
  let snodes =
    Arg.(value & opt int 64 & info [ "snodes" ] ~docv:"S"
           ~doc:"Number of cluster nodes hosting snodes.")
  in
  let term =
    Term.(const run $ telemetry_term $ vnodes_arg 512 $ rate $ snodes $ seed_arg)
  in
  Cmd.v
    (Cmd.info "parallel"
       ~doc:"Quantify the serialization of the global approach (section 3 claim).")
    term

let hetero_cmd =
  let run tel total seed =
    let r = Extensions.hetero ~total_vnodes:total ~seed () in
    Printf.printf "== Heterogeneous enrollment: quota vs capacity share ==\n";
    let table =
      Table.create ~headers:[ "node"; "vnodes"; "ideal share"; "actual quota"; "rel err" ]
    in
    Array.iteri
      (fun i name ->
        Table.add_row table
          [
            Printf.sprintf "%d:%s" i name;
            string_of_int r.Extensions.vnode_counts.(i);
            Printf.sprintf "%.4f" r.Extensions.ideal_shares.(i);
            Printf.sprintf "%.4f" r.Extensions.actual_quotas.(i);
            Printf.sprintf "%.3f"
              (abs_float
                 (r.Extensions.actual_quotas.(i) -. r.Extensions.ideal_shares.(i))
              /. r.Extensions.ideal_shares.(i));
          ])
      r.Extensions.names;
    Table.print table;
    Printf.printf "max relative error %.3f, rms %.3f\n" r.Extensions.max_rel_err
      r.Extensions.rms_rel_err;
    finish_telemetry tel
  in
  let total =
    Arg.(value & opt int 128 & info [ "total-vnodes" ] ~docv:"V"
           ~doc:"Total vnodes apportioned across the cluster.")
  in
  let term = Term.(const run $ telemetry_term $ total $ seed_arg) in
  Cmd.v
    (Cmd.info "hetero" ~doc:"Heterogeneous-cluster enrollment experiment.")
    term

let kvload_cmd =
  let run tel keys zipf seed =
    let r = Extensions.kvload ~keys ~zipf ~seed () in
    Printf.printf "== Data plane: %d %s keys, %d -> %d vnodes ==\n"
      r.Extensions.keys
      (if zipf then "zipf" else "uniform")
      r.Extensions.initial_vnodes r.Extensions.final_vnodes;
    Printf.printf "key-load sigma before growth: %.2f %%\n"
      r.Extensions.load_sigma_before;
    Printf.printf "key-load sigma after growth:  %.2f %%\n"
      r.Extensions.load_sigma_after;
    Printf.printf "quota sigma after growth:     %.2f %%\n"
      r.Extensions.quota_sigma_after;
    Printf.printf "keys migrated: %d, keys lost: %d\n" r.Extensions.migrations
      r.Extensions.lost;
    finish_telemetry tel;
    if r.Extensions.lost > 0 then exit 1
  in
  let keys =
    Arg.(value & opt int 100_000 & info [ "keys" ] ~docv:"K"
           ~doc:"Number of key/value pairs to store.")
  in
  let zipf =
    Arg.(value & flag & info [ "zipf" ] ~doc:"Draw keys from a Zipf popularity law.")
  in
  let term = Term.(const run $ telemetry_term $ keys $ zipf $ seed_arg) in
  Cmd.v (Cmd.info "kvload" ~doc:"Data-plane balance and no-key-loss audit.") term

let churn_cmd =
  let run tel ops leave_fraction seed =
    let r = Extensions.churn ~operations:ops ~leave_fraction ~seed () in
    Printf.printf "== Churn: %d ops (%.0f%% leaves) from 128 vnodes ==\n" ops
      (100. *. leave_fraction);
    Printf.printf "joins %d, leaves %d, blocked leaves %d, final vnodes %d\n"
      r.Extensions.joins r.Extensions.leaves r.Extensions.blocked_leaves
      r.Extensions.final_vnodes;
    let curve = r.Extensions.sigma_qv_curve in
    Printf.printf "sigma(Qv): start %.2f%%, end %.2f%%, max %.2f%%\n" curve.(0)
      curve.(Array.length curve - 1)
      (Array.fold_left Float.max 0. curve);
    Printf.printf "keys lost %d, audit failures %d\n" r.Extensions.churn_keys_lost
      r.Extensions.audit_failures;
    finish_telemetry tel;
    if r.Extensions.churn_keys_lost > 0 || r.Extensions.audit_failures > 0 then
      exit 1
  in
  let ops =
    Arg.(value & opt int 400 & info [ "ops" ] ~docv:"N"
           ~doc:"Number of join/leave operations.")
  in
  let leave =
    Arg.(value & opt float 0.4 & info [ "leave-fraction" ] ~docv:"F"
           ~doc:"Probability that an operation is a leave.")
  in
  let term = Term.(const run $ telemetry_term $ ops $ leave $ seed_arg) in
  Cmd.v
    (Cmd.info "churn" ~doc:"Dynamic joins and leaves with data and invariant audits.")
    term

let ablation_cmd =
  let run tel runs vnodes seed =
    let r = Extensions.ablation_selection ~runs ~vnodes ~seed () in
    Printf.printf
      "== Ablation: victim selection (quota-proportional lookup vs uniform group) ==\n";
    let table = Table.create ~headers:[ "selection"; "sigma(Qv) %"; "sigma(Qg) %" ] in
    Table.add_row table
      [ "quota lookup (paper)";
        Printf.sprintf "%.3f" r.Extensions.quota_sigma_qv;
        Printf.sprintf "%.3f" r.Extensions.quota_sigma_qg ];
    Table.add_row table
      [ "uniform group";
        Printf.sprintf "%.3f" r.Extensions.uniform_sigma_qv;
        Printf.sprintf "%.3f" r.Extensions.uniform_sigma_qg ];
    Table.print table;
    finish_telemetry tel
  in
  let term =
    Term.(const run $ telemetry_term $ runs_arg 20 $ vnodes_arg 512 $ seed_arg)
  in
  Cmd.v
    (Cmd.info "ablation"
       ~doc:"Quantify the section-3.6 victim-selection design choice.")
    term

let hotspot_cmd =
  let run tel accesses seed =
    let r = Extensions.hotspot ~accesses ~seed () in
    Printf.printf "== Access-aware fine-grain balancing (section-6 future work) ==\n";
    Printf.printf "%d zipf accesses: per-vnode access sigma %.2f%% -> %.2f%% (%d swaps, %d keys lost)\n"
      r.Extensions.accesses r.Extensions.access_sigma_before
      r.Extensions.access_sigma_after r.Extensions.partitions_moved
      r.Extensions.hotspot_keys_lost;
    finish_telemetry tel;
    if r.Extensions.hotspot_keys_lost > 0 then exit 1
  in
  let accesses =
    Arg.(value & opt int 200_000 & info [ "accesses" ] ~docv:"N"
           ~doc:"Number of zipf-distributed reads to replay.")
  in
  let term = Term.(const run $ telemetry_term $ accesses $ seed_arg) in
  Cmd.v
    (Cmd.info "hotspot" ~doc:"Access-aware partition swapping under zipf reads.")
    term

let hetero_compare_cmd =
  let run tel runs seed =
    let r = Extensions.hetero_compare ~runs ~seed () in
    Printf.printf
      "== Heterogeneous quota tracking: local enrollment vs weighted CH ==\n";
    let table = Table.create ~headers:[ "model"; "max |q/share-1|"; "rms" ] in
    Table.add_row table
      [ "local approach";
        Printf.sprintf "%.3f" r.Extensions.local_max_err;
        Printf.sprintf "%.3f" r.Extensions.local_rms_err ];
    Table.add_row table
      [ "weighted CH";
        Printf.sprintf "%.3f" r.Extensions.ch_max_err;
        Printf.sprintf "%.3f" r.Extensions.ch_rms_err ];
    Table.print table;
    finish_telemetry tel
  in
  let term = Term.(const run $ telemetry_term $ runs_arg 20 $ seed_arg) in
  Cmd.v
    (Cmd.info "hetero-compare"
       ~doc:"Capacity-share tracking: local enrollment vs points-weighted CH.")
    term

let distributed_cmd =
  let run tel snodes vnodes seed =
    let r =
      Extensions.distributed ~snodes ~vnodes ~metrics:tel.tel_reg
        ~trace:tel.tel_trace ~seed ()
    in
    Printf.printf
      "== Distributed snode runtime: %d vnodes on %d snodes (message-level) ==\n"
      vnodes snodes;
    Printf.printf "sigma(Qv): distributed %.2f%% vs centralized oracle %.2f%%\n"
      r.Extensions.dist_sigma_qv r.Extensions.oracle_sigma_qv;
    Printf.printf
      "traffic: %d messages, %.1f MB; stale-cache retries: %d; makespan %.3fs\n"
      r.Extensions.dist_messages
      (float_of_int r.Extensions.dist_bytes /. 1e6)
      r.Extensions.dist_retries r.Extensions.makespan;
    Printf.printf "keys wrong: %d, audit: %s\n" r.Extensions.dist_keys_wrong
      (if r.Extensions.dist_audit_ok then "ok" else "FAILED");
    Printf.printf
      "same burst, global approach: %d messages (%.1fx), makespan %.3fs (%.1fx), audit %s\n"
      r.Extensions.global_messages
      (float_of_int r.Extensions.global_messages
      /. float_of_int r.Extensions.dist_messages)
      r.Extensions.global_makespan
      (r.Extensions.global_makespan /. r.Extensions.makespan)
      (if r.Extensions.global_audit_ok then "ok" else "FAILED");
    finish_telemetry tel;
    if r.Extensions.dist_keys_wrong > 0 || not r.Extensions.dist_audit_ok
       || not r.Extensions.global_audit_ok then
      exit 1
  in
  let snodes =
    Arg.(value & opt int 16 & info [ "snodes" ] ~docv:"S"
           ~doc:"Number of snodes in the simulated cluster.")
  in
  let term =
    Term.(const run $ telemetry_term $ snodes $ vnodes_arg 128 $ seed_arg)
  in
  Cmd.v
    (Cmd.info "distributed"
       ~doc:"Run the message-level snode runtime and audit its convergence.")
    term

let chaos_cmd =
  (* The --overload variant: sustained over-capacity load plus one
     gray-failed snode, gated on the metastability criteria (no lost acked
     write, bounded queues, post-burst goodput recovery, and the adaptive
     retry path beating the fixed-RTO baseline). *)
  let run_overload tel slow retry_budget seed =
    let r =
      Extensions.overload ~slow_factor:slow ~retry_budget
        ~metrics:tel.tel_reg ~trace:tel.tel_trace ~causal:tel.tel_causal
        ~seed ()
    in
    Printf.printf
      "== Overload: %.0f puts/s, burst %.0f puts/s, snode %d %.0fx slower ==\n"
      r.Extensions.ov_rate r.Extensions.ov_burst_rate
      r.Extensions.ov_slow_snode r.Extensions.ov_slow_factor;
    let table =
      Table.create
        ~headers:
          [ "phase"; "offered"; "acked"; "busy"; "timely";
            "goodput/s"; "throughput/s" ]
    in
    List.iter
      (fun (p : Extensions.overload_phase) ->
        Table.add_row table
          [ p.Extensions.ph_name;
            string_of_int p.Extensions.ph_offered;
            string_of_int p.Extensions.ph_acked;
            string_of_int p.Extensions.ph_busy;
            string_of_int p.Extensions.ph_timely;
            Printf.sprintf "%.0f" p.Extensions.ph_goodput;
            Printf.sprintf "%.0f" p.Extensions.ph_throughput ])
      r.Extensions.ov_phases;
    Table.print table;
    Printf.printf
      "goodput counts acks within %.0f ms of issue; throughput also counts \
       late acks and Busy rejections\n"
      (1000. *. r.Extensions.ov_slo);
    let ov = r.Extensions.ov_overload in
    Printf.printf
      "degradation layer: %d sheds, %d busy rejections, %d backpressured, \
       %d probes past budget, outbox peak %d, ingress peak %d (%d overflows)\n"
      ov.Dht_snode.Runtime.sheds ov.Dht_snode.Runtime.busy_rejections
      ov.Dht_snode.Runtime.backpressured ov.Dht_snode.Runtime.probes
      ov.Dht_snode.Runtime.outbox_peak ov.Dht_snode.Runtime.ingress_peak
      ov.Dht_snode.Runtime.ingress_overflows;
    Printf.printf
      "retransmissions/op: %.4f adaptive+budget vs %.4f fixed-RTO baseline \
       (%s)\n"
      r.Extensions.ov_retx_per_op r.Extensions.ov_fixed_retx_per_op
      (if r.Extensions.ov_retx_per_op < r.Extensions.ov_fixed_retx_per_op
       then "adaptive wins"
       else "ADAPTIVE NOT BETTER");
    Printf.printf
      "acked writes: %d, lost: %d; pending: %d; post/pre goodput: %.2f\n"
      r.Extensions.ov_acked r.Extensions.ov_lost_acked r.Extensions.ov_pending
      r.Extensions.ov_recovery_ratio;
    (* Gray-failure health ranking from the mid-burst reliable-layer
       telemetry: the scorer must name the planted slow snode without being
       told which one it is. *)
    let health = r.Extensions.ov_health in
    let health_table =
      Table.create ~headers:[ "snode"; "health score (1.0 = median)"; "" ]
    in
    List.iter
      (fun (sid, score) ->
        Table.add_row health_table
          [ string_of_int sid;
            Printf.sprintf "%.2f" score;
            (if sid = r.Extensions.ov_slow_snode then "<- planted gray failure"
             else "") ])
      health;
    print_endline "health ranking (worst first, sampled mid-burst):";
    Table.print health_table;
    let health_named =
      match health with
      | (worst, _) :: _ -> worst = r.Extensions.ov_slow_snode
      | [] -> false
    in
    Printf.printf "health scorer: %s\n"
      (if health_named then "named the gray-failed snode"
       else "FAILED to name the gray-failed snode");
    List.iter (Printf.printf "queue audit: %s\n") r.Extensions.ov_queue_audit;
    List.iter
      (Printf.printf "busy audit: %s\n")
      r.Extensions.ov_busy_violations;
    Printf.printf "audit: %s, queue discipline: %s, busy discipline: %s\n"
      (if r.Extensions.ov_audit_ok then "ok" else "FAILED")
      (if r.Extensions.ov_queue_audit = [] then "ok" else "FAILED")
      (if r.Extensions.ov_busy_violations = [] then "ok" else "FAILED");
    finish_telemetry tel;
    if
      r.Extensions.ov_lost_acked > 0
      || r.Extensions.ov_pending > 0
      || (not r.Extensions.ov_audit_ok)
      || r.Extensions.ov_queue_audit <> []
      || r.Extensions.ov_busy_violations <> []
      || r.Extensions.ov_recovery_ratio < 0.9
      || r.Extensions.ov_retx_per_op >= r.Extensions.ov_fixed_retx_per_op
      || not health_named
    then exit 1
  in
  let run tel overload slow retry_budget snodes vnodes keys drop dup jitter
      crashes downtime rfactor read_quorum write_quorum linger route_cap
      seed =
    if overload then run_overload tel slow retry_budget seed
    else begin
    let r =
      Extensions.chaos ~snodes ~vnodes ~keys ~drop ~dup ~jitter ~crashes
        ~downtime ~rfactor ~read_quorum ~write_quorum ~linger ~route_cap
        ~metrics:tel.tel_reg ~trace:tel.tel_trace ~causal:tel.tel_causal
        ~seed ()
    in
    Printf.printf
      "== Chaos: %d vnodes on %d snodes, drop %.1f%%, dup %.1f%%, %d crashes ==\n"
      vnodes snodes (100. *. drop) (100. *. dup) crashes;
    let table = Table.create ~headers:[ ""; "faulty"; "faultless" ] in
    Table.add_row table
      [ "sigma(Qv) %";
        Printf.sprintf "%.2f" r.Extensions.chaos_sigma_qv;
        Printf.sprintf "%.2f" r.Extensions.baseline_sigma_qv ];
    Table.add_row table
      [ "messages";
        string_of_int r.Extensions.chaos_messages;
        string_of_int r.Extensions.baseline_messages ];
    Table.add_row table
      [ "burst makespan s";
        Printf.sprintf "%.3f" r.Extensions.chaos_makespan;
        Printf.sprintf "%.3f" r.Extensions.baseline_makespan ];
    Table.print table;
    let s = r.Extensions.chaos_stats in
    Printf.printf
      "faults injected: %d drops, %d duplicates; recovery: %d timeouts, %d \
       retransmits, %d crashes, %d recoveries\n"
      s.Dht_snode.Runtime.drops s.Dht_snode.Runtime.duplicates
      s.Dht_snode.Runtime.timeouts s.Dht_snode.Runtime.retransmits
      s.Dht_snode.Runtime.crashes s.Dht_snode.Runtime.recoveries;
    if s.Dht_snode.Runtime.recoveries > 0 then
      Printf.printf "recovery downtime: p50 %.3fs, p99 %.3fs\n"
        r.Extensions.chaos_recovery_p50 r.Extensions.chaos_recovery_p99;
    if r.Extensions.chaos_route_cap > 0 then begin
      let rc = r.Extensions.chaos_route in
      Printf.printf
        "routing cache (cap %d/snode): %d hits, %d misses, %d evictions, \
         peak %d entries, %d steward refreshes\n"
        r.Extensions.chaos_route_cap rc.Dht_snode.Runtime.rcs_hits
        rc.Dht_snode.Runtime.rcs_misses rc.Dht_snode.Runtime.rcs_evictions
        rc.Dht_snode.Runtime.rcs_peak rc.Dht_snode.Runtime.rcs_refreshes
    end;
    let tags = Table.create ~headers:[ "message tag"; "msgs"; "bytes" ] in
    List.iter
      (fun (tag, msgs, bytes) ->
        Table.add_row tags [ tag; string_of_int msgs; string_of_int bytes ])
      r.Extensions.chaos_per_tag;
    Table.print tags;
    Printf.printf "keys wrong: %d, operations pending: %d, audit: %s\n"
      r.Extensions.chaos_keys_wrong r.Extensions.chaos_pending
      (if r.Extensions.chaos_audit_ok then "ok" else "FAILED");
    if r.Extensions.chaos_rfactor > 1 then begin
      let rs = r.Extensions.chaos_repl in
      Printf.printf
        "replication rfactor=%d R=%d W=%d: %d acked writes, %d lost (%s)\n"
        r.Extensions.chaos_rfactor r.Extensions.chaos_read_quorum
        r.Extensions.chaos_write_quorum r.Extensions.chaos_acked_writes
        r.Extensions.chaos_lost_acked
        (if r.Extensions.chaos_lost_acked = 0 then "durable" else "DATA LOSS");
      Printf.printf
        "hints stored %d / flushed %d; read repairs %d; anti-entropy %d \
         cells, %d orphans routed home\n"
        rs.Dht_snode.Runtime.hints_stored rs.Dht_snode.Runtime.hints_flushed
        rs.Dht_snode.Runtime.read_repairs rs.Dht_snode.Runtime.sync_cells
        rs.Dht_snode.Runtime.orphans;
      Printf.printf "quorum latency p50: put %.6fs, get %.6fs\n"
        r.Extensions.chaos_qput_p50 r.Extensions.chaos_qget_p50
    end;
    if r.Extensions.chaos_batches > 0 then
      Printf.printf
        "batching (linger %gs): %d envelopes carried %d messages (occupancy \
         p50 %.1f), %d envelope bytes saved\n"
        r.Extensions.chaos_linger r.Extensions.chaos_batches
        r.Extensions.chaos_batched_parts
        r.Extensions.chaos_batch_occupancy_p50
        r.Extensions.chaos_batch_saved_bytes;
    finish_telemetry tel;
    if
      r.Extensions.chaos_keys_wrong > 0
      || r.Extensions.chaos_pending > 0
      || r.Extensions.chaos_lost_acked > 0
      || not r.Extensions.chaos_audit_ok
    then exit 1
    end
  in
  let overload =
    Arg.(value & flag
         & info [ "overload" ]
             ~doc:
               "Run the overload/gray-failure scenario instead: paced \
                quorum writes at capacity, a 2x burst with one slow snode, \
                and the metastability gates (no lost acked write, bounded \
                queues, goodput recovery, adaptive retries beating the \
                fixed-RTO baseline). Exits non-zero if any gate fails.")
  in
  let slow =
    Arg.(value & opt float 100. & info [ "slow" ] ~docv:"F"
           ~doc:
             "Service-time inflation of the gray-failed snode during the \
              overload burst (with --overload).")
  in
  let retry_budget =
    Arg.(value & opt int 3 & info [ "retry-budget" ] ~docv:"N"
           ~doc:
             "Per-message retransmission budget of the degraded run (with \
              --overload); past it the sender falls back to slow probing.")
  in
  let snodes =
    Arg.(value & opt int 12 & info [ "snodes" ] ~docv:"S"
           ~doc:"Number of snodes in the simulated cluster.")
  in
  let keys =
    Arg.(value & opt int 600 & info [ "keys" ] ~docv:"K"
           ~doc:"Number of key/value pairs stored before the burst.")
  in
  let drop =
    Arg.(value & opt float 0.03 & info [ "drop" ] ~docv:"P"
           ~doc:"Per-message drop probability.")
  in
  let dup =
    Arg.(value & opt float 0.015 & info [ "dup" ] ~docv:"P"
           ~doc:"Per-message duplication probability.")
  in
  let jitter =
    Arg.(value & opt float 2e-4 & info [ "jitter" ] ~docv:"S"
           ~doc:"Maximum extra delivery latency (seconds, uniform).")
  in
  let crashes =
    Arg.(value & opt int 2 & info [ "crashes" ] ~docv:"N"
           ~doc:"Snodes crash-stopped (and restarted) mid-burst.")
  in
  let downtime =
    Arg.(value & opt float 0.05 & info [ "downtime" ] ~docv:"S"
           ~doc:"Virtual seconds each crashed snode stays down.")
  in
  let route_cap =
    Arg.(value & opt int 0 & info [ "route-cap" ] ~docv:"E"
           ~doc:
             "Per-snode routing-cache entry bound (0 keeps the legacy \
              unbounded caches): chaos-test bounded prefix routing under \
              the same fault mix as the data plane.")
  in
  let term =
    Term.(const run $ telemetry_term $ overload $ slow $ retry_budget
          $ snodes $ vnodes_arg 40 $ keys $ drop
          $ dup $ jitter $ crashes $ downtime $ rfactor_arg 1
          $ read_quorum_arg 1 $ write_quorum_arg 1 $ linger_arg $ route_cap
          $ seed_arg)
  in
  Cmd.v
    (Cmd.info "chaos"
       ~doc:
         "Fault injection: drops, duplicates, jitter and crash-stops against \
          the reliable snode runtime; verifies full convergence once faults \
          cease. With --rfactor > 1 the run also audits acknowledged-write \
          durability under quorum replication and exits non-zero on any \
          lost acknowledged write. With --overload the command instead runs \
          the overload/gray-failure scenario and its metastability gates.")
    term

let kv_cmd =
  (* The replication quickstart from the README: a small replicated
     cluster loses a snode, keeps serving quorum reads and writes, and
     re-converges the restarted replica via hinted handoff/anti-entropy. *)
  let module Runtime = Dht_snode.Runtime in
  let module Engine = Dht_event_sim.Engine in
  let module Invariants = Dht_check.Invariants in
  let run tel audit snodes rfactor read_quorum write_quorum keys linger seed =
    let faults = Runtime.Fault.create ~seed () in
    let rt =
      Runtime.create ~faults ~rfactor ~read_quorum ~write_quorum ~linger
        ~metrics:tel.tel_reg ~trace:tel.tel_trace ~causal:tel.tel_causal
        ~snodes ~seed ()
    in
    Printf.printf "== KV quickstart: %d snodes, rfactor=%d, R=%d, W=%d ==\n"
      snodes rfactor read_quorum write_quorum;
    (* --audit: run the snode-local invariant battery after every
       balancing commit, and the full snapshot battery at the end. *)
    let commit_audits = ref 0 in
    let commit_failures = ref [] in
    if audit then
      Runtime.set_on_commit rt
        (Some
           (fun ~event:_ ~snode ->
             incr commit_audits;
             let v = Runtime.view rt in
             match
               List.find_opt
                 (fun (s : Runtime.View.snode_view) -> s.sid = snode)
                 v.Runtime.View.snodes
             with
             | None -> ()
             | Some s ->
                 commit_failures :=
                   Invariants.to_strings
                     (Invariants.check_snode ~space:(Runtime.space rt) s)
                   @ !commit_failures));
    let acked = ref 0 in
    for i = 0 to keys - 1 do
      Runtime.put rt ~via:(i mod snodes)
        ~on_done:(fun () -> incr acked)
        ~key:(Printf.sprintf "k%d" i) ~value:(Printf.sprintf "v%d" i) ()
    done;
    Runtime.run rt;
    Printf.printf "stored %d keys (%d acknowledged)\n" keys !acked;
    let victim = snodes - 1 in
    Runtime.crash_snode rt victim;
    Printf.printf "crashed snode %d\n" victim;
    let horizon () = Engine.now (Runtime.engine rt) +. 0.5 in
    let wrong_down = ref 0 and mid_acked = ref 0 in
    for i = 0 to keys - 1 do
      Runtime.get rt ~via:(i mod max 1 victim) ~key:(Printf.sprintf "k%d" i)
        (fun v ->
          if v <> Some (Printf.sprintf "v%d" i) then incr wrong_down)
    done;
    Runtime.put rt ~via:0
      ~on_done:(fun () -> incr mid_acked)
      ~key:"mid-crash" ~value:"accepted" ();
    Runtime.run ~until:(horizon ()) rt;
    Printf.printf
      "with snode %d down: %d/%d reads correct, mid-crash write %s\n" victim
      (keys - !wrong_down) keys
      (if !mid_acked = 1 then "acknowledged" else "NOT acknowledged");
    Runtime.restart_snode rt victim;
    Runtime.run rt;
    Runtime.anti_entropy rt;
    Runtime.run rt;
    let wrong_up = ref 0 in
    for i = 0 to keys - 1 do
      Runtime.get rt ~via:victim ~key:(Printf.sprintf "k%d" i) (fun v ->
          if v <> Some (Printf.sprintf "v%d" i) then incr wrong_up)
    done;
    Runtime.get rt ~via:victim ~key:"mid-crash" (fun v ->
        if v <> Some "accepted" then incr wrong_up);
    Runtime.run rt;
    let s = Runtime.repl_stats rt in
    Printf.printf
      "snode %d restarted: %d/%d reads via it correct; hints stored %d / \
       flushed %d, read repairs %d, anti-entropy %d cells\n"
      victim
      (keys + 1 - !wrong_up)
      (keys + 1) s.Runtime.hints_stored s.Runtime.hints_flushed
      s.Runtime.read_repairs s.Runtime.sync_cells;
    let audit_ok =
      match Runtime.audit rt with
      | Ok () -> true
      | Error es ->
          List.iter print_endline es;
          false
    in
    Printf.printf "audit: %s\n" (if audit_ok then "ok" else "FAILED");
    let battery_ok =
      if not audit then true
      else begin
        Runtime.set_on_commit rt None;
        let final = Invariants.to_strings (Invariants.check_runtime rt) in
        List.iter print_endline (!commit_failures @ final);
        Printf.printf
          "invariant battery: %d per-commit audits, final sweep %s\n"
          !commit_audits
          (if final = [] && !commit_failures = [] then "ok" else "FAILED");
        final = [] && !commit_failures = []
      end
    in
    finish_telemetry tel;
    if
      !acked < keys || !wrong_down > 0 || !mid_acked <> 1 || !wrong_up > 0
      || (not audit_ok) || (not battery_ok)
      || Runtime.pending_operations rt <> 0
    then exit 1
  in
  let audit_flag =
    Arg.(value & flag
         & info [ "audit" ]
             ~doc:
               "Run the paper-invariant battery: the snode-local checks \
                after every balancing commit and the full snapshot battery \
                at the end. Exits non-zero on any finding.")
  in
  let snodes =
    Arg.(value & opt int 3 & info [ "snodes" ] ~docv:"S"
           ~doc:"Number of snodes in the replicated cluster.")
  in
  let keys =
    Arg.(value & opt int 12 & info [ "keys" ] ~docv:"K"
           ~doc:"Number of key/value pairs written before the crash.")
  in
  let term =
    Term.(const run $ telemetry_term $ audit_flag $ snodes $ rfactor_arg 3
          $ read_quorum_arg 2 $ write_quorum_arg 2 $ keys $ linger_arg
          $ seed_arg)
  in
  Cmd.v
    (Cmd.info "kv"
       ~doc:
         "Replicated KV quickstart: write under quorum, crash a snode, show \
          that reads and writes still succeed, then restart and verify the \
          replica re-converges. Exits non-zero on any stale read or lost \
          acknowledged write.")
    term

let range_cmd =
  (* Range-read smoke: a seeded replicated cluster with heat accounting
     armed serves random [lo, hi) quorum range reads, each verified
     against the hash + peek oracle: every key hashing inside the range
     is present exactly once, at its authoritative value. *)
  let module Runtime = Dht_snode.Runtime in
  let module Network = Dht_event_sim.Network in
  let module Hash = Dht_hashes.Hash in
  let module Space = Dht_hashspace.Space in
  let module Rng = Dht_prng.Rng in
  let run tel snodes rfactor read_quorum write_quorum keys queries seed =
    let rt =
      Runtime.create ~rfactor ~read_quorum ~write_quorum ~heat:true
        ~metrics:tel.tel_reg ~trace:tel.tel_trace ~causal:tel.tel_causal
        ~snodes ~seed ()
    in
    let space = Runtime.space rt in
    Printf.printf
      "== Range reads: %d snodes, rfactor=%d, R=%d, W=%d, %d keys ==\n"
      snodes rfactor read_quorum write_quorum keys;
    let acked = ref 0 in
    for i = 0 to keys - 1 do
      Runtime.put rt ~via:(i mod snodes)
        ~on_done:(fun () -> incr acked)
        ~key:(Printf.sprintf "k%d" i) ~value:(Printf.sprintf "v%d" i) ()
    done;
    Runtime.run rt;
    Printf.printf "stored %d keys (%d acknowledged)\n" keys !acked;
    let rng = Rng.of_int seed in
    let table =
      Table.create ~headers:[ "query"; "range width"; "keys"; "verdict" ]
    in
    let failures = ref 0 in
    for q = 1 to queries do
      let lo = Rng.int rng (Space.size space) in
      let hi = lo + 1 + Rng.int rng (Space.size space - lo) in
      let expected =
        List.init keys (fun i -> Printf.sprintf "k%d" i)
        |> List.filter_map (fun key ->
               let p = Hash.string space key in
               if p >= lo && p < hi then
                 Some (key, Option.value ~default:"?" (Runtime.peek rt ~key))
               else None)
        |> List.sort compare
      in
      let got = ref None in
      Runtime.range_get rt ~via:(q mod snodes) ~lo ~hi (fun r ->
          got := Some r);
      Runtime.run rt;
      let verdict =
        match !got with
        | None -> "LOST"
        | Some result ->
            if result = expected then "ok"
            else
              Printf.sprintf "MISMATCH (%d keys, oracle %d)"
                (List.length result) (List.length expected)
      in
      if verdict <> "ok" then incr failures;
      Table.add_row table
        [ string_of_int q;
          Printf.sprintf "%.1f%%"
            (100. *. float_of_int (hi - lo) /. float_of_int (Space.size space));
          string_of_int (List.length expected);
          verdict ]
    done;
    Table.print table;
    let msgs, bytes =
      List.fold_left
        (fun (m, b) (tag, tm, tb) ->
          if tag = "range:get" || tag = "range:reply" then (m + tm, b + tb)
          else (m, b))
        (0, 0)
        (Network.per_tag (Runtime.network rt))
    in
    let read_heat =
      List.fold_left
        (fun acc (h : Runtime.heat_row) -> acc +. h.Runtime.hr_reads)
        0. (Runtime.heat_rows rt)
    in
    Printf.printf
      "%d/%d ranges verified; %d range messages (%d bytes) on the wire; \
       read heat charged across %d partitions (total %.1f)\n"
      (queries - !failures) queries msgs bytes
      (List.length (Runtime.heat_rows rt))
      read_heat;
    Printf.printf "completed ranges: %d\n" (Runtime.completed_ranges rt);
    finish_telemetry tel;
    if !failures > 0 || Runtime.completed_ranges rt <> queries then exit 1
  in
  let snodes =
    Arg.(value & opt int 5 & info [ "snodes" ] ~docv:"S"
           ~doc:"Number of snodes in the replicated cluster.")
  in
  let keys =
    Arg.(value & opt int 60 & info [ "keys" ] ~docv:"K"
           ~doc:"Number of key/value pairs written before querying.")
  in
  let queries =
    Arg.(value & opt int 20 & info [ "queries" ] ~docv:"Q"
           ~doc:"Random hash-interval range reads to issue and verify.")
  in
  let term =
    Term.(const run $ telemetry_term $ snodes $ rfactor_arg 3
          $ read_quorum_arg 2 $ write_quorum_arg 2 $ keys $ queries
          $ seed_arg)
  in
  Cmd.v
    (Cmd.info "range"
       ~doc:
         "Quorum range-read smoke: write a keyset, issue random [lo, hi) \
          range reads and verify each against the hash placement oracle — \
          complete, duplicate-free, authoritative values — reporting wire \
          cost and per-partition heat. Exits non-zero on any mismatch.")
    term

let explore_cmd =
  let module Explorer = Dht_check.Explorer in
  let module Scenarios = Dht_check.Scenarios in
  let module Schedule = Dht_check.Schedule in
  let print_outcome (o : Explorer.outcome) =
    Printf.printf "schedule (%d tweaks, %d decision sites):\n%s"
      (Schedule.length o.schedule) o.sites
      (Schedule.to_string o.schedule);
    match o.failures with
    | [] -> print_endline "verdict: PASS"
    | fs ->
        print_endline "verdict: FAIL";
        List.iter (fun m -> Printf.printf "  %s\n" m) fs
  in
  let run tel scenario mutate snodes vnodes keys grow removes rfactor
      read_quorum write_quorum linger seeds seed rounds max_tweaks out replay =
    let name = if mutate then scenario ^ "-mutate" else scenario in
    let sc =
      match scenario with
      | "kv" ->
          Scenarios.kv ~name ~protect:(not mutate) ~snodes ~vnodes ~grow
            ~removes ~keys ~rfactor ~read_quorum ~write_quorum ~linger ()
      | "mt-ae" ->
          Scenarios.mt_ae ~name ~protect:(not mutate) ~snodes ~keys ~rfactor
            ~read_quorum ~write_quorum ~linger ()
      | other ->
          prerr_endline ("unknown scenario: " ^ other);
          finish_telemetry tel;
          exit 2
    in
    (match replay with
    | Some path -> (
        match Schedule.load ~path with
        | Error m ->
            prerr_endline ("cannot load schedule: " ^ m);
            finish_telemetry tel;
            exit 2
        | Ok sched ->
            let sc =
              match Scenarios.by_name ~linger sched.Schedule.scenario with
              | Some sc -> sc
              | None -> sc
            in
            Printf.printf "== replaying %s (scenario %s, seed %d) ==\n" path
              sched.Schedule.scenario sched.Schedule.seed;
            let o = Explorer.run sc sched in
            print_outcome o;
            finish_telemetry tel;
            exit (if o.Explorer.failures = [] then 0 else 1))
    | None ->
        let kinds : Explorer.kind list =
          if mutate then [ `Drop ] else [ `Delay; `Drop; `Crash; `Flush ]
        in
        let runs = ref 0 in
        let on_progress _ = incr runs in
        Printf.printf
          "== exploring scenario %s: %d seeds from %d, %d rounds, <= %d \
           tweaks ==\n\
           %!"
          name seeds seed rounds max_tweaks;
        let outcome =
          Explorer.explore ~rounds ~max_tweaks ~kinds ~on_progress sc
            ~seeds:(List.init seeds (fun i -> seed + i))
        in
        Printf.printf "explored %d runs\n" !runs;
        (match outcome with
        | None -> print_endline "no violation found"
        | Some o ->
            print_outcome o;
            Option.iter
              (fun path ->
                Schedule.save ~path o.Explorer.schedule;
                Printf.printf "wrote %s\n" path)
              out);
        finish_telemetry tel;
        (* In mutation mode finding the planted loss is the success
           criterion (a self-test of the detection pipeline); in normal
           mode a finding is a real bug. *)
        let found = outcome <> None in
        exit (if found <> mutate then 1 else 0))
  in
  let mutate =
    Arg.(value & flag
         & info [ "mutate" ]
             ~doc:
               "Self-test: run the unprotected scenario (no reliable-delivery \
                layer), sinking messages at explored decision sites, and \
                $(b,expect) the checkers to catch the damage. Exits non-zero \
                if nothing is found.")
  in
  let snodes =
    Arg.(value & opt int 5 & info [ "snodes" ] ~docv:"S"
           ~doc:"Number of snodes in the scenario cluster.")
  in
  let keys =
    Arg.(value & opt int 12 & info [ "keys" ] ~docv:"K"
           ~doc:"Keys written (then overwritten and read) by the workload.")
  in
  let grow =
    Arg.(value & opt int 2 & info [ "grow" ] ~docv:"N"
           ~doc:"Vnodes created after the first write wave (migrates live data).")
  in
  let removes =
    Arg.(value & opt int 1 & info [ "removes" ] ~docv:"N"
           ~doc:"Vnodes removed after the second growth wave.")
  in
  let seeds =
    Arg.(value & opt int 10 & info [ "seeds" ] ~docv:"N"
           ~doc:"Number of consecutive seeds to sweep.")
  in
  let rounds =
    Arg.(value & opt int 20 & info [ "rounds" ] ~docv:"N"
           ~doc:"Perturbation rounds per seed.")
  in
  let max_tweaks =
    Arg.(value & opt int 4 & info [ "max-tweaks" ] ~docv:"N"
           ~doc:"Maximum perturbations per explored schedule.")
  in
  let out =
    Arg.(value & opt (some string) None & info [ "out" ] ~docv:"FILE"
           ~doc:"Write the (shrunk) failing schedule to $(docv).")
  in
  let replay =
    Arg.(value & opt (some string) None & info [ "replay" ] ~docv:"FILE"
           ~doc:
             "Replay a recorded schedule instead of exploring; exits \
              non-zero iff the replay fails its verifier.")
  in
  let linger_zero =
    Arg.(value & opt float 0. & info [ "linger" ] ~docv:"S"
           ~doc:
             "Transmission-batching window for the scenario (0 disables \
              batching; flush tweaks only matter when > 0).")
  in
  let scenario =
    Arg.(value & opt string "kv"
         & info [ "scenario" ] ~docv:"NAME"
             ~doc:
               "Scenario to explore: $(b,kv) (grow/write/migrate/overwrite) \
                or $(b,mt-ae) (Merkle anti-entropy reconciliation with the \
                tree protocol forced on and divergence planted). With \
                $(b,--mutate) the unprotected variant of the same scenario \
                runs instead.")
  in
  let term =
    Term.(const run $ telemetry_term $ scenario $ mutate $ snodes
          $ vnodes_arg 3 $ keys $ grow $ removes $ rfactor_arg 3
          $ read_quorum_arg 2 $ write_quorum_arg 2 $ linger_zero $ seeds
          $ seed_arg $ rounds $ max_tweaks $ out $ replay)
  in
  Cmd.v
    (Cmd.info "explore"
       ~doc:
         "Deterministic schedule explorer: sweep seeds, perturb message \
          delivery (delays, sinks, crash/restart, linger flushes) at \
          recorded decision sites, audit every run with the paper-invariant \
          battery and the linearizability/session/durability checkers, and \
          shrink any failure to a minimal replayable schedule. With \
          $(b,--mutate) the run is a self-test that must find a planted \
          loss; otherwise any finding is a real bug and exits non-zero.")
    term

let coexist_cmd =
  let run tel load seed =
    let r = Extensions.coexist ~load ~seed () in
    Printf.printf
      "== Coexistence (section-6 future work): 2 DHTs + external load ==\n";
    let table =
      Table.create
        ~headers:[ "DHT"; "rms err (idle)"; "after load"; "after retarget" ]
    in
    List.iteri
      (fun i name ->
        Table.add_row table
          [
            name;
            Printf.sprintf "%.3f" (List.nth r.Extensions.error_before i);
            Printf.sprintf "%.3f" (List.nth r.Extensions.error_after_load i);
            Printf.sprintf "%.3f" (List.nth r.Extensions.error_after_retarget i);
          ])
      r.Extensions.dht_names;
    Table.print table;
    Printf.printf "retarget: %d vnodes added, %d removed, %d removals blocked\n"
      r.Extensions.coexist_added r.Extensions.coexist_removed
      r.Extensions.coexist_blocked;
    finish_telemetry tel
  in
  let load =
    Arg.(value & opt float 0.6 & info [ "load" ] ~docv:"F"
           ~doc:"External load fraction on the loaded nodes.")
  in
  let term = Term.(const run $ telemetry_term $ load $ seed_arg) in
  Cmd.v
    (Cmd.info "coexist"
       ~doc:"Multi-DHT coexistence with external load (section-6 future work).")
    term

let heat_cmd =
  (* Per-partition heat accounting under a planted hot spot: a Zipf
     workload whose rank-1 key is known in advance must light up exactly
     the partition (and owning snode) that holds it. *)
  let module Runtime = Dht_snode.Runtime in
  let module Engine = Dht_event_sim.Engine in
  let module Keygen = Dht_workload.Keygen in
  let module Span = Dht_hashspace.Span in
  let module Hash = Dht_hashes.Hash in
  let module Heat = Dht_obsv.Heat in
  let run tel snodes vnodes nkeys s ops duration top tau rfactor read_quorum
      write_quorum json seed =
    let rt =
      Runtime.create ~metrics:tel.tel_reg ~trace:tel.tel_trace
        ~causal:tel.tel_causal ~heat:true ~heat_tau:tau ~rfactor ~read_quorum
        ~write_quorum ~snodes ~seed ()
    in
    for i = 1 to vnodes - 1 do
      Runtime.create_vnode rt
        ~id:(Dht_core.Vnode_id.make ~snode:(i mod snodes) ~vnode:(i / snodes))
        ()
    done;
    Runtime.run rt;
    (* Store every key once, then pace the Zipf access mix (80% reads)
       across [duration] virtual seconds so the EWMA decay is exercised. *)
    for rank = 1 to nkeys do
      Runtime.put rt ~via:(rank mod snodes)
        ~key:(Printf.sprintf "item%d" rank)
        ~value:(Printf.sprintf "v%d" rank) ()
    done;
    Runtime.run rt;
    let zipf = Keygen.Zipf.create ~n:nkeys ~s in
    let rng = Dht_prng.Rng.of_int (seed + 1) in
    let engine = Runtime.engine rt in
    let t0 = Engine.now engine +. 0.01 in
    for i = 0 to ops - 1 do
      let key = Keygen.Zipf.key zipf rng in
      let time = t0 +. (float_of_int i *. duration /. float_of_int ops) in
      let via = i mod snodes in
      if Dht_prng.Rng.float rng < 0.8 then
        Engine.at engine ~time (fun () -> Runtime.get rt ~via ~key ignore)
      else
        Engine.at engine ~time (fun () ->
            Runtime.put rt ~via ~key ~value:(Printf.sprintf "u%d" i) ())
    done;
    Runtime.run rt;
    let rows = Runtime.heat_rows rt in
    let ranked =
      List.stable_sort
        (fun a b -> compare (Runtime.heat_total b) (Runtime.heat_total a))
        rows
    in
    if not json then
      Printf.printf
        "== Heat: zipf(s=%.2f) over %d keys, %d ops on %d snodes ==\n" s nkeys
        ops snodes;
    (* Skew summaries: Gini across partitions, sigma across the snodes'
       aggregate heat — the imbalance a heat-aware balancer would act on. *)
    let totals = List.map Runtime.heat_total rows in
    let per_snode = Array.make snodes 0. in
    List.iter
      (fun (r : Runtime.heat_row) ->
        if r.Runtime.hr_owner >= 0 && r.Runtime.hr_owner < snodes then
          per_snode.(r.Runtime.hr_owner) <-
            per_snode.(r.Runtime.hr_owner) +. Runtime.heat_total r)
      rows;
    let gini = Heat.gini (Array.of_list totals) in
    let sigma = Heat.sigma_pct per_snode in
    (* The planted hot spot: rank 1 of the Zipf law is the key "item1"
       ({!Dht_workload.Keygen.Zipf.key}); attribution must put its
       partition first and name a live owner. *)
    let hot_point = Hash.string (Runtime.space rt) "item1" in
    let attributed =
      match ranked with
      | (r : Runtime.heat_row) :: _ ->
          Span.contains (Runtime.space rt) r.Runtime.hr_span hot_point
          && r.Runtime.hr_owner >= 0
      | [] -> false
    in
    let audit_ok =
      match Runtime.audit rt with Ok () -> true | Error _ -> false
    in
    if json then begin
      (* Machine-readable report: the same skew summaries and top-K rows
         the human tables carry, one JSON object on stdout. *)
      let b = Buffer.create 1024 in
      Buffer.add_string b "{\n";
      Printf.bprintf b
        "  \"zipf\": %g, \"keys\": %d, \"ops\": %d, \"snodes\": %d, \
         \"tau\": %g,\n"
        s nkeys ops snodes tau;
      Printf.bprintf b
        "  \"gini_partitions\": %.6f, \"sigma_snodes_pct\": %.3f,\n" gini
        sigma;
      Printf.bprintf b "  \"partitions\": %d,\n" (List.length ranked);
      Printf.bprintf b "  \"per_snode_heat\": [%s],\n"
        (String.concat ", "
           (Array.to_list (Array.map (Printf.sprintf "%.3f") per_snode)));
      Printf.bprintf b "  \"top\": [\n";
      let shown = List.filteri (fun i _ -> i < top) ranked in
      List.iteri
        (fun i (r : Runtime.heat_row) ->
          Printf.bprintf b
            "    {\"partition\": \"%s\", \"owner\": %d, \"reads\": %.3f, \
             \"writes\": %.3f, \"repl\": %.3f, \"bytes\": %.0f, \
             \"total\": %.3f, \"accesses\": %d}%s\n"
            (Format.asprintf "%a" Span.pp r.Runtime.hr_span)
            r.Runtime.hr_owner r.Runtime.hr_reads r.Runtime.hr_writes
            r.Runtime.hr_repl r.Runtime.hr_bytes (Runtime.heat_total r)
            (r.Runtime.hr_read_count + r.Runtime.hr_write_count
           + r.Runtime.hr_repl_count)
            (if i = List.length shown - 1 then "" else ","))
        shown;
      Buffer.add_string b "  ],\n";
      Printf.bprintf b "  \"hot_key_attributed\": %b, \"audit_ok\": %b\n"
        attributed audit_ok;
      Buffer.add_string b "}\n";
      print_string (Buffer.contents b)
    end
    else begin
      let table =
        Table.create
          ~headers:
            [ "partition"; "owner"; "reads"; "writes"; "repl"; "bytes";
              "total"; "accesses" ]
      in
      List.iteri
        (fun i (r : Runtime.heat_row) ->
          if i < top then
            Table.add_row table
              [ Format.asprintf "%a" Span.pp r.Runtime.hr_span;
                string_of_int r.Runtime.hr_owner;
                Printf.sprintf "%.1f" r.Runtime.hr_reads;
                Printf.sprintf "%.1f" r.Runtime.hr_writes;
                Printf.sprintf "%.1f" r.Runtime.hr_repl;
                Printf.sprintf "%.0f" r.Runtime.hr_bytes;
                Printf.sprintf "%.1f" (Runtime.heat_total r);
                string_of_int
                  (r.Runtime.hr_read_count + r.Runtime.hr_write_count
                 + r.Runtime.hr_repl_count) ])
        ranked;
      Printf.printf "top %d of %d heated partitions (EWMA tau %gs):\n"
        (min top (List.length ranked))
        (List.length ranked) tau;
      Table.print table;
      Printf.printf
        "heat skew: Gini %.3f across partitions, sigma %.1f%% across snodes\n"
        gini sigma;
      (match ranked with
      | r :: _ when attributed ->
          Printf.printf
            "hot spot: key item1 (hash %d) attributed to partition %s on \
             snode %d\n"
            hot_point
            (Format.asprintf "%a" Span.pp r.Runtime.hr_span)
            r.Runtime.hr_owner
      | _ ->
          Printf.printf
            "hot spot: key item1 (hash %d) NOT attributed to the hottest \
             partition\n"
            hot_point)
    end;
    Runtime.record_metrics rt tel.tel_reg;
    finish_telemetry tel;
    if not json then
      Printf.printf "audit: %s, attribution: %s\n"
        (if audit_ok then "ok" else "FAILED")
        (if attributed then "ok" else "FAILED");
    if (not audit_ok) || not attributed then exit 1
  in
  let nkeys =
    Arg.(value & opt int 1000 & info [ "keys" ] ~docv:"N"
           ~doc:"Number of distinct keys (Zipf ranks).")
  in
  let zipf_s =
    Arg.(value & opt float 0.99 & info [ "zipf" ] ~docv:"S"
           ~doc:"Zipf skew exponent of the access mix.")
  in
  let ops =
    Arg.(value & opt int 10000 & info [ "ops" ] ~docv:"N"
           ~doc:"Accesses issued (80% reads, 20% overwrites).")
  in
  let duration =
    Arg.(value & opt float 2.0 & info [ "duration" ] ~docv:"S"
           ~doc:"Virtual seconds the access mix is paced across.")
  in
  let top =
    Arg.(value & opt int 10 & info [ "top" ] ~docv:"K"
           ~doc:"Hot partitions shown in the report.")
  in
  let tau =
    Arg.(value & opt float 1.0 & info [ "tau" ] ~docv:"S"
           ~doc:"EWMA time constant of the heat counters (virtual seconds).")
  in
  let snodes =
    Arg.(value & opt int 8 & info [ "snodes" ] ~docv:"S"
           ~doc:"Number of snodes in the simulated cluster.")
  in
  let json =
    Arg.(value & flag & info [ "json" ]
           ~doc:
             "Machine-readable output: one JSON object with the skew \
              summaries (Gini, sigma), per-snode heat totals and the top-K \
              partition rows instead of the human tables.")
  in
  let term =
    Term.(const run $ telemetry_term $ snodes $ vnodes_arg 24 $ nkeys
          $ zipf_s $ ops $ duration $ top $ tau $ rfactor_arg 3
          $ read_quorum_arg 2 $ write_quorum_arg 2 $ json $ seed_arg)
  in
  Cmd.v
    (Cmd.info "heat"
       ~doc:
         "Per-partition heat accounting under a planted Zipf hot spot: \
          EWMA read/write/replica-traffic counters per partition, skew \
          summaries (Gini, sigma across snodes) and the top-K table \
          ($(b,--json) for a machine-readable report). Exits non-zero \
          unless the hottest partition is the one holding the rank-1 key \
          and has a live owner. Heat series also land in --metrics-csv.")
    term

let balance_cmd =
  (* The active balancer's acceptance run: the same seeded Zipf stream
     twice (balancer off, then on) over a queueing-capable fabric; the
     balancer must cut both the per-snode heat Gini and the p99 op
     latency without tripping the invariant battery, the linearizability
     checkers or the acked-write durability oracle. *)
  let run tel snodes nkeys s rate duration max_inflight tau crash seed =
    let r =
      Extensions.skew ~snodes ~keys:nkeys ~zipf:s ~rate ~duration
        ~max_inflight ~heat_tau:tau ~crash ~metrics:tel.tel_reg ~seed ()
    in
    Printf.printf
      "== Active balancing: zipf(s=%.2f) over %d keys at %g ops/s on %d \
       snodes%s ==\n"
      s nkeys rate snodes
      (if crash then ", one mid-run crash/restart" else "");
    let row name (x : Extensions.skew_run) =
      [ name;
        Printf.sprintf "%.4f" x.Extensions.sk_gini;
        Printf.sprintf "%.1f%%" x.Extensions.sk_sigma;
        Printf.sprintf "%.2f ms" (1e3 *. x.Extensions.sk_p50);
        Printf.sprintf "%.2f ms" (1e3 *. x.Extensions.sk_p99);
        string_of_int x.Extensions.sk_completed;
        string_of_int x.Extensions.sk_acked;
        string_of_int x.Extensions.sk_lb.Dht_snode.Runtime.lbs_transfers;
        string_of_int
          (List.length x.Extensions.sk_findings
          + List.length x.Extensions.sk_linear
          + x.Extensions.sk_lost) ]
    in
    let table =
      Table.create
        ~headers:
          [ "balancer"; "gini"; "sigma"; "p50"; "p99"; "completed"; "acked";
            "transfers"; "findings" ]
    in
    Table.add_row table (row "off" r.Extensions.sk_off);
    Table.add_row table (row "on" r.Extensions.sk_on);
    Table.print table;
    let dump name (x : Extensions.skew_run) =
      List.iter
        (fun f -> Printf.printf "%s invariant finding: %s\n" name f)
        x.Extensions.sk_findings;
      List.iter
        (fun f -> Printf.printf "%s linearizability finding: %s\n" name f)
        x.Extensions.sk_linear;
      if x.Extensions.sk_lost > 0 then
        Printf.printf "%s: %d acked writes LOST\n" name x.Extensions.sk_lost
    in
    dump "off" r.Extensions.sk_off;
    dump "on" r.Extensions.sk_on;
    let clean (x : Extensions.skew_run) =
      x.Extensions.sk_findings = [] && x.Extensions.sk_linear = []
      && x.Extensions.sk_lost = 0
    in
    let gini_ok = r.Extensions.sk_on.sk_gini < r.Extensions.sk_off.sk_gini in
    let p99_ok = r.Extensions.sk_on.sk_p99 < r.Extensions.sk_off.sk_p99 in
    let safe = clean r.Extensions.sk_off && clean r.Extensions.sk_on in
    Printf.printf
      "gini: %s (%.4f -> %.4f)  p99: %s (%.2f ms -> %.2f ms)  safety: %s\n"
      (if gini_ok then "improved" else "NOT improved")
      r.Extensions.sk_off.sk_gini r.Extensions.sk_on.sk_gini
      (if p99_ok then "improved" else "NOT improved")
      (1e3 *. r.Extensions.sk_off.sk_p99)
      (1e3 *. r.Extensions.sk_on.sk_p99)
      (if safe then "clean" else "FINDINGS");
    finish_telemetry tel;
    if not (gini_ok && p99_ok && safe) then exit 1
  in
  let nkeys =
    Arg.(value & opt int 1000 & info [ "keys" ] ~docv:"N"
           ~doc:"Number of distinct keys (Zipf ranks).")
  in
  let zipf_s =
    Arg.(value & opt float 0.99 & info [ "zipf" ] ~docv:"S"
           ~doc:"Zipf skew exponent of the access mix.")
  in
  let rate =
    Arg.(value & opt float 20000. & info [ "rate" ] ~docv:"OPS"
           ~doc:"Operations per virtual second.")
  in
  let duration =
    Arg.(value & opt float 1.0 & info [ "duration" ] ~docv:"S"
           ~doc:"Virtual seconds of paced load.")
  in
  let max_inflight =
    Arg.(value & opt int 4 & info [ "max-inflight" ] ~docv:"N"
           ~doc:
             "Per-peer window bound of the reliable layer; with the slow \
              fabric this is what makes latency respond to placement.")
  in
  let tau =
    Arg.(value & opt float 0.3 & info [ "tau" ] ~docv:"S"
           ~doc:"EWMA time constant of the heat counters (virtual seconds).")
  in
  let crash =
    Arg.(value & flag & info [ "crash" ]
           ~doc:
             "Crash-stop one snode a third of the way in and restart it at \
              two thirds: transfers must survive the churn with zero \
              acked-write loss.")
  in
  let snodes =
    Arg.(value & opt int 8 & info [ "snodes" ] ~docv:"S"
           ~doc:"Number of snodes in the simulated cluster.")
  in
  let term =
    Term.(const run $ telemetry_term $ snodes $ nkeys $ zipf_s $ rate
          $ duration $ max_inflight $ tau $ crash $ seed_arg)
  in
  Cmd.v
    (Cmd.info "balance"
       ~doc:
         "Load-aware active balancing under Zipf skew: gossip load \
          dissemination, hash-located load directories and hot-partition \
          swaps. Runs the same seeded stream with the balancer off and on; \
          exits non-zero unless balancer-on improves both the per-snode \
          heat Gini and the p99 op latency with a clean invariant battery, \
          no linearizability findings and no lost acked writes.")
    term

let route_cmd =
  (* The O(log N) prefix-routing scaling sweep and its CI gates: for each
     cluster size, run the windowed workload (with mid-window churn by
     default) against bounded routing caches and check the hop, occupancy
     and safety gates. *)
  let run tel sizes vnodes route_cap max_hops keys ops rate read_fraction
      no_churn json seed =
    let runs =
      List.map
        (fun snodes ->
          Extensions.routing_scaling ?vnodes ~route_cap ~max_hops ~keys ~ops
            ~rate ~read_fraction ~churn:(not no_churn) ~metrics:tel.tel_reg
            ~snodes ~seed ())
        sizes
    in
    Printf.printf
      "== Prefix-routing scaling: cap %d entries/snode, %d ops over %d \
       derived keys%s ==\n"
      route_cap ops keys
      (if no_churn then "" else ", mid-window crash/restart + join");
    let table =
      Table.create
        ~headers:
          [ "N"; "level"; "ops"; "p50"; "p99"; "max"; "msgs/op"; "cache max";
            "bytes"; "hit%"; "evict"; "sigma"; "findings" ]
    in
    let hit_pct (r : Extensions.routing_run) =
      let module R = Dht_snode.Runtime in
      let probes = r.Extensions.rs_cache.R.rcs_hits + r.Extensions.rs_cache.R.rcs_misses in
      if probes = 0 then 0.
      else
        100. *. float_of_int r.Extensions.rs_cache.R.rcs_hits
        /. float_of_int probes
    in
    List.iter
      (fun (r : Extensions.routing_run) ->
        let module R = Dht_snode.Runtime in
        Table.add_row table
          [ string_of_int r.Extensions.rs_snodes;
            string_of_int r.Extensions.rs_level;
            string_of_int r.Extensions.rs_ops;
            Printf.sprintf "%.0f" r.Extensions.rs_hops_p50;
            Printf.sprintf "%.0f" r.Extensions.rs_hops_p99;
            string_of_int r.Extensions.rs_hops_max;
            Printf.sprintf "%.2f" r.Extensions.rs_msgs_per_op;
            string_of_int r.Extensions.rs_cache_entries_max;
            string_of_int r.Extensions.rs_cache_bytes_max;
            Printf.sprintf "%.1f" (hit_pct r);
            string_of_int r.Extensions.rs_cache.R.rcs_evictions;
            Printf.sprintf "%.1f%%" r.Extensions.rs_sigma;
            string_of_int
              (List.length r.Extensions.rs_findings
              + List.length r.Extensions.rs_linear) ])
      runs;
    Table.print table;
    (* The gates the CI perf matrix enforces: p99 hops within 2 log2 N,
       every cache within its entry bound, and a clean safety battery. *)
    let failed = ref false in
    let gate name ok detail =
      if not ok then begin
        failed := true;
        Printf.printf "GATE FAILED: %s (%s)\n" name detail
      end
    in
    List.iter
      (fun (r : Extensions.routing_run) ->
        let n = r.Extensions.rs_snodes in
        let bound = 2. *. (log (float_of_int n) /. log 2.) in
        gate
          (Printf.sprintf "N=%d p99 hops" n)
          (r.Extensions.rs_hops_p99 <= bound)
          (Printf.sprintf "%.1f > 2 log2 N = %.1f" r.Extensions.rs_hops_p99
             bound);
        gate
          (Printf.sprintf "N=%d cache bound" n)
          (r.Extensions.rs_cache_entries_max <= r.Extensions.rs_cap)
          (Printf.sprintf "%d entries > cap %d" r.Extensions.rs_cache_entries_max
             r.Extensions.rs_cap);
        gate
          (Printf.sprintf "N=%d window" n)
          (r.Extensions.rs_ops > 0)
          "no ops landed in the measurement window";
        List.iter
          (fun f -> gate (Printf.sprintf "N=%d battery" n) false f)
          (r.Extensions.rs_findings @ r.Extensions.rs_linear))
      runs;
    if not !failed then print_endline "all scaling gates passed";
    Option.iter
      (fun path ->
        let oc = open_out path in
        let module R = Dht_snode.Runtime in
        Printf.fprintf oc
          "{\n  \"benchmark\": \"routing-scaling\",\n  \"seed\": %d,\n\
          \  \"route_cap\": %d,\n  \"ops\": %d,\n  \"keys\": %d,\n\
          \  \"churn\": %b,\n  \"sweep\": [" seed route_cap ops keys
          (not no_churn);
        List.iteri
          (fun i (r : Extensions.routing_run) ->
            Printf.fprintf oc
              "%s\n    {\"snodes\": %d, \"vnodes\": %d, \"level\": %d, \
               \"ops\": %d, \"hops_p50\": %.1f, \"hops_p99\": %.1f, \
               \"hops_max\": %d, \"msgs_per_op\": %.3f, \
               \"cache_entries_max\": %d, \"cache_bytes_max\": %d, \
               \"cache_hit_pct\": %.2f, \"evictions\": %d, \
               \"refreshes\": %d, \"sigma_pct\": %.3f, \"findings\": %d}"
              (if i = 0 then "" else ",")
              r.Extensions.rs_snodes r.Extensions.rs_vnodes
              r.Extensions.rs_level r.Extensions.rs_ops
              r.Extensions.rs_hops_p50 r.Extensions.rs_hops_p99
              r.Extensions.rs_hops_max r.Extensions.rs_msgs_per_op
              r.Extensions.rs_cache_entries_max r.Extensions.rs_cache_bytes_max
              (hit_pct r) r.Extensions.rs_cache.R.rcs_evictions
              r.Extensions.rs_cache.R.rcs_refreshes r.Extensions.rs_sigma
              (List.length r.Extensions.rs_findings
              + List.length r.Extensions.rs_linear))
          runs;
        Printf.fprintf oc "\n  ]\n}\n";
        close_out oc;
        Printf.printf "wrote %s\n" path)
      json;
    finish_telemetry tel;
    if !failed then exit 1
  in
  let sizes =
    Arg.(value & opt (list int) [ 100; 1000; 10000 ]
         & info [ "snodes" ] ~docv:"N,N,..."
             ~doc:"Comma-separated cluster sizes to sweep.")
  in
  let vnodes =
    Arg.(value & opt (some int) None & info [ "vnodes" ] ~docv:"V"
           ~doc:"Vnodes in each cluster (default: one per snode).")
  in
  let route_cap =
    Arg.(value & opt int 128 & info [ "route-cap" ] ~docv:"E"
           ~doc:"Per-snode routing-cache entry bound (LRU pair-folds above it).")
  in
  let max_hops =
    Arg.(value & opt int 32 & info [ "max-hops" ] ~docv:"H"
           ~doc:"Forwarding limit before a routed op backs off and restarts.")
  in
  let keys =
    Arg.(value & opt int 1_000_000 & info [ "keys" ] ~docv:"K"
           ~doc:
             "Size of the derived key population the workload samples \
              (keys are computed, never materialized).")
  in
  let ops =
    Arg.(value & opt int 4000 & info [ "ops" ] ~docv:"N"
           ~doc:"Paced data operations per cluster size.")
  in
  let rate =
    Arg.(value & opt float 20000. & info [ "rate" ] ~docv:"OPS"
           ~doc:"Operations per virtual second.")
  in
  let read_fraction =
    Arg.(value & opt float 0.5 & info [ "read-fraction" ] ~docv:"F"
           ~doc:"Fraction of operations that are gets.")
  in
  let no_churn =
    Arg.(value & flag & info [ "no-churn" ]
           ~doc:
             "Skip the mid-window crash/restart and vnode join (measure \
              steady-state routing only).")
  in
  let json =
    Arg.(value & opt (some string) None & info [ "json" ] ~docv:"FILE"
           ~doc:"Write the sweep results to $(docv) as JSON.")
  in
  let term =
    Term.(const run $ telemetry_term $ sizes $ vnodes $ route_cap $ max_hops
          $ keys $ ops $ rate $ read_fraction $ no_churn $ json $ seed_arg)
  in
  Cmd.v
    (Cmd.info "route"
       ~doc:
         "O(log N) prefix-routing scaling sweep: per-snode bounded routing \
          caches (LRU pair-fold eviction) with steward fingers, swept \
          across cluster sizes under mid-window churn. Prints windowed hop \
          percentiles, messages/op, cache occupancy and bytes; exits \
          non-zero if p99 hops exceed 2 log2 N, any cache exceeds its \
          bound, or the safety battery reports a finding.")
    term

let trace_cmd =
  (* Offline critical-path analysis of a --trace --causal JSONL file. *)
  let module Causal = Dht_obsv.Causal in
  let analyze file top tolerance =
    match Causal.load file with
    | Error e ->
        Printf.eprintf "%s: %s\n" file e;
        exit 2
    | Ok t ->
        Printf.printf "== Causal trace: %s ==\n" file;
        let malformed = Causal.malformed t in
        let audit = Causal.audit t in
        let a = Causal.analyze t in
        let mismatches = Causal.sum_mismatches ~tolerance a in
        Printf.printf
          "%d events, %d ops (%d complete, %d unfinished, %d broken), %d \
           wire edges\n"
          (Causal.events t) (Causal.op_count t)
          (List.length a.Causal.complete)
          a.Causal.unfinished a.Causal.broken (Causal.edge_count t);
        let table =
          Table.create ~headers:[ "component"; "p50 ms"; "p99 ms"; "share %" ]
        in
        List.iter
          (fun (c : Causal.component_summary) ->
            Table.add_row table
              [ c.Causal.c_name;
                Printf.sprintf "%.3f" (1000. *. c.Causal.c_p50);
                Printf.sprintf "%.3f" (1000. *. c.Causal.c_p99);
                Printf.sprintf "%.1f" c.Causal.c_share ])
          (Causal.summarize a);
        print_endline "op latency decomposition:";
        Table.print table;
        let shown = ref 0 in
        List.iter
          (fun (az : Causal.analyzed) ->
            if !shown < top then begin
              incr shown;
              let b = az.Causal.a_breakdown in
              Printf.printf
                "#%d %s (trace %d, %s): %.3f ms = queue %.3f + network %.3f \
                 + service %.3f + retransmit %.3f\n"
                !shown az.Causal.a_op az.Causal.a_trace az.Causal.a_outcome
                (1000. *. b.Causal.total) (1000. *. b.Causal.queue)
                (1000. *. b.Causal.network) (1000. *. b.Causal.service)
                (1000. *. b.Causal.retransmit);
              List.iter
                (fun (s : Causal.step) ->
                  Printf.printf
                    "    %d -> %d  %-20s queue %.3f, net %.3f%s\n"
                    s.Causal.s_src s.Causal.s_dst s.Causal.s_tag
                    (1000. *. s.Causal.s_queue)
                    (1000. *. s.Causal.s_network)
                    (if s.Causal.s_attempts > 1 then
                       Printf.sprintf ", retransmit %.3f (%d attempts)"
                         (1000. *. s.Causal.s_retransmit)
                         s.Causal.s_attempts
                     else ""))
                az.Causal.a_path
            end)
          a.Causal.complete;
        if !shown > 0 then
          Printf.printf
            "(%d slowest ops above; per-step times in ms along the critical \
             path)\n"
            !shown;
        let dump label findings =
          List.iter (fun f -> Printf.printf "%s: %s\n" label f) findings
        in
        dump "malformed" malformed;
        dump "audit" audit;
        dump "mismatch" mismatches;
        Printf.printf
          "span trees: %s, decomposition sums: %s (tolerance %g)\n"
          (if malformed = [] && audit = [] && a.Causal.broken = 0 then "ok"
           else "FAILED")
          (if mismatches = [] then "ok" else "FAILED")
          tolerance;
        if
          malformed <> [] || audit <> [] || mismatches <> []
          || a.Causal.broken > 0
        then exit 1
  in
  let file =
    Arg.(required & pos 0 (some file) None
         & info [] ~docv:"TRACE.jsonl"
             ~doc:
               "JSONL trace produced by --trace FILE.jsonl --causal \
                (Chrome-format traces are not analyzable).")
  in
  let top =
    Arg.(value & opt int 5 & info [ "top" ] ~docv:"K"
           ~doc:"Slowest ops whose critical paths are printed.")
  in
  let tolerance =
    Arg.(value & opt float 1e-9 & info [ "tolerance" ] ~docv:"T"
           ~doc:
             "Relative tolerance for the decomposition-sums-to-latency \
              gate.")
  in
  let analyze_cmd =
    Cmd.v
      (Cmd.info "analyze"
         ~doc:
           "Rebuild per-op causal trees from a --causal JSONL trace, audit \
            their well-formedness, decompose op latency into queue / \
            network / service / retransmit components (which must sum to \
            the runtime's own measurement) and print the slowest ops' \
            critical paths. Exits non-zero on any malformed span tree or \
            decomposition mismatch.")
      Term.(const analyze $ file $ top $ tolerance)
  in
  Cmd.group
    (Cmd.info "trace" ~doc:"Offline analysis of recorded protocol traces.")
    [ analyze_cmd ]

let all_cmd =
  let run tel runs seed =
    (* A reduced-runs sweep of everything, for a quick end-to-end check. *)
    let curves = Figures.fig4 ~runs ~seed () in
    emit ~title:"Figure 4" ~csv:None ~no_chart:true curves;
    let thetas = Figures.fig5 ~runs ~seed () in
    Printf.printf "fig5: theta minimizes at Vmin = %d\n"
      (Figures.argmin_theta thetas);
    emit ~title:"Figure 6" ~csv:None ~no_chart:true (Figures.fig6 ~runs ~seed ());
    let d = Figures.fig7_fig8 ~runs ~seed () in
    emit ~title:"Figure 7" ~y_label:"groups" ~csv:None ~no_chart:true
      [ d.Figures.greal; d.Figures.gideal ];
    emit ~title:"Figure 8" ~y_label:"sigma(Qg) %" ~csv:None ~no_chart:true
      [ d.Figures.sigma_qg ];
    emit ~title:"Figure 9" ~y_label:"sigma(Qn) %" ~csv:None ~no_chart:true
      (Figures.fig9 ~runs ~seed ());
    finish_telemetry tel
  in
  let term = Term.(const run $ telemetry_term $ runs_arg 10 $ seed_arg) in
  Cmd.v
    (Cmd.info "all" ~doc:"Run every figure with a reduced number of runs.")
    term

let () =
  Dht_core.Log.setup_from_env ();
  let info =
    Cmd.info "dht_sim" ~version:"1.0.0"
      ~doc:
        "Reproduction of 'A cluster oriented model for dynamically balanced \
         DHTs' (IPDPS 2004)."
  in
  let default = Term.(ret (const (`Help (`Pager, None)))) in
  exit
    (Cmd.eval
       (Cmd.group ~default info
          [
            fig4_cmd; fig5_cmd; fig6_cmd; fig7_cmd; fig8_cmd; fig9_cmd;
            zones_cmd; ratios_cmd; stability_cmd; cost_cmd; parallel_cmd; hetero_cmd;
            kvload_cmd; churn_cmd; ablation_cmd; hotspot_cmd;
            hetero_compare_cmd; distributed_cmd; chaos_cmd; kv_cmd; range_cmd;
            explore_cmd; coexist_cmd; heat_cmd; balance_cmd; route_cmd;
            trace_cmd;
            all_cmd;
          ]))
