(** Log-bucketed histograms for latency and hop-count distributions.

    Unlike {!Dht_stats.Histogram} (fixed-width bins over a closed range),
    buckets here grow geometrically from [lo]: bucket [i] covers
    [\[lo·growth^i, lo·growth^(i+1))], so a single histogram spans
    microseconds to minutes with bounded relative error. Exact first and
    second moments ride along in a {!Dht_stats.Welford} accumulator, so
    [mean]/[stddev] do not suffer bucketing error.

    Two histograms with the same geometry can be {!merge}d (bucket-exact,
    associative on counts), which is what makes per-shard collection and
    post-run aggregation safe. *)

type t

val create : ?lo:float -> ?growth:float -> ?bins:int -> unit -> t
(** [create ()] covers [\[lo, lo·growth^bins)] with [bins] geometric
    buckets. Defaults: [lo = 1e-6] (1 µs), [growth = 2.], [bins = 64] —
    enough for any virtual-time latency this repo produces. Observations
    in [\[0, lo)] count as underflow, beyond the top edge as overflow;
    both participate in totals and quantiles.
    @raise Invalid_argument if [lo <= 0.], [growth <= 1.] or [bins <= 0]. *)

val same_shape : t -> t -> bool
(** Whether the two histograms share [lo], [growth] and [bins] (the
    precondition of {!merge}). *)

val observe : t -> float -> unit
(** Record one observation.
    @raise Invalid_argument on negative or non-finite values. *)

val count : t -> int
(** Total observations, including under- and overflow. *)

val sum : t -> float

val mean : t -> float
(** Exact mean (Welford), [0.] when empty. *)

val stddev : t -> float
(** Exact population standard deviation (Welford). *)

val min_value : t -> float
(** Smallest observation; [nan] when empty. *)

val max_value : t -> float
(** Largest observation; [nan] when empty. *)

val bucket_index : t -> float -> int
(** The bucket an observation would land in: [-1] for underflow, [bins]
    for overflow, otherwise the bucket number. Boundary values land in the
    bucket whose lower edge they equal (half-open buckets), which is pinned
    by tests against floating-point drift in the log computation. *)

val bucket_bounds : t -> int -> float * float
(** [bucket_bounds t i] is the half-open range [\[lo·growth^i,
    lo·growth^(i+1))] of bucket [i].
    @raise Invalid_argument if [i] is outside [0, bins). *)

val buckets : t -> (float * float * int) list
(** Non-empty buckets as [(lo, hi, count)], in increasing order; underflow
    appears as [(0., lo, n)] and overflow as [(top, infinity, n)]. *)

val quantile : t -> float -> float
(** [quantile t q] with [q] in [\[0, 1\]]: the upper edge of the bucket
    holding the [q]-th ranked observation — a conservative (over-)estimate,
    monotone in [q]. Underflow resolves to [lo]; overflow to the largest
    observation. [nan] when empty.
    @raise Invalid_argument if [q] is outside [\[0, 1\]]. *)

val merge : t -> t -> t
(** Bucket-wise sum into a fresh histogram. Counts merge exactly (and thus
    associatively); mean/stddev merge by Welford combination.
    @raise Invalid_argument if the two histograms differ in shape. *)

val clear : t -> unit

val pp : Format.formatter -> t -> unit
