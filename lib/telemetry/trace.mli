(** Pluggable structured protocol tracing with virtual timestamps.

    A sink receives {e instant} events and {e spans} (a start time plus a
    duration) stamped with the simulation's virtual clock. The default
    {!noop} sink records nothing and costs nothing: every emission site is
    expected to guard with {!enabled}, so with tracing off no argument
    list, string or closure is ever allocated —

    {[
      if Trace.enabled tr then
        Trace.instant tr ~ts:(Engine.now engine) ~tid:sn.sid
          ~name:"retransmit" [ ("dst", Trace.Int dst) ]
    ]}

    Two writers are provided. [Jsonl] emits one self-contained JSON object
    per line — trivially greppable and diffable. [Chrome] emits the Chrome
    trace-event format (a JSON array of [ph = "X"/"i"] events with
    microsecond timestamps), which {{:https://ui.perfetto.dev}Perfetto}
    and [chrome://tracing] open directly; the [tid] becomes the track, so
    per-snode activity renders as parallel swimlanes.

    Everything printed derives from the virtual clock and the seeded
    simulation, never from wall time, so a trace is byte-identical across
    runs with the same seed — pinned by a test, making traces usable as
    regression oracles. *)

type t

type format = Jsonl | Chrome

type arg = Int of int | Float of float | Str of string | Bool of bool

val noop : t
(** Discards everything; {!enabled} is [false]. *)

val enabled : t -> bool

val to_buffer : ?limit:int -> format -> Buffer.t -> t
(** Collect the trace in memory (used by the determinism tests). [limit]
    (default [0]: unbounded) caps the events the sink accepts; events past
    the cap are counted by {!dropped} instead of written, bounding sink
    growth on long chaos runs. *)

val to_channel : ?limit:int -> format -> out_channel -> t
(** Stream the trace to a channel. {!close} flushes (and for [Chrome]
    terminates the JSON array) but does not close the channel when it is
    [stdout] or [stderr]; any other channel is closed. [limit] as in
    {!to_buffer}. *)

val format_of_path : string -> format
(** [Jsonl] when the filename ends in [.jsonl], [Chrome] otherwise. *)

val instant :
  t -> ts:float -> tid:int -> ?cat:string -> name:string ->
  (string * arg) list -> unit
(** A point event at virtual time [ts] seconds on track [tid] (by
    convention the snode id). [cat] defaults to ["sim"]. *)

val span :
  t -> ts:float -> dur:float -> tid:int -> ?cat:string -> name:string ->
  (string * arg) list -> unit
(** A complete span starting at [ts] lasting [dur] (virtual seconds). *)

val events : t -> int
(** Events emitted so far (always [0] on {!noop}). *)

val dropped : t -> int
(** Events refused by the sink's [limit] cap (always [0] on {!noop} and on
    unbounded sinks). Exported to the metrics registry as
    [trace_dropped_total] by the CLI. *)

val close : t -> unit
(** Terminate the trace (idempotent). Emitting after [close] raises. *)
