(** Labeled metrics registry.

    A registry names every instrument with a metric name plus an ordered
    list of [(label, value)] pairs — ["net.messages", [("tag", "prepare")]]
    — and hands out mutable handles ({!counter}, {!gauge}, {!histogram}).
    Asking twice for the same (name, labels) returns the same instrument,
    so independent call sites accumulate into one series. Handles are plain
    records: the hashtable lookup happens once at registration, never on
    the hot increment/observe path.

    Rendering is deliberately dumb and deterministic: {!rows} sorts by
    (name, labels) so tables and CSV files diff cleanly across runs. *)

type t

type counter
type gauge

val create : unit -> t

val counter : t -> ?labels:(string * string) list -> string -> counter
(** Find-or-create the counter named [name] with [labels].
    @raise Invalid_argument if the (name, labels) pair is already
    registered as a different instrument kind. *)

val inc : counter -> int -> unit
(** Add to the counter (negative increments are allowed: some counters
    track outstanding work). *)

val counter_value : counter -> int

val gauge : t -> ?labels:(string * string) list -> string -> gauge
val set : gauge -> float -> unit
val gauge_value : gauge -> float

val histogram :
  t ->
  ?labels:(string * string) list ->
  ?lo:float ->
  ?growth:float ->
  ?bins:int ->
  string ->
  Histogram.t
(** Find-or-create a log-bucketed histogram (see {!Histogram.create} for
    the geometry defaults). The geometry arguments only matter on first
    registration; later calls return the existing histogram unchanged. *)

val is_empty : t -> bool

val histograms :
  t -> ?labels:(string * string) list -> string -> Histogram.t list
(** Every histogram already registered under [name] whose label set
    includes all of [labels] (default: every shard of the metric), in
    deterministic label order. Read-only: unlike {!histogram} nothing is
    created, so report code can look up series without inventing empty
    instruments that would then leak into {!rows} and the CSV. *)

val merged : t -> ?labels:(string * string) list -> string -> Histogram.t option
(** The {!Histogram.merge} of every shard {!histograms} selects — the one
    sanctioned way for reports to derive quantiles, guaranteeing they
    agree with the per-shard rows the CSV carries. [None] when nothing
    matching was registered (a single matching shard is returned as-is;
    treat the result as read-only). *)

type row = {
  name : string;
  labels : (string * string) list;
  kind : string;  (** ["counter"], ["gauge"] or ["histogram"] *)
  count : int;  (** observations ([1] for counters and gauges) *)
  value : float;  (** counter value, gauge value, or histogram mean *)
  p50 : float;  (** [nan] for counters and gauges *)
  p99 : float;
  max : float;
}

val rows : t -> row list
(** Every registered instrument, sorted by (name, labels). *)

val to_table : t -> Dht_report.Table.t
(** The standard post-run report: columns [metric], [labels], [kind],
    [count], [value], [p50], [p99], [max]. Histograms render latencies in
    seconds exactly as observed — no unit scaling happens here. *)

val csv_header : string list

val csv_rows : t -> string list list
(** Rows matching {!csv_header}, for {!Dht_report.Csv.write}. *)
