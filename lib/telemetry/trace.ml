type format = Jsonl | Chrome

type arg = Int of int | Float of float | Str of string | Bool of bool

type active = {
  fmt : format;
  write : string -> unit;
  finish : unit -> unit;
  limit : int;  (** 0 = unbounded; else events past the cap are dropped *)
  mutable count : int;
  mutable dropped : int;
  mutable closed : bool;
}

type t = Noop | Active of active

let noop = Noop
let enabled = function Noop -> false | Active _ -> true
let events = function Noop -> 0 | Active a -> a.count
let dropped = function Noop -> 0 | Active a -> a.dropped

let to_buffer ?(limit = 0) fmt buf =
  Active
    {
      fmt;
      write = Buffer.add_string buf;
      finish = (fun () -> ());
      limit;
      count = 0;
      dropped = 0;
      closed = false;
    }

let to_channel ?(limit = 0) fmt oc =
  Active
    {
      fmt;
      write = output_string oc;
      finish =
        (fun () ->
          flush oc;
          if oc != stdout && oc != stderr then close_out oc);
      limit;
      count = 0;
      dropped = 0;
      closed = false;
    }

let format_of_path path =
  if Filename.check_suffix path ".jsonl" then Jsonl else Chrome

(* ------------------------------------------------------------------ *)
(* JSON rendering. Numbers print through %.9g / %d when that round-trips
   the exact float, falling back to %.17g when it does not: offline
   analysis (the causal decomposition gate) recomputes durations from
   absolute timestamps, so every digit matters there, while the short form
   keeps typical traces stable and diffable. *)

let add_escaped buf s =
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\r' -> Buffer.add_string buf "\\r"
      | '\t' -> Buffer.add_string buf "\\t"
      | c when Char.code c < 0x20 ->
          Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s

let add_float buf f =
  if Float.is_integer f && Float.abs f < 1e15 then
    Buffer.add_string buf (Printf.sprintf "%.0f" f)
  else
    let s = Printf.sprintf "%.9g" f in
    Buffer.add_string buf
      (if float_of_string s = f then s else Printf.sprintf "%.17g" f)

let add_arg buf = function
  | Int i -> Buffer.add_string buf (string_of_int i)
  | Float f -> add_float buf f
  | Bool b -> Buffer.add_string buf (string_of_bool b)
  | Str s ->
      Buffer.add_char buf '"';
      add_escaped buf s;
      Buffer.add_char buf '"'

let add_args buf args =
  Buffer.add_char buf '{';
  List.iteri
    (fun i (k, v) ->
      if i > 0 then Buffer.add_char buf ',';
      Buffer.add_char buf '"';
      add_escaped buf k;
      Buffer.add_string buf "\":";
      add_arg buf v)
    args;
  Buffer.add_char buf '}'

let emit a ~ts ~dur ~tid ~cat ~name args =
  if a.closed then invalid_arg "Telemetry.Trace: emission after close";
  if a.limit > 0 && a.count >= a.limit then a.dropped <- a.dropped + 1
  else begin
  let buf = Buffer.create 128 in
  (match a.fmt with
  | Jsonl ->
      (* {"ts":…,"kind":"span","name":…,"cat":…,"tid":…,"dur":…,"args":{…}} *)
      Buffer.add_string buf "{\"ts\":";
      add_float buf ts;
      Buffer.add_string buf ",\"kind\":";
      Buffer.add_string buf
        (match dur with None -> "\"instant\"" | Some _ -> "\"span\"");
      Buffer.add_string buf ",\"name\":\"";
      add_escaped buf name;
      Buffer.add_string buf "\",\"cat\":\"";
      add_escaped buf cat;
      Buffer.add_string buf "\",\"tid\":";
      Buffer.add_string buf (string_of_int tid);
      (match dur with
      | None -> ()
      | Some d ->
          Buffer.add_string buf ",\"dur\":";
          add_float buf d);
      if args <> [] then begin
        Buffer.add_string buf ",\"args\":";
        add_args buf args
      end;
      Buffer.add_string buf "}\n"
  | Chrome ->
      (* Chrome trace-event: ts/dur in microseconds, one pid for the whole
         cluster, tid = snode. *)
      Buffer.add_string buf (if a.count = 0 then "[\n" else ",\n");
      Buffer.add_string buf "{\"name\":\"";
      add_escaped buf name;
      Buffer.add_string buf "\",\"cat\":\"";
      add_escaped buf cat;
      Buffer.add_string buf "\",\"ph\":";
      Buffer.add_string buf
        (match dur with None -> "\"i\",\"s\":\"t\"" | Some _ -> "\"X\"");
      Buffer.add_string buf ",\"pid\":0,\"tid\":";
      Buffer.add_string buf (string_of_int tid);
      Buffer.add_string buf ",\"ts\":";
      add_float buf (ts *. 1e6);
      (match dur with
      | None -> ()
      | Some d ->
          Buffer.add_string buf ",\"dur\":";
          add_float buf (d *. 1e6));
      if args <> [] then begin
        Buffer.add_string buf ",\"args\":";
        add_args buf args
      end;
      Buffer.add_string buf "}");
  a.write (Buffer.contents buf);
  a.count <- a.count + 1
  end

let instant t ~ts ~tid ?(cat = "sim") ~name args =
  match t with
  | Noop -> ()
  | Active a -> emit a ~ts ~dur:None ~tid ~cat ~name args

let span t ~ts ~dur ~tid ?(cat = "sim") ~name args =
  match t with
  | Noop -> ()
  | Active a -> emit a ~ts ~dur:(Some dur) ~tid ~cat ~name args

let close = function
  | Noop -> ()
  | Active a ->
      if not a.closed then begin
        a.closed <- true;
        (match a.fmt with
        | Jsonl -> ()
        | Chrome -> a.write (if a.count = 0 then "[]\n" else "\n]\n"));
        a.finish ()
      end
