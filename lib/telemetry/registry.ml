type counter = { mutable c : int }
type gauge = { mutable g : float }

type instrument =
  | Counter of counter
  | Gauge of gauge
  | Hist of Histogram.t

type key = string * (string * string) list

type t = { tbl : (key, instrument) Hashtbl.t }

let create () = { tbl = Hashtbl.create 32 }

let key name labels = (name, List.sort compare labels)

let find_or_add t ~name ~labels ~kind ~make ~cast =
  let k = key name labels in
  match Hashtbl.find_opt t.tbl k with
  | Some i -> (
      match cast i with
      | Some v -> v
      | None ->
          invalid_arg
            (Printf.sprintf
               "Telemetry.Registry: %s already registered with another kind \
                (wanted %s)"
               name kind))
  | None ->
      let i, v = make () in
      Hashtbl.add t.tbl k i;
      v

let counter t ?(labels = []) name =
  find_or_add t ~name ~labels ~kind:"counter"
    ~make:(fun () ->
      let c = { c = 0 } in
      (Counter c, c))
    ~cast:(function Counter c -> Some c | Gauge _ | Hist _ -> None)

let inc c by = c.c <- c.c + by
let counter_value c = c.c

let gauge t ?(labels = []) name =
  find_or_add t ~name ~labels ~kind:"gauge"
    ~make:(fun () ->
      let g = { g = 0. } in
      (Gauge g, g))
    ~cast:(function Gauge g -> Some g | Counter _ | Hist _ -> None)

let set g v = g.g <- v
let gauge_value g = g.g

let histogram t ?(labels = []) ?lo ?growth ?bins name =
  find_or_add t ~name ~labels ~kind:"histogram"
    ~make:(fun () ->
      let h = Histogram.create ?lo ?growth ?bins () in
      (Hist h, h))
    ~cast:(function Hist h -> Some h | Counter _ | Gauge _ -> None)

let is_empty t = Hashtbl.length t.tbl = 0

let histograms t ?(labels = []) name =
  Hashtbl.fold
    (fun (n, ls) instr acc ->
      match instr with
      | Hist h when n = name && List.for_all (fun kv -> List.mem kv ls) labels
        ->
          (ls, h) :: acc
      | Hist _ | Counter _ | Gauge _ -> acc)
    t.tbl []
  |> List.sort (fun (a, _) (b, _) -> compare a b)
  |> List.map snd

let merged t ?labels name =
  match histograms t ?labels name with
  | [] -> None
  | h :: rest -> Some (List.fold_left Histogram.merge h rest)

type row = {
  name : string;
  labels : (string * string) list;
  kind : string;
  count : int;
  value : float;
  p50 : float;
  p99 : float;
  max : float;
}

let rows t =
  Hashtbl.fold
    (fun (name, labels) instr acc ->
      let row =
        match instr with
        | Counter c ->
            { name; labels; kind = "counter"; count = 1;
              value = float_of_int c.c; p50 = nan; p99 = nan; max = nan }
        | Gauge g ->
            { name; labels; kind = "gauge"; count = 1; value = g.g;
              p50 = nan; p99 = nan; max = nan }
        | Hist h ->
            { name; labels; kind = "histogram"; count = Histogram.count h;
              value = Histogram.mean h;
              p50 = Histogram.quantile h 0.5;
              p99 = Histogram.quantile h 0.99;
              max = Histogram.max_value h }
      in
      row :: acc)
    t.tbl []
  |> List.sort (fun a b -> compare (a.name, a.labels) (b.name, b.labels))

let pp_labels labels =
  String.concat ","
    (List.map (fun (k, v) -> Printf.sprintf "%s=%s" k v) labels)

let cell f = if Float.is_nan f then "-" else Printf.sprintf "%.6g" f

let to_table t =
  let table =
    Dht_report.Table.create
      ~headers:[ "metric"; "labels"; "kind"; "count"; "value"; "p50"; "p99"; "max" ]
  in
  List.iter
    (fun r ->
      Dht_report.Table.add_row table
        [
          r.name; pp_labels r.labels; r.kind; string_of_int r.count;
          cell r.value; cell r.p50; cell r.p99; cell r.max;
        ])
    (rows t);
  table

let csv_header =
  [ "metric"; "labels"; "kind"; "count"; "value"; "p50"; "p99"; "max" ]

let csv_rows t =
  List.map
    (fun r ->
      [
        r.name; pp_labels r.labels; r.kind; string_of_int r.count;
        cell r.value; cell r.p50; cell r.p99; cell r.max;
      ])
    (rows t)
