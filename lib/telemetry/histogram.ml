module Welford = Dht_stats.Welford

type t = {
  lo : float;
  growth : float;
  log_growth : float;
  counts : int array;
  mutable underflow : int;
  mutable overflow : int;
  mutable moments : Welford.t;
  mutable vmin : float;
  mutable vmax : float;
}

let create ?(lo = 1e-6) ?(growth = 2.) ?(bins = 64) () =
  if lo <= 0. || not (Float.is_finite lo) then
    invalid_arg "Telemetry.Histogram.create: lo must be positive";
  if growth <= 1. || not (Float.is_finite growth) then
    invalid_arg "Telemetry.Histogram.create: growth must exceed 1";
  if bins <= 0 then invalid_arg "Telemetry.Histogram.create: bins <= 0";
  {
    lo;
    growth;
    log_growth = log growth;
    counts = Array.make bins 0;
    underflow = 0;
    overflow = 0;
    moments = Welford.create ();
    vmin = nan;
    vmax = nan;
  }

let same_shape a b =
  a.lo = b.lo && a.growth = b.growth
  && Array.length a.counts = Array.length b.counts

let bins t = Array.length t.counts

let bucket_bounds t i =
  if i < 0 || i >= bins t then
    invalid_arg "Telemetry.Histogram.bucket_bounds: bucket out of range";
  (t.lo *. (t.growth ** float_of_int i), t.lo *. (t.growth ** float_of_int (i + 1)))

let bucket_index t x =
  if x < t.lo then -1
  else begin
    let i = int_of_float (Float.floor (log (x /. t.lo) /. t.log_growth)) in
    let i = if i < 0 then 0 else if i >= bins t then bins t else i in
    (* The log can drift one bucket off at the exact geometric boundaries;
       nudge so half-open bucket semantics hold bit-for-bit. *)
    let lower i = t.lo *. (t.growth ** float_of_int i) in
    if i < bins t && x >= lower (i + 1) then min (i + 1) (bins t)
    else if i > 0 && x < lower i then i - 1
    else i
  end

let observe t x =
  if x < 0. || not (Float.is_finite x) then
    invalid_arg "Telemetry.Histogram.observe: negative or non-finite value";
  (match bucket_index t x with
  | -1 -> t.underflow <- t.underflow + 1
  | i when i >= bins t -> t.overflow <- t.overflow + 1
  | i -> t.counts.(i) <- t.counts.(i) + 1);
  Welford.add t.moments x;
  if Float.is_nan t.vmin || x < t.vmin then t.vmin <- x;
  if Float.is_nan t.vmax || x > t.vmax then t.vmax <- x

let count t = Welford.count t.moments
let sum t = Welford.mean t.moments *. float_of_int (count t)
let mean t = Welford.mean t.moments
let stddev t = Welford.stddev_population t.moments
let min_value t = t.vmin
let max_value t = t.vmax

let buckets t =
  let acc = ref [] in
  if t.overflow > 0 then
    acc := (t.lo *. (t.growth ** float_of_int (bins t)), infinity, t.overflow) :: !acc;
  for i = bins t - 1 downto 0 do
    if t.counts.(i) > 0 then
      let lo, hi = bucket_bounds t i in
      acc := (lo, hi, t.counts.(i)) :: !acc
  done;
  if t.underflow > 0 then acc := (0., t.lo, t.underflow) :: !acc;
  !acc

let quantile t q =
  if q < 0. || q > 1. || Float.is_nan q then
    invalid_arg "Telemetry.Histogram.quantile: q outside [0, 1]";
  let n = count t in
  if n = 0 then nan
  else begin
    (* Rank of the q-th observation (1-based, ceiling), then walk the
       cumulative counts: underflow, buckets, overflow. *)
    let rank = max 1 (int_of_float (Float.ceil (q *. float_of_int n))) in
    if rank <= t.underflow then t.lo
    else begin
      let seen = ref t.underflow in
      let result = ref nan in
      let i = ref 0 in
      while Float.is_nan !result && !i < bins t do
        seen := !seen + t.counts.(!i);
        if rank <= !seen then result := snd (bucket_bounds t !i);
        incr i
      done;
      if Float.is_nan !result then t.vmax
      else
        (* Never report past the largest observation: keeps the estimate
           conservative yet tight for sparsely-filled top buckets. *)
        Float.min !result t.vmax
    end
  end

let merge a b =
  if not (same_shape a b) then
    invalid_arg "Telemetry.Histogram.merge: shape mismatch";
  let t = create ~lo:a.lo ~growth:a.growth ~bins:(bins a) () in
  Array.iteri (fun i c -> t.counts.(i) <- c + b.counts.(i)) a.counts;
  t.underflow <- a.underflow + b.underflow;
  t.overflow <- a.overflow + b.overflow;
  t.moments <- Welford.merge a.moments b.moments;
  t.vmin <-
    (if Float.is_nan a.vmin then b.vmin
     else if Float.is_nan b.vmin then a.vmin
     else Float.min a.vmin b.vmin);
  t.vmax <-
    (if Float.is_nan a.vmax then b.vmax
     else if Float.is_nan b.vmax then a.vmax
     else Float.max a.vmax b.vmax);
  t

let clear t =
  Array.fill t.counts 0 (bins t) 0;
  t.underflow <- 0;
  t.overflow <- 0;
  t.moments <- Welford.create ();
  t.vmin <- nan;
  t.vmax <- nan

let pp ppf t =
  Format.fprintf ppf "lhist{n=%d; mean=%g; p50=%g; p99=%g; max=%g}" (count t)
    (mean t)
    (quantile t 0.5)
    (quantile t 0.99)
    t.vmax
