(** Model parameters (§2.2, §3.3).

    [pmin] bounds the number of partitions per vnode
    ([Pmin <= Pv <= Pmax = 2·Pmin], invariant G4/G4') and [vmin] bounds the
    number of vnodes per group ([Vmin <= Vg <= Vmax = 2·Vmin], invariant L2).
    Both must be powers of two and, once set, "remain constant for the
    lifetime of a DHT" (§4.1.2). *)

type t = private {
  space : Dht_hashspace.Space.t;
  pmin : int;  (** minimum partitions per vnode; a power of two *)
  vmin : int;  (** minimum vnodes per group; a power of two *)
}

val make : ?space:Dht_hashspace.Space.t -> pmin:int -> vmin:int -> unit -> t
(** [make ~pmin ~vmin ()] validates and freezes the parameters. [space]
    defaults to {!Dht_hashspace.Space.default}.
    @raise Invalid_argument if [pmin] or [vmin] is not a positive power of
    two. *)

val global : ?space:Dht_hashspace.Space.t -> pmin:int -> unit -> t
(** Parameters for the global approach: a single group that never splits
    ([vmin] is set to the largest representable power of two, so [Vmax] is
    never reached). *)

val check_quorum : rfactor:int -> read_quorum:int -> write_quorum:int -> unit
(** Validates a replication configuration: [1 <= R, W <= rfactor] and
    [R + W > rfactor], the quorum-intersection condition that makes a
    read overlap every acknowledged write on a stable replica set.
    @raise Invalid_argument otherwise. *)

val pmax : t -> int
(** [2 * pmin] (invariant G4/G4'). *)

val vmax : t -> int
(** [2 * vmin] (invariant L2); saturates at [max_int] for {!global}
    parameters. *)

val is_power_of_two : int -> bool
(** [is_power_of_two n] for positive [n]. *)

val log2_exact : int -> int
(** Base-2 logarithm of a positive power of two.
    @raise Invalid_argument otherwise. *)

val pp : Format.formatter -> t -> unit
