module Space = Dht_hashspace.Space

type t = { space : Space.t; pmin : int; vmin : int }

let is_power_of_two n = n > 0 && n land (n - 1) = 0

(* vmin for the global approach: a power of two large enough that Vmax is
   unreachable, yet 2 * vmin does not overflow. *)
let unbounded_vmin = 1 lsl 60

let make ?(space = Space.default) ~pmin ~vmin () =
  if not (is_power_of_two pmin) then
    invalid_arg "Params.make: pmin must be a positive power of two";
  if not (is_power_of_two vmin) then
    invalid_arg "Params.make: vmin must be a positive power of two";
  { space; pmin; vmin }

let log2_exact n =
  if not (is_power_of_two n) then
    invalid_arg "Params.log2_exact: not a positive power of two";
  let rec go acc n = if n = 1 then acc else go (acc + 1) (n lsr 1) in
  go 0 n

let global ?space ~pmin () = make ?space ~pmin ~vmin:unbounded_vmin ()

let check_quorum ~rfactor ~read_quorum ~write_quorum =
  if rfactor < 1 then invalid_arg "Params.check_quorum: rfactor must be >= 1";
  if read_quorum < 1 || read_quorum > rfactor then
    invalid_arg "Params.check_quorum: read quorum outside [1, rfactor]";
  if write_quorum < 1 || write_quorum > rfactor then
    invalid_arg "Params.check_quorum: write quorum outside [1, rfactor]";
  if read_quorum + write_quorum <= rfactor then
    invalid_arg
      "Params.check_quorum: R + W must exceed rfactor (quorum intersection)"
let pmax t = 2 * t.pmin
let vmax t = 2 * t.vmin

let pp ppf t =
  if t.vmin = unbounded_vmin then
    Format.fprintf ppf "params{%a; Pmin=%d; global}" Space.pp t.space t.pmin
  else
    Format.fprintf ppf "params{%a; Pmin=%d; Vmin=%d}" Space.pp t.space t.pmin
      t.vmin
