(** Log source for the core model. Enable with
    [Logs.Src.set_level Dht_core.Log.src (Some Logs.Debug)] (or the
    [DHT_LOG] environment variable of [dht_sim]). *)

val src : Logs.src

module L : Logs.LOG

val setup_from_env : unit -> unit
(** Honor the [DHT_LOG] environment variable: [debug] and [info] select
    those levels, any other value selects warnings; unset leaves logging
    untouched. Installs the [Logs_fmt] reporter when the variable is set.
    Call once at executable startup ([dht_sim], [bench], the examples). *)
