(* Log source for the core model; enable with
   Logs.Src.set_level Dht_core.Log.src (Some Logs.Debug). *)

let src = Logs.Src.create "dht.core" ~doc:"Cluster-oriented DHT core model"

module L = (val Logs.src_log src : Logs.LOG)

(* DHT_LOG=debug|info (anything else means warning) arms the Fmt reporter.
   Shared by dht_sim, the benchmarks and the examples so the variable
   behaves the same everywhere. *)
let setup_from_env () =
  match Sys.getenv_opt "DHT_LOG" with
  | None -> ()
  | Some level ->
      let level =
        match level with
        | "debug" -> Some Logs.Debug
        | "info" -> Some Logs.Info
        | _ -> Some Logs.Warning
      in
      Logs.set_reporter (Logs_fmt.reporter ());
      Logs.set_level level
