(* Knobs of the active balancer. All intervals are virtual seconds; the
   runtime schedules bounded rounds from them ([arm_balancer]), never
   self-rescheduling timers, so the event queue still drains. *)

type t = {
  gossip_interval : float;  (* push-pull round cadence *)
  fanout : int;  (* peers gossiped to per round *)
  report_interval : float;  (* snode -> directory report cadence *)
  balance_interval : float;  (* directory proposal cadence *)
  directories : int;  (* directory snodes (hash-located) *)
  heavy_ratio : float;  (* heavy when heat > ratio * cluster average *)
  light_ratio : float;  (* light when heat < ratio * cluster average *)
  emergency_factor : float;  (* immediate transfer past factor * average *)
  min_spacing : float;  (* per-snode spacing between transfers *)
}

(* The decision cadences ([balance_interval], [min_spacing]) must not
   outrun the heat EWMA's time constant: the directory classifies from
   reported heat, and a transfer's effect only shows up in reports after
   roughly one tau. Proposing faster than that acts on stale readings —
   the old heavy still looks heavy after its hot span left, the receiver
   still looks light — and the balancer overshoots into oscillation
   (measurably {e raising} skew). 0.2 s sits just above the runtime's
   default heat tau; gossip and reporting are cheap and can run much
   faster. *)
let default =
  {
    gossip_interval = 0.02;
    fanout = 2;
    report_interval = 0.02;
    balance_interval = 0.2;
    directories = 2;
    heavy_ratio = 1.25;
    light_ratio = 0.75;
    emergency_factor = 4.0;
    min_spacing = 0.2;
  }

let validate p =
  if p.gossip_interval <= 0. || p.report_interval <= 0.
     || p.balance_interval <= 0.
  then invalid_arg "Balance.Policy: intervals must be positive";
  if p.fanout < 1 then invalid_arg "Balance.Policy: fanout < 1";
  if p.directories < 1 then invalid_arg "Balance.Policy: directories < 1";
  if p.heavy_ratio <= 1.0 then
    invalid_arg "Balance.Policy: heavy_ratio must exceed 1";
  if p.light_ratio <= 0. || p.light_ratio >= 1.0 then
    invalid_arg "Balance.Policy: light_ratio must be in (0, 1)";
  if p.emergency_factor < p.heavy_ratio then
    invalid_arg "Balance.Policy: emergency_factor below heavy_ratio";
  if p.min_spacing < 0. then invalid_arg "Balance.Policy: min_spacing < 0"
