(** Load directories (after [lb_active_directories.erl], implementing
    Godfrey et al.'s many-to-many scheme): hash-located directory snodes
    collect per-snode load reports, split reporters into light and heavy
    against the cluster-average heat, and pair the heaviest with the
    lightest to propose hot-partition transfers. An {e emergency} report —
    heat past [emergency_factor × average] — bypasses the round cadence.

    The directory is pure bookkeeping; the runtime owns all messaging. *)

type t

val create : unit -> t

val note : t -> Summary.t -> bool
(** Version-fenced install of a report; [false] when stale. *)

val reports : t -> Summary.t list
(** Every report, sorted by origin. *)

val report_count : t -> int

val reset : t -> unit
(** Forget everything (crash semantics — directory state is soft). *)

val locate : snodes:int -> count:int -> int list
(** The [min count snodes] distinct directory snodes of a cluster, chosen
    by hashing the directory index: a pure function of the cluster size,
    identical at every snode. *)

val directory_for : snodes:int -> count:int -> origin:int -> int
(** The directory snode [origin] reports to (round-robin over
    {!locate}). *)

val average : t -> float
(** Mean reported heat; [0.] with no reports. *)

val classify : t -> Policy.t -> Summary.t list * Summary.t list
(** [(light, heavy)]: lights ascending by heat, heavies descending.
    A heavy must own ≥ 2 partitions (transfers are one-for-one swaps). *)

val pair :
  light:Summary.t list -> heavy:Summary.t list ->
  (Summary.t * Summary.t) list
(** Many-to-many proposal pairs: k-th heaviest with k-th lightest. *)

val emergency : t -> Policy.t -> Summary.t -> bool
(** Whether a just-installed report crosses the emergency threshold. *)

val lightest_except : t -> origin:int -> Summary.t option
(** Lightest reporter other than [origin] — the emergency destination. *)

val admit_proposal : t -> Policy.t -> origin:int -> now:float -> bool
(** Rate limit: admits at most one proposal about [origin] per
    [min_spacing]; advances the stamp when it admits. *)
