(* A push-pull gossip view: the freshest load summary this observer has
   seen per origin. Merges are version-fenced so a delayed or reordered
   gossip message can never roll an entry back — the property the
   convergence tests pin. The view itself is soft state: it dies with a
   crash (reset) while the origins' version counters (kept by the runtime)
   are durable, so post-restart summaries still supersede pre-crash ones
   everywhere. *)

type t = { entries : (int, Summary.t) Hashtbl.t }

let create () = { entries = Hashtbl.create 16 }

let note t (s : Summary.t) =
  match Hashtbl.find_opt t.entries s.Summary.origin with
  | Some cur when not (Summary.fresher s cur) -> false
  | Some _ | None ->
      Hashtbl.replace t.entries s.Summary.origin s;
      true

let merge t entries =
  List.fold_left (fun acc s -> if note t s then acc + 1 else acc) 0 entries

let find t origin = Hashtbl.find_opt t.entries origin

(* Deterministic export: sorted by origin, so gossip payloads and test
   snapshots do not depend on hash-table iteration order. *)
let entries t =
  Hashtbl.fold (fun _ s acc -> s :: acc) t.entries []
  |> List.sort (fun a b -> compare a.Summary.origin b.Summary.origin)

let size t = Hashtbl.length t.entries
let reset t = Hashtbl.reset t.entries

(* Staleness of the view against ground truth [version_of origin]: the
   largest version gap over the origins the observer knows about, plus
   [max_int] signalled as a missing origin count. Used by the convergence
   property: after the rounds settle every live observer must be within
   one round of every live origin. *)
let staleness t ~origins ~version_of =
  List.fold_left
    (fun (missing, lag) origin ->
      match find t origin with
      | None -> (missing + 1, lag)
      | Some s -> (missing, max lag (version_of origin - s.Summary.version)))
    (0, 0) origins
