(** One snode's load summary, as disseminated by the gossip layer and
    collected by the load directories. Version stamps are per-origin and
    monotonic: a summary with a higher [version] supersedes any older one
    from the same [origin], and merges never install a lower stamp, so an
    observer's view of any origin only moves forward. *)

type t = {
  origin : int;  (** the snode this summary describes *)
  version : int;  (** per-origin monotonic stamp; higher = fresher *)
  heat : float;  (** total EWMA heat over the origin's owned partitions *)
  queue : int;  (** unacknowledged outbound messages (egress pressure) *)
  partitions : int;  (** partitions the origin currently owns *)
  stamped : float;  (** virtual time the origin produced the summary *)
}

val make :
  origin:int ->
  version:int ->
  heat:float ->
  queue:int ->
  partitions:int ->
  stamped:float ->
  t

val fresher : t -> t -> bool
(** [fresher a b] — [a] strictly supersedes [b] (same origin assumed). *)

val pp : Format.formatter -> t -> unit
