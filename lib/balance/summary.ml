(* One snode's load summary as gossiped through the cluster. Plain data:
   the runtime fills it from its heat table and outbox depths, the gossip
   and directory layers only compare and forward it. *)

type t = {
  origin : int;  (* the snode this summary describes *)
  version : int;  (* per-origin monotonic stamp; higher = fresher *)
  heat : float;  (* total EWMA heat over the origin's owned partitions *)
  queue : int;  (* unacknowledged outbound messages (egress pressure) *)
  partitions : int;  (* partitions the origin currently owns *)
  stamped : float;  (* virtual time the origin produced the summary *)
}

let make ~origin ~version ~heat ~queue ~partitions ~stamped =
  { origin; version; heat; queue; partitions; stamped }

(* Freshness order between two summaries of the same origin. *)
let fresher a b = a.version > b.version

let pp ppf s =
  Fmt.pf ppf "s%d v%d heat=%.3f q=%d parts=%d" s.origin s.version s.heat
    s.queue s.partitions
