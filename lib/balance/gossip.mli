(** Push-pull gossip view of per-snode load summaries (after Scalaris's
    [gossip.erl], reduced to what load balancing needs): each observer
    keeps the freshest {!Summary.t} it has seen per origin, merges are
    version-fenced (an entry never regresses to an older stamp), and the
    runtime drives bounded rounds off the sim clock so convergence is
    checkable against the round count.

    The view is {e soft state}: it is reset when its snode crashes. The
    per-origin version counters live in the runtime and are durable, so a
    restarted snode's first summary still supersedes everything it
    gossiped before the crash. *)

type t

val create : unit -> t

val note : t -> Summary.t -> bool
(** Install the summary if it is fresher than (or the first for) its
    origin. [false] — and no change — when the view already holds an
    entry with an equal or higher version. *)

val merge : t -> Summary.t list -> int
(** [note] each summary; returns how many actually installed. *)

val find : t -> int -> Summary.t option

val entries : t -> Summary.t list
(** Every entry, sorted by origin — the push-pull payload. *)

val size : t -> int

val reset : t -> unit
(** Forget everything (crash semantics). *)

val staleness : t -> origins:int list -> version_of:(int -> int) -> int * int
(** [(missing, lag)] against ground truth: how many of [origins] the view
    has never heard of, and the largest version gap
    [version_of o - (view entry).version] over the rest. A converged view
    has [missing = 0] and [lag] at most one gossip round. *)
