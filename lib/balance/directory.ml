(* Load directories in the style of Scalaris's lb_active_directories
   (Godfrey et al.'s many-to-many scheme): a small, hash-located set of
   snodes collects per-snode load reports, classifies reporters into
   light/heavy against the cluster-average heat, and pairs the heaviest
   with the lightest to propose transfers. Directory state is a plain
   report table — the runtime owns messaging and the transfer itself. *)

type t = {
  reports : (int, Summary.t) Hashtbl.t;
  (* Per-origin stamp of the last proposal this directory issued toward
     or about the origin — the emergency path's rate limit. *)
  proposed : (int, float) Hashtbl.t;
}

let create () = { reports = Hashtbl.create 16; proposed = Hashtbl.create 8 }

(* Version-fenced install, like the gossip view: directories may hear the
   same origin through delayed reports. *)
let note t (s : Summary.t) =
  match Hashtbl.find_opt t.reports s.Summary.origin with
  | Some cur when not (Summary.fresher s cur) -> false
  | Some _ | None ->
      Hashtbl.replace t.reports s.Summary.origin s;
      true

let reports t =
  Hashtbl.fold (fun _ s acc -> s :: acc) t.reports []
  |> List.sort (fun a b -> compare a.Summary.origin b.Summary.origin)

let report_count t = Hashtbl.length t.reports
let reset t =
  Hashtbl.reset t.reports;
  Hashtbl.reset t.proposed

(* Directory placement: [count] distinct snodes chosen by hashing the
   directory index — a pure function of the cluster size, so every snode
   locates the same directories without coordination. *)
let locate ~snodes ~count =
  let count = min count snodes in
  let chosen = Hashtbl.create count in
  let rec place k acc =
    if k = count then List.rev acc
    else
      let rec probe h =
        let sid = h mod snodes in
        if Hashtbl.mem chosen sid then probe (h + 1) else sid
      in
      let sid = probe (Hashtbl.hash ("lb.directory", k)) in
      Hashtbl.add chosen sid ();
      place (k + 1) (sid :: acc)
  in
  place 0 []

(* The directory snode [origin] reports to: origins spread round-robin
   over the directory set, again without coordination. *)
let directory_for ~snodes ~count ~origin =
  let dirs = locate ~snodes ~count in
  List.nth dirs (origin mod List.length dirs)

let average t =
  let n = Hashtbl.length t.reports in
  if n = 0 then 0.
  else
    Hashtbl.fold (fun _ s acc -> acc +. s.Summary.heat) t.reports 0.
    /. float_of_int n

(* Light/heavy split against the cluster average. Heavies descending by
   heat (hottest first), lights ascending — [pair] zips them so the most
   loaded snode sheds toward the least loaded one. A heavy must own at
   least two partitions: a transfer is a one-for-one partition swap, so a
   single-partition snode would just trade its hot spot around. *)
let classify t (p : Policy.t) =
  let avg = average t in
  if avg <= 0. then ([], [])
  else
    let light, heavy =
      Hashtbl.fold
        (fun _ s (l, h) ->
          if s.Summary.heat > p.Policy.heavy_ratio *. avg && s.Summary.partitions > 1
          then (l, s :: h)
          else if s.Summary.heat < p.Policy.light_ratio *. avg then (s :: l, h)
          else (l, h))
        t.reports ([], [])
    in
    let by_heat a b = compare a.Summary.heat b.Summary.heat in
    ( List.sort
        (fun a b ->
          match by_heat a b with
          | 0 -> compare a.Summary.origin b.Summary.origin
          | c -> c)
        light,
      List.sort
        (fun a b ->
          match by_heat b a with
          | 0 -> compare a.Summary.origin b.Summary.origin
          | c -> c)
        heavy )

(* Many-to-many pairing: k-th heaviest sheds to k-th lightest. *)
let pair ~light ~heavy =
  let rec zip acc = function
    | h :: hs, l :: ls -> zip ((h, l) :: acc) (hs, ls)
    | _ -> List.rev acc
  in
  zip [] (heavy, light)

(* Emergency: a report so far above the average that waiting for the next
   balance round risks saturation. Needs at least two reports (a lone
   report is trivially "the average"). *)
let emergency t (p : Policy.t) (s : Summary.t) =
  let avg = average t in
  report_count t >= 2 && avg > 0. && s.Summary.partitions > 1
  && s.Summary.heat >= p.Policy.emergency_factor *. avg

(* Lightest reporter other than [origin]; the emergency transfer's
   destination. *)
let lightest_except t ~origin =
  Hashtbl.fold
    (fun o s best ->
      if o = origin then best
      else
        match best with
        | Some b
          when b.Summary.heat < s.Summary.heat
               || (b.Summary.heat = s.Summary.heat
                   && b.Summary.origin < s.Summary.origin) ->
            best
        | _ -> Some s)
    t.reports None

(* Rate limit on proposals about [origin]: at most one per [min_spacing]
   of virtual time. Advances the stamp when it admits. *)
let admit_proposal t (p : Policy.t) ~origin ~now =
  let ok =
    match Hashtbl.find_opt t.proposed origin with
    | Some last -> now -. last >= p.Policy.min_spacing
    | None -> true
  in
  if ok then Hashtbl.replace t.proposed origin now;
  ok
