(** Active-balancer policy: round cadences, directory count, the
    light/heavy classification band around the cluster-average heat, the
    emergency threshold and the per-snode transfer rate limit. *)

type t = {
  gossip_interval : float;  (** push-pull round cadence (virtual s) *)
  fanout : int;  (** peers gossiped to per round *)
  report_interval : float;  (** snode → directory report cadence *)
  balance_interval : float;  (** directory proposal cadence *)
  directories : int;  (** directory snodes (hash-located) *)
  heavy_ratio : float;  (** heavy when heat > ratio × cluster average *)
  light_ratio : float;  (** light when heat < ratio × cluster average *)
  emergency_factor : float;  (** immediate transfer past factor × average *)
  min_spacing : float;  (** per-snode spacing between transfers *)
}

val default : t
(** Gossip and directory reports every 0.02 virtual seconds; proposals
    every 0.2 s with 0.2 s per-snode spacing — deliberately {e slower}
    than the heat EWMA's default time constant, so each transfer's
    effect is visible in reported heat before the next decision.
    Proposing faster than tau acts on stale readings and oscillates. *)

val validate : t -> unit
(** @raise Invalid_argument when a field is out of range. *)
