(** Wire protocol of the distributed snode runtime.

    Every value is a message payload exchanged between snodes over the
    simulated cluster network; {!size_bytes} estimates its serialized size
    so the network model charges realistic transfer times. *)

open Dht_core
open Dht_hashspace
module Versioned = Dht_kv.Versioned

type routed_op =
  | Op_create of { newcomer : Vnode_id.t }
      (** a vnode creation request: the owner of the routed point is the
          victim vnode (§3.6) *)
  | Op_put of { key : string; value : string; token : int }
  | Op_get of { key : string; token : int }
  | Op_sync of { key : string; cell : Versioned.cell }
      (** anti-entropy orphan return: a cell found on a snode that is no
          longer in its partition's replica set, routed home to the owner
          (which merges it by LWW; no reply) *)

type group_split = {
  parent : Group_id.t;
  left : Group_id.t;
  left_members : (Vnode_id.t * int) list;  (** member, partition count *)
  right : Group_id.t;
  right_members : (Vnode_id.t * int) list;
}

type prepare = {
  event : int;  (** balancing-event identifier, unique per coordinator *)
  split : group_split option;  (** set when the victim group was full *)
  target : Group_id.t;  (** group receiving the newcomer *)
  level_before : int;
  epoch_before : int;
      (** the target group's LPDR epoch when the event was planned; every
          participant commits the event at [epoch_before + 1], keeping all
          copies in lockstep (used to fence stale {!Lpdr_push} replies) *)
  plan : Plan.t;
  newcomer : Vnode_id.t;
  donor_batches : int;  (** transfers the newcomer must expect *)
}

type placement = (Span.t * Vnode_id.t * int list) list
(** Partitions with their new owner vnode and the replica set assigned to
    them — the snode ids (owner's snode first) computed by
    {!Dht_replication.Placement.replicas} at donation time. With
    [rfactor = 1] the list is just the owner's snode. *)

type msg =
  | Routed of { point : int; hops : int; retries : int; origin : int; op : routed_op }
      (** routed through (possibly stale) caches toward the owner of
          [point]; [origin] is the snode that issued the operation *)
  | Create_at_group of {
      group : Group_id.t;
      point : int;  (** kept for re-routing if the group has split away *)
      newcomer : Vnode_id.t;
      origin : int;
    }  (** sent to the group's manager snode *)
  | Prepare of prepare
  | Prepare_ack of { event : int; moved : placement }
      (** participant acknowledgement; donors report the partitions they
          shipped, to whom, and the replica set each was assigned *)
  | Transfer of {
      event : int;
      to_vnode : Vnode_id.t;
      spans : Span.t list;
      data : (string * Versioned.cell) list;
          (** keys migrating with the spans, with their versions *)
    }
  | All_received of { event : int }
      (** newcomer snode: every donor batch has arrived *)
  | Commit of { event : int; moved : placement }
      (** participants learn the final placement (owner and replica set)
          of the moved partitions; when replication is on the commit also
          fans out to every snode so the replica map never straddles a
          stale LPDR epoch *)
  | Create_done of { newcomer : Vnode_id.t }
  | Remove_request of { leaving : Vnode_id.t; origin : int; token : int }
      (** departure request, sent to the vnode's hosting snode *)
  | Remove_at_group of {
      group : Group_id.t;
      leaving : Vnode_id.t;
      origin : int;
      token : int;
    }  (** forwarded to the group's manager *)
  | Remove_prepare of {
      event : int;
      group : Group_id.t;
      leaving : Vnode_id.t;
      epoch_before : int;
          (** the group's LPDR epoch when the departure was planned; the
              event commits at [epoch_before + 1] (see {!prepare}) *)
      moves : Plan.move list;
      remaining : (Vnode_id.t * int) list;  (** LPDR after the departure *)
    }
  | Remove_done of { token : int; ok : bool }
      (** to the origin; [ok = false] when the model refuses the departure
          (L2 floor, capacity, unknown vnode) *)
  | Put_ack of { token : int; hint : (Span.t * Vnode_id.t) option }
      (** single-copy write acknowledged at the owner. When the operation
          arrived through one or more forwarding hops, the owner attaches a
          corrected-owner [hint] — its exact owned span containing the
          point — so the origin repairs its stale routing-cache entry off
          the reply instead of a dedicated repair message. [None] costs no
          extra bytes. *)
  | Get_reply of {
      token : int;
      value : string option;
      hint : (Span.t * Vnode_id.t) option;
          (** same piggybacked stale-entry repair as {!Put_ack} *)
    }
  | Busy of { token : int }
      (** admission-control rejection: the coordinator could not finish the
          operation within its deadline and shed it {e before} touching any
          replica. The origin fails the op immediately instead of waiting
          out a timeout. A [Busy]-rejected write was never applied anywhere
          and must never be observed as committed. *)
  | Repl_put of { token : int; key : string; point : int; cell : Versioned.cell }
      (** quorum write: the coordinator fans the stamped cell to every
          replica of [point]; replicas accept-and-store (owner into its
          partition table, others into their replica table) *)
  | Repl_put_ack of { token : int }  (** one stored copy, counts toward W *)
  | Repl_get of { token : int; key : string; point : int }
      (** quorum read probe; answered from whichever table holds the key *)
  | Repl_get_reply of { token : int; cell : Versioned.cell option }
  | Repl_hinted of {
      token : int;
      target : int;
      key : string;
      point : int;
      cell : Versioned.cell;
    }
      (** sloppy quorum: [target] (a replica that did not acknowledge in
          time, presumed crashed) is skipped and the cell parked on the
          recipient, which acks toward W and owes [target] a
          {!Hint_flush} *)
  | Hint_flush of { key : string; point : int; cell : Versioned.cell }
      (** hinted-handoff drain, retried by the reliable layer until the
          crashed target returns *)
  | Hint_ack of { key : string }  (** target stored the flushed hint *)
  | Repl_repair of { key : string; point : int; cell : Versioned.cell }
      (** read repair: the freshest cell seen by a quorum read, pushed to
          the repliers that returned stale or missing data (no reply) *)
  | Repl_digest of { span : Span.t; count : int; vhash : int }
      (** anti-entropy probe from a partition's owner: cell count and
          XOR-folded {!Versioned.digest} of the span; a replica whose own
          digest differs answers with {!Repl_sync_request} *)
  | Repl_sync_request of { span : Span.t }
  | Repl_sync of {
      span : Span.t;
      cells : (string * Versioned.cell) list;
      reply : bool;
    }
      (** full-span cell exchange; the receiver merges by LWW and, when
          [reply], answers with its strictly-fresher cells ([reply =
          false]) so repair is bidirectional *)
  | Ae_request
      (** broadcast by a recovering snode: please digest-push every
          partition whose replica set includes me *)
  | Mt_root of { round : int; span : Span.t; count : int; vhash : int }
      (** Merkle anti-entropy opener from a partition's owner: the root
          frame of the owner's hash tree restricted to [span]. [round]
          stamps the owner's tree snapshot so the receiver rebuilds its
          own snapshot exactly once per reconciliation round. A receiver
          whose frame matches stays silent; otherwise it descends with
          {!Mt_request}. *)
  | Mt_request of { spans : Span.t list }
      (** tree descent: the receiver asks the owner for the child frames
          of each divergent span *)
  | Mt_frames of { frames : (Span.t * int * int * bool) list }
      (** owner's answer: [(span, count, hash, leaf)] per frame, two
          children per requested span ([leaf] marks frames the owner
          cannot refine further — descent below them must switch to key
          transfer via {!Mt_leaf}) *)
  | Mt_leaf of { span : Span.t; keys : (string * int) list }
      (** divergent-bucket resolution: [(key, digest)] of every cell the
          sender holds inside [span]. The receiver ships cells the sender
          lacks or holds stale ({!Repl_sync} with [reply = false]) and
          asks for the rest with {!Mt_want} — so exactly the symmetric
          difference crosses the wire. *)
  | Mt_want of { span : Span.t; keys : string list }
      (** the receiver of an {!Mt_leaf} requests the cells it lacks;
          answered with {!Repl_sync} ([reply = false]) *)
  | Range_get of { token : int; lo : int; hi : int }
      (** range-read probe: please answer with every cell whose hash
          point falls in [[lo, hi)] restricted to the partitions this
          replica holds *)
  | Range_reply of { token : int; lo : int; cells : (string * Versioned.cell) list }
      (** one replica's slice of a range read; [lo] identifies the
          coordinator-side leg the reply belongs to *)
  | Traced of { trace : int; span : int; hop : int; payload : msg }
      (** causal span context riding the payload: [trace] is the client
          operation's trace id, [span] the id of this wire edge (its parent
          is recorded in the span log, not on the wire), [hop] the
          propagation depth. Added only when the runtime traces causally;
          {!size_bytes} charges {!trace_context} extra bytes so the
          propagation overhead is visible in the byte accounting.
          Retransmissions of a frame keep the same [trace] but each actual
          transmission logs a fresh transmission span under [span]. *)
  | Batch of msg list
      (** transmission-batching envelope: every message a snode addressed
          to one destination within a linger window, coalesced into a
          single network send and delivered (and processed) in issue
          order. Parts are protocol messages, piggybacked {!Ack}s, or one
          {!Req}-framed sub-batch; {!size_bytes} charges one shared
          envelope plus a per-part frame header, amortizing the fixed
          envelope cost that dominates small-message traffic. *)
  | Req of { seq : int; payload : msg }
      (** reliable-delivery frame: [seq] numbers the sender's stream toward
          one destination, which deduplicates by [(sender, seq)] and
          acknowledges with {!Ack}; the sender retransmits with backoff
          until acknowledged. Only used when a fault plan is active. The
          payload may be a {!Batch} of protocol messages — one sequence
          number, one retransmission timer and one ack then cover the
          whole batch. *)
  | Ack of { seq : int; floor : int }
      (** link-layer acknowledgement of a {!Req}; sent unreliably (a lost
          ack just provokes one more retransmission). [floor] makes the
          ack cumulative: the receiver has processed {e every} seq up to
          and including [floor], so the sender also retires any older
          outbox entries a lost ack left behind. *)
  | Lpdr_pull of { group : Group_id.t }
      (** crash recovery: a restarting snode asks the group's manager for a
          fresh LPDR copy *)
  | Lpdr_push of {
      group : Group_id.t;
      view : (int * int * (Vnode_id.t * int) list) option;
    }
      (** manager's reply: [(level, epoch, counts)], or [None] when the
          manager no longer carries the group (it split away; the puller's
          pending commit will refresh its copy instead) *)
  | Lb_report of {
      origin : int;
      pull : bool;
      entries : Dht_balance.Summary.t list;
      owns : (Span.t * Vnode_id.t) list;
    }
      (** load dissemination: [origin]'s gossip view (push-pull rounds,
          [pull = true] asks the receiver to answer with its own view) or
          a single-entry report to [origin]'s load directory
          ([pull = false]). Entries merge version-fenced — an observer's
          view of any origin never regresses. [owns] piggybacks routing
          maintenance on the same message class: [origin]'s exact owned
          placements for the prefix regions the receiver stewards, learned
          into the receiver's bounded routing cache. [[]] on pure load
          gossip, leaving the balancer's bytes untouched. *)
  | Lb_proposal of { to_snode : int; emergency : bool }
      (** directory → heavy snode: shed one hot partition toward the light
          snode [to_snode]. [emergency] marks the hard-threshold path that
          bypassed the balance-round cadence (telemetry only; the receiver
          acts the same). Advisory: the receiver re-validates against its
          own state and may ignore it. *)
  | Lb_transfer of {
      group : Group_id.t;
      hot : Span.t;
      from_vnode : Vnode_id.t;
      to_snode : int;
      origin : int;
    }
      (** heavy snode → group manager: start a balancing event that swaps
          the hot partition [hot] out of [from_vnode] toward a group member
          hosted on [to_snode]. Serializes through the manager's group
          lock, exactly like {!Create_at_group}; the manager re-validates
          from its current LPDR copy and drops stale requests. *)
  | Lb_swap of {
      event : int;
      hot : Span.t;
      from_vnode : Vnode_id.t;
      to_vnode : Vnode_id.t;
    }
      (** manager → the two hosting snodes: the prepare of a hot-partition
          transfer. [from_vnode] donates [hot] (or its hottest remaining
          partition if [hot] has already migrated) to [to_vnode];
          [to_vnode] donates its coldest partition back. Per-vnode
          partition counts are unchanged, so the event never touches LPDRs
          — only placement moves, through the standard epoch-fenced
          Prepare_ack/Commit round, making the transfer indistinguishable
          from a join/leave migration to the invariant battery. *)

val trace_context : int
(** Bytes a {!Traced} wrapper adds to its payload (trace id + span id +
    hop count). *)

val cells_size : (string * Versioned.cell) list -> int
(** Serialized size of a [(key, cell)] payload list, as charged inside
    {!size_bytes} — exposed so byte-accurate heat can be charged for
    range replies without re-deriving the estimate. *)

val size_bytes : msg -> int
(** Serialized-size estimate: 64-byte envelope, 16 bytes per id/span/count
    entry, string payloads at their length, versioned cells at value
    length plus a 16-byte version ({!Versioned.size_bytes}). A {!Batch}
    costs one envelope plus, per part, a 16-byte frame header and the
    part's body (the part's own envelope is amortized away):
    [size_bytes (Batch parts) = envelope
     + Σ (per_entry + size_bytes part - envelope)]. *)

val describe : msg -> string
(** Short human-readable tag, for tracing and the per-tag network traffic
    accounting ({!Dht_event_sim.Network.per_tag}). Allocation-free for
    every message real traffic produces (including single-level [Req]
    framing), so it is safe on the hot send path. *)
