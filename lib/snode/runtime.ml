open Dht_core
open Dht_hashspace
module Engine = Dht_event_sim.Engine
module Network = Dht_event_sim.Network
module Fault = Dht_event_sim.Fault
module Registry = Dht_telemetry.Registry
module Histogram = Dht_telemetry.Histogram
module Trace = Dht_telemetry.Trace
module Rng = Dht_prng.Rng
module Hash = Dht_hashes.Hash
module Versioned = Dht_kv.Versioned
module Merkle = Dht_merkle.Merkle
module Placement = Dht_replication.Placement
module Heat = Dht_obsv.Heat
module Balance = Dht_balance
module Fingers = Dht_cluster.Fingers
module Vtbl = Hashtbl.Make (Vnode_id)
module Gtbl = Hashtbl.Make (Group_id)

(* Forwarding limit: a routed operation bounces through at most [max_hops]
   stale caches, then backs off and retries from scratch; convergence is
   guaranteed once the in-flight balancing event commits. The retry budget
   and backoff delay are per-runtime (see [create]), and [max_hops] itself
   is a [create] parameter with this default — scaling sweeps raise it so
   the hop distribution is measurable instead of retry-truncated. *)
let default_max_hops = 4

let log_src = Logs.Src.create "dht.snode" ~doc:"Distributed snode runtime"

module Log = (val Logs.src_log log_src : Logs.LOG)

(* One mutable slot per stored key: an LWW update lands with a single
   table probe (find, then overwrite in place) instead of the
   find-then-replace double hash. Slots are per-table; the immutable cell
   inside may be shared across snodes, the slot never is. *)
type slot = { mutable cell : Versioned.cell }

type vnode_local = {
  vid : Vnode_id.t;
  mutable group : Group_id.t;
  mutable spans : Span.t list;
  data : (string, slot) Hashtbl.t;  (* authoritative copies *)
}

type lpdr = {
  mutable level : int;
  mutable epoch : int;
      (* bumped once per committed balancing event on the group; all copies
         move in lockstep, which fences stale Lpdr_push replies *)
  mutable counts : (Vnode_id.t * int) list;
}

(* Coordinator-side state of one in-flight balancing event (creation,
   removal or load-driven partition swap). *)
type event_state = {
  ev_done : Wire.msg option;
      (* completion message for the origin snode; [None] for load swaps,
         which have no requester waiting *)
  ev_origin : int;
  ev_lock : Group_id.t;
  ev_kind : [ `Create | `Remove | `Balance ];
  ev_start : float;  (* virtual time the coordinator planned the event *)
  mutable ev_acks : int;
  mutable ev_moved : Wire.placement;
  ev_participants : int list;
  mutable ev_waits : int;  (* All_received notifications still expected *)
  mutable ev_committed : bool;
  mutable ev_watch : Engine.handle option;  (* per-round liveness watchdog *)
}

(* Newcomer-side expectation of donor batches. *)
type incoming = { mutable got : int; want : int; coordinator : int }

(* Participant-side deferred identity changes (applied at Commit, so that
   concurrent events keep serializing through the group's manager until the
   event is durable). *)
type pending_prepare =
  | P_create of Wire.prepare
  | P_remove of {
      r_leaving : Vnode_id.t;
      r_group : Group_id.t;
      r_epoch : int;  (* the group's epoch the event was planned at *)
      r_remaining : (Vnode_id.t * int) list;
    }

(* Reliable-delivery state toward/from one remote snode. The sender side
   (sequence counter, outbox of unacked messages) and the receiver side
   (dedup window) live in one record keyed by the peer's sid. All of it is
   modelled as durable (write-ahead-logged): a crash only kills the
   retransmission timers, which restart re-arms from the outbox. *)
type outmsg = {
  o_payload : Wire.msg;
  mutable o_attempts : int;
  mutable o_sent : float;  (* virtual time of the last transmission *)
  mutable o_live : bool;
      (* inside the bounded transmission window (timer armed); [false]
         while parked in the peer's backlog waiting for a slot *)
  mutable o_timer : Engine.timer option;
      (* reusable slot, allocated at the first arming; every retransmission
         re-arms it instead of building a fresh closure + handle *)
}

type peer = {
  mutable next_seq : int;
  outbox : (int, outmsg) Hashtbl.t;  (* seq -> unacked message *)
  backlog : int Queue.t;
      (* seqs staged past the inflight window, promoted in order as acks
         retire window entries; entries stay in [outbox] (durable) *)
  mutable live : int;  (* outbox entries currently inside the window *)
  mutable floor : int;  (* every seq <= floor from this peer was processed *)
  seen : (int, unit) Hashtbl.t;  (* processed seqs above the floor *)
  mutable suspect : bool;  (* route poisoned after repeated timeouts *)
  mutable strikes : int;
      (* consecutive retransmission timeouts — the route's graded suspicion
         level; poisoning at [poison_after] is just the top of the scale,
         and admission control reads the raw level below it *)
  mutable srtt : float;  (* smoothed RTT (Jacobson); 0 = no sample yet *)
  mutable rttvar : float;
}

(* Per-destination transmission-coalescing buffer: protocol messages (and
   piggybacked acks) addressed to one peer wait here for at most one
   linger window, then leave as a single envelope ([Wire.Batch]). Staged
   parts are modelled as durable, like the reliable outbox they feed; only
   the flush timer dies with a crash (restart re-arms it). *)
type obuf = {
  ob_dst : int;
  mutable ob_parts : Wire.msg list;  (* newest first *)
  mutable ob_timer : Engine.timer option;  (* created once, re-armed *)
}

(* Coordinator-side state of one in-flight quorum operation. Writes count
   distinct snodes that stored a copy (sloppy W: hinted fallbacks count);
   reads collect distinct repliers until R and resolve by LWW. *)
type qkind =
  | Q_put of {
      q_cell : Versioned.cell;
      mutable q_hint : Engine.handle option;  (* hinted-handoff timer *)
    }
  | Q_get of { mutable q_replies : (int * Versioned.cell option) list }

type qstate = {
  q_token : int;
  q_key : string;
  q_point : int;
  q_set : int list;  (* replica set resolved at issue time *)
  mutable q_acked : int list;  (* distinct snodes holding a copy (puts) *)
  mutable q_done : bool;  (* quorum met, origin answered *)
  q_kind : qkind;
  (* Causal context captured when the quorum opened, restored by the hint
     and deadline timers so hinted handoff stays inside the op's trace. *)
  q_ctx : (int * int * int) option;
}

(* Coordinator-side state of one in-flight range read: one leg per
   partition intersecting [lo, hi), each waiting for R distinct replies,
   all merging into one LWW-deduplicated accumulator. *)
type range_leg = {
  rl_lo : int;  (* clipped sub-range, [rl_lo, rl_hi) *)
  rl_hi : int;
  rl_set : int list;  (* replica set resolved at issue time *)
  rl_need : int;  (* R clamped to the set size *)
  mutable rl_replied : int list;  (* distinct repliers so far *)
  mutable rl_done : bool;
}

type rstate = {
  r_token : int;
  mutable r_open : int;  (* legs still short of their quorum *)
  r_legs : (int, range_leg) Hashtbl.t;  (* keyed by clipped lo *)
  r_cells : (string, Versioned.cell) Hashtbl.t;  (* LWW accumulator *)
  r_ctx : (int * int * int) option;  (* causal context at issue time *)
}

type snode = {
  sid : int;
  mutable alive : bool;
  mutable down_since : float;  (* crash time, for downtime telemetry *)
  locals : vnode_local Vtbl.t;
  lpdrs : lpdr Gtbl.t;
  owned : Vnode_id.t Point_map.t;  (* exact local ownership *)
  cache : Vnode_id.t Point_map.t;  (* global placement; may be stale *)
  (* Replica map: span -> replica snodes (owner's snode first). Updated by
     the same epoch-fenced commit that moves a partition, so the copy set
     never straddles a stale LPDR epoch. *)
  rmap : int list Point_map.t;
  (* Cells held as a non-owner replica (including hinted parking). *)
  replicas : (string, slot) Hashtbl.t;
  (* Hinted handoff owed to crashed replicas: (target snode, key). The
     flush is already in the reliable outbox; the entry survives until the
     target acknowledges it. *)
  hints : (int * string, slot) Hashtbl.t;
  (* Transmission batching: one coalescing buffer per destination. *)
  obufs : (int, obuf) Hashtbl.t;
  quorums : (int, qstate) Hashtbl.t;  (* token -> in-flight quorum op *)
  (* Monotonic write-stamp counter: the engine dispatches many events at
     one virtual instant, so [Engine.now] alone cannot order two writes
     this snode stamps in the same tick — the LWW merge would drop the
     second. Durable, like the version stamps it orders. *)
  mutable wseq : int;
  rng : Rng.t;
  qlocks : (bool ref * Wire.msg Queue.t) Gtbl.t;
  events : (int, event_state) Hashtbl.t;
  incomings : (int, incoming) Hashtbl.t;
  pendings : (int, pending_prepare) Hashtbl.t;
  (* Transfers that overtook their Prepare (small messages travel faster
     than large ones); drained when the Prepare lands. *)
  stashed :
    (int, (Vnode_id.t * Span.t list * (string * Versioned.cell) list) list ref)
    Hashtbl.t;
  (* Highest LPDR epoch ever applied, per group — never deleted. Commits
     are delivered reliably but not in order (a retransmitted commit can
     arrive after a newer one on the same group); LPDR writes are fenced on
     this high-water mark so a stale commit cannot overwrite fresh state. *)
  gepochs : int Gtbl.t;
  (* Same hazard, placement maps: highest event id whose commit set each
     span's cache/rmap entry. A span can only be re-migrated after its
     previous move's commit, so event ids increase along any one span's
     migration history; a late retransmitted commit must not overwrite the
     fresher replica set (a quorum read through it would miss every
     up-to-date copy). Covers the whole space, like [rmap]. *)
  pfence : int Point_map.t;
  peers : (int, peer) Hashtbl.t;
  (* Self-addressed work (routing backoffs, queued operations) that fired
     while the snode was down; drained on restart. Durable, like the rest
     of the protocol state. *)
  parked : Wire.msg Queue.t;
  (* Active load balancing (armed by [create ?balance]). The gossip view
     and directory report table are soft state — reset on crash, like RTT
     estimators — while [lb_version] is durable so post-restart summaries
     still supersede everything gossiped before the crash. *)
  lb_view : Balance.Gossip.t;
  lb_dir : Balance.Directory.t;  (* populated only on directory snodes *)
  lb_is_dir : bool;  (* hash-located, fixed for the cluster's lifetime *)
  mutable lb_version : int;
  mutable lb_last_transfer : float;  (* donor-side transfer rate limit *)
  (* LRU stamps for the bounded routing cache (span -> last-touch tick).
     Soft state, like route suspicions: reset on crash, and a missing
     stamp reads as oldest. Maintained only when [route_cap > 0]. *)
  rstamps : (Span.t, int) Hashtbl.t;
  (* Anti-entropy hash tree: one snapshot over every cell this snode
     holds ([Merkle.frame_at] clips per-partition frames out of it, so a
     full AE round costs one store scan instead of one per span). Soft
     state — losing it to a crash costs one rebuild. *)
  mutable mtree : Versioned.cell Merkle.t option;
  (* Push-round counter stamped into [Mt_root] frames. Durable, like
     [wseq]: a restarted pusher must keep superseding its old rounds. *)
  mutable ae_round : int;
  (* Last round snapshotted per pushing peer, so one rebuild serves every
     span that peer pushes in a round. Soft state, like the tree. *)
  ae_seen : (int, int) Hashtbl.t;
  (* In-flight coordinated range reads, token -> state. *)
  ranges : (int, rstate) Hashtbl.t;
}

type callback =
  | Cb_put of (unit -> unit) option  (* invoked when the write is acked *)
  | Cb_get of (string option -> unit)
  | Cb_remove of (bool -> unit)
  | Cb_range of ((string * string) list -> unit)
      (* key-sorted (key, value) bindings of a completed range read *)

(* Operation-history events for external consistency checkers: every data
   operation's invocation and outcome, stamped with the virtual clock. The
   runtime only emits them (through an optional recorder callback); the
   checking lives in [Dht_check]. *)
module Oplog = struct
  type op = Op_put of { key : string; value : string } | Op_get of { key : string }

  type event =
    | Invoke of { token : int; via : int; op : op; at : float }
    | Ack of { token : int; at : float }  (* put acknowledged durable *)
    | Reply of { token : int; value : string option; at : float }
    | Fail of { token : int; at : float }  (* put settled unacknowledged *)
    | Busy of { token : int; at : float }
        (* shed by admission control before touching any replica: like
           [Fail], but additionally guaranteed to have had no effect *)
end

type approach = Local of { vmin : int } | Global

(* Instruments are resolved once at [create] — the registry lookup never
   happens on the message path. [None] when no registry was given, so the
   uninstrumented runtime pays one pointer comparison per site. *)
type instruments = {
  i_hops : Histogram.t;  (* forwarding hops per resolved routed op *)
  i_op_put : Histogram.t;  (* issue-to-ack latency per data op *)
  i_op_get : Histogram.t;
  i_op_remove : Histogram.t;
  i_prepare : Histogram.t;  (* 2PC prepare -> commit, at the coordinator *)
  i_ev_create : Histogram.t;  (* whole balancing event, plan -> complete *)
  i_ev_remove : Histogram.t;
  i_ev_balance : Histogram.t;  (* load-driven hot-partition swaps *)
  i_downtime : Histogram.t;  (* crash -> restart per recovery *)
  i_rto : Histogram.t;  (* retransmission-timer delays as armed *)
  i_q_put : Histogram.t;  (* quorum write, issue to W-th ack *)
  i_q_get : Histogram.t;  (* quorum read, issue to R-th reply *)
  i_q_range : Histogram.t;  (* range read, issue to last leg's quorum *)
  i_batch : Histogram.t;  (* batch occupancy: messages per envelope *)
}

(* One partition's heat accumulators: decayed access counts per traffic
   class, plus a decayed byte rate shared across classes. *)
type heat_entry = {
  h_read : Heat.cell;
  h_write : Heat.cell;
  h_repl : Heat.cell;
  h_bytes : Heat.cell;
}

type t = {
  engine : Engine.t;
  net : Network.t;
  faults : Fault.t option;
  space : Space.t;
  pmin : int;
  vmax : int;  (* group capacity; [max_int] under the global approach *)
  max_retries : int;  (* routing backoff budget *)
  backoff : float;  (* routing backoff delay, seconds *)
  rto : float;  (* initial retransmission timeout *)
  rto_cap : float;  (* retransmission backoff ceiling; also probe cadence *)
  retry_budget : int;  (* fast retransmissions per message; 0 = unlimited *)
  adaptive_rto : bool;  (* Jacobson/Karn RTO from per-route RTT samples *)
  max_inflight : int;  (* per-peer transmission window; 0 = unbounded *)
  admission_deadline : float;  (* quorum-op shed threshold; 0 = off *)
  poison_after : int;  (* consecutive timeouts before a route is poisoned *)
  event_timeout : float;  (* per-round watchdog for balancing events *)
  rfactor : int;  (* copies per partition; 1 = no replication *)
  route_cap : int;  (* routing-cache entry bound; 0 = unbounded (legacy) *)
  max_hops : int;  (* forwarding limit before a routed op backs off *)
  rlevel : int;  (* finger level: ceil(log2 snodes), clamped to the space *)
  read_quorum : int;  (* R *)
  write_quorum : int;  (* W; R + W > rfactor *)
  handoff_timeout : float;  (* write-ack patience before hinting *)
  linger : float;  (* coalescing window; 0 = batching off *)
  mt_threshold : int;
      (* anti-entropy protocol switch: a span probe whose local cell count
         is <= this goes out as a legacy full-span digest; above it the
         pusher opens a hash-tree descent. [max_int] disables the trees. *)
  mt_leaf : int;  (* hash-tree bucket capacity *)
  bootstrap : Span.t list * Vnode_id.t;  (* for rebuilding crashed caches *)
  instr : instruments option;
  trace : Trace.t;
  causal : bool;  (* propagate span context on the wire, emit causal events *)
  (* Ambient causal context: (trace id, parent span id, hop count) of the
     message or op-root being processed right now. Saved/restored around
     every dispatch, captured into quorum state and timer closures. *)
  mutable cur : (int * int * int) option;
  mutable next_span : int;  (* runtime-global span counter: parent < child *)
  op_roots : (int, int) Hashtbl.t;  (* token -> root span, while in flight *)
  (* Per-partition heat accounting (EWMA over virtual time), when enabled. *)
  heat : (Span.t, heat_entry) Hashtbl.t option;
  heat_tau : float;
  (* Active load balancing: policy when armed (implies heat accounting). *)
  balance : Balance.Policy.t option;
  (* token -> issue time; maintained only when instrumented or tracing *)
  op_starts : (int, float) Hashtbl.t;
  snodes : snode array;
  callbacks : (int, callback) Hashtbl.t;
  mutable next_token : int;
  mutable next_event : int;
  mutable pending : int;
  mutable done_creations : int;
  mutable done_removals : int;
  mutable done_puts : int;
  mutable done_gets : int;
  mutable retried : int;
  mutable timeouts : int;
  mutable retransmits : int;
  mutable probes : int;  (* rate-limited retransmissions past the budget *)
  mutable sheds : int;  (* quorum ops refused by admission control *)
  mutable busy_rejections : int;  (* Busy replies settled at the origin *)
  mutable backpressured : int;  (* messages parked by a full window *)
  mutable reliable_msgs : int;  (* messages entered into reliable delivery *)
  mutable outbox_peak : int;  (* deepest any peer outbox has been *)
  mutable crashes : int;
  mutable recoveries : int;
  mutable hints_stored : int;  (* cells parked on a hinted fallback *)
  mutable hints_flushed : int;  (* hints drained to their restarted target *)
  mutable read_repairs : int;  (* stale repliers repaired after a read *)
  mutable sync_cells : int;  (* cells freshened by anti-entropy syncs *)
  mutable orphans : int;  (* replica-table cells routed back to an owner *)
  mutable done_ranges : int;  (* completed coordinated range reads *)
  mutable ae_digests : int;  (* legacy full-span digests pushed *)
  mutable ae_roots : int;  (* hash-tree descents opened (Mt_root sent) *)
  mutable ae_requests : int;  (* descent rounds (Mt_request messages) *)
  mutable ae_frames : int;  (* child frames shipped in Mt_frames *)
  mutable ae_leaves : int;  (* divergent leaves key-listed (Mt_leaf) *)
  mutable ae_keys_sent : int;  (* cells shipped by anti-entropy syncs *)
  mutable lb_transfers : int;  (* completed hot-partition swap events *)
  mutable lb_proposals : int;  (* directory proposals issued *)
  mutable lb_emergencies : int;  (* proposals via the emergency path *)
  mutable lb_skipped : int;  (* proposals dropped by validation/rate limit *)
  mutable lb_reports : int;  (* gossip + directory report messages sent *)
  (* Bounded-routing-cache accounting (all zero when [route_cap = 0]). *)
  mutable rclock : int;  (* LRU clock: bumped on every touch *)
  mutable rc_hits : int;  (* cache probes answered by a fine entry *)
  mutable rc_misses : int;  (* probes that fell back to steward/chain *)
  mutable rc_evictions : int;  (* LRU pair-folds forced by the cap *)
  mutable rc_peak : int;  (* highest post-learn occupancy of any cache *)
  mutable route_refreshes : int;  (* steward refresh reports sent *)
  mutable hops_peak : int;  (* most hops any executed routed op took *)
  hop_counts : int array;  (* executed routed ops per hop count *)
  (* Verification hooks, both passive: [on_commit] fires after a snode has
     fully applied a balancing Commit (audits run there), [recorder] sees
     every data operation's invocation and outcome. *)
  mutable on_commit : (event:int -> snode:int -> unit) option;
  mutable recorder : (Oplog.event -> unit) option;
}

let record t ev = match t.recorder with Some f -> f ev | None -> ()

(* ------------------------------------------------------------------ *)
(* Cache maintenance                                                    *)

(* Learn [span -> value] without ever leaving a hole: evicted entries that
   are strictly coarser than [span] have their remainder kept under the old
   value (dyadic path decomposition). Shared by the routing cache and the
   replica map; one in-place trie pass. *)
let map_learn space map span value =
  ignore space;
  Point_map.learn map span value

let rmap_learn t sn span sids = map_learn t.space sn.rmap span sids

(* ------------------------------------------------------------------ *)
(* Bounded routing cache                                                *)

(* LRU-stamp a cache span. Stamps are soft state: a span [learn]
   decomposed away leaves its stamp orphaned (harmless — stamps are read
   through the live span set), and a missing stamp reads as 0, i.e.
   oldest. *)
let cache_touch t sn span =
  if t.route_cap > 0 then begin
    t.rclock <- t.rclock + 1;
    Hashtbl.replace sn.rstamps span t.rclock
  end

let cache_stamp sn span =
  match Hashtbl.find_opt sn.rstamps span with Some s -> s | None -> 0

(* Shrink [sn.cache] back under the cap without ever leaving a hole: fold
   the coldest sibling leaf-pair into one parent-level binding (keeping
   the fresher child's owner as the coarse guess — it is advice, not
   truth, so coarsening is always safe). Full coverage guarantees a
   foldable pair exists whenever the cardinality exceeds one, so the loop
   always terminates. *)
let cache_evict_to_cap t sn =
  if t.route_cap > 0 then
    while Point_map.cardinal sn.cache > t.route_cap do
      let best = ref None in
      Point_map.iter_pairs sn.cache (fun parent lo_v hi_v ->
          let lo_s, hi_s = Span.split t.space parent in
          let a = cache_stamp sn lo_s and b = cache_stamp sn hi_s in
          let stamp = if a >= b then a else b in
          let keep = if a >= b then lo_v else hi_v in
          match !best with
          | Some (s, _, _, _, _) when s <= stamp -> ()
          | _ -> best := Some (stamp, parent, lo_s, hi_s, keep));
      match !best with
      | None -> failwith "Runtime: routing cache lost coverage"
      | Some (stamp, parent, lo_s, hi_s, keep) ->
          Point_map.learn sn.cache parent keep;
          Hashtbl.remove sn.rstamps lo_s;
          Hashtbl.remove sn.rstamps hi_s;
          Hashtbl.replace sn.rstamps parent stamp;
          t.rc_evictions <- t.rc_evictions + 1
    done

let cache_learn t sn span vid =
  map_learn t.space sn.cache span vid;
  if t.route_cap > 0 then begin
    cache_touch t sn span;
    cache_evict_to_cap t sn;
    let n = Point_map.cardinal sn.cache in
    if n > t.rc_peak then t.rc_peak <- n
  end

(* ------------------------------------------------------------------ *)
(* Local state operations                                               *)

let local_exn sn vid =
  match Vtbl.find_opt sn.locals vid with
  | Some v -> v
  | None -> failwith "Runtime: vnode expected on this snode"

let install_spans sn v spans =
  v.spans <- spans @ v.spans;
  List.iter (fun s -> Point_map.add sn.owned s v.vid) spans

let donate_spans t sn v give =
  let rec take n acc rest =
    if n = 0 then (acc, rest)
    else
      match rest with
      | [] -> invalid_arg "Runtime: donor has too few partitions"
      | s :: tl -> take (n - 1) (s :: acc) tl
  in
  let taken, kept = take give [] v.spans in
  v.spans <- kept;
  List.iter (fun s -> Point_map.remove sn.owned s) taken;
  (* Keys inside the donated partitions migrate with them. *)
  let moved_data =
    Hashtbl.fold
      (fun key s acc ->
        let point = Hash.string t.space key in
        if List.exists (fun sp -> Span.contains t.space sp point) taken then
          (key, s.cell) :: acc
        else acc)
      v.data []
  in
  List.iter (fun (key, _) -> Hashtbl.remove v.data key) moved_data;
  (taken, moved_data)

(* Donate one specific partition (the load balancer's hot/cold pick),
   with its keys — [donate_spans] for a named span instead of a count. *)
let donate_span t sn v span =
  if not (List.exists (fun s -> Span.compare s span = 0) v.spans) then
    invalid_arg "Runtime: donor does not own the requested span";
  v.spans <- List.filter (fun s -> Span.compare s span <> 0) v.spans;
  Point_map.remove sn.owned span;
  let moved_data =
    Hashtbl.fold
      (fun key s acc ->
        let point = Hash.string t.space key in
        if Span.contains t.space span point then (key, s.cell) :: acc else acc)
      v.data []
  in
  List.iter (fun (key, _) -> Hashtbl.remove v.data key) moved_data;
  moved_data

(* [true] when [e] is fresher than everything applied for [gid] so far; the
   high-water mark advances as a side effect. *)
let epoch_note sn gid e =
  match Gtbl.find_opt sn.gepochs gid with
  | Some cur when cur >= e -> false
  | Some _ | None ->
      Gtbl.replace sn.gepochs gid e;
      true

let split_all_local t sn v =
  let halves =
    List.concat_map
      (fun s ->
        Point_map.split sn.owned s;
        let a, b = Span.split t.space s in
        [ a; b ])
      v.spans
  in
  v.spans <- halves

(* ------------------------------------------------------------------ *)
(* Replica storage                                                      *)

(* Accept-and-store: an owner keeps the cell in its partition table, any
   other snode in its replica table; both merge by LWW. Returns [true]
   when the stored cell changed (new key or strictly fresher version). *)
let store_replica sn ~point ~key cell =
  let merge_into tbl =
    (* Single probe on the update path: find the slot, overwrite in
       place. Only a genuinely new key pays the second (insert) probe. *)
    match Hashtbl.find_opt tbl key with
    | None ->
        Hashtbl.add tbl key { cell };
        true
    | Some s ->
        if Versioned.newer cell.Versioned.version s.cell.Versioned.version
        then begin
          s.cell <- cell;
          true
        end
        else false
  in
  match Point_map.find_owner_exn sn.owned point with
  | vid -> merge_into (local_exn sn vid).data
  | exception Not_found -> merge_into sn.replicas

let replica_lookup sn ~point ~key =
  let slot =
    match Point_map.find_owner_exn sn.owned point with
    | vid -> Hashtbl.find_opt (local_exn sn vid).data key
    | exception Not_found -> Hashtbl.find_opt sn.replicas key
  in
  Option.map (fun s -> s.cell) slot

(* Stamp a fresh write at this snode: virtual time plus the snode's own
   sequence counter, so two writes stamped in the same engine tick are
   still totally ordered in issue order. *)
let stamp_cell t sn ~value =
  sn.wseq <- sn.wseq + 1;
  Versioned.cell ~value ~ts:(Engine.now t.engine) ~seq:sn.wseq ~origin:sn.sid ()

(* Every cell this snode holds (own partitions and replica copies) whose
   key hashes into [span]. *)
let span_cells t sn span =
  let acc = ref [] in
  let consider key s =
    let point = Hash.string t.space key in
    if Span.contains t.space span point then acc := (key, s.cell) :: !acc
  in
  Hashtbl.iter consider sn.replicas;
  Vtbl.iter (fun _ v -> Hashtbl.iter consider v.data) sn.locals;
  (* Deterministic order: hash-table iteration order depends on insertion
     history, which differs between owner and replica. *)
  List.sort (fun (a, _) (b, _) -> String.compare a b) !acc

(* Order-insensitive digest of [span]: cell count and XOR-folded per-cell
   hashes. Two snodes agree iff they hold the same cells for the span. *)
let span_digest t sn span =
  let count = ref 0 and h = ref 0 in
  let consider key s =
    let point = Hash.string t.space key in
    if Span.contains t.space span point then begin
      incr count;
      h := !h lxor Versioned.digest key s.cell
    end
  in
  Hashtbl.iter consider sn.replicas;
  Vtbl.iter (fun _ v -> Hashtbl.iter consider v.data) sn.locals;
  (!count, !h)

(* A snode that just gained ownership of [spans] absorbs any copies it
   already held as a mere replica (they may be fresher than the
   transferred data if a quorum write landed mid-migration). *)
let absorb_replica_cells t sn v spans =
  let moving =
    Hashtbl.fold
      (fun key s acc ->
        let point = Hash.string t.space key in
        if List.exists (fun sp -> Span.contains t.space sp point) spans then
          (key, s.cell) :: acc
        else acc)
      sn.replicas []
  in
  List.iter
    (fun (key, cell) ->
      Hashtbl.remove sn.replicas key;
      match Hashtbl.find_opt v.data key with
      | Some s -> s.cell <- Versioned.merge_opt (Some s.cell) cell
      | None -> Hashtbl.add v.data key { cell })
    moving

(* Every cell this snode holds whose key hashes into [lo, hi) — the
   replica-side scan behind one range-read leg. *)
let range_cells t sn ~lo ~hi =
  let acc = ref [] in
  let consider key s =
    let point = Hash.string t.space key in
    if point >= lo && point < hi then acc := (key, s.cell) :: !acc
  in
  Hashtbl.iter consider sn.replicas;
  Vtbl.iter (fun _ v -> Hashtbl.iter consider v.data) sn.locals;
  List.sort (fun (a, _) (b, _) -> String.compare a b) !acc

(* ------------------------------------------------------------------ *)
(* Anti-entropy hash trees                                              *)

(* Snapshot tree over every cell this snode holds, owner partitions and
   replica copies alike. The per-cell digest is [Versioned.digest] — the
   same hash [span_digest] folds — and tree hashes combine by XOR, so a
   [Merkle.frame_at] frame for any span equals the flat digest a full
   scan of that span would produce. That keeps tree frames and legacy
   digests interchangeable on the wire. *)
let build_mtree t sn =
  let cells = ref [] in
  let consider key s =
    let point = Hash.string t.space key in
    cells := (key, point, Versioned.digest key s.cell, s.cell) :: !cells
  in
  Hashtbl.iter consider sn.replicas;
  Vtbl.iter (fun _ v -> Hashtbl.iter consider v.data) sn.locals;
  let tree =
    Merkle.build ~leaf_cap:t.mt_leaf ~space:t.space ~span:Span.root !cells
  in
  sn.mtree <- Some tree;
  tree

(* The session snapshot, rebuilt only if a crash wiped it. Mid-descent
   writes are invisible until the next round re-snapshots — anti-entropy
   reconciles snapshots, quorum replication covers the live traffic. *)
let mtree t sn = match sn.mtree with Some tree -> tree | None -> build_mtree t sn

(* A pusher opens every AE round from a fresh snapshot... *)
let refresh_mtree t sn =
  sn.ae_round <- sn.ae_round + 1;
  ignore (build_mtree t sn)

(* ...and a receiver re-snapshots the first time it sees that round, so
   one rebuild serves every span the peer pushes in it. *)
let mtree_for_round t sn ~owner ~round =
  let stale =
    match Hashtbl.find_opt sn.ae_seen owner with
    | Some r -> r <> round
    | None -> true
  in
  if stale then begin
    Hashtbl.replace sn.ae_seen owner round;
    build_mtree t sn
  end
  else mtree t sn

(* ------------------------------------------------------------------ *)
(* Telemetry                                                            *)

let observing t = t.instr <> None || Trace.enabled t.trace

let note_op_start t token =
  if observing t then Hashtbl.replace t.op_starts token (Engine.now t.engine)

(* Issue-to-completion latency of one data operation, recorded at the
   origin snode when the ack/reply lands. *)
let finish_op t ~kind ~token ~tid =
  match Hashtbl.find_opt t.op_starts token with
  | None -> ()
  | Some t0 ->
      Hashtbl.remove t.op_starts token;
      let dur = Engine.now t.engine -. t0 in
      (match t.instr with
      | Some i ->
          let h =
            match kind with
            | `Put -> i.i_op_put
            | `Get -> i.i_op_get
            | `Remove -> i.i_op_remove
            | `Qput -> i.i_q_put
            | `Qget -> i.i_q_get
            | `Qrange -> i.i_q_range
          in
          Histogram.observe h dur
      | None -> ());
      if Trace.enabled t.trace then
        let op =
          match kind with
          | `Put -> "put"
          | `Get -> "get"
          | `Remove -> "remove"
          | `Qput -> "qput"
          | `Qget -> "qget"
          | `Qrange -> "qrange"
        in
        Trace.span t.trace ~ts:t0 ~dur ~tid ~name:"op"
          [ ("op", Trace.Str op); ("token", Trace.Int token) ]

(* ---------------- causal tracing ---------------- *)

(* Span ids come from one runtime-global monotonic counter, so a child is
   always younger than its parent — the span log is acyclic by
   construction and the analyzer's upward walks terminate. *)
let fresh_span t =
  let s = t.next_span in
  t.next_span <- s + 1;
  s

(* Run [f] with the ambient causal context set to [ctx]; used by timer
   closures (hint/deadline/backoff) that fire outside any message
   dispatch but act on behalf of a traced op. *)
let with_ctx t ctx f =
  if not t.causal then f ()
  else begin
    let saved = t.cur in
    t.cur <- ctx;
    f ();
    t.cur <- saved
  end

(* Open an op's causal tree: emit its root span and make it the ambient
   context for the issuing closure. The trace id is the op token, so
   causal trees are directly joinable with the history recorder. *)
let causal_root t ~token ~tid ~op f =
  if not t.causal then f ()
  else begin
    let root = fresh_span t in
    Hashtbl.replace t.op_roots token root;
    Trace.instant t.trace ~ts:(Engine.now t.engine) ~tid ~cat:"causal"
      ~name:"op.begin"
      [ ("trace", Trace.Int token); ("span", Trace.Int root);
        ("op", Trace.Str op) ];
    let saved = t.cur in
    t.cur <- Some (token, root, 0);
    f ();
    t.cur <- saved
  end

(* Close an op's causal tree, parented on whichever span settled it (the
   final ack's receive edge when the completion happens inside a message
   dispatch, else the op root). *)
let causal_op_end t ~token ~tid ~outcome =
  if t.causal then
    match Hashtbl.find_opt t.op_roots token with
    | None -> ()
    | Some root ->
        Hashtbl.remove t.op_roots token;
        let parent =
          match t.cur with
          | Some (tr, sp, _) when tr = token -> sp
          | _ -> root
        in
        Trace.instant t.trace ~ts:(Engine.now t.engine) ~tid ~cat:"causal"
          ~name:"op.end"
          [ ("trace", Trace.Int token); ("span", Trace.Int (fresh_span t));
            ("parent", Trace.Int parent); ("outcome", Trace.Str outcome) ]

(* Wrap an outgoing protocol message in the on-wire span context when an
   op's context is ambient: one [msg.send] event marks the edge entering
   the transmission path (queue wait starts here). *)
let causal_wrap t ~src ~dst msg =
  match t.cur with
  | Some (trace, parent, hop) when t.causal ->
      let span = fresh_span t in
      Trace.instant t.trace ~ts:(Engine.now t.engine) ~tid:src ~cat:"causal"
        ~name:"msg.send"
        [ ("trace", Trace.Int trace); ("span", Trace.Int span);
          ("parent", Trace.Int parent); ("src", Trace.Int src);
          ("dst", Trace.Int dst); ("tag", Trace.Str (Wire.describe msg));
          ("hop", Trace.Int hop); ("bytes", Trace.Int (Wire.size_bytes msg)) ];
      Wire.Traced { trace; span; hop = hop + 1; payload = msg }
  | _ -> msg

(* One actual transmission of every traced edge inside [msg] (which may be
   a Req frame and/or Batch envelope): same trace id, fresh span id per
   attempt — retransmissions are individually visible in the span log. *)
let rec emit_xmit t ~tid ~attempt = function
  | Wire.Traced { trace; span; _ } ->
      Trace.instant t.trace ~ts:(Engine.now t.engine) ~tid ~cat:"causal"
        ~name:"msg.xmit"
        [ ("trace", Trace.Int trace); ("span", Trace.Int (fresh_span t));
          ("parent", Trace.Int span); ("attempt", Trace.Int attempt) ]
  | Wire.Batch parts -> List.iter (emit_xmit t ~tid ~attempt) parts
  | Wire.Req { payload; _ } -> emit_xmit t ~tid ~attempt payload
  | _ -> ()

(* ---------------- heat accounting ---------------- *)

(* Charge one access against the partition covering [point], as seen by
   the executing snode's replica map. Partition granularity follows the
   live placement: a split partition accumulates under its new spans. *)
let heat_charge t sn ~point ~kind ~bytes =
  match t.heat with
  | None -> ()
  | Some tbl -> (
      match Point_map.find_point sn.rmap point with
      | exception Not_found -> ()
      | span, _ ->
          let e =
            match Hashtbl.find_opt tbl span with
            | Some e -> e
            | None ->
                let e =
                  {
                    h_read = Heat.cell ~tau:t.heat_tau;
                    h_write = Heat.cell ~tau:t.heat_tau;
                    h_repl = Heat.cell ~tau:t.heat_tau;
                    h_bytes = Heat.cell ~tau:t.heat_tau;
                  }
                in
                Hashtbl.add tbl span e;
                e
          in
          let now = Engine.now t.engine in
          let cell =
            match kind with
            | `Read -> e.h_read
            | `Write -> e.h_write
            | `Repl -> e.h_repl
          in
          Heat.charge cell ~now ();
          Heat.charge e.h_bytes ~now ~weight:(float_of_int bytes) ())

(* Total decayed heat of one partition (reads + writes + replica traffic),
   0 when the partition was never accessed or heat accounting is off. *)
let span_heat t span =
  match t.heat with
  | None -> 0.
  | Some tbl -> (
      match Hashtbl.find_opt tbl span with
      | None -> 0.
      | Some e ->
          let now = Engine.now t.engine in
          Heat.value e.h_read ~now +. Heat.value e.h_write ~now
          +. Heat.value e.h_repl ~now)

(* Hottest/coldest pick among a vnode's partitions; ties keep the span
   that sorts first, so the choice is deterministic. *)
let pick_span t ~hottest spans =
  match spans with
  | [] -> invalid_arg "Runtime: pick_span on a partitionless vnode"
  | first :: rest ->
      let better s best =
        let hs = span_heat t s and hb = span_heat t best in
        if hs = hb then Span.compare s best < 0
        else if hottest then hs > hb
        else hs < hb
      in
      List.fold_left (fun best s -> if better s best then s else best) first rest

(* ------------------------------------------------------------------ *)
(* Messaging                                                            *)

let peer_of sn pid =
  match Hashtbl.find_opt sn.peers pid with
  | Some p -> p
  | None ->
      let p =
        {
          next_seq = 0;
          outbox = Hashtbl.create 4;
          backlog = Queue.create ();
          live = 0;
          floor = -1;
          seen = Hashtbl.create 4;
          suspect = false;
          strikes = 0;
          srtt = 0.;
          rttvar = 0.;
        }
      in
      Hashtbl.add sn.peers pid p;
      p

(* One Jacobson estimator update (RFC 6298 gains). The first sample seeds
   the estimator; Karn's rule (the caller samples only never-retransmitted
   messages) keeps retransmission ambiguity out of it. *)
let rtt_sample p s =
  if p.srtt <= 0. then begin
    p.srtt <- s;
    p.rttvar <- s /. 2.
  end
  else begin
    p.rttvar <- (0.75 *. p.rttvar) +. (0.25 *. Float.abs (p.srtt -. s));
    p.srtt <- (0.875 *. p.srtt) +. (0.125 *. s)
  end

(* Deadline-aware admission: the time to assemble a quorum of [need] acks
   over [set] is estimated as the [need]-th smallest per-route completion
   estimate — a route's smoothed round trip (the configured [rto] before
   any sample exists) scaled by its queue pressure and graded suspicion
   level. The local replica is free. Deliberately cheap and pessimistic:
   it reads only sender-side state the coordinator already has. *)
let admission_estimate t sn ~set ~need =
  let route_est sid =
    if sid = sn.sid then 0.
    else
      match Hashtbl.find_opt sn.peers sid with
      | None -> t.rto
      | Some p ->
          let rtt = if p.srtt > 0. then p.srtt +. (4. *. p.rttvar) else t.rto in
          let pressure = float_of_int (Hashtbl.length p.outbox + 1) in
          rtt *. pressure *. float_of_int (1 + p.strikes)
  in
  let ests = List.sort compare (List.map route_est set) in
  let rec nth i = function
    | [] -> infinity
    | e :: rest -> if i <= 1 then e else nth (i - 1) rest
  in
  nth need ests

(* Without a fault plan the network is reliable and messages flow exactly
   as in the original runtime (same messages, same bytes, same timings).
   With one, every remote message goes through the reliable request layer:
   wrapped in [Req { seq }], deduplicated by [(sender, seq)] at the
   receiver, acknowledged, and retransmitted with exponential backoff and
   jitter until acknowledged. Routes that keep timing out are poisoned
   (probed at the capped cadence only) until the peer answers again.

   A positive linger window inserts the transmission-batching layer in
   front of both paths: outgoing messages stage in a per-destination
   coalescing buffer for at most one window and leave as a single
   [Wire.Batch] envelope. Under faults the batch's protocol messages share
   one [Req] frame — one sequence number, one retransmission timer, one
   ack — while acks ride piggyback outside the frame (acknowledging an ack
   would never converge). *)
let rec send t ~src ~dst msg =
  let msg = if t.causal then causal_wrap t ~src ~dst msg else msg in
  if src = dst then begin
    (* Loopback pays no queueing layer: the edge transmits as it is sent. *)
    if t.causal then emit_xmit t ~tid:src ~attempt:1 msg;
    Network.send t.net ~tag:(Wire.describe msg) ~src ~dst
      ~bytes:(Wire.size_bytes msg) (fun () ->
        receive t t.snodes.(dst) ~from:src msg)
  end
  else if t.linger > 0. then stage t t.snodes.(src) ~dst msg
  else transmit_now t ~src ~dst msg

and transmit_now t ~src ~dst msg =
  if t.faults = None then begin
    if t.causal then emit_xmit t ~tid:src ~attempt:1 msg;
    Network.send t.net ~tag:(Wire.describe msg) ~src ~dst
      ~bytes:(Wire.size_bytes msg) (fun () ->
        receive t t.snodes.(dst) ~from:src msg)
  end
  else reliable_send t t.snodes.(src) ~dst msg

(* ---------------- transmission batching ---------------- *)

(* Stage [msg] in the coalescing buffer toward [dst]; the first part arms
   the flush timer one linger window out. A new cumulative ack supersedes
   any staged ack it covers, so an envelope never carries redundant
   acks. *)
and stage t sn ~dst msg =
  let ob =
    match Hashtbl.find_opt sn.obufs dst with
    | Some ob -> ob
    | None ->
        let ob = { ob_dst = dst; ob_parts = []; ob_timer = None } in
        Hashtbl.add sn.obufs dst ob;
        ob
  in
  (match msg with
  | Wire.Ack { floor; _ } ->
      ob.ob_parts <-
        List.filter
          (function Wire.Ack { seq; _ } -> seq > floor | _ -> true)
          ob.ob_parts
  | _ -> ());
  ob.ob_parts <- msg :: ob.ob_parts;
  let tm =
    match ob.ob_timer with
    | Some tm -> tm
    | None ->
        let tm = Engine.timer t.engine (fun () -> flush_obuf t sn ob) in
        ob.ob_timer <- Some tm;
        tm
  in
  if not (Engine.armed tm) then Engine.arm tm ~delay:t.linger

(* Everything staged toward one destination leaves as one envelope: raw on
   a reliable network; under faults the protocol parts share one [Req]
   frame and the piggybacked acks travel outside it, unreliably (a lost
   ack just provokes one more retransmission). If the flush timer somehow
   fires on a crashed snode the parts stay staged — restart re-arms. *)
and flush_obuf t sn ob =
  if sn.alive then
    match List.rev ob.ob_parts with
    | [] -> ()
    | parts -> (
        ob.ob_parts <- [];
        let dst = ob.ob_dst in
        if t.faults = None then send_coalesced t sn ~dst parts
        else
          let acks, protos =
            List.partition (function Wire.Ack _ -> true | _ -> false) parts
          in
          match protos with
          | [] -> send_coalesced t sn ~dst acks
          | [ payload ] -> reliable_send ~acks t sn ~dst payload
          | protos -> reliable_send ~acks t sn ~dst (Wire.Batch protos))

(* Send [parts] toward [dst] without reliability framing: a lone message
   goes as itself, several coalesce into one [Wire.Batch]. *)
and send_coalesced t sn ~dst parts =
  match parts with
  | [] -> ()
  | [ msg ] ->
      if t.causal then emit_xmit t ~tid:sn.sid ~attempt:1 msg;
      Network.send t.net ~tag:(Wire.describe msg) ~src:sn.sid ~dst
        ~bytes:(Wire.size_bytes msg) (fun () ->
          receive t t.snodes.(dst) ~from:sn.sid msg)
  | parts ->
      if t.causal then
        List.iter (emit_xmit t ~tid:sn.sid ~attempt:1) parts;
      let alone =
        List.fold_left (fun acc m -> acc + Wire.size_bytes m) 0 parts
      in
      emit_batch t sn ~dst ~parts:(List.length parts) ~alone
        (Wire.Batch parts)

(* One coalesced envelope onto the wire, with batching telemetry: [alone]
   is what the [parts] messages would have cost sent separately. *)
and emit_batch t sn ~dst ~parts ~alone msg =
  let bytes = Wire.size_bytes msg in
  Network.send t.net ~tag:(Wire.describe msg) ~src:sn.sid ~dst ~bytes
    (fun () -> receive t t.snodes.(dst) ~from:sn.sid msg);
  Network.account_batch t.net ~parts ~saved:(max 0 (alone - bytes));
  match t.instr with
  | Some i -> Histogram.observe i.i_batch (float_of_int parts)
  | None -> ()

(* ---------------- reliable delivery ---------------- *)

and reliable_send ?(acks = []) t sn ~dst msg =
  let p = peer_of sn dst in
  let seq = p.next_seq in
  p.next_seq <- seq + 1;
  t.reliable_msgs <- t.reliable_msgs + 1;
  let entry =
    { o_payload = msg; o_attempts = 0; o_sent = 0.; o_live = false;
      o_timer = None }
  in
  Hashtbl.add p.outbox seq entry;
  let depth = Hashtbl.length p.outbox in
  if depth > t.outbox_peak then t.outbox_peak <- depth;
  if t.max_inflight > 0 && p.live >= t.max_inflight then begin
    (* Window full: backpressure. The entry stays durably in the outbox
       but pays no transmission and arms no timer until an ack retires a
       window entry and promotes it. Piggybacked acks are unreliable and
       must not wait — let them go now. *)
    t.backpressured <- t.backpressured + 1;
    Queue.add seq p.backlog;
    if acks <> [] then send_coalesced t sn ~dst acks
  end
  else begin
    entry.o_live <- true;
    p.live <- p.live + 1;
    if p.suspect then begin
      (* Poisoned route: do not pay the immediate transmission, probe at the
         capped cadence; an ack (or any traffic from the peer) flushes the
         whole outbox at once. *)
      if acks <> [] then send_coalesced t sn ~dst acks;
      arm_retransmit t sn ~dst ~seq entry ~delay:t.rto_cap
    end
    else transmit ~acks t sn ~dst ~seq entry
  end

and transmit ?(acks = []) ?(probe = false) t sn ~dst ~seq entry =
  entry.o_attempts <- entry.o_attempts + 1;
  entry.o_sent <- Engine.now t.engine;
  if entry.o_attempts > 1 then begin
    if probe then t.probes <- t.probes + 1
    else t.retransmits <- t.retransmits + 1;
    if Trace.enabled t.trace then
      Trace.instant t.trace ~ts:(Engine.now t.engine) ~tid:sn.sid
        ~name:(if probe then "retry.probe" else "retransmit")
        [
          ("dst", Trace.Int dst);
          ("seq", Trace.Int seq);
          ("attempt", Trace.Int entry.o_attempts);
        ]
  end;
  let frame = Wire.Req { seq; payload = entry.o_payload } in
  if t.causal then emit_xmit t ~tid:sn.sid ~attempt:entry.o_attempts frame;
  let nparts =
    (match entry.o_payload with Wire.Batch l -> List.length l | _ -> 1)
    + List.length acks
  in
  if nparts = 1 then
    Network.send t.net ~tag:(Wire.describe frame) ~src:sn.sid ~dst
      ~bytes:(Wire.size_bytes frame) (fun () ->
        receive t t.snodes.(dst) ~from:sn.sid frame)
  else begin
    (* Unbatched, each protocol part would have paid its own [Req] frame
       and each ack its own envelope. *)
    let alone =
      List.fold_left
        (fun acc a -> acc + Wire.size_bytes a)
        (match entry.o_payload with
        | Wire.Batch l ->
            List.fold_left
              (fun acc m ->
                acc + Wire.size_bytes (Wire.Req { seq; payload = m }))
              0 l
        | m -> Wire.size_bytes (Wire.Req { seq; payload = m }))
        acks
    in
    let outer =
      match acks with [] -> frame | _ -> Wire.Batch (acks @ [ frame ])
    in
    emit_batch t sn ~dst ~parts:nparts ~alone outer
  end;
  arm_retransmit t sn ~dst ~seq entry ~delay:(rto_for t sn ~dst entry.o_attempts)

and rto_for t sn ~dst attempts =
  (* Exponential backoff with multiplicative jitter, capped. The adaptive
     path replaces the fixed [rto] base with the route's Jacobson estimate
     (SRTT + 4·RTTVAR, floored at [rto]) once a sample exists, so a route
     whose true round trip exceeds the configured ladder stops provoking
     spurious retransmissions. Exactly one RNG draw either way, keeping
     faulty schedules bit-identical when the feature is off. *)
  let exp = float_of_int (min (attempts - 1) 16) in
  let rto0 =
    if not t.adaptive_rto then t.rto
    else
      let p = peer_of sn dst in
      if p.srtt > 0. then Float.max t.rto (p.srtt +. (4. *. p.rttvar))
      else t.rto
  in
  let base = Float.min (rto0 *. (2. ** exp)) t.rto_cap in
  base *. (1. +. (0.5 *. Rng.float sn.rng))

and arm_retransmit t sn ~dst ~seq entry ~delay =
  (match t.instr with
  | Some i -> Histogram.observe i.i_rto delay
  | None -> ());
  (* One timer slot per outbox entry, allocated at the first arming and
     re-armed for every retransmission — no fresh closure per attempt. *)
  let tm =
    match entry.o_timer with
    | Some tm -> tm
    | None ->
        let tm =
          Engine.timer t.engine (fun () -> on_rto t sn ~dst ~seq entry)
        in
        entry.o_timer <- Some tm;
        tm
  in
  Engine.arm tm ~delay

and on_rto t sn ~dst ~seq entry =
  (* Timer fired with the message still unacknowledged. A crashed sender's
     timers are cancelled; restart re-arms them from the (durable) outbox,
     so the alive check is belt-and-braces. *)
  if sn.alive && Hashtbl.mem (peer_of sn dst).outbox seq then begin
    t.timeouts <- t.timeouts + 1;
    let p = peer_of sn dst in
    p.strikes <- p.strikes + 1;
    if (not p.suspect) && p.strikes >= t.poison_after then begin
      p.suspect <- true;
      if Trace.enabled t.trace then
        Trace.instant t.trace ~ts:(Engine.now t.engine) ~tid:sn.sid
          ~name:"route.poisoned"
          [ ("dst", Trace.Int dst); ("strikes", Trace.Int p.strikes) ];
      Log.debug (fun m ->
          m "snode %d: route to snode %d poisoned after %d timeouts" sn.sid
            dst p.strikes)
    end;
    (* Retry budget: past it, further retransmissions become rate-limited
       probes — still sent (a silently-restarted peer must eventually hear
       the message) but at the capped cadence only and counted apart, so
       a retry storm's amplification stays bounded by construction. *)
    let probe = t.retry_budget > 0 && entry.o_attempts > t.retry_budget in
    transmit ~probe t sn ~dst ~seq entry
  end

and on_ack t sn ~from ~seq ~floor =
  let p = peer_of sn from in
  let answered = ref false in
  let retire s =
    match Hashtbl.find_opt p.outbox s with
    | None -> ()  (* duplicate ack *)
    | Some entry ->
        Hashtbl.remove p.outbox s;
        (match entry.o_timer with Some tm -> Engine.disarm tm | None -> ());
        if entry.o_live then begin
          entry.o_live <- false;
          p.live <- p.live - 1
        end;
        (* Karn's rule: only a never-retransmitted message yields an
           unambiguous RTT sample. *)
        if t.adaptive_rto && entry.o_attempts = 1 then
          rtt_sample p (Engine.now t.engine -. entry.o_sent);
        answered := true
  in
  retire seq;
  (* Cumulative: the peer has processed every seq up to [floor], so also
     retire older entries whose own ack was lost. *)
  Hashtbl.fold (fun s _ acc -> if s <= floor then s :: acc else acc) p.outbox []
  |> List.iter retire;
  if !answered then begin
    peer_answered t sn ~pid:from;
    refill_window t sn ~pid:from
  end

(* Acks freed window slots: promote backlogged messages in issue order.
   Entries retired while waiting (a cumulative ack can cover them) are
   skipped. *)
and refill_window t sn ~pid =
  if t.max_inflight > 0 then begin
    let p = peer_of sn pid in
    while p.live < t.max_inflight && not (Queue.is_empty p.backlog) do
      let seq = Queue.pop p.backlog in
      match Hashtbl.find_opt p.outbox seq with
      | None -> ()
      | Some entry ->
          entry.o_live <- true;
          p.live <- p.live + 1;
          if p.suspect then
            arm_retransmit t sn ~dst:pid ~seq entry ~delay:t.rto_cap
          else transmit t sn ~dst:pid ~seq entry
    done
  end

(* Any message from a peer proves it alive: clear the strikes and, if the
   route was poisoned, retry everything still inside the window for it
   immediately (backlogged entries keep waiting for a slot). *)
and peer_answered t sn ~pid =
  let p = peer_of sn pid in
  p.strikes <- 0;
  if p.suspect then begin
    p.suspect <- false;
    Log.debug (fun m ->
        m "snode %d: snode %d answered; flushing %d queued messages" sn.sid
          pid (Hashtbl.length p.outbox));
    Hashtbl.fold
      (fun seq e acc -> if e.o_live then (seq, e) :: acc else acc)
      p.outbox []
    |> List.sort compare
    |> List.iter (fun (seq, e) ->
           (match e.o_timer with Some tm -> Engine.disarm tm | None -> ());
           transmit t sn ~dst:pid ~seq e)
  end

(* Every network delivery lands here: a down snode absorbs everything (the
   sender keeps retransmitting), link-layer frames are unwrapped and
   deduplicated, protocol messages go to [handle]. *)
and receive t sn ~from msg =
  if sn.alive then
    match msg with
    | Wire.Batch parts ->
        (* Coalesced envelope: parts are processed in issue order, so
           per-(src, dst) FIFO is preserved through batching. *)
        List.iter (fun part -> receive t sn ~from part) parts
    | Wire.Ack { seq; floor } -> on_ack t sn ~from ~seq ~floor
    | Wire.Req { seq; payload } ->
        let p = peer_of sn from in
        let fresh = seq > p.floor && not (Hashtbl.mem p.seen seq) in
        if fresh then begin
          Hashtbl.replace p.seen seq ();
          while Hashtbl.mem p.seen (p.floor + 1) do
            Hashtbl.remove p.seen (p.floor + 1);
            p.floor <- p.floor + 1
          done
        end;
        (* Always (re-)acknowledge — the previous ack may have been lost —
           and cumulatively, with the floor advanced by this very frame.
           With a linger window the ack stages toward the peer and rides
           the next envelope out, usually alongside the replies the
           payload provokes just below. *)
        let ack = Wire.Ack { seq; floor = p.floor } in
        if t.linger > 0. then stage t sn ~dst:from ack
        else
          Network.send t.net ~tag:(Wire.describe ack) ~src:sn.sid ~dst:from
            ~bytes:(Wire.size_bytes ack) (fun () ->
              receive t t.snodes.(from) ~from:sn.sid ack);
        peer_answered t sn ~pid:from;
        if fresh then begin
          match payload with
          | Wire.Batch parts ->
              List.iter (fun part -> handle t sn ~from part) parts
          | payload -> handle t sn ~from payload
        end
    | msg -> handle t sn ~from msg

(* Process a message locally, as if self-delivered. Work addressed to a
   down snode is parked (durably) and drained on restart. *)
and deliver_local t sn msg =
  if sn.alive then handle t sn ~from:sn.sid msg
  else
    (* Park as a traced self-edge when an op context is ambient: the drain
       on restart then logs a receive, so the crash wait shows up as queue
       time on the op's critical path instead of vanishing. *)
    Queue.add (if t.causal then causal_wrap t ~src:sn.sid ~dst:sn.sid msg else msg)
      sn.parked

(* ---------------- routing ---------------- *)

and route_or_forward t sn (point, hops, retries, origin, op) =
  let ctx = t.cur in
  match Point_map.find_owner_exn sn.owned point with
  | vid -> execute_op t sn ~owner:vid ~point ~origin ~retries ~hops op
  | exception Not_found ->
      if hops >= t.max_hops then begin
        t.retried <- t.retried + 1;
        if Trace.enabled t.trace then
          Trace.instant t.trace ~ts:(Engine.now t.engine) ~tid:sn.sid
            ~name:"route.backoff"
            [ ("point", Trace.Int point); ("retries", Trace.Int (retries + 1)) ];
        let msg =
          Wire.Routed { point; hops = 0; retries = retries + 1; origin; op }
        in
        if t.faults = None && t.route_cap = 0 then begin
          (* The retry budget is a livelock canary, meaningful only on a
             reliable network with legacy unbounded caches: under faults an
             operation legitimately backs off for as long as a crashed
             snode stays down, and under bounded routing a fold can leave a
             transient cycle even with no faults at all. *)
          if retries >= t.max_retries then
            failwith "Runtime: routing failed to converge";
          Engine.schedule t.engine ~delay:t.backoff (fun () ->
              with_ctx t ctx (fun () -> deliver_local t sn msg))
        end
        else begin
          (* Crash recovery (or an eviction fold) can leave a permanent
             cycle among stale caches: a restarted snode's rebuilt cache
             points back at the bootstrap placement, and once balancing
             stops no commit repairs it. Restart the walk at a random
             snode — the owner's snode resolves the point locally, so the
             retry terminates with probability 1 whatever the cycle
             structure. *)
          let via = Rng.int sn.rng (Array.length t.snodes) in
          (* Exponential backoff, capped at 128 base delays: a walk stuck
             in a stale-advice cycle should wait for the next refresh
             round to repair the stewards rather than spin restarts
             through the same cycle at full tilt. *)
          let delay =
            t.backoff *. (2. ** float_of_int (min retries 7))
          in
          Engine.schedule t.engine ~delay (fun () ->
              with_ctx t ctx (fun () ->
                  if via = sn.sid || not sn.alive then deliver_local t sn msg
                  else send t ~src:sn.sid ~dst:via msg))
        end
      end
      else begin
        let advice = Point_map.find_owner_exn sn.cache point in
        let dst =
          if t.route_cap = 0 then advice.Vnode_id.snode
          else begin
            (* Prefix routing: an entry at least [rlevel] deep is {e fine}
               — it names one snode's slice of one region, so we trust it
               like a legacy advice hop. A coarser entry is a miss; the
               origin hop diverts it to the region's steward (which
               accumulates fine placements for the region via refresh
               rounds), while intermediate hops keep walking the coarse
               advice chain — the chain converges by the commit-learning
               induction, and never diverting mid-chain rules out a
               deterministic steward/peer ping-pong. *)
            let depth = Point_map.probe_depth sn.cache point in
            if depth >= t.rlevel then begin
              t.rc_hits <- t.rc_hits + 1;
              cache_touch t sn (Span.of_point t.space ~level:depth point);
              advice.Vnode_id.snode
            end
            else begin
              t.rc_misses <- t.rc_misses + 1;
              if hops > 0 then advice.Vnode_id.snode
              else
                let region = Fingers.region ~bits:(Space.bits t.space) ~level:t.rlevel point in
                let steward =
                  Fingers.steward ~snodes:(Array.length t.snodes) ~region
                in
                if steward = sn.sid then advice.Vnode_id.snode else steward
            end
          end
        in
        let msg = Wire.Routed { point; hops = hops + 1; retries; origin; op } in
        if dst = sn.sid then
          (* Our own cache points at us but we do not own the point: the
             placement is in flight; back off. *)
          Engine.schedule t.engine ~delay:t.backoff (fun () ->
              with_ctx t ctx (fun () -> deliver_local t sn msg))
        else send t ~src:sn.sid ~dst msg
      end

and execute_op t sn ~owner ~point ~origin ~retries ~hops op =
  (match t.instr with
  | Some i -> Histogram.observe i.i_hops (float_of_int hops)
  | None -> ());
  let h = if hops > t.max_hops then t.max_hops else hops in
  t.hop_counts.(h) <- t.hop_counts.(h) + 1;
  if hops > t.hops_peak then t.hops_peak <- hops;
  (* Piggybacked stale-entry repair: when the op needed forwarding, the
     owner rides its exact owned placement back on the reply so the origin
     repairs whatever stale cache entry misrouted the op — no dedicated
     repair message. Only when bounded routing is on; legacy replies stay
     byte-identical. *)
  let reply_hint () =
    if hops > 0 && t.route_cap > 0 then
      Some (fst (Point_map.find_point sn.owned point), owner)
    else None
  in
  match op with
  | Wire.Op_put { key; value; token } ->
      (* Single-copy write: unconditional replace, stamped at the owner.
         Delivery order IS the write order here (legacy semantics), and
         the stamp's sequence component keeps that order visible to any
         later LWW merge (anti-entropy, read repair). *)
      let v = local_exn sn owner in
      let cell = stamp_cell t sn ~value in
      heat_charge t sn ~point ~kind:`Write
        ~bytes:(String.length key + String.length value);
      (match Hashtbl.find_opt v.data key with
      | Some s -> s.cell <- cell
      | None -> Hashtbl.add v.data key { cell });
      (* Replication on but the write arrived on the routed single-copy
         path (issued while the whole cluster was down, then parked):
         seed the other replicas immediately so the acked write does not
         sit on one copy until an anti-entropy round finds it. Their acks
         find no quorum state here and are ignored. *)
      if t.rfactor > 1 then
        (match Point_map.find_point sn.rmap point with
        | _, set ->
            List.iter
              (fun sid ->
                if sid <> sn.sid then
                  send t ~src:sn.sid ~dst:sid
                    (Wire.Repl_put { token; key; point; cell }))
              set
        | exception Not_found -> ());
      send t ~src:sn.sid ~dst:origin
        (Wire.Put_ack { token; hint = reply_hint () })
  | Wire.Op_get { key; token } ->
      let v = local_exn sn owner in
      heat_charge t sn ~point ~kind:`Read ~bytes:(String.length key);
      let value =
        Option.map
          (fun s -> s.cell.Versioned.value)
          (Hashtbl.find_opt v.data key)
      in
      send t ~src:sn.sid ~dst:origin
        (Wire.Get_reply { token; value; hint = reply_hint () })
  | Wire.Op_sync { key; cell } ->
      (* Anti-entropy orphan coming home: merge, no reply. *)
      let v = local_exn sn owner in
      heat_charge t sn ~point ~kind:`Repl
        ~bytes:(String.length key + Versioned.size_bytes cell);
      (match Hashtbl.find_opt v.data key with
      | Some s -> s.cell <- Versioned.merge_opt (Some s.cell) cell
      | None -> Hashtbl.add v.data key { cell })
  | Wire.Op_create { newcomer } -> (
      (* The owner of the point is the victim vnode; its group is the
         victim group. Hand the request to that group's manager. *)
      let v = local_exn sn owner in
      match Gtbl.find_opt sn.lpdrs v.group with
      | None ->
          (* Transient: the group identity is switching (between Prepare
             and Commit). Back off and retry the lookup. *)
          t.retried <- t.retried + 1;
          if t.faults = None && retries >= t.max_retries then
            failwith "Runtime: group resolution failed to converge";
          Engine.schedule t.engine ~delay:t.backoff (fun () ->
              deliver_local t sn
                (Wire.Routed
                   { point; hops = 0; retries = retries + 1; origin; op }))
      | Some lpdr ->
          let manager = manager_of lpdr in
          let msg =
            Wire.Create_at_group { group = v.group; point; newcomer; origin }
          in
          if manager = sn.sid then deliver_local t sn msg
          else send t ~src:sn.sid ~dst:manager msg)

and manager_of lpdr =
  match lpdr.counts with
  | [] -> invalid_arg "Runtime: empty LPDR"
  | (first, _) :: _ -> first.Vnode_id.snode

(* ---------------- quorum coordinator ---------------- *)

and start_qput t sn ~token ~origin ~key ~point cell =
  let set = Point_map.find_owner_exn sn.rmap point in
  if
    t.admission_deadline > 0.
    && admission_estimate t sn ~set ~need:t.write_quorum
       > t.admission_deadline
  then shed_quorum_op t sn ~token ~origin
  else start_qput_admitted t sn ~token ~key ~point ~set cell

(* Refuse the operation before touching any replica: an explicit [Busy]
   to the origin settles it immediately — never a silent drop, and since
   no copy was written a shed op trivially cannot lose an acked write. *)
and shed_quorum_op t sn ~token ~origin =
  t.sheds <- t.sheds + 1;
  if Trace.enabled t.trace then
    Trace.instant t.trace ~ts:(Engine.now t.engine) ~tid:sn.sid
      ~name:"admission.shed" [ ("token", Trace.Int token) ];
  send t ~src:sn.sid ~dst:origin (Wire.Busy { token })

and start_qput_admitted t sn ~token ~key ~point ~set cell =
  let q =
    {
      q_token = token;
      q_key = key;
      q_point = point;
      q_set = set;
      q_acked = [];
      q_done = false;
      q_kind = Q_put { q_cell = cell; q_hint = None };
      q_ctx = t.cur;
    }
  in
  Hashtbl.replace sn.quorums token q;
  (* Sloppy-quorum patience: give the replicas [handoff_timeout] to ack,
     then hint the silent ones away. Armed even without a fault plan —
     crashes can be injected manually ([crash_snode]), and the timer is
     cancelled as soon as every copy lands. *)
  (match q.q_kind with
  | Q_put p ->
      p.q_hint <-
        Some
          (Engine.schedule_cancellable t.engine ~delay:t.handoff_timeout
             (fun () -> fire_hints t sn q))
  | Q_get _ -> ());
  List.iter
    (fun sid ->
      if sid = sn.sid then begin
        heat_charge t sn ~point ~kind:`Write
          ~bytes:(String.length key + Versioned.size_bytes cell);
        ignore (store_replica sn ~point ~key cell);
        qput_record t sn q sn.sid
      end
      else send t ~src:sn.sid ~dst:sid (Wire.Repl_put { token; key; point; cell }))
    set

and qput_record t sn q sid =
  if not (List.mem sid q.q_acked) then begin
    q.q_acked <- sid :: q.q_acked;
    if (not q.q_done) && List.length q.q_acked >= t.write_quorum then begin
      q.q_done <- true;
      finish_op t ~kind:`Qput ~token:q.q_token ~tid:sn.sid;
      causal_op_end t ~token:q.q_token ~tid:sn.sid ~outcome:"ok";
      record t
        (Oplog.Ack { token = q.q_token; at = Engine.now t.engine });
      (match Hashtbl.find_opt t.callbacks q.q_token with
      | Some (Cb_put k) ->
          Hashtbl.remove t.callbacks q.q_token;
          (match k with Some f -> f () | None -> ())
      | Some (Cb_get _ | Cb_remove _ | Cb_range _) | None ->
          failwith "Runtime: bad quorum put token");
      t.done_puts <- t.done_puts + 1;
      t.pending <- t.pending - 1
    end;
    (* Every copy placed: nothing left for the hint timer to cover. *)
    if q.q_done && List.length q.q_acked >= List.length q.q_set then
      qput_finalize t sn q
  end

and qput_finalize t sn q =
  ignore t;
  (match q.q_kind with
  | Q_put p ->
      (match p.q_hint with Some h -> Engine.cancel h | None -> ());
      p.q_hint <- None
  | Q_get _ -> ());
  Hashtbl.remove sn.quorums q.q_token

(* The hinted-handoff timer fired with some replicas still silent: park
   their copy on the next ring successor outside the replica set. The
   fallback acks toward W (sloppy quorum) and owes the silent target a
   [Hint_flush], which the reliable layer retries until the target
   restarts. *)
and fire_hints t sn q =
  (match q.q_kind with Q_put p -> p.q_hint <- None | Q_get _ -> ());
  if Hashtbl.mem sn.quorums q.q_token then begin
    (if sn.alive then
       with_ctx t q.q_ctx @@ fun () ->
       match q.q_kind with
       | Q_get _ -> ()
       | Q_put { q_cell; _ } ->
           let n = Array.length t.snodes in
           let chosen = ref [] in
           List.iter
             (fun target ->
               if not (List.mem target q.q_acked) then begin
                 let avoid = q.q_set @ q.q_acked @ !chosen in
                 match Placement.successor ~n ~avoid ~start:target with
                 | None -> ()
                 | Some fb ->
                     chosen := fb :: !chosen;
                     if Trace.enabled t.trace then
                       Trace.instant t.trace ~ts:(Engine.now t.engine)
                         ~tid:sn.sid ~name:"repl.hint"
                         [ ("target", Trace.Int target); ("via", Trace.Int fb) ];
                     if fb = sn.sid then begin
                       (* We are our own fallback: park locally. *)
                       heat_charge t sn ~point:q.q_point ~kind:`Repl
                         ~bytes:
                           (String.length q.q_key + Versioned.size_bytes q_cell);
                       ignore
                         (store_replica sn ~point:q.q_point ~key:q.q_key q_cell);
                       park_hint t sn ~target ~key:q.q_key ~point:q.q_point
                         q_cell;
                       qput_record t sn q sn.sid
                     end
                     else
                       send t ~src:sn.sid ~dst:fb
                         (Wire.Repl_hinted
                            {
                              token = q.q_token;
                              target;
                              key = q.q_key;
                              point = q.q_point;
                              cell = q_cell;
                            })
               end)
             q.q_set);
    (* The hints ack toward W through live fallbacks; when those cannot
       exist ([Placement.successor] exhausted the ring, a fallback down
       with no recovery coming, or we crashed ourselves) nothing else
       will ever close this quorum — give it one more window, then
       settle it. *)
    Engine.schedule t.engine ~delay:t.handoff_timeout (fun () ->
        qput_deadline t sn q)
  end

(* Park a hint owed to [target]: keep the freshest cell under the single
   (target, key) binding and count it exactly once — a second hint for
   the same binding merges instead of double-counting, so one [Hint_ack]
   settles it and [hints_stored]/[hints_flushed] stay matched. *)
and park_hint t sn ~target ~key ~point cell =
  let cell =
    match Hashtbl.find_opt sn.hints (target, key) with
    | Some s ->
        let merged = Versioned.merge ~mine:s.cell ~theirs:cell in
        s.cell <- merged;
        merged
    | None ->
        t.hints_stored <- t.hints_stored + 1;
        Hashtbl.add sn.hints (target, key) { cell };
        cell
  in
  send t ~src:sn.sid ~dst:target (Wire.Hint_flush { key; point; cell })

(* The post-hint deadline fired with the quorum state still open. If W
   was met, only the all-copies cleanup is outstanding and the missing
   replicas are owed through [sn.hints] — drop the state. Otherwise
   neither replicas nor fallbacks could assemble W: fail the write rather
   than strand its callback and [t.pending] entry forever. The dropped
   callback is never invoked, so the write counts as unacknowledged. *)
and qput_deadline t sn q =
  if Hashtbl.mem sn.quorums q.q_token then
    if q.q_done then qput_finalize t sn q
    else begin
      t.timeouts <- t.timeouts + 1;
      if Trace.enabled t.trace then
        Trace.instant t.trace ~ts:(Engine.now t.engine) ~tid:sn.sid
          ~name:"repl.qput.abort" [ ("token", Trace.Int q.q_token) ];
      Hashtbl.remove t.op_starts q.q_token;
      Hashtbl.remove t.callbacks q.q_token;
      record t (Oplog.Fail { token = q.q_token; at = Engine.now t.engine });
      with_ctx t q.q_ctx (fun () ->
          causal_op_end t ~token:q.q_token ~tid:sn.sid ~outcome:"fail");
      qput_finalize t sn q;
      t.pending <- t.pending - 1
    end

and start_qget t sn ~token ~origin ~key ~point =
  let set = Point_map.find_owner_exn sn.rmap point in
  if
    t.admission_deadline > 0.
    && admission_estimate t sn ~set ~need:t.read_quorum > t.admission_deadline
  then shed_quorum_op t sn ~token ~origin
  else start_qget_admitted t sn ~token ~key ~point ~set

and start_qget_admitted t sn ~token ~key ~point ~set =
  let q =
    {
      q_token = token;
      q_key = key;
      q_point = point;
      q_set = set;
      q_acked = [];
      q_done = false;
      q_kind = Q_get { q_replies = [] };
      q_ctx = t.cur;
    }
  in
  Hashtbl.replace sn.quorums token q;
  List.iter
    (fun sid ->
      if sid = sn.sid then begin
        heat_charge t sn ~point ~kind:`Read ~bytes:(String.length key);
        qget_record t sn q sn.sid (replica_lookup sn ~point ~key)
      end
      else send t ~src:sn.sid ~dst:sid (Wire.Repl_get { token; key; point }))
    set

and qget_record t sn q sid cell =
  match q.q_kind with
  | Q_put _ -> ()
  | Q_get g ->
      if not (List.mem_assoc sid g.q_replies) then begin
        g.q_replies <- (sid, cell) :: g.q_replies;
        if (not q.q_done) && List.length g.q_replies >= t.read_quorum then begin
          q.q_done <- true;
          (* LWW winner among the R replies. *)
          let winner =
            List.fold_left
              (fun acc (_, c) ->
                match (acc, c) with
                | None, c -> c
                | Some a, Some b -> Some (Versioned.merge ~mine:a ~theirs:b)
                | Some a, None -> Some a)
              None g.q_replies
          in
          (* Read repair: push the winner to stale or empty repliers. *)
          (match winner with
          | None -> ()
          | Some w ->
              List.iter
                (fun (rsid, c) ->
                  let stale =
                    match c with
                    | None -> true
                    | Some c ->
                        Versioned.newer w.Versioned.version c.Versioned.version
                  in
                  if stale then begin
                    t.read_repairs <- t.read_repairs + 1;
                    if rsid = sn.sid then
                      ignore
                        (store_replica sn ~point:q.q_point ~key:q.q_key w)
                    else
                      send t ~src:sn.sid ~dst:rsid
                        (Wire.Repl_repair
                           { key = q.q_key; point = q.q_point; cell = w })
                  end)
                g.q_replies);
          finish_op t ~kind:`Qget ~token:q.q_token ~tid:sn.sid;
          causal_op_end t ~token:q.q_token ~tid:sn.sid ~outcome:"ok";
          record t
            (Oplog.Reply
               {
                 token = q.q_token;
                 value = Option.map (fun c -> c.Versioned.value) winner;
                 at = Engine.now t.engine;
               });
          (match Hashtbl.find_opt t.callbacks q.q_token with
          | Some (Cb_get k) ->
              Hashtbl.remove t.callbacks q.q_token;
              k (Option.map (fun c -> c.Versioned.value) winner)
          | Some (Cb_put _ | Cb_remove _ | Cb_range _) | None ->
              failwith "Runtime: bad quorum get token");
          t.done_gets <- t.done_gets + 1;
          t.pending <- t.pending - 1;
          Hashtbl.remove sn.quorums q.q_token
        end
      end

(* ---------------- range reads ---------------- *)

(* Coordinated range read: one leg per partition intersecting [lo, hi)
   (resolved against this coordinator's replica map), each leg fanned out
   to the partition's replica set and complete at R distinct replies;
   cells merge by LWW across legs and repliers, so the result is
   duplicate-free by construction. Never shed by admission control: a
   Busy range would be indistinguishable from an empty one. *)
and start_range t sn ~token ~lo ~hi =
  let st =
    {
      r_token = token;
      r_open = 0;
      r_legs = Hashtbl.create 8;
      r_cells = Hashtbl.create 16;
      r_ctx = t.cur;
    }
  in
  Hashtbl.replace sn.ranges token st;
  List.iter
    (fun (span, set) ->
      let s = Span.start t.space span and e = Span.stop t.space span in
      if s < hi && e > lo then begin
        let rl_lo = max s lo and rl_hi = min e hi in
        let leg =
          {
            rl_lo;
            rl_hi;
            rl_set = set;
            rl_need = max 1 (min t.read_quorum (List.length set));
            rl_replied = [];
            rl_done = false;
          }
        in
        Hashtbl.replace st.r_legs rl_lo leg;
        st.r_open <- st.r_open + 1
      end)
    (Point_map.to_list sn.rmap);
  if st.r_open = 0 then finish_range t sn st
  else begin
    let legs =
      Hashtbl.fold (fun _ leg acc -> leg :: acc) st.r_legs []
      |> List.sort (fun a b -> compare a.rl_lo b.rl_lo)
    in
    List.iter
      (fun leg ->
        List.iter
          (fun sid ->
            if sid = sn.sid then begin
              let cells = range_cells t sn ~lo:leg.rl_lo ~hi:leg.rl_hi in
              heat_charge t sn ~point:leg.rl_lo ~kind:`Read
                ~bytes:(Wire.cells_size cells);
              range_record t sn st ~leg_lo:leg.rl_lo ~sid:sn.sid cells
            end
            else
              send t ~src:sn.sid ~dst:sid
                (Wire.Range_get { token; lo = leg.rl_lo; hi = leg.rl_hi }))
          leg.rl_set)
      legs
  end

and range_record t sn st ~leg_lo ~sid cells =
  match Hashtbl.find_opt st.r_legs leg_lo with
  | None -> ()
  | Some leg ->
      if not (List.mem sid leg.rl_replied) then begin
        leg.rl_replied <- sid :: leg.rl_replied;
        List.iter
          (fun (key, cell) ->
            Hashtbl.replace st.r_cells key
              (Versioned.merge_opt (Hashtbl.find_opt st.r_cells key) cell))
          cells;
        if (not leg.rl_done) && List.length leg.rl_replied >= leg.rl_need
        then begin
          leg.rl_done <- true;
          st.r_open <- st.r_open - 1;
          if st.r_open = 0 then finish_range t sn st
        end
      end

and finish_range t sn st =
  Hashtbl.remove sn.ranges st.r_token;
  let result =
    Hashtbl.fold
      (fun key cell acc -> (key, cell.Versioned.value) :: acc)
      st.r_cells []
    |> List.sort (fun (a, _) (b, _) -> String.compare a b)
  in
  finish_op t ~kind:`Qrange ~token:st.r_token ~tid:sn.sid;
  with_ctx t st.r_ctx (fun () ->
      causal_op_end t ~token:st.r_token ~tid:sn.sid ~outcome:"ok");
  (match Hashtbl.find_opt t.callbacks st.r_token with
  | Some (Cb_range k) ->
      Hashtbl.remove t.callbacks st.r_token;
      k result
  | Some (Cb_put _ | Cb_get _ | Cb_remove _) | None ->
      failwith "Runtime: bad range token");
  t.done_ranges <- t.done_ranges + 1;
  t.pending <- t.pending - 1

(* ---------------- anti-entropy ---------------- *)

(* Owner-side probe of one partition span toward one replica. Tiny spans
   go out as a legacy full-span digest (so seed-scale traffic is
   byte-identical to the pre-tree protocol); anything above
   [mt_threshold] opens a hash-tree descent instead. Both frames are cut
   from the same snapshot tree, so one store scan per round serves every
   span this snode pushes. *)
and ae_probe t sn ~dst span =
  let f = Merkle.frame_at (mtree t sn) span in
  if f.Merkle.f_count <= t.mt_threshold then begin
    t.ae_digests <- t.ae_digests + 1;
    send t ~src:sn.sid ~dst
      (Wire.Repl_digest
         { span; count = f.Merkle.f_count; vhash = f.Merkle.f_hash })
  end
  else begin
    t.ae_roots <- t.ae_roots + 1;
    send t ~src:sn.sid ~dst
      (Wire.Mt_root
         {
           round = sn.ae_round;
           span;
           count = f.Merkle.f_count;
           vhash = f.Merkle.f_hash;
         })
  end

(* Receiver-side comparison of one pushed frame against our own tree.
   Equal frames prune the whole subtree; a divergent frame either
   descends (both sides still have finer frames) or, at a leaf, ships our
   per-key digests so only the symmetric difference crosses the wire
   afterwards. Returns the span to request children for, if any. *)
and ae_frame_compare t sn ~dst (span, count, hash, leaf) =
  let mine = Merkle.frame_at (mtree t sn) span in
  if mine.Merkle.f_count = count && mine.Merkle.f_hash = hash then None
  else if
    leaf || mine.Merkle.f_leaf || Span.level span >= Space.max_level t.space
  then begin
    let keys =
      List.map (fun (k, d, _) -> (k, d)) (Merkle.entries_at (mtree t sn) span)
    in
    t.ae_leaves <- t.ae_leaves + 1;
    send t ~src:sn.sid ~dst (Wire.Mt_leaf { span; keys });
    None
  end
  else Some span

(* Probe every replica map entry covering one locally-owned span where we
   are the primary. Replicas whose frame differs either pull a full-span
   sync (legacy) or walk the tree down to the divergent leaves. *)
and ae_push_span t sn span =
  List.iter
    (fun (s', set) ->
      match set with
      | head :: rest when head = sn.sid ->
          let target_span =
            if Span.level s' > Span.level span then s' else span
          in
          List.iter
            (fun sid -> if sid <> sn.sid then ae_probe t sn ~dst:sid target_span)
            rest
      | _ -> ())
    (Point_map.overlapping sn.rmap span)

(* Probe every span we own whose replica set includes [target] — the
   recovery path behind [Ae_request]. Opens a fresh push round: the
   requester just restarted, so a stale snapshot is exactly what must
   not drive this exchange. *)
and ae_push_for t sn ~target =
  refresh_mtree t sn;
  Vtbl.iter
    (fun _ v ->
      List.iter
        (fun span ->
          List.iter
            (fun (s', set) ->
              match set with
              | head :: rest when head = sn.sid && List.mem target rest ->
                  let target_span =
                    if Span.level s' > Span.level span then s' else span
                  in
                  ae_probe t sn ~dst:target target_span
              | _ -> ())
            (Point_map.overlapping sn.rmap span))
        v.spans)
    sn.locals

(* One full anti-entropy round for this snode: probe every owned span to
   its replicas, and route cells we hold for partitions we are no longer
   a replica of back to their owner. *)
and ae_snode t sn =
  refresh_mtree t sn;
  Vtbl.iter
    (fun _ v -> List.iter (fun span -> ae_push_span t sn span) v.spans)
    sn.locals;
  let orphans =
    Hashtbl.fold
      (fun key s acc ->
        let point = Hash.string t.space key in
        match Point_map.find_point sn.rmap point with
        | _, set when List.mem sn.sid set -> acc
        | _ -> (key, point, s.cell) :: acc
        | exception Not_found -> (key, point, s.cell) :: acc)
      sn.replicas []
    |> List.sort (fun (a, _, _) (b, _, _) -> String.compare a b)
  in
  List.iter
    (fun (key, point, cell) ->
      t.orphans <- t.orphans + 1;
      Hashtbl.remove sn.replicas key;
      deliver_local t sn
        (Wire.Routed
           {
             point;
             hops = 0;
             retries = 0;
             origin = sn.sid;
             op = Wire.Op_sync { key; cell };
           }))
    orphans

(* ---------------- coordinator ---------------- *)

and qlock sn group =
  match Gtbl.find_opt sn.qlocks group with
  | Some l -> l
  | None ->
      let l = (ref false, Queue.create ()) in
      Gtbl.add sn.qlocks group l;
      l

and unlock t sn group =
  let busy, q = qlock sn group in
  busy := false;
  let continue = ref true in
  while !continue && not (Queue.is_empty q) do
    let msg = Queue.pop q in
    deliver_local t sn msg;
    if !busy then continue := false
  done

and start_balancing t sn group lpdr ~point ~newcomer ~origin =
  ignore point;
  let vmax = t.vmax in
  let split, target, target_counts =
    if List.length lpdr.counts = vmax then begin
      (* §3.7: full victim group splits into two random halves of Vmin. *)
      let arr = Array.of_list lpdr.counts in
      Rng.shuffle sn.rng arr;
      let vmin = vmax / 2 in
      let sorted l = List.sort (fun (a, _) (b, _) -> Vnode_id.compare a b) l in
      let left_members = sorted (Array.to_list (Array.sub arr 0 vmin)) in
      let right_members = sorted (Array.to_list (Array.sub arr vmin vmin)) in
      let gl, gr = Group_id.split group in
      let split =
        { Wire.parent = group; left = gl; left_members; right = gr;
          right_members }
      in
      if Rng.bool sn.rng then (Some split, gl, left_members)
      else (Some split, gr, right_members)
    end
    else (None, group, lpdr.counts)
  in
  let plan = Plan.creation ~pmin:t.pmin ~counts:target_counts ~newcomer in
  let member_snodes =
    List.map (fun (id, _) -> id.Vnode_id.snode) lpdr.counts
  in
  let participants =
    List.sort_uniq compare (newcomer.Vnode_id.snode :: member_snodes)
  in
  let ev = t.next_event in
  t.next_event <- t.next_event + 1;
  let st =
    {
      ev_done = Some (Wire.Create_done { newcomer });
      ev_origin = origin;
      ev_lock = group;
      ev_kind = `Create;
      ev_start = Engine.now t.engine;
      ev_acks = List.length participants;
      ev_moved = [];
      ev_participants = participants;
      ev_waits = 1;
      ev_committed = false;
      ev_watch = None;
    }
  in
  Hashtbl.add sn.events ev st;
  arm_watchdog t sn ev st;
  Log.debug (fun m ->
      m "snode %d coordinates event %d: %a -> group %a (%d participants)"
        sn.sid ev Vnode_id.pp newcomer Group_id.pp target
        (List.length participants));
  let prepare =
    Wire.Prepare
      {
        event = ev;
        split;
        target;
        level_before = lpdr.level;
        epoch_before = lpdr.epoch;
        plan;
        newcomer;
        donor_batches = List.length plan.Plan.assignments;
      }
  in
  List.iter (fun p -> send t ~src:sn.sid ~dst:p prepare) participants

(* Per-round watchdog (armed only under a fault plan): if the event has not
   completed within [event_timeout], count a round timeout and re-arm. The
   retry itself happens at the message layer — every outstanding Prepare,
   ack or Transfer is already being retransmitted with backoff until its
   destination answers, and prepared state is durable, so the round cannot
   be aborted (donor partitions are already in flight) but also cannot
   hang: it stalls until the dead participant restarts, then completes. *)
and arm_watchdog t sn ev st =
  if t.faults <> None then
    st.ev_watch <-
      Some
        (Engine.schedule_cancellable t.engine ~delay:t.event_timeout
           (fun () ->
             if Hashtbl.mem sn.events ev then begin
               if sn.alive then begin
                 t.timeouts <- t.timeouts + 1;
                 Log.debug (fun m ->
                     m
                       "snode %d: event %d round timeout (%d acks, %d \
                        completions outstanding); retrying via \
                        retransmission"
                       sn.sid ev st.ev_acks st.ev_waits)
               end;
               arm_watchdog t sn ev st
             end))

and maybe_complete t sn ev st =
  if st.ev_committed && st.ev_waits = 0 then begin
    Hashtbl.remove sn.events ev;
    (match st.ev_watch with Some h -> Engine.cancel h | None -> ());
    (match t.instr with
    | Some i ->
        let h =
          match st.ev_kind with
          | `Create -> i.i_ev_create
          | `Remove -> i.i_ev_remove
          | `Balance -> i.i_ev_balance
        in
        Histogram.observe h (Engine.now t.engine -. st.ev_start)
    | None -> ());
    if Trace.enabled t.trace then
      Trace.span t.trace ~ts:st.ev_start
        ~dur:(Engine.now t.engine -. st.ev_start)
        ~tid:sn.sid ~name:"2pc.event"
        [
          ("event", Trace.Int ev);
          ( "kind",
            Trace.Str
              (match st.ev_kind with
              | `Create -> "create"
              | `Remove -> "remove"
              | `Balance -> "balance") );
        ];
    if st.ev_kind = `Balance then t.lb_transfers <- t.lb_transfers + 1;
    (match st.ev_done with
    | Some done_msg -> send t ~src:sn.sid ~dst:st.ev_origin done_msg
    | None -> ());
    unlock t sn st.ev_lock
  end

(* ---------------- participant ---------------- *)

and apply_transfer t sn ~event ~to_vnode ~spans ~data =
  let v = local_exn sn to_vnode in
  install_spans sn v spans;
  List.iter
    (fun (key, cell) ->
      match Hashtbl.find_opt v.data key with
      | None -> Hashtbl.add v.data key { cell }
      | Some s -> s.cell <- Versioned.merge ~mine:s.cell ~theirs:cell)
    data;
  (* Cells we already replicated for these spans move into the partition
     table, so the owner's holdings (and digests) see one copy. *)
  absorb_replica_cells t sn v spans;
  List.iter (fun s -> cache_learn t sn s to_vnode) spans;
  match Hashtbl.find_opt sn.incomings event with
  | None -> failwith "Runtime: transfer applied without expectation"
  | Some inc ->
      inc.got <- inc.got + 1;
      if inc.got = inc.want then begin
        Hashtbl.remove sn.incomings event;
        send t ~src:sn.sid ~dst:inc.coordinator (Wire.All_received { event });
        (* If the commit already installed the replica map for these spans
           (Commit overtook the Transfer), seed the replicas now. *)
        if t.rfactor > 1 then
          List.iter (fun s -> ae_push_span t sn s) spans
      end

and drain_stash t sn event =
  (* Transfers that overtook the announcement of [event]. *)
  match Hashtbl.find_opt sn.stashed event with
  | None -> ()
  | Some l ->
      Hashtbl.remove sn.stashed event;
      List.iter
        (fun (to_vnode, spans, data) ->
          apply_transfer t sn ~event ~to_vnode ~spans ~data)
        (List.rev !l)

(* ---------------- active load balancing: hot-partition swap ---------- *)

(* Coordinate a load-driven partition swap (the manager holds the group
   lock, exactly as for creations and removals). The heavy vnode gives its
   hot partition to a group member hosted on the light snode, which gives
   its coldest partition back: per-vnode counts are unchanged, so the
   event never touches LPDRs — only placement moves, through the standard
   Prepare_ack/Commit round. Validation runs against the {e current} LPDR
   copy; the initiating report may be stale (the vnode gone, the group
   reshaped), in which case the swap is dropped, not retried — the next
   balance round will propose from fresh load data. *)
and start_lb_swap t sn group lpdr ~hot ~from_vnode ~to_snode =
  let abort () =
    t.lb_skipped <- t.lb_skipped + 1;
    unlock t sn group
  in
  let from_count =
    List.fold_left
      (fun acc (id, c) -> if Vnode_id.equal id from_vnode then c else acc)
      0 lpdr.counts
  in
  (* Swap counterpart: a group member hosted on the light snode with a
     partition to give back; the smallest id for determinism. *)
  let to_vnode =
    List.filter
      (fun (id, c) ->
        id.Vnode_id.snode = to_snode && c >= 1
        && not (Vnode_id.equal id from_vnode))
      lpdr.counts
    |> List.sort (fun (a, _) (b, _) -> Vnode_id.compare a b)
    |> function
    | [] -> None
    | (id, _) :: _ -> Some id
  in
  if from_count < 1 || from_vnode.Vnode_id.snode = to_snode then abort ()
  else
    match to_vnode with
    | None -> abort ()
    | Some to_vnode ->
        let participants =
          List.sort_uniq compare [ from_vnode.Vnode_id.snode; to_snode ]
        in
        let ev = t.next_event in
        t.next_event <- t.next_event + 1;
        let st =
          {
            ev_done = None;
            ev_origin = sn.sid;
            ev_lock = group;
            ev_kind = `Balance;
            ev_start = Engine.now t.engine;
            ev_acks = List.length participants;
            ev_moved = [];
            ev_participants = participants;
            (* one Transfer lands at each side, so each side reports one
               All_received *)
            ev_waits = List.length participants;
            ev_committed = false;
            ev_watch = None;
          }
        in
        Hashtbl.add sn.events ev st;
        arm_watchdog t sn ev st;
        Log.debug (fun m ->
            m "snode %d coordinates swap event %d: %a of %a -> %a (group %a)"
              sn.sid ev Span.pp hot Vnode_id.pp from_vnode Vnode_id.pp to_vnode
              Group_id.pp group);
        let swap = Wire.Lb_swap { event = ev; hot; from_vnode; to_vnode } in
        List.iter (fun p -> send t ~src:sn.sid ~dst:p swap) participants

(* Participant side of a swap: the prepare. Donations happen now (like
   [apply_prepare]); the group lock held at the manager keeps [v.spans]
   stable from validation to here, but the {e hot span} was picked by the
   reporter outside the lock — if an earlier swap already moved it, the
   donor substitutes its currently-hottest partition. *)
and apply_lb_swap t sn ~from ~event ~hot ~from_vnode ~to_vnode =
  let hosts_from = from_vnode.Vnode_id.snode = sn.sid in
  let v = local_exn sn (if hosts_from then from_vnode else to_vnode) in
  let group_snodes =
    match Gtbl.find_opt sn.lpdrs v.group with
    | Some lp ->
        List.sort_uniq compare
          (List.map (fun (id, _) -> id.Vnode_id.snode) lp.counts)
    | None ->
        List.sort_uniq compare
          [ from_vnode.Vnode_id.snode; to_vnode.Vnode_id.snode ]
  in
  let span =
    if hosts_from then
      if List.exists (fun s -> Span.compare s hot = 0) v.spans then hot
      else pick_span t ~hottest:true v.spans
    else pick_span t ~hottest:false v.spans
  in
  let receiver = if hosts_from then to_vnode else from_vnode in
  let data = donate_span t sn v span in
  send t ~src:sn.sid ~dst:receiver.Vnode_id.snode
    (Wire.Transfer { event; to_vnode = receiver; spans = [ span ]; data });
  let reps =
    Placement.replicas ~rfactor:t.rfactor ~n:(Array.length t.snodes)
      ~primary:receiver.Vnode_id.snode ~group_snodes
  in
  cache_learn t sn span receiver;
  Hashtbl.replace sn.incomings event { got = 0; want = 1; coordinator = from };
  drain_stash t sn event;
  send t ~src:sn.sid ~dst:from
    (Wire.Prepare_ack { event; moved = [ (span, receiver, reps) ] })

(* A directory proposal landing at the heavy snode: pick the hottest
   locally-owned partition whose group has a member hosted on the light
   snode (the swap must stay inside one group) and hand the request to
   that group's manager. Rate-limited per donor so one hot snode does not
   flood its groups with overlapping swaps. *)
and handle_lb_proposal t sn ~to_snode =
  match t.balance with
  | None -> ()
  | Some policy ->
      let now = Engine.now t.engine in
      if
        to_snode = sn.sid || to_snode < 0
        || to_snode >= Array.length t.snodes
        || now -. sn.lb_last_transfer < policy.Balance.Policy.min_spacing
      then t.lb_skipped <- t.lb_skipped + 1
      else begin
        let candidates = ref [] in
        Vtbl.iter
          (fun vid v ->
            match Gtbl.find_opt sn.lpdrs v.group with
            | Some lp
              when List.exists
                     (fun (id, _) ->
                       id.Vnode_id.snode = to_snode
                       && not (Vnode_id.equal id vid))
                     lp.counts ->
                List.iter
                  (fun s -> candidates := (span_heat t s, s, vid, v.group) :: !candidates)
                  v.spans
            | _ -> ())
          sn.locals;
        let best =
          List.fold_left
            (fun best (h, s, vid, g) ->
              match best with
              | Some (bh, bs, _, _)
                when bh > h || (bh = h && Span.compare bs s <= 0) ->
                  best
              | _ -> Some (h, s, vid, g))
            None !candidates
        in
        match best with
        | None -> t.lb_skipped <- t.lb_skipped + 1
        | Some (_, hot, from_vnode, group) -> (
            match Gtbl.find_opt sn.lpdrs group with
            | None -> t.lb_skipped <- t.lb_skipped + 1
            | Some lp ->
                sn.lb_last_transfer <- now;
                let manager = manager_of lp in
                let msg =
                  Wire.Lb_transfer
                    { group; hot; from_vnode; to_snode; origin = sn.sid }
                in
                if manager = sn.sid then deliver_local t sn msg
                else send t ~src:sn.sid ~dst:manager msg)
      end

(* Emergency path: a report so far above the cluster average that waiting
   for the next balance round risks saturating the reporter. Proposed
   immediately, against the current lightest reporter, rate-limited like
   round proposals. *)
and maybe_emergency t sn policy (s : Balance.Summary.t) =
  if Balance.Directory.emergency sn.lb_dir policy s then
    match Balance.Directory.lightest_except sn.lb_dir ~origin:s.Balance.Summary.origin with
    | Some light
      when light.Balance.Summary.heat < s.Balance.Summary.heat
           && Balance.Directory.admit_proposal sn.lb_dir policy
                ~origin:s.Balance.Summary.origin ~now:(Engine.now t.engine) ->
        t.lb_proposals <- t.lb_proposals + 1;
        t.lb_emergencies <- t.lb_emergencies + 1;
        send t ~src:sn.sid ~dst:s.Balance.Summary.origin
          (Wire.Lb_proposal
             { to_snode = light.Balance.Summary.origin; emergency = true })
    | _ -> ()

and start_removal t sn group lpdr ~leaving ~origin ~token =
  let refuse () =
    send t ~src:sn.sid ~dst:origin (Wire.Remove_done { token; ok = false });
    unlock t sn group
  in
  (* L2 floor: groups never shrink below Vmin — except group 0 while it is
     the only group (no split has happened yet, so only it carries the root
     identifier). *)
  let sole = Group_id.equal group Group_id.root in
  let vg = List.length lpdr.counts in
  if (not sole) && vg <= t.vmax / 2 then refuse ()
  else
    match Plan.removal ~pmin:t.pmin ~counts:lpdr.counts ~leaving with
    | Error (`Last_vnode | `Insufficient_capacity) -> refuse ()
    | Ok plan ->
        let participants =
          List.sort_uniq compare
            (List.map (fun (id, _) -> id.Vnode_id.snode) lpdr.counts)
        in
        let receivers =
          List.sort_uniq compare
            (List.map (fun m -> m.Plan.dst.Vnode_id.snode) plan.Plan.moves)
        in
        let ev = t.next_event in
        t.next_event <- t.next_event + 1;
        Log.debug (fun m ->
            m "snode %d coordinates removal event %d: %a leaves group %a"
              sn.sid ev Vnode_id.pp leaving Group_id.pp group);
        let st =
          {
            ev_done = Some (Wire.Remove_done { token; ok = true });
            ev_origin = origin;
            ev_lock = group;
            ev_kind = `Remove;
            ev_start = Engine.now t.engine;
            ev_acks = List.length participants;
            ev_moved = [];
            ev_participants = participants;
            ev_waits = List.length receivers;
            ev_committed = false;
            ev_watch = None;
          }
        in
        Hashtbl.add sn.events ev st;
        arm_watchdog t sn ev st;
        let prepare =
          Wire.Remove_prepare
            {
              event = ev;
              group;
              leaving;
              epoch_before = lpdr.epoch;
              moves = plan.Plan.moves;
              remaining = plan.Plan.removal_counts;
            }
        in
        List.iter (fun pt -> send t ~src:sn.sid ~dst:pt prepare) participants

and apply_remove_prepare t sn ~from ~event ~group ~leaving ~epoch_before
    ~moves ~remaining =
  (* Ship every movement whose source vnode lives here. *)
  let group_snodes =
    List.sort_uniq compare
      (List.map (fun (id, _) -> id.Vnode_id.snode) remaining)
  in
  let moved = ref [] in
  List.iter
    (fun { Plan.src; dst; n } ->
      if src.Vnode_id.snode = sn.sid then begin
        let v = local_exn sn src in
        let spans, data = donate_spans t sn v n in
        send t ~src:sn.sid ~dst:dst.Vnode_id.snode
          (Wire.Transfer { event; to_vnode = dst; spans; data });
        let reps =
          Placement.replicas ~rfactor:t.rfactor ~n:(Array.length t.snodes)
            ~primary:dst.Vnode_id.snode ~group_snodes
        in
        List.iter (fun s -> cache_learn t sn s dst) spans;
        moved := List.map (fun s -> (s, dst, reps)) spans @ !moved
      end)
    moves;
  (* Expect one batch per movement targeting a vnode hosted here. *)
  let want =
    List.length
      (List.filter (fun m -> m.Plan.dst.Vnode_id.snode = sn.sid) moves)
  in
  if want > 0 then begin
    Hashtbl.replace sn.incomings event { got = 0; want; coordinator = from };
    drain_stash t sn event
  end;
  Hashtbl.replace sn.pendings event
    (P_remove
       {
         r_leaving = leaving;
         r_group = group;
         r_epoch = epoch_before;
         r_remaining = remaining;
       });
  send t ~src:sn.sid ~dst:from (Wire.Prepare_ack { event; moved = !moved })

and apply_prepare t sn ~from (p : Wire.prepare) =
  let plan = p.Wire.plan in
  (* Physical changes happen now; identity changes (LPDRs, group fields)
     wait for Commit so concurrent requests keep serializing through the
     parent group's manager. *)
  let target_member_ids = List.map fst plan.Plan.final_counts in
  (* Split-all: binary-split the partitions of local target members. *)
  if plan.Plan.split_all then
    List.iter
      (fun id ->
        if id.Vnode_id.snode = sn.sid && not (Vnode_id.equal id p.Wire.newcomer)
        then split_all_local t sn (local_exn sn id))
      target_member_ids;
  (* Newcomer instantiation. *)
  if p.Wire.newcomer.Vnode_id.snode = sn.sid then begin
    Vtbl.replace sn.locals p.Wire.newcomer
      {
        vid = p.Wire.newcomer;
        group = p.Wire.target;
        spans = [];
        data = Hashtbl.create 16;
      };
    Hashtbl.replace sn.incomings p.Wire.event
      { got = 0; want = p.Wire.donor_batches; coordinator = from };
    drain_stash t sn p.Wire.event
  end;
  (* Donations from locally-hosted donors. *)
  let group_snodes =
    List.sort_uniq compare
      (List.map (fun (id, _) -> id.Vnode_id.snode) plan.Plan.final_counts)
  in
  let reps =
    Placement.replicas ~rfactor:t.rfactor ~n:(Array.length t.snodes)
      ~primary:p.Wire.newcomer.Vnode_id.snode ~group_snodes
  in
  let moved = ref [] in
  List.iter
    (fun { Plan.donor; give } ->
      if donor.Vnode_id.snode = sn.sid then begin
        let v = local_exn sn donor in
        let spans, data = donate_spans t sn v give in
        send t ~src:sn.sid ~dst:p.Wire.newcomer.Vnode_id.snode
          (Wire.Transfer
             { event = p.Wire.event; to_vnode = p.Wire.newcomer; spans; data });
        List.iter (fun s -> cache_learn t sn s p.Wire.newcomer) spans;
        moved := List.map (fun s -> (s, p.Wire.newcomer, reps)) spans @ !moved
      end)
    plan.Plan.assignments;
  Hashtbl.replace sn.pendings p.Wire.event (P_create p);
  send t ~src:sn.sid ~dst:from
    (Wire.Prepare_ack { event = p.Wire.event; moved = !moved })

and apply_commit t sn ~moved ev =
  (match Hashtbl.find_opt sn.pendings ev with
  | None -> ()
  | Some (P_remove { r_leaving; r_group; r_epoch; r_remaining }) ->
      Hashtbl.remove sn.pendings ev;
      (* Departed vnode: delete its (now empty) local record. This action
         is unique to the event, so it runs regardless of the fence. *)
      if r_leaving.Vnode_id.snode = sn.sid then begin
        (match Vtbl.find_opt sn.locals r_leaving with
        | Some v -> assert (v.spans = [])
        | None -> ());
        Vtbl.remove sn.locals r_leaving
      end;
      let e = r_epoch + 1 in
      if epoch_note sn r_group e then begin
        let hosts_member =
          List.exists (fun (id, _) -> id.Vnode_id.snode = sn.sid) r_remaining
        in
        if hosts_member then begin
          match Gtbl.find_opt sn.lpdrs r_group with
          | Some lp ->
              lp.counts <- r_remaining;
              lp.epoch <- e
          | None -> ()
        end
        else Gtbl.remove sn.lpdrs r_group
      end
  | Some (P_create p) ->
      Hashtbl.remove sn.pendings ev;
      let e = p.Wire.epoch_before + 1 in
      (* Group identity switch: retire the parent LPDR, adopt the halves we
         host members of, update local group fields. The target half gets
         its post-event state below; every LPDR write is epoch-fenced. *)
      (match p.Wire.split with
      | None -> ()
      | Some s ->
          if epoch_note sn s.Wire.parent e then
            Gtbl.remove sn.lpdrs s.Wire.parent;
          let adopt gid members =
            if
              (not (Group_id.equal gid p.Wire.target))
              && epoch_note sn gid e
            then begin
              let host_member =
                List.exists (fun (id, _) -> id.Vnode_id.snode = sn.sid) members
              in
              List.iter
                (fun (id, _) ->
                  if id.Vnode_id.snode = sn.sid then
                    (local_exn sn id).group <- gid)
                members;
              if host_member then
                Gtbl.replace sn.lpdrs gid
                  { level = p.Wire.level_before; epoch = e; counts = members }
            end
          in
          adopt s.Wire.left s.Wire.left_members;
          adopt s.Wire.right s.Wire.right_members);
      (* Target LPDR copy: new membership and counts, bumped level. *)
      let plan = p.Wire.plan in
      if epoch_note sn p.Wire.target e then begin
        let hosts_target =
          List.exists
            (fun (id, _) -> id.Vnode_id.snode = sn.sid)
            plan.Plan.final_counts
        in
        let level =
          p.Wire.level_before + if plan.Plan.split_all then 1 else 0
        in
        (if hosts_target then
           Gtbl.replace sn.lpdrs p.Wire.target
             { level; epoch = e; counts = plan.Plan.final_counts }
         else Gtbl.remove sn.lpdrs p.Wire.target);
        List.iter
          (fun (id, _) ->
            if id.Vnode_id.snode = sn.sid then
              (local_exn sn id).group <- p.Wire.target)
          plan.Plan.final_counts
      end);
  (* Placement of the moved partitions: owner into the routing cache,
     replica set into the replica map — one epoch-fenced commit. Applied
     per fence fragment: only the parts of each span whose placement was
     last set by an older event accept this commit's placement (a newer
     commit may have overtaken this one, possibly for a sub-span). *)
  List.iter
    (fun (s, owner, reps) ->
      List.iter
        (fun (fs, fev) ->
          if fev < ev then begin
            let part = if Span.level fs > Span.level s then fs else s in
            cache_learn t sn part owner;
            rmap_learn t sn part reps;
            map_learn t.space sn.pfence part ev
          end)
        (Point_map.overlapping sn.pfence s))
    moved;
  (* New owner already holds the data (Transfer preceded this Commit):
     seed the freshly-assigned replicas now. The symmetric hook in
     [apply_transfer] covers the Commit-first ordering. *)
  if t.rfactor > 1 then
    List.iter
      (fun (s, owner, _) ->
        if owner.Vnode_id.snode = sn.sid && Vtbl.mem sn.locals owner then
          ae_push_span t sn s)
      moved;
  match t.on_commit with
  | Some f -> f ~event:ev ~snode:sn.sid
  | None -> ()

(* ---------------- dispatch ---------------- *)

and handle t sn ~from msg =
  match msg with
  | Wire.Routed { point; hops; retries; origin; op } ->
      route_or_forward t sn (point, hops, retries, origin, op)
  | Wire.Create_at_group { group; point; newcomer; origin } -> (
      match Gtbl.find_opt sn.lpdrs group with
      | None ->
          (* The group split away since the request was routed: resolve the
             victim again from the original point. *)
          deliver_local t sn
            (Wire.Routed
               { point; hops = 0; retries = 0; origin;
                 op = Wire.Op_create { newcomer } })
      | Some lpdr ->
          let manager = manager_of lpdr in
          if manager <> sn.sid then send t ~src:sn.sid ~dst:manager msg
          else begin
            let busy, q = qlock sn group in
            if !busy then Queue.add msg q
            else begin
              busy := true;
              start_balancing t sn group lpdr ~point ~newcomer ~origin
            end
          end)
  | Wire.Prepare p -> apply_prepare t sn ~from p
  | Wire.Prepare_ack { event; moved } -> (
      match Hashtbl.find_opt sn.events event with
      | None -> failwith "Runtime: ack for unknown event"
      | Some st ->
          st.ev_moved <- moved @ st.ev_moved;
          st.ev_acks <- st.ev_acks - 1;
          if st.ev_acks = 0 then begin
            st.ev_committed <- true;
            (match t.instr with
            | Some i ->
                Histogram.observe i.i_prepare
                  (Engine.now t.engine -. st.ev_start)
            | None -> ());
            if Trace.enabled t.trace then
              Trace.span t.trace ~ts:st.ev_start
                ~dur:(Engine.now t.engine -. st.ev_start)
                ~tid:sn.sid ~name:"2pc.prepare"
                [
                  ("event", Trace.Int event);
                  ("participants", Trace.Int (List.length st.ev_participants));
                ];
            (* With replication on, every snode carries a replica map, so
               the commit fans out cluster-wide: placement never straddles
               a stale map on a quorum coordinator. *)
            let commit_targets =
              if t.rfactor > 1 then
                List.init (Array.length t.snodes) (fun i -> i)
              else st.ev_participants
            in
            List.iter
              (fun pt ->
                if pt <> sn.sid then
                  send t ~src:sn.sid ~dst:pt
                    (Wire.Commit { event; moved = st.ev_moved }))
              commit_targets;
            (* The coordinator applies its own commit synchronously: when
               the completion below unlocks the group and dequeues the next
               event, the local LPDR must already be post-event. *)
            apply_commit t sn ~moved:st.ev_moved event;
            maybe_complete t sn event st
          end)
  | Wire.Transfer { event; to_vnode; spans; data } -> (
      match Hashtbl.find_opt sn.incomings event with
      | Some _ -> apply_transfer t sn ~event ~to_vnode ~spans ~data
      | None ->
          (* Overtook its Prepare: stash until the event is announced. *)
          let stash =
            match Hashtbl.find_opt sn.stashed event with
            | Some l -> l
            | None ->
                let l = ref [] in
                Hashtbl.add sn.stashed event l;
                l
          in
          stash := (to_vnode, spans, data) :: !stash)
  | Wire.All_received { event } -> (
      match Hashtbl.find_opt sn.events event with
      | None -> failwith "Runtime: completion for unknown event"
      | Some st ->
          st.ev_waits <- st.ev_waits - 1;
          maybe_complete t sn event st)
  | Wire.Commit { event; moved } -> apply_commit t sn ~moved event
  | Wire.Create_done _ ->
      t.done_creations <- t.done_creations + 1;
      t.pending <- t.pending - 1
  | Wire.Remove_request { leaving; origin; token } -> (
      match Vtbl.find_opt sn.locals leaving with
      | None -> send t ~src:sn.sid ~dst:origin (Wire.Remove_done { token; ok = false })
      | Some v -> (
          match Gtbl.find_opt sn.lpdrs v.group with
          | None ->
              (* Group identity switching (between Prepare and Commit):
                 retry shortly. *)
              t.retried <- t.retried + 1;
              Engine.schedule t.engine ~delay:t.backoff (fun () ->
                  deliver_local t sn msg)
          | Some lpdr ->
              let manager = manager_of lpdr in
              let fwd =
                Wire.Remove_at_group { group = v.group; leaving; origin; token }
              in
              if manager = sn.sid then deliver_local t sn fwd
              else send t ~src:sn.sid ~dst:manager fwd))
  | Wire.Remove_at_group { group; leaving; origin; token } -> (
      match Gtbl.find_opt sn.lpdrs group with
      | None ->
          (* The group split away: resolve again at the hosting snode. *)
          send t ~src:sn.sid ~dst:leaving.Vnode_id.snode
            (Wire.Remove_request { leaving; origin; token })
      | Some lpdr ->
          let manager = manager_of lpdr in
          if manager <> sn.sid then send t ~src:sn.sid ~dst:manager msg
          else begin
            let busy, q = qlock sn group in
            if !busy then Queue.add msg q
            else begin
              busy := true;
              start_removal t sn group lpdr ~leaving ~origin ~token
            end
          end)
  | Wire.Remove_prepare { event; group; leaving; epoch_before; moves; remaining }
    ->
      apply_remove_prepare t sn ~from ~event ~group ~leaving ~epoch_before
        ~moves ~remaining
  | Wire.Remove_done { token; ok } ->
      finish_op t ~kind:`Remove ~token ~tid:sn.sid;
      (match Hashtbl.find_opt t.callbacks token with
      | Some (Cb_remove k) ->
          Hashtbl.remove t.callbacks token;
          k ok
      | Some (Cb_put _ | Cb_get _ | Cb_range _) | None ->
          failwith "Runtime: bad remove token");
      t.done_removals <- t.done_removals + 1;
      t.pending <- t.pending - 1
  | Wire.Put_ack { token; hint } ->
      (match hint with
      | Some (span, vid) -> cache_learn t sn span vid
      | None -> ());
      finish_op t ~kind:`Put ~token ~tid:sn.sid;
      causal_op_end t ~token ~tid:sn.sid ~outcome:"ok";
      record t (Oplog.Ack { token; at = Engine.now t.engine });
      (match Hashtbl.find_opt t.callbacks token with
      | Some (Cb_put k) ->
          Hashtbl.remove t.callbacks token;
          (match k with Some f -> f () | None -> ())
      | Some (Cb_get _ | Cb_remove _ | Cb_range _) | None ->
          failwith "Runtime: bad put token");
      t.done_puts <- t.done_puts + 1;
      t.pending <- t.pending - 1
  | Wire.Get_reply { token; value; hint } ->
      (match hint with
      | Some (span, vid) -> cache_learn t sn span vid
      | None -> ());
      finish_op t ~kind:`Get ~token ~tid:sn.sid;
      causal_op_end t ~token ~tid:sn.sid ~outcome:"ok";
      record t (Oplog.Reply { token; value; at = Engine.now t.engine });
      (match Hashtbl.find_opt t.callbacks token with
      | Some (Cb_get k) ->
          Hashtbl.remove t.callbacks token;
          k value
      | Some (Cb_put _ | Cb_remove _ | Cb_range _) | None ->
          failwith "Runtime: bad get token");
      t.done_gets <- t.done_gets + 1;
      t.pending <- t.pending - 1
  | Wire.Busy { token } ->
      (* Admission rejection landing at the origin: settle the operation
         now, unacknowledged. The write was applied nowhere; the read
         answers nothing. *)
      (match Hashtbl.find_opt t.callbacks token with
      | Some (Cb_put _) ->
          Hashtbl.remove t.callbacks token;
          t.busy_rejections <- t.busy_rejections + 1;
          Hashtbl.remove t.op_starts token;
          causal_op_end t ~token ~tid:sn.sid ~outcome:"busy";
          record t (Oplog.Busy { token; at = Engine.now t.engine });
          t.pending <- t.pending - 1
      | Some (Cb_get k) ->
          Hashtbl.remove t.callbacks token;
          t.busy_rejections <- t.busy_rejections + 1;
          Hashtbl.remove t.op_starts token;
          causal_op_end t ~token ~tid:sn.sid ~outcome:"busy";
          record t (Oplog.Busy { token; at = Engine.now t.engine });
          t.pending <- t.pending - 1;
          k None
      | Some (Cb_remove _ | Cb_range _) -> failwith "Runtime: bad busy token"
      | None -> ())
  | Wire.Repl_put { token; key; point; cell } ->
      heat_charge t sn ~point ~kind:`Write
        ~bytes:(String.length key + Versioned.size_bytes cell);
      ignore (store_replica sn ~point ~key cell);
      send t ~src:sn.sid ~dst:from (Wire.Repl_put_ack { token })
  | Wire.Repl_put_ack { token } -> (
      match Hashtbl.find_opt sn.quorums token with
      | None -> ()
      | Some q -> qput_record t sn q from)
  | Wire.Repl_get { token; key; point } ->
      heat_charge t sn ~point ~kind:`Read ~bytes:(String.length key);
      send t ~src:sn.sid ~dst:from
        (Wire.Repl_get_reply { token; cell = replica_lookup sn ~point ~key })
  | Wire.Repl_get_reply { token; cell } -> (
      match Hashtbl.find_opt sn.quorums token with
      | None -> ()
      | Some q -> qget_record t sn q from cell)
  | Wire.Repl_hinted { token; target; key; point; cell } ->
      (* Sloppy-quorum fallback: park the cell for the crashed [target],
         ack toward W, and owe the target a flush. *)
      heat_charge t sn ~point ~kind:`Repl
        ~bytes:(String.length key + Versioned.size_bytes cell);
      ignore (store_replica sn ~point ~key cell);
      park_hint t sn ~target ~key ~point cell;
      send t ~src:sn.sid ~dst:from (Wire.Repl_put_ack { token })
  | Wire.Hint_flush { key; point; cell } ->
      heat_charge t sn ~point ~kind:`Repl
        ~bytes:(String.length key + Versioned.size_bytes cell);
      ignore (store_replica sn ~point ~key cell);
      send t ~src:sn.sid ~dst:from (Wire.Hint_ack { key })
  | Wire.Hint_ack { key } ->
      if Hashtbl.mem sn.hints (from, key) then begin
        Hashtbl.remove sn.hints (from, key);
        t.hints_flushed <- t.hints_flushed + 1
      end
  | Wire.Repl_repair { key; point; cell } ->
      heat_charge t sn ~point ~kind:`Repl
        ~bytes:(String.length key + Versioned.size_bytes cell);
      ignore (store_replica sn ~point ~key cell)
  | Wire.Repl_digest { span; count; vhash } ->
      let my_count, my_vhash = span_digest t sn span in
      if my_count <> count || my_vhash <> vhash then
        send t ~src:sn.sid ~dst:from (Wire.Repl_sync_request { span })
  | Wire.Repl_sync_request { span } ->
      let cells = span_cells t sn span in
      t.ae_keys_sent <- t.ae_keys_sent + List.length cells;
      send t ~src:sn.sid ~dst:from (Wire.Repl_sync { span; cells; reply = true })
  | Wire.Repl_sync { span; cells; reply } ->
      let fresher = ref [] in
      List.iter
        (fun (key, cell) ->
          let point = Hash.string t.space key in
          (match replica_lookup sn ~point ~key with
          | Some mine
            when Versioned.newer mine.Versioned.version cell.Versioned.version
            ->
              if reply then fresher := (key, mine) :: !fresher
          | _ -> ());
          if store_replica sn ~point ~key cell then begin
            heat_charge t sn ~point ~kind:`Repl
              ~bytes:(String.length key + Versioned.size_bytes cell);
            t.sync_cells <- t.sync_cells + 1
          end)
        cells;
      (* Bidirectional repair: ship back anything we hold strictly fresher
         (or that the sender is missing entirely). *)
      if reply then begin
        let theirs = Hashtbl.create (List.length cells + 1) in
        List.iter (fun (key, _) -> Hashtbl.replace theirs key ()) cells;
        List.iter
          (fun (key, cell) ->
            if not (Hashtbl.mem theirs key) then
              fresher := (key, cell) :: !fresher)
          (span_cells t sn span);
        if !fresher <> [] then begin
          t.ae_keys_sent <- t.ae_keys_sent + List.length !fresher;
          send t ~src:sn.sid ~dst:from
            (Wire.Repl_sync
               { span; cells = List.rev !fresher; reply = false })
        end
      end
  | Wire.Mt_root { round; span; count; vhash } -> (
      let tree = mtree_for_round t sn ~owner:from ~round in
      ignore tree;
      match ae_frame_compare t sn ~dst:from (span, count, vhash, false) with
      | Some s ->
          t.ae_requests <- t.ae_requests + 1;
          send t ~src:sn.sid ~dst:from (Wire.Mt_request { spans = [ s ] })
      | None -> ())
  | Wire.Mt_request { spans } ->
      (* Pusher side of one descent round: answer each divergent span
         with its two children's frames (or its own, marked leaf, when
         the space cannot split further). *)
      let tree = mtree t sn in
      let frames =
        List.concat_map
          (fun s ->
            if Span.level s >= Space.max_level t.space then begin
              let f = Merkle.frame_at tree s in
              [ (s, f.Merkle.f_count, f.Merkle.f_hash, true) ]
            end
            else begin
              let a, b = Merkle.children tree s in
              [
                (a.Merkle.f_span, a.Merkle.f_count, a.Merkle.f_hash,
                 a.Merkle.f_leaf);
                (b.Merkle.f_span, b.Merkle.f_count, b.Merkle.f_hash,
                 b.Merkle.f_leaf);
              ]
            end)
          spans
      in
      t.ae_frames <- t.ae_frames + List.length frames;
      send t ~src:sn.sid ~dst:from (Wire.Mt_frames { frames })
  | Wire.Mt_frames { frames } ->
      let deeper =
        List.filter_map (fun fr -> ae_frame_compare t sn ~dst:from fr) frames
      in
      if deeper <> [] then begin
        t.ae_requests <- t.ae_requests + 1;
        send t ~src:sn.sid ~dst:from (Wire.Mt_request { spans = deeper })
      end
  | Wire.Mt_leaf { span; keys } ->
      (* A divergent leaf, as the peer's (key, digest) list. Ship every
         cell it lacks or holds differently (LWW at the receiver keeps
         whichever is fresher), and ask for its copy of everything we
         lack or hold differently — so exactly the symmetric difference
         crosses the wire. *)
      let mine = Merkle.entries_at (mtree t sn) span in
      let theirs = Hashtbl.create (List.length keys + 1) in
      List.iter (fun (k, d) -> Hashtbl.replace theirs k d) keys;
      let to_send =
        List.filter_map
          (fun (k, d, cell) ->
            match Hashtbl.find_opt theirs k with
            | Some d' when d' = d -> None
            | _ -> Some (k, cell))
          mine
      in
      if to_send <> [] then begin
        t.ae_keys_sent <- t.ae_keys_sent + List.length to_send;
        send t ~src:sn.sid ~dst:from
          (Wire.Repl_sync { span; cells = to_send; reply = false })
      end;
      let mine_tbl = Hashtbl.create (List.length mine + 1) in
      List.iter (fun (k, d, _) -> Hashtbl.replace mine_tbl k d) mine;
      let want =
        List.filter_map
          (fun (k, d) ->
            match Hashtbl.find_opt mine_tbl k with
            | Some d' when d' = d -> None
            | _ -> Some k)
          keys
      in
      if want <> [] then
        send t ~src:sn.sid ~dst:from (Wire.Mt_want { span; keys = want })
  | Wire.Mt_want { span; keys } ->
      (* Answer from the live store: these are our freshest copies, and a
         key dropped since the snapshot is simply omitted. *)
      let cells =
        List.filter_map
          (fun key ->
            let point = Hash.string t.space key in
            Option.map (fun c -> (key, c)) (replica_lookup sn ~point ~key))
          keys
      in
      if cells <> [] then begin
        t.ae_keys_sent <- t.ae_keys_sent + List.length cells;
        send t ~src:sn.sid ~dst:from
          (Wire.Repl_sync { span; cells; reply = false })
      end
  | Wire.Range_get { token; lo; hi } ->
      let cells = range_cells t sn ~lo ~hi in
      heat_charge t sn ~point:lo ~kind:`Read ~bytes:(Wire.cells_size cells);
      send t ~src:sn.sid ~dst:from (Wire.Range_reply { token; lo; cells })
  | Wire.Range_reply { token; lo; cells } -> (
      match Hashtbl.find_opt sn.ranges token with
      | None -> ()
      | Some st -> range_record t sn st ~leg_lo:lo ~sid:from cells)
  | Wire.Ae_request ->
      (* The sender just restarted. Re-offer any hints we still owe it
         first: the original flush may have been sent straight into its
         crash window, and without a fault plan there is no reliable
         layer to retransmit it. A duplicate flush is harmless — storage
         merges by LWW and a second ack finds the binding already gone. *)
      Hashtbl.fold
        (fun (target, key) s acc ->
          if target = from then (key, s.cell) :: acc else acc)
        sn.hints []
      |> List.sort (fun (a, _) (b, _) -> String.compare a b)
      |> List.iter (fun (key, cell) ->
             let point = Hash.string t.space key in
             send t ~src:sn.sid ~dst:from (Wire.Hint_flush { key; point; cell }));
      ae_push_for t sn ~target:from
  | Wire.Lpdr_pull { group } ->
      (* Crash recovery: a restarted member asks for a fresh copy. Reply
         with ours (we may not be the manager any more if the group moved;
         [None] lets the puller wait for the in-flight commit instead). *)
      let view =
        match Gtbl.find_opt sn.lpdrs group with
        | Some lp -> Some (lp.level, lp.epoch, lp.counts)
        | None -> None
      in
      send t ~src:sn.sid ~dst:from (Wire.Lpdr_push { group; view })
  | Wire.Lpdr_push { group; view } -> (
      match view with
      | None -> ()
      | Some (level, epoch, counts) -> (
          (* Epoch fence: apply only strictly fresher views, and only while
             we still carry the group (a commit may have retired it). *)
          if epoch_note sn group epoch then
            match Gtbl.find_opt sn.lpdrs group with
            | Some lp ->
                lp.level <- level;
                lp.epoch <- epoch;
                lp.counts <- counts
            | None -> ()))
  | Wire.Traced { trace; span; hop; payload } ->
      (* First delivery of a traced edge (duplicates never reach the
         protocol layer): log the receive, make the edge the ambient
         context so everything the payload provokes is parented on it. *)
      if t.causal then
        Trace.instant t.trace ~ts:(Engine.now t.engine) ~tid:sn.sid
          ~cat:"causal" ~name:"msg.recv"
          [ ("trace", Trace.Int trace); ("span", Trace.Int span);
            ("dst", Trace.Int sn.sid) ];
      let saved = t.cur in
      t.cur <- Some (trace, span, hop);
      handle t sn ~from payload;
      t.cur <- saved
  | Wire.Lb_report { origin = _; pull; entries; owns } ->
      (* Load dissemination: merge the sender's view version-fenced. A
         directory snode also files every entry as a load report and
         checks the emergency threshold; a pull asks for our view back
         (the push-pull round). *)
      ignore (Balance.Gossip.merge sn.lb_view entries);
      (* Routing maintenance riding the same message: the sender's exact
         owned placements for regions we steward. *)
      List.iter (fun (span, vid) -> cache_learn t sn span vid) owns;
      (match t.balance with
      | Some policy when sn.lb_is_dir ->
          List.iter
            (fun s ->
              if Balance.Directory.note sn.lb_dir s then
                maybe_emergency t sn policy s)
            entries
      | Some _ | None -> ());
      if pull then begin
        t.lb_reports <- t.lb_reports + 1;
        send t ~src:sn.sid ~dst:from
          (Wire.Lb_report
             {
               origin = sn.sid;
               pull = false;
               entries = Balance.Gossip.entries sn.lb_view;
               owns = [];
             })
      end
  | Wire.Lb_proposal { to_snode; emergency = _ } ->
      handle_lb_proposal t sn ~to_snode
  | Wire.Lb_transfer { group; hot; from_vnode; to_snode; origin = _ } -> (
      match Gtbl.find_opt sn.lpdrs group with
      | None ->
          (* The group split away since the proposal: drop — the next
             balance round re-proposes from fresh reports. *)
          t.lb_skipped <- t.lb_skipped + 1
      | Some lpdr ->
          let manager = manager_of lpdr in
          if manager <> sn.sid then send t ~src:sn.sid ~dst:manager msg
          else begin
            let busy, q = qlock sn group in
            if !busy then Queue.add msg q
            else begin
              busy := true;
              start_lb_swap t sn group lpdr ~hot ~from_vnode ~to_snode
            end
          end)
  | Wire.Lb_swap { event; hot; from_vnode; to_vnode } ->
      apply_lb_swap t sn ~from ~event ~hot ~from_vnode ~to_vnode
  | Wire.Req _ | Wire.Ack _ | Wire.Batch _ ->
      (* Unwrapped in [receive]; reaching the protocol layer is a bug. *)
      failwith "Runtime: link-layer frame in protocol handler"

(* ------------------------------------------------------------------ *)
(* Crash and recovery                                                   *)

(* Does one of this snode's prepared-but-uncommitted events already touch
   [gid]? If so its commit will refresh the copy; no pull needed. *)
let pending_touches sn gid =
  Hashtbl.fold
    (fun _ p acc ->
      acc
      ||
      match p with
      | P_create pr -> (
          Group_id.equal pr.Wire.target gid
          ||
          match pr.Wire.split with
          | None -> false
          | Some s ->
              Group_id.equal s.Wire.parent gid
              || Group_id.equal s.Wire.left gid
              || Group_id.equal s.Wire.right gid)
      | P_remove { r_group; _ } -> Group_id.equal r_group gid)
    sn.pendings false

(* Crash-stop: the snode absorbs every delivery until restart. Protocol
   state (vnode data, LPDR copies, prepared events, reliable-layer outbox
   and dedup window) is modelled as durable — the classic 2PC stable log —
   so only genuinely volatile state dies: retransmission timers, route
   suspicions, and the routing cache (rebuilt on restart). *)
let crash_snode t sid =
  let sn = t.snodes.(sid) in
  if sn.alive then begin
    sn.alive <- false;
    sn.down_since <- Engine.now t.engine;
    t.crashes <- t.crashes + 1;
    if Trace.enabled t.trace then
      Trace.instant t.trace ~ts:sn.down_since ~tid:sid ~name:"crash" [];
    (match t.faults with Some f -> Fault.set_down f sid | None -> ());
    Hashtbl.iter
      (fun _ p ->
        p.suspect <- false;
        p.strikes <- 0;
        (* RTT estimates are soft state, like suspicions. *)
        p.srtt <- 0.;
        p.rttvar <- 0.;
        Hashtbl.iter
          (fun _ e ->
            (match e.o_timer with Some tm -> Engine.disarm tm | None -> ());
            e.o_attempts <- 0)
          p.outbox)
      sn.peers;
    (* Coalescing buffers are durable (pre-outbox staging) but their flush
       timers are not; restart re-arms them. *)
    Hashtbl.iter
      (fun _ ob ->
        match ob.ob_timer with Some tm -> Engine.disarm tm | None -> ())
      sn.obufs;
    (* Heat cells of the partitions this snode owns are soft state too: a
       restarted snode re-learns its load rather than acting on pre-crash
       history (same contract as the RTT estimators). The table may hold
       replica-map fragments finer than the owned partitions, so matching
       is by containment, not key equality. *)
    (match t.heat with
    | Some tbl ->
        Hashtbl.fold (fun span _ acc -> span :: acc) tbl []
        |> List.iter (fun span ->
               match Point_map.find_point sn.owned (Span.start t.space span) with
               | _ -> Hashtbl.remove tbl span
               | exception Not_found -> ())
    | None -> ());
    (* The gossip view and directory table die with the snode; the durable
       lb_version counter makes its first post-restart summary supersede
       everything it gossiped before the crash. *)
    Balance.Gossip.reset sn.lb_view;
    Balance.Directory.reset sn.lb_dir;
    (* LRU stamps die with the routing cache they describe. *)
    Hashtbl.reset sn.rstamps;
    (* The anti-entropy snapshot tree and the per-peer round markers are
       soft state: a restarted snode re-snapshots on first use. *)
    sn.mtree <- None;
    Hashtbl.reset sn.ae_seen;
    Log.debug (fun m -> m "snode %d crashed at %g" sid (Engine.now t.engine))
  end

let restart_snode t sid =
  let sn = t.snodes.(sid) in
  if not sn.alive then begin
    sn.alive <- true;
    t.recoveries <- t.recoveries + 1;
    let downtime = Engine.now t.engine -. sn.down_since in
    (match t.instr with
    | Some i -> Histogram.observe i.i_downtime downtime
    | None -> ());
    if Trace.enabled t.trace then
      Trace.span t.trace ~ts:sn.down_since ~dur:downtime ~tid:sid
        ~name:"recovery.downtime" [];
    (match t.faults with Some f -> Fault.set_up f sid | None -> ());
    Log.debug (fun m -> m "snode %d restarts at %g" sid (Engine.now t.engine));
    (* The routing cache was volatile: restart from the bootstrap placement,
       then overlay what we durably own (everything else converges through
       normal forwarding and commits). *)
    let spans0, first = t.bootstrap in
    List.iter (fun s -> Point_map.remove sn.cache s) (Point_map.spans sn.cache);
    List.iter (fun s -> Point_map.add sn.cache s first) spans0;
    Vtbl.iter
      (fun vid v -> List.iter (fun s -> cache_learn t sn s vid) v.spans)
      sn.locals;
    (* Re-arm retransmission for everything still unacknowledged. With a
       bounded window the whole outbox re-enters through the backlog so
       the restart burst respects the window too. *)
    Hashtbl.iter
      (fun pid p ->
        if t.max_inflight = 0 then
          Hashtbl.fold (fun seq e acc -> (seq, e) :: acc) p.outbox []
          |> List.sort compare
          |> List.iter (fun (seq, e) -> transmit t sn ~dst:pid ~seq e)
        else begin
          Queue.clear p.backlog;
          p.live <- 0;
          Hashtbl.iter (fun _ e -> e.o_live <- false) p.outbox;
          Hashtbl.fold (fun seq _ acc -> seq :: acc) p.outbox []
          |> List.sort compare
          |> List.iter (fun seq -> Queue.add seq p.backlog);
          refill_window t sn ~pid
        end)
      sn.peers;
    (* Flush timers died with the crash; anything still staged goes out
       one linger window from now. *)
    Hashtbl.iter
      (fun _ ob ->
        if ob.ob_parts <> [] then
          match ob.ob_timer with
          | Some tm -> Engine.arm tm ~delay:t.linger
          | None -> ())
      sn.obufs;
    (* Replay self-addressed work that fired while down. *)
    while not (Queue.is_empty sn.parked) do
      deliver_local t sn (Queue.pop sn.parked)
    done;
    (* Refresh LPDR copies that no in-flight commit of ours will overwrite:
       balancing events may have committed while we were down, and our
       copies (though durable) can be stale. Pulls are epoch-fenced. *)
    Gtbl.iter
      (fun gid lp ->
        if not (pending_touches sn gid) then begin
          let manager = manager_of lp in
          if manager <> sn.sid then
            send t ~src:sn.sid ~dst:manager (Wire.Lpdr_pull { group = gid })
        end)
      sn.lpdrs;
    (* Catch up on writes missed while down: ask every peer to digest-push
       the partitions we replicate (hinted copies arrive through the
       reliable layer on their own). *)
    if t.rfactor > 1 then
      Array.iter
        (fun peer ->
          if peer.sid <> sid then
            send t ~src:sid ~dst:peer.sid Wire.Ae_request)
        t.snodes
  end

(* ------------------------------------------------------------------ *)
(* Active load balancing: rounds                                        *)

let lb_policy_exn t =
  match t.balance with
  | Some p -> p
  | None -> invalid_arg "Runtime: balancer not armed (pass ?balance to create)"

(* Refresh the snode's own load summary — total heat over its owned
   partitions, egress pressure, partition count — under a fresh version
   stamp, and install it in its own gossip view. The version counter is
   durable (survives crashes), so post-restart summaries supersede
   everything gossiped before the crash. *)
let lb_refresh_summary t sn =
  let heat =
    Vtbl.fold
      (fun _ v acc ->
        List.fold_left (fun a s -> a +. span_heat t s) acc v.spans)
      sn.locals 0.
  in
  let partitions =
    Vtbl.fold (fun _ v acc -> acc + List.length v.spans) sn.locals 0
  in
  let queue =
    Hashtbl.fold
      (fun _ p acc -> acc + Hashtbl.length p.outbox + Queue.length p.backlog)
      sn.peers 0
  in
  sn.lb_version <- sn.lb_version + 1;
  let s =
    Balance.Summary.make ~origin:sn.sid ~version:sn.lb_version ~heat ~queue
      ~partitions ~stamped:(Engine.now t.engine)
  in
  ignore (Balance.Gossip.note sn.lb_view s);
  s

(* One push-pull gossip round: every live snode refreshes its summary and
   pushes its whole view to [fanout] distinct random peers, each of which
   replies with its own view (the pull half, in the Lb_report handler). *)
let lb_gossip_round t =
  let policy = lb_policy_exn t in
  let n = Array.length t.snodes in
  if n > 1 then
    Array.iter
      (fun sn ->
        if sn.alive then begin
          ignore (lb_refresh_summary t sn);
          let entries = Balance.Gossip.entries sn.lb_view in
          let fanout = min policy.Balance.Policy.fanout (n - 1) in
          let chosen = ref [] in
          while List.length !chosen < fanout do
            let p = Rng.int sn.rng n in
            if p <> sn.sid && not (List.mem p !chosen) then
              chosen := p :: !chosen
          done;
          List.iter
            (fun dst ->
              t.lb_reports <- t.lb_reports + 1;
              send t ~src:sn.sid ~dst
                (Wire.Lb_report
                   { origin = sn.sid; pull = true; entries; owns = [] }))
            (List.rev !chosen)
        end)
      t.snodes

(* One directory-report round: every live snode sends its fresh summary to
   its hash-located directory (round-robin over the directory set). *)
let lb_report_round t =
  let policy = lb_policy_exn t in
  let n = Array.length t.snodes in
  Array.iter
    (fun sn ->
      if sn.alive then begin
        let s = lb_refresh_summary t sn in
        let dir =
          Balance.Directory.directory_for ~snodes:n
            ~count:policy.Balance.Policy.directories ~origin:sn.sid
        in
        t.lb_reports <- t.lb_reports + 1;
        let msg =
          Wire.Lb_report
            { origin = sn.sid; pull = false; entries = [ s ]; owns = [] }
        in
        if dir = sn.sid then deliver_local t sn msg
        else send t ~src:sn.sid ~dst:dir msg
      end)
    t.snodes

(* One balance round: every live directory classifies its reporters into
   light/heavy against the cluster average and proposes a transfer from
   the k-th heaviest toward the k-th lightest (many-to-many), rate-limited
   per heavy origin. *)
let lb_balance_round t =
  let policy = lb_policy_exn t in
  let now = Engine.now t.engine in
  Array.iter
    (fun sn ->
      if sn.alive && sn.lb_is_dir then begin
        let light, heavy = Balance.Directory.classify sn.lb_dir policy in
        List.iter
          (fun ((h : Balance.Summary.t), (l : Balance.Summary.t)) ->
            if
              Balance.Directory.admit_proposal sn.lb_dir policy
                ~origin:h.Balance.Summary.origin ~now
            then begin
              t.lb_proposals <- t.lb_proposals + 1;
              send t ~src:sn.sid ~dst:h.Balance.Summary.origin
                (Wire.Lb_proposal
                   { to_snode = l.Balance.Summary.origin; emergency = false })
            end)
          (Balance.Directory.pair ~light ~heavy)
      end)
    t.snodes

(* Pre-schedule bounded balancer rounds up to [until] — explicit like
   [anti_entropy], never a self-rescheduling timer, so [run] without a
   horizon still drains the queue. *)
let arm_balancer t ~until =
  let policy = lb_policy_exn t in
  let now = Engine.now t.engine in
  let arm interval f =
    let steps = int_of_float ((until -. now) /. interval) in
    for i = 1 to steps do
      Engine.at t.engine ~time:(now +. (float_of_int i *. interval))
        (fun () -> f t)
    done
  in
  arm policy.Balance.Policy.gossip_interval lb_gossip_round;
  arm policy.Balance.Policy.report_interval lb_report_round;
  arm policy.Balance.Policy.balance_interval lb_balance_round

(* ------------------------------------------------------------------ *)
(* Routing maintenance: steward refresh rounds                          *)

(* One refresh round: every live snode reports its exact owned placements
   to the stewards of every region they intersect, riding the balancer's
   report message class ([entries = []]) so maintenance adds no new wire
   tag. A span coarser than a region is filed with each covered region's
   steward — filing by start-region only leaves every steward blind to
   points that fall mid-span, and those walks degrade to stale advice
   chains. The total filing volume per round stays O(regions + spans):
   a level-[l] span covers [2^(rlevel-l)] regions, and those counts sum
   to at most the region count across a partition of the space. No-op
   unless bounded routing is armed. *)
let route_refresh_round t =
  if t.route_cap > 0 then begin
    let n = Array.length t.snodes in
    let bits = Space.bits t.space in
    Array.iter
      (fun sn ->
        if sn.alive then begin
          let by_steward = Hashtbl.create 8 in
          Vtbl.iter
            (fun vid v ->
              List.iter
                (fun span ->
                  let region0 =
                    Fingers.region ~bits ~level:t.rlevel
                      (Span.start t.space span)
                  in
                  let covered =
                    let l = Span.level span in
                    if l >= t.rlevel then 1 else 1 lsl (t.rlevel - l)
                  in
                  (* Distinct stewards only: consecutive regions can hash
                     to the same steward, and the steward's own [owned]
                     map already resolves its local placements. *)
                  let seen = Hashtbl.create 4 in
                  for region = region0 to region0 + covered - 1 do
                    let sd = Fingers.steward ~snodes:n ~region in
                    if sd <> sn.sid && not (Hashtbl.mem seen sd) then begin
                      Hashtbl.add seen sd ();
                      let prev =
                        match Hashtbl.find_opt by_steward sd with
                        | Some l -> l
                        | None -> []
                      in
                      Hashtbl.replace by_steward sd ((span, vid) :: prev)
                    end
                  done)
                v.spans)
            sn.locals;
          Hashtbl.iter
            (fun sd owns ->
              t.route_refreshes <- t.route_refreshes + 1;
              send t ~src:sn.sid ~dst:sd
                (Wire.Lb_report
                   { origin = sn.sid; pull = false; entries = []; owns }))
            by_steward
        end)
      t.snodes
  end

(* Pre-schedule bounded refresh rounds up to [until], mirroring
   [arm_balancer]: explicit occurrences, never a self-rescheduling
   timer. *)
let arm_route_refresh t ~interval ~until =
  if interval <= 0. || not (Float.is_finite interval) then
    invalid_arg "Runtime.arm_route_refresh: interval must be positive";
  let now = Engine.now t.engine in
  let steps = int_of_float ((until -. now) /. interval) in
  for i = 1 to steps do
    Engine.at t.engine ~time:(now +. (float_of_int i *. interval)) (fun () ->
        route_refresh_round t)
  done

(* ------------------------------------------------------------------ *)
(* Construction and public API                                          *)

let create ?(space = Space.default) ?(link = Network.gigabit) ?(pmin = 32)
    ?(approach = Local { vmin = 16 }) ?faults ?(max_retries = 50)
    ?(backoff = 1e-3) ?(rto = 1e-3) ?(rto_cap = 0.05) ?(retry_budget = 0)
    ?(adaptive_rto = false) ?(max_inflight = 0) ?(admission_deadline = 0.)
    ?(ingress_limit = 0) ?(poison_after = 5) ?(event_timeout = 1.0)
    ?(rfactor = 1) ?(read_quorum = 1) ?(write_quorum = 1)
    ?(handoff_timeout = 0.02) ?(linger = 0.) ?(mt_threshold = 128)
    ?(mt_leaf = 16) ?metrics ?(trace = Trace.noop) ?(causal = false)
    ?(heat = false) ?(heat_tau = 1.0) ?balance ?(route_cap = 0)
    ?(max_hops = default_max_hops) ~snodes ~seed () =
  if snodes < 1 then invalid_arg "Runtime.create: need at least one snode";
  if max_hops < 1 then invalid_arg "Runtime.create: max_hops < 1";
  if route_cap < 0 then invalid_arg "Runtime.create: route_cap < 0";
  (* A restarting snode rebuilds its cache from the [pmin]-span bootstrap
     placement; a cap below that could not even hold the rebuild. *)
  if route_cap > 0 && route_cap < pmin then
    invalid_arg "Runtime.create: route_cap must be 0 or >= pmin";
  (match balance with
  | Some p -> Balance.Policy.validate p
  | None -> ());
  (* The balancer steers by heat, so enabling it implies heat tracking. *)
  let heat = heat || balance <> None in
  if not (Params.is_power_of_two pmin) then
    invalid_arg "Runtime.create: pmin must be a power of two";
  if max_retries < 1 then invalid_arg "Runtime.create: max_retries < 1";
  if poison_after < 1 then invalid_arg "Runtime.create: poison_after < 1";
  if backoff <= 0. || rto <= 0. || event_timeout <= 0. then
    invalid_arg "Runtime.create: delays must be positive";
  if rto_cap < rto then invalid_arg "Runtime.create: rto_cap < rto";
  if retry_budget < 0 then invalid_arg "Runtime.create: retry_budget < 0";
  if max_inflight < 0 then invalid_arg "Runtime.create: max_inflight < 0";
  if ingress_limit < 0 then invalid_arg "Runtime.create: ingress_limit < 0";
  if admission_deadline < 0. || not (Float.is_finite admission_deadline) then
    invalid_arg "Runtime.create: admission_deadline must be finite and >= 0";
  Params.check_quorum ~rfactor ~read_quorum ~write_quorum;
  if rfactor > snodes then
    invalid_arg "Runtime.create: rfactor exceeds the snode count";
  if handoff_timeout <= 0. then
    invalid_arg "Runtime.create: handoff_timeout must be positive";
  if mt_threshold < 0 then invalid_arg "Runtime.create: mt_threshold < 0";
  if mt_leaf < 1 then invalid_arg "Runtime.create: mt_leaf < 1";
  if linger < 0. || not (Float.is_finite linger) then
    invalid_arg "Runtime.create: linger must be finite and non-negative";
  if heat_tau <= 0. || not (Float.is_finite heat_tau) then
    invalid_arg "Runtime.create: heat_tau must be finite and positive";
  let vmax =
    match approach with
    | Global -> max_int
    | Local { vmin } ->
        if not (Params.is_power_of_two vmin) then
          invalid_arg "Runtime.create: vmin must be a power of two";
        2 * vmin
  in
  let engine = Engine.create () in
  let net = Network.create ?faults engine link in
  if ingress_limit > 0 then Network.set_ingress_limit net ingress_limit;
  let master = Rng.of_int seed in
  let first = Vnode_id.make ~snode:0 ~vnode:0 in
  let level0 = Params.log2_exact pmin in
  let spans0 = List.init pmin (fun i -> Span.make space ~level:level0 ~index:i) in
  let instr =
    match metrics with
    | None -> None
    | Some reg ->
        let lat ?labels name = Registry.histogram reg ?labels name in
        Some
          {
            (* Hop counts are small integers: unit buckets doubling from 1;
               a zero-hop resolution lands in the underflow bucket. *)
            i_hops =
              Registry.histogram reg ~lo:1.0 ~growth:2.0 ~bins:8
                "runtime.route.hops";
            i_op_put = lat ~labels:[ ("op", "put") ] "runtime.op.latency";
            i_op_get = lat ~labels:[ ("op", "get") ] "runtime.op.latency";
            i_op_remove =
              lat ~labels:[ ("op", "remove") ] "runtime.op.latency";
            i_prepare = lat "runtime.2pc.prepare";
            i_ev_create =
              lat ~labels:[ ("kind", "create") ] "runtime.2pc.event";
            i_ev_remove =
              lat ~labels:[ ("kind", "remove") ] "runtime.2pc.event";
            i_ev_balance =
              lat ~labels:[ ("kind", "balance") ] "runtime.2pc.event";
            i_downtime = lat "runtime.recovery.downtime";
            i_rto = lat "runtime.rto.delay";
            i_q_put = lat ~labels:[ ("op", "put") ] "runtime.quorum.latency";
            i_q_get = lat ~labels:[ ("op", "get") ] "runtime.quorum.latency";
            i_q_range =
              lat ~labels:[ ("op", "range") ] "runtime.quorum.latency";
            (* Batch occupancy is a small count, like hops. *)
            i_batch =
              Registry.histogram reg ~lo:1.0 ~growth:2.0 ~bins:10
                "runtime.batch.occupancy";
          }
  in
  let replicas0 =
    Placement.replicas ~rfactor ~n:snodes ~primary:0 ~group_snodes:[ 0 ]
  in
  let mk_snode sid =
    let sn =
      {
        sid;
        alive = true;
        down_since = 0.;
        locals = Vtbl.create 8;
        lpdrs = Gtbl.create 8;
        owned = Point_map.create space;
        cache = Point_map.create space;
        rmap = Point_map.create space;
        pfence = Point_map.create space;
        replicas = Hashtbl.create 16;
        hints = Hashtbl.create 8;
        quorums = Hashtbl.create 8;
        wseq = 0;
        rng = Rng.split master;
        qlocks = Gtbl.create 8;
        events = Hashtbl.create 8;
        incomings = Hashtbl.create 8;
        pendings = Hashtbl.create 8;
        stashed = Hashtbl.create 8;
        gepochs = Gtbl.create 8;
        peers = Hashtbl.create 8;
        obufs = Hashtbl.create 8;
        parked = Queue.create ();
        lb_view = Balance.Gossip.create ();
        lb_dir = Balance.Directory.create ();
        lb_is_dir =
          (match balance with
          | None -> false
          | Some p ->
              List.mem sid
                (Balance.Directory.locate ~snodes
                   ~count:p.Balance.Policy.directories));
        lb_version = 0;
        lb_last_transfer = neg_infinity;
        rstamps = Hashtbl.create 16;
        mtree = None;
        ae_round = 0;
        ae_seen = Hashtbl.create 8;
        ranges = Hashtbl.create 8;
      }
    in
    (* Every cache starts with the bootstrap placement, every replica map
       with the bootstrap replica set (all partitions primaried at snode
       0, backups on its ring successors). *)
    List.iter (fun s -> Point_map.add sn.cache s first) spans0;
    List.iter (fun s -> Point_map.add sn.rmap s replicas0) spans0;
    (* Fence below any real event id: the first commit always applies. *)
    List.iter (fun s -> Point_map.add sn.pfence s (-1)) spans0;
    sn
  in
  let snodes_arr = Array.init snodes mk_snode in
  let sn0 = snodes_arr.(0) in
  Vtbl.replace sn0.locals first
    { vid = first; group = Group_id.root; spans = spans0; data = Hashtbl.create 16 };
  List.iter (fun s -> Point_map.add sn0.owned s first) spans0;
  Gtbl.replace sn0.lpdrs Group_id.root
    { level = level0; epoch = 0; counts = [ (first, pmin) ] };
  Gtbl.replace sn0.gepochs Group_id.root 0;
  let t =
    {
      engine;
      net;
      faults;
      space;
      pmin;
      vmax;
      max_retries;
      backoff;
      rto;
      rto_cap;
      retry_budget;
      adaptive_rto;
      max_inflight;
      admission_deadline;
      poison_after;
      event_timeout;
      rfactor;
      route_cap;
      max_hops;
      rlevel = Fingers.level ~bits:(Space.bits space) ~snodes;
      read_quorum;
      write_quorum;
      handoff_timeout;
      linger;
      mt_threshold;
      mt_leaf;
      bootstrap = (spans0, first);
      instr;
      trace;
      (* Causal propagation changes wire bytes (the Traced wrapper), so it
         is opt-in on top of tracing rather than implied by it: a plain
         trace must observe the exact schedule an untraced run produces. *)
      causal = causal && Trace.enabled trace;
      cur = None;
      next_span = 0;
      op_roots = Hashtbl.create 64;
      heat = (if heat then Some (Hashtbl.create 64) else None);
      heat_tau;
      balance;
      op_starts = Hashtbl.create 64;
      snodes = snodes_arr;
      callbacks = Hashtbl.create 64;
      next_token = 0;
      next_event = 0;
      pending = 0;
      done_creations = 0;
      done_removals = 0;
      done_puts = 0;
      done_gets = 0;
      retried = 0;
      timeouts = 0;
      retransmits = 0;
      probes = 0;
      sheds = 0;
      busy_rejections = 0;
      backpressured = 0;
      reliable_msgs = 0;
      outbox_peak = 0;
      crashes = 0;
      recoveries = 0;
      hints_stored = 0;
      hints_flushed = 0;
      read_repairs = 0;
      sync_cells = 0;
      orphans = 0;
      done_ranges = 0;
      ae_digests = 0;
      ae_roots = 0;
      ae_requests = 0;
      ae_frames = 0;
      ae_leaves = 0;
      ae_keys_sent = 0;
      lb_transfers = 0;
      lb_proposals = 0;
      lb_emergencies = 0;
      lb_skipped = 0;
      lb_reports = 0;
      rclock = 0;
      rc_hits = 0;
      rc_misses = 0;
      rc_evictions = 0;
      rc_peak = 0;
      route_refreshes = 0;
      hops_peak = 0;
      hop_counts = Array.make (max_hops + 1) 0;
      on_commit = None;
      recorder = None;
    }
  in
  (* Crash-stop/restart schedule from the fault plan. Every crash must come
     with a restart or retransmission toward the dead snode never ends. *)
  (match faults with
  | None -> ()
  | Some f ->
      List.iter
        (fun (sid, at, back_at) ->
          if sid < 0 || sid >= snodes then
            invalid_arg "Runtime.create: crash plan names an unknown snode";
          Engine.at engine ~time:at (fun () -> crash_snode t sid);
          Engine.at engine ~time:back_at (fun () -> restart_snode t sid))
        (Fault.crash_plan f));
  t

let engine t = t.engine
let network t = t.net
let snode_count t = Array.length t.snodes
let vnode_count t = t.done_creations + 1
let alive t sid = t.snodes.(sid).alive

type stats = {
  drops : int;
  duplicates : int;
  timeouts : int;
  retransmits : int;
  crashes : int;
  recoveries : int;
}

let stats t =
  let drops, duplicates =
    match t.faults with
    | None -> (0, 0)
    | Some f -> (Fault.drops f, Fault.duplicates f)
  in
  {
    drops;
    duplicates;
    timeouts = t.timeouts;
    retransmits = t.retransmits;
    crashes = t.crashes;
    recoveries = t.recoveries;
  }

type overload_stats = {
  sheds : int;
  busy_rejections : int;
  probes : int;
  backpressured : int;
  reliable_messages : int;
  outbox_peak : int;
  ingress_overflows : int;
  ingress_peak : int;
}

let overload_stats (t : t) =
  {
    sheds = t.sheds;
    busy_rejections = t.busy_rejections;
    probes = t.probes;
    backpressured = t.backpressured;
    reliable_messages = t.reliable_msgs;
    outbox_peak = t.outbox_peak;
    ingress_overflows = Network.ingress_overflows t.net;
    ingress_peak = Network.max_ingress_high_water t.net;
  }

(* Bounded-queue audit: the structural invariants of the degradation layer.
   Cheap enough to run at every explorer step. *)
let queue_audit t =
  let issues = ref [] in
  let fail fmt = Format.kasprintf (fun s -> issues := s :: !issues) fmt in
  Array.iter
    (fun sn ->
      Hashtbl.iter
        (fun pid p ->
          let live =
            Hashtbl.fold
              (fun _ e acc -> if e.o_live then acc + 1 else acc)
              p.outbox 0
          in
          if live <> p.live then
            fail "snode %d -> %d: window accounting drift (%d counted, %d live)"
              sn.sid pid p.live live;
          if t.max_inflight > 0 && p.live > t.max_inflight then
            fail "snode %d -> %d: %d in flight exceeds the window of %d"
              sn.sid pid p.live t.max_inflight)
        sn.peers)
    t.snodes;
  List.rev !issues

type repl_stats = {
  hints_stored : int;
  hints_flushed : int;
  read_repairs : int;
  sync_cells : int;
  orphans : int;
}

let repl_stats (t : t) =
  {
    hints_stored = t.hints_stored;
    hints_flushed = t.hints_flushed;
    read_repairs = t.read_repairs;
    sync_cells = t.sync_cells;
    orphans = t.orphans;
  }

(* ------------------------------------------------------------------ *)
(* Heat and health exports                                              *)

type heat_row = {
  hr_span : Span.t;
  hr_owner : int;  (* snode owning the partition at report time; -1 unknown *)
  hr_reads : float;  (* decayed EWMA heat per class, as of [Engine.now] *)
  hr_writes : float;
  hr_repl : float;
  hr_bytes : float;
  hr_read_count : int;  (* raw access totals *)
  hr_write_count : int;
  hr_repl_count : int;
}

let heat_total r = r.hr_reads +. r.hr_writes +. r.hr_repl

(* Authoritative owner of [point]: the snode whose exact ownership map
   covers it (exactly one, by the coverage invariant; [-1] only if the
   probe races a migration). *)
let owner_of_point t point =
  let n = Array.length t.snodes in
  let rec scan i =
    if i >= n then -1
    else
      match Point_map.find_point t.snodes.(i).owned point with
      | _ -> t.snodes.(i).sid
      | exception Not_found -> scan (i + 1)
  in
  scan 0

let heat_rows t =
  match t.heat with
  | None -> []
  | Some tbl ->
      let now = Engine.now t.engine in
      Hashtbl.fold (fun span e acc -> (span, e) :: acc) tbl []
      |> List.sort (fun (a, _) (b, _) -> Span.compare a b)
      |> List.map (fun (span, e) ->
             {
               hr_span = span;
               hr_owner = owner_of_point t (Span.start t.space span);
               hr_reads = Heat.value e.h_read ~now;
               hr_writes = Heat.value e.h_write ~now;
               hr_repl = Heat.value e.h_repl ~now;
               hr_bytes = Heat.value e.h_bytes ~now;
               hr_read_count = Heat.count e.h_read;
               hr_write_count = Heat.count e.h_write;
               hr_repl_count = Heat.count e.h_repl;
             })

type peer_sample = {
  ps_observer : int;
  ps_peer : int;
  ps_srtt : float;
  ps_rttvar : float;
  ps_strikes : int;
  ps_suspect : bool;
  ps_outbox : int;
  ps_backlog : int;
}

(* Every observer's link-estimator state toward every peer it has talked
   to, in deterministic (observer, peer) order — the health scorer's
   input, sampled live (mid-run snapshots see gray failures the end-of-run
   state has already forgotten). *)
let peer_samples t =
  Array.to_list t.snodes
  |> List.concat_map (fun sn ->
         Hashtbl.fold (fun pid p acc -> (pid, p) :: acc) sn.peers []
         |> List.sort (fun (a, _) (b, _) -> compare (a : int) b)
         |> List.map (fun (pid, p) ->
                {
                  ps_observer = sn.sid;
                  ps_peer = pid;
                  ps_srtt = p.srtt;
                  ps_rttvar = p.rttvar;
                  ps_strikes = p.strikes;
                  ps_suspect = p.suspect;
                  ps_outbox = Hashtbl.length p.outbox;
                  ps_backlog = Queue.length p.backlog;
                }))

(* ------------------------------------------------------------------ *)
(* Load-balancer exports                                                *)

type lb_stats = {
  lbs_transfers : int;
  lbs_proposals : int;
  lbs_emergencies : int;
  lbs_skipped : int;
  lbs_reports : int;
}

let lb_stats t =
  {
    lbs_transfers = t.lb_transfers;
    lbs_proposals = t.lb_proposals;
    lbs_emergencies = t.lb_emergencies;
    lbs_skipped = t.lb_skipped;
    lbs_reports = t.lb_reports;
  }

(* Every snode's gossip view, in snode order — the convergence tests'
   input. Crashed snodes report their (reset) view too. *)
let lb_views t =
  Array.to_list t.snodes
  |> List.map (fun sn -> (sn.sid, Balance.Gossip.entries sn.lb_view))

let lb_version t sid = t.snodes.(sid).lb_version

(* ---------------- scalable-routing exports ---------------- *)

let route_level t = t.rlevel
let route_cap t = t.route_cap
let max_hops t = t.max_hops

type route_cache_stats = {
  rcs_hits : int;
  rcs_misses : int;
  rcs_evictions : int;
  rcs_refreshes : int;
  rcs_entries : int;
  rcs_peak : int;
}

let route_cache_stats t =
  {
    rcs_hits = t.rc_hits;
    rcs_misses = t.rc_misses;
    rcs_evictions = t.rc_evictions;
    rcs_refreshes = t.route_refreshes;
    rcs_entries =
      Array.fold_left
        (fun acc sn -> acc + Point_map.cardinal sn.cache)
        0 t.snodes;
    rcs_peak = t.rc_peak;
  }

let route_cache_entries t sid = Point_map.cardinal t.snodes.(sid).cache
let route_hops t = Array.copy t.hop_counts
let route_hops_peak t = t.hops_peak

(* One post-run dump of every counter the engine, network and runtime kept
   on their own. Histograms registered at [create] are already in the
   registry; this adds the scalar side so [Registry.to_table] is the whole
   story. Call it once, after the run — counters would double on a second
   call. *)
let record_metrics t reg =
  let c ?labels name v = Registry.inc (Registry.counter reg ?labels name) v in
  let g name v = Registry.set (Registry.gauge reg name) v in
  c "engine.dispatched" (Engine.dispatched t.engine);
  g "engine.max_pending" (float_of_int (Engine.max_pending t.engine));
  g "engine.virtual_time" (Engine.now t.engine);
  c "net.messages" (Network.messages t.net);
  c "net.bytes" (Network.bytes_sent t.net);
  c "net.local_deliveries" (Network.local_deliveries t.net);
  c "net.batches" (Network.batches t.net);
  c "net.batch.parts" (Network.batched_parts t.net);
  c "net.batch.saved_bytes" (Network.batch_bytes_saved t.net);
  List.iter
    (fun (tag, m, b) ->
      c ~labels:[ ("tag", tag) ] "net.messages" m;
      c ~labels:[ ("tag", tag) ] "net.bytes" b)
    (Network.per_tag t.net);
  let s = stats t in
  c "runtime.drops" s.drops;
  c "runtime.duplicates" s.duplicates;
  c "runtime.timeouts" s.timeouts;
  c "runtime.retransmits" s.retransmits;
  c "runtime.crashes" s.crashes;
  c "runtime.recoveries" s.recoveries;
  c "runtime.retries" t.retried;
  c "runtime.retry.probes" t.probes;
  c "runtime.reliable_messages" t.reliable_msgs;
  c "runtime.admission.shed" t.sheds;
  c "runtime.admission.busy" t.busy_rejections;
  c "runtime.backpressured" t.backpressured;
  g "runtime.outbox.peak" (float_of_int t.outbox_peak);
  c "net.ingress.overflows" (Network.ingress_overflows t.net);
  g "net.ingress.peak" (float_of_int (Network.max_ingress_high_water t.net));
  c "runtime.repl.hint.stored" t.hints_stored;
  c "runtime.repl.hint.flushed" t.hints_flushed;
  c "runtime.repl.repair.read" t.read_repairs;
  c "runtime.repl.sync.cells" t.sync_cells;
  c "runtime.repl.sync.orphans" t.orphans;
  c "runtime.lb.transfers" t.lb_transfers;
  c "runtime.lb.proposals" t.lb_proposals;
  c "runtime.lb.emergencies" t.lb_emergencies;
  c "runtime.lb.skipped" t.lb_skipped;
  c "runtime.lb.reports" t.lb_reports;
  c "runtime.route.cache.hits" t.rc_hits;
  c "runtime.route.cache.misses" t.rc_misses;
  c "runtime.route.cache.evictions" t.rc_evictions;
  c "runtime.route.refreshes" t.route_refreshes;
  g "runtime.route.cache.entries"
    (float_of_int
       (Array.fold_left
          (fun acc sn -> acc + Point_map.cardinal sn.cache)
          0 t.snodes));
  g "runtime.route.cache.peak" (float_of_int t.rc_peak);
  g "runtime.route.hops.peak" (float_of_int t.hops_peak);
  c ~labels:[ ("op", "create") ] "runtime.ops" t.done_creations;
  c ~labels:[ ("op", "remove") ] "runtime.ops" t.done_removals;
  c ~labels:[ ("op", "put") ] "runtime.ops" t.done_puts;
  c ~labels:[ ("op", "get") ] "runtime.ops" t.done_gets;
  c ~labels:[ ("op", "range") ] "runtime.ops" t.done_ranges;
  c "runtime.ae.digests" t.ae_digests;
  c "runtime.ae.roots" t.ae_roots;
  c "runtime.ae.requests" t.ae_requests;
  c "runtime.ae.frames" t.ae_frames;
  c "runtime.ae.leaves" t.ae_leaves;
  c "runtime.ae.keys_sent" t.ae_keys_sent;
  if t.causal then c "runtime.causal.spans" t.next_span;
  (* Per-partition heat series, one labeled row group per partition; the
     registry sorts rows by (name, labels), so the dump is deterministic. *)
  List.iter
    (fun r ->
      let labels =
        [
          ("partition", Format.asprintf "%a" Span.pp r.hr_span);
          ("owner", string_of_int r.hr_owner);
        ]
      in
      let gl name v = Registry.set (Registry.gauge reg ~labels name) v in
      gl "heat.reads" r.hr_reads;
      gl "heat.writes" r.hr_writes;
      gl "heat.repl" r.hr_repl;
      gl "heat.bytes" r.hr_bytes;
      c ~labels "heat.accesses"
        (r.hr_read_count + r.hr_write_count + r.hr_repl_count))
    (heat_rows t)

let create_vnode t ?initiator ~id () =
  let origin =
    Option.value initiator ~default:(id.Vnode_id.snode mod Array.length t.snodes)
  in
  if origin < 0 || origin >= Array.length t.snodes then
    invalid_arg "Runtime.create_vnode: initiator out of range";
  t.pending <- t.pending + 1;
  let sn = t.snodes.(origin) in
  Engine.schedule t.engine ~delay:0. (fun () ->
      let point = Rng.int sn.rng (Space.size t.space) in
      deliver_local t sn
        (Wire.Routed
           { point; hops = 0; retries = 0; origin;
             op = Wire.Op_create { newcomer = id } }))

let fresh_token t cb =
  let token = t.next_token in
  t.next_token <- t.next_token + 1;
  Hashtbl.add t.callbacks token cb;
  note_op_start t token;
  token

(* The coordinator for a quorum operation issued via [via]: that snode if
   it is up, otherwise the first live snode after it on the ring. A dead
   entry point must not demote a replicated operation to the single-copy
   routed path — that write would reach one replica and silently void the
   R+W intersection guarantee. [None] only when the whole cluster is
   down. *)
let live_coordinator t via =
  let n = Array.length t.snodes in
  let rec scan i =
    if i >= n then None
    else
      let sn = t.snodes.((via + i) mod n) in
      if sn.alive then Some sn else scan (i + 1)
  in
  scan 0

let put t ?(via = 0) ?on_done ~key ~value () =
  let token = fresh_token t (Cb_put on_done) in
  t.pending <- t.pending + 1;
  record t
    (Oplog.Invoke
       { token; via; op = Oplog.Op_put { key; value }; at = Engine.now t.engine });
  let point = Hash.string t.space key in
  Engine.schedule t.engine ~delay:0. (fun () ->
      causal_root t ~token ~tid:via
        ~op:(if t.rfactor > 1 then "qput" else "put")
      @@ fun () ->
      match if t.rfactor > 1 then live_coordinator t via else None with
      | Some sn ->
          start_qput t sn ~token ~origin:via ~key ~point
            (stamp_cell t sn ~value)
      | None ->
          (* Replication off, or every snode is down: fall back to the
             single-copy routed path. It parks until a restart; the owner
             then seeds the replicas as it applies the write. *)
          deliver_local t t.snodes.(via)
            (Wire.Routed
               { point; hops = 0; retries = 0; origin = via;
                 op = Wire.Op_put { key; value; token } }))

let get t ?(via = 0) ~key k =
  let token = fresh_token t (Cb_get k) in
  t.pending <- t.pending + 1;
  record t
    (Oplog.Invoke
       { token; via; op = Oplog.Op_get { key }; at = Engine.now t.engine });
  let point = Hash.string t.space key in
  Engine.schedule t.engine ~delay:0. (fun () ->
      causal_root t ~token ~tid:via
        ~op:(if t.rfactor > 1 then "qget" else "get")
      @@ fun () ->
      match if t.rfactor > 1 then live_coordinator t via else None with
      | Some sn -> start_qget t sn ~token ~origin:via ~key ~point
      | None ->
          deliver_local t t.snodes.(via)
            (Wire.Routed
               { point; hops = 0; retries = 0; origin = via;
                 op = Wire.Op_get { key; token } }))

let range_get t ?(via = 0) ~lo ~hi k =
  if lo < 0 || hi > Space.size t.space || lo > hi then
    invalid_arg "Runtime.range_get: bad range bounds";
  let token = fresh_token t (Cb_range k) in
  t.pending <- t.pending + 1;
  Engine.schedule t.engine ~delay:0. (fun () ->
      causal_root t ~token ~tid:via ~op:"range" @@ fun () ->
      match live_coordinator t via with
      | Some sn -> start_range t sn ~token ~lo ~hi
      | None ->
          (* Every snode is down: settle empty rather than park — a range
             read carries no single owner to wake it on restart. *)
          finish_op t ~kind:`Qrange ~token ~tid:via;
          (match Hashtbl.find_opt t.callbacks token with
          | Some (Cb_range k) ->
              Hashtbl.remove t.callbacks token;
              k []
          | _ -> ());
          t.pending <- t.pending - 1)

(* Synchronous test oracle: the authoritative copy at the partition owner,
   read without any messaging. *)
let peek t ~key =
  let point = Hash.string t.space key in
  let rec scan sid =
    if sid >= Array.length t.snodes then None
    else
      let sn = t.snodes.(sid) in
      match Point_map.find_point sn.owned point with
      | _, vid -> (
          match Hashtbl.find_opt (local_exn sn vid).data key with
          | Some s -> Some s.cell.Versioned.value
          | None -> None)
      | exception Not_found -> scan (sid + 1)
  in
  scan 0

(* One explicit anti-entropy round over every live snode. Deterministic
   ([Array.iter] order), and not self-rescheduling so [run] still drains. *)
let anti_entropy t =
  Array.iter (fun sn -> if sn.alive then ae_snode t sn) t.snodes

(* Divergence injection oracle: store a stamped cell straight into one
   snode's tables, bypassing every message — the tool tests and benches
   use to manufacture a known replica divergence for anti-entropy to
   find. *)
let plant t ~snode ?(origin = -1) ~key ~value ~ts () =
  if snode < 0 || snode >= Array.length t.snodes then
    invalid_arg "Runtime.plant: snode out of range";
  let origin = if origin < 0 then snode else origin in
  let sn = t.snodes.(snode) in
  let point = Hash.string t.space key in
  ignore (store_replica sn ~point ~key (Versioned.cell ~value ~ts ~origin ()))

(* Hash-tree consistency audit over every live snode: a fresh snapshot
   tree must pass the structural check, and its frame for every
   replicated partition span must reproduce the flat [span_digest] a
   scan computes — tree frames and legacy digests interchangeable. *)
let merkle_audit t =
  let findings = ref [] in
  let bad fmt = Format.kasprintf (fun s -> findings := s :: !findings) fmt in
  Array.iter
    (fun sn ->
      if sn.alive then begin
        let tree = build_mtree t sn in
        List.iter
          (fun issue -> bad "snode %d: %s" sn.sid issue)
          (Merkle.check tree);
        List.iter
          (fun (span, _) ->
            let f = Merkle.frame_at tree span in
            let count, vhash = span_digest t sn span in
            if f.Merkle.f_count <> count || f.Merkle.f_hash <> vhash then
              bad
                "snode %d span %a: tree frame (%d, %x) <> scan digest (%d, %x)"
                sn.sid Span.pp span f.Merkle.f_count f.Merkle.f_hash count
                vhash)
          (Point_map.to_list sn.rmap)
      end)
    t.snodes;
  List.rev !findings

(* Per-span replica agreement: every replica of every partition must
   hold an identical cell set. Empty iff anti-entropy has converged. *)
let replica_divergence t =
  let findings = ref [] in
  let bad fmt = Format.kasprintf (fun s -> findings := s :: !findings) fmt in
  let seen = Hashtbl.create 64 in
  Array.iter
    (fun sn ->
      if sn.alive then
        List.iter
          (fun (span, set) ->
            if not (Hashtbl.mem seen span) then begin
              Hashtbl.add seen span ();
              let live = List.filter (fun sid -> t.snodes.(sid).alive) set in
              match live with
              | [] | [ _ ] -> ()
              | first :: rest ->
                  let ref_digest = span_digest t t.snodes.(first) span in
                  List.iter
                    (fun sid ->
                      let d = span_digest t t.snodes.(sid) span in
                      if d <> ref_digest then
                        bad "span %a: snode %d digest %x/%d <> snode %d %x/%d"
                          Span.pp span sid (snd d) (fst d) first
                          (snd ref_digest) (fst ref_digest))
                    rest
            end)
          (Point_map.to_list sn.rmap))
    t.snodes;
  List.rev !findings

type ae_stats = {
  ae_digests : int;
  ae_roots : int;
  ae_requests : int;
  ae_frames : int;
  ae_leaves : int;
  ae_keys_sent : int;
}

let ae_stats (t : t) =
  {
    ae_digests = t.ae_digests;
    ae_roots = t.ae_roots;
    ae_requests = t.ae_requests;
    ae_frames = t.ae_frames;
    ae_leaves = t.ae_leaves;
    ae_keys_sent = t.ae_keys_sent;
  }

let remove_vnode t ?(via = 0) ~id k =
  let host = id.Vnode_id.snode in
  if host < 0 || host >= Array.length t.snodes then
    invalid_arg "Runtime.remove_vnode: vnode id names no snode";
  if via < 0 || via >= Array.length t.snodes then
    invalid_arg "Runtime.remove_vnode: via out of range";
  let token = fresh_token t (Cb_remove k) in
  t.pending <- t.pending + 1;
  Engine.schedule t.engine ~delay:0. (fun () ->
      send t ~src:via ~dst:host
        (Wire.Remove_request { leaving = id; origin = via; token }))

let run ?until t = Engine.run ?until t.engine
let pending_operations t = t.pending
let completed_creations t = t.done_creations
let completed_removals t = t.done_removals
let completed_puts t = t.done_puts
let completed_gets t = t.done_gets
let completed_ranges t = t.done_ranges
let retries t = t.retried

(* ------------------------------------------------------------------ *)
(* Global verification                                                  *)

let all_locals t =
  Array.to_list t.snodes
  |> List.concat_map (fun sn -> Vtbl.fold (fun _ v acc -> v :: acc) sn.locals [])

let sigma_qv t =
  let locals = all_locals t in
  let quotas =
    List.map
      (fun v ->
        Dht_stats.Descriptive.sum
          (Array.of_list (List.map (Span.quota t.space) v.spans)))
      locals
    |> Array.of_list
  in
  Metrics.sigma_percent quotas

let audit t =
  let issues = ref [] in
  let fail fmt = Format.kasprintf (fun s -> issues := s :: !issues) fmt in
  let locals = all_locals t in
  (* G1': global coverage of the union of all local partitions. *)
  (match Coverage.check t.space (List.concat_map (fun v -> v.spans) locals) with
  | Ok () -> ()
  | Error e -> fail "coverage: %a" Coverage.pp_error e);
  (* Gather the LPDR copies per group, from the snodes hosting members. *)
  let views = Gtbl.create 16 in
  Array.iter
    (fun sn ->
      Gtbl.iter
        (fun gid lp ->
          Gtbl.replace views gid ((sn.sid, lp) :: Option.value ~default:[] (Gtbl.find_opt views gid)))
        sn.lpdrs)
    t.snodes;
  let group_count = Gtbl.length views in
  let vmax = t.vmax in
  Gtbl.iter
    (fun gid copies ->
      (match copies with
      | [] -> ()
      | (_, ref_lp) :: rest ->
          List.iter
            (fun (sid, lp) ->
              if lp.level <> ref_lp.level then
                fail "group %a: snode %d sees level %d, others %d" Group_id.pp
                  gid sid lp.level ref_lp.level;
              if lp.epoch <> ref_lp.epoch then
                fail "group %a: snode %d at epoch %d, others %d" Group_id.pp
                  gid sid lp.epoch ref_lp.epoch;
              if lp.counts <> ref_lp.counts then
                fail "group %a: snode %d has a divergent LPDR copy" Group_id.pp
                  gid sid)
            rest;
          (* L2 (with the sole-group exception). *)
          let vg = List.length ref_lp.counts in
          if group_count = 1 then begin
            if vg < 1 || vg > vmax then
              fail "L2: sole group %a has Vg=%d" Group_id.pp gid vg
          end
          else if vg < vmax / 2 || vg > vmax then
            fail "L2: group %a has Vg=%d outside [%d, %d]" Group_id.pp gid vg
              (vmax / 2) vmax;
          (* G2'/G4' plus LPDR-vs-reality agreement. *)
          let total = List.fold_left (fun acc (_, c) -> acc + c) 0 ref_lp.counts in
          if not (Params.is_power_of_two total) then
            fail "G2: group %a has %d partitions" Group_id.pp gid total;
          List.iter
            (fun (id, c) ->
              if c < t.pmin || c > 2 * t.pmin then
                fail "G4: group %a vnode %a count %d" Group_id.pp gid
                  Vnode_id.pp id c;
              let owner_sn = t.snodes.(id.Vnode_id.snode) in
              match Vtbl.find_opt owner_sn.locals id with
              | None -> fail "L1: %a in LPDR of %a but not hosted" Vnode_id.pp id Group_id.pp gid
              | Some v ->
                  if List.length v.spans <> c then
                    fail "LPDR: %a registered with %d partitions, owns %d"
                      Vnode_id.pp id c (List.length v.spans);
                  if not (Group_id.equal v.group gid) then
                    fail "L1: %a group field %a but listed in %a" Vnode_id.pp
                      id Group_id.pp v.group Group_id.pp gid;
                  List.iter
                    (fun s ->
                      if Span.level s <> ref_lp.level then
                        fail "G3: %a has %a at level <> %d" Vnode_id.pp id
                          Span.pp s ref_lp.level)
                    v.spans)
            ref_lp.counts;
          (* Removal-tolerant G5: power-of-two population, equal counts. *)
          if Params.is_power_of_two vg then begin
            match ref_lp.counts with
            | (_, c0) :: _ ->
                List.iter
                  (fun (_, c) ->
                    if c <> c0 then
                      fail "G5: group %a uneven at Vg=%d" Group_id.pp gid vg)
                  ref_lp.counts
            | [] -> ()
          end))
    views;
  (* Every routing cache must still cover the whole range, and — when
     bounded routing is armed — respect the entry cap. *)
  Array.iter
    (fun sn ->
      (match Coverage.check t.space (Point_map.spans sn.cache) with
      | Ok () -> ()
      | Error e -> fail "snode %d cache: %a" sn.sid Coverage.pp_error e);
      if t.route_cap > 0 && Point_map.cardinal sn.cache > t.route_cap then
        fail "snode %d cache: %d entries exceed the cap %d" sn.sid
          (Point_map.cardinal sn.cache) t.route_cap)
    t.snodes;
  (* Data placement: every key lives with the owner of its hash point. *)
  Array.iter
    (fun sn ->
      Vtbl.iter
        (fun vid v ->
          Hashtbl.iter
            (fun key _ ->
              let point = Hash.string t.space key in
              if not (List.exists (fun s -> Span.contains t.space s point) v.spans)
              then
                fail "data: key %S stored at %a which does not own it" key
                  Vnode_id.pp vid)
            v.data)
        sn.locals)
    t.snodes;
  match !issues with [] -> Ok () | l -> Error (List.rev l)

(* ------------------------------------------------------------------ *)
(* Verification hooks                                                   *)

let space t = t.space
let pmin t = t.pmin
let vmax t = t.vmax
let set_on_commit t f = t.on_commit <- f
let set_recorder t f = t.recorder <- f

(* Force every live snode's coalescing buffers onto the wire now, in
   (snode, destination) order — deterministic, so a schedule explorer can
   inject flush points without perturbing the numbering of later decision
   sites between runs. *)
let flush_lingering t =
  Array.iter
    (fun sn ->
      if sn.alive then
        Hashtbl.fold (fun dst ob acc -> (dst, ob) :: acc) sn.obufs []
        |> List.sort (fun (a, _) (b, _) -> Int.compare a b)
        |> List.iter (fun (_, ob) ->
               (match ob.ob_timer with
               | Some tm -> Engine.disarm tm
               | None -> ());
               flush_obuf t sn ob))
    t.snodes

(* A [View] is the cluster's logical state as pure, canonically-ordered
   data: what the paper's invariants and the schedule-transparency tests
   quantify over. Version stamps are deliberately excluded — they embed
   virtual timestamps, which shift under batching even when the logical
   state is identical. *)
module View = struct
  type lpdr_copy = {
    group : Group_id.t;
    level : int;
    epoch : int;
    counts : (Vnode_id.t * int) list;
  }

  type vnode_view = {
    vid : Vnode_id.t;
    group : Group_id.t;
    spans : Span.t list;
    data : (string * string) list;
  }

  type snode_view = {
    sid : int;
    up : bool;
    vnodes : vnode_view list;
    lpdrs : lpdr_copy list;
    cache : (Span.t * Vnode_id.t) list;
    rmap : (Span.t * int list) list;
    replicas : (string * string) list;
    hints : int;
  }

  type t = { at : float; snodes : snode_view list }

  (* Structural equality of the logical state; the clock is ignored. *)
  let equal a b = a.snodes = b.snodes

  let pp ppf v =
    List.iter
      (fun sn ->
        Format.fprintf ppf "snode %d%s: %d vnodes, %d keys, %d replicas, %d hints@."
          sn.sid
          (if sn.up then "" else " (down)")
          (List.length sn.vnodes)
          (List.fold_left (fun acc vn -> acc + List.length vn.data) 0 sn.vnodes)
          (List.length sn.replicas) sn.hints)
      v.snodes
end

let view t =
  let kv_sorted tbl =
    Hashtbl.fold (fun k s acc -> (k, s.cell.Versioned.value) :: acc) tbl []
    |> List.sort compare
  in
  let vnode_of v =
    {
      View.vid = v.vid;
      group = v.group;
      spans = List.sort Span.compare v.spans;
      data = kv_sorted v.data;
    }
  in
  let snode_of sn =
    {
      View.sid = sn.sid;
      up = sn.alive;
      vnodes =
        Vtbl.fold (fun _ v acc -> vnode_of v :: acc) sn.locals []
        |> List.sort (fun a b -> Vnode_id.compare a.View.vid b.View.vid);
      lpdrs =
        Gtbl.fold
          (fun gid lp acc ->
            {
              View.group = gid;
              level = lp.level;
              epoch = lp.epoch;
              counts =
                List.sort (fun (a, _) (b, _) -> Vnode_id.compare a b) lp.counts;
            }
            :: acc)
          sn.lpdrs []
        |> List.sort (fun (a : View.lpdr_copy) (b : View.lpdr_copy) ->
               Group_id.compare a.group b.group);
      cache = Point_map.to_list sn.cache;
      rmap = Point_map.to_list sn.rmap;
      replicas = kv_sorted sn.replicas;
      hints = Hashtbl.length sn.hints;
    }
  in
  {
    View.at = Engine.now t.engine;
    snodes = Array.to_list t.snodes |> List.map snode_of;
  }
