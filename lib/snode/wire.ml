open Dht_core
open Dht_hashspace

type routed_op =
  | Op_create of { newcomer : Vnode_id.t }
  | Op_put of { key : string; value : string; token : int }
  | Op_get of { key : string; token : int }

type group_split = {
  parent : Group_id.t;
  left : Group_id.t;
  left_members : (Vnode_id.t * int) list;
  right : Group_id.t;
  right_members : (Vnode_id.t * int) list;
}

type prepare = {
  event : int;
  split : group_split option;
  target : Group_id.t;
  level_before : int;
  epoch_before : int;
  plan : Plan.t;
  newcomer : Vnode_id.t;
  donor_batches : int;
}

type msg =
  | Routed of { point : int; hops : int; retries : int; origin : int; op : routed_op }
  | Create_at_group of {
      group : Group_id.t;
      point : int;
      newcomer : Vnode_id.t;
      origin : int;
    }
  | Prepare of prepare
  | Prepare_ack of { event : int; moved : (Span.t * Vnode_id.t) list }
  | Transfer of {
      event : int;
      to_vnode : Vnode_id.t;
      spans : Span.t list;
      data : (string * string) list;
    }
  | All_received of { event : int }
  | Commit of { event : int; moved : (Span.t * Vnode_id.t) list }
  | Create_done of { newcomer : Vnode_id.t }
  | Remove_request of { leaving : Vnode_id.t; origin : int; token : int }
  | Remove_at_group of {
      group : Group_id.t;
      leaving : Vnode_id.t;
      origin : int;
      token : int;
    }
  | Remove_prepare of {
      event : int;
      group : Group_id.t;
      leaving : Vnode_id.t;
      epoch_before : int;
      moves : Plan.move list;
      remaining : (Vnode_id.t * int) list;
    }
  | Remove_done of { token : int; ok : bool }
  | Put_ack of { token : int }
  | Get_reply of { token : int; value : string option }
  | Req of { seq : int; payload : msg }
  | Ack of { seq : int }
  | Lpdr_pull of { group : Group_id.t }
  | Lpdr_push of {
      group : Group_id.t;
      view : (int * int * (Vnode_id.t * int) list) option;
    }

let envelope = 64
let per_entry = 16

let rec size_bytes = function
  | Routed { op; _ } -> (
      match op with
      | Op_create _ -> envelope + per_entry
      | Op_put { key; value; _ } -> envelope + String.length key + String.length value
      | Op_get { key; _ } -> envelope + String.length key)
  | Create_at_group _ -> envelope + (2 * per_entry)
  | Prepare { split; plan; _ } ->
      let split_size =
        match split with
        | None -> 0
        | Some s ->
            per_entry
            * (2 + List.length s.left_members + List.length s.right_members)
      in
      envelope + split_size + (per_entry * List.length plan.Plan.final_counts)
  | Prepare_ack { moved; _ } -> envelope + (2 * per_entry * List.length moved)
  | Transfer { spans; data; _ } ->
      envelope
      + (per_entry * List.length spans)
      + List.fold_left
          (fun acc (k, v) -> acc + String.length k + String.length v)
          0 data
  | All_received _ -> envelope
  | Commit { moved; _ } -> envelope + (2 * per_entry * List.length moved)
  | Create_done _ -> envelope + per_entry
  | Remove_request _ -> envelope + per_entry
  | Remove_at_group _ -> envelope + (2 * per_entry)
  | Remove_prepare { moves; remaining; _ } ->
      envelope
      + (3 * per_entry * List.length moves)
      + (per_entry * List.length remaining)
  | Remove_done _ -> envelope
  | Put_ack _ -> envelope
  | Get_reply { value; _ } ->
      envelope + Option.fold ~none:0 ~some:String.length value
  | Req { payload; _ } -> per_entry + size_bytes payload
  | Ack _ -> envelope
  | Lpdr_pull _ -> envelope + per_entry
  | Lpdr_push { view; _ } ->
      envelope + per_entry
      + (match view with
        | None -> 0
        | Some (_, _, counts) -> per_entry * (2 + List.length counts))

(* [describe] is the telemetry tag of every remote send, so it must not
   allocate: the single-level [Req] framing (the only one real traffic
   produces) resolves to static strings through [req_tag]. *)
let rec describe = function
  | Routed { op = Op_create _; _ } -> "routed:create"
  | Routed { op = Op_put _; _ } -> "routed:put"
  | Routed { op = Op_get _; _ } -> "routed:get"
  | Create_at_group _ -> "create-at-group"
  | Prepare _ -> "prepare"
  | Prepare_ack _ -> "prepare-ack"
  | Transfer _ -> "transfer"
  | All_received _ -> "all-received"
  | Commit _ -> "commit"
  | Create_done _ -> "create-done"
  | Remove_request _ -> "remove-request"
  | Remove_at_group _ -> "remove-at-group"
  | Remove_prepare _ -> "remove-prepare"
  | Remove_done _ -> "remove-done"
  | Put_ack _ -> "put-ack"
  | Get_reply _ -> "get-reply"
  | Req { payload; _ } -> req_tag payload
  | Ack _ -> "ack"
  | Lpdr_pull _ -> "lpdr-pull"
  | Lpdr_push _ -> "lpdr-push"

and req_tag = function
  | Routed { op = Op_create _; _ } -> "req:routed:create"
  | Routed { op = Op_put _; _ } -> "req:routed:put"
  | Routed { op = Op_get _; _ } -> "req:routed:get"
  | Create_at_group _ -> "req:create-at-group"
  | Prepare _ -> "req:prepare"
  | Prepare_ack _ -> "req:prepare-ack"
  | Transfer _ -> "req:transfer"
  | All_received _ -> "req:all-received"
  | Commit _ -> "req:commit"
  | Create_done _ -> "req:create-done"
  | Remove_request _ -> "req:remove-request"
  | Remove_at_group _ -> "req:remove-at-group"
  | Remove_prepare _ -> "req:remove-prepare"
  | Remove_done _ -> "req:remove-done"
  | Put_ack _ -> "req:put-ack"
  | Get_reply _ -> "req:get-reply"
  | Lpdr_pull _ -> "req:lpdr-pull"
  | Lpdr_push _ -> "req:lpdr-push"
  | Ack _ -> "req:ack"
  | Req _ as nested -> "req:" ^ describe nested
