open Dht_core
open Dht_hashspace
module Versioned = Dht_kv.Versioned

type routed_op =
  | Op_create of { newcomer : Vnode_id.t }
  | Op_put of { key : string; value : string; token : int }
  | Op_get of { key : string; token : int }
  | Op_sync of { key : string; cell : Versioned.cell }

type group_split = {
  parent : Group_id.t;
  left : Group_id.t;
  left_members : (Vnode_id.t * int) list;
  right : Group_id.t;
  right_members : (Vnode_id.t * int) list;
}

type prepare = {
  event : int;
  split : group_split option;
  target : Group_id.t;
  level_before : int;
  epoch_before : int;
  plan : Plan.t;
  newcomer : Vnode_id.t;
  donor_batches : int;
}

type placement = (Span.t * Vnode_id.t * int list) list

type msg =
  | Routed of { point : int; hops : int; retries : int; origin : int; op : routed_op }
  | Create_at_group of {
      group : Group_id.t;
      point : int;
      newcomer : Vnode_id.t;
      origin : int;
    }
  | Prepare of prepare
  | Prepare_ack of { event : int; moved : placement }
  | Transfer of {
      event : int;
      to_vnode : Vnode_id.t;
      spans : Span.t list;
      data : (string * Versioned.cell) list;
    }
  | All_received of { event : int }
  | Commit of { event : int; moved : placement }
  | Create_done of { newcomer : Vnode_id.t }
  | Remove_request of { leaving : Vnode_id.t; origin : int; token : int }
  | Remove_at_group of {
      group : Group_id.t;
      leaving : Vnode_id.t;
      origin : int;
      token : int;
    }
  | Remove_prepare of {
      event : int;
      group : Group_id.t;
      leaving : Vnode_id.t;
      epoch_before : int;
      moves : Plan.move list;
      remaining : (Vnode_id.t * int) list;
    }
  | Remove_done of { token : int; ok : bool }
  | Put_ack of { token : int; hint : (Span.t * Vnode_id.t) option }
  | Get_reply of {
      token : int;
      value : string option;
      hint : (Span.t * Vnode_id.t) option;
    }
  | Busy of { token : int }
  | Repl_put of { token : int; key : string; point : int; cell : Versioned.cell }
  | Repl_put_ack of { token : int }
  | Repl_get of { token : int; key : string; point : int }
  | Repl_get_reply of { token : int; cell : Versioned.cell option }
  | Repl_hinted of {
      token : int;
      target : int;
      key : string;
      point : int;
      cell : Versioned.cell;
    }
  | Hint_flush of { key : string; point : int; cell : Versioned.cell }
  | Hint_ack of { key : string }
  | Repl_repair of { key : string; point : int; cell : Versioned.cell }
  | Repl_digest of { span : Span.t; count : int; vhash : int }
  | Repl_sync_request of { span : Span.t }
  | Repl_sync of {
      span : Span.t;
      cells : (string * Versioned.cell) list;
      reply : bool;
    }
  | Ae_request
  | Mt_root of { round : int; span : Span.t; count : int; vhash : int }
      (* tree-descent opener: the pusher's root frame for one partition
         span, plus its AE round so the receiver knows when to take a
         fresh snapshot of its own store *)
  | Mt_request of { spans : Span.t list }
      (* "descend here": subtree spans whose frames disagreed *)
  | Mt_frames of { frames : (Span.t * int * int * bool) list }
      (* (span, count, hash, leaf?) children frames for requested spans *)
  | Mt_leaf of { span : Span.t; keys : (string * int) list }
      (* divergent leaf: the sender's per-key cell digests in the span *)
  | Mt_want of { span : Span.t; keys : string list }
      (* "ship me your cells for these keys" — closes the exchange *)
  | Range_get of { token : int; lo : int; hi : int }
  | Range_reply of {
      token : int;
      lo : int;  (* clipped sub-range start: identifies the partition leg *)
      cells : (string * Versioned.cell) list;
    }
  | Traced of { trace : int; span : int; hop : int; payload : msg }
  | Batch of msg list
  | Req of { seq : int; payload : msg }
  | Ack of { seq : int; floor : int }
  | Lpdr_pull of { group : Group_id.t }
  | Lpdr_push of {
      group : Group_id.t;
      view : (int * int * (Vnode_id.t * int) list) option;
    }
  | Lb_report of {
      origin : int;
      pull : bool;
      entries : Dht_balance.Summary.t list;
      owns : (Span.t * Vnode_id.t) list;
          (* piggybacked routing-table refresh: exact owned placements for
             the receiving steward's prefix regions; [] on pure load
             gossip, so the balancer's bytes are untouched *)
    }
  | Lb_proposal of { to_snode : int; emergency : bool }
  | Lb_transfer of {
      group : Group_id.t;
      hot : Span.t;
      from_vnode : Vnode_id.t;
      to_snode : int;
      origin : int;
    }
  | Lb_swap of {
      event : int;
      hot : Span.t;
      from_vnode : Vnode_id.t;
      to_vnode : Vnode_id.t;
    }

let envelope = 64
let per_entry = 16

let summary_size = 2 * per_entry
(** One gossiped load summary on the wire: origin, version stamp, heat,
    queue depth, partition count and produce time — six numeric fields,
    charged as two id entries. *)

let trace_context = 20
(** Serialized span context riding a {!Traced} wrapper: a 64-bit trace id,
    a 64-bit span id and a 32-bit hop count. Charged on top of the payload
    so tracing overhead is visible in the byte accounting. *)

let placement_size moved =
  List.fold_left
    (fun acc (_, _, replicas) ->
      acc + (per_entry * (2 + List.length replicas)))
    0 moved

(* A corrected-owner routing hint riding a data reply: one (span, vnode)
   placement entry, charged only when present so the unhinted reply costs
   exactly what it always did. *)
let hint_size = function None -> 0 | Some _ -> 2 * per_entry

let cells_size cells =
  List.fold_left
    (fun acc (k, c) -> acc + per_entry + String.length k + Versioned.size_bytes c)
    0 cells

let rec size_bytes = function
  | Routed { op; _ } -> (
      match op with
      | Op_create _ -> envelope + per_entry
      | Op_put { key; value; _ } -> envelope + String.length key + String.length value
      | Op_get { key; _ } -> envelope + String.length key
      | Op_sync { key; cell } ->
          envelope + String.length key + Versioned.size_bytes cell)
  | Create_at_group _ -> envelope + (2 * per_entry)
  | Prepare { split; plan; _ } ->
      let split_size =
        match split with
        | None -> 0
        | Some s ->
            per_entry
            * (2 + List.length s.left_members + List.length s.right_members)
      in
      envelope + split_size + (per_entry * List.length plan.Plan.final_counts)
  | Prepare_ack { moved; _ } -> envelope + placement_size moved
  | Transfer { spans; data; _ } ->
      envelope + (per_entry * List.length spans) + cells_size data
  | All_received _ -> envelope
  | Commit { moved; _ } -> envelope + placement_size moved
  | Create_done _ -> envelope + per_entry
  | Remove_request _ -> envelope + per_entry
  | Remove_at_group _ -> envelope + (2 * per_entry)
  | Remove_prepare { moves; remaining; _ } ->
      envelope
      + (3 * per_entry * List.length moves)
      + (per_entry * List.length remaining)
  | Remove_done _ -> envelope
  | Put_ack { hint; _ } -> envelope + hint_size hint
  | Get_reply { value; hint; _ } ->
      envelope
      + Option.fold ~none:0 ~some:String.length value
      + hint_size hint
  | Busy _ -> envelope
  | Repl_put { key; cell; _ } ->
      envelope + String.length key + Versioned.size_bytes cell
  | Repl_put_ack _ -> envelope
  | Repl_get { key; _ } -> envelope + String.length key
  | Repl_get_reply { cell; _ } ->
      envelope + Option.fold ~none:0 ~some:Versioned.size_bytes cell
  | Repl_hinted { key; cell; _ } ->
      envelope + per_entry + String.length key + Versioned.size_bytes cell
  | Hint_flush { key; cell; _ } ->
      envelope + String.length key + Versioned.size_bytes cell
  | Hint_ack { key } -> envelope + String.length key
  | Repl_repair { key; cell; _ } ->
      envelope + String.length key + Versioned.size_bytes cell
  | Repl_digest _ -> envelope + (2 * per_entry)
  | Repl_sync_request _ -> envelope + per_entry
  | Repl_sync { cells; _ } -> envelope + per_entry + cells_size cells
  | Ae_request -> envelope
  | Mt_root _ -> envelope + (3 * per_entry)
  | Mt_request { spans } -> envelope + (per_entry * List.length spans)
  | Mt_frames { frames } -> envelope + (2 * per_entry * List.length frames)
  | Mt_leaf { keys; _ } ->
      envelope + per_entry
      + List.fold_left
          (fun acc (k, _) -> acc + per_entry + String.length k)
          0 keys
  | Mt_want { keys; _ } ->
      envelope + per_entry
      + List.fold_left (fun acc k -> acc + per_entry + String.length k) 0 keys
  | Range_get _ -> envelope + (2 * per_entry)
  | Range_reply { cells; _ } -> envelope + (2 * per_entry) + cells_size cells
  | Traced { payload; _ } -> trace_context + size_bytes payload
  | Batch parts ->
      (* One shared envelope; each part pays a [per_entry] frame header and
         its body — its own envelope is amortized away. Coalescing [n]
         messages therefore saves [(n - 1) * envelope - n * per_entry]
         bytes versus sending them separately. *)
      List.fold_left
        (fun acc p -> acc + per_entry + (size_bytes p - envelope))
        envelope parts
  | Req { payload; _ } -> per_entry + size_bytes payload
  | Ack _ -> envelope
  | Lpdr_pull _ -> envelope + per_entry
  | Lpdr_push { view; _ } ->
      envelope + per_entry
      + (match view with
        | None -> 0
        | Some (_, _, counts) -> per_entry * (2 + List.length counts))
  | Lb_report { entries; owns; _ } ->
      envelope + per_entry
      + (summary_size * List.length entries)
      + (2 * per_entry * List.length owns)
  | Lb_proposal _ -> envelope + per_entry
  | Lb_transfer _ -> envelope + (3 * per_entry)
  | Lb_swap _ -> envelope + (3 * per_entry)

(* [describe] is the telemetry tag of every remote send, so it must not
   allocate: the single-level [Req] framing (the only one real traffic
   produces) resolves to static strings through [req_tag]. *)
let rec describe = function
  | Routed { op = Op_create _; _ } -> "routed:create"
  | Routed { op = Op_put _; _ } -> "routed:put"
  | Routed { op = Op_get _; _ } -> "routed:get"
  | Routed { op = Op_sync _; _ } -> "routed:sync"
  | Create_at_group _ -> "create-at-group"
  | Prepare _ -> "prepare"
  | Prepare_ack _ -> "prepare-ack"
  | Transfer _ -> "transfer"
  | All_received _ -> "all-received"
  | Commit _ -> "commit"
  | Create_done _ -> "create-done"
  | Remove_request _ -> "remove-request"
  | Remove_at_group _ -> "remove-at-group"
  | Remove_prepare _ -> "remove-prepare"
  | Remove_done _ -> "remove-done"
  | Put_ack _ -> "put-ack"
  | Get_reply _ -> "get-reply"
  | Busy _ -> "busy"
  | Repl_put _ -> "repl:put"
  | Repl_put_ack _ -> "repl:put-ack"
  | Repl_get _ -> "repl:get"
  | Repl_get_reply _ -> "repl:get-reply"
  | Repl_hinted _ -> "repl:hinted"
  | Hint_flush _ -> "repl:hint-flush"
  | Hint_ack _ -> "repl:hint-ack"
  | Repl_repair _ -> "repl:repair"
  | Repl_digest _ -> "repl:digest"
  | Repl_sync_request _ -> "repl:sync-request"
  | Repl_sync _ -> "repl:sync"
  | Ae_request -> "ae-request"
  | Mt_root _ -> "mt:root"
  | Mt_request _ -> "mt:request"
  | Mt_frames _ -> "mt:frames"
  | Mt_leaf _ -> "mt:leaf"
  | Mt_want _ -> "mt:want"
  | Range_get _ -> "range:get"
  | Range_reply _ -> "range:reply"
  | Traced { payload; _ } -> describe payload
  | Batch _ -> "batch"
  | Req { payload; _ } -> req_tag payload
  | Ack _ -> "ack"
  | Lpdr_pull _ -> "lpdr-pull"
  | Lpdr_push _ -> "lpdr-push"
  | Lb_report _ -> "lb:report"
  | Lb_proposal _ -> "lb:proposal"
  | Lb_transfer _ -> "lb:transfer"
  | Lb_swap _ -> "lb:swap"

and req_tag = function
  | Routed { op = Op_create _; _ } -> "req:routed:create"
  | Routed { op = Op_put _; _ } -> "req:routed:put"
  | Routed { op = Op_get _; _ } -> "req:routed:get"
  | Routed { op = Op_sync _; _ } -> "req:routed:sync"
  | Create_at_group _ -> "req:create-at-group"
  | Prepare _ -> "req:prepare"
  | Prepare_ack _ -> "req:prepare-ack"
  | Transfer _ -> "req:transfer"
  | All_received _ -> "req:all-received"
  | Commit _ -> "req:commit"
  | Create_done _ -> "req:create-done"
  | Remove_request _ -> "req:remove-request"
  | Remove_at_group _ -> "req:remove-at-group"
  | Remove_prepare _ -> "req:remove-prepare"
  | Remove_done _ -> "req:remove-done"
  | Put_ack _ -> "req:put-ack"
  | Get_reply _ -> "req:get-reply"
  | Busy _ -> "req:busy"
  | Repl_put _ -> "req:repl:put"
  | Repl_put_ack _ -> "req:repl:put-ack"
  | Repl_get _ -> "req:repl:get"
  | Repl_get_reply _ -> "req:repl:get-reply"
  | Repl_hinted _ -> "req:repl:hinted"
  | Hint_flush _ -> "req:repl:hint-flush"
  | Hint_ack _ -> "req:repl:hint-ack"
  | Repl_repair _ -> "req:repl:repair"
  | Repl_digest _ -> "req:repl:digest"
  | Repl_sync_request _ -> "req:repl:sync-request"
  | Repl_sync _ -> "req:repl:sync"
  | Ae_request -> "req:ae-request"
  | Mt_root _ -> "req:mt:root"
  | Mt_request _ -> "req:mt:request"
  | Mt_frames _ -> "req:mt:frames"
  | Mt_leaf _ -> "req:mt:leaf"
  | Mt_want _ -> "req:mt:want"
  | Range_get _ -> "req:range:get"
  | Range_reply _ -> "req:range:reply"
  | Traced { payload; _ } -> req_tag payload
  | Batch _ -> "req:batch"
  | Lpdr_pull _ -> "req:lpdr-pull"
  | Lpdr_push _ -> "req:lpdr-push"
  | Lb_report _ -> "req:lb:report"
  | Lb_proposal _ -> "req:lb:proposal"
  | Lb_transfer _ -> "req:lb:transfer"
  | Lb_swap _ -> "req:lb:swap"
  | Ack _ -> "req:ack"
  | Req _ as nested -> "req:" ^ describe nested
