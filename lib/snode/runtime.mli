(** Distributed snode runtime: the paper's architecture (figures 1 and 2)
    as a functional message-level simulation.

    Unlike {!Dht_core.Local_dht} — the centralized oracle, where one data
    structure holds the whole DHT — every snode here owns only its slice of
    the state, exactly as in the deployed system the paper describes:

    - the partitions (and data) of the vnodes it hosts;
    - an LPDR {e copy} for each group one of its vnodes belongs to (§3.2);
    - a routing cache from partitions to vnodes, which {e may go stale} —
      requests are forwarded through possibly-stale caches and retried with
      backoff until placement information converges.

    Vnode creation is the §3.6/§3.7 protocol: the creation request is
    routed to the victim vnode's snode, handed to the victim group's
    manager (the snode hosting the group's smallest member — its request
    queue is the group lock), which plans the balancing from its LPDR copy
    alone ({!Plan}), runs a prepare/commit round among the group's snodes,
    and lets donors stream partitions (with their keys) straight to the
    newcomer's snode. Creations on different groups proceed concurrently.

    {!audit} gathers the distributed state and verifies global coverage,
    LPDR-copy convergence, the model invariants and data placement. *)

open Dht_core
module Engine = Dht_event_sim.Engine
module Network = Dht_event_sim.Network
module Fault = Dht_event_sim.Fault

type t

type approach =
  | Local of { vmin : int }
      (** the paper's contribution: groups bounded by [Vmin <= Vg <= 2·Vmin],
          balancing events touch one group *)
  | Global
      (** the base model (§2): a single balancing domain — the group never
          splits, the "LPDR" is the GPDR, every creation synchronizes every
          vnode-hosting snode and creations serialize through one queue *)

val create :
  ?space:Dht_hashspace.Space.t ->
  ?link:Network.link ->
  ?pmin:int ->
  ?approach:approach ->
  ?faults:Fault.t ->
  ?max_retries:int ->
  ?backoff:float ->
  ?rto:float ->
  ?rto_cap:float ->
  ?retry_budget:int ->
  ?adaptive_rto:bool ->
  ?max_inflight:int ->
  ?admission_deadline:float ->
  ?ingress_limit:int ->
  ?poison_after:int ->
  ?event_timeout:float ->
  ?rfactor:int ->
  ?read_quorum:int ->
  ?write_quorum:int ->
  ?handoff_timeout:float ->
  ?linger:float ->
  ?mt_threshold:int ->
  ?mt_leaf:int ->
  ?metrics:Dht_telemetry.Registry.t ->
  ?trace:Dht_telemetry.Trace.t ->
  ?causal:bool ->
  ?heat:bool ->
  ?heat_tau:float ->
  ?balance:Dht_balance.Policy.t ->
  ?route_cap:int ->
  ?max_hops:int ->
  snodes:int ->
  seed:int ->
  unit ->
  t
(** [create ~snodes ~seed ()] builds a cluster of [snodes] snodes. Snode 0
    bootstraps the DHT with vnode [0.0] holding the whole hash range; every
    routing cache starts seeded with that placement. Defaults: [pmin = 32],
    [approach = Local { vmin = 16 }], gigabit {!Network.link}.

    [max_retries] (default 50) bounds the routing back-off retries of one
    operation and [backoff] (default 1 ms) spaces them. The bound is a
    livelock canary and only enforced on a reliable network — under a
    fault plan an operation legitimately backs off for as long as a
    crashed snode stays down, so retries are unbounded (still counted by
    {!retries}).

    Passing [faults] arms the robustness layer: every remote message is
    carried by a reliable request layer (sequence numbers, acknowledgement,
    deduplication, retransmission with exponential backoff between [rto]
    (default 1 ms) and [rto_cap] (default 50 ms)); a route suffering
    [poison_after] (default 5) consecutive timeouts is poisoned — new
    traffic toward it is queued and probed at the capped cadence until the
    peer answers. Balancing events carry a liveness watchdog re-armed every
    [event_timeout] (default 1 s). The plan's crash schedule is installed on
    the engine ({!Fault.crash_plan}); every crash must name a restart time
    or retransmission toward the dead snode never ends. Without [faults]
    the runtime behaves {e exactly} as before: same messages, same bytes,
    same clock, same random draws.

    The graceful-degradation knobs all default to off, leaving the legacy
    behaviour bit-for-bit intact. [retry_budget] (default 0: unlimited)
    caps the fast retransmissions of any one reliable message: past the
    budget further attempts still go out — a silently-restarted peer must
    eventually hear the message — but only at the [rto_cap] cadence, and
    they count as {e probes}, not retransmissions, so
    [retransmits <= retry_budget * reliable_messages] holds by
    construction ({!overload_stats}). [adaptive_rto] (default false)
    replaces the fixed [rto] ladder base with a per-route Jacobson/Karn
    estimate (SRTT + 4·RTTVAR from samples of never-retransmitted
    messages, floored at [rto], capped at [rto_cap]): a gray-failed route
    whose true round trip exceeds [rto] stops provoking spurious
    retransmissions. RTT estimates are soft state and die with a crash.
    [max_inflight] (default 0: unbounded) bounds each peer's transmission
    window: excess messages park in a per-peer backlog (counted by
    {!overload_stats}.backpressured) and promote in issue order as acks
    retire window entries. [admission_deadline] (default 0: off) arms
    deadline-aware admission control on quorum operations: a coordinator
    that estimates it cannot assemble the quorum within the deadline —
    from per-route smoothed RTTs scaled by queue pressure and the route's
    graded suspicion level (its timeout strike count, the same scale whose
    top is [poison_after]) — sheds the operation {e before} touching any
    replica and answers the origin with an explicit {!Wire.Busy}; the op
    settles immediately as unacknowledged (a put's [on_done] never fires,
    a get answers [None]), never a silent drop. [ingress_limit] (default
    0: unbounded) bounds every snode's network ingress queue
    ({!Network.set_ingress_limit}): overload becomes explicit loss for the
    reliable layer to absorb, instead of an ever-growing event queue.

    [rfactor] (default 1: replication off, the original single-copy
    behaviour) keeps every partition on [rfactor] distinct snodes —
    preferring snodes outside the owner group, falling back to its ring
    successors ({!Dht_replication.Placement}). Data operations then run as
    quorum rounds from the issuing snode: a put completes after
    [write_quorum] replicas store the versioned cell, a get after
    [read_quorum] replicas answer (the freshest version wins and stale
    repliers are read-repaired). [read_quorum + write_quorum > rfactor] is
    enforced ({!Dht_core.Params.check_quorum}). A put still short of W
    after [handoff_timeout] (default 20 ms) hints the silent replicas'
    copies to their ring successors (sloppy quorum); the fallback drains
    the hint to its owner when it restarts. A put that cannot assemble W
    even through fallbacks settles as failed one window later ([on_done]
    is never invoked, so the write counts as unacknowledged). Replica
    divergence left by crashes or migrations is repaired by explicit
    {!anti_entropy} rounds. Replica placement commits atomically with
    partition movement: the balancing Commit carries the replica map and,
    when [rfactor > 1], fans out to every snode.

    [linger] (default 0: batching off, byte-identical to the original
    message flow) arms transmission batching: every remote message stages
    in a per-destination coalescing buffer for at most [linger] seconds of
    virtual time and leaves as a single {!Wire.Batch} envelope, amortizing
    the fixed envelope cost. Per-(src, dst) delivery order is preserved —
    a batch is the FIFO prefix of the stream. Under a fault plan the
    batch's protocol messages share one [Req] frame (one sequence number,
    one retransmission timer, one ack for the whole batch) and acks become
    cumulative and piggybacked: they ride the next outgoing envelope,
    outside the frame, and their [floor] retires every older outstanding
    sequence at once. {!Network.quantum} (one base-latency hop) is the
    recommended window; the CLI and benchmarks default to it.

    [mt_threshold] (default 128) selects the anti-entropy protocol per
    partition span: a span whose snapshot holds at most [mt_threshold]
    keys is pushed as a legacy flat {!Wire.Repl_digest} (byte-identical
    to the pre-tree protocol at seed scale), a larger one opens a
    Merkle descent with {!Wire.Mt_root}. [0] forces the tree protocol
    everywhere; [max_int] disables it. [mt_leaf] (default 16) bounds
    the keys per hash-tree bucket.

    Passing [metrics] registers latency/hop histograms in the registry
    (observed as the simulation runs): [runtime.route.hops],
    [runtime.op.latency] (label [op=put|get|remove]),
    [runtime.quorum.latency] (label [op=put|get]), [runtime.2pc.prepare]
    (prepare to commit, at the coordinator), [runtime.2pc.event] (label
    [kind=create|remove], plan to completion), [runtime.recovery.downtime],
    [runtime.rto.delay] and [runtime.batch.occupancy] (messages per
    coalesced envelope); pair it with {!record_metrics} after the run
    for the scalar counters. Passing [trace] (default {!Trace.noop})
    streams protocol events — [op]/[2pc.prepare]/[2pc.event]/
    [recovery.downtime] spans, [retransmit]/[route.backoff]/
    [route.poisoned]/[crash] instants — stamped with the virtual clock, on
    track [tid = snode id]. Both are passive: with the defaults the
    runtime's behaviour (messages, bytes, clock, random draws) is
    unchanged, and a trace with the same seed is byte-identical across
    runs.

    [causal] (default false; requires an enabled [trace]) arms causal
    request tracing: every client op mints a trace id (its op token) and a
    root span, and a compact span context (trace id, parent span id, hop
    count — 20 bytes, charged to {!Wire.size_bytes}) rides inside every
    wire frame the op causes, surviving {!Wire.Batch} envelopes,
    reliable-layer retransmission, quorum fan-out, hinted handoff and read
    repair. The runtime then emits parent-linked [cat = "causal"] events —
    [op.begin]/[op.end], [msg.send]/[msg.xmit]/[msg.recv] per wire edge —
    from which {!Dht_obsv.Causal} rebuilds each op's causal tree and
    decomposes its latency into queue / network / service / retransmit
    components that sum exactly to the measurement. Unlike plain [trace],
    [causal] is {e not} passive: frames grow by the context size, so byte
    counts and batch thresholds shift (the simulated timings remain
    deterministic for a given seed).

    [heat] (default false) arms per-partition heat accounting: every data
    access at its executing snode charges time-decayed EWMA counters
    (reads, writes, replica traffic, bytes; time constant [heat_tau]
    seconds of virtual time, default 1.0) keyed by the accessed partition.
    Read the table back with {!heat_rows}; {!record_metrics} exports it as
    labeled [heat.*] series. Passive: counters only.

    [balance] arms the active load balancer (and implies [heat]): snodes
    gossip version-stamped load summaries in push-pull rounds, report to
    hash-located directory snodes that pair heavy reporters with light
    ones, and a proposal triggers a hot-partition {e swap} inside the
    heavy partition's group — the hot partition moves to a group member
    on the light snode, which gives its coldest partition back, so
    per-vnode partition counts (and therefore G4/G5 and the LPDRs) are
    untouched and only placement moves, through the standard
    prepare/commit round under the group lock. Rounds are driven
    explicitly ({!arm_balancer}); creating with [balance] alone changes
    nothing until rounds run.

    [route_cap] (default 0: unbounded, the legacy behaviour) arms the
    scalable routing layer: every snode's routing cache is bounded to at
    most [route_cap] entries — over-cap caches fold their coldest sibling
    leaf-pair into one coarser parent binding (LRU by last probe/learn,
    hole-free, so coverage audits still hold) — and lookups run prefix
    routing over {!Dht_cluster.Fingers} geometry: a cache entry at least
    [ceil(log2 snodes)] levels deep is trusted like legacy advice; a
    coarser entry diverts the {e origin} hop to the point's region
    steward, a deterministic snode that accumulates fine placements for
    the region through {!route_refresh_round}s and learns corrected-owner
    hints piggybacked on {!Wire.Put_ack}/{!Wire.Get_reply} replies.
    Expected hops stay O(log snodes) while per-snode routing state stays
    O(route_cap). Must be [>= pmin] when positive (a restarting snode
    rebuilds from the [pmin]-span bootstrap placement).

    [max_hops] (default 4) is the forwarding limit: a routed operation
    bouncing through more than [max_hops] stale-cache hops backs off and
    retries. Raise it together with [route_cap] at cluster scale so the
    hop distribution is observable rather than truncated by retries.
    @raise Invalid_argument if [snodes < 1], a parameter is out of range,
    or the crash plan names an unknown snode. *)

val engine : t -> Engine.t

val network : t -> Network.t

val snode_count : t -> int

val vnode_count : t -> int
(** Vnodes whose creation has completed. *)

val create_vnode : t -> ?initiator:int -> id:Vnode_id.t -> unit -> unit
(** Issues a creation request from [initiator] (default: the snode named by
    [id]) at the current virtual time. Completion is asynchronous; drive
    the engine with {!run}. *)

val put :
  t -> ?via:int -> ?on_done:(unit -> unit) -> key:string -> value:string ->
  unit -> unit
(** Write issued from snode [via] (default 0): routed to the single owner
    when [rfactor = 1], a quorum round otherwise. If [via] is down the
    quorum round runs from the next live snode instead, so a dead entry
    point never demotes a replicated write to a single copy; only with
    the whole cluster down does the write park until a restart. [on_done]
    fires when the write is acknowledged (owner ack, or W replica acks) —
    the write is then {e durable} under the configured fault model.
    Conflicting writes to the same key resolve by last-writer-wins on the
    versioned cell (issue time, then the coordinator's own monotonic
    sequence, then its snode id) — the sequence component keeps two
    writes stamped by one coordinator in the same engine tick ordered as
    issued. *)

val get : t -> ?via:int -> key:string -> (string option -> unit) -> unit
(** Read issued from snode [via]; the callback fires when the owner's
    reply (or the [read_quorum]-th replica reply, whose freshest version
    wins) arrives. Like {!put}, a replicated read whose [via] snode is
    down re-routes to the next live coordinator. *)

val range_get :
  t -> ?via:int -> lo:int -> hi:int -> ((string * string) list -> unit) -> unit
(** Quorum range read over the hash interval [[lo, hi)]: the coordinator
    (snode [via], or the next live snode) opens one leg per partition
    intersecting the range, fans each leg to the partition's replica set,
    and completes a leg at [read_quorum] distinct replies (clamped to the
    replicas that exist). Cells merge by last-writer-wins across legs and
    repliers, so the callback's [(key, value)] list — sorted by key — is
    duplicate-free by construction. Range reads are never shed by
    admission control (a busy range would be indistinguishable from an
    empty one) and never appear in the operation log: linearizability is
    checked over point operations only. Per-leg heat is charged to each
    touched partition at every serving replica.
    @raise Invalid_argument unless [0 <= lo <= hi <= Space.size]. *)

val remove_vnode : t -> ?via:int -> id:Vnode_id.t -> (bool -> unit) -> unit
(** Departure of a vnode through the message protocol: the request reaches
    the vnode's hosting snode, is handed to its group's manager, and — if
    the model admits it (L2 floor, capacity; see
    {!Dht_core.Local_dht.remove_vnode}) — a prepare/commit round drains the
    departing vnode's partitions (with their keys) to the least-loaded
    survivors and re-equalizes. The callback receives [false] when the
    departure was refused or the vnode does not exist. *)

val run : ?until:float -> t -> unit
(** Drives the simulation until the event queue drains (or [until]). *)

val pending_operations : t -> int
(** Creations and data operations issued but not yet completed. *)

val completed_creations : t -> int

val completed_removals : t -> int
(** Departures resolved (accepted or refused). *)

val completed_puts : t -> int

val completed_gets : t -> int

val completed_ranges : t -> int
(** Range reads settled (including empty results). *)

val retries : t -> int
(** Operations that exhausted the forwarding hop limit and backed off —
    a measure of cache staleness encountered. *)

(** {2 Faults and recovery} *)

val alive : t -> int -> bool
(** Whether the snode is currently up (always [true] without a fault
    plan). *)

val crash_snode : t -> int -> unit
(** Crash-stop the snode now: deliveries to it are absorbed until
    {!restart_snode}. Protocol state is modelled as durable (the 2PC
    stable log); volatile and reset here: retransmission timers, route
    suspicions, the routing cache, the heat cells of the partitions the
    snode owns, and its load-balancer gossip view and directory table
    (the per-snode summary {e version counter} stays durable, so a
    restarted snode's first summary supersedes its pre-crash gossip).
    No-op if already down. *)

val restart_snode : t -> int -> unit
(** Bring a crashed snode back: rebuild the routing cache (bootstrap
    placement overlaid with its own partitions), re-arm retransmission of
    every unacknowledged message, replay work parked while down, and pull
    fresh LPDR copies (epoch-fenced) from each group's manager. No-op if
    already up. *)

type stats = {
  drops : int;  (** messages lost by the fault plan *)
  duplicates : int;  (** extra deliveries injected *)
  timeouts : int;  (** retransmission and balancing-round timeouts *)
  retransmits : int;  (** reliable-layer re-sends *)
  crashes : int;
  recoveries : int;
}

val stats : t -> stats
(** Fault and recovery counters (all zero without a fault plan). *)

type overload_stats = {
  sheds : int;  (** quorum ops refused by admission control *)
  busy_rejections : int;  (** {!Wire.Busy} replies settled at the origin *)
  probes : int;  (** rate-limited retransmissions past the retry budget *)
  backpressured : int;  (** messages parked by a full inflight window *)
  reliable_messages : int;  (** messages entered into reliable delivery *)
  outbox_peak : int;  (** deepest any peer outbox has been *)
  ingress_overflows : int;  (** deliveries refused by the ingress bound *)
  ingress_peak : int;  (** deepest any ingress queue has been *)
}

val overload_stats : t -> overload_stats
(** Degradation-layer counters. [sheds] counts at the coordinator,
    [busy_rejections] at the origin when the Busy reply lands; they agree
    once traffic drains. The retry-budget law
    [retransmits <= retry_budget * reliable_messages] is checkable from
    {!stats}.retransmits and [reliable_messages] here. *)

val queue_audit : t -> string list
(** Structural audit of the bounded queues: every peer's inflight count
    must match its window bookkeeping and stay within [max_inflight].
    Empty when sound. Cheap; safe to call mid-run (e.g. from an explorer
    step or a chaos harness). *)

(** {2 Replication} *)

val peek : t -> key:string -> string option
(** Synchronous test oracle: the value at the partition owner's
    authoritative copy, read directly from the distributed state without
    any messaging. Use it for durability audits; it sees exactly what a
    fault-free quorum read would return. *)

val anti_entropy : t -> unit
(** Schedule one anti-entropy round: every live snode digest-pushes each
    partition it owns to the partition's other replicas (divergent
    replicas pull a full-span sync, merged by last-writer-wins in both
    directions), and routes cells it holds for partitions it no longer
    replicates back to their owner. A no-op when [rfactor = 1]. Drive the
    engine with {!run} afterwards; the round is not self-rescheduling, so
    the event queue still drains. *)

type repl_stats = {
  hints_stored : int;  (** sloppy-quorum cells parked for a dead replica *)
  hints_flushed : int;  (** hints drained to their restarted owner *)
  read_repairs : int;  (** stale repliers repaired by quorum reads *)
  sync_cells : int;  (** cells updated by anti-entropy span syncs *)
  orphans : int;  (** cells routed home after leaving a replica set *)
}

val repl_stats : t -> repl_stats
(** Replication repair counters (all zero when [rfactor = 1]). *)

val plant :
  t -> snode:int -> ?origin:int -> key:string -> value:string -> ts:float ->
  unit -> unit
(** Divergence-injection oracle for tests and benchmarks: stamp
    [(value, ts)] and store the cell straight into [snode]'s tables (its
    own partition if it owns the key's point, its replica table
    otherwise), with no messaging — manufacturing a known replica
    divergence for anti-entropy to find. [origin] (default [snode])
    overrides the version's origin stamp: planting the same
    [(key, value, ts, origin)] on several snodes yields byte-identical
    cells, the converged baseline the anti-entropy benchmark diverges
    from.
    @raise Invalid_argument if [snode] names no snode. *)

val merkle_audit : t -> string list
(** Hash-tree consistency audit, one finding per line: for every live
    snode, a freshly built snapshot tree must pass {!Dht_merkle.Merkle.check}
    (interior hashes recomputable from children, counts additive, shape
    canonical) and its frame for every replicated partition span must
    equal the flat scan digest of that span — the property that lets
    anti-entropy mix tree frames with legacy digests. Empty when
    consistent. *)

val replica_divergence : t -> string list
(** Replica agreement audit: for every replicated partition, each live
    replica's span digest must match. Empty iff anti-entropy has
    converged (given quiesced traffic). *)

type ae_stats = {
  ae_digests : int;  (** legacy flat digests pushed (spans at or under the threshold) *)
  ae_roots : int;  (** Merkle root frames pushed *)
  ae_requests : int;  (** descent rounds: [Mt_request] messages sent *)
  ae_frames : int;  (** child frames served by owners *)
  ae_leaves : int;  (** divergent buckets resolved by key exchange *)
  ae_keys_sent : int;  (** cells shipped by all anti-entropy sync paths *)
}

val ae_stats : t -> ae_stats
(** Anti-entropy protocol counters, both the legacy flat-digest and the
    Merkle-descent paths. *)

(** {2 Heat and health exports} *)

type heat_row = {
  hr_span : Dht_hashspace.Span.t;
  hr_owner : int;  (** snode owning the partition now; [-1] if unowned *)
  hr_reads : float;  (** EWMA read heat (decayed to the current clock) *)
  hr_writes : float;
  hr_repl : float;  (** replica traffic: sync, hints, repair *)
  hr_bytes : float;  (** EWMA byte heat across all classes *)
  hr_read_count : int;  (** undecayed lifetime access counts *)
  hr_write_count : int;
  hr_repl_count : int;
}

val heat_total : heat_row -> float
(** [hr_reads + hr_writes + hr_repl]. *)

val heat_rows : t -> heat_row list
(** The heat table, one row per partition ever accessed, sorted by span
    ({!Dht_hashspace.Span.compare}) — deterministic. Empty unless [create]
    was passed [~heat:true]. EWMA values are decayed to the engine's
    current virtual time. *)

type peer_sample = {
  ps_observer : int;  (** the snode whose estimator this is *)
  ps_peer : int;
  ps_srtt : float;  (** smoothed RTT toward the peer, 0 if no sample *)
  ps_rttvar : float;
  ps_strikes : int;  (** consecutive timeout strikes (suspicion level) *)
  ps_suspect : bool;  (** route poisoned *)
  ps_outbox : int;  (** unacknowledged reliable messages toward the peer *)
  ps_backlog : int;  (** messages parked by the inflight window *)
}

val peer_samples : t -> peer_sample list
(** Every live snode's per-peer reliable-layer telemetry, sorted by
    (observer, peer) — the raw material for the gray-failure health scorer
    ({!Dht_obsv.Health.scores}). Empty without a fault plan (the reliable
    layer is off). Soft state: crashes reset an observer's estimators, so
    sample mid-run to catch a gray failure in the act. *)

(** {2 Active load balancing} *)

val lb_gossip_round : t -> unit
(** One push-pull gossip round: every live snode refreshes its own load
    summary under a fresh version stamp and pushes its whole view to
    [fanout] distinct random peers; each recipient merges (version-fenced)
    and replies with its own view. Requires [create ~balance]. *)

val lb_report_round : t -> unit
(** One directory-report round: every live snode sends its fresh summary
    to its hash-located directory snode. Requires [create ~balance]. *)

val lb_balance_round : t -> unit
(** One balance round: every live directory snode classifies reporters
    into light/heavy against the cluster-average heat and proposes a
    hot-partition swap from the k-th heaviest toward the k-th lightest,
    rate-limited per heavy snode. Requires [create ~balance]. *)

val arm_balancer : t -> until:float -> unit
(** Pre-schedule gossip, report and balance rounds at their policy
    cadences up to virtual time [until] — explicit and bounded, like
    {!anti_entropy}, so {!run} without a horizon still drains the queue.
    Requires [create ~balance].
    @raise Invalid_argument when the balancer is not armed. *)

type lb_stats = {
  lbs_transfers : int;  (** completed hot-partition swap events *)
  lbs_proposals : int;  (** directory proposals issued *)
  lbs_emergencies : int;  (** proposals via the emergency path *)
  lbs_skipped : int;  (** proposals dropped by validation or rate limits *)
  lbs_reports : int;  (** gossip and directory report messages sent *)
}

val lb_stats : t -> lb_stats
(** Balancer counters (all zero without [balance] or before any round). *)

val lb_views : t -> (int * Dht_balance.Summary.t list) list
(** Every snode's gossip view (sorted by origin), in snode order — the
    convergence property's input. A crashed snode reports its reset
    view. *)

val lb_version : t -> int -> int
(** The snode's durable summary version counter — gossip ground truth for
    {!Dht_balance.Gossip.staleness}. *)

(** {2 Scalable routing} *)

val route_level : t -> int
(** The finger level the runtime routes at:
    [Dht_cluster.Fingers.level ~bits ~snodes]. Fixed at creation. *)

val route_cap : t -> int
(** The per-snode routing-cache entry bound; [0] = unbounded (legacy). *)

val max_hops : t -> int
(** The forwarding limit a routed operation backs off at. *)

val route_refresh_round : t -> unit
(** One routing-maintenance round: every live snode reports its exact
    owned placements to the stewards of the regions they start in, riding
    the balancer's {!Wire.Lb_report} message class ([entries = \[\]]) so
    maintenance adds no new wire tag. A no-op when [route_cap = 0]. *)

val arm_route_refresh : t -> interval:float -> until:float -> unit
(** Pre-schedule refresh rounds every [interval] up to virtual time
    [until] — explicit and bounded, like {!arm_balancer}, so {!run}
    without a horizon still drains the queue.
    @raise Invalid_argument if [interval] is not positive and finite. *)

type route_cache_stats = {
  rcs_hits : int;  (** cache probes answered by a region-fine entry *)
  rcs_misses : int;  (** probes that fell back to steward or chain *)
  rcs_evictions : int;  (** LRU pair-folds forced by the cap *)
  rcs_refreshes : int;  (** steward refresh reports sent *)
  rcs_entries : int;  (** current total entries across all caches *)
  rcs_peak : int;  (** highest post-learn occupancy of any one cache *)
}

val route_cache_stats : t -> route_cache_stats
(** Bounded-cache counters (all zero when [route_cap = 0] — the legacy
    path does not count probes). *)

val route_cache_entries : t -> int -> int
(** Current routing-cache entry count of one snode. *)

val route_hops : t -> int array
(** Per-hop-count totals of executed routed operations: index [h] is the
    number of ops that reached their owner in exactly [h] forwarding
    hops (length [max_hops + 1]). A fresh copy; diff two snapshots to
    window a measurement. Counts the routed (single-copy) path only —
    quorum rounds do not forward. *)

val route_hops_peak : t -> int
(** Most forwarding hops any executed routed operation took. *)

val record_metrics : t -> Dht_telemetry.Registry.t -> unit
(** Dump the scalar counters and gauges — engine ([engine.dispatched],
    [engine.max_pending], [engine.virtual_time]), network totals and
    per-tag traffic ([net.messages]/[net.bytes], label [tag=<wire tag>]),
    fault/recovery counters, replication repair counters
    ([runtime.repl.hint.stored/flushed], [runtime.repl.repair.read],
    [runtime.repl.sync.cells/orphans]) and completed-operation counts
    ([runtime.ops], label [op]) — into [reg]. With [~heat:true] also dumps
    the per-partition heat table as [heat.reads/writes/repl/bytes] gauges
    and [heat.accesses] counters labeled [(partition, owner)]. Call once,
    after the run; the histograms registered by [create ~metrics]
    accumulate live and need no dump. *)

val sigma_qv : t -> float
(** σ̄(Qv) (%) computed from the distributed state (all snodes' local
    partitions). *)

val audit : t -> (unit, string list) result
(** Global verification by gathering every snode's slice:
    - the union of all local partitions tiles [R_h] exactly (G1');
    - all LPDR copies of a group agree (level, membership, counts);
    - LPDR counts equal the owners' real partition counts; G2'–G5' and L2
      hold per group; L1 holds globally;
    - every routing cache still covers the whole range;
    - every stored key lives at the vnode owning its hash point. *)

(** {2 Verification hooks}

    Passive exports for the {!Dht_check} subsystem: a canonical snapshot of
    the distributed state, a per-commit notification, an operation-history
    recorder, and a deterministic flush of the transmission-batching
    buffers. None of them changes the runtime's behaviour unless used. *)

val space : t -> Dht_hashspace.Space.t
(** The hash space the cluster was built over. *)

val pmin : t -> int
(** The configured [Pmin] ([Pmax = 2·Pmin]). *)

val vmax : t -> int
(** The group capacity [Vmax = 2·Vmin]; [max_int] under {!Global}. *)

(** Operation-history events, as fed to the recorder installed with
    {!set_recorder}: each data operation's invocation and its outcome,
    stamped with the virtual clock. A put whose [Ack] never arrives and
    that is not settled by [Fail] is {e pending}: it may or may not have
    taken effect. *)
module Oplog : sig
  type op = Op_put of { key : string; value : string } | Op_get of { key : string }

  type event =
    | Invoke of { token : int; via : int; op : op; at : float }
    | Ack of { token : int; at : float }
        (** the put is acknowledged durable (owner ack or W replica acks) *)
    | Reply of { token : int; value : string option; at : float }
        (** the get resolved to [value] *)
    | Fail of { token : int; at : float }
        (** the put settled as unacknowledged (quorum never assembled) *)
    | Busy of { token : int; at : float }
        (** shed by admission control before touching any replica: like
            [Fail], but additionally guaranteed effect-free — the value
            must never be observed by any read nor found durable *)
end

val set_recorder : t -> (Oplog.event -> unit) option -> unit
(** Install (or remove) the operation-history recorder. Purely passive. *)

val set_on_commit : t -> (event:int -> snode:int -> unit) option -> unit
(** Install (or remove) a hook invoked each time snode [snode] finishes
    applying the Commit of balancing event [event] — the moment per-snode
    audits are meaningful. Cluster-wide invariants may legitimately be in
    flux here (other participants apply the same commit at their own
    delivery times); check those at quiescence instead. *)

val flush_lingering : t -> unit
(** Force every live snode's staged coalescing buffers onto the wire now,
    in (snode, destination) order. A no-op when [linger = 0] or nothing is
    staged. Deterministic, so schedule explorers can inject flush points
    reproducibly. *)

(** The cluster's logical state as pure, canonically-ordered data. Two
    runs that agree on {!View.equal} views hold the same partitions, group
    structure, LPDR copies, routing caches, replica maps and key/value
    contents — version stamps and the clock are excluded, so logically
    identical states compare equal even when virtual timings differ (e.g.
    under transmission batching). *)
module View : sig
  type lpdr_copy = {
    group : Dht_core.Group_id.t;
    level : int;
    epoch : int;
    counts : (Dht_core.Vnode_id.t * int) list;
  }

  type vnode_view = {
    vid : Dht_core.Vnode_id.t;
    group : Dht_core.Group_id.t;
    spans : Dht_hashspace.Span.t list;
    data : (string * string) list;  (** sorted [(key, value)] *)
  }

  type snode_view = {
    sid : int;
    up : bool;
    vnodes : vnode_view list;
    lpdrs : lpdr_copy list;
    cache : (Dht_hashspace.Span.t * Dht_core.Vnode_id.t) list;
    rmap : (Dht_hashspace.Span.t * int list) list;
    replicas : (string * string) list;
    hints : int;
  }

  type t = { at : float; snodes : snode_view list }

  val equal : t -> t -> bool
  (** Structural equality of the logical state; [at] is ignored. *)

  val pp : Format.formatter -> t -> unit
  (** One summary line per snode. *)
end

val view : t -> View.t
(** Snapshot the distributed state. Pure observation — no messaging, no
    mutation. *)

