module Rng = Dht_prng.Rng

let hex = "0123456789abcdef"

let uniform rng =
  String.init 16 (fun _ -> hex.[Rng.int rng 16])

let sequential ~prefix i = prefix ^ string_of_int i

module Zipf = struct
  type t = { n : int; cdf : float array }

  let create ~n ~s =
    if n <= 0 then invalid_arg "Zipf.create: n must be positive";
    if s < 0. then invalid_arg "Zipf.create: s must be non-negative";
    let weights = Array.init n (fun i -> 1. /. (float_of_int (i + 1) ** s)) in
    let total = Array.fold_left ( +. ) 0. weights in
    let cdf = Array.make n 0. in
    let acc = ref 0. in
    Array.iteri
      (fun i w ->
        acc := !acc +. (w /. total);
        cdf.(i) <- !acc)
      weights;
    cdf.(n - 1) <- 1.;
    { n; cdf }

  let sample t rng =
    let u = Rng.float rng in
    (* First index whose cumulative mass reaches u. *)
    let rec bisect lo hi =
      if lo >= hi then lo
      else
        let mid = (lo + hi) / 2 in
        if t.cdf.(mid) < u then bisect (mid + 1) hi else bisect lo mid
    in
    1 + bisect 0 (t.n - 1)

  let key t rng = "item" ^ string_of_int (sample t rng)

  let expected_frequency t ~rank =
    if rank < 1 || rank > t.n then invalid_arg "Zipf.expected_frequency: rank";
    let lo = if rank = 1 then 0. else t.cdf.(rank - 2) in
    t.cdf.(rank - 1) -. lo
end

module Population = struct
  (* Keys are derived, not stored: member [i] is a pure function of
     [(salt, i)], so a million-key population costs nothing until a key
     is materialized, and two populations with the same salt and size
     agree across processes and runs. *)
  type t = { salt : string; size : int }

  let create ?(salt = "pop") ~size () =
    if size < 1 then invalid_arg "Keygen.Population.create: size < 1";
    { salt; size }

  let size t = t.size
  let nth t i =
    if i < 0 || i >= t.size then invalid_arg "Keygen.Population.nth: index";
    t.salt ^ "-" ^ string_of_int i

  let sample t rng = nth t (Rng.int rng t.size)
end

let hotspot rng ~hot ~hot_fraction ~cold =
  if Array.length hot = 0 then invalid_arg "Keygen.hotspot: no hot keys";
  if hot_fraction < 0. || hot_fraction > 1. then
    invalid_arg "Keygen.hotspot: fraction outside [0, 1]";
  if Rng.float rng < hot_fraction then hot.(Rng.int rng (Array.length hot))
  else cold ()
