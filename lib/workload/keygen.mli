(** Key-stream generators for data-plane experiments.

    The paper assumes "uniform data distributions in the DHT, and no
    hotspots in the access to data" (§5); the Zipf and hotspot generators
    exist for the non-uniform extension experiments it lists as future
    work. *)

module Rng = Dht_prng.Rng

val uniform : Rng.t -> string
(** A fresh random 16-hex-character key. *)

val sequential : prefix:string -> int -> string
(** [sequential ~prefix i] is ["<prefix><i>"] — adversarially non-random
    application keys (hashing must still spread them). *)

module Zipf : sig
  (** Zipf-distributed ranks over [\[1, n\]] with exponent [s], by inverse
      CDF lookup (O(log n) per sample). *)

  type t

  val create : n:int -> s:float -> t
  (** @raise Invalid_argument if [n <= 0] or [s < 0.]. *)

  val sample : t -> Rng.t -> int
  (** A rank in [\[1, n\]]; rank 1 is the most popular. *)

  val key : t -> Rng.t -> string
  (** ["item<rank>"] for a sampled rank. *)

  val expected_frequency : t -> rank:int -> float
  (** Theoretical probability of [rank]. *)
end

module Population : sig
  (** A fixed-size key population with derived members: key [i] is a pure
      function of [(salt, i)], so populations of millions of keys cost
      nothing to hold — the scaling sweeps draw from a configurable
      population size without materializing it. Deterministic: same salt
      and size, same keys, in every process and run. *)

  type t

  val create : ?salt:string -> size:int -> unit -> t
  (** [create ~size ()] is the population [{salt-0, …, salt-(size-1)}]
      (default salt ["pop"]).
      @raise Invalid_argument if [size < 1]. *)

  val size : t -> int

  val nth : t -> int -> string
  (** The [i]-th member.
      @raise Invalid_argument unless [0 <= i < size]. *)

  val sample : t -> Rng.t -> string
  (** A member drawn uniformly with the caller's seeded generator. *)
end

val hotspot : Rng.t -> hot:string array -> hot_fraction:float -> cold:(unit -> string) -> string
(** With probability [hot_fraction], one of the [hot] keys (uniformly);
    otherwise a key from [cold].
    @raise Invalid_argument if [hot] is empty or the fraction is outside
    [\[0, 1\]]. *)
