open Dht_core
module Rng = Dht_prng.Rng
module Csim = Dht_protocol.Creation_sim
module Cluster = Dht_cluster
module Space = Dht_hashspace.Space

type parallel_row = { label : string; result : Csim.result }

let parallel ?(snodes = 64) ?(vnodes = 512) ?(rate = 1000.) ?(pmin = 32)
    ?(vmins = [ 16; 32; 64 ]) ~seed () =
  let arrivals =
    Dht_workload.Trace.poisson ~rng:(Rng.of_int seed) ~n:vnodes ~rate
  in
  let run approach label =
    let cfg = { (Csim.default_config approach) with Csim.snodes; pmin } in
    { label; result = Csim.simulate cfg ~arrivals ~seed }
  in
  run Csim.Global_approach "global"
  :: List.map
       (fun vmin ->
         run
           (Csim.Local_approach { vmin })
           (Printf.sprintf "local Vmin=%d" vmin))
       vmins

type hetero_report = {
  names : string array;
  ideal_shares : float array;
  actual_quotas : float array;
  vnode_counts : int array;
  max_rel_err : float;
  rms_rel_err : float;
}

let hetero ?(total_vnodes = 128) ?(pmin = 32) ?(vmin = 16)
    ?(generations = [ (8, 1.0); (4, 2.0); (2, 4.0) ]) ~seed () =
  let cluster = Cluster.Topology.generations ~counts:generations in
  let n = Cluster.Topology.size cluster in
  let shares = Cluster.Enrollment.ideal_shares (Cluster.Topology.scores cluster) in
  let counts =
    Cluster.Enrollment.vnodes_of_profiles ~total:total_vnodes cluster.Cluster.Topology.nodes
  in
  let rng = Rng.of_int seed in
  (* Interleave creations across nodes so no node's vnodes cluster in time. *)
  let remaining = Array.copy counts in
  let dht = ref None in
  let next_vnode = Array.make n 0 in
  let create node =
    let id = Vnode_id.make ~snode:node ~vnode:next_vnode.(node) in
    next_vnode.(node) <- next_vnode.(node) + 1;
    (match !dht with
    | None -> dht := Some (Local_dht.create ~pmin ~vmin ~rng ~first:id ())
    | Some d -> ignore (Local_dht.add_vnode d ~id));
    remaining.(node) <- remaining.(node) - 1
  in
  let total = Array.fold_left ( + ) 0 counts in
  let cursor = ref 0 in
  for _ = 1 to total do
    (* Round-robin over nodes that still owe vnodes. *)
    while remaining.(!cursor mod n) = 0 do
      incr cursor
    done;
    create (!cursor mod n);
    incr cursor
  done;
  let dht = Option.get !dht in
  let space = (Local_dht.params dht).Params.space in
  let quotas = Array.make n 0. in
  Array.iter
    (fun v ->
      let s = v.Vnode.id.Vnode_id.snode in
      quotas.(s) <- quotas.(s) +. Vnode.quota space v)
    (Local_dht.vnodes dht);
  let rel_errs =
    Array.init n (fun i -> abs_float (quotas.(i) -. shares.(i)) /. shares.(i))
  in
  let max_rel_err = Array.fold_left Float.max 0. rel_errs in
  let rms_rel_err =
    sqrt
      (Array.fold_left (fun acc e -> acc +. (e *. e)) 0. rel_errs
      /. float_of_int n)
  in
  {
    names = Array.map (fun p -> p.Cluster.Profile.name) cluster.Cluster.Topology.nodes;
    ideal_shares = shares;
    actual_quotas = quotas;
    vnode_counts = counts;
    max_rel_err;
    rms_rel_err;
  }

type kv_report = {
  keys : int;
  initial_vnodes : int;
  final_vnodes : int;
  load_sigma_before : float;
  load_sigma_after : float;
  quota_sigma_after : float;
  migrations : int;
  lost : int;
}

let kvload ?(keys = 100_000) ?(initial_vnodes = 64) ?(final_vnodes = 128)
    ?(pmin = 32) ?(vmin = 16) ?(zipf = false) ~seed () =
  if final_vnodes < initial_vnodes || initial_vnodes < 1 then
    invalid_arg "Extensions.kvload: need 1 <= initial <= final";
  let rng = Rng.of_int seed in
  let key_rng = Rng.split rng in
  let vid i = Vnode_id.make ~snode:i ~vnode:0 in
  let store = Dht_kv.Local_store.create ~pmin ~vmin ~rng ~first:(vid 0) () in
  for i = 1 to initial_vnodes - 1 do
    ignore (Dht_kv.Local_store.add_vnode store ~id:(vid i))
  done;
  let zipf_gen = Dht_workload.Keygen.Zipf.create ~n:(10 * keys) ~s:0.99 in
  let all_keys =
    Array.init keys (fun i ->
        if zipf then
          (* Popularity-skewed identifiers; duplicates collapse, so suffix
             the index to keep [keys] distinct bindings. *)
          Printf.sprintf "%s/%d"
            (Dht_workload.Keygen.Zipf.key zipf_gen key_rng)
            i
        else Dht_workload.Keygen.uniform key_rng)
  in
  Array.iteri
    (fun i key -> Dht_kv.Local_store.put store ~key ~value:(string_of_int i))
    all_keys;
  let kv = Dht_kv.Local_store.store store in
  let dht = Dht_kv.Local_store.dht store in
  let load_sigma_before =
    Dht_kv.Store.load_sigma kv ~vnodes:(Local_dht.vnodes dht)
  in
  for i = initial_vnodes to final_vnodes - 1 do
    ignore (Dht_kv.Local_store.add_vnode store ~id:(vid i))
  done;
  let lost = ref 0 in
  Array.iteri
    (fun i key ->
      match Dht_kv.Local_store.get store ~key with
      | Some v when v = string_of_int i -> ()
      | Some _ | None -> incr lost)
    all_keys;
  {
    keys;
    initial_vnodes;
    final_vnodes;
    load_sigma_before;
    load_sigma_after =
      Dht_kv.Store.load_sigma kv ~vnodes:(Local_dht.vnodes dht);
    quota_sigma_after = Local_dht.sigma_qv dht;
    migrations = Dht_kv.Store.migrations kv;
    lost = !lost;
  }

type churn_report = {
  operations : int;
  joins : int;
  leaves : int;
  blocked_leaves : int;
  final_vnodes : int;
  sigma_qv_curve : float array;
  churn_keys_lost : int;
  audit_failures : int;
}

let churn ?(initial_vnodes = 128) ?(operations = 400) ?(leave_fraction = 0.4)
    ?(keys = 20_000) ?(pmin = 32) ?(vmin = 16) ~seed () =
  if leave_fraction < 0. || leave_fraction > 1. then
    invalid_arg "Extensions.churn: leave_fraction outside [0, 1]";
  let rng = Rng.of_int seed in
  let key_rng = Rng.split rng in
  let vid i = Vnode_id.make ~snode:i ~vnode:0 in
  let store = Dht_kv.Local_store.create ~pmin ~vmin ~rng ~first:(vid 0) () in
  let dht = Dht_kv.Local_store.dht store in
  for i = 1 to initial_vnodes - 1 do
    ignore (Dht_kv.Local_store.add_vnode store ~id:(vid i))
  done;
  let all_keys = Array.init keys (fun _ -> Dht_workload.Keygen.uniform key_rng) in
  Array.iteri
    (fun i key -> Dht_kv.Local_store.put store ~key ~value:(string_of_int i))
    all_keys;
  (* Track the live vnode ids so leaves target existing vnodes uniformly. *)
  let live = ref (List.init initial_vnodes (fun i -> vid i)) in
  let live_count = ref initial_vnodes in
  let next_id = ref initial_vnodes in
  let joins = ref 0 and leaves = ref 0 and blocked = ref 0 in
  let audit_failures = ref 0 in
  let curve = Array.make operations 0. in
  for op = 0 to operations - 1 do
    let leave = Rng.float rng < leave_fraction && !live_count > 2 in
    if leave then begin
      let arr = Array.of_list !live in
      let target = arr.(Rng.int rng (Array.length arr)) in
      match Local_dht.remove_vnode dht ~id:target with
      | Ok () ->
          incr leaves;
          live := List.filter (fun i -> not (Vnode_id.equal i target)) !live;
          decr live_count
      | Error (Local_dht.Last_vnode | Local_dht.Group_at_minimum _
              | Local_dht.Group_capacity _) ->
          incr blocked
    end
    else begin
      let id = vid !next_id in
      incr next_id;
      ignore (Dht_kv.Local_store.add_vnode store ~id);
      incr joins;
      live := id :: !live;
      incr live_count
    end;
    curve.(op) <- Local_dht.sigma_qv dht;
    if op mod 50 = 0 then
      match Audit.check_local dht with
      | Ok () -> ()
      | Error _ -> incr audit_failures
  done;
  (match Audit.check_local dht with Ok () -> () | Error _ -> incr audit_failures);
  let lost = ref 0 in
  Array.iteri
    (fun i key ->
      if Dht_kv.Local_store.get store ~key <> Some (string_of_int i) then
        incr lost)
    all_keys;
  {
    operations;
    joins = !joins;
    leaves = !leaves;
    blocked_leaves = !blocked;
    final_vnodes = Local_dht.vnode_count dht;
    sigma_qv_curve = curve;
    churn_keys_lost = !lost;
    audit_failures = !audit_failures;
  }

type ablation_report = {
  quota_sigma_qv : float;
  uniform_sigma_qv : float;
  quota_sigma_qg : float;
  uniform_sigma_qg : float;
}

let ablation_selection ?(runs = 20) ?(vnodes = 512) ?(pmin = 16) ?(vmin = 16)
    ~seed () =
  let final selection =
    let master = Rng.of_int seed in
    let qv = Dht_stats.Welford.create () and qg = Dht_stats.Welford.create () in
    for _ = 1 to runs do
      let rng = Rng.split master in
      let vid i = Vnode_id.make ~snode:i ~vnode:0 in
      let dht = Local_dht.create ~selection ~pmin ~vmin ~rng ~first:(vid 0) () in
      for i = 1 to vnodes - 1 do
        ignore (Local_dht.add_vnode dht ~id:(vid i))
      done;
      Dht_stats.Welford.add qv (Local_dht.sigma_qv dht);
      Dht_stats.Welford.add qg (Local_dht.sigma_qg dht)
    done;
    (Dht_stats.Welford.mean qv, Dht_stats.Welford.mean qg)
  in
  let quota_sigma_qv, quota_sigma_qg = final Local_dht.Quota_lookup in
  let uniform_sigma_qv, uniform_sigma_qg = final Local_dht.Uniform_group in
  { quota_sigma_qv; uniform_sigma_qv; quota_sigma_qg; uniform_sigma_qg }

type hotspot_report = {
  accesses : int;
  access_sigma_before : float;
  access_sigma_after : float;
  partitions_moved : int;
  hotspot_keys_lost : int;
}

let hotspot ?(vnodes = 32) ?(keys = 50_000) ?(accesses = 200_000)
    ?(zipf_s = 0.7) ?(pmin = 32) ?(vmin = 16) ~seed () =
  let rng = Rng.of_int seed in
  let access_rng = Rng.split rng in
  let vid i = Vnode_id.make ~snode:i ~vnode:0 in
  let store = Dht_kv.Local_store.create ~pmin ~vmin ~rng ~first:(vid 0) () in
  for i = 1 to vnodes - 1 do
    ignore (Dht_kv.Local_store.add_vnode store ~id:(vid i))
  done;
  let ab = Dht_kv.Access_balancer.create store in
  let all_keys =
    Array.init keys (fun i -> Printf.sprintf "record:%d" i)
  in
  Array.iteri
    (fun i key -> Dht_kv.Local_store.put store ~key ~value:(string_of_int i))
    all_keys;
  (* Zipf-popular reads: key rank drawn by popularity. *)
  let zipf = Dht_workload.Keygen.Zipf.create ~n:keys ~s:zipf_s in
  for _ = 1 to accesses do
    let rank = Dht_workload.Keygen.Zipf.sample zipf access_rng in
    ignore (Dht_kv.Access_balancer.get ab ~key:all_keys.(rank - 1))
  done;
  let before = Dht_kv.Access_balancer.access_sigma ab in
  let moved = Dht_kv.Access_balancer.rebalance ~max_moves:256 ab in
  let after = Dht_kv.Access_balancer.access_sigma ab in
  let lost = ref 0 in
  Array.iteri
    (fun i key ->
      if Dht_kv.Local_store.get store ~key <> Some (string_of_int i) then
        incr lost)
    all_keys;
  {
    accesses;
    access_sigma_before = before;
    access_sigma_after = after;
    partitions_moved = moved;
    hotspot_keys_lost = !lost;
  }

type hetero_compare_report = {
  local_max_err : float;
  local_rms_err : float;
  ch_max_err : float;
  ch_rms_err : float;
}

let hetero_compare ?(nodes_generations = [ (8, 1.0); (4, 2.0); (2, 4.0) ])
    ?(total_vnodes = 128) ?(base_points = 32) ?(runs = 20) ?(pmin = 32)
    ?(vmin = 16) ~seed () =
  let cluster = Cluster.Topology.generations ~counts:nodes_generations in
  let n = Cluster.Topology.size cluster in
  let shares =
    Cluster.Enrollment.ideal_shares (Cluster.Topology.scores cluster)
  in
  let errs quotas =
    Array.init n (fun i -> abs_float (quotas.(i) -. shares.(i)) /. shares.(i))
  in
  let summarize per_run =
    (* per_run: list of error arrays; mean max and mean rms across runs. *)
    let maxes = List.map (fun e -> Array.fold_left Float.max 0. e) per_run in
    let rmses =
      List.map
        (fun e ->
          sqrt
            (Array.fold_left (fun acc x -> acc +. (x *. x)) 0. e
            /. float_of_int n))
        per_run
    in
    let mean xs = List.fold_left ( +. ) 0. xs /. float_of_int (List.length xs) in
    (mean maxes, mean rmses)
  in
  let master = Rng.of_int seed in
  let local_errs = ref [] and ch_errs = ref [] in
  for run = 0 to runs - 1 do
    let rng = Rng.split master in
    (* Local approach: enrollment proportional to capacity. *)
    let counts =
      Cluster.Enrollment.vnodes_of_profiles ~total:total_vnodes
        cluster.Cluster.Topology.nodes
    in
    let dht = ref None in
    let next = Array.make n 0 in
    let remaining = Array.copy counts in
    let left = ref total_vnodes in
    let cursor = ref 0 in
    while !left > 0 do
      let node = !cursor mod n in
      if remaining.(node) > 0 then begin
        let id = Vnode_id.make ~snode:node ~vnode:next.(node) in
        next.(node) <- next.(node) + 1;
        (match !dht with
        | None -> dht := Some (Local_dht.create ~pmin ~vmin ~rng ~first:id ())
        | Some d -> ignore (Local_dht.add_vnode d ~id));
        remaining.(node) <- remaining.(node) - 1;
        decr left
      end;
      incr cursor
    done;
    let dht = Option.get !dht in
    let space = (Local_dht.params dht).Params.space in
    let quotas = Array.make n 0. in
    Array.iter
      (fun v ->
        quotas.(v.Vnode.id.Vnode_id.snode) <-
          quotas.(v.Vnode.id.Vnode_id.snode) +. Vnode.quota space v)
      (Local_dht.vnodes dht);
    local_errs := errs quotas :: !local_errs;
    (* Weighted CH: ring points proportional to capacity. *)
    let ring = Dht_ch.Ring.create ~rng:(Rng.of_int (seed + run)) () in
    Array.iteri
      (fun i p ->
        let points =
          max 1
            (int_of_float
               (Float.round (float_of_int base_points *. Cluster.Profile.score p)))
        in
        Dht_ch.Ring.add_node ring ~id:i ~k:base_points ~points ())
      cluster.Cluster.Topology.nodes;
    let ch_quotas = Array.init n (fun i -> Dht_ch.Ring.quota ring ~id:i) in
    ch_errs := errs ch_quotas :: !ch_errs
  done;
  let local_max_err, local_rms_err = summarize !local_errs in
  let ch_max_err, ch_rms_err = summarize !ch_errs in
  { local_max_err; local_rms_err; ch_max_err; ch_rms_err }

type distributed_report = {
  dist_vnodes : int;
  dist_sigma_qv : float;
  oracle_sigma_qv : float;
  dist_messages : int;
  dist_bytes : int;
  dist_retries : int;
  dist_keys_wrong : int;
  dist_audit_ok : bool;
  makespan : float;
  global_messages : int;
  global_makespan : float;
  global_audit_ok : bool;
}

let distributed ?(snodes = 16) ?(vnodes = 128) ?(keys = 5000) ?(pmin = 32)
    ?(vmin = 16) ?metrics ?trace ~seed () =
  let module Runtime = Dht_snode.Runtime in
  let rt =
    Runtime.create ~pmin ~approach:(Runtime.Local { vmin }) ?metrics ?trace
      ~snodes ~seed ()
  in
  for i = 0 to keys - 1 do
    Runtime.put rt ~via:(i mod snodes)
      ~key:(Printf.sprintf "user:%d" i)
      ~value:(string_of_int i) ()
  done;
  Runtime.run rt;
  (* Scope traffic and makespan to the creation burst alone, so the two
     approaches compare like-for-like. *)
  Dht_event_sim.Network.reset_counters (Runtime.network rt);
  let burst_start = Dht_event_sim.Engine.now (Runtime.engine rt) in
  for i = 1 to vnodes - 1 do
    Runtime.create_vnode rt
      ~id:(Vnode_id.make ~snode:(i mod snodes) ~vnode:(i / snodes))
      ()
  done;
  Runtime.run rt;
  let makespan = Dht_event_sim.Engine.now (Runtime.engine rt) -. burst_start in
  let burst_messages = Dht_event_sim.Network.messages (Runtime.network rt) in
  let burst_bytes = Dht_event_sim.Network.bytes_sent (Runtime.network rt) in
  let wrong = ref 0 in
  for i = 0 to keys - 1 do
    Runtime.get rt
      ~via:(i * 7 mod snodes)
      ~key:(Printf.sprintf "user:%d" i)
      (fun v -> if v <> Some (string_of_int i) then incr wrong)
  done;
  Runtime.run rt;
  (* Centralized oracle at the same scale for the balance comparison. *)
  let oracle =
    Local_dht.create ~pmin ~vmin ~rng:(Rng.of_int seed)
      ~first:(Vnode_id.make ~snode:0 ~vnode:0)
      ()
  in
  for i = 1 to vnodes - 1 do
    ignore
      (Local_dht.add_vnode oracle
         ~id:(Vnode_id.make ~snode:(i mod snodes) ~vnode:(i / snodes)))
  done;
  (* The same creation burst through the global-approach runtime. *)
  let grt = Runtime.create ~pmin ~approach:Runtime.Global ~snodes ~seed () in
  for i = 1 to vnodes - 1 do
    Runtime.create_vnode grt
      ~id:(Vnode_id.make ~snode:(i mod snodes) ~vnode:(i / snodes))
      ()
  done;
  Runtime.run grt;
  (match metrics with
  | Some reg -> Runtime.record_metrics rt reg
  | None -> ());
  {
    dist_vnodes = Runtime.vnode_count rt;
    dist_sigma_qv = Runtime.sigma_qv rt;
    oracle_sigma_qv = Local_dht.sigma_qv oracle;
    dist_messages = burst_messages;
    dist_bytes = burst_bytes;
    dist_retries = Runtime.retries rt;
    dist_keys_wrong = !wrong;
    dist_audit_ok = (match Runtime.audit rt with Ok () -> true | Error _ -> false);
    makespan;
    global_messages = Dht_event_sim.Network.messages (Runtime.network grt);
    global_makespan = Dht_event_sim.Engine.now (Runtime.engine grt);
    global_audit_ok =
      (match Runtime.audit grt with Ok () -> true | Error _ -> false);
  }

type chaos_report = {
  chaos_vnodes : int;
  chaos_sigma_qv : float;
  baseline_sigma_qv : float;
  chaos_makespan : float;
  baseline_makespan : float;
  chaos_messages : int;
  baseline_messages : int;
  chaos_keys_wrong : int;
  chaos_pending : int;
  chaos_audit_ok : bool;
  chaos_stats : Dht_snode.Runtime.stats;
  chaos_per_tag : (string * int * int) list;
      (** faulty-run remote traffic per wire tag: [(tag, messages, bytes)] *)
  chaos_recovery_p50 : float;  (** crash-to-restart latency quantiles; *)
  chaos_recovery_p99 : float;  (** [nan] when no crash recovered *)
  chaos_rfactor : int;
  chaos_read_quorum : int;
  chaos_write_quorum : int;
  chaos_acked_writes : int;
      (** writes acknowledged to the client during the faulty run *)
  chaos_lost_acked : int;
      (** acknowledged writes NOT durable after repair — the headline
          durability number, must be zero *)
  chaos_repl : Dht_snode.Runtime.repl_stats;
  chaos_qput_p50 : float;  (** quorum op latency quantiles; [nan] when *)
  chaos_qget_p50 : float;  (** [rfactor = 1] (no quorum rounds ran) *)
  chaos_linger : float;  (** coalescing window the runs used *)
  chaos_batches : int;  (** coalesced envelopes in the faulty run *)
  chaos_batched_parts : int;  (** messages that rode inside them *)
  chaos_batch_saved_bytes : int;  (** envelope bytes amortized away *)
  chaos_batch_occupancy_p50 : float;
      (** median messages per envelope; [nan] when nothing coalesced *)
  chaos_route_cap : int;  (** routing-cache entry bound (0 = unbounded) *)
  chaos_route : Dht_snode.Runtime.route_cache_stats;
      (** faulty-run routing-cache traffic; all-zero when unbounded *)
}

let chaos ?(snodes = 12) ?(vnodes = 40) ?(keys = 600) ?(pmin = 8) ?(vmin = 4)
    ?(drop = 0.03) ?(dup = 0.015) ?(jitter = 2e-4) ?(crashes = 2)
    ?(downtime = 0.05) ?(rfactor = 1) ?(read_quorum = 1) ?(write_quorum = 1)
    ?(linger = 0.) ?(route_cap = 0) ?max_hops ?metrics ?trace
    ?(causal = false) ~seed () =
  let module Runtime = Dht_snode.Runtime in
  let module Fault = Dht_event_sim.Fault in
  if crashes < 0 then invalid_arg "chaos: crashes < 0";
  if downtime <= 0. then invalid_arg "chaos: downtime must be positive";
  (* The registry instruments the faulty run (never the baseline), whether
     the caller wants it surfaced or not: the recovery-latency quantiles in
     the report come from its downtime histogram. *)
  let reg =
    match metrics with
    | Some reg -> reg
    | None -> Dht_telemetry.Registry.create ()
  in
  (* Writes acknowledged to the client, with the value each acked: the
     durability audit re-reads exactly this set after repair. *)
  let acked : (string, string) Hashtbl.t = Hashtbl.create (2 * keys) in
  let run_workload ?faults ?metrics ?trace ?(midburst = []) ?(midreads = []) () =
    let rt =
      Runtime.create ~pmin ~approach:(Runtime.Local { vmin }) ?faults ?metrics
        ?trace ~causal ~rfactor ~read_quorum ~write_quorum ~linger ~route_cap
        ?max_hops ~snodes ~seed ()
    in
    (* Mid-burst write wave, aimed (by the caller) inside the crash
       windows: writes against a dead replica are what hinted handoff is
       for. Installed before the run so the virtual clock can reach it. *)
    List.iter
      (fun (time, key, value, down_sid) ->
        (* Issue from a snode that is NOT the one crashing: the point is a
           live coordinator writing toward a dead replica. *)
        let via = (down_sid + 1) mod snodes in
        Dht_event_sim.Engine.at (Runtime.engine rt) ~time (fun () ->
            Runtime.put rt ~via
              ~on_done:(fun () -> Hashtbl.replace acked key value)
              ~key ~value ()))
      midburst;
    (* Read traffic while the cluster is degraded: quorum reads that catch
       a divergent replier are what read repair is for. Results are not
       audited here (the counted correctness sweep runs after repair). *)
    List.iter
      (fun (time, key, down_sid) ->
        let via = (down_sid + 2) mod snodes in
        Dht_event_sim.Engine.at (Runtime.engine rt) ~time (fun () ->
            Runtime.get rt ~via ~key (fun _ -> ())))
      midreads;
    for i = 0 to keys - 1 do
      let key = Printf.sprintf "user:%d" i in
      let value = string_of_int i in
      Runtime.put rt ~via:(i mod snodes)
        ~on_done:(fun () -> Hashtbl.replace acked key value)
        ~key ~value ()
    done;
    Runtime.run rt;
    let burst_start = Dht_event_sim.Engine.now (Runtime.engine rt) in
    for i = 1 to vnodes - 1 do
      Runtime.create_vnode rt
        ~id:(Vnode_id.make ~snode:(i mod snodes) ~vnode:(i / snodes))
        ()
    done;
    Runtime.run rt;
    let burst_end = Dht_event_sim.Engine.now (Runtime.engine rt) in
    (rt, burst_start, burst_end)
  in
  (* Dry faultless pass: locates the creation burst in virtual time (to aim
     the crash windows at it) and gives the no-fault baseline for balance,
     traffic and makespan. *)
  let base_rt, base_start, base_end = run_workload () in
  Hashtbl.reset acked;
  (* Crash schedule: distinct snodes drawn from 1..snodes-1 (snode 0 stays
     up so the experiment always has a live bootstrap entry point), spread
     evenly across the burst, each down for [downtime]. *)
  let crash_rng = Rng.of_int (seed lxor 0x6b7a) in
  let sids = Array.init (max 0 (snodes - 1)) (fun i -> i + 1) in
  Rng.shuffle crash_rng sids;
  let n_crashes = min crashes (Array.length sids) in
  let plan =
    List.init n_crashes (fun i ->
        let frac = (float_of_int i +. 1.) /. (float_of_int n_crashes +. 1.) in
        let at = base_start +. (frac *. (base_end -. base_start)) in
        (sids.(i), at, at +. downtime))
  in
  (* One write volley per crash, fired while that snode is down. *)
  let midburst =
    List.concat_map
      (fun (sid, at, _) ->
        List.init 8 (fun j ->
            let key = Printf.sprintf "mid:%d:%d" sid j in
            (at +. (downtime /. 2.), key, Printf.sprintf "%d.%d" sid j, sid)))
      plan
  in
  (* Read volleys over the same mid-crash keys. The coarse spread, from
     late in each crash window through one downtime past the restart,
     catches repliers that missed the write (drop awaiting retransmit).
     The tight fan at the restart instant reaches the restarted replica
     within the few hundred microseconds before its hints drain (the
     restart's Ae_request round re-offers them two hops later), so some
     quorum reads see the divergent replier — which is what read repair
     is for. *)
  let midreads =
    if rfactor <= 1 then []
    else
      List.concat_map
        (fun (sid, at, at_end) ->
          let chase =
            List.init 8 (fun j ->
                let key = Printf.sprintf "mid:%d:%d" sid j in
                (at_end +. (2e-5 *. float_of_int j), key, sid))
          and spread =
            List.init 24 (fun j ->
                let key = Printf.sprintf "mid:%d:%d" sid (j mod 8) in
                let frac = float_of_int (j + 1) /. 25. in
                let start = at +. (0.6 *. downtime) in
                (start +. (frac *. (at_end +. downtime -. start)), key, sid))
          in
          chase @ spread)
        plan
  in
  let faults = Fault.create ~drop ~duplicate:dup ~jitter ~crashes:plan ~seed () in
  let rt, start_, end_ =
    run_workload ~faults ~metrics:reg ?trace ~midburst ~midreads ()
  in
  (* Faults cease: let repair finish, then verify the system converged by
     re-reading every key and auditing the full distributed state. *)
  Fault.set_drop faults 0.;
  Fault.set_duplicate faults 0.;
  Fault.set_jitter faults 0.;
  (* Repair passes first, both protocol mechanisms in their natural order:
     a quorum read sweep while replicas still diverge (client traffic
     during recovery — this is what drives read repair), then two
     anti-entropy rounds to re-sync whatever no read touched. *)
  if rfactor > 1 then begin
    for i = 0 to keys - 1 do
      Runtime.get rt
        ~via:(((i * 3) + 1) mod snodes)
        ~key:(Printf.sprintf "user:%d" i)
        (fun _ -> ())
    done;
    Runtime.run rt;
    Runtime.anti_entropy rt;
    Runtime.run rt;
    Runtime.anti_entropy rt;
    Runtime.run rt
  end;
  (* Converged now: re-read every key, counted. *)
  let wrong = ref 0 in
  for i = 0 to keys - 1 do
    Runtime.get rt
      ~via:(i * 7 mod snodes)
      ~key:(Printf.sprintf "user:%d" i)
      (fun v -> if v <> Some (string_of_int i) then incr wrong)
  done;
  Runtime.run rt;
  (* Durability audit: every write acknowledged during the faulty run must
     be at its owner's authoritative copy. *)
  let lost_acked =
    Hashtbl.fold
      (fun key value n ->
        if Runtime.peek rt ~key = Some value then n else n + 1)
      acked 0
  in
  Runtime.record_metrics rt reg;
  (* Report percentiles come from the merge of the registered shards —
     never from find-or-create lookups, which would plant empty series in
     the registry and make the report disagree with what [--metrics-csv]
     carries. *)
  let mq ?labels name q =
    match Dht_telemetry.Registry.merged reg ?labels name with
    | None -> nan
    | Some h -> Dht_telemetry.Histogram.quantile h q
  in
  {
    chaos_vnodes = Runtime.vnode_count rt;
    chaos_sigma_qv = Runtime.sigma_qv rt;
    baseline_sigma_qv = Runtime.sigma_qv base_rt;
    chaos_makespan = end_ -. start_;
    baseline_makespan = base_end -. base_start;
    chaos_messages = Dht_event_sim.Network.messages (Runtime.network rt);
    baseline_messages =
      Dht_event_sim.Network.messages (Runtime.network base_rt);
    chaos_keys_wrong = !wrong;
    chaos_pending = Runtime.pending_operations rt;
    chaos_audit_ok =
      (match Runtime.audit rt with Ok () -> true | Error _ -> false);
    chaos_stats = Runtime.stats rt;
    chaos_per_tag = Dht_event_sim.Network.per_tag (Runtime.network rt);
    chaos_recovery_p50 = mq "runtime.recovery.downtime" 0.5;
    chaos_recovery_p99 = mq "runtime.recovery.downtime" 0.99;
    chaos_rfactor = rfactor;
    chaos_read_quorum = read_quorum;
    chaos_write_quorum = write_quorum;
    chaos_acked_writes = Hashtbl.length acked;
    chaos_lost_acked = lost_acked;
    chaos_repl = Runtime.repl_stats rt;
    chaos_qput_p50 = mq ~labels:[ ("op", "put") ] "runtime.quorum.latency" 0.5;
    chaos_qget_p50 = mq ~labels:[ ("op", "get") ] "runtime.quorum.latency" 0.5;
    chaos_linger = linger;
    chaos_batches = Dht_event_sim.Network.batches (Runtime.network rt);
    chaos_batched_parts =
      Dht_event_sim.Network.batched_parts (Runtime.network rt);
    chaos_batch_saved_bytes =
      Dht_event_sim.Network.batch_bytes_saved (Runtime.network rt);
    chaos_batch_occupancy_p50 = mq "runtime.batch.occupancy" 0.5;
    chaos_route_cap = route_cap;
    chaos_route = Runtime.route_cache_stats rt;
  }

(* ------------------------------------------------------------------ *)
(* Overload / gray-failure: goodput vs throughput under sustained      *)
(* over-capacity load with one slow snode                              *)

type overload_phase = {
  ph_name : string;  (* "pre" | "burst" | "post" *)
  ph_offered : int;
  ph_acked : int;
  ph_busy : int;
  ph_timely : int;
  ph_goodput : float;
  ph_throughput : float;
}

type overload_report = {
  ov_phases : overload_phase list;
  ov_slow_snode : int;
  ov_slow_factor : float;
  ov_rate : float;
  ov_burst_rate : float;
  ov_slo : float;
  ov_acked : int;
  ov_lost_acked : int;
  ov_busy_total : int;
  ov_pending : int;
  ov_audit_ok : bool;
  ov_queue_audit : string list;
  ov_busy_violations : string list;
  ov_overload : Dht_snode.Runtime.overload_stats;
  ov_stats : Dht_snode.Runtime.stats;
  ov_retx_per_op : float;
  ov_fixed_overload : Dht_snode.Runtime.overload_stats;
  ov_fixed_stats : Dht_snode.Runtime.stats;
  ov_fixed_retx_per_op : float;
  ov_recovery_ratio : float;
  ov_health : (int * float) list;
}

let overload ?(snodes = 8) ?(vnodes = 24) ?(pmin = 8) ?(vmin = 4)
    ?(rate = 4000.) ?(overload_factor = 2.) ?(phase = 0.4) ?(slo = 0.05)
    ?(slow_factor = 100.) ?(drop = 0.005) ?(rfactor = 3) ?(read_quorum = 2)
    ?(write_quorum = 2) ?(retry_budget = 3) ?(max_inflight = 8)
    ?(ingress_limit = 64) ?(admission_deadline = 0.02) ?metrics ?trace
    ?(causal = false) ~seed () =
  let module Runtime = Dht_snode.Runtime in
  let module Fault = Dht_event_sim.Fault in
  let module Engine = Dht_event_sim.Engine in
  if rate <= 0. then invalid_arg "overload: rate must be positive";
  if overload_factor < 1. then invalid_arg "overload: factor < 1";
  if phase <= 0. then invalid_arg "overload: phase must be positive";
  if slow_factor < 1. then invalid_arg "overload: slow_factor < 1";
  let slow_snode = snodes - 1 in
  let burst_rate = rate *. overload_factor in
  let phases = [| ("pre", rate); ("burst", burst_rate); ("post", rate) |] in
  (* One workload, two runtimes: the degraded run carries every
     graceful-degradation knob, the fixed baseline none of them (same
     network, same ingress bound, same faults and the same slow snode) —
     the report's retransmissions-per-op comparison is the adaptive-RTO /
     retry-budget payoff under identical conditions. *)
  let run ~degraded =
    let faults = Fault.create ~drop ~seed () in
    let rt =
      Runtime.create ~pmin ~approach:(Runtime.Local { vmin }) ~faults
        ?metrics:(if degraded then metrics else None)
        ?trace:(if degraded then trace else None)
        ~causal:(degraded && causal) ~rfactor ~read_quorum ~write_quorum
        ~retry_budget:(if degraded then retry_budget else 0)
        ~adaptive_rto:degraded
        ~max_inflight:(if degraded then max_inflight else 0)
        ~admission_deadline:(if degraded then admission_deadline else 0.)
        ~ingress_limit ~snodes ~seed ()
    in
    let hist = Dht_check.History.create () in
    if degraded then Dht_check.History.attach hist rt;
    for i = 1 to vnodes - 1 do
      Runtime.create_vnode rt
        ~id:(Vnode_id.make ~snode:(i mod snodes) ~vnode:(i / snodes))
        ()
    done;
    Runtime.run rt;
    let engine = Runtime.engine rt in
    let t0 = Engine.now engine +. 0.01 in
    let bounds =
      Array.mapi
        (fun p _ -> (t0 +. (float_of_int p *. phase),
                     t0 +. (float_of_int (p + 1) *. phase)))
        phases
    in
    (* The gray failure covers exactly the burst window: the slow snode
       keeps processing, just [slow_factor] times later. *)
    Engine.at engine ~time:(fst bounds.(1)) (fun () ->
        Fault.set_slow faults slow_snode slow_factor);
    Engine.at engine ~time:(snd bounds.(1)) (fun () ->
        Fault.clear_slow faults slow_snode);
    (* Queue-discipline audit at the worst moment (mid-burst) and again
       after the drain: bounded windows must hold even at peak pressure.
       The health snapshot must also be mid-burst: RTT estimators are soft
       state that re-converges once the gray failure clears, so a
       quiescent-time sample would score everyone healthy. *)
    let audit_findings = ref [] in
    let health_samples = ref [] in
    if degraded then
      Engine.at engine
        ~time:((fst bounds.(1) +. snd bounds.(1)) /. 2.)
        (fun () ->
          audit_findings := Runtime.queue_audit rt;
          health_samples := Runtime.peer_samples rt);
    let acked : (string, string) Hashtbl.t = Hashtbl.create 4096 in
    let offered = Array.map (fun _ -> 0) phases in
    let acked_n = Array.map (fun _ -> 0) phases in
    let timely = Array.map (fun _ -> 0) phases in
    Array.iteri
      (fun p (_, r) ->
        let start = fst bounds.(p) in
        let n = int_of_float (r *. phase) in
        offered.(p) <- n;
        for i = 0 to n - 1 do
          let time = start +. (float_of_int i /. r) in
          let key = Printf.sprintf "ov:%d:%d" p i in
          let value = Printf.sprintf "%d.%d" p i in
          let via = (p + i) mod snodes in
          Engine.at engine ~time (fun () ->
              Runtime.put rt ~via
                ~on_done:(fun () ->
                  Hashtbl.replace acked key value;
                  acked_n.(p) <- acked_n.(p) + 1;
                  if Engine.now engine -. time <= slo then
                    timely.(p) <- timely.(p) + 1)
                ~key ~value ())
        done)
      phases;
    Runtime.run rt;
    audit_findings := !audit_findings @ Runtime.queue_audit rt;
    (* Busy rejections per phase, from the recorded history (the origin's
       [on_done] never fires for a shed op). *)
    let busy = Array.map (fun _ -> 0) phases in
    let entries = Dht_check.History.entries hist in
    List.iter
      (fun (e : Dht_check.History.entry) ->
        if e.shed then
          Array.iteri
            (fun p (lo, hi) -> if e.inv >= lo && e.inv < hi then
                busy.(p) <- busy.(p) + 1)
            bounds)
      entries;
    let lost =
      Hashtbl.fold
        (fun key value n ->
          if Runtime.peek rt ~key = Some value then n else n + 1)
        acked 0
    in
    let peek key = Runtime.peek rt ~key in
    let busy_violations =
      if degraded then Dht_check.Linear.busy_never_committed ~peek entries
      else []
    in
    if degraded then
      Option.iter (fun reg -> Runtime.record_metrics rt reg) metrics;
    let report_phases =
      List.init (Array.length phases) (fun p ->
          {
            ph_name = fst phases.(p);
            ph_offered = offered.(p);
            ph_acked = acked_n.(p);
            ph_busy = busy.(p);
            ph_timely = timely.(p);
            ph_goodput = float_of_int timely.(p) /. phase;
            ph_throughput = float_of_int (acked_n.(p) + busy.(p)) /. phase;
          })
    in
    ( rt,
      report_phases,
      Hashtbl.length acked,
      lost,
      Array.fold_left ( + ) 0 busy,
      !audit_findings,
      busy_violations,
      !health_samples )
  in
  let ( rt,
        ov_phases,
        total_acked,
        lost,
        busy_total,
        queue_audit,
        violations,
        health_samples ) =
    run ~degraded:true
  in
  let frt, _, _, _, _, _, _, _ = run ~degraded:false in
  let retx (st : Runtime.stats) (ov : Runtime.overload_stats) =
    if ov.Runtime.reliable_messages = 0 then 0.
    else
      float_of_int (st.Runtime.retransmits + ov.Runtime.probes)
      /. float_of_int ov.Runtime.reliable_messages
  in
  let goodput_of name =
    match List.find_opt (fun p -> p.ph_name = name) ov_phases with
    | Some p -> p.ph_goodput
    | None -> nan
  in
  let stats = Runtime.stats rt and ov_stats = Runtime.overload_stats rt in
  let fstats = Runtime.stats frt and fov = Runtime.overload_stats frt in
  {
    ov_phases;
    ov_slow_snode = slow_snode;
    ov_slow_factor = slow_factor;
    ov_rate = rate;
    ov_burst_rate = burst_rate;
    ov_slo = slo;
    ov_acked = total_acked;
    ov_lost_acked = lost;
    ov_busy_total = busy_total;
    ov_pending = Runtime.pending_operations rt;
    ov_audit_ok =
      (match Runtime.audit rt with Ok () -> true | Error _ -> false);
    ov_queue_audit = queue_audit;
    ov_busy_violations = violations;
    ov_overload = ov_stats;
    ov_stats = stats;
    ov_retx_per_op = retx stats ov_stats;
    ov_fixed_overload = fov;
    ov_fixed_stats = fstats;
    ov_fixed_retx_per_op = retx fstats fov;
    ov_recovery_ratio = goodput_of "post" /. goodput_of "pre";
    ov_health =
      Dht_obsv.Health.scores
        (List.map
           (fun (s : Runtime.peer_sample) ->
             {
               Dht_obsv.Health.observer = s.Runtime.ps_observer;
               peer = s.Runtime.ps_peer;
               srtt = s.Runtime.ps_srtt;
               rttvar = s.Runtime.ps_rttvar;
               strikes = s.Runtime.ps_strikes;
               suspect = s.Runtime.ps_suspect;
               outbox = s.Runtime.ps_outbox;
               backlog = s.Runtime.ps_backlog;
             })
           health_samples);
  }

(* ------------------------------------------------------------------ *)
(* Zipf skew with active load balancing                                 *)

type skew_run = {
  sk_gini : float;  (* per-snode heat Gini at the end of the run *)
  sk_sigma : float;  (* per-snode heat σ/mean, percent *)
  sk_p50 : float;  (* data-op latency percentiles, virtual seconds *)
  sk_p99 : float;
  sk_completed : int;  (* data ops whose callback fired *)
  sk_acked : int;  (* acknowledged writes *)
  sk_lost : int;  (* acked writes the durability oracle cannot see *)
  sk_lb : Dht_snode.Runtime.lb_stats;
  sk_findings : string list;  (* invariant battery + balance audit *)
  sk_linear : string list;  (* linearizability findings *)
}

type skew_report = {
  sk_snodes : int;
  sk_zipf : float;
  sk_keys : int;
  sk_rate : float;
  sk_duration : float;
  sk_crash : bool;
  sk_off : skew_run;
  sk_on : skew_run;
}

let percentile sorted p =
  let n = Array.length sorted in
  if n = 0 then nan
  else sorted.(max 0 (min (n - 1) (int_of_float (p *. float_of_int (n - 1)))))

(* The balancer's acceptance experiment: the same seeded 0.99-Zipf
   workload twice — balancer off, then on — over the same runtime shape.
   The workload is pre-generated (one op list, one key population), so
   the two runs differ only in balancing traffic; the report carries
   per-snode heat skew (Gini, σ̄), op-latency percentiles, balancer
   counters, the full invariant battery ({!Dht_check.Invariants}
   [check_balance]) and the linearizability findings for each run. With
   [crash], one snode crash-stops mid-run and restarts before the end —
   transfers must survive the churn with zero acked-write loss. *)
let skew ?(snodes = 8) ?(vnodes = 24) ?(pmin = 8) ?(vmin = 4) ?(keys = 1000)
    ?(zipf = 0.99) ?(rate = 20000.) ?(duration = 1.0) ?(read_fraction = 0.8)
    ?(rfactor = 3) ?(read_quorum = 2) ?(write_quorum = 2) ?(drop = 0.)
    ?(max_inflight = 4) ?(heat_tau = 0.3) ?(crash = false)
    ?(link = Dht_event_sim.Network.link ~base_latency:8e-4 ~byte_time:1e-8)
    ?policy ?metrics ~seed () =
  let module Runtime = Dht_snode.Runtime in
  let module Engine = Dht_event_sim.Engine in
  let module Fault = Dht_event_sim.Fault in
  let module Heat = Dht_obsv.Heat in
  if keys < 1 then invalid_arg "skew: need at least one key";
  if rate <= 0. || duration <= 0. then
    invalid_arg "skew: rate and duration must be positive";
  if read_fraction < 0. || read_fraction > 1. then
    invalid_arg "skew: read_fraction outside [0, 1]";
  let policy =
    Option.value policy ~default:Dht_balance.Policy.default
  in
  (* One workload for both runs: op i at [i / rate] after warm-up, issued
     via snode [i mod snodes], Zipf-ranked key, four-in-five reads. *)
  let zgen = Dht_workload.Keygen.Zipf.create ~n:keys ~s:zipf in
  let wrng = Rng.of_int (seed * 7919) in
  let n_ops = int_of_float (rate *. duration) in
  let ops =
    Array.init n_ops (fun i ->
        let key = Dht_workload.Keygen.Zipf.key zgen wrng in
        let read = Rng.float wrng < read_fraction in
        (float_of_int i /. rate, i mod snodes, key, read))
  in
  let run ~balance =
    (* A fault plan (even with [drop = 0]) arms the reliable layer, and
       [max_inflight] bounds each peer window: queueing delay then grows
       with per-route pressure, so a hot snode is a real bottleneck the
       balancer can relieve — with neither knob the network is a pure
       delay model and latency cannot respond to placement. *)
    let faults =
      if drop > 0. || max_inflight > 0 then Some (Fault.create ~drop ~seed ())
      else None
    in
    let rt =
      Runtime.create ~pmin
        ~approach:(Runtime.Local { vmin })
        ?faults ~link ~max_inflight ~rfactor ~read_quorum ~write_quorum
        ~heat:true ~heat_tau
        ?balance:(if balance then Some policy else None)
        ?metrics:(if balance then metrics else None)
        ~snodes ~seed ()
    in
    let hist = Dht_check.History.create () in
    Dht_check.History.attach hist rt;
    for i = 1 to vnodes - 1 do
      Runtime.create_vnode rt
        ~id:(Vnode_id.make ~snode:(i mod snodes) ~vnode:(i / snodes))
        ()
    done;
    Runtime.run rt;
    (* Seed the key population so reads hit data. *)
    for k = 1 to keys do
      Runtime.put rt ~via:(k mod snodes)
        ~key:(Printf.sprintf "item%d" k)
        ~value:"seed" ()
    done;
    Runtime.run rt;
    let engine = Runtime.engine rt in
    let t0 = Engine.now engine +. 0.01 in
    let lats = ref [] in
    let completed = ref 0 in
    let acked : (string, unit) Hashtbl.t = Hashtbl.create 4096 in
    let acked_n = ref 0 in
    let finish time =
      incr completed;
      lats := (Engine.now engine -. time) :: !lats
    in
    Array.iter
      (fun (dt, via, key, read) ->
        let time = t0 +. dt in
        Engine.at engine ~time (fun () ->
            if read then Runtime.get rt ~via ~key (fun _ -> finish time)
            else
              Runtime.put rt ~via
                ~on_done:(fun () ->
                  incr acked_n;
                  Hashtbl.replace acked key ();
                  finish time)
                ~key ~value:(Printf.sprintf "w%g" time) ()))
      ops;
    if balance then Runtime.arm_balancer rt ~until:(t0 +. duration);
    if crash then begin
      let victim = 2 mod snodes in
      Engine.at engine ~time:(t0 +. (duration /. 3.)) (fun () ->
          Runtime.crash_snode rt victim);
      Engine.at engine ~time:(t0 +. (2. *. duration /. 3.)) (fun () ->
          Runtime.restart_snode rt victim)
    end;
    Runtime.run rt;
    Runtime.anti_entropy rt;
    Runtime.run rt;
    if balance then
      Option.iter (fun reg -> Runtime.record_metrics rt reg) metrics;
    (* Per-snode heat totals: each partition's decayed heat attributed to
       its owner at quiescence. *)
    let per_snode = Array.make snodes 0. in
    List.iter
      (fun (r : Runtime.heat_row) ->
        if r.Runtime.hr_owner >= 0 && r.Runtime.hr_owner < snodes then
          per_snode.(r.Runtime.hr_owner) <-
            per_snode.(r.Runtime.hr_owner) +. Runtime.heat_total r)
      (Runtime.heat_rows rt);
    let sorted = Array.of_list (List.sort compare !lats) in
    let entries = Dht_check.History.entries hist in
    let peek key = Runtime.peek rt ~key in
    let durability = Dht_check.Linear.durability ~peek entries in
    let linear =
      durability @ Dht_check.Linear.busy_never_committed ~peek entries
    in
    let findings =
      Dht_check.Invariants.to_strings
        (Dht_check.Invariants.check_balance
           ~acked:(Hashtbl.fold (fun k () l -> k :: l) acked [])
           rt)
    in
    {
      sk_gini = Heat.gini per_snode;
      sk_sigma = Heat.sigma_pct per_snode;
      sk_p50 = percentile sorted 0.50;
      sk_p99 = percentile sorted 0.99;
      sk_completed = !completed;
      sk_acked = !acked_n;
      sk_lost = List.length durability;
      sk_lb = Runtime.lb_stats rt;
      sk_findings = findings;
      sk_linear = linear;
    }
  in
  {
    sk_snodes = snodes;
    sk_zipf = zipf;
    sk_keys = keys;
    sk_rate = rate;
    sk_duration = duration;
    sk_crash = crash;
    sk_off = run ~balance:false;
    sk_on = run ~balance:true;
  }

(* ------------------------------------------------------------------ *)
(* Prefix-routing scaling                                               *)

type routing_run = {
  rs_snodes : int;
  rs_vnodes : int;
  rs_level : int;  (* finger level the runtime routed at *)
  rs_cap : int;  (* per-snode routing-cache entry bound *)
  rs_ops : int;  (* routed ops executed inside the measurement window *)
  rs_hops_p50 : float;
  rs_hops_p99 : float;
  rs_hops_max : int;  (* most hops of any windowed op *)
  rs_msgs_per_op : float;  (* network messages per op, window-wide *)
  rs_cache_entries_max : int;  (* fullest cache at quiescence *)
  rs_cache_entries_total : int;
  rs_cache_bytes_max : int;  (* wire-model bytes of the fullest cache *)
  rs_cache : Dht_snode.Runtime.route_cache_stats;
  rs_retries : int;  (* hop-limit backoffs over the whole run *)
  rs_sigma : float;  (* sigma-bar(Qv), percent, at quiescence *)
  rs_findings : string list;  (* audit + invariant battery *)
  rs_linear : string list;  (* durability findings *)
}

(* One cluster size of the scaling sweep: bounded prefix routing under a
   derived key population, with mid-window churn — one snode crash-stops
   and restarts, and one vnode joins, so lookups cross stale caches that
   only reply hints and the advice chain can repair. Hop and message
   counts window the measurement phase (snapshots diffed around it), so
   the creation storm does not contaminate the gated percentiles. *)
let routing_scaling ?vnodes ?(pmin = 8) ?(vmin = 4) ?(route_cap = 128)
    ?(max_hops = 32) ?(keys = 1_000_000) ?(ops = 4000) ?(rate = 20000.)
    ?(read_fraction = 0.5) ?(churn = true)
    ?(link = Dht_event_sim.Network.link ~base_latency:8e-4 ~byte_time:1e-8)
    ?metrics ~snodes ~seed () =
  let module Runtime = Dht_snode.Runtime in
  let module Engine = Dht_event_sim.Engine in
  let module Network = Dht_event_sim.Network in
  let module Fault = Dht_event_sim.Fault in
  let vnodes = Option.value vnodes ~default:snodes in
  if vnodes < 1 then invalid_arg "routing_scaling: vnodes < 1";
  if ops < 1 then invalid_arg "routing_scaling: ops < 1";
  if rate <= 0. then invalid_arg "routing_scaling: rate must be positive";
  if read_fraction < 0. || read_fraction > 1. then
    invalid_arg "routing_scaling: read_fraction outside [0, 1]";
  let faults = if churn then Some (Fault.create ~drop:0. ~seed ()) else None in
  (* The default 1 ms RTO sits below this link's ~1.6 ms round trip, so
     every reliable message would retransmit exactly once — and Karn's
     rule would then starve the adaptive estimator of clean samples
     forever. Start above the round trip and let Jacobson tracking take
     over. *)
  let rt =
    Runtime.create ~pmin
      ~approach:(Runtime.Local { vmin })
      ?faults ~link ~route_cap ~max_hops ~rto:5e-3 ~adaptive_rto:true
      ?metrics ~snodes ~seed ()
  in
  let hist = Dht_check.History.create () in
  Dht_check.History.attach hist rt;
  let engine = Runtime.engine rt in
  (* Grow the cluster as one paced phase with periodic steward
     refreshes armed across the whole growth window. All three knobs
     matter: against cold stewards a flood of simultaneous creations
     routes quadratically (every request walks stale advice from
     scratch); same-instant bursts build queues past the RTO so the
     reliable layer retransmits into its own congestion; and without a
     refresh {e during} the drain a walk stuck in a stale-advice cycle
     can only terminate by randomly restarting onto the owner's snode —
     expected Θ(N) restarts. Refreshes every 50 ms bound staleness in
     simulated time, so a stuck walk's capped backoff outlives the
     staleness, and scaling the creation rate with N keeps the number
     of O(N)-cost refresh rounds constant — construction traffic stays
     near-linear, and the growth phase ends with maintained (not
     oracle) caches — exactly the state the measurement should start
     from. *)
  let create_rate = Float.max 2000. (float_of_int snodes /. 2.) in
  let refresh_every = 0.05 in
  let c0 = Engine.now engine +. 0.001 in
  for i = 1 to vnodes - 1 do
    Engine.at engine
      ~time:(c0 +. (float_of_int (i - 1) /. create_rate))
      (fun () ->
        Runtime.create_vnode rt
          ~id:(Vnode_id.make ~snode:(i mod snodes) ~vnode:(i / snodes))
          ())
  done;
  let growth = float_of_int (max 0 (vnodes - 1)) /. create_rate in
  Runtime.arm_route_refresh rt ~interval:refresh_every
    ~until:(c0 +. growth +. 0.25);
  Runtime.run rt;
  let net = Runtime.network rt in
  (* Pre-generated workload over a derived key population: member keys
     are pure functions of (salt, index), so [keys] can be millions
     without materializing anything. *)
  let pop = Dht_workload.Keygen.Population.create ~size:keys () in
  let wrng = Rng.of_int (seed * 6271) in
  let plan =
    Array.init ops (fun i ->
        let key = Dht_workload.Keygen.Population.sample pop wrng in
        let read = Rng.float wrng < read_fraction in
        (float_of_int i /. rate, i mod snodes, key, read))
  in
  let duration = float_of_int ops /. rate in
  let t0 = Engine.now engine +. 0.01 in
  let acked : (string, unit) Hashtbl.t = Hashtbl.create 4096 in
  Array.iter
    (fun (dt, via, key, read) ->
      Engine.at engine ~time:(t0 +. dt) (fun () ->
          if read then Runtime.get rt ~via ~key (fun _ -> ())
          else
            Runtime.put rt ~via
              ~on_done:(fun () -> Hashtbl.replace acked key ())
              ~key ~value:"w" ()))
    plan;
  if churn then begin
    (* The victim's cache and LRU stamps die with it; it restarts onto
       the bootstrap placement and must converge back through hints and
       refreshes. The joining vnode moves real placement mid-window, so
       every other snode's fine entries for those partitions go stale. *)
    let victim = 1 mod snodes in
    Engine.at engine ~time:(t0 +. (duration /. 3.)) (fun () ->
        Runtime.crash_snode rt victim);
    Engine.at engine ~time:(t0 +. (2. *. duration /. 3.)) (fun () ->
        Runtime.restart_snode rt victim);
    Engine.at engine ~time:(t0 +. (duration /. 2.)) (fun () ->
        Runtime.create_vnode rt
          ~id:(Vnode_id.make ~snode:(vnodes mod snodes) ~vnode:(vnodes / snodes))
          ())
  end;
  let hops0 = Runtime.route_hops rt in
  let msgs0 = Network.messages net in
  Runtime.run rt;
  let hops1 = Runtime.route_hops rt in
  let msgs1 = Network.messages net in
  let window = Array.mapi (fun i c -> c - hops0.(i)) hops1 in
  let total = Array.fold_left ( + ) 0 window in
  let hop_pct p =
    if total = 0 then nan
    else begin
      let target = p *. float_of_int total in
      let acc = ref 0 and found = ref (Array.length window - 1) in
      (try
         Array.iteri
           (fun h c ->
             acc := !acc + c;
             if float_of_int !acc >= target then begin
               found := h;
               raise Exit
             end)
           window
       with Exit -> ());
      float_of_int !found
    end
  in
  let hops_max =
    let m = ref 0 in
    Array.iteri (fun h c -> if c > 0 then m := h) window;
    !m
  in
  let entries_max = ref 0 and entries_total = ref 0 in
  for sid = 0 to snodes - 1 do
    let n = Runtime.route_cache_entries rt sid in
    entries_total := !entries_total + n;
    if n > !entries_max then entries_max := n
  done;
  let findings =
    (match Runtime.audit rt with Ok () -> [] | Error l -> l)
    @ Dht_check.Invariants.to_strings
        (Dht_check.Invariants.check_balance
           ~acked:(Hashtbl.fold (fun k () l -> k :: l) acked [])
           rt)
  in
  let peek key = Runtime.peek rt ~key in
  let linear = Dht_check.Linear.durability ~peek (Dht_check.History.entries hist) in
  Option.iter (fun reg -> Runtime.record_metrics rt reg) metrics;
  {
    rs_snodes = snodes;
    rs_vnodes = vnodes + (if churn then 1 else 0);
    rs_level = Runtime.route_level rt;
    rs_cap = route_cap;
    rs_ops = total;
    rs_hops_p50 = hop_pct 0.50;
    rs_hops_p99 = hop_pct 0.99;
    rs_hops_max = hops_max;
    rs_msgs_per_op =
      (if total = 0 then nan else float_of_int (msgs1 - msgs0) /. float_of_int total);
    rs_cache_entries_max = !entries_max;
    rs_cache_entries_total = !entries_total;
    (* Two 16-byte wire entries per binding — the same model [Wire]
       charges for a piggybacked placement. *)
    rs_cache_bytes_max = !entries_max * 32;
    rs_cache = Runtime.route_cache_stats rt;
    rs_retries = Runtime.retries rt;
    rs_sigma = Runtime.sigma_qv rt;
    rs_findings = findings;
    rs_linear = linear;
  }

type coexist_report = {
  dht_names : string list;
  error_before : float list;
  error_after_load : float list;
  error_after_retarget : float list;
  coexist_added : int;
  coexist_removed : int;
  coexist_blocked : int;
}

let coexist ?(generations = [ (8, 1.0); (4, 2.0); (2, 4.0) ])
    ?(total_vnodes = 96) ?(loaded_nodes = 4) ?(load = 0.6) ~seed () =
  let module Registry = Dht_registry.Registry in
  let cluster = Cluster.Topology.generations ~counts:generations in
  let reg = Registry.create ~cluster ~seed () in
  let names = [ "store-a"; "store-b" ] in
  List.iter
    (fun name -> Registry.add_dht reg ~name ~pmin:32 ~vmin:8 ~total_vnodes)
    names;
  let errors () = List.map (fun name -> Registry.tracking_error reg ~name) names in
  let error_before = errors () in
  (* An external application lands on the first nodes. *)
  for node = 0 to loaded_nodes - 1 do
    Registry.set_external_load reg ~node load
  done;
  let error_after_load = errors () in
  let reports =
    List.map
      (fun name -> Registry.retarget reg ~name ~total_vnodes)
      names
  in
  let error_after_retarget = errors () in
  {
    dht_names = names;
    error_before;
    error_after_load;
    error_after_retarget;
    coexist_added =
      List.fold_left (fun a r -> a + r.Registry.added) 0 reports;
    coexist_removed =
      List.fold_left (fun a r -> a + r.Registry.removed) 0 reports;
    coexist_blocked =
      List.fold_left (fun a r -> a + r.Registry.blocked) 0 reports;
  }
