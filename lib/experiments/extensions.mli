(** Extension experiments: claims the paper makes but does not measure.

    - {!parallel} quantifies §3's serialization-vs-parallelism argument with
      the event-driven protocol simulator.
    - {!hetero} exercises the heterogeneous-enrollment feature of §1/§2.1.2.
    - {!kvload} checks that quota balance translates into data balance and
      that rebalancing never loses keys (data plane). *)

type parallel_row = {
  label : string;
  result : Dht_protocol.Creation_sim.result;
}

val parallel :
  ?snodes:int ->
  ?vnodes:int ->
  ?rate:float ->
  ?pmin:int ->
  ?vmins:int list ->
  seed:int ->
  unit ->
  parallel_row list
(** Creates [vnodes] vnodes with Poisson arrivals at [rate] per second
    (default 1000/s, 512 vnodes, 64 snodes) under the global protocol and
    under the local protocol for each [vmins] value (default
    [\[16; 32; 64\]]). The same arrival trace is used for every row. *)

type hetero_report = {
  names : string array;  (** node names *)
  ideal_shares : float array;  (** capacity share each node should hold *)
  actual_quotas : float array;  (** quota each node does hold *)
  vnode_counts : int array;  (** vnodes apportioned per node *)
  max_rel_err : float;  (** worst |actual − ideal| / ideal *)
  rms_rel_err : float;
}

val hetero :
  ?total_vnodes:int ->
  ?pmin:int ->
  ?vmin:int ->
  ?generations:(int * float) list ->
  seed:int ->
  unit ->
  hetero_report
(** Builds a mixed-generation cluster (default 8×1.0, 4×2.0, 2×4.0),
    apportions [total_vnodes] (default 128) vnodes by capacity score,
    grows a local-approach DHT accordingly and compares each node's DHT
    quota with its capacity share. *)

type kv_report = {
  keys : int;
  initial_vnodes : int;
  final_vnodes : int;
  load_sigma_before : float;  (** keys-per-vnode σ̄ (%) before growth *)
  load_sigma_after : float;
  quota_sigma_after : float;  (** σ̄(Qv) (%) after growth, for comparison *)
  migrations : int;  (** keys moved by rebalancing during growth *)
  lost : int;  (** keys unreachable after growth (must be 0) *)
}

val kvload :
  ?keys:int ->
  ?initial_vnodes:int ->
  ?final_vnodes:int ->
  ?pmin:int ->
  ?vmin:int ->
  ?zipf:bool ->
  seed:int ->
  unit ->
  kv_report
(** Loads [keys] (default 100_000, uniform; [zipf] draws keys from a Zipf
    popularity law instead) into a local-approach store of
    [initial_vnodes] (default 64), grows it to [final_vnodes] (default
    128), and audits data balance and key reachability. *)

type churn_report = {
  operations : int;  (** join/leave operations attempted *)
  joins : int;
  leaves : int;
  blocked_leaves : int;  (** leaves refused (L2 floor or capacity) *)
  final_vnodes : int;
  sigma_qv_curve : float array;  (** σ̄(Qv) after each operation *)
  churn_keys_lost : int;  (** keys unreachable at the end (must be 0) *)
  audit_failures : int;  (** invariant violations observed (must be 0) *)
}

val churn :
  ?initial_vnodes:int ->
  ?operations:int ->
  ?leave_fraction:float ->
  ?keys:int ->
  ?pmin:int ->
  ?vmin:int ->
  seed:int ->
  unit ->
  churn_report
(** Dynamic joins {e and leaves} ("cluster nodes may dynamically join or
    leave the DHT", §1): starting from [initial_vnodes] (default 128) with
    [keys] (default 20_000) stored, performs [operations] (default 400)
    random operations, each a leave with probability [leave_fraction]
    (default 0.4) of a uniformly chosen vnode, otherwise a join. Leaves
    blocked by the L2 floor are counted, the balance trace recorded, the
    invariants audited periodically, and every key re-read at the end. *)

type ablation_report = {
  quota_sigma_qv : float;  (** final σ̄(Qv) with the paper's §3.6 selection *)
  uniform_sigma_qv : float;  (** final σ̄(Qv) with uniform group choice *)
  quota_sigma_qg : float;
  uniform_sigma_qg : float;
}

val ablation_selection :
  ?runs:int -> ?vnodes:int -> ?pmin:int -> ?vmin:int -> seed:int -> unit ->
  ablation_report
(** Ablation of the victim-selection rule: the paper routes a uniform hash
    index so groups receive new vnodes in proportion to their quota (§3.6).
    Replacing it with a uniform choice over groups starves large-quota
    groups and roughly doubles σ̄(Qv) (σ̄(Qg) is less affected — group
    membership counts equalize either way); this experiment quantifies the
    gap (mean of final values over [runs], default 20). *)

type hotspot_report = {
  accesses : int;
  access_sigma_before : float;  (** per-vnode access σ̄ (%) before moves *)
  access_sigma_after : float;
  partitions_moved : int;
  hotspot_keys_lost : int;  (** must be 0 *)
}

val hotspot :
  ?vnodes:int ->
  ?keys:int ->
  ?accesses:int ->
  ?zipf_s:float ->
  ?pmin:int ->
  ?vmin:int ->
  seed:int ->
  unit ->
  hotspot_report
(** Access-aware fine-grain balancing (the paper's §6 future work,
    implemented by {!Dht_kv.Access_balancer}): stores [keys] (default
    50_000), replays [accesses] (default 200_000) Zipf-distributed reads
    (exponent [zipf_s], default 0.7 — mild enough that no single key
    dominates a vnode's fair share, i.e. the imbalance is reducible by
    placement), rebalances, and reports the per-vnode access imbalance
    before and after. *)

type hetero_compare_report = {
  local_max_err : float;  (** worst |quota/share − 1| under the local model *)
  local_rms_err : float;
  ch_max_err : float;  (** same under weighted Consistent Hashing *)
  ch_rms_err : float;
}

type coexist_report = {
  dht_names : string list;
  error_before : float list;  (** per-DHT RMS tracking error at steady state *)
  error_after_load : float list;
      (** same, after external load appears but before retargeting *)
  error_after_retarget : float list;  (** after re-apportioning enrollment *)
  coexist_added : int;
  coexist_removed : int;
  coexist_blocked : int;
}

val coexist :
  ?generations:(int * float) list ->
  ?total_vnodes:int ->
  ?loaded_nodes:int ->
  ?load:float ->
  seed:int ->
  unit ->
  coexist_report
(** §6 future work: two DHTs share a mixed-generation cluster (default
    8×1.0/4×2.0/2×4.0, 96 vnodes each). An external application then
    occupies [load] (default 0.6) of the first [loaded_nodes] (default 4)
    nodes; re-targeting enrollment to the remaining free capacity restores
    the quota-vs-free-capacity tracking that the load disturbed. *)

type distributed_report = {
  dist_vnodes : int;  (** vnodes created through the message protocol *)
  dist_sigma_qv : float;  (** σ̄(Qv) (%) of the distributed state *)
  oracle_sigma_qv : float;  (** σ̄(Qv) (%) of a centralized run, same scale *)
  dist_messages : int;
  dist_bytes : int;
  dist_retries : int;  (** routed operations that hit stale caches *)
  dist_keys_wrong : int;  (** must be 0 *)
  dist_audit_ok : bool;  (** must be true *)
  makespan : float;  (** virtual seconds to absorb the burst *)
  global_messages : int;  (** same workload through the global protocol *)
  global_makespan : float;
  global_audit_ok : bool;
}

val distributed :
  ?snodes:int ->
  ?vnodes:int ->
  ?keys:int ->
  ?pmin:int ->
  ?vmin:int ->
  ?metrics:Dht_telemetry.Registry.t ->
  ?trace:Dht_telemetry.Trace.t ->
  seed:int ->
  unit ->
  distributed_report
(** End-to-end run of the {!Dht_snode.Runtime} message-level system:
    [keys] (default 5000) are stored, then [vnodes] (default 128) creations
    fire concurrently on a [snodes]-node cluster (default 16); all keys are
    re-read from random snodes and the distributed state is audited. The
    balance is compared against a centralized {!Dht_core.Local_dht} run of
    the same size, and the same creation workload is replayed through the
    global-approach runtime to contrast traffic and makespan. [metrics] and
    [trace] instrument the local-approach runtime (see
    {!Dht_snode.Runtime.create}); the registry additionally receives the
    post-run counter dump ({!Dht_snode.Runtime.record_metrics}). *)

type chaos_report = {
  chaos_vnodes : int;  (** vnodes created despite the faults *)
  chaos_sigma_qv : float;  (** σ̄(Qv) (%) after convergence *)
  baseline_sigma_qv : float;  (** same workload, no faults *)
  chaos_makespan : float;  (** virtual seconds to absorb the faulty burst *)
  baseline_makespan : float;
  chaos_messages : int;  (** includes retransmissions and acks *)
  baseline_messages : int;
  chaos_keys_wrong : int;  (** must be 0 *)
  chaos_pending : int;  (** operations never completed; must be 0 *)
  chaos_audit_ok : bool;  (** must be true *)
  chaos_stats : Dht_snode.Runtime.stats;
  chaos_per_tag : (string * int * int) list;
      (** faulty-run remote traffic by wire tag: [(tag, messages, bytes)],
          sorted by tag; retransmitted frames appear under their
          [req:]-prefixed tag, acks under [ack] *)
  chaos_recovery_p50 : float;
      (** median crash-to-restart latency (virtual seconds) *)
  chaos_recovery_p99 : float;  (** [nan] when no crash recovered *)
  chaos_rfactor : int;
  chaos_read_quorum : int;
  chaos_write_quorum : int;
  chaos_acked_writes : int;
      (** writes acknowledged to the client during the faulty run *)
  chaos_lost_acked : int;
      (** acknowledged writes NOT durable after repair — the headline
          durability number, must be zero *)
  chaos_repl : Dht_snode.Runtime.repl_stats;
      (** hinted-handoff / read-repair / anti-entropy activity *)
  chaos_qput_p50 : float;
      (** median quorum write latency; [nan] when [rfactor = 1] *)
  chaos_qget_p50 : float;  (** median quorum read latency *)
  chaos_linger : float;  (** coalescing window both runs used *)
  chaos_batches : int;
      (** coalesced envelopes the faulty run put on the wire *)
  chaos_batched_parts : int;  (** messages that rode inside them *)
  chaos_batch_saved_bytes : int;
      (** envelope bytes amortized away by coalescing *)
  chaos_batch_occupancy_p50 : float;
      (** median messages per envelope; [nan] when nothing coalesced *)
  chaos_route_cap : int;  (** routing-cache entry bound (0 = unbounded) *)
  chaos_route : Dht_snode.Runtime.route_cache_stats;
      (** faulty-run routing-cache traffic; all-zero when unbounded *)
}

val chaos :
  ?snodes:int ->
  ?vnodes:int ->
  ?keys:int ->
  ?pmin:int ->
  ?vmin:int ->
  ?drop:float ->
  ?dup:float ->
  ?jitter:float ->
  ?crashes:int ->
  ?downtime:float ->
  ?rfactor:int ->
  ?read_quorum:int ->
  ?write_quorum:int ->
  ?linger:float ->
  ?route_cap:int ->
  ?max_hops:int ->
  ?metrics:Dht_telemetry.Registry.t ->
  ?trace:Dht_telemetry.Trace.t ->
  ?causal:bool ->
  seed:int ->
  unit ->
  chaos_report
(** Robustness run of the {!Dht_snode.Runtime} message-level system under
    an adversarial network. [keys] (default 600) are stored, then [vnodes]
    (default 40) creations fire on [snodes] (default 12) snodes while every
    remote message risks being dropped ([drop], default 3%), duplicated
    ([dup], default 1.5%) or delayed (uniform [jitter], default 200 µs),
    and [crashes] (default 2) snodes crash-stop mid-burst for [downtime]
    (default 50 ms virtual) each. A dry faultless pass first locates the
    burst in virtual time (the crash windows are aimed at it) and provides
    the baseline columns. An extra write volley fires inside each crash
    window — live coordinators writing toward a dead replica, the hinted
    handoff scenario. Faults then cease and every key is re-read and
    the distributed state audited: with reliable delivery and crash
    recovery, all operations complete and the audit holds.

    With [rfactor > 1] (and [read_quorum]/[write_quorum], validated by
    {!Dht_core.Params.check_quorum}) the data plane runs replicated: every
    write tracks whether it was acknowledged (owner ack or W replica
    acks), two anti-entropy rounds run after the faults cease, and the
    report's [chaos_lost_acked] counts acknowledged writes missing from
    the owner's authoritative copy afterwards ({!Dht_snode.Runtime.peek}) —
    the acknowledged-write durability guarantee, expected zero.

    [linger] (default 0: off) arms transmission batching in both runs
    ({!Dht_snode.Runtime.create}); the report's batch columns surface the
    faulty run's coalescing activity. [route_cap] (default 0: unbounded
    legacy caches) and [max_hops] arm bounded prefix routing in both
    runs; the report's [chaos_route] block surfaces the faulty run's
    cache traffic, so the routing layer can be chaos-tested under the
    same fault mix as the data plane.

    The faulty run (never the baseline) is always instrumented — the
    recovery quantiles in the report come from its downtime histogram.
    Pass [metrics] to receive those instruments plus the post-run counter
    dump in your own registry, and [trace] to stream its protocol events
    ({!Dht_snode.Runtime.create}); with a fixed [seed] the trace is
    byte-identical across runs. [causal] (with [trace]) additionally arms
    causal span-context propagation on the faulty run. *)

type overload_phase = {
  ph_name : string;  (** ["pre"], ["burst"] or ["post"] *)
  ph_offered : int;  (** puts issued inside the phase window *)
  ph_acked : int;  (** of those, eventually acknowledged *)
  ph_busy : int;  (** of those, shed with {!Dht_snode.Wire.Busy} *)
  ph_timely : int;  (** of those, acknowledged within the SLO *)
  ph_goodput : float;
      (** timely acks per virtual second — useful work, the number the
          metastability gate watches *)
  ph_throughput : float;
      (** completions (acked or shed) per virtual second — includes work
          that was late or refused, which is why it can look healthy while
          goodput collapses *)
}

type overload_report = {
  ov_phases : overload_phase list;  (** pre, burst, post — in order *)
  ov_slow_snode : int;  (** the gray-failed snode *)
  ov_slow_factor : float;  (** its service-time inflation during the burst *)
  ov_rate : float;  (** offered load, pre and post (puts/s) *)
  ov_burst_rate : float;  (** offered load during the burst *)
  ov_slo : float;  (** ack deadline for an op to count as goodput *)
  ov_acked : int;  (** distinct writes acknowledged over the whole run *)
  ov_lost_acked : int;  (** acked writes missing from the authoritative
                            copy after the drain — must be 0 *)
  ov_busy_total : int;  (** quorum ops shed by admission control *)
  ov_pending : int;  (** operations never settled — must be 0 *)
  ov_audit_ok : bool;  (** paper-invariant battery after the drain *)
  ov_queue_audit : string list;
      (** {!Dht_snode.Runtime.queue_audit} findings, sampled mid-burst and
          after the drain — must be empty *)
  ov_busy_violations : string list;
      (** {!Dht_check.Linear.busy_never_committed} findings — must be
          empty: a shed write observed as committed *)
  ov_overload : Dht_snode.Runtime.overload_stats;  (** degraded run *)
  ov_stats : Dht_snode.Runtime.stats;
  ov_retx_per_op : float;
      (** (retransmits + probes) per reliable message, degraded run *)
  ov_fixed_overload : Dht_snode.Runtime.overload_stats;
  ov_fixed_stats : Dht_snode.Runtime.stats;  (** fixed-RTO baseline run *)
  ov_fixed_retx_per_op : float;
      (** same workload with every degradation knob off — the adaptive
          path must come in strictly below this *)
  ov_recovery_ratio : float;
      (** post-burst goodput / pre-burst goodput; the metastability gate
          demands it stays near 1 *)
  ov_health : (int * float) list;
      (** gray-failure health ranking, worst first: per-snode scores from
          {!Dht_obsv.Health.scores} over the degraded run's reliable-layer
          telemetry ({!Dht_snode.Runtime.peer_samples}), sampled mid-burst
          — at quiescence the estimators re-converge and hide the failure.
          1.0 is the cluster median; the gray-failed snode must rank
          first *)
}

val overload :
  ?snodes:int ->
  ?vnodes:int ->
  ?pmin:int ->
  ?vmin:int ->
  ?rate:float ->
  ?overload_factor:float ->
  ?phase:float ->
  ?slo:float ->
  ?slow_factor:float ->
  ?drop:float ->
  ?rfactor:int ->
  ?read_quorum:int ->
  ?write_quorum:int ->
  ?retry_budget:int ->
  ?max_inflight:int ->
  ?ingress_limit:int ->
  ?admission_deadline:float ->
  ?metrics:Dht_telemetry.Registry.t ->
  ?trace:Dht_telemetry.Trace.t ->
  ?causal:bool ->
  seed:int ->
  unit ->
  overload_report
(** Overload and gray-failure scenario: three equal [phase]-second windows
    of Engine-paced quorum writes — [rate] puts/s, then
    [overload_factor × rate] (default 2×) while one snode gray-fails
    (alive but [slow_factor] times slower, via {!Dht_event_sim.Fault.set_slow}),
    then [rate] again. An op counts toward {e goodput} only when its ack
    lands within [slo] of issue; {e throughput} also counts late acks and
    [Busy] rejections, so the two diverge exactly when the cluster is
    melting. The same workload runs twice: once with the degradation layer
    armed (adaptive RTO, [retry_budget], bounded [max_inflight] windows,
    [admission_deadline] shedding) and once with every knob off (fixed-RTO
    baseline) on the same bounded-ingress network, yielding the
    retransmissions-per-op comparison. The degraded run is audited end to
    end: acked-write durability via {!Dht_snode.Runtime.peek}, queue
    discipline via {!Dht_snode.Runtime.queue_audit} (sampled mid-burst, at
    peak pressure), and {!Dht_check.Linear.busy_never_committed} over the
    recorded history. [causal] (with [trace]) arms causal tracing on the
    degraded run, for critical-path analysis of the burst. *)

type skew_run = {
  sk_gini : float;
      (** Gini of per-snode heat totals at quiescence — 0 is perfectly
          even, toward 1 as load concentrates on one snode *)
  sk_sigma : float;  (** σ/mean of the same totals, percent *)
  sk_p50 : float;  (** data-op latency percentiles, virtual seconds *)
  sk_p99 : float;
  sk_completed : int;  (** data ops whose callback fired *)
  sk_acked : int;  (** acknowledged writes *)
  sk_lost : int;
      (** acked writes the durability oracle cannot see — must be 0 *)
  sk_lb : Dht_snode.Runtime.lb_stats;  (** balancer counters (zero off) *)
  sk_findings : string list;
      (** {!Dht_check.Invariants.check_balance}: the paper battery plus
          acked-write placement — must be empty *)
  sk_linear : string list;
      (** durability + busy-never-committed findings — must be empty *)
}

type skew_report = {
  sk_snodes : int;
  sk_zipf : float;  (** Zipf exponent of the workload *)
  sk_keys : int;  (** key population ("item1" is the hottest) *)
  sk_rate : float;  (** offered data ops per virtual second *)
  sk_duration : float;  (** measured window, virtual seconds *)
  sk_crash : bool;  (** one snode crash-stopped mid-run *)
  sk_off : skew_run;  (** balancer off *)
  sk_on : skew_run;  (** balancer on — same seed, same op stream *)
}

val skew :
  ?snodes:int ->
  ?vnodes:int ->
  ?pmin:int ->
  ?vmin:int ->
  ?keys:int ->
  ?zipf:float ->
  ?rate:float ->
  ?duration:float ->
  ?read_fraction:float ->
  ?rfactor:int ->
  ?read_quorum:int ->
  ?write_quorum:int ->
  ?drop:float ->
  ?max_inflight:int ->
  ?heat_tau:float ->
  ?crash:bool ->
  ?link:Dht_event_sim.Network.link ->
  ?policy:Dht_balance.Policy.t ->
  ?metrics:Dht_telemetry.Registry.t ->
  seed:int ->
  unit ->
  skew_report
(** The active balancer's acceptance experiment: one pre-generated
    [zipf]-skewed op stream (default 0.99 over [keys] = 1000 keys,
    [read_fraction] reads, Engine-paced at [rate]/s for [duration]
    virtual seconds) runs twice over the same replicated cluster shape —
    balancer off, then on ({!Dht_snode.Runtime.arm_balancer} at the
    policy cadences). Acceptance: balancer-on must reduce both the
    per-snode heat Gini and the p99 op latency, with empty
    [sk_findings]/[sk_linear] and [sk_lost = 0] on both runs. [crash]
    adds a mid-run crash/restart of one snode, exercising transfer
    fencing under churn. [metrics] records the balancer-on run.

    For latency to respond to placement at all, the run must create
    load-dependent queueing: [max_inflight > 0] arms the reliable
    layer's bounded per-peer windows, and the [link] must be slow
    enough that a hot route's message rate exceeds the window's service
    rate [max_inflight / RTT] — on a gigabit fabric the cap is ~40k
    msgs/s per route and never binds. The defaults
    ([max_inflight = 4], 0.8 ms [base_latency], [rate] = 20k/s over 8
    snodes) put the cap near 2.5k msgs/s per route: comfortably above
    an average route, below the routes into the Zipf-hot snode — so
    balancer-off queues on hot routes while balancer-on stays flat. *)

type routing_run = {
  rs_snodes : int;
  rs_vnodes : int;  (** vnodes alive at the end (including the join) *)
  rs_level : int;  (** finger level routed at: [ceil(log2 snodes)] *)
  rs_cap : int;  (** per-snode routing-cache entry bound *)
  rs_ops : int;  (** routed ops executed inside the measurement window *)
  rs_hops_p50 : float;  (** windowed per-op forwarding-hop percentiles *)
  rs_hops_p99 : float;
  rs_hops_max : int;
  rs_msgs_per_op : float;  (** window network messages / windowed ops *)
  rs_cache_entries_max : int;  (** fullest cache at quiescence (<= cap) *)
  rs_cache_entries_total : int;
  rs_cache_bytes_max : int;  (** wire-model bytes of the fullest cache *)
  rs_cache : Dht_snode.Runtime.route_cache_stats;
  rs_retries : int;  (** hop-limit backoffs over the whole run *)
  rs_sigma : float;  (** sigma-bar(Qv) (%) at quiescence *)
  rs_findings : string list;  (** audit + invariant battery; must be [] *)
  rs_linear : string list;  (** durability findings; must be [] *)
}

val routing_scaling :
  ?vnodes:int ->
  ?pmin:int ->
  ?vmin:int ->
  ?route_cap:int ->
  ?max_hops:int ->
  ?keys:int ->
  ?ops:int ->
  ?rate:float ->
  ?read_fraction:float ->
  ?churn:bool ->
  ?link:Dht_event_sim.Network.link ->
  ?metrics:Dht_telemetry.Registry.t ->
  snodes:int ->
  seed:int ->
  unit ->
  routing_run
(** One cluster size of the O(log N) prefix-routing scaling sweep: a
    [snodes]-snode cluster (default [vnodes = snodes] vnodes, [pmin] = 8,
    [vmin] = 4) routes [ops] (default 4000) single-copy data operations
    drawn from a derived key population of [keys] (default one million —
    derived, so never materialized) with bounded routing armed
    ([route_cap] = 128 entries per snode, [max_hops] = 32). The cluster
    is grown as one paced phase (creation rate scaled with [snodes])
    under a periodic steward-refresh cadence armed across the growth
    window: flooding every creation at once against cold stewards
    routes quadratically and melts the reliable layer's RTO, while
    paced, refresh-as-you-grow construction stays near-linear. With [churn] (default true) one snode crash-stops and
    restarts mid-window and one vnode joins, so lookups cross stale
    caches repaired only by reply hints and the advice chain. Hop and
    message counters are snapshotted around the measurement window, so
    construction traffic does not contaminate the percentiles. Acceptance per size: [rs_hops_p99 <=
    2 * log2 snodes], [rs_cache_entries_max <= route_cap], empty
    [rs_findings] and [rs_linear]. *)

val hetero_compare :
  ?nodes_generations:(int * float) list ->
  ?total_vnodes:int ->
  ?base_points:int ->
  ?runs:int ->
  ?pmin:int ->
  ?vmin:int ->
  seed:int ->
  unit ->
  hetero_compare_report
(** Heterogeneous clusters under both models: the local approach enrolls
    vnodes in proportion to capacity; Consistent Hashing weights nodes with
    ring points in proportion to capacity ([base_points] per unit of score,
    default 32, as in CFS). Reports how far each node's quota lands from
    its capacity share (averaged over [runs], default 20). *)
