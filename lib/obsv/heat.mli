(** Time-decayed access-heat accumulators and skew summaries.

    A {!cell} is an exponentially-decayed counter over {e virtual} time:
    each {!charge} first decays the stored value by [exp (-dt / tau)] and
    then adds the access weight, so the cell tracks "recent load" with a
    time constant [tau] without any periodic sweep — exactly the cheap,
    continuously maintained statistic load-aware rebalancing needs. The
    runtime keys one cell group per partition (reads / writes / replica
    traffic / bytes); this module is deliberately key-agnostic so it stays
    free of simulator dependencies. *)

type cell

val cell : tau:float -> cell
(** A fresh accumulator with decay time-constant [tau] (virtual seconds).
    @raise Invalid_argument when [tau <= 0]. *)

val charge : cell -> now:float -> ?weight:float -> unit -> unit
(** Record one access of [weight] (default [1.]) at virtual time [now].
    Out-of-order charges (a [now] before the last one) are accepted and
    simply skip the decay step. *)

val value : cell -> now:float -> float
(** The decayed heat as of [now] — never negative, monotonically
    decreasing between charges. *)

val count : cell -> int
(** Raw (undecayed) number of charges. *)

val gini : float array -> float
(** Gini coefficient of a load vector: [0] for perfectly even load
    (or an empty / all-zero vector), approaching [1] as load concentrates
    on one element. *)

val sigma_pct : float array -> float
(** Relative standard deviation (σ / mean, in percent) of a load vector —
    the same σ̄ shape the paper's balance figures use, applied to load. *)

val top_k : k:int -> ('a * float) list -> ('a * float) list
(** The [k] hottest entries, hottest first (stable for ties). *)
