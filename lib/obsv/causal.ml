type edge = {
  e_span : int;
  e_trace : int;
  e_parent : int;
  e_src : int;
  e_dst : int;
  e_tag : string;
  e_bytes : int;
  e_send : float;
  mutable e_xmits : float list;  (* ascending *)
  mutable e_recv : float option;
}

type op = {
  o_trace : int;
  o_root : int;
  o_op : string;
  o_tid : int;
  o_begin : float;
  mutable o_end : (float * int * string) option;  (* ts, parent span, outcome *)
}

type t = {
  ops : (int, op) Hashtbl.t;  (* trace id -> op *)
  edges : (int, edge) Hashtbl.t;  (* span id -> edge *)
  roots : (int, int) Hashtbl.t;  (* root span id -> trace id *)
  recorded : (int, float) Hashtbl.t;  (* token -> runtime-recorded latency *)
  mutable lines : int;
  mutable malformed : string list;  (* unparseable lines (reversed) *)
}

let geti v key = Jsonl.to_int (Jsonl.member key v)
let gets v key = Jsonl.to_string (Jsonl.member key v)
let getf v key = Jsonl.to_float (Jsonl.member key v)

let require what = function
  | Some v -> v
  | None -> raise (Jsonl.Parse_error ("missing field " ^ what))

let add_event t line v =
  let args = Option.value ~default:(Jsonl.Obj []) (Jsonl.member "args" v) in
  let cat = Option.value ~default:"" (gets v "cat") in
  let name = Option.value ~default:"" (gets v "name") in
  let ts = require "ts" (getf v "ts") in
  match (cat, name) with
  | "sim", "op" -> (
      (* runtime-recorded op latency: cross-check target for the causal
         decomposition *)
      match (geti args "token", getf v "dur") with
      | Some token, Some dur -> Hashtbl.replace t.recorded token dur
      | _ -> ())
  | "causal", "op.begin" ->
      let trace = require "trace" (geti args "trace") in
      let root = require "span" (geti args "span") in
      Hashtbl.replace t.ops trace
        {
          o_trace = trace;
          o_root = root;
          o_op = Option.value ~default:"?" (gets args "op");
          o_tid = Option.value ~default:(-1) (geti v "tid");
          o_begin = ts;
          o_end = None;
        };
      Hashtbl.replace t.roots root trace
  | "causal", "op.end" -> (
      let trace = require "trace" (geti args "trace") in
      let parent = require "parent" (geti args "parent") in
      let outcome = Option.value ~default:"?" (gets args "outcome") in
      match Hashtbl.find_opt t.ops trace with
      | Some op -> op.o_end <- Some (ts, parent, outcome)
      | None ->
          t.malformed <-
            Printf.sprintf "op.end for unknown trace %d: %s" trace line
            :: t.malformed)
  | "causal", "msg.send" ->
      let span = require "span" (geti args "span") in
      Hashtbl.replace t.edges span
        {
          e_span = span;
          e_trace = require "trace" (geti args "trace");
          e_parent = require "parent" (geti args "parent");
          e_src = Option.value ~default:(-1) (geti args "src");
          e_dst = Option.value ~default:(-1) (geti args "dst");
          e_tag = Option.value ~default:"?" (gets args "tag");
          e_bytes = Option.value ~default:0 (geti args "bytes");
          e_send = ts;
          e_xmits = [];
          e_recv = None;
        }
  | "causal", "msg.xmit" -> (
      let parent = require "parent" (geti args "parent") in
      match Hashtbl.find_opt t.edges parent with
      | Some e -> e.e_xmits <- e.e_xmits @ [ ts ]
      | None ->
          t.malformed <-
            Printf.sprintf "msg.xmit for unknown edge %d: %s" parent line
            :: t.malformed)
  | "causal", "msg.recv" -> (
      let span = require "span" (geti args "span") in
      match Hashtbl.find_opt t.edges span with
      | Some e -> if e.e_recv = None then e.e_recv <- Some ts
      | None ->
          t.malformed <-
            Printf.sprintf "msg.recv for unknown edge %d: %s" span line
            :: t.malformed)
  | _ -> ()

let create () =
  {
    ops = Hashtbl.create 256;
    edges = Hashtbl.create 1024;
    roots = Hashtbl.create 256;
    recorded = Hashtbl.create 256;
    lines = 0;
    malformed = [];
  }

let add_line t line =
  if String.trim line <> "" then begin
    t.lines <- t.lines + 1;
    match Jsonl.parse line with
    | Error msg -> t.malformed <- Printf.sprintf "%s: %s" msg line :: t.malformed
    | Ok v -> (
        try add_event t line v
        with Jsonl.Parse_error msg ->
          t.malformed <- Printf.sprintf "%s: %s" msg line :: t.malformed)
  end

let of_lines lines =
  let t = create () in
  List.iter (add_line t) lines;
  t

let load path =
  match open_in path with
  | exception Sys_error msg -> Error msg
  | ic ->
      let t = create () in
      (try
         while true do
           add_line t (input_line ic)
         done
       with End_of_file -> ());
      close_in ic;
      Ok t

let malformed t = List.rev t.malformed
let events t = t.lines
let op_count t = Hashtbl.length t.ops
let edge_count t = Hashtbl.length t.edges

let roots t =
  Hashtbl.fold (fun trace _ acc -> trace :: acc) t.ops [] |> List.sort compare

(* ------------------------------------------------------------------ *)
(* Well-formedness audit. *)

let audit t =
  let findings = ref (List.rev t.malformed) in
  let note fmt = Printf.ksprintf (fun s -> findings := s :: !findings) fmt in
  let parent_trace span =
    match Hashtbl.find_opt t.edges span with
    | Some e -> Some e.e_trace
    | None -> Hashtbl.find_opt t.roots span
  in
  Hashtbl.iter
    (fun _ e ->
      (* span ids come from one monotonic counter, so a well-formed child
         is always younger than its parent — equality or inversion means a
         cycle (or a forged parent) *)
      if e.e_parent >= e.e_span then
        note "edge %d: parent %d not older (cycle?)" e.e_span e.e_parent;
      (match parent_trace e.e_parent with
      | None -> note "edge %d: parent span %d does not exist" e.e_span e.e_parent
      | Some tr when tr <> e.e_trace ->
          note "edge %d: parent belongs to trace %d, edge to %d" e.e_span tr
            e.e_trace
      | Some _ -> ());
      (match e.e_recv with
      | Some r when r < e.e_send -> note "edge %d: recv before send" e.e_span
      | _ -> ());
      match e.e_xmits with
      | x :: _ when x < e.e_send -> note "edge %d: xmit before send" e.e_span
      | _ -> ())
    t.edges;
  (* reachability: walk each edge up to a root; parent < span bounds the
     walk even on (reported) cycles *)
  Hashtbl.iter
    (fun _ e ->
      let rec walk span guard =
        if guard = 0 then note "edge %d: parent chain too deep" e.e_span
        else if Hashtbl.mem t.roots span then ()
        else
          match Hashtbl.find_opt t.edges span with
          | Some p when p.e_parent < span -> walk p.e_parent (guard - 1)
          | Some _ -> ()  (* inversion already reported above *)
          | None -> ()  (* missing parent already reported above *)
      in
      walk e.e_span 1_000_000)
    t.edges;
  Hashtbl.iter
    (fun trace op ->
      match op.o_end with
      | None -> ()
      | Some (ts, parent, _) ->
          if ts < op.o_begin then note "op %d: end before begin" trace;
          if parent <> op.o_root && not (Hashtbl.mem t.edges parent) then
            note "op %d: end parent span %d does not exist" trace parent)
    t.ops;
  List.rev !findings

let check_roots t ~expected =
  let have = roots t in
  let expected = List.sort_uniq compare expected in
  let missing = List.filter (fun tok -> not (List.mem tok have)) expected in
  let extra = List.filter (fun tr -> not (List.mem tr expected)) have in
  List.map (Printf.sprintf "op token %d has no op.begin root") missing
  @ List.map (Printf.sprintf "trace %d matches no recorded op token") extra

(* ------------------------------------------------------------------ *)
(* Critical-path decomposition. *)

type breakdown = {
  queue : float;
  network : float;
  service : float;
  retransmit : float;
  total : float;
}

type step = {
  s_tag : string;
  s_src : int;
  s_dst : int;
  s_queue : float;
  s_retransmit : float;
  s_network : float;
  s_attempts : int;
}

type analyzed = {
  a_trace : int;
  a_op : string;
  a_outcome : string;
  a_breakdown : breakdown;
  a_recorded : float option;
  a_path : step list;  (* root-to-completion order *)
}

let decompose_edge e =
  let recv = Option.value ~default:e.e_send e.e_recv in
  match List.filter (fun x -> x <= recv) e.e_xmits with
  | [] ->
      (* never transmitted before delivery (a parked local hand-off): the
         whole latency is wait *)
      (recv -. e.e_send, 0., 0., max 1 (List.length e.e_xmits))
  | xs ->
      let first = List.hd xs in
      let last = List.fold_left Float.max first xs in
      (first -. e.e_send, last -. first, recv -. last, List.length e.e_xmits)

let analyze_op t op =
  match op.o_end with
  | None -> None
  | Some (end_ts, end_parent, outcome) ->
      let total = end_ts -. op.o_begin in
      (* walk from the completion parent back to the op root; parent < span
         makes the walk finite even on malformed input *)
      let rec collect span acc =
        if span = op.o_root then Some acc
        else
          match Hashtbl.find_opt t.edges span with
          | Some e when e.e_parent < e.e_span -> collect e.e_parent (e :: acc)
          | _ -> None
      in
      Option.map
        (fun path ->
          let queue = ref 0. and retx = ref 0. and net = ref 0. in
          let on_wire = ref 0. in
          let steps =
            List.map
              (fun e ->
                let q, r, n, attempts = decompose_edge e in
                queue := !queue +. q;
                retx := !retx +. r;
                net := !net +. n;
                let recv = Option.value ~default:e.e_send e.e_recv in
                on_wire := !on_wire +. (recv -. e.e_send);
                {
                  s_tag = e.e_tag;
                  s_src = e.e_src;
                  s_dst = e.e_dst;
                  s_queue = q;
                  s_retransmit = r;
                  s_network = n;
                  s_attempts = attempts;
                })
              path
          in
          (* service is the residual: time at snodes between causal hops.
             Defined this way the four components sum to [total] exactly. *)
          let service = total -. !on_wire in
          {
            a_trace = op.o_trace;
            a_op = op.o_op;
            a_outcome = outcome;
            a_breakdown =
              {
                queue = !queue;
                network = !net;
                service;
                retransmit = !retx;
                total;
              };
            a_recorded = Hashtbl.find_opt t.recorded op.o_trace;
            a_path = steps;
          })
        (collect end_parent [])

type analysis = {
  complete : analyzed list;  (* slowest first *)
  unfinished : int;  (* ops with no op.end (still pending at trace end) *)
  broken : int;  (* ops whose path could not be reconstructed *)
}

let analyze t =
  let complete = ref [] and unfinished = ref 0 and broken = ref 0 in
  Hashtbl.iter
    (fun _ op ->
      match analyze_op t op with
      | Some a -> complete := a :: !complete
      | None ->
          if op.o_end = None then incr unfinished else incr broken)
    t.ops;
  let complete =
    List.sort
      (fun a b ->
        match compare b.a_breakdown.total a.a_breakdown.total with
        | 0 -> compare a.a_trace b.a_trace
        | c -> c)
      !complete
  in
  { complete; unfinished = !unfinished; broken = !broken }

let sum_mismatches ?(tolerance = 1e-9) analysis =
  List.filter_map
    (fun a ->
      let b = a.a_breakdown in
      let parts = b.queue +. b.network +. b.service +. b.retransmit in
      let against = Option.value ~default:b.total a.a_recorded in
      let tol = tolerance *. Float.max 1. (Float.abs against) in
      if Float.abs (parts -. against) > tol then
        Some
          (Printf.sprintf
             "op %d (%s): components sum to %.9g but recorded latency is %.9g"
             a.a_trace a.a_op parts against)
      else None)
    analysis.complete

let percentile xs q =
  match List.sort compare xs with
  | [] -> nan
  | sorted ->
      let arr = Array.of_list sorted in
      let n = Array.length arr in
      let idx = int_of_float (ceil (q *. float_of_int n)) - 1 in
      arr.(max 0 (min (n - 1) idx))

type component_summary = { c_name : string; c_p50 : float; c_p99 : float; c_share : float }

let summarize analysis =
  let ops = analysis.complete in
  let extract f = List.map (fun a -> f a.a_breakdown) ops in
  let total_sum = List.fold_left ( +. ) 0. (extract (fun b -> b.total)) in
  let comp name f =
    let xs = extract f in
    let sum = List.fold_left ( +. ) 0. xs in
    {
      c_name = name;
      c_p50 = percentile xs 0.50;
      c_p99 = percentile xs 0.99;
      c_share = (if total_sum > 0. then 100. *. sum /. total_sum else 0.);
    }
  in
  [
    comp "queue" (fun b -> b.queue);
    comp "network" (fun b -> b.network);
    comp "service" (fun b -> b.service);
    comp "retransmit" (fun b -> b.retransmit);
    comp "total" (fun b -> b.total);
  ]
