(** Per-op causal-tree reconstruction and critical-path analysis.

    Reads back the [cat = "causal"] events the snode runtime emits when
    causal tracing is on (see DESIGN.md, "Causal observability"):

    - [op.begin] / [op.end] — a client op's root span and its completion,
      linked to the span that caused the completion;
    - [msg.send] — a wire edge: one protocol message entering the
      transmission path, parented on the span active at the sender;
    - [msg.xmit] — one actual transmission of that edge (retransmissions
      log one each, same trace id, fresh span id);
    - [msg.recv] — first delivery of the edge at the destination.

    From these it rebuilds each op's causal tree, audits it for
    well-formedness, extracts the critical path (the chain of edges from
    the op root to the span that completed the op) and decomposes op
    latency into queue / retransmit / network / service components that
    sum {e exactly} to the measured latency:

    - per edge, [queue] = first transmission − send (sender-side wait:
      linger, backpressure, inflight-window parking),
      [retransmit] = last delivery-relevant transmission − first,
      [network] = delivery − last transmission;
    - [service] is the residual time at snodes between causal hops. *)

type t

val of_lines : string list -> t
val load : string -> (t, string) result
(** Read a JSONL trace file (one event per line). Chrome-format traces are
    not supported — analysis needs the JSONL sink. *)

val events : t -> int
(** Non-empty lines consumed (causal or not). *)

val op_count : t -> int
val edge_count : t -> int

val roots : t -> int list
(** Trace ids with an [op.begin], ascending. Trace ids equal the runtime's
    op tokens, so this is directly comparable to a history recorder's op
    token set. *)

val malformed : t -> string list
(** Lines that failed to parse or referenced unknown spans. *)

val audit : t -> string list
(** Well-formedness findings, empty on a healthy trace: every edge's
    parent exists and is older (spans come from one monotonic counter, so
    parent ≥ child means a cycle), parents share the child's trace id,
    every edge walks up to its op root, receives do not precede sends. *)

val check_roots : t -> expected:int list -> string list
(** Findings for op roots vs an external op-token list (one per recorded
    client op): tokens with no root, roots matching no token. *)

type breakdown = {
  queue : float;
  network : float;
  service : float;
  retransmit : float;
  total : float;
}

type step = {
  s_tag : string;  (** wire tag of the edge ({!Dht_snode.Wire.describe}) *)
  s_src : int;
  s_dst : int;
  s_queue : float;
  s_retransmit : float;
  s_network : float;
  s_attempts : int;  (** transmissions of this edge (1 = no retransmit) *)
}

type analyzed = {
  a_trace : int;
  a_op : string;
  a_outcome : string;  (** ["ok"], ["busy"] or ["fail"] *)
  a_breakdown : breakdown;
  a_recorded : float option;
      (** the runtime's own latency measurement for this op (from the
          [cat = "sim"] "op" span), when present in the trace *)
  a_path : step list;  (** critical path, root-to-completion order *)
}

type analysis = {
  complete : analyzed list;  (** slowest first *)
  unfinished : int;  (** ops with no [op.end] (pending at trace end) *)
  broken : int;  (** finished ops whose critical path did not reconstruct *)
}

val analyze : t -> analysis

val sum_mismatches : ?tolerance:float -> analysis -> string list
(** Ops whose component sum differs from the recorded latency (the
    runtime's own measurement when present, else the causal [end − begin])
    by more than [tolerance] (relative, default [1e-9]). Empty on a
    healthy trace — the CI smoke gate. *)

type component_summary = {
  c_name : string;
  c_p50 : float;
  c_p99 : float;
  c_share : float;  (** percent of summed op latency in this component *)
}

val summarize : analysis -> component_summary list
(** Queue / network / service / retransmit / total, in that order. *)

val percentile : float list -> float -> float
