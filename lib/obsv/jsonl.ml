type value =
  | Null
  | Bool of bool
  | Num of float
  | Str of string
  | List of value list
  | Obj of (string * value) list

exception Parse_error of string

type state = { src : string; mutable pos : int }

let fail st msg =
  raise (Parse_error (Printf.sprintf "%s at offset %d" msg st.pos))

let peek st = if st.pos < String.length st.src then Some st.src.[st.pos] else None

let advance st = st.pos <- st.pos + 1

let skip_ws st =
  let rec go () =
    match peek st with
    | Some (' ' | '\t' | '\n' | '\r') ->
        advance st;
        go ()
    | _ -> ()
  in
  go ()

let expect st c =
  match peek st with
  | Some c' when c' = c -> advance st
  | _ -> fail st (Printf.sprintf "expected '%c'" c)

let literal st word v =
  let n = String.length word in
  if
    st.pos + n <= String.length st.src
    && String.sub st.src st.pos n = word
  then begin
    st.pos <- st.pos + n;
    v
  end
  else fail st (Printf.sprintf "expected '%s'" word)

let parse_string st =
  expect st '"';
  let buf = Buffer.create 16 in
  let rec go () =
    match peek st with
    | None -> fail st "unterminated string"
    | Some '"' ->
        advance st;
        Buffer.contents buf
    | Some '\\' -> (
        advance st;
        match peek st with
        | None -> fail st "unterminated escape"
        | Some c ->
            advance st;
            (match c with
            | '"' -> Buffer.add_char buf '"'
            | '\\' -> Buffer.add_char buf '\\'
            | '/' -> Buffer.add_char buf '/'
            | 'b' -> Buffer.add_char buf '\b'
            | 'f' -> Buffer.add_char buf '\012'
            | 'n' -> Buffer.add_char buf '\n'
            | 'r' -> Buffer.add_char buf '\r'
            | 't' -> Buffer.add_char buf '\t'
            | 'u' ->
                if st.pos + 4 > String.length st.src then
                  fail st "truncated \\u escape";
                let hex = String.sub st.src st.pos 4 in
                st.pos <- st.pos + 4;
                let code =
                  try int_of_string ("0x" ^ hex)
                  with _ -> fail st "bad \\u escape"
                in
                (* The sinks only escape control characters, so a plain
                   byte append round-trips everything we emit. *)
                if code < 0x80 then Buffer.add_char buf (Char.chr code)
                else Buffer.add_string buf (Printf.sprintf "\\u%04x" code)
            | _ -> fail st "bad escape");
            go ())
    | Some c ->
        advance st;
        Buffer.add_char buf c;
        go ()
  in
  go ()

let parse_number st =
  let start = st.pos in
  let is_num_char = function
    | '0' .. '9' | '-' | '+' | '.' | 'e' | 'E' -> true
    | _ -> false
  in
  while
    match peek st with Some c when is_num_char c -> true | _ -> false
  do
    advance st
  done;
  if st.pos = start then fail st "expected number";
  match float_of_string_opt (String.sub st.src start (st.pos - start)) with
  | Some f -> Num f
  | None -> fail st "bad number"

let rec parse_value st =
  skip_ws st;
  match peek st with
  | None -> fail st "unexpected end of input"
  | Some '"' -> Str (parse_string st)
  | Some '{' -> parse_obj st
  | Some '[' -> parse_list st
  | Some 't' -> literal st "true" (Bool true)
  | Some 'f' -> literal st "false" (Bool false)
  | Some 'n' -> literal st "null" Null
  | Some _ -> parse_number st

and parse_obj st =
  expect st '{';
  skip_ws st;
  if peek st = Some '}' then begin
    advance st;
    Obj []
  end
  else begin
    let rec members acc =
      skip_ws st;
      let key = parse_string st in
      skip_ws st;
      expect st ':';
      let v = parse_value st in
      skip_ws st;
      match peek st with
      | Some ',' ->
          advance st;
          members ((key, v) :: acc)
      | Some '}' ->
          advance st;
          Obj (List.rev ((key, v) :: acc))
      | _ -> fail st "expected ',' or '}'"
    in
    members []
  end

and parse_list st =
  expect st '[';
  skip_ws st;
  if peek st = Some ']' then begin
    advance st;
    List []
  end
  else begin
    let rec elements acc =
      let v = parse_value st in
      skip_ws st;
      match peek st with
      | Some ',' ->
          advance st;
          elements (v :: acc)
      | Some ']' ->
          advance st;
          List (List.rev (v :: acc))
      | _ -> fail st "expected ',' or ']'"
    in
    elements []
  end

let parse line =
  let st = { src = line; pos = 0 } in
  match parse_value st with
  | v ->
      skip_ws st;
      if st.pos <> String.length line then Error "trailing garbage"
      else Ok v
  | exception Parse_error msg -> Error msg

let member key = function
  | Obj fields -> List.assoc_opt key fields
  | _ -> None

let to_float = function
  | Some (Num f) -> Some f
  | _ -> None

let to_int v = Option.map int_of_float (to_float v)

let to_string = function
  | Some (Str s) -> Some s
  | _ -> None
