type cell = {
  tau : float;
  mutable value : float;
  mutable last : float;
  mutable count : int;
}

let cell ~tau =
  if tau <= 0. then invalid_arg "Heat.cell: tau must be positive";
  { tau; value = 0.; last = neg_infinity; count = 0 }

let decayed c ~now =
  if c.last = neg_infinity || c.value = 0. then 0.
  else if now <= c.last then c.value
  else c.value *. exp (-.(now -. c.last) /. c.tau)

let charge c ~now ?(weight = 1.) () =
  c.value <- decayed c ~now +. weight;
  c.last <- (if c.last = neg_infinity then now else Float.max c.last now);
  c.count <- c.count + 1

let value c ~now = decayed c ~now
let count c = c.count

(* ------------------------------------------------------------------ *)
(* Skew summaries over a load vector. *)

let gini loads =
  let n = Array.length loads in
  if n = 0 then 0.
  else begin
    let xs = Array.copy loads in
    Array.sort compare xs;
    let total = Array.fold_left ( +. ) 0. xs in
    if total <= 0. then 0.
    else begin
      let weighted = ref 0. in
      Array.iteri (fun i x -> weighted := !weighted +. (float_of_int (i + 1) *. x)) xs;
      let n = float_of_int n in
      (2. *. !weighted /. (n *. total)) -. ((n +. 1.) /. n)
    end
  end

let sigma_pct loads =
  let n = Array.length loads in
  if n = 0 then 0.
  else begin
    let total = Array.fold_left ( +. ) 0. loads in
    let mean = total /. float_of_int n in
    if mean = 0. then 0.
    else begin
      let var =
        Array.fold_left (fun acc x -> acc +. ((x -. mean) ** 2.)) 0. loads
        /. float_of_int n
      in
      100. *. sqrt var /. mean
    end
  end

let top_k ~k items =
  let sorted =
    List.stable_sort (fun (_, a) (_, b) -> compare (b : float) a) items
  in
  List.filteri (fun i _ -> i < k) sorted
