(** Minimal JSON reader for the telemetry sinks' own output.

    Just enough of a recursive-descent parser to read back the one-object-
    per-line traces {!Dht_telemetry.Trace} writes (numbers, strings, bools,
    nested objects/arrays) — no external dependency, no streaming, no
    attempt at full spec coverage beyond what the sinks emit. *)

type value =
  | Null
  | Bool of bool
  | Num of float
  | Str of string
  | List of value list
  | Obj of (string * value) list

exception Parse_error of string
(** Raised by the internal scanner; {!parse} catches it, but helpers built
    on top (field extraction in {!Causal}) reuse it for "required field
    missing" errors. *)

val parse : string -> (value, string) result
(** Parse one complete JSON value (one trace line). Trailing non-whitespace
    is an error. *)

val member : string -> value -> value option
(** Field lookup on an [Obj]; [None] on other constructors. *)

val to_float : value option -> float option
val to_int : value option -> int option
val to_string : value option -> string option
