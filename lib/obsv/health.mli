(** Gray-failure health scoring from reliable-link telemetry.

    A {e gray-failed} peer is alive enough to acknowledge eventually but
    slow enough to hurt every op that touches it — invisible to crash
    detectors and diluted away in aggregate latency quantiles. The scorer
    folds each observer's per-peer link estimator state (adaptive-RTO
    srtt/rttvar, retry-budget strikes, route-poisoning suspicion, queue
    depths) into one badness number per peer, normalized by the cluster
    median so scores read as "times worse than a typical peer". *)

type sample = {
  observer : int;  (** snode doing the measuring *)
  peer : int;  (** snode being measured *)
  srtt : float;  (** smoothed RTT estimate, seconds ([0] if none yet) *)
  rttvar : float;  (** RTT mean deviation, seconds *)
  strikes : int;  (** consecutive exhausted retry budgets *)
  suspect : bool;  (** route-poisoned by the observer *)
  outbox : int;  (** unacked frames outstanding toward the peer *)
  backlog : int;  (** frames parked behind the inflight window *)
}

val scores : sample list -> (int * float) list
(** Per-peer health scores, worst first (ties broken by peer id). A score
    of [1.] is the cluster median; a gray-failed peer scores far above it.
    Peers appear iff some observer sampled them. *)

val worst : sample list -> int option
(** The worst-ranked peer, [None] on an empty sample set. *)
