type sample = {
  observer : int;
  peer : int;
  srtt : float;
  rttvar : float;
  strikes : int;
  suspect : bool;
  outbox : int;
  backlog : int;
}

(* One observer's view of one peer, folded into a single badness number.
   The RTT estimator carries the gray-failure signal (a slow-but-alive peer
   inflates srtt/rttvar at every observer); strikes, suspicion and queue
   depth amplify it so a peer that is also dropping or backlogging ranks
   above one that is merely slow. *)
let raw s =
  let rtt = Float.max 0. s.srtt +. (4. *. Float.max 0. s.rttvar) in
  let pressure = 1. +. (0.1 *. float_of_int (s.outbox + s.backlog)) in
  let strikes = 1. +. float_of_int (max 0 s.strikes) in
  let suspect = if s.suspect then 4. else 1. in
  rtt *. pressure *. strikes *. suspect

let median xs =
  match List.sort compare xs with
  | [] -> 0.
  | sorted ->
      let n = List.length sorted in
      let arr = Array.of_list sorted in
      if n mod 2 = 1 then arr.(n / 2)
      else (arr.((n / 2) - 1) +. arr.(n / 2)) /. 2.

let scores samples =
  let by_peer = Hashtbl.create 16 in
  List.iter
    (fun s ->
      let prev = Option.value ~default:[] (Hashtbl.find_opt by_peer s.peer) in
      Hashtbl.replace by_peer s.peer (raw s :: prev))
    samples;
  let means =
    Hashtbl.fold
      (fun peer raws acc ->
        let n = float_of_int (List.length raws) in
        (peer, List.fold_left ( +. ) 0. raws /. n) :: acc)
      by_peer []
  in
  let med = median (List.map snd means) in
  let scale = if med > 0. then med else 1. in
  means
  |> List.map (fun (peer, m) -> (peer, m /. scale))
  |> List.sort (fun (pa, a) (pb, b) ->
         match compare (b : float) a with 0 -> compare pa pb | c -> c)

let worst samples = match scores samples with [] -> None | (p, _) :: _ -> Some p
