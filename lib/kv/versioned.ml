type version = { ts : float; seq : int; origin : int }
type cell = { value : string; version : version }

let compare_version a b =
  match Float.compare a.ts b.ts with
  | 0 -> (
      match Int.compare a.seq b.seq with
      | 0 -> Int.compare a.origin b.origin
      | c -> c)
  | c -> c

let newer a b = compare_version a b > 0
let cell ~value ~ts ?(seq = 0) ~origin () =
  { value; version = { ts; seq; origin } }

(* Last-writer-wins, biased to the incumbent on exact ties so that a merge
   is a no-op unless the incoming cell is strictly fresher. *)
let merge ~mine ~theirs = if newer theirs.version mine.version then theirs else mine

let merge_opt mine theirs =
  match mine with None -> theirs | Some m -> merge ~mine:m ~theirs

let digest key c =
  Hashtbl.hash (key, c.version.ts, c.version.seq, c.version.origin, c.value)

let size_bytes c = String.length c.value + 24

let pp ppf c =
  Format.fprintf ppf "%S@(%g,%d,%d)" c.value c.version.ts c.version.seq
    c.version.origin
