type version = { ts : float; origin : int }
type cell = { value : string; version : version }

let compare_version a b =
  match Float.compare a.ts b.ts with
  | 0 -> Int.compare a.origin b.origin
  | c -> c

let newer a b = compare_version a b > 0
let cell ~value ~ts ~origin = { value; version = { ts; origin } }

(* Last-writer-wins, biased to the incumbent on exact ties so that a merge
   is a no-op unless the incoming cell is strictly fresher. *)
let merge ~mine ~theirs = if newer theirs.version mine.version then theirs else mine

let merge_opt mine theirs =
  match mine with None -> theirs | Some m -> merge ~mine:m ~theirs

let digest key c = Hashtbl.hash (key, c.version.ts, c.version.origin, c.value)
let size_bytes c = String.length c.value + 16

let pp ppf c =
  Format.fprintf ppf "%S@(%g,%d)" c.value c.version.ts c.version.origin
