(** Versioned KV cells: the unit of replicated storage.

    Every write is stamped with a {!version} — a logical timestamp plus
    the id of the snode that coordinated it — and conflicting copies
    resolve by deterministic last-writer-wins: higher timestamp wins,
    ties break on the higher origin id, exact ties keep the incumbent.
    Because every component is totally ordered, any two replicas that
    have seen the same set of writes hold byte-identical cells, which is
    what lets anti-entropy compare partitions by digest. *)

type version = { ts : float;  (** logical (virtual-clock) timestamp *)
                 origin : int  (** coordinating snode id, the tiebreak *) }

type cell = { value : string; version : version }

val cell : value:string -> ts:float -> origin:int -> cell

val compare_version : version -> version -> int
(** Total order: by [ts], then by [origin]. *)

val newer : version -> version -> bool
(** [newer a b] iff [a] strictly dominates [b]. *)

val merge : mine:cell -> theirs:cell -> cell
(** LWW merge; keeps [mine] unless [theirs] is strictly newer. *)

val merge_opt : cell option -> cell -> cell
(** [merge] against a possibly-absent incumbent. *)

val digest : string -> cell -> int
(** Order-insensitive per-cell digest contribution (fold with [lxor]):
    hashes the key, the version and the value, so any divergence in any
    component shows up in a partition's digest. *)

val size_bytes : cell -> int
(** Wire-size estimate: value bytes plus a 16-byte version. *)

val pp : Format.formatter -> cell -> unit
