(** Versioned KV cells: the unit of replicated storage.

    Every write is stamped with a {!version} — a logical timestamp, a
    per-coordinator sequence number and the id of the snode that
    coordinated it — and conflicting copies resolve by deterministic
    last-writer-wins: higher timestamp wins, then the higher sequence
    number, then the higher origin id; exact ties keep the incumbent.
    The sequence number is what orders two writes a single coordinator
    stamps within the same virtual-clock tick (the engine can dispatch
    many events at one instant), so a later same-tick overwrite is never
    dropped by an LWW merge. Because every component is totally ordered,
    any two replicas that have seen the same set of writes hold
    byte-identical cells, which is what lets anti-entropy compare
    partitions by digest. *)

type version = {
  ts : float;  (** logical (virtual-clock) timestamp *)
  seq : int;  (** coordinator-local monotonic stamp; orders same-tick writes *)
  origin : int;  (** coordinating snode id, the final tiebreak *)
}

type cell = { value : string; version : version }

val cell : value:string -> ts:float -> ?seq:int -> origin:int -> unit -> cell
(** [seq] defaults to [0] for callers whose [ts] is already monotonic. *)

val compare_version : version -> version -> int
(** Total order: by [ts], then [seq], then [origin]. *)

val newer : version -> version -> bool
(** [newer a b] iff [a] strictly dominates [b]. *)

val merge : mine:cell -> theirs:cell -> cell
(** LWW merge; keeps [mine] unless [theirs] is strictly newer. *)

val merge_opt : cell option -> cell -> cell
(** [merge] against a possibly-absent incumbent. *)

val digest : string -> cell -> int
(** Order-insensitive per-cell digest contribution (fold with [lxor]):
    hashes the key, the version and the value, so any divergence in any
    component shows up in a partition's digest. *)

val size_bytes : cell -> int
(** Wire-size estimate: value bytes plus a 24-byte version. *)

val pp : Format.formatter -> cell -> unit
