open Dht_core
module Space = Dht_hashspace.Space
module Span = Dht_hashspace.Span
module Hash = Dht_hashes.Hash
module Merkle = Dht_merkle.Merkle

(* [cell] is mutable so the common case — updating a key that already
   exists — lands with a single table probe (find, then overwrite in
   place) instead of a find-then-replace double hash. *)
type entry = { point : int; mutable cell : Versioned.cell }

module Vtbl = Hashtbl.Make (Vnode_id)

type t = {
  space : Space.t;
  tables : (string, entry) Hashtbl.t Vtbl.t;
  merkle : Versioned.cell Merkle.t;
      (** whole-space hash tree, maintained incrementally: every stored
          write rehashes one leaf's root path. Partition handovers move
          entries between vnode tables without changing the held cell
          set, so the tree is untouched by rebalancing. *)
  mutable router : (int -> Vnode.t) option;
  mutable size : int;
  mutable migrations : int;
  mutable clock : int;  (** stamps unversioned legacy puts *)
}

let create ?(space = Space.default) () =
  {
    space;
    tables = Vtbl.create 64;
    merkle = Merkle.create ~space ~span:Span.root ();
    router = None;
    size = 0;
    migrations = 0;
    clock = 0;
  }

let space t = t.space
let set_router t route = t.router <- Some route

let route t point =
  match t.router with
  | Some route -> route point
  | None -> failwith "Kv.Store: no router installed"

let table_of t id =
  match Vtbl.find_opt t.tables id with
  | Some tbl -> tbl
  | None ->
      let tbl = Hashtbl.create 16 in
      Vtbl.add t.tables id tbl;
      tbl

(* A partition handover moves exactly the keys of the transferred span. *)
let handler t = function
  | Balancer.Split _ -> ()
  | Balancer.Transfer { src; dst; span } -> (
      match Vtbl.find_opt t.tables src.Vnode.id with
      | None -> ()
      | Some src_tbl ->
          let moving =
            Hashtbl.fold
              (fun key e acc ->
                if Span.contains t.space span e.point then (key, e) :: acc
                else acc)
              src_tbl []
          in
          if moving <> [] then begin
            let dst_tbl = table_of t dst.Vnode.id in
            List.iter
              (fun (key, e) ->
                Hashtbl.remove src_tbl key;
                Hashtbl.replace dst_tbl key e)
              moving;
            t.migrations <- t.migrations + List.length moving
          end)

let put_cell t ~key cell =
  let point = Hash.string t.space key in
  let owner = route t point in
  let tbl = table_of t owner.Vnode.id in
  match Hashtbl.find_opt tbl key with
  | None ->
      t.size <- t.size + 1;
      Hashtbl.add tbl key { point; cell };
      Merkle.insert t.merkle ~key ~point
        ~digest:(Versioned.digest key cell)
        cell
  | Some e ->
      let merged = Versioned.merge ~mine:e.cell ~theirs:cell in
      if merged != e.cell then begin
        e.cell <- merged;
        Merkle.insert t.merkle ~key ~point
          ~digest:(Versioned.digest key merged)
          merged
      end

let put t ~key ~value =
  (* Unversioned writes always win: stamp them from a local clock that
     outruns every version the store has seen. *)
  t.clock <- t.clock + 1;
  put_cell t ~key
    (Versioned.cell ~value ~ts:(float_of_int t.clock) ~origin:max_int ())

let get_cell t ~key =
  let point = Hash.string t.space key in
  let owner = route t point in
  match Vtbl.find_opt t.tables owner.Vnode.id with
  | None -> None
  | Some tbl -> Option.map (fun e -> e.cell) (Hashtbl.find_opt tbl key)

let get t ~key = Option.map (fun c -> c.Versioned.value) (get_cell t ~key)
let mem t ~key = Option.is_some (get t ~key)

let remove t ~key =
  let point = Hash.string t.space key in
  let owner = route t point in
  match Vtbl.find_opt t.tables owner.Vnode.id with
  | None -> false
  | Some tbl ->
      if Hashtbl.mem tbl key then begin
        Hashtbl.remove tbl key;
        ignore (Merkle.remove t.merkle ~key ~point);
        t.size <- t.size - 1;
        true
      end
      else false

let size t = t.size

let load_of t id =
  match Vtbl.find_opt t.tables id with
  | None -> 0
  | Some tbl -> Hashtbl.length tbl

let load_counts t ~vnodes = Array.map (fun v -> load_of t v.Vnode.id) vnodes

let load_sigma t ~vnodes =
  if t.size = 0 || Array.length vnodes <= 1 then 0.
  else
    let counts = load_counts t ~vnodes in
    let floats = Array.map float_of_int counts in
    let ideal = float_of_int t.size /. float_of_int (Array.length vnodes) in
    100. *. Dht_stats.Descriptive.rel_stddev_about floats ~about:ideal

let migrations t = t.migrations
let merkle t = t.merkle
