(** The DHT data plane: a key/value store sharded across vnodes.

    Keys hash into [R_h]; the {e router} maps a hash index to the vnode
    currently responsible for it; each vnode holds a local table. Feeding
    the store's {!handler} to a DHT's [on_event] keeps data placement
    consistent across rebalancing: every partition handover migrates exactly
    the keys of the transferred span.

    Use {!Local_store} / {!Global_store} for pre-wired bundles; this module
    is the flavour-independent machinery. *)

open Dht_core

type t

val create : ?space:Dht_hashspace.Space.t -> unit -> t
(** A store with no router yet; {!put}/{!get} raise until {!set_router} is
    called. *)

val space : t -> Dht_hashspace.Space.t

val set_router : t -> (int -> Vnode.t) -> unit
(** [set_router t route] installs the lookup function (typically
    [fun p -> snd (Local_dht.lookup dht p)]). *)

val handler : t -> Balancer.event -> unit
(** The rebalancing hook: migrates keys on partition transfers. Pass it as
    the DHT's [on_event]. *)

val put : t -> key:string -> value:string -> unit
(** Stores/overwrites a binding. Unversioned writes are stamped from an
    internal clock that dominates every version the store has seen, so
    they always win the LWW merge. @raise Failure if no router is set. *)

val put_cell : t -> key:string -> Versioned.cell -> unit
(** Versioned write: merges by last-writer-wins ({!Versioned.merge}), so
    a stale replayed cell never clobbers a fresher one. *)

val get : t -> key:string -> string option

val get_cell : t -> key:string -> Versioned.cell option
(** The stored cell with its version, as a replica would ship it. *)

val mem : t -> key:string -> bool

val remove : t -> key:string -> bool
(** [true] if the key was present. *)

val size : t -> int
(** Total number of bindings. *)

val load_of : t -> Vnode_id.t -> int
(** Number of bindings held by one vnode (0 if it holds none). *)

val load_counts : t -> vnodes:Vnode.t array -> int array
(** Bindings per vnode, aligned with [vnodes]. *)

val load_sigma : t -> vnodes:Vnode.t array -> float
(** Relative standard deviation (percent, against the ideal [size/n]) of
    the per-vnode key loads — how well quota balance translates into data
    balance. Returns [0.] when the store is empty. *)

val migrations : t -> int
(** Keys moved by rebalancing so far. *)

val merkle : t -> Versioned.cell Dht_merkle.Merkle.t
(** The store's whole-space hash tree, maintained incrementally: every
    {!put_cell} that changes a stored cell rehashes one leaf's root path,
    every {!remove} of a present key likewise. Partition handovers
    ({!handler}) move entries between vnode tables without changing the
    held cell set, so they leave the tree untouched — its root digest
    summarizes the store's contents, not their placement. *)
