(* Replica placement over the snode ring.

   Snodes are numbered 0 .. n-1 and treated as a ring ordered by id. The
   replica set of a partition starts at the snode hosting its owner vnode
   and walks the ring; snodes that host members of the owner's group are
   skipped on the first pass (a group is the paper's failure-correlated
   unit: its members already share protocol state, so spreading copies
   across groups survives a group-wide outage) and only used to fill the
   set when the cluster has too few out-of-group snodes. *)

let norm ~n s = ((s mod n) + n) mod n

let replicas ~rfactor ~n ~primary ~group_snodes =
  if n <= 0 then invalid_arg "Placement.replicas: empty cluster";
  if rfactor <= 0 then invalid_arg "Placement.replicas: rfactor must be >= 1";
  let primary = norm ~n primary in
  let in_group s = List.exists (fun g -> norm ~n g = s) group_snodes in
  let preferred = ref [] and backfill = ref [] in
  for i = n - 1 downto 1 do
    let s = (primary + i) mod n in
    if in_group s then backfill := s :: !backfill
    else preferred := s :: !preferred
  done;
  let rec take k = function
    | [] -> []
    | x :: tl -> if k <= 0 then [] else x :: take (k - 1) tl
  in
  primary :: take (min rfactor n - 1) (!preferred @ !backfill)

let successor ~n ~avoid ~start =
  if n <= 0 then invalid_arg "Placement.successor: empty cluster";
  let start = norm ~n start in
  let avoided s = List.exists (fun a -> norm ~n a = s) avoid in
  let rec go i =
    if i >= n then None
    else
      let s = (start + i) mod n in
      if avoided s then go (i + 1) else Some s
  in
  go 1

let pp ppf sids =
  Format.fprintf ppf "[%a]"
    (Format.pp_print_list
       ~pp_sep:(fun ppf () -> Format.pp_print_string ppf "; ")
       Format.pp_print_int)
    sids
