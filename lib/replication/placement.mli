(** Replica placement policy.

    Each partition gets [rfactor] copies on distinct snodes of the ring
    [0 .. n-1]: the snode hosting the owner vnode first, then ring
    successors — preferring snodes {e outside} the owner's group and
    falling back to distinct in-group snodes only when the cluster is too
    small to avoid them. Placement is computed when a partition is
    (re)placed by the balancer and travels with the epoch-fenced commit;
    it is deterministic, so donors, coordinator and replicas all derive
    the same set. *)

val replicas :
  rfactor:int -> n:int -> primary:int -> group_snodes:int list -> int list
(** [replicas ~rfactor ~n ~primary ~group_snodes] is the replica set of a
    partition whose owner vnode lives on snode [primary], in a cluster of
    [n] snodes, where [group_snodes] are the snodes hosting members of
    the owner's group (the correlated-failure unit to spread away from;
    [primary] itself may appear in it). The result has
    [min rfactor n] distinct elements and starts with [primary].
    @raise Invalid_argument if [n <= 0] or [rfactor <= 0]. *)

val successor : n:int -> avoid:int list -> start:int -> int option
(** [successor ~n ~avoid ~start] walks the ring from [start + 1] and
    returns the first snode not in [avoid] — the hinted-handoff fallback
    for a crashed replica. [None] when every snode is avoided. *)

val pp : Format.formatter -> int list -> unit
