(* A mutable binary trie over the dyadic structure of the hash space.

   Every span is a dyadic cell — level [l], index [i] — so the set of
   registered spans embeds naturally in the binary tree whose node at depth
   [d] is the level-[d] cell reached by reading the top [d] bits of a hash
   index. A registered span is a [Leaf] at depth [level]; interior [Fork]
   nodes carry no binding. Lookups walk at most [level]-of-the-answer
   steps, and every update mutates the trie in place: the hot placement
   paths (routing-cache and replica-map learns during creation storms)
   allocate only the handful of nodes they actually create, instead of
   rebuilding the spine of a persistent map per eviction and re-insert. *)

type 'a node =
  | Empty
  | Leaf of { mutable v : 'a }
  | Fork of { mutable lo : 'a node; mutable hi : 'a node }

type 'a t = { space : Space.t; mutable root : 'a node; mutable card : int }

let create space = { space; root = Empty; card = 0 }
let space t = t.space
let cardinal t = t.card

(* Bit of [idx] selecting the child at depth [d] on the way to a depth-[lvl]
   cell: the bits of a span index are read most-significant first. *)
let branch ~lvl ~idx d = (idx lsr (lvl - 1 - d)) land 1 [@@inline]

let add t span v =
  let lvl = Span.level span and idx = Span.index span in
  let rec go node d =
    if d = lvl then
      match node with
      | Empty -> Leaf { v }
      | Leaf _ | Fork _ -> invalid_arg "Point_map.add: overlapping span"
    else
      match node with
      | Leaf _ -> invalid_arg "Point_map.add: overlapping span"
      | Fork f ->
          (if branch ~lvl ~idx d = 0 then f.lo <- go f.lo (d + 1)
           else f.hi <- go f.hi (d + 1));
          node
      | Empty ->
          let child = go Empty (d + 1) in
          if branch ~lvl ~idx d = 0 then Fork { lo = child; hi = Empty }
          else Fork { lo = Empty; hi = child }
  in
  let root = go t.root 0 in
  t.root <- root;
  t.card <- t.card + 1

let remove t span =
  let lvl = Span.level span and idx = Span.index span in
  let rec go node d =
    match node with
    | Empty -> raise Not_found
    | Leaf _ -> if d = lvl then Empty else raise Not_found
    | Fork f ->
        if d = lvl then raise Not_found
        else begin
          (if branch ~lvl ~idx d = 0 then f.lo <- go f.lo (d + 1)
           else f.hi <- go f.hi (d + 1));
          (* Prune forks left over both-empty so stale paths do not linger. *)
          match (f.lo, f.hi) with Empty, Empty -> Empty | _ -> node
        end
  in
  let root = go t.root 0 in
  t.root <- root;
  t.card <- t.card - 1

let find_point t p =
  if not (Space.contains t.space p) then
    invalid_arg "Point_map.find_point: point outside space";
  let bits = Space.bits t.space in
  let rec go node d idx =
    match node with
    | Empty -> raise Not_found
    | Leaf l -> (Span.make t.space ~level:d ~index:idx, l.v)
    | Fork f ->
        let bit = (p lsr (bits - 1 - d)) land 1 in
        go (if bit = 0 then f.lo else f.hi) (d + 1) ((idx lsl 1) lor bit)
  in
  go t.root 0 0

(* Raw probe for the per-hop routing path: the owner alone, with no
   [Span.make] record and no result tuple. [find_point] costs two
   allocations per probe; at cluster scale every forwarded hop pays one,
   so the hot path walks the trie and returns the leaf's value direct. *)
let find_owner_exn t p =
  if not (Space.contains t.space p) then
    invalid_arg "Point_map.find_owner_exn: point outside space";
  let bits = Space.bits t.space in
  let rec go node d =
    match node with
    | Empty -> raise Not_found
    | Leaf l -> l.v
    | Fork f ->
        go (if (p lsr (bits - 1 - d)) land 1 = 0 then f.lo else f.hi) (d + 1)
  in
  go t.root 0

(* Depth (= span level) of the leaf covering [p], as a bare int — the
   routing layer's fine-vs-coarse test, allocation-free like the raw
   probe above. *)
let probe_depth t p =
  if not (Space.contains t.space p) then
    invalid_arg "Point_map.probe_depth: point outside space";
  let bits = Space.bits t.space in
  let rec go node d =
    match node with
    | Empty -> raise Not_found
    | Leaf _ -> d
    | Fork f ->
        go (if (p lsr (bits - 1 - d)) land 1 = 0 then f.lo else f.hi) (d + 1)
  in
  go t.root 0

let replace_owner t span v =
  let lvl = Span.level span and idx = Span.index span in
  let rec go node d =
    match node with
    | Leaf l when d = lvl -> l.v <- v
    | Fork f when d < lvl ->
        go (if branch ~lvl ~idx d = 0 then f.lo else f.hi) (d + 1)
    | Empty | Leaf _ | Fork _ -> raise Not_found
  in
  go t.root 0

let split t span =
  let lvl = Span.level span and idx = Span.index span in
  (* Validates that the span is splittable at all (not at max level). *)
  ignore (Span.split t.space span);
  let rec go node d =
    match node with
    | Leaf l when d = lvl -> Fork { lo = Leaf { v = l.v }; hi = Leaf { v = l.v } }
    | Fork f when d < lvl ->
        (if branch ~lvl ~idx d = 0 then f.lo <- go f.lo (d + 1)
         else f.hi <- go f.hi (d + 1));
        node
    | Empty | Leaf _ | Fork _ -> raise Not_found
  in
  let root = go t.root 0 in
  t.root <- root;
  t.card <- t.card + 1

(* In-order collection of every leaf in [node] (rooted at depth [d], index
   [idx]), consed in front of [acc] in decreasing start order — so folding
   hi-then-lo yields an increasing-start list. *)
let rec leaves t node d idx acc =
  match node with
  | Empty -> acc
  | Leaf l -> (Span.make t.space ~level:d ~index:idx, l.v) :: acc
  | Fork f ->
      leaves t f.lo (d + 1) (idx lsl 1)
        (leaves t f.hi (d + 1) ((idx lsl 1) lor 1) acc)

let overlapping t span =
  let lvl = Span.level span and idx = Span.index span in
  let rec go node d =
    match node with
    | Empty -> []
    | Leaf l ->
        (* A registered span at or above [span]'s depth contains it. *)
        [ (Span.make t.space ~level:d ~index:(idx lsr (lvl - d)), l.v) ]
    | Fork f ->
        if d = lvl then leaves t node d idx []
        else go (if branch ~lvl ~idx d = 0 then f.lo else f.hi) (d + 1)
  in
  go t.root 0

(* Learn [span -> v] in one pass: every registered span inside [span] is
   evicted, and a coarser span met on the way down is pushed below [span]'s
   level — the sibling fragment at each step keeps the old owner, which is
   exactly the dyadic path decomposition the routing cache needs to evict a
   stale entry without ever leaving a hole. *)
let learn t span v =
  let lvl = Span.level span and idx = Span.index span in
  let rec count node =
    match node with
    | Empty -> 0
    | Leaf _ -> 1
    | Fork f -> count f.lo + count f.hi
  in
  let rec go node d =
    if d = lvl then begin
      t.card <- t.card - count node + 1;
      match node with
      | Leaf l ->
          (* Reuse the slot: the common case is refreshing one span. *)
          l.v <- v;
          node
      | Empty | Fork _ -> Leaf { v }
    end
    else
      match node with
      | Fork f ->
          (if branch ~lvl ~idx d = 0 then f.lo <- go f.lo (d + 1)
           else f.hi <- go f.hi (d + 1));
          node
      | Empty ->
          let child = go Empty (d + 1) in
          if branch ~lvl ~idx d = 0 then Fork { lo = child; hi = Empty }
          else Fork { lo = Empty; hi = child }
      | Leaf l ->
          (* Coarser entry: keep its owner on the sibling fragment and push
             the entry itself one level closer to [span]. *)
          t.card <- t.card + 1;
          let sib = Leaf { v = l.v } in
          if branch ~lvl ~idx d = 0 then
            Fork { lo = go node (d + 1); hi = sib }
          else Fork { lo = sib; hi = go node (d + 1) }
  in
  let root = go t.root 0 in
  t.root <- root

(* Every [Fork] whose two children are both leaves, reported as the parent
   span plus the two child values (lo then hi). Such a pair always exists
   in a non-trivial map: a deepest leaf's sibling cannot be a fork (it
   would hold a deeper leaf) nor empty (disjoint dyadic spans never leave
   a both-empty fork behind under [add]/[learn]; [remove] prunes them).
   Replacing the pair by one parent-level binding ([learn] at the parent
   span) shrinks the cardinality by one without opening a hole — the
   bounded routing cache's eviction step. *)
let iter_pairs t f =
  let rec go node d idx =
    match node with
    | Empty | Leaf _ -> ()
    | Fork { lo = Leaf a; hi = Leaf b } ->
        f (Span.make t.space ~level:d ~index:idx) a.v b.v
    | Fork fk ->
        go fk.lo (d + 1) (idx lsl 1);
        go fk.hi (d + 1) ((idx lsl 1) lor 1)
  in
  go t.root 0 0

let iter t f =
  let rec go node d idx =
    match node with
    | Empty -> ()
    | Leaf l -> f (Span.make t.space ~level:d ~index:idx) l.v
    | Fork fk ->
        go fk.lo (d + 1) (idx lsl 1);
        go fk.hi (d + 1) ((idx lsl 1) lor 1)
  in
  go t.root 0 0

let to_list t = leaves t t.root 0 0 []
let spans t = List.map fst (to_list t)
