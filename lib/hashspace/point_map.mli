(** Mutable map from disjoint spans to owners, with point lookup.

    This is the routing structure of the DHT: given a hash index, find the
    partition (and its owner) responsible for it in O(log n). Spans stored in
    one map must be pairwise disjoint; this is checked on insertion against
    the immediate neighbours. *)

type 'a t

val create : Space.t -> 'a t
(** An empty map over the given space. *)

val space : 'a t -> Space.t

val cardinal : 'a t -> int

val add : 'a t -> Span.t -> 'a -> unit
(** [add t span v] registers [span] with owner [v].
    @raise Invalid_argument if [span] overlaps a span already present. *)

val remove : 'a t -> Span.t -> unit
(** [remove t span] removes exactly [span].
    @raise Not_found if [span] is not present (same level and index). *)

val find_point : 'a t -> int -> Span.t * 'a
(** [find_point t p] is the registered span containing index [p] and its
    owner.
    @raise Invalid_argument if [p] lies outside the space.
    @raise Not_found if no registered span contains [p]. *)

val find_owner_exn : 'a t -> int -> 'a
(** [find_owner_exn t p] is the owner of the registered span containing
    index [p] — {!find_point} without the span: the probe walks the trie
    and returns the leaf's value directly, allocating nothing. This is the
    per-hop routing probe; at cluster scale the two allocations
    {!find_point} pays (the span record and the result tuple) dominate the
    lookup cost.
    @raise Invalid_argument if [p] lies outside the space.
    @raise Not_found if no registered span contains [p]. *)

val probe_depth : 'a t -> int -> int
(** [probe_depth t p] is the level of the registered span containing [p],
    as a bare int (allocation-free). Routing layers use it to judge
    whether a cached entry is fine enough to act on.
    @raise Invalid_argument if [p] lies outside the space.
    @raise Not_found if no registered span contains [p]. *)

val replace_owner : 'a t -> Span.t -> 'a -> unit
(** [replace_owner t span v] updates the owner of an exact registered span.
    @raise Not_found if [span] is not present. *)

val split : 'a t -> Span.t -> unit
(** [split t span] replaces the registered [span] by its two halves, both
    keeping the same owner.
    @raise Not_found if [span] is not present.
    @raise Invalid_argument if [span] is at maximum level. *)

val learn : 'a t -> Span.t -> 'a -> unit
(** [learn t span v] registers [span -> v], evicting whatever overlapped it,
    in one pass. Registered spans inside [span] are dropped; a registered
    span {e containing} [span] is decomposed along the dyadic path: each
    sibling fragment on the way down keeps the old owner, so no hole is ever
    left. This is the learn-without-holes operation routing caches and
    replica maps perform on every placement commit, done in O(level) trie
    surgery instead of an evict/re-insert churn. *)

val overlapping : 'a t -> Span.t -> (Span.t * 'a) list
(** [overlapping t span] is every registered binding whose span intersects
    [span], in increasing start order. Used by routing caches that must
    evict stale entries before learning a fresh one. *)

val iter_pairs : 'a t -> (Span.t -> 'a -> 'a -> unit) -> unit
(** [iter_pairs t f] calls [f parent lo_v hi_v] for every pair of sibling
    leaves, where [parent] is the span covering both. In a map with full
    coverage at least one such pair exists whenever the cardinality
    exceeds one, and [learn t parent v] collapses it into a single
    parent-level binding — the hole-free eviction step of a bounded
    routing cache. *)

val iter : 'a t -> (Span.t -> 'a -> unit) -> unit
(** Iterates in increasing start order. *)

val to_list : 'a t -> (Span.t * 'a) list
(** Bindings in increasing start order. *)

val spans : 'a t -> Span.t list
(** All registered spans, in increasing start order. *)
