(** Dyadic hash trees over contiguous hash ranges.

    A tree summarizes the cells whose hash points fall inside one dyadic
    {!Dht_hashspace.Span.t}: interior nodes are the binary split of their
    span (the same split rule partitions follow, §3.4), leaves are buckets
    of at most [leaf_cap] keys, and every node carries an
    order-insensitive digest — the [lxor] of its members' per-cell
    digests — plus an exact key count. Because the digest is an XOR fold,
    an interior hash is always [left lxor right] and the root digest of a
    tree equals the flat fold a full scan would produce, which is what
    lets anti-entropy mix tree frames with legacy span digests.

    The payload type ['a] is opaque to the tree (the runtime stores
    whole versioned cells so divergent leaves can be shipped without
    re-scanning the store; the property tests store [unit]). Identity is
    the caller-supplied per-cell [digest]; payloads never participate in
    hashing.

    Shape is {e canonical}: a node is interior iff its subtree holds more
    than [leaf_cap] keys (or sits at the space's maximum level, where
    splitting is impossible). {!insert} and {!remove} preserve this by
    splitting overfull leaves and collapsing underfull interior nodes, so
    a tree maintained incrementally is structurally equal to one rebuilt
    from scratch over the same cells — the invariant the incremental-
    rehash property test pins down. *)

open Dht_hashspace

type 'a t

type frame = {
  f_span : Span.t;
  f_count : int;  (** keys under [f_span] *)
  f_hash : int;  (** XOR fold of their per-cell digests *)
  f_leaf : bool;  (** no finer frames exist: resolution ended in a bucket *)
}
(** One (range, hash) summary as it rides a [Wire.Mt_*] message. *)

val create : ?leaf_cap:int -> space:Space.t -> span:Span.t -> unit -> 'a t
(** An empty tree over [span]. [leaf_cap] (default [16]) bounds bucket
    size wherever the span can still split.
    @raise Invalid_argument if [leaf_cap < 1]. *)

val build :
  ?leaf_cap:int ->
  space:Space.t ->
  span:Span.t ->
  (string * int * int * 'a) list ->
  'a t
(** [build cells] over [(key, point, digest, payload)] tuples; keys
    outside [span] are ignored. Canonical shape by construction. *)

val space : 'a t -> Space.t
val span : 'a t -> Span.t
val leaf_cap : 'a t -> int

val count : 'a t -> int
(** Total keys held. *)

val digest : 'a t -> int
(** Root hash: XOR fold of every member's per-cell digest. *)

val insert : 'a t -> key:string -> point:int -> digest:int -> 'a -> unit
(** Add or overwrite one cell, rehashing only the leaf's root path
    (O(depth)); an overfull leaf splits in place.
    @raise Invalid_argument if [point] is outside the tree's span. *)

val remove : 'a t -> key:string -> point:int -> bool
(** Drop one cell ([false] if absent); an underfull interior node
    collapses back into a bucket so the shape stays canonical. *)

val find : 'a t -> key:string -> point:int -> 'a option

val frame : 'a t -> frame
(** The root frame. *)

val frame_at : 'a t -> Span.t -> frame
(** The frame of any dyadic subrange: exact count and hash of the held
    cells inside it (zero frame when disjoint from the tree's span).
    [f_leaf] is set when the tree has nothing finer to offer — descent
    below such a frame must switch to key transfer. *)

val children : 'a t -> Span.t -> frame * frame
(** Frames of the two halves of [span] — one descent step.
    @raise Invalid_argument if [span] is at the space's max level. *)

val entries_at : 'a t -> Span.t -> (string * int * 'a) list
(** [(key, digest, payload)] of every held cell inside the subrange,
    sorted by key: the transfer set for a divergent leaf. *)

val check : 'a t -> string list
(** Structural audit, one finding per line: every interior hash must be
    recomputable as [left lxor right] (counts likewise additive), every
    bucket hash must equal the XOR of its members, every member must lie
    inside its bucket's span, and the shape must be canonical. Empty
    means consistent. *)

val equal : 'a t -> 'a t -> bool
(** Structural equality over spans, counts, hashes and bucket contents
    (keys and digests; payloads are not compared). *)

val pp_frame : Format.formatter -> frame -> unit
