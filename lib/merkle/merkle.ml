open Dht_hashspace

(* A member cell: identity is the caller-supplied digest; the payload is
   carried so a divergent leaf can be shipped without re-reading the
   backing store. *)
type 'a entry = { e_point : int; mutable e_digest : int; mutable e_payload : 'a }

type 'a node =
  | Leaf of { mutable l_hash : int; cells : (string, 'a entry) Hashtbl.t }
  | Node of {
      mutable n_count : int;
      mutable n_hash : int;
      mutable left : 'a node;
      mutable right : 'a node;
    }

type 'a t = {
  space : Space.t;
  tspan : Span.t;
  cap : int;
  mutable root : 'a node;
}

type frame = { f_span : Span.t; f_count : int; f_hash : int; f_leaf : bool }

let node_count = function Leaf l -> Hashtbl.length l.cells | Node n -> n.n_count
let node_hash = function Leaf l -> l.l_hash | Node n -> n.n_hash
let is_bucket = function Leaf _ -> true | Node _ -> false
let empty_leaf () = Leaf { l_hash = 0; cells = Hashtbl.create 8 }

let create ?(leaf_cap = 16) ~space ~span () =
  if leaf_cap < 1 then invalid_arg "Merkle.create: leaf_cap must be >= 1";
  { space; tspan = span; cap = leaf_cap; root = empty_leaf () }

let space t = t.space
let span t = t.tspan
let leaf_cap t = t.cap
let count t = node_count t.root
let digest t = node_hash t.root

(* [outer] covers [inner]: dyadic spans nest, so ancestor-or-equal is
   level order plus membership of the start point. *)
let covers space outer inner =
  Span.level outer <= Span.level inner
  && Span.contains space outer (Span.start space inner)

(* Canonical subtree over an already-deduplicated (key, entry) list:
   interior iff more keys than [cap] fit and the span can still split. *)
let rec subtree space cap sp entries =
  let n = List.length entries in
  if n <= cap || Span.level sp >= Space.max_level space then begin
    let cells = Hashtbl.create (max 8 n) in
    let h =
      List.fold_left
        (fun acc (k, e) ->
          Hashtbl.replace cells k e;
          acc lxor e.e_digest)
        0 entries
    in
    Leaf { l_hash = h; cells }
  end
  else begin
    let a, b = Span.split space sp in
    let la, lb =
      List.partition (fun (_, e) -> Span.contains space a e.e_point) entries
    in
    let left = subtree space cap a la in
    let right = subtree space cap b lb in
    Node { n_count = n; n_hash = node_hash left lxor node_hash right; left; right }
  end

let build ?(leaf_cap = 16) ~space ~span cells =
  if leaf_cap < 1 then invalid_arg "Merkle.build: leaf_cap must be >= 1";
  let dedup = Hashtbl.create (max 16 (List.length cells)) in
  List.iter
    (fun (key, point, digest, payload) ->
      if Span.contains space span point then
        Hashtbl.replace dedup key
          { e_point = point; e_digest = digest; e_payload = payload })
    cells;
  let entries = Hashtbl.fold (fun k e acc -> (k, e) :: acc) dedup [] in
  { space; tspan = span; cap = leaf_cap; root = subtree space leaf_cap span entries }

let leaf_entries l = Hashtbl.fold (fun k e acc -> (k, e) :: acc) l []

let insert t ~key ~point ~digest payload =
  if not (Span.contains t.space t.tspan point) then
    invalid_arg "Merkle.insert: point outside the tree's span";
  (* Returns the (possibly replaced) node plus the hash and count deltas
     to fold into every ancestor — an XOR digest makes the path update a
     constant-time splice per level. *)
  let rec go sp node =
    match node with
    | Leaf l -> (
        match Hashtbl.find_opt l.cells key with
        | Some e ->
            let dh = e.e_digest lxor digest in
            e.e_digest <- digest;
            e.e_payload <- payload;
            l.l_hash <- l.l_hash lxor dh;
            (node, dh, 0)
        | None ->
            Hashtbl.replace l.cells key
              { e_point = point; e_digest = digest; e_payload = payload };
            l.l_hash <- l.l_hash lxor digest;
            if
              Hashtbl.length l.cells > t.cap
              && Span.level sp < Space.max_level t.space
            then (subtree t.space t.cap sp (leaf_entries l.cells), digest, 1)
            else (node, digest, 1))
    | Node n ->
        let a, b = Span.split t.space sp in
        let child, dh, dc =
          if Span.contains t.space a point then
            let child, dh, dc = go a n.left in
            n.left <- child;
            (child, dh, dc)
          else
            let child, dh, dc = go b n.right in
            n.right <- child;
            (child, dh, dc)
        in
        ignore child;
        n.n_hash <- n.n_hash lxor dh;
        n.n_count <- n.n_count + dc;
        (node, dh, dc)
  in
  let root, _, _ = go t.tspan t.root in
  t.root <- root

let rec collect_entries node acc =
  match node with
  | Leaf l -> Hashtbl.fold (fun k e acc -> (k, e) :: acc) l.cells acc
  | Node n -> collect_entries n.left (collect_entries n.right acc)

let remove t ~key ~point =
  if not (Span.contains t.space t.tspan point) then false
  else begin
    let rec go sp node =
      match node with
      | Leaf l -> (
          match Hashtbl.find_opt l.cells key with
          | None -> (node, 0, 0, false)
          | Some e ->
              Hashtbl.remove l.cells key;
              l.l_hash <- l.l_hash lxor e.e_digest;
              (node, e.e_digest, -1, true))
      | Node n ->
          let a, b = Span.split t.space sp in
          let dh, dc, hit =
            if Span.contains t.space a point then begin
              let child, dh, dc, hit = go a n.left in
              n.left <- child;
              (dh, dc, hit)
            end
            else begin
              let child, dh, dc, hit = go b n.right in
              n.right <- child;
              (dh, dc, hit)
            end
          in
          n.n_hash <- n.n_hash lxor dh;
          n.n_count <- n.n_count + dc;
          (* Keep the shape canonical: an interior node that no longer
             exceeds the bucket cap collapses back into a leaf. *)
          if hit && n.n_count <= t.cap then
            (subtree t.space t.cap sp (collect_entries node []), dh, dc, hit)
          else (node, dh, dc, hit)
    in
    let root, _, _, hit = go t.tspan t.root in
    t.root <- root;
    hit
  end

let find t ~key ~point =
  if not (Span.contains t.space t.tspan point) then None
  else begin
    let rec go sp node =
      match node with
      | Leaf l ->
          Option.map (fun e -> e.e_payload) (Hashtbl.find_opt l.cells key)
      | Node n ->
          let a, b = Span.split t.space sp in
          if Span.contains t.space a point then go a n.left else go b n.right
    in
    go t.tspan t.root
  end

let frame t =
  {
    f_span = t.tspan;
    f_count = node_count t.root;
    f_hash = node_hash t.root;
    f_leaf = is_bucket t.root;
  }

let frame_at t q =
  if not (Span.overlap t.tspan q) then
    { f_span = q; f_count = 0; f_hash = 0; f_leaf = true }
  else if covers t.space q t.tspan then
    (* q is an ancestor (or equal): every held cell lies inside it. *)
    {
      f_span = q;
      f_count = node_count t.root;
      f_hash = node_hash t.root;
      f_leaf = is_bucket t.root;
    }
  else begin
    (* q sits strictly inside the tree's span: walk down; a bucket
       resolves any finer query by filtering its members. *)
    let rec go sp node =
      if Span.equal sp q then
        {
          f_span = q;
          f_count = node_count node;
          f_hash = node_hash node;
          f_leaf = is_bucket node;
        }
      else
        match node with
        | Leaf l ->
            let c, h =
              Hashtbl.fold
                (fun _ e (c, h) ->
                  if Span.contains t.space q e.e_point then
                    (c + 1, h lxor e.e_digest)
                  else (c, h))
                l.cells (0, 0)
            in
            { f_span = q; f_count = c; f_hash = h; f_leaf = true }
        | Node n ->
            let a, b = Span.split t.space sp in
            if Span.overlap a q then go a n.left else go b n.right
    in
    go t.tspan t.root
  end

let children t q =
  if Span.level q >= Space.max_level t.space then
    invalid_arg "Merkle.children: span is at the space's max level";
  let a, b = Span.split t.space q in
  (frame_at t a, frame_at t b)

let entries_at t q =
  let acc = ref [] in
  let visit_leaf cells =
    Hashtbl.iter
      (fun k e ->
        if Span.contains t.space q e.e_point then
          acc := (k, e.e_digest, e.e_payload) :: !acc)
      cells
  in
  let rec collect node =
    match node with
    | Leaf l -> visit_leaf l.cells
    | Node n ->
        collect n.left;
        collect n.right
  in
  let rec go sp node =
    if covers t.space q sp then collect node
    else
      match node with
      | Leaf l -> visit_leaf l.cells
      | Node n ->
          let a, b = Span.split t.space sp in
          if Span.overlap a q then go a n.left else go b n.right
  in
  if Span.overlap t.tspan q then go t.tspan t.root;
  List.sort (fun (a, _, _) (b, _, _) -> String.compare a b) !acc

let check t =
  let findings = ref [] in
  let bad fmt = Format.kasprintf (fun s -> findings := s :: !findings) fmt in
  let rec go sp node =
    match node with
    | Leaf l ->
        let h =
          Hashtbl.fold
            (fun k e acc ->
              if not (Span.contains t.space sp e.e_point) then
                bad "key %S lies outside its bucket span %a" k Span.pp sp;
              acc lxor e.e_digest)
            l.cells 0
        in
        if h <> l.l_hash then
          bad "bucket %a cached hash %d, recomputed %d" Span.pp sp l.l_hash h;
        if
          Hashtbl.length l.cells > t.cap
          && Span.level sp < Space.max_level t.space
        then
          bad "bucket %a overfull: %d keys > cap %d though splittable" Span.pp
            sp (Hashtbl.length l.cells) t.cap
    | Node n ->
        let ch = node_hash n.left lxor node_hash n.right in
        let cc = node_count n.left + node_count n.right in
        if ch <> n.n_hash then
          bad "interior %a hash %d <> left lxor right %d" Span.pp sp n.n_hash ch;
        if cc <> n.n_count then
          bad "interior %a count %d <> children sum %d" Span.pp sp n.n_count cc;
        if n.n_count <= t.cap then
          bad "interior %a holds %d <= cap %d keys: shape not canonical"
            Span.pp sp n.n_count t.cap;
        let a, b = Span.split t.space sp in
        go a n.left;
        go b n.right
  in
  go t.tspan t.root;
  List.rev !findings

let equal t1 t2 =
  Span.equal t1.tspan t2.tspan
  && t1.cap = t2.cap
  &&
  let rec eq n1 n2 =
    match (n1, n2) with
    | Leaf a, Leaf b ->
        a.l_hash = b.l_hash
        && Hashtbl.length a.cells = Hashtbl.length b.cells
        && (try
              Hashtbl.iter
                (fun k e ->
                  match Hashtbl.find_opt b.cells k with
                  | Some e' when e'.e_digest = e.e_digest -> ()
                  | _ -> raise Exit)
                a.cells;
              true
            with Exit -> false)
    | Node a, Node b ->
        a.n_count = b.n_count && a.n_hash = b.n_hash && eq a.left b.left
        && eq a.right b.right
    | _ -> false
  in
  eq t1.root t2.root

let pp_frame ppf f =
  Format.fprintf ppf "%a#%d:%x%s" Span.pp f.f_span f.f_count
    (f.f_hash land 0xffffff)
    (if f.f_leaf then "!" else "")
