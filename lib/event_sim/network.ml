type link = { base_latency : float; byte_time : float }

let link ~base_latency ~byte_time =
  if base_latency < 0. || byte_time < 0. then
    invalid_arg "Network.link: negative parameter";
  { base_latency; byte_time }

let gigabit = link ~base_latency:50e-6 ~byte_time:8e-9

type t = {
  engine : Engine.t;
  link : link;
  loopback : float;
  faults : Fault.t option;
  mutable messages : int;
  mutable bytes : int;
  mutable locals : int;
}

let create ?(loopback = 1e-6) ?faults engine link =
  if loopback < 0. then invalid_arg "Network.create: negative loopback";
  { engine; link; loopback; faults; messages = 0; bytes = 0; locals = 0 }

let faults t = t.faults

let transit_time t ~src ~dst ~bytes =
  if bytes < 0 then invalid_arg "Network.transit_time: negative size";
  if src = dst then t.loopback
  else t.link.base_latency +. (t.link.byte_time *. float_of_int bytes)

let send t ~src ~dst ~bytes k =
  let delay = transit_time t ~src ~dst ~bytes in
  if src = dst then begin
    t.locals <- t.locals + 1;
    Engine.schedule t.engine ~delay k
  end
  else begin
    t.messages <- t.messages + 1;
    t.bytes <- t.bytes + bytes;
    match t.faults with
    | None -> Engine.schedule t.engine ~delay k
    | Some f ->
        (* Loss at send time (severed link or drop roll); otherwise each
           delivery — the original and a possible injected duplicate — gets
           its own jitter, and evaporates if the destination is down when
           it lands. *)
        if not (Fault.cut f ~src ~dst) then begin
          let deliver () =
            Engine.schedule t.engine ~delay:(delay +. Fault.delay_noise f)
              (fun () -> if not (Fault.absorb f ~dst) then k ())
          in
          deliver ();
          if Fault.duplicate f then deliver ()
        end
  end

let messages t = t.messages
let bytes_sent t = t.bytes
let local_deliveries t = t.locals

let reset_counters t =
  t.messages <- 0;
  t.bytes <- 0;
  t.locals <- 0
