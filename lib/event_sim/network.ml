type link = { base_latency : float; byte_time : float }

let link ~base_latency ~byte_time =
  if base_latency < 0. || byte_time < 0. then
    invalid_arg "Network.link: negative parameter";
  { base_latency; byte_time }

let gigabit = link ~base_latency:50e-6 ~byte_time:8e-9

(* One message/byte pair, used for both the per-tag and the per-destination
   breakdowns. *)
type cell = { mutable m : int; mutable b : int }

type verdict = Pass | Defer of float | Sink

(* Per-destination ingress occupancy: messages scheduled toward the node
   but not yet landed. *)
type ingress = { mutable depth : int; mutable high_water : int }

type t = {
  engine : Engine.t;
  link : link;
  loopback : float;
  faults : Fault.t option;
  mutable messages : int;
  mutable bytes : int;
  mutable locals : int;
  mutable batches : int;
  mutable batched_parts : int;
  mutable batch_saved : int;
  mutable sites : int;
  mutable ingress_limit : int;  (* 0 = unbounded *)
  mutable overflows : int;
  mutable probe :
    (site:int -> src:int -> dst:int -> tag:string option -> verdict) option;
  tags : (string, cell) Hashtbl.t;
  dests : (int, cell) Hashtbl.t;
  ingress : (int, ingress) Hashtbl.t;
}

let create ?(loopback = 1e-6) ?faults engine link =
  if loopback < 0. then invalid_arg "Network.create: negative loopback";
  {
    engine;
    link;
    loopback;
    faults;
    messages = 0;
    bytes = 0;
    locals = 0;
    batches = 0;
    batched_parts = 0;
    batch_saved = 0;
    sites = 0;
    ingress_limit = 0;
    overflows = 0;
    probe = None;
    tags = Hashtbl.create 32;
    dests = Hashtbl.create 32;
    ingress = Hashtbl.create 32;
  }

let faults t = t.faults

let quantum t = t.link.base_latency

let transit_time t ~src ~dst ~bytes =
  if bytes < 0 then invalid_arg "Network.transit_time: negative size";
  if src = dst then t.loopback
  else t.link.base_latency +. (t.link.byte_time *. float_of_int bytes)

let account tbl key bytes =
  (match Hashtbl.find_opt tbl key with
  | Some c ->
      c.m <- c.m + 1;
      c.b <- c.b + bytes
  | None -> Hashtbl.add tbl key { m = 1; b = bytes })
  [@@inline]

let set_probe t probe = t.probe <- probe

let sites t = t.sites

let set_ingress_limit t n =
  if n < 0 then invalid_arg "Network.set_ingress_limit: negative limit";
  t.ingress_limit <- n

let ingress_cell t dst =
  match Hashtbl.find_opt t.ingress dst with
  | Some c -> c
  | None ->
      let c = { depth = 0; high_water = 0 } in
      Hashtbl.add t.ingress dst c;
      c

let ingress_depth t ~dst =
  match Hashtbl.find_opt t.ingress dst with Some c -> c.depth | None -> 0

let ingress_high_water t ~dst =
  match Hashtbl.find_opt t.ingress dst with Some c -> c.high_water | None -> 0

let max_ingress_high_water t =
  Hashtbl.fold (fun _ c acc -> max acc c.high_water) t.ingress 0

let ingress_overflows t = t.overflows

let send t ?tag ~src ~dst ~bytes k =
  let delay = transit_time t ~src ~dst ~bytes in
  if src = dst then begin
    t.locals <- t.locals + 1;
    Engine.schedule t.engine ~delay k
  end
  else begin
    t.messages <- t.messages + 1;
    t.bytes <- t.bytes + bytes;
    (match tag with Some tag -> account t.tags tag bytes | None -> ());
    account t.dests dst bytes;
    (* Every remote send is a numbered decision site; a schedule explorer's
       probe may perturb it. The verdict only shapes delivery — all the
       accounting above already counted the send. *)
    let site = t.sites in
    t.sites <- t.sites + 1;
    let verdict =
      match t.probe with None -> Pass | Some p -> p ~site ~src ~dst ~tag
    in
    match verdict with
    | Sink -> ()
    | Pass | Defer _ ->
        let delay =
          match verdict with Defer extra -> delay +. extra | _ -> delay
        in
        (* Bounded ingress: each delivery occupies one slot toward its
           destination from schedule time to landing. A delivery that would
           exceed the bound is dropped at the door and counted as an
           overflow — overload is loss, which the reliable layer turns into
           retransmissions, which is exactly the amplification loop the
           runtime's retry budgets must tame. *)
        let admit () =
          if t.ingress_limit = 0 then Some (fun () -> ())
          else begin
            let c = ingress_cell t dst in
            if c.depth >= t.ingress_limit then begin
              t.overflows <- t.overflows + 1;
              None
            end
            else begin
              c.depth <- c.depth + 1;
              if c.depth > c.high_water then c.high_water <- c.depth;
              Some (fun () -> c.depth <- c.depth - 1)
            end
          end
        in
        (match t.faults with
        | None -> (
            match admit () with
            | None -> ()
            | Some release ->
                Engine.schedule t.engine ~delay (fun () ->
                    release ();
                    k ()))
        | Some f ->
            (* Loss at send time (severed link or drop roll); otherwise each
               delivery — the original and a possible injected duplicate —
               gets its own jitter, and evaporates if the destination is down
               when it lands. A gray-failed (slow) destination stretches the
               whole delivery latency by its service-time factor. *)
            if not (Fault.cut f ~src ~dst) then begin
              let factor = Fault.slow_factor f ~dst in
              let deliver () =
                match admit () with
                | None -> ()
                | Some release ->
                    Engine.schedule t.engine
                      ~delay:((delay +. Fault.delay_noise f) *. factor)
                      (fun () ->
                        release ();
                        if not (Fault.absorb f ~dst) then k ())
              in
              deliver ();
              if Fault.duplicate f then deliver ()
            end)
  end

(* A coalesced envelope is one wire message; the transmission-batching
   layer reports how many protocol parts rode in it and how many envelope
   bytes the amortization saved versus sending each part alone. *)
let account_batch t ~parts ~saved =
  if parts < 1 || saved < 0 then
    invalid_arg "Network.account_batch: bad accounting";
  t.batches <- t.batches + 1;
  t.batched_parts <- t.batched_parts + parts;
  t.batch_saved <- t.batch_saved + saved

let messages t = t.messages
let bytes_sent t = t.bytes
let local_deliveries t = t.locals
let batches t = t.batches
let batched_parts t = t.batched_parts
let batch_bytes_saved t = t.batch_saved

let per_tag t =
  Hashtbl.fold (fun tag c acc -> (tag, c.m, c.b) :: acc) t.tags []
  |> List.sort compare

let per_destination t =
  Hashtbl.fold (fun dst c acc -> (dst, c.m, c.b) :: acc) t.dests []
  |> List.sort compare

let messages_to t ~dst =
  match Hashtbl.find_opt t.dests dst with Some c -> c.m | None -> 0

let bytes_to t ~dst =
  match Hashtbl.find_opt t.dests dst with Some c -> c.b | None -> 0

let reset_counters t =
  t.messages <- 0;
  t.bytes <- 0;
  t.locals <- 0;
  t.batches <- 0;
  t.batched_parts <- 0;
  t.batch_saved <- 0;
  t.overflows <- 0;
  (* Occupancy is live state (in-flight deliveries still hold slots), so
     only the high-water marks rebase — to the current depth, not zero. *)
  Hashtbl.iter (fun _ c -> c.high_water <- c.depth) t.ingress;
  Hashtbl.reset t.tags;
  Hashtbl.reset t.dests
