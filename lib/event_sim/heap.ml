type 'a entry = { time : float; seq : int; payload : 'a }

type 'a t = {
  mutable data : 'a entry array;
  mutable len : int;
  sentinel : 'a entry;
      (* fills every slot outside [0, len): a popped entry must not stay
         reachable through the array, or its payload closure (and whatever
         the closure captures) survives until the slot happens to be
         overwritten by a later push *)
}

let create ~dummy () =
  { data = [||]; len = 0; sentinel = { time = nan; seq = min_int; payload = dummy } }

let length t = t.len
let is_empty t = t.len = 0

let before a b = a.time < b.time || (a.time = b.time && a.seq < b.seq)

let grow t =
  let cap = Array.length t.data in
  if t.len = cap then begin
    let bigger = Array.make (max 16 (2 * cap)) t.sentinel in
    Array.blit t.data 0 bigger 0 t.len;
    t.data <- bigger
  end

let push t ~time ~seq payload =
  let entry = { time; seq; payload } in
  grow t;
  t.data.(t.len) <- entry;
  t.len <- t.len + 1;
  (* Sift up. *)
  let i = ref (t.len - 1) in
  while
    !i > 0
    &&
    let parent = (!i - 1) / 2 in
    before t.data.(!i) t.data.(parent)
  do
    let parent = (!i - 1) / 2 in
    let tmp = t.data.(!i) in
    t.data.(!i) <- t.data.(parent);
    t.data.(parent) <- tmp;
    i := parent
  done

let pop t =
  if t.len = 0 then None
  else begin
    let top = t.data.(0) in
    t.len <- t.len - 1;
    if t.len > 0 then begin
      t.data.(0) <- t.data.(t.len);
      (* Sift down. *)
      let i = ref 0 in
      let continue = ref true in
      while !continue do
        let l = (2 * !i) + 1 and r = (2 * !i) + 2 in
        let smallest = ref !i in
        if l < t.len && before t.data.(l) t.data.(!smallest) then smallest := l;
        if r < t.len && before t.data.(r) t.data.(!smallest) then smallest := r;
        if !smallest = !i then continue := false
        else begin
          let tmp = t.data.(!i) in
          t.data.(!i) <- t.data.(!smallest);
          t.data.(!smallest) <- tmp;
          i := !smallest
        end
      done
    end;
    t.data.(t.len) <- t.sentinel;
    Some (top.time, top.seq, top.payload)
  end

let peek_time t = if t.len = 0 then None else Some t.data.(0).time
