(** Cluster interconnect model.

    The paper's model targets clusters with "short (typically one-hop)
    communication paths and high bandwidth" (§5); messages therefore see a
    flat topology: a fixed per-message base latency plus a serialization
    time proportional to the payload. Local deliveries (same node) cost a
    configurable loopback latency. The network counts messages and bytes so
    protocols can be compared on traffic. *)

type link = { base_latency : float; byte_time : float }
(** One-way cost of a message of [b] bytes: [base_latency +. byte_time *. b]
    (seconds). *)

val gigabit : link
(** 50 µs base latency, 1 Gb/s serialization — a 2004-era cluster fabric. *)

val link : base_latency:float -> byte_time:float -> link
(** @raise Invalid_argument on negative parameters. *)

type t

val create : ?loopback:float -> ?faults:Fault.t -> Engine.t -> link -> t
(** [create engine link] attaches a network to the simulation engine.
    [loopback] is the latency of node-local deliveries (default 1 µs).
    When a {!Fault} plan is given, every remote delivery is subjected to
    it; without one the network is perfectly reliable, exactly as before. *)

val faults : t -> Fault.t option
(** The fault plan given at {!create}, if any. *)

val quantum : t -> float
(** One network-latency quantum: the link's base latency. The transmission
    batching layer uses it as the default linger window — a coalescing
    buffer holds traffic for at most one hop worth of latency. *)

type verdict = Pass | Defer of float | Sink
(** A schedule probe's ruling on one remote send. [Pass] delivers normally;
    [Defer d] stretches the nominal link delay by [d] seconds (jitter, if
    any, applies on top) — a bounded reordering primitive; [Sink] counts the
    send in every statistic but never schedules delivery, modelling a
    message silently lost in the fabric. *)

val set_probe :
  t ->
  (site:int -> src:int -> dst:int -> tag:string option -> verdict) option ->
  unit
(** Install (or with [None] remove) the decision-site probe. Each remote
    send — loopback deliveries are exempt — is a numbered {e decision site}:
    sites are numbered 0, 1, 2, … in send order, which is deterministic for
    a fixed seed, so a site index recorded in one run names the same send in
    a replay. The probe is consulted synchronously inside {!send}, after all
    counters have been updated; its verdict shapes only the delivery. *)

val sites : t -> int
(** Remote sends seen so far — the exclusive upper bound of the decision-site
    numbering. Counted whether or not a probe is installed. *)

val set_ingress_limit : t -> int -> unit
(** Bound every node's ingress queue: at most [n] remote deliveries may be
    in flight toward any one destination (scheduled but not yet landed).
    A delivery that would exceed the bound is dropped at the door and
    counted in {!ingress_overflows} — overload becomes loss, which the
    reliable layer turns into retransmissions. [0] (the default) leaves
    ingress unbounded, preserving the historical model exactly.
    @raise Invalid_argument on a negative limit. *)

val ingress_depth : t -> dst:int -> int
(** Deliveries currently in flight toward [dst]. *)

val ingress_high_water : t -> dst:int -> int
(** The deepest [dst]'s ingress queue has been (since the last
    {!reset_counters}, which rebases high-water marks to current depth). *)

val max_ingress_high_water : t -> int
(** The deepest any ingress queue has been — the bound the overload audit
    checks against the configured limit. *)

val ingress_overflows : t -> int
(** Deliveries refused because the destination's ingress queue was full. *)

val send :
  t -> ?tag:string -> src:int -> dst:int -> bytes:int -> (unit -> unit) -> unit
(** [send t ~src ~dst ~bytes k] delivers the message after the link delay
    and then runs [k]. Counts one message and [bytes] bytes (loopback
    deliveries count separately). When [tag] is given (protocol layers pass
    their wire-message tag, e.g. {!Dht_snode.Wire.describe}), the send is
    also accounted in the per-tag breakdown ({!per_tag}); every remote send
    is accounted per destination ({!messages_to}, {!bytes_to}). Under a
    fault plan the message may be dropped (severed link, drop roll, or
    destination down at delivery time), duplicated, or delayed by jitter;
    {e all} counters — totals, per-tag and per-destination — count the
    {e send}, whatever its fate: an injected duplicate is one send, and is
    counted by the fault plan itself ({!Fault.duplicates}), not by the
    network. A gray-failed destination ({!Fault.set_slow}) stretches the
    delivery latency by its service-time factor. Loopback deliveries are
    never subjected to faults or ingress bounds.
    @raise Invalid_argument if [bytes < 0]. *)

val transit_time : t -> src:int -> dst:int -> bytes:int -> float
(** The nominal delay {!send} would apply (excluding jitter), without
    sending. *)

val account_batch : t -> parts:int -> saved:int -> unit
(** Record that the remote message just counted by {!send} was a coalesced
    envelope carrying [parts] protocol messages, and that amortizing the
    fixed envelope cost saved [saved] bytes versus sending each part alone.
    Purely statistical — {!messages}/{!bytes_sent} are untouched.
    @raise Invalid_argument if [parts < 1] or [saved < 0]. *)

val messages : t -> int
(** Remote messages sent so far. *)

val batches : t -> int
(** Coalesced envelopes reported by {!account_batch}. *)

val batched_parts : t -> int
(** Protocol messages that travelled inside coalesced envelopes. *)

val batch_bytes_saved : t -> int
(** Envelope bytes saved by coalescing, summed over all batches. *)

val bytes_sent : t -> int
(** Remote bytes sent so far. *)

val local_deliveries : t -> int

val per_tag : t -> (string * int * int) list
(** Remote traffic broken down by the [tag] passed to {!send}:
    [(tag, messages, bytes)], sorted by tag. Untagged sends appear only in
    the totals. *)

val per_destination : t -> (int * int * int) list
(** Remote traffic per destination node: [(dst, messages, bytes)], sorted
    by destination. *)

val messages_to : t -> dst:int -> int
(** Remote messages sent toward [dst] so far. *)

val bytes_to : t -> dst:int -> int
(** Remote bytes sent toward [dst] so far. *)

val reset_counters : t -> unit
(** Zero the totals and clear the per-tag and per-destination breakdowns. *)
