type t = {
  queue : (unit -> unit) Heap.t;
  mutable clock : float;
  mutable seq : int;
  mutable dispatched : int;
  mutable max_pending : int;
}

let create () =
  { queue = Heap.create ~dummy:ignore (); clock = 0.; seq = 0; dispatched = 0;
    max_pending = 0 }

let now t = t.clock

let at t ~time f =
  if not (Float.is_finite time) then invalid_arg "Engine.at: non-finite time";
  if time < t.clock then invalid_arg "Engine.at: time in the past";
  Heap.push t.queue ~time ~seq:t.seq f;
  t.seq <- t.seq + 1;
  let len = Heap.length t.queue in
  if len > t.max_pending then t.max_pending <- len

let schedule t ~delay f =
  if not (Float.is_finite delay) || delay < 0. then
    invalid_arg "Engine.schedule: negative or non-finite delay";
  at t ~time:(t.clock +. delay) f

(* Cancellable timers: cancellation marks the handle dead; the queue entry
   stays and fires as a no-op (lazy deletion keeps the heap simple). *)
type handle = { mutable state : [ `Pending | `Fired | `Cancelled ] }

let schedule_cancellable t ~delay f =
  let h = { state = `Pending } in
  schedule t ~delay (fun () ->
      if h.state = `Pending then begin
        h.state <- `Fired;
        f ()
      end);
  h

let cancel h = if h.state = `Pending then h.state <- `Cancelled
let is_pending h = h.state = `Pending

(* Reusable timer slots: one callback closure and one trampoline are
   allocated when the slot is created; re-arming only pushes a queue entry.
   Lazy deletion again — a stale entry fires as a no-op because either the
   slot is disarmed or the clock has not reached the latest deadline. *)
type timer = {
  tm_engine : t;
  tm_cb : unit -> unit;
  mutable deadline : float;
  mutable tm_armed : bool;
  mutable trampoline : unit -> unit;
}

let timer t f =
  let tm =
    { tm_engine = t; tm_cb = f; deadline = 0.; tm_armed = false;
      trampoline = ignore }
  in
  tm.trampoline <-
    (fun () ->
      if tm.tm_armed && t.clock >= tm.deadline then begin
        tm.tm_armed <- false;
        tm.tm_cb ()
      end);
  tm

let arm tm ~delay =
  if not (Float.is_finite delay) || delay < 0. then
    invalid_arg "Engine.arm: negative or non-finite delay";
  let t = tm.tm_engine in
  tm.deadline <- t.clock +. delay;
  tm.tm_armed <- true;
  at t ~time:tm.deadline tm.trampoline

let disarm tm = tm.tm_armed <- false
let armed tm = tm.tm_armed

let pending t = Heap.length t.queue
let dispatched t = t.dispatched
let max_pending t = t.max_pending

let step t =
  match Heap.pop t.queue with
  | None -> false
  | Some (time, _, f) ->
      t.clock <- time;
      t.dispatched <- t.dispatched + 1;
      f ();
      true

let run ?(until = infinity) ?(max_events = max_int) t =
  let dispatched = ref 0 in
  let continue = ref true in
  while !continue && !dispatched < max_events do
    match Heap.peek_time t.queue with
    | Some time when time <= until ->
        ignore (step t);
        incr dispatched
    | Some _ | None -> continue := false
  done
