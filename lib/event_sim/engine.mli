(** Discrete-event simulation engine.

    The engine owns a virtual clock and an event queue. Callbacks scheduled
    at a virtual time run in [(time, insertion)] order; a callback may
    schedule further events. Time never flows backwards. *)

type t

val create : unit -> t
(** A fresh engine at time 0. *)

val now : t -> float
(** Current virtual time (seconds by convention). *)

val schedule : t -> delay:float -> (unit -> unit) -> unit
(** [schedule t ~delay f] runs [f] at [now t +. delay].
    @raise Invalid_argument if [delay < 0.] or is not finite. *)

val at : t -> time:float -> (unit -> unit) -> unit
(** [at t ~time f] runs [f] at absolute virtual [time].
    @raise Invalid_argument if [time] is in the past or not finite. *)

type handle
(** A cancellable timer. *)

val schedule_cancellable : t -> delay:float -> (unit -> unit) -> handle
(** Like {!schedule}, but the returned handle lets the caller retract the
    callback. Cancellation is lazy: the queue entry remains and is
    dispatched as a no-op at its scheduled time (so {!pending} still counts
    it and {!run} still advances the clock over it). *)

val cancel : handle -> unit
(** Retract a timer. Cancelling one that already fired (or was already
    cancelled) is a no-op. *)

val is_pending : handle -> bool
(** [true] while the timer has neither fired nor been cancelled. *)

type timer
(** A reusable cancellable timer slot. Where {!schedule_cancellable}
    allocates a fresh closure and handle per arming, a [timer] allocates
    its callback and trampoline once; {!arm} only pushes a queue entry.
    Hot retransmission paths re-arm the same slot for every backoff. *)

val timer : t -> (unit -> unit) -> timer
(** A disarmed slot bound to [t] that will run the callback when an arming
    fires. *)

val arm : timer -> delay:float -> unit
(** Schedule (or reschedule) the slot to fire at [now + delay]. Re-arming
    supersedes any earlier pending arming (lazy deletion: the stale queue
    entry dispatches as a no-op).
    @raise Invalid_argument if [delay < 0.] or is not finite. *)

val disarm : timer -> unit
(** Retract the pending arming, if any. The slot stays reusable. *)

val armed : timer -> bool
(** [true] while an arming is pending. *)

val pending : t -> int
(** Events not yet dispatched. *)

val dispatched : t -> int
(** Events dispatched since {!create} (cancelled timers included: their
    no-op queue entries are still dispatched). *)

val max_pending : t -> int
(** High-water mark of the event-queue depth — the telemetry layer exposes
    it as a gauge to spot event storms. *)

val run : ?until:float -> ?max_events:int -> t -> unit
(** Dispatches events in order until the queue drains, the next event lies
    beyond [until], or [max_events] have been dispatched. The clock advances
    to each dispatched event's time. *)

val step : t -> bool
(** Dispatches exactly one event; [false] if the queue was empty. *)
