(** Internal binary min-heap keyed by [(time, sequence)].

    The sequence number makes the pop order deterministic (FIFO among
    equal-time events), which the engine relies on for reproducibility. *)

type 'a t

val create : dummy:'a -> unit -> 'a t
(** [dummy] fills vacated slots so popped payloads become unreachable as
    soon as they leave the heap. Pass any cheap inert value ([ignore] for
    thunks); it is the only payload the heap may keep alive while empty. *)

val length : 'a t -> int

val is_empty : 'a t -> bool

val push : 'a t -> time:float -> seq:int -> 'a -> unit

val pop : 'a t -> (float * int * 'a) option
(** Removes and returns the event with the smallest [(time, seq)]. The
    vacated slot is overwritten with the dummy entry — a popped payload is
    never pinned by the backing array. *)

val peek_time : 'a t -> float option
