(** Seeded fault-injection plan for the simulated cluster network.

    A plan bundles the failure model one run is subjected to: independent
    per-message drop and duplication probabilities, uniform latency jitter,
    severed links (partitions), and a crash-stop/restart schedule per snode.
    {!Network.send} consults the plan on every remote message; the runtime
    layers (reliable delivery, crash recovery) consume the crash schedule
    and the down-set. All randomness comes from an internal generator seeded
    at {!create}, so faulty runs stay reproducible bit-for-bit.

    Drop/duplication/jitter rates are mutable so an experiment can turn
    faults off mid-run ("faults cease") and watch the system converge. *)

type t

val create :
  ?drop:float ->
  ?duplicate:float ->
  ?jitter:float ->
  ?crashes:(int * float * float) list ->
  seed:int ->
  unit ->
  t
(** [create ~seed ()] builds a fault plan. [drop] and [duplicate] are
    per-message probabilities (default 0); [jitter] is the maximum extra
    delivery latency in seconds, drawn uniformly per delivery (default 0);
    [crashes] lists [(snode, at, back_at)] crash-stop/restart windows in
    virtual time (consumed by the runtime hosting the snodes). Windows are
    half-open [\[at, back_at)]: two windows for the same snode may share an
    endpoint but must not overlap (a second overlapping window would
    silently shadow the first), and duplicates are rejected.
    @raise Invalid_argument on probabilities outside [0, 1], negative
    jitter, crash windows without [0 <= at < back_at], or overlapping or
    duplicate crash windows for the same snode. *)

(** {2 Mutable fault rates} *)

val set_drop : t -> float -> unit
val set_duplicate : t -> float -> unit
val set_jitter : t -> float -> unit

(** {2 Topology state} *)

val sever : t -> int -> int -> unit
(** Cut the (symmetric) link between two nodes: messages in both directions
    are dropped until {!heal}. *)

val heal : t -> int -> int -> unit
(** Undo a {!sever}. Healing a pair that was never severed is an explicit
    no-op — callers healing whole neighbourhoods need not track which links
    were actually cut. *)

val severed : t -> int -> int -> bool

val sever_oneway : t -> src:int -> dst:int -> unit
(** Cut only the [src -> dst] direction: an asymmetric (gray) link fault.
    Traffic from [dst] to [src] still flows. Independent of the symmetric
    {!sever} table — {!cut} drops a message when either applies. *)

val heal_oneway : t -> src:int -> dst:int -> unit
(** Undo a {!sever_oneway}; a no-op when the direction was never cut. *)

val severed_oneway : t -> src:int -> dst:int -> bool

val set_slow : t -> int -> float -> unit
(** [set_slow t s factor] marks snode [s] as gray-failed: it still
    processes every message, but with service time inflated by [factor]
    (the network stretches the delivery latency of traffic landing on [s]
    by the factor). [factor] must be finite and [>= 1]; setting again
    replaces the previous factor.
    @raise Invalid_argument on a factor below 1, a non-finite factor, or a
    negative snode. *)

val clear_slow : t -> int -> unit
(** Restore normal service time for a snode; a no-op when it was not slow. *)

val slow_factor : t -> dst:int -> float
(** The service-time factor for deliveries landing on [dst]: the value set
    by {!set_slow}, or [1.] when the snode is healthy. Consulted by
    {!Network.send} on every remote delivery. *)

val is_slow : t -> int -> bool

val set_down : t -> int -> unit
(** Mark a node crashed: deliveries to it are absorbed (dropped and
    counted) until {!set_up}. *)

val set_up : t -> int -> unit
val is_down : t -> int -> bool

val crash_plan : t -> (int * float * float) list
(** The [(snode, at, back_at)] schedule given at {!create}. *)

(** {2 Network hooks} — called by {!Network.send}. Each call may advance the
    internal generator and bump the counters. *)

val cut : t -> src:int -> dst:int -> bool
(** [true] when the message is to be dropped at send time (severed link or
    drop roll); counted in {!drops}. *)

val duplicate : t -> bool
(** [true] when the message is to be delivered twice; counted in
    {!duplicates}. *)

val delay_noise : t -> float
(** Extra delivery latency, uniform in [\[0, jitter)]. *)

val absorb : t -> dst:int -> bool
(** [true] when [dst] is down at delivery time: the message vanishes;
    counted in {!drops}. *)

(** {2 Counters} *)

val drops : t -> int
(** Messages lost so far (drop rolls, severed links, deliveries absorbed by
    a down node). *)

val duplicates : t -> int
(** Extra deliveries injected so far. *)
