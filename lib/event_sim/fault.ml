module Rng = Dht_prng.Rng

type t = {
  rng : Rng.t;
  mutable drop_p : float;
  mutable dup_p : float;
  mutable jitter : float;
  severed : (int * int, unit) Hashtbl.t;
  down : (int, unit) Hashtbl.t;
  crash_plan : (int * float * float) list;
  mutable drops : int;
  mutable duplicates : int;
}

let check_probability name p =
  if not (Float.is_finite p) || p < 0. || p > 1. then
    invalid_arg (Printf.sprintf "Fault.%s: probability outside [0, 1]" name)

let check_jitter j =
  if not (Float.is_finite j) || j < 0. then
    invalid_arg "Fault.jitter: negative or non-finite"

let create ?(drop = 0.) ?(duplicate = 0.) ?(jitter = 0.) ?(crashes = []) ~seed
    () =
  check_probability "drop" drop;
  check_probability "duplicate" duplicate;
  check_jitter jitter;
  List.iter
    (fun (snode, at, back_at) ->
      if snode < 0 then invalid_arg "Fault.create: negative snode in crash plan";
      if not (Float.is_finite at) || not (Float.is_finite back_at) || at < 0.
         || back_at <= at
      then invalid_arg "Fault.create: crash plan needs 0 <= at < back_at")
    crashes;
  {
    rng = Rng.of_int seed;
    drop_p = drop;
    dup_p = duplicate;
    jitter;
    severed = Hashtbl.create 8;
    down = Hashtbl.create 8;
    crash_plan = crashes;
    drops = 0;
    duplicates = 0;
  }

let set_drop t p =
  check_probability "set_drop" p;
  t.drop_p <- p

let set_duplicate t p =
  check_probability "set_duplicate" p;
  t.dup_p <- p

let set_jitter t j =
  check_jitter j;
  t.jitter <- j

let crash_plan t = t.crash_plan

(* Links are symmetric: store the endpoint pair normalized. *)
let key a b = if a <= b then (a, b) else (b, a)

let sever t a b = Hashtbl.replace t.severed (key a b) ()
let heal t a b = Hashtbl.remove t.severed (key a b)
let severed t a b = Hashtbl.mem t.severed (key a b)

let set_down t s = Hashtbl.replace t.down s ()
let set_up t s = Hashtbl.remove t.down s
let is_down t s = Hashtbl.mem t.down s

let cut t ~src ~dst =
  if severed t src dst then begin
    t.drops <- t.drops + 1;
    true
  end
  else if t.drop_p > 0. && Rng.float t.rng < t.drop_p then begin
    t.drops <- t.drops + 1;
    true
  end
  else false

let duplicate t =
  if t.dup_p > 0. && Rng.float t.rng < t.dup_p then begin
    t.duplicates <- t.duplicates + 1;
    true
  end
  else false

let delay_noise t = if t.jitter > 0. then Rng.float t.rng *. t.jitter else 0.

let absorb t ~dst =
  if is_down t dst then begin
    t.drops <- t.drops + 1;
    true
  end
  else false

let drops t = t.drops
let duplicates t = t.duplicates
