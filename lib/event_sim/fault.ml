module Rng = Dht_prng.Rng

type t = {
  rng : Rng.t;
  mutable drop_p : float;
  mutable dup_p : float;
  mutable jitter : float;
  severed : (int * int, unit) Hashtbl.t;
  oneway : (int * int, unit) Hashtbl.t;  (* directed (src, dst) *)
  slow : (int, float) Hashtbl.t;  (* snode -> service-time factor, > 1 *)
  down : (int, unit) Hashtbl.t;
  crash_plan : (int * float * float) list;
  mutable drops : int;
  mutable duplicates : int;
}

let check_probability name p =
  if not (Float.is_finite p) || p < 0. || p > 1. then
    invalid_arg (Printf.sprintf "Fault.%s: probability outside [0, 1]" name)

let check_jitter j =
  if not (Float.is_finite j) || j < 0. then
    invalid_arg "Fault.jitter: negative or non-finite"

(* Two windows for the same snode must not overlap (a second window would
   silently shadow the first in the runtime's restart scheduling), and
   exact duplicates are rejected for the same reason. Windows are half-open
   [at, back_at), so one may start exactly when another ends. *)
let check_crash_plan crashes =
  List.iter
    (fun (snode, at, back_at) ->
      if snode < 0 then invalid_arg "Fault.create: negative snode in crash plan";
      if not (Float.is_finite at) || not (Float.is_finite back_at) || at < 0.
         || back_at <= at
      then invalid_arg "Fault.create: crash plan needs 0 <= at < back_at")
    crashes;
  let rec overlaps = function
    | [] -> ()
    | (s, at, back_at) :: rest ->
        List.iter
          (fun (s', at', back_at') ->
            if s = s' && at < back_at' && at' < back_at then
              invalid_arg
                (Printf.sprintf
                   "Fault.create: overlapping crash windows for snode %d \
                    ([%g, %g) and [%g, %g))"
                   s at back_at at' back_at'))
          rest;
        overlaps rest
  in
  overlaps crashes

let create ?(drop = 0.) ?(duplicate = 0.) ?(jitter = 0.) ?(crashes = []) ~seed
    () =
  check_probability "drop" drop;
  check_probability "duplicate" duplicate;
  check_jitter jitter;
  check_crash_plan crashes;
  {
    rng = Rng.of_int seed;
    drop_p = drop;
    dup_p = duplicate;
    jitter;
    severed = Hashtbl.create 8;
    oneway = Hashtbl.create 8;
    slow = Hashtbl.create 8;
    down = Hashtbl.create 8;
    crash_plan = crashes;
    drops = 0;
    duplicates = 0;
  }

let set_drop t p =
  check_probability "set_drop" p;
  t.drop_p <- p

let set_duplicate t p =
  check_probability "set_duplicate" p;
  t.dup_p <- p

let set_jitter t j =
  check_jitter j;
  t.jitter <- j

let crash_plan t = t.crash_plan

(* Links are symmetric: store the endpoint pair normalized. *)
let key a b = if a <= b then (a, b) else (b, a)

let sever t a b = Hashtbl.replace t.severed (key a b) ()

(* Healing a pair that was never severed is an explicit no-op: Hashtbl.remove
   on an absent key changes nothing, and callers (recovery sweeps healing
   whole neighbourhoods) rely on that. *)
let heal t a b = Hashtbl.remove t.severed (key a b)
let severed t a b = Hashtbl.mem t.severed (key a b)

(* One-way faults are directed: only src -> dst traffic is cut. *)
let sever_oneway t ~src ~dst = Hashtbl.replace t.oneway (src, dst) ()
let heal_oneway t ~src ~dst = Hashtbl.remove t.oneway (src, dst)
let severed_oneway t ~src ~dst = Hashtbl.mem t.oneway (src, dst)

let set_slow t s factor =
  if not (Float.is_finite factor) || factor < 1. then
    invalid_arg "Fault.set_slow: factor must be finite and >= 1";
  if s < 0 then invalid_arg "Fault.set_slow: negative snode";
  Hashtbl.replace t.slow s factor

let clear_slow t s = Hashtbl.remove t.slow s
let slow_factor t ~dst = Option.value ~default:1. (Hashtbl.find_opt t.slow dst)
let is_slow t s = Hashtbl.mem t.slow s

let set_down t s = Hashtbl.replace t.down s ()
let set_up t s = Hashtbl.remove t.down s
let is_down t s = Hashtbl.mem t.down s

let cut t ~src ~dst =
  if severed t src dst || severed_oneway t ~src ~dst then begin
    t.drops <- t.drops + 1;
    true
  end
  else if t.drop_p > 0. && Rng.float t.rng < t.drop_p then begin
    t.drops <- t.drops + 1;
    true
  end
  else false

let duplicate t =
  if t.dup_p > 0. && Rng.float t.rng < t.dup_p then begin
    t.duplicates <- t.duplicates + 1;
    true
  end
  else false

let delay_noise t = if t.jitter > 0. then Rng.float t.rng *. t.jitter else 0.

let absorb t ~dst =
  if is_down t dst then begin
    t.drops <- t.drops + 1;
    true
  end
  else false

let drops t = t.drops
let duplicates t = t.duplicates
