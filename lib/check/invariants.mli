(** The paper's invariants as pure predicates.

    Every check returns a list of structured findings — empty means the
    invariant battery holds. Model-level checks (over {!Dht_core.Local_dht}
    and {!Dht_core.Global_dht}) delegate to {!Dht_core.Audit} and lift its
    messages; snapshot-level checks re-derive the same battery from a
    {!Dht_snode.Runtime.View}, the canonical export of the distributed
    state.

    Invariant names follow the paper: G1/G1' (partitions tile [R_h]
    exactly), G2/G2' (group partition total a power of two), G3/G3' (all
    partitions at the group's split level), G4/G4'
    ([Pmin <= Pv <= Pmax = 2·Pmin]), G5/G5' (power-of-two vnode population
    implies equal counts), L1 (groups partition the vnode set), L2
    ([Vmin <= Vg <= Vmax = 2·Vmin], group 0 exempt while sole), plus
    [LPDR] (copy agreement and quota-vs-ownership consistency), [quota]
    (ΣQv = 1), [cache]/[rmap] (full routing coverage) and [data] (keys
    live at their owner). *)

open Dht_core
module Runtime := Dht_snode.Runtime

type finding = { inv : string;  (** invariant name, e.g. ["G4"] *) detail : string }

val pp_finding : Format.formatter -> finding -> unit

val to_strings : finding list -> string list

val of_messages : string list -> finding list
(** Lift ["G4: ..."]-style audit messages into structured findings. *)

val check_local : Local_dht.t -> finding list
(** G1'-G5', L1, L2 and quota conservation over the local-model oracle
    ({!Dht_core.Audit.check_local}). *)

val check_global : Global_dht.t -> finding list
(** G1-G5 over the global-model oracle ({!Dht_core.Audit.check_global}). *)

val check_snode :
  space:Dht_hashspace.Space.t -> Runtime.View.snode_view -> finding list
(** The per-snode subset that holds at {e every} instant, including while
    a balancing commit is fanning out: routing-cache and replica-map
    coverage, and data placement. Safe from a
    {!Dht_snode.Runtime.set_on_commit} hook. *)

val check_view :
  space:Dht_hashspace.Space.t ->
  pmin:int ->
  vmax:int ->
  Runtime.View.t ->
  finding list
(** The full battery over one cluster snapshot: G1', LPDR agreement
    across live snodes' copies, G2'-G5', L1, L2, quota conservation, and
    {!check_snode} on every live snode. Meaningful at quiescence — LPDR
    copies legitimately diverge while a commit is in flight. *)

val check_runtime : Runtime.t -> finding list
(** {!check_view} over [Runtime.view rt] with the runtime's own
    parameters. *)

val check_overload : Runtime.t -> finding list
(** Queue-discipline audit of the graceful-degradation layer
    ({!Dht_snode.Runtime.queue_audit}): every bounded per-peer window
    holds at most [max_inflight] live entries and the window counters
    match the outbox contents exactly. Findings carry the ["overload"]
    invariant name. Valid at any instant. *)

val check_merkle : Runtime.t -> finding list
(** Hash-tree consistency audit ({!Dht_snode.Runtime.merkle_audit}):
    every live snode's freshly built snapshot tree must pass the
    structural check — interior hashes recomputable as the XOR of their
    children, counts additive, canonical shape — and its frame for every
    replicated partition span must equal the flat scan digest of that
    span. Findings carry the ["MERKLE"] invariant name. Valid at any
    instant (the audit builds its own snapshot). *)

val check_balance : ?acked:string list -> Runtime.t -> finding list
(** Active-balancing audit: the full {!check_runtime} battery — a
    hot-partition swap moves only placement, so G1–G5/L1–L2, LPDR
    agreement, quota conservation, coverage and data placement must all
    still hold after any number of swaps — plus a durability oracle over
    [acked]: every key whose write was acknowledged must still resolve at
    its owner's authoritative copy ({!Dht_snode.Runtime.peek}); a key
    that does not is a ["balance"] finding (the transfer lost data
    mid-flight). Meaningful at quiescence. *)
