module Engine = Dht_event_sim.Engine
module Network = Dht_event_sim.Network
module Runtime = Dht_snode.Runtime
module Rng = Dht_prng.Rng

type scenario = {
  name : string;
  build : seed:int -> Runtime.t;
  drive : Runtime.t -> unit;
  verify : Runtime.t -> string list;
}

type outcome = {
  schedule : Schedule.t;
  failures : string list;
  sites : int;
  snodes : int;
}

(* Execute one schedule: build the scenario's runtime for the schedule's
   seed, install a probe that applies the tweaks at their decision sites,
   drive the workload to quiescence and verify. The probe consumes no
   randomness and schedules its side effects through the engine, so the
   run is a pure function of (scenario, schedule). *)
let run sc (sched : Schedule.t) =
  let rt = sc.build ~seed:sched.seed in
  let engine = Runtime.engine rt in
  let net = Runtime.network rt in
  let by_site = Hashtbl.create 8 in
  List.iter
    (fun p ->
      let s = Schedule.site p in
      Hashtbl.replace by_site s
        (p :: Option.value ~default:[] (Hashtbl.find_opt by_site s)))
    sched.tweaks;
  let probe ~site ~src:_ ~dst:_ ~tag:_ =
    match Hashtbl.find_opt by_site site with
    | None -> Network.Pass
    | Some ps ->
        (* Side effects first (scheduled, never synchronous — the probe
           runs inside [Network.send] and must not reenter the runtime). *)
        List.iter
          (function
            | Schedule.Crash { snode; down; _ } ->
                Engine.schedule engine ~delay:0. (fun () ->
                    Runtime.crash_snode rt snode;
                    Engine.schedule engine ~delay:down (fun () ->
                        Runtime.restart_snode rt snode))
            | Schedule.Flush _ ->
                Engine.schedule engine ~delay:0. (fun () ->
                    Runtime.flush_lingering rt)
            | Schedule.Delay _ | Schedule.Drop _ -> ())
          ps;
        if List.exists (function Schedule.Drop _ -> true | _ -> false) ps
        then Network.Sink
        else
          let d =
            List.fold_left
              (fun acc -> function
                | Schedule.Delay { by; _ } -> acc +. by
                | _ -> acc)
              0. ps
          in
          if d > 0. then Network.Defer d else Network.Pass
  in
  Network.set_probe net (Some probe);
  (* A perturbed run may trip a runtime canary (e.g. the routing
     convergence bound under mutation-mode message loss); that IS a
     detected failure, not a checker crash. *)
  let aborted =
    try
      sc.drive rt;
      Runtime.run rt;
      None
    with e -> Some (Printexc.to_string e)
  in
  Network.set_probe net None;
  let failures =
    match aborted with
    | Some msg -> [ "exception: " ^ msg ]
    | None -> (
        try sc.verify rt
        with e -> [ "exception in verify: " ^ Printexc.to_string e ])
  in
  {
    schedule = sched;
    failures;
    sites = Network.sites net;
    snodes = Runtime.snode_count rt;
  }

(* Greedy shrinking: repeatedly drop the first tweak whose removal keeps
   the schedule failing, to a fixpoint. The result is 1-minimal — every
   remaining tweak is necessary for the failure. *)
let shrink sc (sched : Schedule.t) =
  let failing s = (run sc s).failures <> [] in
  let rec fixpoint (s : Schedule.t) =
    let n = List.length s.tweaks in
    let rec try_rm i =
      if i >= n then None
      else
        let cand =
          { s with Schedule.tweaks = List.filteri (fun j _ -> j <> i) s.tweaks }
        in
        if failing cand then Some cand else try_rm (i + 1)
    in
    match try_rm 0 with Some s' -> fixpoint s' | None -> s
  in
  if failing sched then fixpoint sched else sched

type kind = [ `Delay | `Drop | `Crash | `Flush ]

let random_tweaks rng ~kinds ~max_tweaks ~sites ~snodes ~delay_scale
    ~down_time =
  let kinds = Array.of_list kinds in
  let n = 1 + Rng.int rng max_tweaks in
  List.init n (fun _ ->
      let site = Rng.int rng (max 1 sites) in
      match kinds.(Rng.int rng (Array.length kinds)) with
      | `Delay ->
          Schedule.Delay
            { site; by = delay_scale *. float_of_int (1 + Rng.int rng 100) /. 100. }
      | `Drop -> Schedule.Drop { site }
      | `Crash ->
          Schedule.Crash { site; snode = Rng.int rng (max 1 snodes); down = down_time }
      | `Flush -> Schedule.Flush { site })

(* Sweep seeds; for each, measure the unperturbed run's decision-site
   count, then try [rounds] deterministically-random tweak sets drawn
   from it. The first failing schedule is shrunk and returned. A seed
   whose {e baseline} already fails is returned as-is (empty tweak list)
   — the bug needs no adversary. [on_progress] sees every run. *)
let explore ?(rounds = 20) ?(max_tweaks = 4) ?(delay_scale = 5e-3)
    ?(down_time = 0.05) ?(kinds = ([ `Delay; `Drop; `Crash; `Flush ] : kind list))
    ?on_progress sc ~seeds =
  let note o = match on_progress with Some f -> f o | None -> () in
  let found = ref None in
  (try
     List.iter
       (fun seed ->
         let base = { Schedule.seed; scenario = sc.name; tweaks = [] } in
         let b = run sc base in
         note b;
         if b.failures <> [] then begin
           found := Some b;
           raise Exit
         end;
         (* Deterministic exploration stream per (scenario, seed). *)
         let rng = Rng.of_int ((seed * 1000003) lxor Hashtbl.hash sc.name) in
         for _round = 1 to rounds do
           if !found = None then begin
             let tweaks =
               random_tweaks rng ~kinds ~max_tweaks ~sites:b.sites
                 ~snodes:b.snodes ~delay_scale ~down_time
             in
             let o = run sc { base with tweaks } in
             note o;
             if o.failures <> [] then begin
               let shrunk = shrink sc o.schedule in
               let final = run sc shrunk in
               found := Some final;
               raise Exit
             end
           end
         done)
       seeds;
     !found
   with Exit -> !found)
