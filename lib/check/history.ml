module Runtime = Dht_snode.Runtime

type op =
  | Put of { key : string; value : string }
  | Get of { key : string; result : string option }

type entry = {
  token : int;
  session : int;
  op : op;
  inv : float;
  ret : float option;
  failed : bool;
  shed : bool;
}

let key e = match e.op with Put { key; _ } | Get { key; _ } -> key
let completed e = e.ret <> None

type cell = { mutable e : entry }

type t = {
  tbl : (int, cell) Hashtbl.t;
  mutable order : int list;  (* invoke order, newest first *)
}

let create () = { tbl = Hashtbl.create 64; order = [] }

let feed t (ev : Runtime.Oplog.event) =
  match ev with
  | Invoke { token; via; op; at } ->
      let op =
        match op with
        | Runtime.Oplog.Op_put { key; value } -> Put { key; value }
        | Runtime.Oplog.Op_get { key } -> Get { key; result = None }
      in
      let e =
        {
          token;
          session = via;
          op;
          inv = at;
          ret = None;
          failed = false;
          shed = false;
        }
      in
      Hashtbl.replace t.tbl token { e };
      t.order <- token :: t.order
  | Ack { token; at } -> (
      match Hashtbl.find_opt t.tbl token with
      | Some c -> c.e <- { c.e with ret = Some at }
      | None -> ())
  | Reply { token; value; at } -> (
      match Hashtbl.find_opt t.tbl token with
      | Some c ->
          let op =
            match c.e.op with
            | Get { key; _ } -> Get { key; result = value }
            | Put _ as p -> p
          in
          c.e <- { c.e with ret = Some at; op }
      | None -> ())
  | Fail { token; at = _ } -> (
      match Hashtbl.find_opt t.tbl token with
      | Some c -> c.e <- { c.e with failed = true }
      | None -> ())
  | Busy { token; at = _ } -> (
      (* Shed by admission control: failed, and additionally guaranteed
         to have had no effect anywhere. *)
      match Hashtbl.find_opt t.tbl token with
      | Some c -> c.e <- { c.e with failed = true; shed = true }
      | None -> ())

let attach t rt = Runtime.set_recorder rt (Some (feed t))

let entries t =
  List.rev_map (fun token -> (Hashtbl.find t.tbl token).e) t.order

let by_key es =
  let tbl = Hashtbl.create 16 in
  List.iter
    (fun e ->
      let k = key e in
      Hashtbl.replace tbl k (e :: Option.value ~default:[] (Hashtbl.find_opt tbl k)))
    es;
  Hashtbl.fold (fun k es acc -> (k, List.rev es) :: acc) tbl []
  |> List.sort (fun (a, _) (b, _) -> String.compare a b)

let pp_entry ppf e =
  let status =
    match (e.ret, e.shed, e.failed) with
    | Some _, _, _ -> "ok"
    | None, true, _ -> "shed"
    | None, false, true -> "failed"
    | None, false, false -> "pending"
  in
  match e.op with
  | Put { key; value } ->
      Format.fprintf ppf "#%d s%d put %s=%s [%s]" e.token e.session key value
        status
  | Get { key; result } ->
      Format.fprintf ppf "#%d s%d get %s -> %s [%s]" e.token e.session key
        (match result with Some v -> v | None -> "none")
        status
