open Dht_core
open Dht_hashspace
module Runtime = Dht_snode.Runtime
module Hash = Dht_hashes.Hash

type finding = { inv : string; detail : string }

let pp_finding ppf f = Format.fprintf ppf "%s: %s" f.inv f.detail
let to_strings fs = List.map (Format.asprintf "%a" pp_finding) fs

(* The oracle-model auditor emits "G4: ..."-style messages; lift the prefix
   back out so findings stay addressable by invariant name. *)
let of_message msg =
  match String.index_opt msg ':' with
  | Some i when i > 0 && i < 16 ->
      {
        inv = String.sub msg 0 i;
        detail =
          String.sub msg (i + 1) (String.length msg - i - 1) |> String.trim;
      }
  | Some _ | None -> { inv = "audit"; detail = msg }

let of_messages = List.map of_message

let check_local dht =
  match Audit.check_local dht with Ok () -> [] | Error m -> of_messages m

let check_global dht =
  match Audit.check_global dht with Ok () -> [] | Error m -> of_messages m

(* ------------------------------------------------------------------ *)
(* Pure predicates over runtime snapshots                               *)

(* Per-snode checks that hold at every instant, including mid-event — safe
   to run from a per-commit hook. Cluster-wide invariants (LPDR agreement,
   global coverage) legitimately flux while a commit fans out. *)
let check_snode ~space (sn : Runtime.View.snode_view) =
  let issues = ref [] in
  let fail inv fmt = Format.kasprintf (fun d -> issues := { inv; detail = d } :: !issues) fmt in
  (* The routing cache must always cover the whole range — a hole would
     strand routed operations. *)
  (match Coverage.check space (List.map fst sn.cache) with
  | Ok () -> ()
  | Error e ->
      fail "cache" "snode %d routing cache: %a" sn.sid Coverage.pp_error e);
  (* The replica map covers the whole range too (it routes quorum ops). *)
  (match Coverage.check space (List.map fst sn.rmap) with
  | Ok () -> ()
  | Error e ->
      fail "rmap" "snode %d replica map: %a" sn.sid Coverage.pp_error e);
  (* Every stored key lives inside one of its owner vnode's partitions. *)
  List.iter
    (fun (vn : Runtime.View.vnode_view) ->
      List.iter
        (fun (key, _) ->
          let point = Hash.string space key in
          if not (List.exists (fun s -> Span.contains space s point) vn.spans)
          then
            fail "data" "snode %d: key %S stored at %a which does not own it"
              sn.sid key Vnode_id.pp vn.vid)
        vn.data)
    sn.vnodes;
  List.rev !issues

(* The full paper-invariant battery over one cluster snapshot. Meaningful
   at quiescence (no balancing event mid-flight): G1' global coverage,
   LPDR-copy agreement, G2'-G5', L1, L2, quota conservation, per-snode
   cache coverage and data placement. [vmax] is the group capacity
   (2·Vmin; [max_int] under the global approach, making every group the
   sole root group as far as L2 is concerned). *)
let check_view ~space ~pmin ~vmax (v : Runtime.View.t) =
  let issues = ref [] in
  let fail inv fmt = Format.kasprintf (fun d -> issues := { inv; detail = d } :: !issues) fmt in
  let vnodes =
    List.concat_map (fun (sn : Runtime.View.snode_view) -> sn.vnodes) v.snodes
  in
  (* G1': the union of all local partitions tiles R_h exactly. *)
  (match
     Coverage.check space
       (List.concat_map (fun (vn : Runtime.View.vnode_view) -> vn.spans) vnodes)
   with
  | Ok () -> ()
  | Error e -> fail "G1" "partition union: %a" Coverage.pp_error e);
  (* Quota conservation: ΣQv = 1. *)
  let sigma =
    List.fold_left
      (fun acc (vn : Runtime.View.vnode_view) ->
        List.fold_left (fun a s -> a +. Span.quota space s) acc vn.spans)
      0. vnodes
  in
  if Float.abs (sigma -. 1.) > 1e-9 then fail "quota" "sum Qv = %.12f" sigma;
  (* Gather LPDR copies per group from live snodes (a crashed snode's
     durable copy is legitimately stale until its restart re-pull). *)
  let copies : (Group_id.t * (int * Runtime.View.lpdr_copy) list) list =
    List.fold_left
      (fun acc (sn : Runtime.View.snode_view) ->
        if not sn.up then acc
        else
          List.fold_left
            (fun acc (lp : Runtime.View.lpdr_copy) ->
              let cur = Option.value ~default:[] (List.assoc_opt lp.group acc) in
              (lp.group, (sn.sid, lp) :: cur)
              :: List.remove_assoc lp.group acc)
            acc sn.lpdrs)
      [] v.snodes
  in
  let group_count = List.length copies in
  let by_vid =
    List.map (fun (vn : Runtime.View.vnode_view) -> (vn.vid, vn)) vnodes
  in
  List.iter
    (fun (gid, cps) ->
      match cps with
      | [] -> ()
      | (_, (ref_lp : Runtime.View.lpdr_copy)) :: rest ->
          List.iter
            (fun (sid, (lp : Runtime.View.lpdr_copy)) ->
              if
                lp.level <> ref_lp.level || lp.epoch <> ref_lp.epoch
                || lp.counts <> ref_lp.counts
              then
                fail "LPDR" "group %a: snode %d holds a divergent copy"
                  Group_id.pp gid sid)
            rest;
          (* L2 with the sole-group exception. *)
          let vg = List.length ref_lp.counts in
          if group_count = 1 then begin
            if vg < 1 || vg > vmax then
              fail "L2" "sole group %a has Vg=%d" Group_id.pp gid vg
          end
          else if vg < vmax / 2 || vg > vmax then
            fail "L2" "group %a has Vg=%d outside [%d, %d]" Group_id.pp gid vg
              (vmax / 2) vmax;
          (* G2': total partition count is a power of two. *)
          let total =
            List.fold_left (fun acc (_, c) -> acc + c) 0 ref_lp.counts
          in
          if not (Params.is_power_of_two total) then
            fail "G2" "group %a has %d partitions" Group_id.pp gid total;
          (* G5' (removal-tolerant): power-of-two population => equal
             counts. *)
          (if Params.is_power_of_two vg then
             match ref_lp.counts with
             | (_, c0) :: _ ->
                 if List.exists (fun (_, c) -> c <> c0) ref_lp.counts then
                   fail "G5" "group %a uneven at Vg=%d" Group_id.pp gid vg
             | [] -> ());
          List.iter
            (fun (vid, c) ->
              (* G4': Pmin <= Pv <= Pmax. *)
              if c < pmin || c > 2 * pmin then
                fail "G4" "group %a vnode %a count %d outside [%d, %d]"
                  Group_id.pp gid Vnode_id.pp vid c pmin (2 * pmin);
              match List.assoc_opt vid by_vid with
              | None ->
                  fail "L1" "%a in LPDR of %a but hosted nowhere" Vnode_id.pp
                    vid Group_id.pp gid
              | Some vn ->
                  (* LPDR counts match real ownership. *)
                  if List.length vn.spans <> c then
                    fail "LPDR" "%a registered with %d partitions, owns %d"
                      Vnode_id.pp vid c (List.length vn.spans);
                  if not (Group_id.equal vn.group gid) then
                    fail "L1" "%a group field %a but listed in %a" Vnode_id.pp
                      vid Group_id.pp vn.group Group_id.pp gid;
                  (* G3': every partition at the group's split level. *)
                  List.iter
                    (fun s ->
                      if Span.level s <> ref_lp.level then
                        fail "G3" "%a holds %a at level %d, group %a at %d"
                          Vnode_id.pp vid Span.pp s (Span.level s) Group_id.pp
                          gid ref_lp.level)
                    vn.spans)
            ref_lp.counts)
    copies;
  (* L1 (other direction): every hosted vnode is listed in exactly one
     live group's LPDR. *)
  List.iter
    (fun (vn : Runtime.View.vnode_view) ->
      let listed =
        List.filter
          (fun (_, cps) ->
            match cps with
            | (_, (lp : Runtime.View.lpdr_copy)) :: _ ->
                List.mem_assoc vn.vid lp.counts
            | [] -> false)
          copies
      in
      match listed with
      | [ _ ] -> ()
      | [] ->
          fail "L1" "%a hosted but listed in no group's LPDR" Vnode_id.pp
            vn.vid
      | l ->
          fail "L1" "%a listed in %d groups" Vnode_id.pp vn.vid (List.length l))
    vnodes;
  (* Per-snode checks on every live snode. *)
  let snode_issues =
    List.concat_map
      (fun (sn : Runtime.View.snode_view) ->
        if sn.up then check_snode ~space sn else [])
      v.snodes
  in
  List.rev !issues @ snode_issues

let check_runtime rt =
  check_view ~space:(Runtime.space rt) ~pmin:(Runtime.pmin rt)
    ~vmax:(Runtime.vmax rt) (Runtime.view rt)

(* Overload discipline: the degradation layer's queue accounting must
   never drift — every bounded window holds at most [max_inflight] live
   entries and the live counters match the outbox contents. *)
let check_overload rt =
  List.map (fun detail -> { inv = "overload"; detail }) (Runtime.queue_audit rt)

(* Hash-tree consistency: every live snode's snapshot tree must be
   structurally sound and reproduce the flat scan digest for every
   replicated partition span — the predicate that keeps tree frames and
   legacy digests interchangeable on the anti-entropy wire. *)
let check_merkle rt =
  List.map (fun detail -> { inv = "MERKLE"; detail }) (Runtime.merkle_audit rt)

(* Active-balancing audit: a hot-partition swap moves only placement, so
   it must be invisible to the paper's battery — the full check_view
   battery is re-run and any finding is attributed to the run — and it
   must never lose an acked write: every key in [acked] has to resolve at
   its partition owner's authoritative copy ({!Runtime.peek}, the same
   oracle the linearizability checker trusts). Meaningful at quiescence,
   like {!check_runtime}. *)
let check_balance ?(acked = []) rt =
  let battery = check_runtime rt in
  let lost =
    List.filter_map
      (fun key ->
        match Runtime.peek rt ~key with
        | Some _ -> None
        | None ->
            Some
              {
                inv = "balance";
                detail =
                  Printf.sprintf
                    "acked write %S lost: no authoritative copy after \
                     transfers"
                    key;
              })
      acked
  in
  battery @ lost
