(** Operation histories for the consistency checkers.

    A recorder that turns the runtime's {!Dht_snode.Runtime.Oplog} event
    stream into a list of operation entries: invocation time, return time
    (when the operation completed) and outcome. Sessions are identified by
    the snode the operation was issued [via]. *)

module Runtime := Dht_snode.Runtime

type op =
  | Put of { key : string; value : string }
  | Get of { key : string; result : string option }

type entry = {
  token : int;
  session : int;  (** the [via] snode *)
  op : op;
  inv : float;  (** invocation (virtual) time *)
  ret : float option;  (** completion time; [None] while pending *)
  failed : bool;  (** a put settled as unacknowledged *)
  shed : bool;
      (** rejected with {!Dht_snode.Wire.Busy} by admission control —
          failed, and additionally guaranteed to have had no effect
          anywhere (implies [failed]) *)
}

val key : entry -> string

val completed : entry -> bool
(** [ret <> None]: the operation returned to the caller. A failed or
    pending put may still have taken partial effect. *)

type t

val create : unit -> t

val attach : t -> Runtime.t -> unit
(** Install this history as the runtime's operation recorder. *)

val feed : t -> Runtime.Oplog.event -> unit
(** Record one event directly (used by tests to pin hand-written
    histories). *)

val entries : t -> entry list
(** All entries, in invocation order. *)

val by_key : entry list -> (string * entry list) list
(** Entries grouped per key (each group in invocation order), sorted by
    key. *)

val pp_entry : Format.formatter -> entry -> unit
