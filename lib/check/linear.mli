(** Consistency checkers for quorum KV histories.

    Every check returns violation messages — an empty list means the
    history passes. The linearizability search is Wing-Gong specialized to
    a register per key: completed operations must all linearize in an
    order consistent with real time; a put without a return (pending, or
    settled as unacknowledged) {e may} have taken effect and the search is
    free to place it anywhere after its invocation, or nowhere.

    The session checks and the durability audit additionally assume values
    are {e unique per key} (each read's value names the put that produced
    it) and that each session issues its operations sequentially. *)

val max_ops : int
(** Per-key operation bound of the search (the state bitmask fits an
    OCaml [int]). *)

val check_key : key:string -> History.entry list -> string option
(** Linearizability of one key's history; [None] when linearizable. *)

val check : History.entry list -> string list
(** {!check_key} over every key of the history. *)

val read_your_writes : History.entry list -> string list
(** A session that completed a put on a key must never again read [None]
    or a value whose put completed strictly before its own put's
    invocation. *)

val monotonic_reads : History.entry list -> string list
(** Within a session, successive reads of a key never regress to a
    strictly older put's value, nor to [None]. *)

val durability : peek:(string -> string option) -> History.entry list -> string list
(** For every key with an acked put: [peek key] (the authoritative copy,
    e.g. {!Dht_snode.Runtime.peek}) must hold the latest acked put's value
    or that of a put not strictly preceding it. [None] is a lost acked
    write. *)

val busy_never_committed :
  ?peek:(string -> string option) -> History.entry list -> string list
(** A put shed with {!Dht_snode.Wire.Busy} was rejected before any replica
    was touched: its value must never be returned by a completed read nor
    (when [peek] is given) appear in the authoritative copy. *)

val full : ?peek:(string -> string option) -> History.entry list -> string list
(** All of the above. *)
