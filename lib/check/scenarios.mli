(** Standard explorable scenarios, shared by the test suite and the
    [dht_sim explore] subcommand so a schedule artifact recorded by one is
    replayable by the other. *)

val kv :
  ?name:string ->
  ?protect:bool ->
  ?snodes:int ->
  ?pmin:int ->
  ?vmin:int ->
  ?vnodes:int ->
  ?grow:int ->
  ?removes:int ->
  ?keys:int ->
  ?rfactor:int ->
  ?read_quorum:int ->
  ?write_quorum:int ->
  ?linger:float ->
  unit ->
  Explorer.scenario
(** Grow by [vnodes], write [keys] keys, grow by [grow] more (migrating
    live data) and remove [removes] vnodes, then overwrite and read every
    key; verify runs the full invariant battery plus the linearizability,
    session and durability checks over the recorded history.

    [protect] (default [true]) arms the reliable layer with an empty fault
    plan, so injected perturbations must be tolerated — any failure is a
    real bug. [protect:false] is mutation mode: the runtime trusts the
    network, a sunk message is silent loss, and the explorer is expected
    to {e find} the planted damage. *)

val mt_ae :
  ?name:string ->
  ?protect:bool ->
  ?snodes:int ->
  ?pmin:int ->
  ?vmin:int ->
  ?vnodes:int ->
  ?keys:int ->
  ?divergent:int ->
  ?rfactor:int ->
  ?read_quorum:int ->
  ?write_quorum:int ->
  ?linger:float ->
  unit ->
  Explorer.scenario
(** Merkle anti-entropy reconciliation under perturbation: the cluster
    forces the tree protocol everywhere ([mt_threshold = 0], leaf cap 2),
    [divergent] keys are planted divergent on both sides of the symmetric
    difference, and two reconciliation rounds run with their [Mt_*]
    frames exposed to the explorer's defer/sink/crash perturbations,
    followed by an overwrite/read workload. Verify demands the invariant
    battery, hash-tree consistency ({!Invariants.check_merkle}) and the
    full linearizability suite stay clean. *)

val by_name : ?linger:float -> string -> Explorer.scenario option
(** The named standard scenario: ["kv"], ["kv-mutate"], ["mt-ae"], or
    ["mt-ae-mutate"]. *)
