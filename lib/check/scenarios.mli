(** Standard explorable scenarios, shared by the test suite and the
    [dht_sim explore] subcommand so a schedule artifact recorded by one is
    replayable by the other. *)

val kv :
  ?name:string ->
  ?protect:bool ->
  ?snodes:int ->
  ?pmin:int ->
  ?vmin:int ->
  ?vnodes:int ->
  ?grow:int ->
  ?removes:int ->
  ?keys:int ->
  ?rfactor:int ->
  ?read_quorum:int ->
  ?write_quorum:int ->
  ?linger:float ->
  unit ->
  Explorer.scenario
(** Grow by [vnodes], write [keys] keys, grow by [grow] more (migrating
    live data) and remove [removes] vnodes, then overwrite and read every
    key; verify runs the full invariant battery plus the linearizability,
    session and durability checks over the recorded history.

    [protect] (default [true]) arms the reliable layer with an empty fault
    plan, so injected perturbations must be tolerated — any failure is a
    real bug. [protect:false] is mutation mode: the runtime trusts the
    network, a sunk message is silent loss, and the explorer is expected
    to {e find} the planted damage. *)

val by_name : ?linger:float -> string -> Explorer.scenario option
(** The named standard scenario: ["kv"] (protected) or ["kv-mutate"]. *)
