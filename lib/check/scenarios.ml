open Dht_core
module Runtime = Dht_snode.Runtime
module Fault = Dht_event_sim.Fault

(* The standard explorable workload: grow a cluster, write a keyset, grow
   again (so balancing events migrate live data), optionally remove
   vnodes, then overwrite and read every key. Satisfies the checkers'
   preconditions: values are unique per key and each session (via snode)
   issues its operations sequentially.

   [protect = true] (the default) arms the reliable delivery layer with an
   empty fault plan — no drops, duplicates or jitter of its own, but
   retransmission and crash recovery work, so injected crash/delay/flush
   perturbations must be tolerated: any verifier failure is a real bug.
   [protect = false] is mutation mode: the runtime believes the network is
   reliable, so a sunk message models silent loss the protocol is not
   armed against — the explorer must detect the planted damage (a
   self-test that the whole detection pipeline works). *)
let kv ?(name = "kv") ?(protect = true) ?(snodes = 5) ?(pmin = 8) ?(vmin = 2)
    ?(vnodes = 3) ?(grow = 2) ?(removes = 1) ?(keys = 12) ?(rfactor = 3)
    ?(read_quorum = 2) ?(write_quorum = 2) ?(linger = 0.) () =
  let hist = ref (History.create ()) in
  let build ~seed =
    let faults = if protect then Some (Fault.create ~seed ()) else None in
    let rt =
      Runtime.create ?faults ~pmin ~approach:(Runtime.Local { vmin }) ~rfactor
        ~read_quorum ~write_quorum ~linger ~snodes ~seed ()
    in
    hist := History.create ();
    History.attach !hist rt;
    rt
  in
  let key k = Printf.sprintf "key-%d" k in
  let drive rt =
    let next = ref 1 in
    let add n =
      for _ = 1 to n do
        let id = Vnode_id.make ~snode:(!next mod snodes) ~vnode:(!next / snodes) in
        incr next;
        Runtime.create_vnode rt ~id ()
      done;
      Runtime.run rt
    in
    (* First growth wave, then the initial writes. *)
    add vnodes;
    for k = 0 to keys - 1 do
      Runtime.put rt ~via:(k mod snodes) ~key:(key k)
        ~value:(Printf.sprintf "a-%d" k) ()
    done;
    Runtime.run rt;
    (* Second growth wave migrates live data; removals drain vnodes. *)
    add grow;
    for r = 1 to min removes (!next - 2) do
      Runtime.remove_vnode rt
        ~id:(Vnode_id.make ~snode:(r mod snodes) ~vnode:(r / snodes))
        (fun _ -> ())
    done;
    Runtime.run rt;
    (* Overwrites against the reshaped cluster, each session reading its
       key back only after its own write acked (sequential sessions, the
       read-your-writes precondition). *)
    for k = 0 to keys - 1 do
      let via = (k + 1) mod snodes in
      Runtime.put rt ~via ~key:(key k) ~value:(Printf.sprintf "b-%d" k)
        ~on_done:(fun () -> Runtime.get rt ~via ~key:(key k) (fun _ -> ()))
        ()
    done;
    Runtime.run rt
  in
  let verify rt =
    let entries = History.entries !hist in
    Invariants.to_strings (Invariants.check_runtime rt)
    @ Linear.full ~peek:(fun key -> Runtime.peek rt ~key) entries
  in
  { Explorer.name; build; drive; verify }

(* Merkle anti-entropy reconciliation under perturbation: the cluster
   runs with [mt_threshold = 0] (every span opens a tree descent — no
   flat-digest fallback to hide behind) and a tiny leaf cap so even the
   small keyset produces real multi-level descents. Divergence is
   manufactured with the [plant] oracle on keys disjoint from the
   workload (and stamped near time zero), so the linearizability and
   durability checkers never see them; two reconciliation rounds then
   run with [Mt_*] frames exposed to the explorer's defer/sink/crash
   perturbations. The verifier demands the invariant battery, hash-tree
   consistency and the full linearizability suite stay clean — planted
   cells may still be mid-reconciliation when a perturbation starved a
   round, but nothing may ever be corrupted or lost. *)
let mt_ae ?(name = "mt-ae") ?(protect = true) ?(snodes = 4) ?(pmin = 8)
    ?(vmin = 2) ?(vnodes = 2) ?(keys = 10) ?(divergent = 6) ?(rfactor = 3)
    ?(read_quorum = 2) ?(write_quorum = 2) ?(linger = 0.) () =
  let hist = ref (History.create ()) in
  let build ~seed =
    let faults = if protect then Some (Fault.create ~seed ()) else None in
    let rt =
      Runtime.create ?faults ~pmin ~approach:(Runtime.Local { vmin }) ~rfactor
        ~read_quorum ~write_quorum ~linger ~mt_threshold:0 ~mt_leaf:2 ~snodes
        ~seed ()
    in
    hist := History.create ();
    History.attach !hist rt;
    rt
  in
  let key k = Printf.sprintf "key-%d" k in
  let drive rt =
    for n = 1 to vnodes do
      Runtime.create_vnode rt
        ~id:(Vnode_id.make ~snode:(n mod snodes) ~vnode:(n / snodes))
        ()
    done;
    Runtime.run rt;
    for k = 0 to keys - 1 do
      Runtime.put rt ~via:(k mod snodes) ~key:(key k)
        ~value:(Printf.sprintf "a-%d" k) ()
    done;
    Runtime.run rt;
    (* Planted divergence: one fresh cell on one snode, a stale sibling
       of the same key on another — both sides of the symmetric
       difference are exercised. *)
    for d = 0 to divergent - 1 do
      let dkey = Printf.sprintf "div-%d" d in
      Runtime.plant rt ~snode:(d mod snodes) ~key:dkey
        ~value:(Printf.sprintf "fresh-%d" d)
        ~ts:(1e-6 *. float_of_int (d + 2)) ();
      Runtime.plant rt
        ~snode:((d + 1) mod snodes)
        ~key:dkey
        ~value:(Printf.sprintf "stale-%d" d)
        ~ts:1e-7 ()
    done;
    Runtime.anti_entropy rt;
    Runtime.run rt;
    Runtime.anti_entropy rt;
    Runtime.run rt;
    (* Overwrites and session reads against the reconciled cluster. *)
    for k = 0 to keys - 1 do
      let via = (k + 1) mod snodes in
      Runtime.put rt ~via ~key:(key k) ~value:(Printf.sprintf "b-%d" k)
        ~on_done:(fun () -> Runtime.get rt ~via ~key:(key k) (fun _ -> ()))
        ()
    done;
    Runtime.run rt
  in
  let verify rt =
    let entries = History.entries !hist in
    (* Reconciliation oracle: after the rounds (however perturbed), the
       fresher planted cell must have reached its partition owner's
       authoritative copy — under protection the reliable layer must
       carry every tree frame through; a silently sunk frame loses the
       planted write and is exactly what mutation mode must detect. *)
    let unreconciled =
      List.filter_map
        (fun d ->
          let dkey = Printf.sprintf "div-%d" d in
          let expect = Printf.sprintf "fresh-%d" d in
          match Runtime.peek rt ~key:dkey with
          | Some v when v = expect -> None
          | got ->
              Some
                (Printf.sprintf
                   "MERKLE: planted cell %S not reconciled to owner: %s" dkey
                   (match got with None -> "missing" | Some v -> v)))
        (List.init divergent Fun.id)
    in
    Invariants.to_strings (Invariants.check_runtime rt)
    @ Invariants.to_strings (Invariants.check_merkle rt)
    @ unreconciled
    @ Linear.full ~peek:(fun key -> Runtime.peek rt ~key) entries
  in
  { Explorer.name; build; drive; verify }

let by_name ?linger name =
  match name with
  | "kv" -> Some (kv ?linger ())
  | "kv-mutate" -> Some (kv ~name:"kv-mutate" ~protect:false ?linger ())
  | "mt-ae" -> Some (mt_ae ?linger ())
  | "mt-ae-mutate" -> Some (mt_ae ~name:"mt-ae-mutate" ~protect:false ?linger ())
  | _ -> None
