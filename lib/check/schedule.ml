type perturbation =
  | Delay of { site : int; by : float }
  | Drop of { site : int }
  | Crash of { site : int; snode : int; down : float }
  | Flush of { site : int }

type t = { seed : int; scenario : string; tweaks : perturbation list }

let site = function
  | Delay { site; _ } | Drop { site } | Crash { site; _ } | Flush { site } ->
      site

let length t = List.length t.tweaks

let pp_perturbation ppf = function
  | Delay { site; by } -> Format.fprintf ppf "delay %d %.9g" site by
  | Drop { site } -> Format.fprintf ppf "drop %d" site
  | Crash { site; snode; down } ->
      Format.fprintf ppf "crash %d %d %.9g" site snode down
  | Flush { site } -> Format.fprintf ppf "flush %d" site

let pp ppf t =
  Format.fprintf ppf "# dht-schedule v1@.scenario %s@.seed %d@." t.scenario
    t.seed;
  List.iter (fun p -> Format.fprintf ppf "%a@." pp_perturbation p) t.tweaks

let to_string t = Format.asprintf "%a" pp t

let of_string s =
  let err fmt = Format.kasprintf (fun m -> Error m) fmt in
  let lines =
    String.split_on_char '\n' s
    |> List.map String.trim
    |> List.filter (fun l -> l <> "" && not (String.length l > 0 && l.[0] = '#'))
  in
  let parse acc line =
    match acc with
    | Error _ -> acc
    | Ok t -> (
        match String.split_on_char ' ' line |> List.filter (( <> ) "") with
        | [ "scenario"; name ] -> Ok { t with scenario = name }
        | [ "seed"; n ] -> (
            match int_of_string_opt n with
            | Some seed -> Ok { t with seed }
            | None -> err "bad seed %S" n)
        | [ "delay"; site; by ] -> (
            match (int_of_string_opt site, float_of_string_opt by) with
            | Some site, Some by when by >= 0. ->
                Ok { t with tweaks = Delay { site; by } :: t.tweaks }
            | _ -> err "bad delay line %S" line)
        | [ "drop"; site ] -> (
            match int_of_string_opt site with
            | Some site -> Ok { t with tweaks = Drop { site } :: t.tweaks }
            | None -> err "bad drop line %S" line)
        | [ "crash"; site; snode; down ] -> (
            match
              ( int_of_string_opt site,
                int_of_string_opt snode,
                float_of_string_opt down )
            with
            | Some site, Some snode, Some down when down > 0. ->
                Ok { t with tweaks = Crash { site; snode; down } :: t.tweaks }
            | _ -> err "bad crash line %S" line)
        | [ "flush"; site ] -> (
            match int_of_string_opt site with
            | Some site -> Ok { t with tweaks = Flush { site } :: t.tweaks }
            | None -> err "bad flush line %S" line)
        | _ -> err "unrecognized schedule line %S" line)
  in
  match
    List.fold_left parse (Ok { seed = 0; scenario = "?"; tweaks = [] }) lines
  with
  | Ok t -> Ok { t with tweaks = List.rev t.tweaks }
  | Error _ as e -> e

let save ~path t =
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () -> output_string oc (to_string t))

let load ~path =
  match open_in path with
  | exception Sys_error m -> Error m
  | ic ->
      Fun.protect
        ~finally:(fun () -> close_in ic)
        (fun () -> of_string (really_input_string ic (in_channel_length ic)))
