(** Deterministic schedule explorer.

    Sweeps seeds and perturbs message schedules at recorded decision sites
    (bounded reordering via delivery delays, targeted message sinking,
    crash/restart injection, linger flushes), searching for runs whose
    verifier reports failures. A failing schedule is greedily shrunk to a
    1-minimal replayable repro ({!Schedule.t}).

    Everything is deterministic: the probe consumes no system randomness,
    tweak sets are drawn from an {!Dht_prng.Rng} stream derived from the
    (scenario, seed) pair, and replaying a returned schedule through
    {!run} reproduces its failure exactly. *)

module Runtime := Dht_snode.Runtime

type scenario = {
  name : string;  (** recorded in schedules; part of the exploration seed *)
  build : seed:int -> Runtime.t;
      (** must be a pure function of [seed] (fresh engine, no ambient
          state) for replay to be exact *)
  drive : Runtime.t -> unit;  (** issue the workload (may call [run]) *)
  verify : Runtime.t -> string list;
      (** violation messages at quiescence; empty = pass *)
}

type outcome = {
  schedule : Schedule.t;  (** the (possibly shrunk) schedule that ran *)
  failures : string list;  (** verifier output; empty = the run passed *)
  sites : int;  (** decision sites the run exposed *)
  snodes : int;
}

val run : scenario -> Schedule.t -> outcome
(** Execute one schedule: build at its seed, apply its tweaks at their
    decision sites, drive to quiescence, verify. *)

val shrink : scenario -> Schedule.t -> Schedule.t
(** Greedily remove tweaks while the failure persists; the result is
    1-minimal (every remaining tweak is necessary). A schedule that does
    not fail is returned unchanged. *)

type kind = [ `Delay | `Drop | `Crash | `Flush ]

val explore :
  ?rounds:int ->
  ?max_tweaks:int ->
  ?delay_scale:float ->
  ?down_time:float ->
  ?kinds:kind list ->
  ?on_progress:(outcome -> unit) ->
  scenario ->
  seeds:int list ->
  outcome option
(** [explore sc ~seeds] sweeps the seeds in order; per seed it first runs
    the unperturbed baseline (a baseline failure is returned immediately,
    with an empty tweak list), then tries [rounds] (default 20) random
    tweak sets of at most [max_tweaks] (default 4) perturbations drawn
    from [kinds] (default all four). [delay_scale] (default 5 ms) bounds
    delivery stretching; [down_time] (default 50 ms) is the injected
    crash duration. The first failure found is shrunk and returned;
    [None] means every run passed. *)
