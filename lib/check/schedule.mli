(** Replayable perturbation schedules.

    A schedule names a scenario, a seed, and a list of perturbations
    anchored at {e decision sites} — the deterministic numbering of remote
    sends exposed by {!Dht_event_sim.Network.set_probe}. Replaying the
    same schedule against the same scenario build reproduces the same run
    exactly.

    The text format is line-based:
    {v
    # dht-schedule v1
    scenario kv-chaos
    seed 42
    delay <site> <seconds>     perturbation: stretch that send's delivery
    drop <site>                perturbation: sink that send entirely
    crash <site> <snode> <down>  crash [snode] at that send, restart after [down]s
    flush <site>               force all lingering batches out at that send
    v} *)

type perturbation =
  | Delay of { site : int; by : float }
  | Drop of { site : int }
  | Crash of { site : int; snode : int; down : float }
  | Flush of { site : int }

type t = { seed : int; scenario : string; tweaks : perturbation list }

val site : perturbation -> int

val length : t -> int
(** Number of perturbations. *)

val pp : Format.formatter -> t -> unit

val pp_perturbation : Format.formatter -> perturbation -> unit

val to_string : t -> string

val of_string : string -> (t, string) result

val save : path:string -> t -> unit

val load : path:string -> (t, string) result
