(* Wing-Gong linearizability search specialized to one register per key,
   plus the cheap session checks (read-your-writes, monotonic reads) and
   the acked-write durability audit. *)

let max_ops = 62 (* per-key bitmask fits an OCaml int *)

(* One key's history against a linearizable register initialized to None.
   Completed gets and every put participate; a put without a return
   (pending or settled-failed) MAY have taken effect — the search is free
   to linearize it anywhere after its invocation, or never. Pending gets
   constrain nothing and are dropped. *)
let check_key ~key entries =
  let ops =
    List.filter
      (fun (e : History.entry) ->
        match e.op with
        | History.Get _ -> History.completed e
        | History.Put _ -> true)
      entries
    |> Array.of_list
  in
  let n = Array.length ops in
  if n = 0 then None
  else if n > max_ops then
    Some
      (Printf.sprintf "key %S: %d ops exceed the checker's %d-op bound" key n
         max_ops)
  else begin
    let inv i = ops.(i).History.inv in
    let ret i = ops.(i).History.ret in
    (* Success once every completed op is linearized. *)
    let full = ref 0 in
    for i = 0 to n - 1 do
      if ret i <> None then full := !full lor (1 lsl i)
    done;
    let full = !full in
    let visited = Hashtbl.create 1024 in
    let rec dfs mask value =
      if mask land full = full then true
      else if Hashtbl.mem visited (mask, value) then false
      else begin
        Hashtbl.add visited (mask, value) ();
        let ok = ref false in
        let i = ref 0 in
        while (not !ok) && !i < n do
          let idx = !i in
          incr i;
          if mask land (1 lsl idx) = 0 then begin
            (* Wing-Gong minimality: no unlinearized op returned before
               this one was invoked. *)
            let minimal = ref true in
            for j = 0 to n - 1 do
              if j <> idx && mask land (1 lsl j) = 0 then
                match ret j with
                | Some rj when rj < inv idx -> minimal := false
                | Some _ | None -> ()
            done;
            if !minimal then
              match ops.(idx).History.op with
              | History.Put { value = v; _ } ->
                  if dfs (mask lor (1 lsl idx)) (Some v) then ok := true
              | History.Get { result; _ } ->
                  if result = value && dfs (mask lor (1 lsl idx)) value then
                    ok := true
          end
        done;
        !ok
      end
    in
    if dfs 0 None then None
    else
      Some
        (Format.asprintf "key %S: history is not linearizable@,%a" key
           (Format.pp_print_list History.pp_entry)
           (Array.to_list ops))
  end

let check entries =
  List.filter_map
    (fun (key, es) -> check_key ~key es)
    (History.by_key entries)

(* Values are assumed unique per key (the recorders in this repo write
   "v<token>"-style payloads): a read's value names the put that produced
   it. *)
let put_of_value entries =
  let tbl = Hashtbl.create 64 in
  List.iter
    (fun (e : History.entry) ->
      match e.op with
      | History.Put { key; value } -> Hashtbl.replace tbl (key, value) e
      | History.Get _ -> ())
    entries;
  fun ~key ~value -> Hashtbl.find_opt tbl (key, value)

let sessions entries =
  let tbl = Hashtbl.create 8 in
  List.iter
    (fun (e : History.entry) ->
      Hashtbl.replace tbl e.session
        (e :: Option.value ~default:[] (Hashtbl.find_opt tbl e.session)))
    entries;
  Hashtbl.fold (fun s es acc -> (s, List.rev es) :: acc) tbl []
  |> List.sort (fun (a, _) (b, _) -> Int.compare a b)

(* The latest entry of [cands] that returned strictly before [before] was
   invoked — the only ops a session guarantee may legitimately constrain a
   later op against (overlapping ops within a session are concurrent and
   constrain nothing). *)
let last_settled_before ~(before : History.entry) cands =
  List.fold_left
    (fun acc (e : History.entry) ->
      match e.ret with
      | Some r when r <= before.inv -> (
          match acc with
          | Some (a : History.entry) when Option.get a.ret >= r -> acc
          | _ -> Some e)
      | _ -> acc)
    None cands

(* Read-your-writes: once a session's put on a key completed (returned
   before the read was invoked), that session's read of the key must not
   return [None] and must not return the value of a put that completed
   strictly before the own put was invoked. *)
let read_your_writes entries =
  let find_put = put_of_value entries in
  let issues = ref [] in
  List.iter
    (fun (session, es) ->
      let own_puts : (string, History.entry list) Hashtbl.t =
        Hashtbl.create 8
      in
      List.iter
        (fun (e : History.entry) ->
          if History.completed e then
            match e.op with
            | History.Put { key; _ } ->
                Hashtbl.replace own_puts key
                  (e :: Option.value ~default:[] (Hashtbl.find_opt own_puts key))
            | History.Get { key; result } -> (
                let cands =
                  Option.value ~default:[] (Hashtbl.find_opt own_puts key)
                in
                match last_settled_before ~before:e cands with
                | None -> ()
                | Some own -> (
                    match result with
                    | None ->
                        issues :=
                          Format.asprintf
                            "read-your-writes: session %d read nothing for \
                             %S after its own %a"
                            session key History.pp_entry own
                          :: !issues
                    | Some v -> (
                        match find_put ~key ~value:v with
                        | None -> ()
                        | Some p -> (
                            match (p.ret, own.inv) with
                            | Some pret, oinv when pret < oinv ->
                                issues :=
                                  Format.asprintf
                                    "read-your-writes: session %d read stale \
                                     %a after its own %a"
                                    session History.pp_entry p History.pp_entry
                                    own
                                  :: !issues
                            | _ -> ())))))
        es)
    (sessions entries);
  List.rev !issues

(* Monotonic reads: within a session, a read must not regress --
   relative to an earlier read of the same key that returned before it
   was invoked -- to a strictly older put's value, nor to nothing. *)
let monotonic_reads entries =
  let find_put = put_of_value entries in
  let issues = ref [] in
  List.iter
    (fun (session, es) ->
      let reads : (string, History.entry list) Hashtbl.t = Hashtbl.create 8 in
      List.iter
        (fun (e : History.entry) ->
          if History.completed e then
            match e.op with
            | History.Put _ -> ()
            | History.Get { key; result } ->
                let cands =
                  Option.value ~default:[] (Hashtbl.find_opt reads key)
                in
                let source_of (g : History.entry) =
                  match g.op with
                  | History.Get { result = Some v; _ } -> find_put ~key ~value:v
                  | _ -> None
                in
                (match last_settled_before ~before:e cands with
                | None -> ()
                | Some prev -> (
                    match source_of prev with
                    | None -> ()
                    | Some p1 -> (
                        match result with
                        | None ->
                            issues :=
                              Format.asprintf
                                "monotonic-reads: session %d read nothing for \
                                 %S after %a"
                                session key History.pp_entry prev
                              :: !issues
                        | Some _ -> (
                            match source_of e with
                            | None -> ()
                            | Some p2 -> (
                                match (p2.ret, p1.inv) with
                                | Some r2, i1 when r2 < i1 ->
                                    issues :=
                                      Format.asprintf
                                        "monotonic-reads: session %d \
                                         regressed from %a to %a"
                                        session History.pp_entry p1
                                        History.pp_entry p2
                                      :: !issues
                                | _ -> ())))));
                Hashtbl.replace reads key (e :: cands))
        es)
    (sessions entries);
  List.rev !issues

(* Durability of acknowledged writes: for every key with at least one
   acked put, the authoritative copy must hold the value of the latest
   acked put or of some put not strictly preceding it (a newer racing
   write may legitimately have won LWW). [None] with an acked put
   outstanding is a lost acked write. *)
let durability ~peek entries =
  let issues = ref [] in
  List.iter
    (fun (key, es) ->
      let acked =
        List.filter
          (fun (e : History.entry) ->
            match e.op with
            | History.Put _ -> History.completed e && not e.failed
            | History.Get _ -> false)
          es
      in
      match acked with
      | [] -> ()
      | _ -> (
          let latest =
            List.fold_left
              (fun (a : History.entry) (e : History.entry) ->
                if e.inv > a.inv || (e.inv = a.inv && e.token > a.token) then e
                else a)
              (List.hd acked) (List.tl acked)
          in
          let allowed =
            List.filter_map
              (fun (e : History.entry) ->
                match e.op with
                | History.Put { value; _ } -> (
                    (* Allowed unless the put completed strictly before
                       the latest acked put was invoked. *)
                    match e.ret with
                    | Some r when r < latest.inv -> None
                    | _ -> Some value)
                | History.Get _ -> None)
              es
          in
          match peek key with
          | Some v when List.mem v allowed -> ()
          | Some v ->
              issues :=
                Format.asprintf
                  "durability: key %S holds stale %S; latest acked %a" key v
                  History.pp_entry latest
                :: !issues
          | None ->
              issues :=
                Format.asprintf "durability: key %S lost acked write %a" key
                  History.pp_entry latest
                :: !issues))
    (History.by_key entries);
  List.rev !issues

(* A [Busy]-shed put was rejected by admission control before any replica
   was touched: unlike a merely failed put (which may have taken partial
   effect), its value must never surface anywhere — not in a completed
   read, and not in the authoritative copy. *)
let busy_never_committed ?peek entries =
  let issues = ref [] in
  List.iter
    (fun (e : History.entry) ->
      match e.op with
      | History.Put { key; value } when e.shed ->
          List.iter
            (fun (g : History.entry) ->
              match g.op with
              | History.Get { key = gk; result = Some v }
                when gk = key && v = value && History.completed g ->
                  issues :=
                    Format.asprintf
                      "busy: shed %a observed as committed by %a"
                      History.pp_entry e History.pp_entry g
                    :: !issues
              | _ -> ())
            entries;
          (match peek with
          | Some peek when peek key = Some value ->
              issues :=
                Format.asprintf
                  "busy: shed %a present in the authoritative copy"
                  History.pp_entry e
                :: !issues
          | _ -> ())
      | _ -> ())
    entries;
  List.rev !issues

let full ?peek entries =
  check entries
  @ read_your_writes entries
  @ monotonic_reads entries
  @ busy_never_committed ?peek entries
  @ (match peek with Some p -> durability ~peek:p entries | None -> [])
