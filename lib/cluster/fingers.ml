(* Prefix/finger geometry for routing at cluster scale.

   The hash space is cut into [2^level] equal prefix regions — a region is
   the top-[level] bits of a point, i.e. a dyadic cell, so regions embed
   in the same trie the routing caches use. [level] tracks the cluster
   size (one region per snode, rounded up to a power of two), and every
   region is assigned a deterministic steward snode that everyone can
   compute locally: the steward accumulates fine placement entries for
   its regions, so a lookup that misses in the local cache pays one hop
   to the steward instead of walking the whole stale-advice chain.

   Stewardship is spread by an integer mix rather than [region mod
   snodes]: adjacent regions land on unrelated snodes, so a hot prefix
   does not concentrate its routing load on neighbouring stewards. *)

(* 63-bit xor-shift/multiply mix (SplitMix-style finalizer with constants
   that fit OCaml's native int). Deterministic across runs and platforms
   with 64-bit ints. *)
let mix x =
  let x = x lxor (x lsr 33) in
  let x = x * 0x2545F4914F6CDD1D in
  let x = x lxor (x lsr 29) in
  let x = x * 0x27D4EB2F165667C5 in
  (x lxor (x lsr 32)) land max_int

let level ~bits ~snodes =
  if bits < 1 then invalid_arg "Fingers.level: bits < 1";
  if snodes < 1 then invalid_arg "Fingers.level: snodes < 1";
  (* Stop at [bits]: the result clamps there anyway, and [1 lsl acc]
     would overflow long before a [max_int]-sized cluster is reached. *)
  let rec ceil_log2 acc n =
    if acc >= bits || 1 lsl acc >= n then acc else ceil_log2 (acc + 1) n
  in
  min bits (max 1 (ceil_log2 0 snodes))

let regions ~level = 1 lsl level

let region ~bits ~level point =
  if level < 1 || level > bits then invalid_arg "Fingers.region: bad level";
  point lsr (bits - level)

let steward ~snodes ~region =
  if snodes < 1 then invalid_arg "Fingers.steward: snodes < 1";
  mix region mod snodes
