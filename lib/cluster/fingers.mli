(** Prefix/finger geometry for routing at cluster scale.

    The hash space is cut into [2{^level}] equal prefix regions (the top
    [level] bits of a point — a dyadic cell, so regions align with the
    trie the routing caches are built on). Every region has a
    deterministic {e steward} snode, computable locally by every member
    from the cluster size alone: stewards accumulate fine placement
    entries for their regions, giving lookups that miss in the local
    cache a one-hop shortcut instead of a walk along the stale-advice
    chain. *)

val level : bits:int -> snodes:int -> int
(** Finger level for a cluster of [snodes] over a [bits]-bit space:
    [ceil(log2 snodes)] clamped to [\[1, bits\]] — at least one region
    per snode.
    @raise Invalid_argument if [bits < 1] or [snodes < 1]. *)

val regions : level:int -> int
(** [2{^level}]. *)

val region : bits:int -> level:int -> int -> int
(** [region ~bits ~level p] is the prefix region of point [p]: its top
    [level] bits.
    @raise Invalid_argument if [level] lies outside [\[1, bits\]]. *)

val steward : snodes:int -> region:int -> int
(** The snode stewarding [region] — a deterministic integer-mix hash of
    the region index, spread so adjacent regions land on unrelated
    snodes.
    @raise Invalid_argument if [snodes < 1]. *)

val mix : int -> int
(** The underlying 63-bit mix (exposed for tests): deterministic,
    non-negative. *)
