(** Event-driven simulation of the distributed vnode-creation protocols.

    The paper argues (§3) that the global approach serializes creations —
    "as every snode is, necessarily, involved in the creation of every
    vnode, consecutive creations of vnodes are executed serially" — while
    the local approach lets groups balance concurrently, but it never
    quantifies this. This simulator runs both protocols over the
    {!Dht_event_sim} engine and measures makespan, per-creation latency,
    traffic and achieved concurrency.

    Protocol modelled for one creation:
    - {b global}: the initiating snode broadcasts the creation request with
      the GPDR to every other snode; each snode processes it, streams its
      partition handovers to the newcomer's snode, then ACKs; completion
      when all ACKs arrive. A single DHT-wide lock serializes creations
      (GPDR synchronization requirement, §2.5).
    - {b local}: the initiator looks up the victim vnode (one request/reply
      round), then the victim's snode coordinates the same round restricted
      to the snodes hosting vnodes of the victim group, using the LPDR;
      only that group is locked, so creations hitting different groups
      overlap. A busy victim group makes the creation wait and retry (the
      [conflicts] counter). *)

module Network = Dht_event_sim.Network

type approach = Global_approach | Local_approach of { vmin : int }

type config = {
  approach : approach;
  pmin : int;
  snodes : int;  (** cluster nodes; vnode [i] lives on snode [i mod snodes] *)
  link : Network.link;
  loopback : float;
  partition_payload : int;  (** bytes moved per partition handover *)
  control_bytes : int;  (** size of lookup/ack control messages *)
  entry_process_time : float;  (** CPU seconds per distribution-record entry *)
}

val default_config : approach -> config
(** 64 snodes on a {!Network.gigabit} fabric, [pmin = 32], 64 KiB partition
    payloads, 64-byte control messages, 200 ns per record entry. *)

type result = {
  vnodes : int;  (** creations executed *)
  makespan : float;  (** completion time of the last creation *)
  latencies : float array;  (** per creation, completion − arrival *)
  service_times : float array;  (** per creation, completion − service start *)
  messages : int;  (** remote messages on the fabric *)
  bytes : int;  (** remote bytes on the fabric *)
  traffic_by_tag : (string * int * int) list;
      (** fabric traffic by message kind ([lookup], [lookup-reply],
          [record], [transfer], [ack], [done]): [(tag, messages, bytes)],
          sorted by tag *)
  max_concurrent : int;  (** peak number of overlapping balancing rounds *)
  conflicts : int;  (** creations that found their victim group busy *)
}

val simulate : config -> arrivals:float array -> seed:int -> result
(** [simulate cfg ~arrivals ~seed] creates one vnode per arrival time (the
    first vnode of the DHT exists at time 0 and is not counted). Arrival
    times must be non-negative and sorted.
    @raise Invalid_argument on an empty or unsorted arrival array. *)

val mean_latency : result -> float

val p95_latency : result -> float

val throughput : result -> float
(** Creations per second of makespan. *)
