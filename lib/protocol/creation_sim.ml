open Dht_core
module Engine = Dht_event_sim.Engine
module Network = Dht_event_sim.Network
module Space = Dht_hashspace.Space
module Rng = Dht_prng.Rng

type approach = Global_approach | Local_approach of { vmin : int }

type config = {
  approach : approach;
  pmin : int;
  snodes : int;
  link : Network.link;
  loopback : float;
  partition_payload : int;
  control_bytes : int;
  entry_process_time : float;
}

let default_config approach =
  {
    approach;
    pmin = 32;
    snodes = 64;
    link = Network.gigabit;
    loopback = 1e-6;
    partition_payload = 64 * 1024;
    control_bytes = 64;
    entry_process_time = 200e-9;
  }

type result = {
  vnodes : int;
  makespan : float;
  latencies : float array;
  service_times : float array;
  messages : int;
  bytes : int;
  traffic_by_tag : (string * int * int) list;
  max_concurrent : int;
  conflicts : int;
}

(* The logical state being balanced, behind a common face. *)
type dht =
  | Global of Global_dht.t
  | Local of Local_dht.t

type lock = { mutable busy : bool; waiters : (unit -> unit) Queue.t }

type sim = {
  cfg : config;
  engine : Engine.t;
  net : Network.t;
  rng : Rng.t;
  dht : dht;
  captured : Balancer.event list ref;  (* events of the creation in progress *)
  locks : (Group_id.t, lock) Hashtbl.t;
  global_lock : lock;
  mutable active : int;
  mutable max_active : int;
  mutable conflicts : int;
  mutable completed : int;
  mutable makespan : float;
}

let fresh_lock () = { busy = false; waiters = Queue.create () }

let lock_for sim gid =
  match Hashtbl.find_opt sim.locks gid with
  | Some l -> l
  | None ->
      let l = fresh_lock () in
      Hashtbl.add sim.locks gid l;
      l

let release sim l =
  l.busy <- false;
  (* Wake every waiter; each retries acquisition (the first to run wins). *)
  let pending = Queue.fold (fun acc f -> f :: acc) [] l.waiters in
  Queue.clear l.waiters;
  List.iter (fun retry -> Engine.schedule sim.engine ~delay:0. retry) (List.rev pending)

let snode_of_creation cfg i = i mod cfg.snodes

let vnode_id cfg i =
  Vnode_id.make ~snode:(snode_of_creation cfg i) ~vnode:(i / cfg.snodes)

(* Split the captured balancing events into per-snode work: how many local
   partition splits each snode performed, and the partition handovers
   grouped by source snode. *)
let analyze_events cfg events =
  let splits = Hashtbl.create 8 and transfers = Hashtbl.create 8 in
  let bump tbl key =
    Hashtbl.replace tbl key (1 + Option.value ~default:0 (Hashtbl.find_opt tbl key))
  in
  List.iter
    (fun ev ->
      match ev with
      | Balancer.Split { vnode; _ } ->
          bump splits vnode.Vnode.id.Vnode_id.snode
      | Balancer.Transfer { src; dst; _ } ->
          let s = src.Vnode.id.Vnode_id.snode
          and d = dst.Vnode.id.Vnode_id.snode in
          ignore d;
          bump transfers s)
    events;
  ignore cfg;
  (splits, transfers)

(* One balancing round: [coordinator] sends the distribution record to every
   participant snode; each processes it, streams its handovers to the
   newcomer's snode, then ACKs; [k] runs when all ACKs are in. *)
let balancing_round sim ~coordinator ~participants ~record_entries ~dst_snode
    ~events k =
  let cfg = sim.cfg in
  let record_bytes = 16 + (16 * record_entries) in
  let splits, transfers = analyze_events cfg events in
  let expected = List.length participants in
  let acks = ref 0 in
  let ack () =
    incr acks;
    if !acks = expected then k ()
  in
  let participant_work snode =
    let split_work =
      float_of_int (Option.value ~default:0 (Hashtbl.find_opt splits snode))
      *. cfg.entry_process_time
    in
    let proc =
      (float_of_int record_entries *. cfg.entry_process_time) +. split_work
    in
    Engine.schedule sim.engine ~delay:proc (fun () ->
        (* Stream this snode's handovers to the newcomer's snode, serially,
           then ACK the coordinator. *)
        let pending = Option.value ~default:0 (Hashtbl.find_opt transfers snode) in
        let rec stream left =
          if left = 0 then
            Network.send sim.net ~tag:"ack" ~src:snode ~dst:coordinator
              ~bytes:cfg.control_bytes ack
          else
            Network.send sim.net ~tag:"transfer" ~src:snode ~dst:dst_snode
              ~bytes:cfg.partition_payload (fun () -> stream (left - 1))
        in
        stream pending)
  in
  List.iter
    (fun snode ->
      Network.send sim.net ~tag:"record" ~src:coordinator ~dst:snode
        ~bytes:record_bytes (fun () -> participant_work snode))
    participants

let distinct_snodes vnodes =
  let seen = Hashtbl.create 16 in
  Array.iter
    (fun v -> Hashtbl.replace seen v.Vnode.id.Vnode_id.snode ())
    vnodes;
  Hashtbl.fold (fun s () acc -> s :: acc) seen []

let finish_creation sim ~arrival ~service_start ~locks_held ~record i
    latencies services =
  let now = Engine.now sim.engine in
  latencies.(i) <- now -. arrival;
  services.(i) <- now -. service_start;
  ignore record;
  List.iter (fun l -> release sim l) locks_held;
  sim.active <- sim.active - 1;
  sim.completed <- sim.completed + 1;
  if now > sim.makespan then sim.makespan <- now

let run_global sim i ~arrival latencies services =
  let cfg = sim.cfg in
  let dht = match sim.dht with Global g -> g | Local _ -> assert false in
  let initiator = snode_of_creation cfg (i + 1) in
  let blocked = ref false in
  let rec acquire () =
    if sim.global_lock.busy then begin
      if not !blocked then begin
        blocked := true;
        sim.conflicts <- sim.conflicts + 1
      end;
      Queue.add acquire sim.global_lock.waiters
    end
    else begin
      sim.global_lock.busy <- true;
      let service_start = Engine.now sim.engine in
      sim.active <- sim.active + 1;
      if sim.active > sim.max_active then sim.max_active <- sim.active;
      sim.captured := [];
      let v = Global_dht.add_vnode dht ~id:(vnode_id cfg (i + 1)) in
      let events = !(sim.captured) in
      let participants =
        List.init cfg.snodes Fun.id
        |> List.filter (fun s -> s <> initiator)
      in
      let entries = Global_dht.vnode_count dht in
      let complete () =
        finish_creation sim ~arrival ~service_start
          ~locks_held:[ sim.global_lock ] ~record:entries i latencies services
      in
      if participants = [] then
        (* Single-snode cluster: only local processing. *)
        Engine.schedule sim.engine
          ~delay:(float_of_int entries *. cfg.entry_process_time)
          complete
      else
        balancing_round sim ~coordinator:initiator ~participants
          ~record_entries:entries ~dst_snode:v.Vnode.id.Vnode_id.snode ~events
          complete
    end
  in
  acquire ()

let run_local sim i ~arrival latencies services =
  let cfg = sim.cfg in
  let dht = match sim.dht with Local l -> l | Global _ -> assert false in
  let initiator = snode_of_creation cfg (i + 1) in
  let space = (Local_dht.params dht).Params.space in
  let point = Rng.int sim.rng (Space.size space) in
  let victim = Local_dht.select_victim dht ~point in
  let lookup_dst = victim.Vnode.id.Vnode_id.snode in
  (* §3.6: lookup round trip to find the victim vnode and its group. *)
  Network.send sim.net ~tag:"lookup" ~src:initiator ~dst:lookup_dst
    ~bytes:cfg.control_bytes (fun () ->
      Network.send sim.net ~tag:"lookup-reply" ~src:lookup_dst ~dst:initiator
        ~bytes:cfg.control_bytes (fun () ->
          let blocked = ref false in
          let rec acquire () =
            let gid = victim.Vnode.group in
            let l = lock_for sim gid in
            if l.busy then begin
              if not !blocked then begin
                blocked := true;
                sim.conflicts <- sim.conflicts + 1
              end;
              Queue.add acquire l.waiters
            end
            else begin
              l.busy <- true;
              let service_start = Engine.now sim.engine in
              sim.active <- sim.active + 1;
              if sim.active > sim.max_active then sim.max_active <- sim.active;
              sim.captured := [];
              let report =
                Local_dht.add_vnode_routed dht ~id:(vnode_id cfg (i + 1))
                  ~victim
              in
              let events = !(sim.captured) in
              (* A split keeps both child groups locked until completion. *)
              let extra_locks =
                match report.Local_dht.split with
                | None -> []
                | Some s ->
                    List.filter_map
                      (fun gid' ->
                        if Group_id.equal gid' gid then None
                        else begin
                          let l' = lock_for sim gid' in
                          l'.busy <- true;
                          Some l'
                        end)
                      [ s.Local_dht.left; s.Local_dht.right ]
              in
              let coordinator = lookup_dst in
              let members = report.Local_dht.group_members in
              let participants =
                distinct_snodes members
                |> List.filter (fun s -> s <> coordinator)
              in
              let entries = Array.length members in
              let dst_snode =
                report.Local_dht.vnode.Vnode.id.Vnode_id.snode
              in
              let complete () =
                (* Coordinator tells the initiator the creation is done. *)
                Network.send sim.net ~tag:"done" ~src:coordinator
                  ~dst:initiator ~bytes:cfg.control_bytes (fun () ->
                    finish_creation sim ~arrival ~service_start
                      ~locks_held:(l :: extra_locks) ~record:entries i
                      latencies services)
              in
              if participants = [] then
                Engine.schedule sim.engine
                  ~delay:(float_of_int entries *. cfg.entry_process_time)
                  complete
              else
                balancing_round sim ~coordinator ~participants
                  ~record_entries:entries ~dst_snode ~events complete
            end
          in
          acquire ()))

let simulate cfg ~arrivals ~seed =
  let n = Array.length arrivals in
  if n = 0 then invalid_arg "Creation_sim.simulate: no arrivals";
  Array.iteri
    (fun i t ->
      if t < 0. || (i > 0 && t < arrivals.(i - 1)) then
        invalid_arg "Creation_sim.simulate: arrivals must be sorted and >= 0")
    arrivals;
  let engine = Engine.create () in
  let net = Network.create ~loopback:cfg.loopback engine cfg.link in
  let rng = Rng.of_int seed in
  let captured = ref [] in
  let on_event ev = captured := ev :: !captured in
  let first = vnode_id cfg 0 in
  let dht =
    match cfg.approach with
    | Global_approach -> Global (Global_dht.create ~on_event ~pmin:cfg.pmin ~first ())
    | Local_approach { vmin } ->
        Local
          (Local_dht.create ~on_event ~pmin:cfg.pmin ~vmin
             ~rng:(Rng.split rng) ~first ())
  in
  let sim =
    {
      cfg;
      engine;
      net;
      rng;
      dht;
      captured;
      locks = Hashtbl.create 64;
      global_lock = fresh_lock ();
      active = 0;
      max_active = 0;
      conflicts = 0;
      completed = 0;
      makespan = 0.;
    }
  in
  let latencies = Array.make n 0. and services = Array.make n 0. in
  Array.iteri
    (fun i t ->
      Engine.at engine ~time:t (fun () ->
          match cfg.approach with
          | Global_approach -> run_global sim i ~arrival:t latencies services
          | Local_approach _ -> run_local sim i ~arrival:t latencies services))
    arrivals;
  Engine.run engine;
  assert (sim.completed = n);
  {
    vnodes = n;
    makespan = sim.makespan;
    latencies;
    service_times = services;
    messages = Network.messages net;
    bytes = Network.bytes_sent net;
    traffic_by_tag = Network.per_tag net;
    max_concurrent = sim.max_active;
    conflicts = sim.conflicts;
  }

let mean_latency (r : result) = Dht_stats.Descriptive.mean r.latencies

let p95_latency (r : result) =
  Dht_stats.Descriptive.percentile r.latencies ~p:0.95

let throughput (r : result) =
  if r.makespan = 0. then 0. else float_of_int r.vnodes /. r.makespan
