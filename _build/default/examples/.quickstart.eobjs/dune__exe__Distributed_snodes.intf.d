examples/distributed_snodes.mli:
