examples/churn.ml: Dht_prng Dht_protocol Dht_report Dht_workload List Printf
