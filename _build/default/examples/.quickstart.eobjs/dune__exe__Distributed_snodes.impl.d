examples/distributed_snodes.ml: Dht_core Dht_event_sim Dht_snode List Printf Vnode_id
