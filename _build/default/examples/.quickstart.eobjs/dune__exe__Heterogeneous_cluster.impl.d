examples/heterogeneous_cluster.ml: Array Audit Dht_cluster Dht_core Dht_prng Dht_report List Local_dht Option Params Printf Vnode Vnode_id
