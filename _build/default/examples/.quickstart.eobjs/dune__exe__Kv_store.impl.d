examples/kv_store.ml: Dht_core Dht_kv Dht_prng Local_dht Printf Vnode_id
