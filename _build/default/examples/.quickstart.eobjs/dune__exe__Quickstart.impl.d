examples/quickstart.ml: Audit Dht_core Dht_hashspace Dht_prng Format Group_id List Local_dht Params Printf Vnode Vnode_id
