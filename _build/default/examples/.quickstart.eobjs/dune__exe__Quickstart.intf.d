examples/quickstart.mli:
