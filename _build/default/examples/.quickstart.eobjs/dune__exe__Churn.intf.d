examples/churn.mli:
