(* Tests for Dht_hashes.Hash: reference vectors and distribution sanity. *)

module Hash = Dht_hashes.Hash
module Space = Dht_hashspace.Space

let check = Alcotest.check

let test_fnv1a_vectors () =
  (* Official FNV-1a 64-bit test vectors. *)
  check Alcotest.int64 "empty" 0xcbf29ce484222325L (Hash.fnv1a64 "");
  check Alcotest.int64 "a" 0xaf63dc4c8601ec8cL (Hash.fnv1a64 "a");
  check Alcotest.int64 "foobar" 0x85944171f73967e8L (Hash.fnv1a64 "foobar")

let test_fnv1a_sensitivity () =
  check Alcotest.bool "one-char difference" true
    (Hash.fnv1a64 "key1" <> Hash.fnv1a64 "key2");
  check Alcotest.bool "order matters" true (Hash.fnv1a64 "ab" <> Hash.fnv1a64 "ba")

let test_mix64_avalanche () =
  (* Consecutive integers must map to very different words: count differing
     bits between mix64 i and mix64 (i+1); expect near 32 on average. *)
  let popcount x =
    let rec go acc x = if x = 0L then acc else go (acc + 1) Int64.(logand x (sub x 1L)) in
    go 0 x
  in
  let total = ref 0 in
  for i = 0 to 999 do
    let d = Int64.logxor (Hash.mix64 (Int64.of_int i)) (Hash.mix64 (Int64.of_int (i + 1))) in
    total := !total + popcount d
  done;
  let avg = float_of_int !total /. 1000. in
  check Alcotest.bool (Printf.sprintf "avg flipped bits %.1f in [24, 40]" avg)
    true
    (avg > 24. && avg < 40.)

let test_mix64_deterministic () =
  check Alcotest.int64 "stable" (Hash.mix64 123456789L) (Hash.mix64 123456789L)

let test_to_space_bounds () =
  let sp = Space.create ~bits:20 in
  for i = 0 to 999 do
    let h = Hash.int sp i in
    check Alcotest.bool "within space" true (Space.contains sp h)
  done;
  let full = Hash.to_space sp 0xFFFFFFFFFFFFFFFFL in
  check Alcotest.int "all-ones maps to max" (Space.size sp - 1) full;
  check Alcotest.int "zero maps to 0" 0 (Hash.to_space sp 0L)

let test_string_distribution () =
  (* Sequential keys must spread evenly across 16 buckets of the space. *)
  let sp = Space.create ~bits:32 in
  let hist = Dht_stats.Histogram.create ~lo:0. ~hi:1. ~bins:16 in
  for i = 0 to 15_999 do
    let h = Hash.string sp (Printf.sprintf "user:%d" i) in
    Dht_stats.Histogram.add hist (Space.quota sp h)
  done;
  let chi2 = Dht_stats.Histogram.chi_square_uniform hist in
  check Alcotest.bool (Printf.sprintf "chi2 %.1f < 45" chi2) true (chi2 < 45.)

let test_int_distribution () =
  let sp = Space.create ~bits:32 in
  let hist = Dht_stats.Histogram.create ~lo:0. ~hi:1. ~bins:16 in
  for i = 0 to 15_999 do
    Dht_stats.Histogram.add hist (Space.quota sp (Hash.int sp i))
  done;
  let chi2 = Dht_stats.Histogram.chi_square_uniform hist in
  check Alcotest.bool (Printf.sprintf "chi2 %.1f < 45" chi2) true (chi2 < 45.)

let prop_string_stable =
  QCheck.Test.make ~name:"string hashing is a pure function" ~count:200
    QCheck.string (fun s ->
      Hash.string Space.default s = Hash.string Space.default s)

let prop_in_space =
  QCheck.Test.make ~name:"hashes land inside the space" ~count:500
    QCheck.string (fun s ->
      Space.contains Space.default (Hash.string Space.default s))

let suite =
  [
    Alcotest.test_case "fnv1a reference vectors" `Quick test_fnv1a_vectors;
    Alcotest.test_case "fnv1a sensitivity" `Quick test_fnv1a_sensitivity;
    Alcotest.test_case "mix64 avalanche" `Quick test_mix64_avalanche;
    Alcotest.test_case "mix64 deterministic" `Quick test_mix64_deterministic;
    Alcotest.test_case "to_space bounds" `Quick test_to_space_bounds;
    Alcotest.test_case "string key distribution" `Quick test_string_distribution;
    Alcotest.test_case "int key distribution" `Quick test_int_distribution;
    QCheck_alcotest.to_alcotest prop_string_stable;
    QCheck_alcotest.to_alcotest prop_in_space;
  ]
