(* Tests for Dht_cluster: Profile, Enrollment, Topology. *)

module Profile = Dht_cluster.Profile
module Enrollment = Dht_cluster.Enrollment
module Topology = Dht_cluster.Topology
module Rng = Dht_prng.Rng

let check = Alcotest.check
let checkf msg = Alcotest.check (Alcotest.float 1e-9) msg

let test_profile_validation () =
  Alcotest.check_raises "zero cpu"
    (Invalid_argument "Profile.make: resources must be strictly positive")
    (fun () -> ignore (Profile.make ~cpu:0. ~memory_gb:1. ~storage_gb:1. ()));
  Alcotest.check_raises "negative storage"
    (Invalid_argument "Profile.make: resources must be strictly positive")
    (fun () -> ignore (Profile.make ~cpu:1. ~memory_gb:1. ~storage_gb:(-1.) ()))

let test_profile_score () =
  checkf "reference scores 1" 1. (Profile.score Profile.reference);
  (* Scaling every resource by f scales the geometric mean by f. *)
  checkf "scale 2 doubles score" 2. (Profile.score (Profile.scale Profile.reference 2.));
  checkf "scale 0.5 halves score" 0.5
    (Profile.score (Profile.scale Profile.reference 0.5))

let test_profile_storage_change () =
  (* The paper's on-line repartitioning: changing storage changes the
     enrollment score monotonically. *)
  let p = Profile.reference in
  let more = Profile.with_storage p ~storage_gb:800. in
  check Alcotest.bool "more disk, more score" true
    (Profile.score more > Profile.score p);
  Alcotest.check_raises "zero storage"
    (Invalid_argument "Profile.with_storage: must be positive") (fun () ->
      ignore (Profile.with_storage p ~storage_gb:0.))

let test_apportion_exact_total () =
  let scores = [| 1.; 2.; 3.; 4. |] in
  let out = Enrollment.apportion ~total:100 scores in
  check Alcotest.int "sums to total" 100 (Array.fold_left ( + ) 0 out);
  check Alcotest.(array int) "proportional" [| 10; 20; 30; 40 |] out

let test_apportion_floor () =
  (* A very weak node still receives the floor. *)
  let out = Enrollment.apportion ~min_vnodes:2 ~total:20 [| 0.001; 10.; 10. |] in
  check Alcotest.int "sums" 20 (Array.fold_left ( + ) 0 out);
  check Alcotest.bool "floor respected" true (out.(0) >= 2)

let test_apportion_largest_remainder () =
  (* 7 spare vnodes over equal thirds: remainders break the tie stably and
     the total is exact (no rounding loss). *)
  let out = Enrollment.apportion ~total:10 [| 1.; 1.; 1. |] in
  check Alcotest.int "sums" 10 (Array.fold_left ( + ) 0 out);
  let sorted = Array.copy out in
  Array.sort compare sorted;
  check Alcotest.(array int) "near-equal split" [| 3; 3; 4 |] sorted

let test_apportion_validation () =
  Alcotest.check_raises "empty" (Invalid_argument "Enrollment.apportion: no nodes")
    (fun () -> ignore (Enrollment.apportion ~total:4 [||]));
  Alcotest.check_raises "non-positive score"
    (Invalid_argument "Enrollment.apportion: non-positive score") (fun () ->
      ignore (Enrollment.apportion ~total:4 [| 1.; 0. |]));
  Alcotest.check_raises "total below floor"
    (Invalid_argument "Enrollment.apportion: total below the per-node floor")
    (fun () -> ignore (Enrollment.apportion ~total:1 [| 1.; 1. |]))

let test_ideal_shares () =
  let shares = Enrollment.ideal_shares [| 1.; 3. |] in
  checkf "first" 0.25 shares.(0);
  checkf "second" 0.75 shares.(1);
  checkf "sum" 1. (Dht_stats.Descriptive.sum shares)

let test_topology_homogeneous () =
  let c = Topology.homogeneous ~n:8 Profile.reference in
  check Alcotest.int "size" 8 (Topology.size c);
  checkf "total score" 8. (Topology.total_score c);
  Alcotest.check_raises "n = 0" (Invalid_argument "Topology.homogeneous: n must be positive")
    (fun () -> ignore (Topology.homogeneous ~n:0 Profile.reference))

let test_topology_generations () =
  let c = Topology.generations ~counts:[ (4, 1.0); (2, 2.0) ] in
  check Alcotest.int "size" 6 (Topology.size c);
  checkf "score" 8. (Topology.total_score c);
  check Alcotest.string "names per generation" "gen1"
    c.Topology.nodes.(4).Profile.name;
  Alcotest.check_raises "empty" (Invalid_argument "Topology.generations: empty cluster")
    (fun () -> ignore (Topology.generations ~counts:[]))

let test_topology_random () =
  let c = Topology.random ~rng:(Rng.of_int 3) ~n:50 ~min_scale:0.5 ~max_scale:2.0 in
  check Alcotest.int "size" 50 (Topology.size c);
  Array.iter
    (fun s ->
      check Alcotest.bool "score within scale bounds" true (s >= 0.5 && s <= 2.0))
    (Topology.scores c);
  Alcotest.check_raises "bad range" (Invalid_argument "Topology.random: bad scale range")
    (fun () ->
      ignore (Topology.random ~rng:(Rng.of_int 0) ~n:3 ~min_scale:2. ~max_scale:1.))

let prop_apportion_sums =
  QCheck.Test.make ~name:"apportion always hits the exact total" ~count:200
    QCheck.(
      pair
        (array_of_size (QCheck.Gen.int_range 1 20) (float_range 0.01 100.))
        (int_range 0 500))
    (fun (scores, extra) ->
      let total = Array.length scores + extra in
      let out = Enrollment.apportion ~total scores in
      Array.fold_left ( + ) 0 out = total && Array.for_all (fun c -> c >= 1) out)

let suite =
  [
    Alcotest.test_case "profile validation" `Quick test_profile_validation;
    Alcotest.test_case "profile score" `Quick test_profile_score;
    Alcotest.test_case "storage repartitioning" `Quick test_profile_storage_change;
    Alcotest.test_case "apportion exact" `Quick test_apportion_exact_total;
    Alcotest.test_case "apportion floor" `Quick test_apportion_floor;
    Alcotest.test_case "apportion largest remainder" `Quick
      test_apportion_largest_remainder;
    Alcotest.test_case "apportion validation" `Quick test_apportion_validation;
    Alcotest.test_case "ideal shares" `Quick test_ideal_shares;
    Alcotest.test_case "homogeneous topology" `Quick test_topology_homogeneous;
    Alcotest.test_case "generations topology" `Quick test_topology_generations;
    Alcotest.test_case "random topology" `Quick test_topology_random;
    QCheck_alcotest.to_alcotest prop_apportion_sums;
  ]
