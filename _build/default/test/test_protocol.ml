(* Tests for Dht_protocol.Creation_sim: the distributed creation protocols. *)

module Csim = Dht_protocol.Creation_sim
module Trace = Dht_workload.Trace
module Rng = Dht_prng.Rng

let check = Alcotest.check

let global_cfg ?(snodes = 16) () =
  { (Csim.default_config Csim.Global_approach) with Csim.snodes }

let local_cfg ?(snodes = 16) ?(vmin = 8) () =
  { (Csim.default_config (Csim.Local_approach { vmin })) with Csim.snodes }

let arrivals ?(rate = 2000.) n = Trace.poisson ~rng:(Rng.of_int 9) ~n ~rate

let test_completes_all () =
  let a = arrivals 64 in
  let r = Csim.simulate (global_cfg ()) ~arrivals:a ~seed:1 in
  check Alcotest.int "creations" 64 r.Csim.vnodes;
  check Alcotest.int "latency samples" 64 (Array.length r.Csim.latencies);
  check Alcotest.bool "makespan after last arrival" true
    (r.Csim.makespan >= a.(63));
  Array.iter
    (fun l -> check Alcotest.bool "positive latency" true (l > 0.))
    r.Csim.latencies

let test_global_is_serialized () =
  (* §3: consecutive creations are executed serially under the global
     approach — concurrency can never exceed 1. *)
  let r = Csim.simulate (global_cfg ()) ~arrivals:(arrivals 128) ~seed:1 in
  check Alcotest.int "max concurrency 1" 1 r.Csim.max_concurrent

let test_local_overlaps () =
  let r = Csim.simulate (local_cfg ~vmin:8 ()) ~arrivals:(arrivals 256) ~seed:1 in
  check Alcotest.bool
    (Printf.sprintf "concurrency %d > 1" r.Csim.max_concurrent)
    true (r.Csim.max_concurrent > 1)

let test_local_beats_global_under_load () =
  let a = arrivals 256 in
  let g = Csim.simulate (global_cfg ()) ~arrivals:a ~seed:1 in
  let l = Csim.simulate (local_cfg ~vmin:8 ()) ~arrivals:a ~seed:1 in
  check Alcotest.bool
    (Printf.sprintf "makespan %.3f < %.3f" l.Csim.makespan g.Csim.makespan)
    true
    (l.Csim.makespan < g.Csim.makespan);
  check Alcotest.bool "lower mean latency" true
    (Csim.mean_latency l < Csim.mean_latency g)

let test_smaller_groups_more_parallel () =
  (* The paper's tradeoff: smaller Vmin -> more groups -> more parallelism. *)
  let a = arrivals 256 in
  let small = Csim.simulate (local_cfg ~vmin:8 ()) ~arrivals:a ~seed:1 in
  let large = Csim.simulate (local_cfg ~vmin:64 ()) ~arrivals:a ~seed:1 in
  check Alcotest.bool
    (Printf.sprintf "conc %d >= %d" small.Csim.max_concurrent large.Csim.max_concurrent)
    true
    (small.Csim.max_concurrent >= large.Csim.max_concurrent)

let test_global_messages_scale_with_snodes () =
  let a = arrivals 64 in
  let small = Csim.simulate (global_cfg ~snodes:8 ()) ~arrivals:a ~seed:1 in
  let big = Csim.simulate (global_cfg ~snodes:32 ()) ~arrivals:a ~seed:1 in
  check Alcotest.bool "more snodes, more traffic" true
    (big.Csim.messages > small.Csim.messages);
  (* Each creation broadcasts to S-1 peers and collects S-1 acks. *)
  check Alcotest.bool "at least 2(S-1) per creation" true
    (big.Csim.messages >= 64 * 2 * 31)

let test_local_messages_bounded_by_group () =
  (* Local sync messages depend on Vg <= Vmax, not on the cluster size. *)
  let a = arrivals 128 in
  let g = Csim.simulate (global_cfg ~snodes:64 ()) ~arrivals:a ~seed:1 in
  let l = Csim.simulate (local_cfg ~snodes:64 ~vmin:8 ()) ~arrivals:a ~seed:1 in
  check Alcotest.bool
    (Printf.sprintf "local %d < global %d" l.Csim.messages g.Csim.messages)
    true
    (l.Csim.messages < g.Csim.messages)

let test_validation () =
  Alcotest.check_raises "empty arrivals"
    (Invalid_argument "Creation_sim.simulate: no arrivals") (fun () ->
      ignore (Csim.simulate (global_cfg ()) ~arrivals:[||] ~seed:1));
  Alcotest.check_raises "unsorted arrivals"
    (Invalid_argument "Creation_sim.simulate: arrivals must be sorted and >= 0")
    (fun () ->
      ignore (Csim.simulate (global_cfg ()) ~arrivals:[| 1.; 0.5 |] ~seed:1))

let test_determinism () =
  let run () = Csim.simulate (local_cfg ()) ~arrivals:(arrivals 128) ~seed:4 in
  let a = run () and b = run () in
  check (Alcotest.float 0.) "same makespan" a.Csim.makespan b.Csim.makespan;
  check Alcotest.int "same messages" a.Csim.messages b.Csim.messages;
  check Alcotest.int "same conflicts" a.Csim.conflicts b.Csim.conflicts

let test_conflicts_bounded () =
  let r = Csim.simulate (local_cfg ()) ~arrivals:(arrivals 200) ~seed:2 in
  check Alcotest.bool "conflicts <= creations" true (r.Csim.conflicts <= 200)

let test_throughput_and_percentiles () =
  let r = Csim.simulate (global_cfg ()) ~arrivals:(arrivals 64) ~seed:3 in
  check Alcotest.bool "throughput positive" true (Csim.throughput r > 0.);
  check Alcotest.bool "p95 >= mean is typical here" true
    (Csim.p95_latency r >= Csim.mean_latency r /. 2.)

let test_bulk_arrivals () =
  (* All requests at t=0: the global protocol must still serialize them and
     terminate. *)
  let r = Csim.simulate (global_cfg ~snodes:4 ()) ~arrivals:(Trace.bulk ~n:32) ~seed:5 in
  check Alcotest.int "all done" 32 r.Csim.vnodes;
  check Alcotest.int "serialized" 1 r.Csim.max_concurrent;
  check Alcotest.int "everyone but the first waited" 31 r.Csim.conflicts

let suite =
  [
    Alcotest.test_case "completes all creations" `Quick test_completes_all;
    Alcotest.test_case "global approach is serialized" `Quick
      test_global_is_serialized;
    Alcotest.test_case "local approach overlaps" `Quick test_local_overlaps;
    Alcotest.test_case "local beats global under load" `Quick
      test_local_beats_global_under_load;
    Alcotest.test_case "smaller groups, more parallelism" `Quick
      test_smaller_groups_more_parallel;
    Alcotest.test_case "global traffic scales with snodes" `Quick
      test_global_messages_scale_with_snodes;
    Alcotest.test_case "local traffic bounded by group size" `Quick
      test_local_messages_bounded_by_group;
    Alcotest.test_case "input validation" `Quick test_validation;
    Alcotest.test_case "determinism" `Quick test_determinism;
    Alcotest.test_case "conflicts counted once per creation" `Quick
      test_conflicts_bounded;
    Alcotest.test_case "throughput and percentiles" `Quick
      test_throughput_and_percentiles;
    Alcotest.test_case "bulk arrivals" `Quick test_bulk_arrivals;
  ]
