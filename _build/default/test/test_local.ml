(* Tests for Dht_core.Local_dht (the paper's contribution, §3). *)

open Dht_core
module Space = Dht_hashspace.Space
module Span = Dht_hashspace.Span
module Rng = Dht_prng.Rng

let check = Alcotest.check
let sp = Space.create ~bits:30
let vid i = Vnode_id.make ~snode:i ~vnode:0

let grow ?(pmin = 8) ?(vmin = 8) ?(seed = 42) n =
  let dht =
    Local_dht.create ~space:sp ~pmin ~vmin ~rng:(Rng.of_int seed) ~first:(vid 0) ()
  in
  for i = 1 to n - 1 do
    ignore (Local_dht.add_vnode dht ~id:(vid i))
  done;
  dht

let test_initial_state () =
  let dht = grow 1 in
  check Alcotest.int "one vnode" 1 (Local_dht.vnode_count dht);
  check Alcotest.int "one group" 1 (Local_dht.group_count dht);
  check (Alcotest.float 0.) "sigma 0" 0. (Local_dht.sigma_qv dht);
  match Local_dht.groups dht with
  | [ b ] ->
      check Alcotest.bool "group 0" true
        (Group_id.equal (Balancer.group b) Group_id.root)
  | _ -> Alcotest.fail "expected exactly group 0"

let test_audit_through_growth () =
  let dht =
    Local_dht.create ~space:sp ~pmin:8 ~vmin:4 ~rng:(Rng.of_int 7) ~first:(vid 0) ()
  in
  for i = 1 to 600 do
    ignore (Local_dht.add_vnode dht ~id:(vid i));
    match Audit.check_local dht with
    | Ok () -> ()
    | Error es ->
        Alcotest.failf "audit at V=%d:\n%s" (i + 1) (String.concat "\n" es)
  done

let test_group_count_bounds () =
  let dht = grow ~pmin:8 ~vmin:8 1000 in
  let g = Local_dht.group_count dht in
  (* Every group holds between Vmin and Vmax vnodes. *)
  check Alcotest.bool (Printf.sprintf "G=%d within [63, 125]" g) true
    (g >= 1000 / 16 && g <= 1000 / 8)

let test_single_group_until_vmax () =
  let dht =
    Local_dht.create ~space:sp ~pmin:8 ~vmin:8 ~rng:(Rng.of_int 3) ~first:(vid 0) ()
  in
  for i = 1 to 15 do
    ignore (Local_dht.add_vnode dht ~id:(vid i));
    check Alcotest.int
      (Printf.sprintf "one group at V=%d" (i + 1))
      1 (Local_dht.group_count dht)
  done;
  (* The 17th vnode finds group 0 full and forces the first split. *)
  ignore (Local_dht.add_vnode dht ~id:(vid 16));
  check Alcotest.int "two groups at V=17" 2 (Local_dht.group_count dht);
  match Local_dht.group_splits dht with
  | [ info ] ->
      check Alcotest.bool "split of group 0" true
        (Group_id.equal info.Local_dht.parent Group_id.root);
      check Alcotest.int "recorded at V=16" 16 info.Local_dht.at_vnodes
  | _ -> Alcotest.fail "expected exactly one split"

let test_zone1_matches_global_exactly () =
  (* While there is a single group, victim choice is irrelevant (balancing
     is group-wide), so any seed reproduces the global approach exactly. *)
  let vmax = 16 in
  let local = grow ~pmin:8 ~vmin:8 ~seed:123 vmax in
  let global = Global_dht.create ~space:sp ~pmin:8 ~first:(vid 0) () in
  for i = 1 to vmax - 1 do
    ignore (Global_dht.add_vnode global ~id:(vid i))
  done;
  check (Alcotest.float 1e-12) "sigma equal at Vmax" (Global_dht.sigma_qv global)
    (Local_dht.sigma_qv local)

let test_quotas_sum_to_one () =
  let dht = grow 300 in
  check (Alcotest.float 1e-9) "sum Qv" 1.
    (Dht_stats.Descriptive.sum (Local_dht.quotas dht));
  check (Alcotest.float 1e-9) "sum Qg" 1.
    (Dht_stats.Descriptive.sum (Local_dht.group_quotas dht))

let test_sigma_fast_path_matches_metrics () =
  (* Local_dht.sigma_qv is an allocation-free fold; it must agree with the
     reference computation over the quota array. *)
  let dht = grow 257 in
  check (Alcotest.float 1e-9) "optimized = reference"
    (Metrics.sigma_percent (Local_dht.quotas dht))
    (Local_dht.sigma_qv dht);
  check (Alcotest.float 1e-9) "group sigma reference"
    (Metrics.sigma_percent (Local_dht.group_quotas dht))
    (Local_dht.sigma_qg dht)

let test_lookup_routes_correctly () =
  let dht = grow 500 in
  let rng = Rng.of_int 11 in
  for _ = 1 to 500 do
    let p = Rng.int rng (Space.size sp) in
    let span, owner = Local_dht.lookup dht p in
    check Alcotest.bool "span covers point" true (Span.contains sp span p);
    check Alcotest.bool "owner holds span" true
      (List.exists (Span.equal span) owner.Vnode.spans)
  done

let test_select_victim_matches_lookup () =
  let dht = grow 100 in
  let rng = Rng.of_int 13 in
  for _ = 1 to 200 do
    let p = Rng.int rng (Space.size sp) in
    let v = Local_dht.select_victim dht ~point:p in
    let _, owner = Local_dht.lookup dht p in
    check Alcotest.bool "same vnode" true (Vnode_id.equal v.Vnode.id owner.Vnode.id)
  done

let test_victim_distribution_tracks_quota () =
  (* §3.6: a group is chosen with probability equal to its quota. *)
  let dht = grow ~seed:19 200 in
  let groups = Local_dht.groups dht in
  let quota_of =
    List.map (fun b -> (Balancer.group b, Balancer.quota b)) groups
  in
  let hits = Hashtbl.create 16 in
  let rng = Rng.of_int 100 in
  let trials = 30_000 in
  for _ = 1 to trials do
    let p = Rng.int rng (Space.size sp) in
    let v = Local_dht.select_victim dht ~point:p in
    let g = v.Vnode.group in
    Hashtbl.replace hits g (1 + Option.value ~default:0 (Hashtbl.find_opt hits g))
  done;
  List.iter
    (fun (g, q) ->
      let observed =
        float_of_int (Option.value ~default:0 (Hashtbl.find_opt hits g))
        /. float_of_int trials
      in
      check Alcotest.bool
        (Printf.sprintf "group %s: observed %.4f vs quota %.4f"
           (Group_id.to_string g) observed q)
        true
        (abs_float (observed -. q) < 0.015))
    quota_of

let test_creation_report () =
  let dht = grow ~pmin:8 ~vmin:8 16 in
  (* Group 0 is full: the next routed creation must split it. *)
  let victim = Local_dht.select_victim dht ~point:0 in
  let report = Local_dht.add_vnode_routed dht ~id:(vid 16) ~victim in
  (match report.Local_dht.split with
  | None -> Alcotest.fail "expected a split"
  | Some s ->
      check Alcotest.bool "parent is victim group" true
        (Group_id.equal s.Local_dht.parent report.Local_dht.victim_group);
      check Alcotest.bool "target is a child" true
        (Group_id.equal report.Local_dht.target_group s.Local_dht.left
        || Group_id.equal report.Local_dht.target_group s.Local_dht.right));
  check Alcotest.bool "members contain the newcomer" true
    (Array.exists
       (fun v -> Vnode_id.equal v.Vnode.id (vid 16))
       report.Local_dht.group_members);
  check Alcotest.int "members = target group size"
    (Array.length report.Local_dht.group_members)
    (match Local_dht.find_group dht report.Local_dht.target_group with
    | Some b -> Balancer.vnode_count b
    | None -> -1)

let test_group_split_preserves_partitions () =
  let transfers_outside_target = ref 0 in
  let dht =
    Local_dht.create ~space:sp ~pmin:8 ~vmin:8 ~rng:(Rng.of_int 5) ~first:(vid 0)
      ~on_event:(fun _ -> ())
      ()
  in
  for i = 1 to 16 do
    ignore (Local_dht.add_vnode dht ~id:(vid i))
  done;
  ignore !transfers_outside_target;
  (* After the first split both children have Vmin or Vmin+1 vnodes and
     every vnode still holds within [Pmin, Pmax]. *)
  let sizes =
    List.map Balancer.vnode_count (Local_dht.groups dht) |> List.sort compare
  in
  check Alcotest.(list int) "8 + 9 vnodes" [ 8; 9 ] sizes;
  match Audit.check_local dht with
  | Ok () -> ()
  | Error es -> Alcotest.failf "audit: %s" (String.concat "\n" es)

let test_lpdr () =
  let dht = grow 40 in
  let groups = Local_dht.groups dht in
  List.iter
    (fun b ->
      let g = Balancer.group b in
      match Local_dht.lpdr dht g with
      | None -> Alcotest.fail "lpdr missing"
      | Some r ->
          check Alcotest.int "cardinal = Vg" (Balancer.vnode_count b)
            (Distribution_record.cardinal r);
          check Alcotest.int "total = Pg"
            (Balancer.total_partitions b)
            (Distribution_record.total_partitions r))
    groups;
  check Alcotest.bool "absent group" true
    (Local_dht.lpdr dht (Group_id.make ~value:0 ~bits:59) = None)

let test_gideal_formula () =
  check Alcotest.int "V=1" 1 (Metrics.gideal ~vnodes:1 ~vmax:64);
  check Alcotest.int "V=64" 1 (Metrics.gideal ~vnodes:64 ~vmax:64);
  check Alcotest.int "V=65" 2 (Metrics.gideal ~vnodes:65 ~vmax:64);
  check Alcotest.int "V=128" 2 (Metrics.gideal ~vnodes:128 ~vmax:64);
  check Alcotest.int "V=129" 4 (Metrics.gideal ~vnodes:129 ~vmax:64);
  check Alcotest.int "V=1024" 16 (Metrics.gideal ~vnodes:1024 ~vmax:64);
  Alcotest.check_raises "bad vmax" (Invalid_argument "Metrics.gideal: vmax not a power of two")
    (fun () -> ignore (Metrics.gideal ~vnodes:10 ~vmax:3))

let test_determinism () =
  let counts seed =
    let dht = grow ~seed 500 in
    (Local_dht.group_count dht, Local_dht.sigma_qv dht)
  in
  check (Alcotest.pair Alcotest.int (Alcotest.float 1e-12)) "same seed"
    (counts 77) (counts 77);
  let g1, s1 = counts 77 and g2, s2 = counts 78 in
  check Alcotest.bool "different seeds usually differ" true
    (g1 <> g2 || abs_float (s1 -. s2) > 1e-12)

let test_split_history_chains () =
  let dht = grow ~pmin:8 ~vmin:8 600 in
  let splits = Local_dht.group_splits dht in
  check Alcotest.bool "many splits happened" true (List.length splits > 10);
  List.iter
    (fun info ->
      let p = info.Local_dht.parent in
      let l = info.Local_dht.left and r = info.Local_dht.right in
      check Alcotest.int "left extends parent" (Group_id.bits p + 1) (Group_id.bits l);
      check Alcotest.int "left keeps value" (Group_id.value p) (Group_id.value l);
      check Alcotest.int "right sets the new msb"
        (Group_id.value p lor (1 lsl Group_id.bits p))
        (Group_id.value r))
    splits

let prop_invariants_random_seeds =
  QCheck.Test.make ~name:"audit passes for random seeds and sizes" ~count:25
    QCheck.(pair small_int (int_range 2 300))
    (fun (seed, n) ->
      let dht = grow ~pmin:8 ~vmin:4 ~seed n in
      match Audit.check_local dht with
      | Ok () -> true
      | Error es -> QCheck.Test.fail_reportf "%s" (String.concat "\n" es))

let suite =
  [
    Alcotest.test_case "initial state" `Quick test_initial_state;
    Alcotest.test_case "audit through 600 creations" `Quick
      test_audit_through_growth;
    Alcotest.test_case "group count bounds" `Quick test_group_count_bounds;
    Alcotest.test_case "single group until Vmax (L2 exception)" `Quick
      test_single_group_until_vmax;
    Alcotest.test_case "zone 1 equals global exactly" `Quick
      test_zone1_matches_global_exactly;
    Alcotest.test_case "quotas sum to 1" `Quick test_quotas_sum_to_one;
    Alcotest.test_case "sigma fast path = reference" `Quick
      test_sigma_fast_path_matches_metrics;
    Alcotest.test_case "lookup routes correctly" `Quick
      test_lookup_routes_correctly;
    Alcotest.test_case "select_victim = lookup owner" `Quick
      test_select_victim_matches_lookup;
    Alcotest.test_case "victim distribution tracks quota" `Quick
      test_victim_distribution_tracks_quota;
    Alcotest.test_case "creation report on split" `Quick test_creation_report;
    Alcotest.test_case "group split preserves partitions" `Quick
      test_group_split_preserves_partitions;
    Alcotest.test_case "lpdr snapshots" `Quick test_lpdr;
    Alcotest.test_case "gideal formula (figure 7)" `Quick test_gideal_formula;
    Alcotest.test_case "determinism per seed" `Quick test_determinism;
    Alcotest.test_case "split history chains ids" `Quick
      test_split_history_chains;
    QCheck_alcotest.to_alcotest prop_invariants_random_seeds;
  ]
