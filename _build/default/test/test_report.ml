(* Tests for Dht_report: Table, Csv, Ascii_chart. *)

module Table = Dht_report.Table
module Csv = Dht_report.Csv
module Chart = Dht_report.Ascii_chart

let check = Alcotest.check

let contains ~needle haystack =
  let nl = String.length needle and hl = String.length haystack in
  let rec go i = i + nl <= hl && (String.sub haystack i nl = needle || go (i + 1)) in
  go 0

(* --- Table --- *)

let test_table_render () =
  let t = Table.create ~headers:[ "name"; "value" ] in
  Table.add_row t [ "alpha"; "1" ];
  Table.add_row t [ "b"; "23456" ];
  let s = Table.to_string t in
  check Alcotest.bool "header present" true (contains ~needle:"name" s);
  check Alcotest.bool "row present" true (contains ~needle:"alpha" s);
  check Alcotest.bool "underline present" true (contains ~needle:"----" s);
  check Alcotest.int "rows" 2 (Table.row_count t);
  (* Rows render in insertion order. *)
  let lines = String.split_on_char '\n' s in
  check Alcotest.bool "alpha before b" true
    (match lines with _ :: _ :: r1 :: _ -> contains ~needle:"alpha" r1 | _ -> false)

let test_table_validation () =
  Alcotest.check_raises "no headers" (Invalid_argument "Table.create: no headers")
    (fun () -> ignore (Table.create ~headers:[]));
  let t = Table.create ~headers:[ "a"; "b" ] in
  Alcotest.check_raises "width mismatch" (Invalid_argument "Table.add_row: width mismatch")
    (fun () -> Table.add_row t [ "only-one" ])

let test_table_rowf () =
  let t = Table.create ~headers:[ "x" ] in
  Table.add_rowf t [ 3.14159 ];
  check Alcotest.bool "formatted" true (contains ~needle:"3.142" (Table.to_string t))

(* --- Csv --- *)

let test_csv_escape () =
  check Alcotest.string "plain" "abc" (Csv.escape "abc");
  check Alcotest.string "comma" "\"a,b\"" (Csv.escape "a,b");
  check Alcotest.string "quote" "\"a\"\"b\"" (Csv.escape "a\"b");
  check Alcotest.string "newline" "\"a\nb\"" (Csv.escape "a\nb");
  check Alcotest.string "line" "a,\"b,c\",d" (Csv.line [ "a"; "b,c"; "d" ])

let test_csv_write_roundtrip () =
  let path = Filename.temp_file "dht_test" ".csv" in
  Fun.protect
    ~finally:(fun () -> Sys.remove path)
    (fun () ->
      Csv.write ~path ~header:[ "k"; "v" ] [ [ "a"; "1" ]; [ "b"; "2" ] ];
      let ic = open_in path in
      let lines = List.init 3 (fun _ -> input_line ic) in
      close_in ic;
      check Alcotest.(list string) "contents" [ "k,v"; "a,1"; "b,2" ] lines)

let test_csv_columns () =
  let path = Filename.temp_file "dht_test" ".csv" in
  Fun.protect
    ~finally:(fun () -> Sys.remove path)
    (fun () ->
      Csv.write_columns ~path ~header:[ "x"; "y" ] [ [| 1.; 2. |]; [| 10.; 20. |] ];
      let ic = open_in path in
      let l1 = input_line ic in
      let l2 = input_line ic in
      close_in ic;
      check Alcotest.string "header" "x,y" l1;
      check Alcotest.string "first row" "1,10" l2);
  Alcotest.check_raises "ragged" (Invalid_argument "Csv.write_columns: ragged columns")
    (fun () ->
      Csv.write_columns ~path:"/tmp/never.csv" ~header:[ "x"; "y" ]
        [ [| 1. |]; [| 1.; 2. |] ]);
  Alcotest.check_raises "empty" (Invalid_argument "Csv.write_columns: no columns")
    (fun () -> Csv.write_columns ~path:"/tmp/never.csv" ~header:[] [])

(* --- Ascii_chart --- *)

let test_chart_renders () =
  let s1 =
    Chart.series ~label:"linear" ~xs:[| 0.; 1.; 2.; 3. |] ~ys:[| 0.; 1.; 2.; 3. |]
  in
  let s2 =
    Chart.series ~label:"flat" ~xs:[| 0.; 1.; 2.; 3. |] ~ys:[| 1.; 1.; 1.; 1. |]
  in
  let out = Chart.render ~width:40 ~height:10 [ s1; s2 ] in
  check Alcotest.bool "legend has first label" true (contains ~needle:"linear" out);
  check Alcotest.bool "legend has second label" true (contains ~needle:"flat" out);
  check Alcotest.bool "has glyph *" true (contains ~needle:"*" out);
  check Alcotest.bool "has glyph o" true (contains ~needle:"o" out);
  check Alcotest.bool "axis line" true (contains ~needle:"+--" out)

let test_chart_degenerate () =
  (* A single constant point must not divide by zero. *)
  let s = Chart.series ~label:"dot" ~xs:[| 5. |] ~ys:[| 5. |] in
  let out = Chart.render ~width:20 ~height:5 [ s ] in
  check Alcotest.bool "rendered" true (String.length out > 0)

let test_chart_validation () =
  Alcotest.check_raises "empty series"
    (Invalid_argument "Ascii_chart.series: empty or mismatched arrays") (fun () ->
      ignore (Chart.series ~label:"x" ~xs:[||] ~ys:[||]));
  Alcotest.check_raises "mismatched"
    (Invalid_argument "Ascii_chart.series: empty or mismatched arrays") (fun () ->
      ignore (Chart.series ~label:"x" ~xs:[| 1. |] ~ys:[| 1.; 2. |]));
  Alcotest.check_raises "no series" (Invalid_argument "Ascii_chart.render: no series")
    (fun () -> ignore (Chart.render []))

let suite =
  [
    Alcotest.test_case "table render" `Quick test_table_render;
    Alcotest.test_case "table validation" `Quick test_table_validation;
    Alcotest.test_case "table float rows" `Quick test_table_rowf;
    Alcotest.test_case "csv escaping" `Quick test_csv_escape;
    Alcotest.test_case "csv write roundtrip" `Quick test_csv_write_roundtrip;
    Alcotest.test_case "csv columns" `Quick test_csv_columns;
    Alcotest.test_case "chart renders" `Quick test_chart_renders;
    Alcotest.test_case "chart degenerate input" `Quick test_chart_degenerate;
    Alcotest.test_case "chart validation" `Quick test_chart_validation;
  ]
