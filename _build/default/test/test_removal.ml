(* Tests for dynamic leave (Balancer.remove_vnode, Global_dht.remove_vnode,
   Local_dht.remove_vnode) and policy transfers (Balancer.transfer_span). *)

open Dht_core
module Space = Dht_hashspace.Space
module Span = Dht_hashspace.Span
module Coverage = Dht_hashspace.Coverage
module Rng = Dht_prng.Rng

let check = Alcotest.check
let sp = Space.create ~bits:30
let vid i = Vnode_id.make ~snode:i ~vnode:0

(* --- Global removal --- *)

let grow_global n =
  let dht = Global_dht.create ~space:sp ~pmin:8 ~first:(vid 0) () in
  for i = 1 to n - 1 do
    ignore (Global_dht.add_vnode dht ~id:(vid i))
  done;
  dht

let test_remove_then_audit () =
  let dht = grow_global 50 in
  (match Global_dht.remove_vnode dht ~id:(vid 17) with
  | Ok () -> ()
  | Error _ -> Alcotest.fail "removal refused");
  check Alcotest.int "one fewer" 49 (Global_dht.vnode_count dht);
  check Alcotest.bool "vnode gone" true (Global_dht.find_vnode dht (vid 17) = None);
  match Audit.check_global dht with
  | Ok () -> ()
  | Error es -> Alcotest.failf "audit: %s" (String.concat "\n" es)

let test_remove_equalizes () =
  let dht = grow_global 50 in
  ignore (Global_dht.remove_vnode dht ~id:(vid 3));
  let counts = Global_dht.counts dht in
  let mn = Array.fold_left min max_int counts in
  let mx = Array.fold_left max 0 counts in
  check Alcotest.bool "spread <= 1 after removal" true (mx - mn <= 1);
  check (Alcotest.float 1e-9) "quotas still sum to 1" 1.
    (Dht_stats.Descriptive.sum (Global_dht.quotas dht))

let test_remove_back_to_power_of_two () =
  (* 65 -> 64: a power-of-two population must be perfectly balanced
     (removal-tolerant G5: all counts equal). *)
  let dht = grow_global 65 in
  ignore (Global_dht.remove_vnode dht ~id:(vid 64));
  let counts = Global_dht.counts dht in
  Array.iter (fun c -> check Alcotest.int "all equal" counts.(0) c) counts;
  check (Alcotest.float 1e-9) "sigma back to 0" 0. (Global_dht.sigma_qv dht)

let test_remove_unknown_raises () =
  let dht = grow_global 4 in
  Alcotest.check_raises "unknown id"
    (Invalid_argument "Global_dht.remove_vnode: unknown vnode id") (fun () ->
      ignore (Global_dht.remove_vnode dht ~id:(vid 99)))

let test_remove_last_vnode_blocked () =
  let dht = grow_global 1 in
  match Global_dht.remove_vnode dht ~id:(vid 0) with
  | Error `Last_vnode -> ()
  | Ok () | Error `Insufficient_capacity -> Alcotest.fail "expected Last_vnode"

let test_remove_join_leave_storm () =
  (* Interleaved joins and leaves preserve every invariant. *)
  let dht = grow_global 16 in
  let rng = Rng.of_int 9 in
  let live = ref (List.init 16 (fun i -> i)) in
  let next = ref 16 in
  for step = 0 to 199 do
    if Rng.bool rng && List.length !live > 2 then begin
      let arr = Array.of_list !live in
      let target = arr.(Rng.int rng (Array.length arr)) in
      match Global_dht.remove_vnode dht ~id:(vid target) with
      | Ok () -> live := List.filter (fun i -> i <> target) !live
      | Error _ -> ()
    end
    else begin
      ignore (Global_dht.add_vnode dht ~id:(vid !next));
      live := !next :: !live;
      incr next
    end;
    if step mod 20 = 0 then
      match Audit.check_global dht with
      | Ok () -> ()
      | Error es -> Alcotest.failf "step %d: %s" step (String.concat "\n" es)
  done;
  match Audit.check_global dht with
  | Ok () -> ()
  | Error es -> Alcotest.failf "final: %s" (String.concat "\n" es)

let test_removal_events_migrate_ownership () =
  let transfers = ref [] in
  let dht =
    Global_dht.create ~space:sp
      ~on_event:(function
        | Balancer.Transfer { src; dst; span } -> transfers := (src, dst, span) :: !transfers
        | Balancer.Split _ -> ())
      ~pmin:8 ~first:(vid 0) ()
  in
  for i = 1 to 7 do
    ignore (Global_dht.add_vnode dht ~id:(vid i))
  done;
  transfers := [];
  ignore (Global_dht.remove_vnode dht ~id:(vid 2));
  check Alcotest.bool "transfers fired" true (List.length !transfers > 0);
  List.iter
    (fun (_, dst, span) ->
      (* Every transferred span must now be routed to its new owner. *)
      let span', owner = Global_dht.lookup dht (Span.start sp span) in
      if Span.equal span span' then
        check Alcotest.bool "routing updated" true (owner == dst))
    !transfers

(* --- Local removal --- *)

let grow_local ?(pmin = 8) ?(vmin = 8) ?(seed = 5) n =
  let dht =
    Local_dht.create ~space:sp ~pmin ~vmin ~rng:(Rng.of_int seed) ~first:(vid 0) ()
  in
  for i = 1 to n - 1 do
    ignore (Local_dht.add_vnode dht ~id:(vid i))
  done;
  dht

let test_local_remove_ok () =
  let dht = grow_local 200 in
  (* Find a vnode whose group is above Vmin so removal is admissible. *)
  let target =
    List.find_map
      (fun b ->
        if Balancer.vnode_count b > 8 then Some (Balancer.vnodes b).(0) else None)
      (Local_dht.groups dht)
  in
  match target with
  | None -> Alcotest.fail "no group above Vmin"
  | Some v -> (
      (match Local_dht.remove_vnode dht ~id:v.Vnode.id with
      | Ok () -> ()
      | Error e -> Alcotest.failf "refused: %a" Local_dht.pp_removal_error e);
      check Alcotest.int "count down" 199 (Local_dht.vnode_count dht);
      match Audit.check_local dht with
      | Ok () -> ()
      | Error es -> Alcotest.failf "audit: %s" (String.concat "\n" es))

let test_local_remove_group_floor () =
  (* Grow to exactly Vmax + 1 = 17: group 0 splits into two groups of 8, the
     newcomer joins one of them, leaving the other at exactly Vmin. *)
  let dht = grow_local ~pmin:8 ~vmin:8 17 in
  let floor_group =
    List.find_opt (fun b -> Balancer.vnode_count b = 8) (Local_dht.groups dht)
  in
  match floor_group with
  | None -> Alcotest.fail "expected a group at Vmin after the first split"
  | Some b -> (
      let v = (Balancer.vnodes b).(0) in
      match Local_dht.remove_vnode dht ~id:v.Vnode.id with
      | Error (Local_dht.Group_at_minimum g) ->
          check Alcotest.bool "right group" true (Group_id.equal g (Balancer.group b))
      | Ok () -> Alcotest.fail "L2 floor not enforced"
      | Error e -> Alcotest.failf "wrong error: %a" Local_dht.pp_removal_error e)

let test_local_remove_sole_group_exception () =
  (* While group 0 is alone it may shrink below Vmin (the L2 exception). *)
  let dht = grow_local ~vmin:8 6 in
  (match Local_dht.remove_vnode dht ~id:(vid 3) with
  | Ok () -> ()
  | Error e -> Alcotest.failf "refused: %a" Local_dht.pp_removal_error e);
  check Alcotest.int "five left" 5 (Local_dht.vnode_count dht);
  match Audit.check_local dht with
  | Ok () -> ()
  | Error es -> Alcotest.failf "audit: %s" (String.concat "\n" es)

let test_local_churn_storm () =
  let dht = grow_local ~pmin:8 ~vmin:4 300 in
  let rng = Rng.of_int 77 in
  let live = ref (List.init 300 (fun i -> i)) in
  let next = ref 300 in
  for step = 0 to 299 do
    if Rng.float rng < 0.5 && List.length !live > 2 then begin
      let arr = Array.of_list !live in
      let target = arr.(Rng.int rng (Array.length arr)) in
      match Local_dht.remove_vnode dht ~id:(vid target) with
      | Ok () -> live := List.filter (fun i -> i <> target) !live
      | Error (Local_dht.Group_at_minimum _ | Local_dht.Group_capacity _
              | Local_dht.Last_vnode) ->
          ()
    end
    else begin
      ignore (Local_dht.add_vnode dht ~id:(vid !next));
      live := !next :: !live;
      incr next
    end;
    if step mod 30 = 0 then
      match Audit.check_local dht with
      | Ok () -> ()
      | Error es -> Alcotest.failf "step %d: %s" step (String.concat "\n" es)
  done;
  match Audit.check_local dht with
  | Ok () -> ()
  | Error es -> Alcotest.failf "final: %s" (String.concat "\n" es)

let test_duplicate_id_rejected () =
  let dht = grow_local 4 in
  Alcotest.check_raises "duplicate"
    (Invalid_argument "Local_dht: duplicate vnode id") (fun () ->
      ignore (Local_dht.add_vnode dht ~id:(vid 2)));
  let g = grow_global 4 in
  Alcotest.check_raises "duplicate global"
    (Invalid_argument "Global_dht: duplicate vnode id") (fun () ->
      ignore (Global_dht.add_vnode g ~id:(vid 2)))

let test_find_vnode () =
  let dht = grow_local 10 in
  (match Local_dht.find_vnode dht (vid 4) with
  | Some v -> check Alcotest.bool "right id" true (Vnode_id.equal v.Vnode.id (vid 4))
  | None -> Alcotest.fail "missing");
  check Alcotest.bool "absent" true (Local_dht.find_vnode dht (vid 400) = None)

(* --- transfer_span --- *)

let test_transfer_span () =
  let dht = grow_global 6 in
  let vnodes = Global_dht.vnodes dht in
  let b = Global_dht.balancer dht in
  (* Find a donor above Pmin and a receiver below Pmax. *)
  let src = Array.fold_left (fun a v -> if v.Vnode.count > a.Vnode.count then v else a) vnodes.(0) vnodes in
  let dst = Array.fold_left (fun a v -> if v.Vnode.count < a.Vnode.count then v else a) vnodes.(0) vnodes in
  if src.Vnode.count > 8 && dst.Vnode.count < 16 && src != dst then begin
    let span = List.hd src.Vnode.spans in
    (match Balancer.transfer_span b ~src ~dst span with
    | Ok () -> ()
    | Error _ -> Alcotest.fail "admissible transfer refused");
    check Alcotest.bool "span moved" true (List.exists (Span.equal span) dst.Vnode.spans);
    (* Routing map followed the move. *)
    let _, owner = Global_dht.lookup dht (Span.start sp span) in
    check Alcotest.bool "routed to dst" true (owner == dst);
    match Audit.check_global dht with
    | Ok () -> ()
    | Error es -> Alcotest.failf "audit: %s" (String.concat "\n" es)
  end

let test_transfer_span_guards () =
  let dht = grow_global 4 in
  let b = Global_dht.balancer dht in
  let vnodes = Global_dht.vnodes dht in
  (* At V=4 (power of two) every vnode sits at Pmin: all donors blocked. *)
  let v0 = vnodes.(0) and v1 = vnodes.(1) in
  (match Balancer.transfer_span b ~src:v0 ~dst:v1 (List.hd v0.Vnode.spans) with
  | Error `Src_at_pmin -> ()
  | Ok () -> Alcotest.fail "G4 lower bound not enforced"
  | Error _ -> Alcotest.fail "wrong error");
  (* Not the owner of the span. *)
  let dht2 = grow_global 6 in
  let b2 = Global_dht.balancer dht2 in
  let w = Global_dht.vnodes dht2 in
  let donor = Array.fold_left (fun a v -> if v.Vnode.count > a.Vnode.count then v else a) w.(0) w in
  let other = if donor == w.(0) then w.(1) else w.(0) in
  if donor.Vnode.count > 8 then
    match Balancer.transfer_span b2 ~src:donor ~dst:other (List.hd other.Vnode.spans) with
    | Error `Not_owner -> ()
    | Ok () -> Alcotest.fail "ownership not checked"
    | Error _ -> Alcotest.fail "wrong error kind"

let test_swap_spans () =
  let dht = grow_global 4 in
  let b = Global_dht.balancer dht in
  let vnodes = Global_dht.vnodes dht in
  let a = vnodes.(0) and c = vnodes.(1) in
  let span_a = List.hd a.Vnode.spans and span_b = List.hd c.Vnode.spans in
  let count_a = a.Vnode.count and count_b = c.Vnode.count in
  (match Balancer.swap_spans b ~a ~b:c ~span_a ~span_b with
  | Ok () -> ()
  | Error _ -> Alcotest.fail "swap refused");
  check Alcotest.int "count a unchanged" count_a a.Vnode.count;
  check Alcotest.int "count b unchanged" count_b c.Vnode.count;
  check Alcotest.bool "a holds span_b" true
    (List.exists (Span.equal span_b) a.Vnode.spans);
  check Alcotest.bool "b holds span_a" true
    (List.exists (Span.equal span_a) c.Vnode.spans);
  (* Routing followed both halves of the swap. *)
  let _, o1 = Global_dht.lookup dht (Span.start sp span_a) in
  let _, o2 = Global_dht.lookup dht (Span.start sp span_b) in
  check Alcotest.bool "span_a routed to b" true (o1 == c);
  check Alcotest.bool "span_b routed to a" true (o2 == a);
  (match Audit.check_global dht with
  | Ok () -> ()
  | Error es -> Alcotest.failf "audit: %s" (String.concat "\n" es));
  (* Guards. *)
  (match Balancer.swap_spans b ~a ~b:a ~span_a:span_b ~span_b with
  | Error `Same_vnode -> ()
  | Ok () | Error _ -> Alcotest.fail "same-vnode swap allowed");
  match Balancer.swap_spans b ~a ~b:c ~span_a (* no longer owned by a *) ~span_b with
  | Error `Not_owner -> ()
  | Ok () | Error _ -> Alcotest.fail "ownership not checked"

let suite =
  [
    Alcotest.test_case "swap_spans exchanges and routes" `Quick test_swap_spans;
    Alcotest.test_case "global: remove then audit" `Quick test_remove_then_audit;
    Alcotest.test_case "global: removal equalizes" `Quick test_remove_equalizes;
    Alcotest.test_case "global: perfect balance at power of two" `Quick
      test_remove_back_to_power_of_two;
    Alcotest.test_case "global: unknown id raises" `Quick
      test_remove_unknown_raises;
    Alcotest.test_case "global: last vnode blocked" `Quick
      test_remove_last_vnode_blocked;
    Alcotest.test_case "global: join/leave storm" `Quick
      test_remove_join_leave_storm;
    Alcotest.test_case "global: removal keeps routing consistent" `Quick
      test_removal_events_migrate_ownership;
    Alcotest.test_case "local: remove from large group" `Quick
      test_local_remove_ok;
    Alcotest.test_case "local: L2 floor enforced" `Quick
      test_local_remove_group_floor;
    Alcotest.test_case "local: sole-group exception" `Quick
      test_local_remove_sole_group_exception;
    Alcotest.test_case "local: churn storm audits clean" `Quick
      test_local_churn_storm;
    Alcotest.test_case "duplicate ids rejected" `Quick test_duplicate_id_rejected;
    Alcotest.test_case "find_vnode" `Quick test_find_vnode;
    Alcotest.test_case "transfer_span moves and routes" `Quick test_transfer_span;
    Alcotest.test_case "transfer_span guards G4/ownership" `Quick
      test_transfer_span_guards;
  ]
