test/test_balancer.ml: Alcotest Array Balancer Dht_core Dht_hashspace Dht_stats Group_id List Params Printf QCheck QCheck_alcotest String Vnode Vnode_id
