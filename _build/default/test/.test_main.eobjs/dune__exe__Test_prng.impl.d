test/test_prng.ml: Alcotest Array Dht_prng Dht_stats Fun Printf QCheck QCheck_alcotest
