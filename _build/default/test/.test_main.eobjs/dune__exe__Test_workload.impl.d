test/test_workload.ml: Alcotest Array Dht_prng Dht_workload List Printf String
