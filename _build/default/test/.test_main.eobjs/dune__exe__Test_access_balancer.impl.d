test/test_access_balancer.ml: Alcotest Array Audit Balancer Dht_core Dht_experiments Dht_kv Dht_prng Dht_workload List Local_dht Params Printf String Vnode Vnode_id
