test/test_metrics.ml: Alcotest Array Balancer Dht_core Dht_hashspace Distribution_record Format Global_dht Group_id Metrics Params String Vnode Vnode_id
