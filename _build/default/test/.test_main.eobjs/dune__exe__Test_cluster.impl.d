test/test_cluster.ml: Alcotest Array Dht_cluster Dht_prng Dht_stats QCheck QCheck_alcotest
