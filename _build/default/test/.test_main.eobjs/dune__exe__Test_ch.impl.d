test/test_ch.ml: Alcotest Array Dht_ch Dht_hashspace Dht_prng Dht_stats Hashtbl Option Printf
