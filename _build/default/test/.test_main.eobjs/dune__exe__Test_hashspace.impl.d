test/test_hashspace.ml: Alcotest Dht_hashspace Dht_prng Fun List QCheck QCheck_alcotest
