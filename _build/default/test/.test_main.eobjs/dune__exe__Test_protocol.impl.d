test/test_protocol.ml: Alcotest Array Dht_prng Dht_protocol Dht_workload Printf
