test/test_ids.ml: Alcotest Array Dht_core Dht_prng List QCheck QCheck_alcotest
