test/test_global.ml: Alcotest Array Audit Balancer Dht_core Dht_hashspace Dht_prng Dht_stats Distribution_record Global_dht List Printf String Vnode Vnode_id
