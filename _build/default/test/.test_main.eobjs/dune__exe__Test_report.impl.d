test/test_report.ml: Alcotest Dht_report Filename Fun List String Sys
