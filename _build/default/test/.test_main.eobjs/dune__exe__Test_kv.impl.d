test/test_kv.ml: Alcotest Array Dht_core Dht_kv Dht_prng Dht_workload Local_dht Params Printf Vnode Vnode_id
