test/test_snapshot.ml: Alcotest Audit Dht_core Dht_prng Filename Fun Global_dht Local_dht QCheck QCheck_alcotest Snapshot String Sys Vnode_id
