test/test_runtime.ml: Alcotest Array Balancer Dht_core Dht_event_sim Dht_hashspace Dht_prng Dht_snode Group_id Hashtbl List Params Printf QCheck QCheck_alcotest String Vnode Vnode_id
