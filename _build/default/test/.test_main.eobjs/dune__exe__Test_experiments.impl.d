test/test_experiments.ml: Alcotest Array Dht_core Dht_experiments Dht_prng Dht_protocol Dht_stats List Printf
