test/test_stats.ml: Alcotest Array Dht_stats List QCheck QCheck_alcotest
