test/test_registry.ml: Alcotest Array Audit Dht_cluster Dht_core Dht_experiments Dht_registry Dht_stats List Local_dht Printf String
