test/test_hashes.ml: Alcotest Dht_hashes Dht_hashspace Dht_stats Int64 Printf QCheck QCheck_alcotest
