test/test_removal.ml: Alcotest Array Audit Balancer Dht_core Dht_hashspace Dht_prng Dht_stats Global_dht Group_id List Local_dht String Vnode Vnode_id
