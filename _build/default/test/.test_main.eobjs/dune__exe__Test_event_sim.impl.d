test/test_event_sim.ml: Alcotest Dht_event_sim Dht_prng List
