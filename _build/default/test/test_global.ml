(* Tests for Dht_core.Global_dht (the base model, §2). *)

open Dht_core
module Space = Dht_hashspace.Space
module Span = Dht_hashspace.Span
module Rng = Dht_prng.Rng

let check = Alcotest.check
let sp = Space.create ~bits:30
let vid i = Vnode_id.make ~snode:i ~vnode:0

let grow ?(pmin = 32) n =
  let dht = Global_dht.create ~space:sp ~pmin ~first:(vid 0) () in
  for i = 1 to n - 1 do
    ignore (Global_dht.add_vnode dht ~id:(vid i))
  done;
  dht

let test_sigma_equivalence () =
  (* §2.4: in the global approach sigma(Qv) = sigma(Pv). *)
  let dht = Global_dht.create ~space:sp ~pmin:32 ~first:(vid 0) () in
  for i = 1 to 150 do
    ignore (Global_dht.add_vnode dht ~id:(vid i));
    check
      (Alcotest.float 1e-9)
      (Printf.sprintf "sigma(Qv) = sigma(Pv) at V=%d" (i + 1))
      (Global_dht.sigma_pv dht) (Global_dht.sigma_qv dht)
  done

let test_audit_through_growth () =
  let dht = Global_dht.create ~space:sp ~pmin:8 ~first:(vid 0) () in
  for i = 1 to 300 do
    ignore (Global_dht.add_vnode dht ~id:(vid i));
    match Audit.check_global dht with
    | Ok () -> ()
    | Error es ->
        Alcotest.failf "audit at V=%d:\n%s" (i + 1) (String.concat "\n" es)
  done

let test_quotas_sum_to_one () =
  let dht = grow 100 in
  let total = Dht_stats.Descriptive.sum (Global_dht.quotas dht) in
  check (Alcotest.float 1e-9) "sum Qv" 1. total

let test_perfect_balance_at_powers_of_two () =
  let dht = grow 256 in
  check Alcotest.int "V" 256 (Global_dht.vnode_count dht);
  Array.iter (fun c -> check Alcotest.int "Pmin each" 32 c) (Global_dht.counts dht);
  check (Alcotest.float 1e-9) "sigma 0" 0. (Global_dht.sigma_qv dht)

let test_lookup_routes_correctly () =
  let dht = grow 77 in
  let rng = Rng.of_int 5 in
  for _ = 1 to 500 do
    let p = Rng.int rng (Space.size sp) in
    let span, owner = Global_dht.lookup dht p in
    check Alcotest.bool "span covers point" true (Span.contains sp span p);
    check Alcotest.bool "owner holds span" true
      (List.exists (Span.equal span) owner.Vnode.spans)
  done

let test_lookup_rejects_outside () =
  let dht = grow 3 in
  Alcotest.check_raises "outside space"
    (Invalid_argument "Point_map.find_point: point outside space") (fun () ->
      ignore (Global_dht.lookup dht (-1)))

let test_gpdr () =
  let dht = grow 10 in
  let gpdr = Global_dht.gpdr dht in
  check Alcotest.int "one entry per vnode" 10 (Distribution_record.cardinal gpdr);
  check Alcotest.int "totals agree"
    (Array.fold_left ( + ) 0 (Global_dht.counts dht))
    (Distribution_record.total_partitions gpdr);
  (match Distribution_record.victim gpdr with
  | None -> Alcotest.fail "no victim"
  | Some e ->
      let mx = Array.fold_left max 0 (Global_dht.counts dht) in
      check Alcotest.int "victim holds the max" mx e.Distribution_record.partitions);
  let sorted = Distribution_record.entries_sorted gpdr in
  for i = 1 to Array.length sorted - 1 do
    check Alcotest.bool "descending" true
      (sorted.(i - 1).Distribution_record.partitions
       >= sorted.(i).Distribution_record.partitions)
  done

let test_on_event_observes_transfers () =
  let transfers = ref 0 and splits = ref 0 in
  let on_event = function
    | Balancer.Transfer _ -> incr transfers
    | Balancer.Split _ -> incr splits
  in
  let dht = Global_dht.create ~space:sp ~on_event ~pmin:8 ~first:(vid 0) () in
  ignore (Global_dht.add_vnode dht ~id:(vid 1));
  check Alcotest.int "splits on first doubling" 8 !splits;
  check Alcotest.int "transfers to newcomer" 8 !transfers

let test_level_growth () =
  (* Level starts at log2 pmin and increases by one at each doubling. *)
  let dht = Global_dht.create ~space:sp ~pmin:8 ~first:(vid 0) () in
  check Alcotest.int "initial level" 3 (Global_dht.level dht);
  for i = 1 to 16 do
    ignore (Global_dht.add_vnode dht ~id:(vid i))
  done;
  (* V=17: doublings happened when V was 1, 2, 4, 8 and 16 -> level 8. *)
  check Alcotest.int "level after 5 doublings" 8 (Global_dht.level dht)

let test_matches_paper_formula () =
  (* With V vnodes and P = 2^l partitions, counts are floor/ceil of P/V;
     sigma is computable in closed form. Cross-check at V=100, pmin=32. *)
  let dht = grow 100 in
  let p = Array.fold_left ( + ) 0 (Global_dht.counts dht) in
  check Alcotest.int "P = 4096" 4096 p;
  let lo = p / 100 and n_hi = p mod 100 in
  let mean = float_of_int p /. 100. in
  let dev_lo = mean -. float_of_int lo and dev_hi = float_of_int (lo + 1) -. mean in
  let expected =
    100.
    *. sqrt
         (((float_of_int (100 - n_hi) *. dev_lo *. dev_lo)
          +. (float_of_int n_hi *. dev_hi *. dev_hi))
         /. 100.)
    /. mean
  in
  check (Alcotest.float 1e-6) "closed-form sigma" expected (Global_dht.sigma_qv dht)

let suite =
  [
    Alcotest.test_case "sigma(Qv) = sigma(Pv) (paper 2.4)" `Quick
      test_sigma_equivalence;
    Alcotest.test_case "audit through growth" `Quick test_audit_through_growth;
    Alcotest.test_case "quotas sum to 1" `Quick test_quotas_sum_to_one;
    Alcotest.test_case "perfect balance at powers of two" `Quick
      test_perfect_balance_at_powers_of_two;
    Alcotest.test_case "lookup routes correctly" `Quick
      test_lookup_routes_correctly;
    Alcotest.test_case "lookup rejects outside points" `Quick
      test_lookup_rejects_outside;
    Alcotest.test_case "gpdr snapshot" `Quick test_gpdr;
    Alcotest.test_case "on_event observes balancing" `Quick
      test_on_event_observes_transfers;
    Alcotest.test_case "split level growth" `Quick test_level_growth;
    Alcotest.test_case "closed-form sigma cross-check" `Quick
      test_matches_paper_formula;
  ]
