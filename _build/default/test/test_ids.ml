(* Tests for Dht_core.Vnode_id and Dht_core.Group_id. *)

module Vnode_id = Dht_core.Vnode_id
module Group_id = Dht_core.Group_id
module Rng = Dht_prng.Rng

let check = Alcotest.check

let gid_testable = Alcotest.testable Group_id.pp Group_id.equal

(* --- Vnode_id --- *)

let test_vnode_id_basics () =
  let id = Vnode_id.make ~snode:3 ~vnode:7 in
  check Alcotest.string "canonical form" "3.7" (Vnode_id.to_string id);
  check Alcotest.bool "equal" true
    (Vnode_id.equal id (Vnode_id.make ~snode:3 ~vnode:7));
  check Alcotest.bool "not equal" false
    (Vnode_id.equal id (Vnode_id.make ~snode:3 ~vnode:8));
  Alcotest.check_raises "negative" (Invalid_argument "Vnode_id.make: negative component")
    (fun () -> ignore (Vnode_id.make ~snode:(-1) ~vnode:0))

let test_vnode_id_order () =
  let a = Vnode_id.make ~snode:1 ~vnode:9 in
  let b = Vnode_id.make ~snode:2 ~vnode:0 in
  check Alcotest.bool "snode major" true (Vnode_id.compare a b < 0);
  let c = Vnode_id.make ~snode:1 ~vnode:10 in
  check Alcotest.bool "vnode minor" true (Vnode_id.compare a c < 0);
  check Alcotest.int "hash stable" (Vnode_id.hash a) (Vnode_id.hash a)

(* --- Group_id --- *)

let test_group_id_root () =
  check Alcotest.int "root value" 0 (Group_id.value Group_id.root);
  check Alcotest.int "root bits" 0 (Group_id.bits Group_id.root);
  check Alcotest.string "root pp" "0b(=0)" (Group_id.to_string Group_id.root)

let test_group_id_paper_figure3 () =
  (* Reproduce the identifier tree of figure 3 exactly. *)
  let g0, g1 = Group_id.split Group_id.root in
  check Alcotest.(pair int int) "gen1 left" (0, 1) (Group_id.value g0, Group_id.bits g0);
  check Alcotest.(pair int int) "gen1 right" (1, 1) (Group_id.value g1, Group_id.bits g1);
  let g00, g10 = Group_id.split g0 in
  let g01, g11 = Group_id.split g1 in
  check Alcotest.int "00b = 0" 0 (Group_id.value g00);
  check Alcotest.int "10b = 2" 2 (Group_id.value g10);
  check Alcotest.int "01b = 1" 1 (Group_id.value g01);
  check Alcotest.int "11b = 3" 3 (Group_id.value g11);
  (* Third generation: {0,4,2,6,1,5,3,7} as in the figure. *)
  let values =
    List.concat_map
      (fun g ->
        let a, b = Group_id.split g in
        [ Group_id.value a; Group_id.value b ])
      [ g00; g10; g01; g11 ]
  in
  check Alcotest.(list int) "gen3 values" [ 0; 4; 2; 6; 1; 5; 3; 7 ] values;
  check Alcotest.string "pp of 6 on 3 bits" "110b(=6)"
    (Group_id.to_string (Group_id.make ~value:6 ~bits:3))

let test_group_id_validation () =
  Alcotest.check_raises "value out of bits"
    (Invalid_argument "Group_id.make: value outside [0, 2^bits)") (fun () ->
      ignore (Group_id.make ~value:4 ~bits:2));
  Alcotest.check_raises "negative bits"
    (Invalid_argument "Group_id.make: bits outside [0, 60]") (fun () ->
      ignore (Group_id.make ~value:0 ~bits:(-1)));
  let deep = Group_id.make ~value:0 ~bits:60 in
  Alcotest.check_raises "overflow" (Invalid_argument "Group_id.split: identifier overflow")
    (fun () -> ignore (Group_id.split deep))

let test_group_id_order () =
  let a = Group_id.make ~value:3 ~bits:2 in
  let b = Group_id.make ~value:0 ~bits:3 in
  check Alcotest.bool "bits major" true (Group_id.compare a b < 0);
  check Alcotest.bool "value minor" true
    (Group_id.compare (Group_id.make ~value:1 ~bits:3) b > 0);
  check gid_testable "equal roundtrip" a (Group_id.make ~value:3 ~bits:2)

let prop_split_uniqueness =
  (* Simulate an arbitrary split history: ids in the live frontier remain
     pairwise distinct (decentralized uniqueness, §3.7.1). *)
  QCheck.Test.make ~name:"ids stay unique through random split storms" ~count:100
    QCheck.(pair small_int (int_range 1 60))
    (fun (seed, splits) ->
      let rng = Rng.of_int seed in
      let frontier = ref [ Group_id.root ] in
      for _ = 1 to splits do
        let arr = Array.of_list !frontier in
        let pick = arr.(Rng.int rng (Array.length arr)) in
        if Group_id.bits pick < 58 then begin
          let a, b = Group_id.split pick in
          frontier := a :: b :: List.filter (fun g -> not (Group_id.equal g pick)) !frontier
        end
      done;
      let sorted = List.sort Group_id.compare !frontier in
      let rec distinct = function
        | a :: (b :: _ as rest) -> (not (Group_id.equal a b)) && distinct rest
        | _ -> true
      in
      distinct sorted)

let suite =
  [
    Alcotest.test_case "vnode id basics" `Quick test_vnode_id_basics;
    Alcotest.test_case "vnode id ordering" `Quick test_vnode_id_order;
    Alcotest.test_case "group id root" `Quick test_group_id_root;
    Alcotest.test_case "group id matches figure 3" `Quick
      test_group_id_paper_figure3;
    Alcotest.test_case "group id validation" `Quick test_group_id_validation;
    Alcotest.test_case "group id ordering" `Quick test_group_id_order;
    QCheck_alcotest.to_alcotest prop_split_uniqueness;
  ]
