(* Tests for Dht_event_sim: Heap, Engine, Network. *)

module Heap = Dht_event_sim.Heap
module Engine = Dht_event_sim.Engine
module Network = Dht_event_sim.Network
module Rng = Dht_prng.Rng

let check = Alcotest.check

(* --- Heap --- *)

let test_heap_orders_random_input () =
  let rng = Rng.of_int 1 in
  let h = Heap.create () in
  for i = 0 to 499 do
    Heap.push h ~time:(Rng.float rng) ~seq:i i
  done;
  check Alcotest.int "length" 500 (Heap.length h);
  let last = ref neg_infinity in
  let popped = ref 0 in
  let rec drain () =
    match Heap.pop h with
    | None -> ()
    | Some (t, _, _) ->
        check Alcotest.bool "non-decreasing" true (t >= !last);
        last := t;
        incr popped;
        drain ()
  in
  drain ();
  check Alcotest.int "all popped" 500 !popped;
  check Alcotest.bool "empty" true (Heap.is_empty h)

let test_heap_fifo_at_equal_times () =
  let h = Heap.create () in
  for i = 0 to 9 do
    Heap.push h ~time:1. ~seq:i i
  done;
  for i = 0 to 9 do
    match Heap.pop h with
    | Some (_, _, v) -> check Alcotest.int "fifo" i v
    | None -> Alcotest.fail "heap drained early"
  done

let test_heap_peek () =
  let h = Heap.create () in
  check Alcotest.bool "empty peek" true (Heap.peek_time h = None);
  Heap.push h ~time:3. ~seq:0 ();
  Heap.push h ~time:1. ~seq:1 ();
  check (Alcotest.option (Alcotest.float 0.)) "min time" (Some 1.) (Heap.peek_time h)

(* --- Engine --- *)

let test_engine_dispatch_order () =
  let e = Engine.create () in
  let log = ref [] in
  Engine.schedule e ~delay:2. (fun () -> log := 2 :: !log);
  Engine.schedule e ~delay:1. (fun () -> log := 1 :: !log);
  Engine.schedule e ~delay:3. (fun () -> log := 3 :: !log);
  Engine.run e;
  check Alcotest.(list int) "time order" [ 1; 2; 3 ] (List.rev !log);
  check (Alcotest.float 0.) "clock at last event" 3. (Engine.now e)

let test_engine_nested_scheduling () =
  let e = Engine.create () in
  let fired = ref [] in
  Engine.schedule e ~delay:1. (fun () ->
      fired := ("a", Engine.now e) :: !fired;
      Engine.schedule e ~delay:0.5 (fun () ->
          fired := ("b", Engine.now e) :: !fired));
  Engine.run e;
  match List.rev !fired with
  | [ ("a", ta); ("b", tb) ] ->
      check (Alcotest.float 1e-12) "a at 1" 1. ta;
      check (Alcotest.float 1e-12) "b at 1.5" 1.5 tb
  | _ -> Alcotest.fail "wrong firing sequence"

let test_engine_validation () =
  let e = Engine.create () in
  Alcotest.check_raises "negative delay"
    (Invalid_argument "Engine.schedule: negative or non-finite delay") (fun () ->
      Engine.schedule e ~delay:(-1.) (fun () -> ()));
  Engine.schedule e ~delay:5. (fun () -> ());
  Engine.run e;
  Alcotest.check_raises "past absolute time" (Invalid_argument "Engine.at: time in the past")
    (fun () -> Engine.at e ~time:1. (fun () -> ()))

let test_engine_run_until () =
  let e = Engine.create () in
  let count = ref 0 in
  for i = 1 to 10 do
    Engine.schedule e ~delay:(float_of_int i) (fun () -> incr count)
  done;
  Engine.run ~until:5.5 e;
  check Alcotest.int "only first five" 5 !count;
  check Alcotest.int "rest pending" 5 (Engine.pending e);
  Engine.run e;
  check Alcotest.int "drained" 10 !count

let test_engine_max_events () =
  let e = Engine.create () in
  for i = 1 to 10 do
    Engine.schedule e ~delay:(float_of_int i) (fun () -> ())
  done;
  Engine.run ~max_events:3 e;
  check Alcotest.int "seven left" 7 (Engine.pending e)

let test_engine_step_empty () =
  let e = Engine.create () in
  check Alcotest.bool "step on empty" false (Engine.step e)

(* --- Network --- *)

let test_network_latency_model () =
  let e = Engine.create () in
  let link = Network.link ~base_latency:1e-3 ~byte_time:1e-6 in
  let net = Network.create ~loopback:5e-6 e link in
  check (Alcotest.float 1e-12) "base + bytes" (1e-3 +. 1e-3)
    (Network.transit_time net ~src:0 ~dst:1 ~bytes:1000);
  check (Alcotest.float 1e-12) "loopback" 5e-6
    (Network.transit_time net ~src:3 ~dst:3 ~bytes:1_000_000);
  Alcotest.check_raises "negative bytes"
    (Invalid_argument "Network.transit_time: negative size") (fun () ->
      ignore (Network.transit_time net ~src:0 ~dst:1 ~bytes:(-1)))

let test_network_counters () =
  let e = Engine.create () in
  let net = Network.create e Network.gigabit in
  let delivered = ref 0 in
  Network.send net ~src:0 ~dst:1 ~bytes:100 (fun () -> incr delivered);
  Network.send net ~src:2 ~dst:2 ~bytes:50 (fun () -> incr delivered);
  Engine.run e;
  check Alcotest.int "both delivered" 2 !delivered;
  check Alcotest.int "one remote message" 1 (Network.messages net);
  check Alcotest.int "remote bytes" 100 (Network.bytes_sent net);
  check Alcotest.int "one local delivery" 1 (Network.local_deliveries net);
  Network.reset_counters net;
  check Alcotest.int "reset" 0 (Network.messages net)

let test_network_delivery_order () =
  let e = Engine.create () in
  let link = Network.link ~base_latency:0. ~byte_time:1e-6 in
  let net = Network.create e link in
  let log = ref [] in
  (* Bigger message sent first arrives later. *)
  Network.send net ~src:0 ~dst:1 ~bytes:1000 (fun () -> log := "big" :: !log);
  Network.send net ~src:0 ~dst:1 ~bytes:10 (fun () -> log := "small" :: !log);
  Engine.run e;
  check Alcotest.(list string) "size-dependent order" [ "small"; "big" ]
    (List.rev !log)

let test_link_validation () =
  Alcotest.check_raises "negative latency" (Invalid_argument "Network.link: negative parameter")
    (fun () -> ignore (Network.link ~base_latency:(-1.) ~byte_time:0.))

let suite =
  [
    Alcotest.test_case "heap orders random input" `Quick
      test_heap_orders_random_input;
    Alcotest.test_case "heap FIFO at equal times" `Quick
      test_heap_fifo_at_equal_times;
    Alcotest.test_case "heap peek" `Quick test_heap_peek;
    Alcotest.test_case "engine dispatch order" `Quick test_engine_dispatch_order;
    Alcotest.test_case "engine nested scheduling" `Quick
      test_engine_nested_scheduling;
    Alcotest.test_case "engine validation" `Quick test_engine_validation;
    Alcotest.test_case "engine run until" `Quick test_engine_run_until;
    Alcotest.test_case "engine max events" `Quick test_engine_max_events;
    Alcotest.test_case "engine step on empty" `Quick test_engine_step_empty;
    Alcotest.test_case "network latency model" `Quick test_network_latency_model;
    Alcotest.test_case "network counters" `Quick test_network_counters;
    Alcotest.test_case "network delivery order" `Quick
      test_network_delivery_order;
    Alcotest.test_case "link validation" `Quick test_link_validation;
  ]
