(* Tests for Dht_kv.Access_balancer (the paper's §6 future-work feature) and
   the new extension experiments. *)

open Dht_core
module AB = Dht_kv.Access_balancer
module Local_store = Dht_kv.Local_store
module Extensions = Dht_experiments.Extensions
module Rng = Dht_prng.Rng

let check = Alcotest.check
let vid i = Vnode_id.make ~snode:i ~vnode:0

let build ?(vnodes = 16) ?(seed = 13) () =
  let store = Local_store.create ~pmin:8 ~vmin:8 ~rng:(Rng.of_int seed) ~first:(vid 0) () in
  for i = 1 to vnodes - 1 do
    ignore (Local_store.add_vnode store ~id:(vid i))
  done;
  AB.create store

let test_counting () =
  let ab = build () in
  AB.put ab ~key:"a" ~value:"1";
  ignore (AB.get ab ~key:"a");
  ignore (AB.get ab ~key:"a");
  ignore (AB.get ab ~key:"b");
  check Alcotest.int "accesses counted" 4 (AB.epoch_accesses ab);
  AB.reset_epoch ab;
  check Alcotest.int "epoch reset" 0 (AB.epoch_accesses ab);
  check (Alcotest.float 0.) "sigma zero on empty epoch" 0. (AB.access_sigma ab)

let test_access_attribution () =
  let ab = build () in
  AB.put ab ~key:"hot" ~value:"v";
  for _ = 1 to 99 do
    ignore (AB.get ab ~key:"hot")
  done;
  let dht = Local_store.dht (AB.store ab) in
  let total =
    Array.fold_left
      (fun acc v -> acc + AB.access_of_vnode ab v)
      0 (Local_dht.vnodes dht)
  in
  check Alcotest.int "all accesses attributed to owners" 100 total

let test_rebalance_reduces_skew () =
  let ab = build ~vnodes:16 () in
  (* Store keys, then hammer a skewed subset. *)
  let keys = Array.init 2000 (fun i -> Printf.sprintf "k%d" i) in
  Array.iter (fun key -> AB.put ab ~key ~value:"v") keys;
  AB.reset_epoch ab;
  let rng = Rng.of_int 3 in
  let zipf = Dht_workload.Keygen.Zipf.create ~n:2000 ~s:0.7 in
  for _ = 1 to 50_000 do
    let rank = Dht_workload.Keygen.Zipf.sample zipf rng in
    ignore (AB.get ab ~key:keys.(rank - 1))
  done;
  let before = AB.access_sigma ab in
  let moved = AB.rebalance ~max_moves:128 ab in
  let after = AB.access_sigma ab in
  check Alcotest.bool "skew existed" true (before > 10.);
  check Alcotest.bool "moves happened" true (moved > 0);
  check Alcotest.bool
    (Printf.sprintf "sigma %.1f -> %.1f improved" before after)
    true (after < before);
  (* Invariants G1'-G4' still hold (G5 may be traded away by design). *)
  let dht = Local_store.dht (AB.store ab) in
  let params = Local_dht.params dht in
  List.iter
    (fun b ->
      Array.iter
        (fun v ->
          check Alcotest.bool "G4 bounds" true
            (v.Vnode.count >= params.Params.pmin
            && v.Vnode.count <= Params.pmax params))
        (Balancer.vnodes b))
    (Local_dht.groups dht);
  (* Keys still reachable after partition moves. *)
  Array.iter
    (fun key ->
      check Alcotest.bool "reachable" true (Local_store.get (AB.store ab) ~key <> None))
    keys

let test_rebalance_no_op_when_uniform () =
  let ab = build () in
  let keys = Array.init 1000 (fun i -> Printf.sprintf "u%d" i) in
  Array.iter (fun key -> AB.put ab ~key ~value:"v") keys;
  AB.reset_epoch ab;
  (* Perfectly even synthetic access: every key exactly once. *)
  Array.iter (fun key -> ignore (AB.get ab ~key)) keys;
  let moved = AB.rebalance ~threshold:2.0 ab in
  check Alcotest.bool "few or no moves on uniform load" true (moved <= 2)

let test_rebalance_validation () =
  let ab = build () in
  Alcotest.check_raises "threshold < 1"
    (Invalid_argument "Access_balancer.rebalance: threshold < 1") (fun () ->
      ignore (AB.rebalance ~threshold:0.5 ab))

(* --- Extension experiment drivers --- *)

let test_churn_experiment () =
  let r = Extensions.churn ~initial_vnodes:64 ~operations:120 ~keys:2000 ~pmin:8 ~vmin:8 ~seed:4 () in
  check Alcotest.int "ops" 120 r.Extensions.operations;
  check Alcotest.int "no key lost" 0 r.Extensions.churn_keys_lost;
  check Alcotest.int "no audit failure" 0 r.Extensions.audit_failures;
  check Alcotest.int "joins + leaves <= ops" r.Extensions.operations
    (r.Extensions.joins + r.Extensions.leaves + r.Extensions.blocked_leaves);
  check Alcotest.int "population bookkeeping" r.Extensions.final_vnodes
    (64 + r.Extensions.joins - r.Extensions.leaves);
  check Alcotest.int "curve length" 120 (Array.length r.Extensions.sigma_qv_curve)

let test_ablation_experiment () =
  let r = Extensions.ablation_selection ~runs:6 ~vnodes:256 ~pmin:8 ~vmin:8 ~seed:5 () in
  (* The paper's quota-proportional selection must beat uniform group
     choice on both metrics. *)
  check Alcotest.bool
    (Printf.sprintf "Qv: %.2f < %.2f" r.Extensions.quota_sigma_qv r.Extensions.uniform_sigma_qv)
    true
    (r.Extensions.quota_sigma_qv < r.Extensions.uniform_sigma_qv);
  (* sigma(Qg) is not reliably directional (membership counts equalize
     either way); just require both measurements to be meaningful. *)
  check Alcotest.bool "Qg measured" true
    (r.Extensions.quota_sigma_qg > 0. && r.Extensions.uniform_sigma_qg > 0.)

let test_hotspot_experiment () =
  let r = Extensions.hotspot ~vnodes:32 ~keys:4000 ~accesses:40_000 ~pmin:16 ~vmin:8 ~seed:6 () in
  check Alcotest.int "no key lost" 0 r.Extensions.hotspot_keys_lost;
  check Alcotest.bool "moves happened" true (r.Extensions.partitions_moved > 0);
  check Alcotest.bool
    (Printf.sprintf "access sigma %.1f -> %.1f" r.Extensions.access_sigma_before
       r.Extensions.access_sigma_after)
    true
    (r.Extensions.access_sigma_after < r.Extensions.access_sigma_before)

let test_hetero_compare_experiment () =
  let r = Extensions.hetero_compare ~runs:5 ~seed:7 () in
  check Alcotest.bool "local errors positive" true (r.Extensions.local_rms_err > 0.);
  check Alcotest.bool "ch errors positive" true (r.Extensions.ch_rms_err > 0.);
  (* Controlled enrollment tracks capacity far tighter than random arcs. *)
  check Alcotest.bool
    (Printf.sprintf "local rms %.3f < ch rms %.3f" r.Extensions.local_rms_err
       r.Extensions.ch_rms_err)
    true
    (r.Extensions.local_rms_err < r.Extensions.ch_rms_err)

let test_uniform_selection_runs () =
  (* The ablation selection policy is itself invariant-safe. *)
  let dht =
    Local_dht.create ~selection:Local_dht.Uniform_group ~pmin:8 ~vmin:8
      ~rng:(Rng.of_int 8) ~first:(vid 0) ()
  in
  for i = 1 to 199 do
    ignore (Local_dht.add_vnode dht ~id:(vid i))
  done;
  match Audit.check_local dht with
  | Ok () -> ()
  | Error es -> Alcotest.failf "audit: %s" (String.concat "\n" es)

let suite =
  [
    Alcotest.test_case "access counting" `Quick test_counting;
    Alcotest.test_case "access attribution" `Quick test_access_attribution;
    Alcotest.test_case "rebalance reduces skew" `Quick
      test_rebalance_reduces_skew;
    Alcotest.test_case "rebalance no-op on uniform load" `Quick
      test_rebalance_no_op_when_uniform;
    Alcotest.test_case "rebalance validation" `Quick test_rebalance_validation;
    Alcotest.test_case "churn experiment" `Quick test_churn_experiment;
    Alcotest.test_case "selection ablation experiment" `Quick
      test_ablation_experiment;
    Alcotest.test_case "hotspot experiment" `Quick test_hotspot_experiment;
    Alcotest.test_case "hetero compare experiment" `Quick
      test_hetero_compare_experiment;
    Alcotest.test_case "uniform selection is invariant-safe" `Quick
      test_uniform_selection_runs;
  ]
