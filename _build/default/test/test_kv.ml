(* Tests for Dht_kv: the data plane and its migration-on-rebalance logic. *)

open Dht_core
module Store = Dht_kv.Store
module Local_store = Dht_kv.Local_store
module Global_store = Dht_kv.Global_store
module Rng = Dht_prng.Rng

let check = Alcotest.check
let vid i = Vnode_id.make ~snode:i ~vnode:0

let fresh_local ?(pmin = 8) ?(vmin = 4) ?(seed = 21) () =
  Local_store.create ~pmin ~vmin ~rng:(Rng.of_int seed) ~first:(vid 0) ()

let test_put_get_roundtrip () =
  let s = fresh_local () in
  Local_store.put s ~key:"alpha" ~value:"1";
  Local_store.put s ~key:"beta" ~value:"2";
  check Alcotest.(option string) "alpha" (Some "1") (Local_store.get s ~key:"alpha");
  check Alcotest.(option string) "beta" (Some "2") (Local_store.get s ~key:"beta");
  check Alcotest.(option string) "missing" None (Local_store.get s ~key:"gamma")

let test_overwrite_and_size () =
  let s = fresh_local () in
  let kv = Local_store.store s in
  Local_store.put s ~key:"k" ~value:"v1";
  Local_store.put s ~key:"k" ~value:"v2";
  check Alcotest.int "size counts keys once" 1 (Store.size kv);
  check Alcotest.(option string) "overwritten" (Some "v2") (Local_store.get s ~key:"k")

let test_remove () =
  let s = fresh_local () in
  let kv = Local_store.store s in
  Local_store.put s ~key:"k" ~value:"v";
  check Alcotest.bool "removed" true (Local_store.remove s ~key:"k");
  check Alcotest.bool "already gone" false (Local_store.remove s ~key:"k");
  check Alcotest.int "size back to 0" 0 (Store.size kv);
  check Alcotest.bool "mem" false (Store.mem kv ~key:"k")

let test_no_router_fails () =
  let kv = Store.create () in
  Alcotest.check_raises "no router" (Failure "Kv.Store: no router installed")
    (fun () -> Store.put kv ~key:"k" ~value:"v")

let test_survives_rebalancing () =
  (* The core data-plane property: grow the DHT aggressively after loading
     data; every key remains reachable and correct. *)
  let s = fresh_local () in
  let n = 5000 in
  for i = 0 to n - 1 do
    Local_store.put s ~key:(Printf.sprintf "key-%d" i) ~value:(string_of_int i)
  done;
  for i = 1 to 63 do
    ignore (Local_store.add_vnode s ~id:(vid i))
  done;
  let kv = Local_store.store s in
  check Alcotest.int "size unchanged" n (Store.size kv);
  check Alcotest.bool "some keys migrated" true (Store.migrations kv > 0);
  for i = 0 to n - 1 do
    match Local_store.get s ~key:(Printf.sprintf "key-%d" i) with
    | Some v when v = string_of_int i -> ()
    | Some v -> Alcotest.failf "key-%d corrupted: %s" i v
    | None -> Alcotest.failf "key-%d lost" i
  done

let test_global_store_survives_rebalancing () =
  let s = Global_store.create ~pmin:8 ~first:(vid 0) () in
  for i = 0 to 999 do
    Global_store.put s ~key:(Printf.sprintf "g-%d" i) ~value:(string_of_int i)
  done;
  for i = 1 to 31 do
    ignore (Global_store.add_vnode s ~id:(vid i))
  done;
  let lost = ref 0 in
  for i = 0 to 999 do
    if Global_store.get s ~key:(Printf.sprintf "g-%d" i) <> Some (string_of_int i)
    then incr lost
  done;
  check Alcotest.int "no key lost" 0 !lost

let test_load_tracks_quota () =
  let s = fresh_local ~seed:33 () in
  for i = 1 to 31 do
    ignore (Local_store.add_vnode s ~id:(vid i))
  done;
  let rng = Rng.of_int 55 in
  for _ = 1 to 20_000 do
    Local_store.put s ~key:(Dht_workload.Keygen.uniform rng) ~value:"x"
  done;
  let kv = Local_store.store s in
  let dht = Local_store.dht s in
  let vnodes = Local_dht.vnodes dht in
  let counts = Store.load_counts kv ~vnodes in
  check Alcotest.int "counts sum to size" (Store.size kv)
    (Array.fold_left ( + ) 0 counts);
  (* Every vnode holds roughly quota * keys. *)
  let space = (Local_dht.params dht).Params.space in
  Array.iteri
    (fun i v ->
      let expected = Vnode.quota space v *. float_of_int (Store.size kv) in
      let got = float_of_int counts.(i) in
      check Alcotest.bool
        (Printf.sprintf "vnode %d: %.0f keys vs %.0f expected" i got expected)
        true
        (abs_float (got -. expected) < (5. *. sqrt expected) +. 10.))
    vnodes

let test_load_sigma () =
  let s = fresh_local () in
  let kv = Local_store.store s in
  let dht = Local_store.dht s in
  check (Alcotest.float 0.) "empty store" 0.
    (Store.load_sigma kv ~vnodes:(Local_dht.vnodes dht));
  for i = 1 to 15 do
    ignore (Local_store.add_vnode s ~id:(vid i))
  done;
  let rng = Rng.of_int 77 in
  for _ = 1 to 10_000 do
    Local_store.put s ~key:(Dht_workload.Keygen.uniform rng) ~value:"x"
  done;
  let sigma = Store.load_sigma kv ~vnodes:(Local_dht.vnodes dht) in
  (* Data imbalance is quota imbalance plus multinomial sampling noise, so
     it must land near (and above a fraction of) the quota sigma. *)
  let quota_sigma = Local_dht.sigma_qv dht in
  check Alcotest.bool
    (Printf.sprintf "load sigma %.2f tracks quota sigma %.2f" sigma quota_sigma)
    true
    (sigma > quota_sigma /. 2. && sigma < quota_sigma +. 15.)

let test_load_of_unknown_vnode () =
  let s = fresh_local () in
  let kv = Local_store.store s in
  check Alcotest.int "vnode with no table" 0
    (Store.load_of kv (Vnode_id.make ~snode:9 ~vnode:9))

let suite =
  [
    Alcotest.test_case "put/get roundtrip" `Quick test_put_get_roundtrip;
    Alcotest.test_case "overwrite and size" `Quick test_overwrite_and_size;
    Alcotest.test_case "remove" `Quick test_remove;
    Alcotest.test_case "no router fails" `Quick test_no_router_fails;
    Alcotest.test_case "local store survives rebalancing" `Quick
      test_survives_rebalancing;
    Alcotest.test_case "global store survives rebalancing" `Quick
      test_global_store_survives_rebalancing;
    Alcotest.test_case "key load tracks quota" `Quick test_load_tracks_quota;
    Alcotest.test_case "load sigma" `Quick test_load_sigma;
    Alcotest.test_case "load of unknown vnode" `Quick test_load_of_unknown_vnode;
  ]
