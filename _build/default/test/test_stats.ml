(* Tests for Dht_stats: Welford, Descriptive, Series, Histogram, Regression. *)

module W = Dht_stats.Welford
module D = Dht_stats.Descriptive
module Series = Dht_stats.Series
module H = Dht_stats.Histogram
module R = Dht_stats.Regression

let check = Alcotest.check
let checkf msg = Alcotest.check (Alcotest.float 1e-9) msg
let qtest = QCheck_alcotest.to_alcotest

(* --- Welford --- *)

let test_welford_known () =
  let w = W.create () in
  List.iter (W.add w) [ 2.; 4.; 4.; 4.; 5.; 5.; 7.; 9. ];
  check Alcotest.int "count" 8 (W.count w);
  checkf "mean" 5. (W.mean w);
  checkf "population variance" 4. (W.variance_population w);
  checkf "population sd" 2. (W.stddev_population w);
  checkf "sample variance" (32. /. 7.) (W.variance_sample w)

let test_welford_empty () =
  let w = W.create () in
  check Alcotest.int "count" 0 (W.count w);
  checkf "mean" 0. (W.mean w);
  checkf "var pop" 0. (W.variance_population w);
  checkf "var sample" 0. (W.variance_sample w)

let test_welford_single () =
  let w = W.create () in
  W.add w 42.;
  checkf "mean" 42. (W.mean w);
  checkf "pop variance" 0. (W.variance_population w);
  checkf "sample variance undefined -> 0" 0. (W.variance_sample w)

let prop_welford_matches_direct =
  QCheck.Test.make ~name:"welford matches two-pass formulas" ~count:200
    QCheck.(list_of_size (QCheck.Gen.int_range 1 50) (float_bound_exclusive 1000.))
    (fun xs ->
      let arr = Array.of_list xs in
      let w = W.create () in
      Array.iter (W.add w) arr;
      abs_float (W.mean w -. D.mean arr) < 1e-6
      && abs_float (W.stddev_population w -. D.stddev_population arr) < 1e-6)

let prop_welford_merge =
  QCheck.Test.make ~name:"welford merge = concatenation" ~count:200
    QCheck.(pair (list (float_bound_exclusive 100.)) (list (float_bound_exclusive 100.)))
    (fun (xs, ys) ->
      let wa = W.create () and wb = W.create () and wc = W.create () in
      List.iter (W.add wa) xs;
      List.iter (W.add wb) ys;
      List.iter (W.add wc) (xs @ ys);
      let m = W.merge wa wb in
      W.count m = W.count wc
      && abs_float (W.mean m -. W.mean wc) < 1e-6
      && abs_float (W.variance_population m -. W.variance_population wc) < 1e-6)

(* --- Descriptive --- *)

let test_descriptive_basics () =
  let xs = [| 1.; 2.; 3.; 4. |] in
  checkf "sum" 10. (D.sum xs);
  checkf "mean" 2.5 (D.mean xs);
  check (Alcotest.pair (Alcotest.float 0.) (Alcotest.float 0.)) "min max" (1., 4.)
    (D.min_max xs);
  checkf "mean empty" 0. (D.mean [||]);
  Alcotest.check_raises "min_max empty"
    (Invalid_argument "Descriptive.min_max: empty array") (fun () ->
      ignore (D.min_max [||]))

let test_kahan_sum () =
  (* Naive summation of 1e8 copies of 1e-8 drifts; Kahan should stay exact
     to near machine precision. *)
  let xs = Array.make 100_000 0.1 in
  check (Alcotest.float 1e-9) "compensated" 10000. (D.sum xs)

let test_stddev_known () =
  let xs = [| 2.; 4.; 4.; 4.; 5.; 5.; 7.; 9. |] in
  checkf "population" 2. (D.stddev_population xs);
  checkf "sample" (sqrt (32. /. 7.)) (D.stddev_sample xs);
  checkf "about mean equals population" (D.stddev_population xs)
    (D.stddev_about xs ~about:(D.mean xs));
  checkf "singleton population" 0. (D.stddev_population [| 3. |]);
  checkf "singleton sample" 0. (D.stddev_sample [| 3. |])

let test_rel_stddev_about () =
  (* Two quotas 2/3 and 1/3 against the ideal 1/2: deviations 1/6, so the
     relative sigma is (1/6)/(1/2) = 1/3. *)
  let xs = [| 2. /. 3.; 1. /. 3. |] in
  checkf "against ideal" (1. /. 3.) (D.rel_stddev_about xs ~about:0.5);
  Alcotest.check_raises "about = 0"
    (Invalid_argument "Descriptive.rel_stddev_about: about = 0") (fun () ->
      ignore (D.rel_stddev_about xs ~about:0.))

let prop_rel_stddev_scale_invariant =
  (* §2.4: if Yi = c·Xi then the relative standard deviation is unchanged. *)
  QCheck.Test.make ~name:"relative sigma is scale invariant (paper 2.4)"
    ~count:200
    QCheck.(
      pair
        (list_of_size (QCheck.Gen.int_range 2 30) (float_range 0.1 100.))
        (float_range 0.1 50.))
    (fun (xs, c) ->
      let arr = Array.of_list xs in
      let scaled = Array.map (fun x -> c *. x) arr in
      abs_float (D.rel_stddev arr -. D.rel_stddev scaled) < 1e-9)

let test_percentile () =
  let xs = [| 15.; 20.; 35.; 40.; 50. |] in
  checkf "p0 = min" 15. (D.percentile xs ~p:0.);
  checkf "p1 = max" 50. (D.percentile xs ~p:1.);
  checkf "median odd" 35. (D.median xs);
  checkf "median even" 2.5 (D.median [| 1.; 2.; 3.; 4. |]);
  checkf "interpolated" 17.5 (D.percentile xs ~p:0.125);
  Alcotest.check_raises "empty" (Invalid_argument "Descriptive.percentile: empty array")
    (fun () -> ignore (D.percentile [||] ~p:0.5));
  Alcotest.check_raises "p > 1"
    (Invalid_argument "Descriptive.percentile: p outside [0, 1]") (fun () ->
      ignore (D.percentile xs ~p:1.5))

(* --- Series --- *)

let test_series_mean () =
  let s = Series.create ~len:3 in
  Series.add_run s [| 1.; 2.; 3. |];
  Series.add_run s [| 3.; 4.; 5. |];
  check Alcotest.int "runs" 2 (Series.runs s);
  check
    Alcotest.(array (float 1e-9))
    "pointwise mean" [| 2.; 3.; 4. |] (Series.mean s);
  check
    Alcotest.(array (float 1e-9))
    "pointwise sd" [| 1.; 1.; 1. |] (Series.stddev s)

let test_series_validation () =
  let s = Series.create ~len:2 in
  Alcotest.check_raises "wrong length"
    (Invalid_argument "Series.add_run: curve length mismatch") (fun () ->
      Series.add_run s [| 1. |]);
  check
    Alcotest.(array (float 0.))
    "ci with < 2 runs" [| 0.; 0. |] (Series.ci95_halfwidth s);
  Alcotest.check_raises "negative length"
    (Invalid_argument "Series.create: negative length") (fun () ->
      ignore (Series.create ~len:(-1)))

let test_series_ci () =
  let s = Series.create ~len:1 in
  for i = 1 to 100 do
    Series.add_run s [| float_of_int (i mod 2) |]
  done;
  let ci = (Series.ci95_halfwidth s).(0) in
  (* sd_sample ~ 0.5025, so ci ~ 1.96 * 0.5025 / 10. *)
  check Alcotest.bool "ci magnitude" true (ci > 0.08 && ci < 0.12)

(* --- Histogram --- *)

let test_histogram () =
  let h = H.create ~lo:0. ~hi:10. ~bins:5 in
  List.iter (H.add h) [ 0.; 1.9; 2.; 5.5; 9.99; -1.; 10.; 11. ];
  check Alcotest.int "total" 5 (H.total h);
  check Alcotest.int "underflow" 1 (H.underflow h);
  check Alcotest.int "overflow" 2 (H.overflow h);
  check Alcotest.(array int) "counts" [| 2; 1; 1; 0; 1 |] (H.counts h)

let test_histogram_chi2 () =
  let h = H.create ~lo:0. ~hi:4. ~bins:4 in
  List.iter (H.add h) [ 0.5; 1.5; 2.5; 3.5 ];
  checkf "uniform -> 0" 0. (H.chi_square_uniform h);
  let empty = H.create ~lo:0. ~hi:1. ~bins:2 in
  Alcotest.check_raises "empty" (Invalid_argument "Histogram.chi_square_uniform: empty")
    (fun () -> ignore (H.chi_square_uniform empty))

let test_histogram_validation () =
  Alcotest.check_raises "bins 0" (Invalid_argument "Histogram.create: bins must be positive")
    (fun () -> ignore (H.create ~lo:0. ~hi:1. ~bins:0));
  Alcotest.check_raises "hi <= lo" (Invalid_argument "Histogram.create: hi <= lo")
    (fun () -> ignore (H.create ~lo:1. ~hi:1. ~bins:4))

(* --- Regression --- *)

let test_regression_exact_line () =
  let xs = [| 0.; 1.; 2.; 3. |] in
  let ys = Array.map (fun x -> (2.5 *. x) -. 1. ) xs in
  let f = R.fit ~xs ~ys in
  checkf "slope" 2.5 f.R.slope;
  checkf "intercept" (-1.) f.R.intercept;
  checkf "r2" 1. f.R.r2;
  checkf "predict" 9. (R.predict f 4.)

let test_regression_flat () =
  let f = R.fit ~xs:[| 1.; 2.; 3. |] ~ys:[| 5.; 5.; 5. |] in
  checkf "flat slope" 0. f.R.slope;
  checkf "flat r2 (degenerate -> 1)" 1. f.R.r2

let test_regression_validation () =
  Alcotest.check_raises "length mismatch" (Invalid_argument "Regression.fit: length mismatch")
    (fun () -> ignore (R.fit ~xs:[| 1. |] ~ys:[| 1.; 2. |]));
  Alcotest.check_raises "too few" (Invalid_argument "Regression.fit: need at least 2 points")
    (fun () -> ignore (R.fit ~xs:[| 1. |] ~ys:[| 1. |]));
  Alcotest.check_raises "degenerate x" (Invalid_argument "Regression.fit: all xs equal")
    (fun () -> ignore (R.fit ~xs:[| 2.; 2. |] ~ys:[| 1.; 3. |]))

let suite =
  [
    Alcotest.test_case "welford known series" `Quick test_welford_known;
    Alcotest.test_case "welford empty" `Quick test_welford_empty;
    Alcotest.test_case "welford single" `Quick test_welford_single;
    qtest prop_welford_matches_direct;
    qtest prop_welford_merge;
    Alcotest.test_case "descriptive basics" `Quick test_descriptive_basics;
    Alcotest.test_case "kahan summation" `Quick test_kahan_sum;
    Alcotest.test_case "stddev known" `Quick test_stddev_known;
    Alcotest.test_case "relative sigma vs ideal" `Quick test_rel_stddev_about;
    qtest prop_rel_stddev_scale_invariant;
    Alcotest.test_case "percentiles" `Quick test_percentile;
    Alcotest.test_case "series mean/sd" `Quick test_series_mean;
    Alcotest.test_case "series validation" `Quick test_series_validation;
    Alcotest.test_case "series ci95" `Quick test_series_ci;
    Alcotest.test_case "histogram counting" `Quick test_histogram;
    Alcotest.test_case "histogram chi-square" `Quick test_histogram_chi2;
    Alcotest.test_case "histogram validation" `Quick test_histogram_validation;
    Alcotest.test_case "regression exact line" `Quick test_regression_exact_line;
    Alcotest.test_case "regression flat" `Quick test_regression_flat;
    Alcotest.test_case "regression validation" `Quick test_regression_validation;
  ]
