(* Tests for Dht_registry.Registry (multi-DHT coexistence, §6) and the
   coexist experiment. *)

open Dht_core
module Registry = Dht_registry.Registry
module Topology = Dht_cluster.Topology
module Profile = Dht_cluster.Profile
module Extensions = Dht_experiments.Extensions

let check = Alcotest.check

let make_registry ?(n = 8) ?(seed = 1) () =
  Registry.create ~cluster:(Topology.homogeneous ~n Profile.reference) ~seed ()

let test_add_dht_enrollment () =
  let reg = make_registry () in
  Registry.add_dht reg ~name:"a" ~pmin:8 ~vmin:8 ~total_vnodes:64;
  let e = Registry.enrollment reg ~name:"a" in
  check Alcotest.int "total" 64 (Array.fold_left ( + ) 0 e);
  Array.iter (fun c -> check Alcotest.int "even on homogeneous" 8 c) e;
  check Alcotest.int "64 vnodes live" 64
    (Local_dht.vnode_count (Registry.dht reg ~name:"a"));
  match Audit.check_local (Registry.dht reg ~name:"a") with
  | Ok () -> ()
  | Error es -> Alcotest.failf "audit: %s" (String.concat "\n" es)

let test_two_dhts_independent () =
  let reg = make_registry () in
  Registry.add_dht reg ~name:"a" ~pmin:8 ~vmin:8 ~total_vnodes:32;
  Registry.add_dht reg ~name:"b" ~pmin:16 ~vmin:4 ~total_vnodes:16;
  check Alcotest.(list string) "names" [ "a"; "b" ] (Registry.names reg);
  check Alcotest.int "a count" 32 (Local_dht.vnode_count (Registry.dht reg ~name:"a"));
  check Alcotest.int "b count" 16 (Local_dht.vnode_count (Registry.dht reg ~name:"b"));
  (* Each DHT individually covers its whole hash range. *)
  List.iter
    (fun name ->
      match Audit.check_local (Registry.dht reg ~name) with
      | Ok () -> ()
      | Error es -> Alcotest.failf "%s audit: %s" name (String.concat "\n" es))
    (Registry.names reg)

let test_name_collision () =
  let reg = make_registry () in
  Registry.add_dht reg ~name:"a" ~pmin:8 ~vmin:8 ~total_vnodes:16;
  Alcotest.check_raises "duplicate name" (Invalid_argument "Registry.add_dht: name taken")
    (fun () -> Registry.add_dht reg ~name:"a" ~pmin:8 ~vmin:8 ~total_vnodes:16)

let test_external_load_validation () =
  let reg = make_registry () in
  Alcotest.check_raises "load 1.0"
    (Invalid_argument "Registry.set_external_load: fraction outside [0, 1)")
    (fun () -> Registry.set_external_load reg ~node:0 1.0)

let test_effective_shares () =
  let reg = make_registry ~n:4 () in
  Registry.set_external_load reg ~node:0 0.5;
  let shares = Registry.effective_shares reg in
  check (Alcotest.float 1e-9) "sum 1" 1. (Dht_stats.Descriptive.sum shares);
  (* Node 0 retains 0.5 capacity of 3.5 total. *)
  check (Alcotest.float 1e-9) "loaded node share" (0.5 /. 3.5) shares.(0);
  check (Alcotest.float 1e-9) "idle node share" (1. /. 3.5) shares.(1)

let test_retarget_shifts_enrollment () =
  let reg = make_registry () in
  Registry.add_dht reg ~name:"a" ~pmin:8 ~vmin:8 ~total_vnodes:64;
  let before_err = Registry.tracking_error reg ~name:"a" in
  Registry.set_external_load reg ~node:0 0.75;
  Registry.set_external_load reg ~node:1 0.75;
  let disturbed = Registry.tracking_error reg ~name:"a" in
  check Alcotest.bool "load disturbs tracking" true (disturbed > before_err);
  let r = Registry.retarget reg ~name:"a" ~total_vnodes:64 in
  check Alcotest.bool "vnodes moved" true (r.Registry.added > 0);
  let e = Registry.enrollment reg ~name:"a" in
  check Alcotest.bool "loaded nodes hold fewer vnodes" true
    (e.(0) < e.(2) && e.(1) < e.(2));
  let after = Registry.tracking_error reg ~name:"a" in
  check Alcotest.bool
    (Printf.sprintf "tracking restored: %.3f -> %.3f" disturbed after)
    true (after < disturbed);
  (* The DHT stayed invariant-clean through growth and removals. *)
  match Audit.check_local (Registry.dht reg ~name:"a") with
  | Ok () -> ()
  | Error es -> Alcotest.failf "audit: %s" (String.concat "\n" es)

let test_retarget_bookkeeping () =
  let reg = make_registry () in
  Registry.add_dht reg ~name:"a" ~pmin:8 ~vmin:8 ~total_vnodes:64;
  Registry.set_external_load reg ~node:0 0.9;
  let r = Registry.retarget reg ~name:"a" ~total_vnodes:64 in
  let e = Registry.enrollment reg ~name:"a" in
  (* Enrollment bookkeeping = live vnode count (minus blocked removals
     already reconciled in the counters). *)
  check Alcotest.int "enrollment matches live count"
    (Local_dht.vnode_count (Registry.dht reg ~name:"a"))
    (Array.fold_left ( + ) 0 e);
  check Alcotest.int "delta consistent"
    (64 + r.Registry.added - r.Registry.removed)
    (Array.fold_left ( + ) 0 e)

let test_unknown_name () =
  let reg = make_registry () in
  Alcotest.check_raises "dht" Not_found (fun () ->
      ignore (Registry.dht reg ~name:"nope"));
  Alcotest.check_raises "retarget" Not_found (fun () ->
      ignore (Registry.retarget reg ~name:"nope" ~total_vnodes:8))

let test_coexist_experiment () =
  let r = Extensions.coexist ~seed:5 () in
  check Alcotest.int "two dhts" 2 (List.length r.Extensions.dht_names);
  List.iteri
    (fun i _ ->
      let before = List.nth r.Extensions.error_before i in
      let loaded = List.nth r.Extensions.error_after_load i in
      let final = List.nth r.Extensions.error_after_retarget i in
      check Alcotest.bool "load disturbs" true (loaded > before);
      check Alcotest.bool
        (Printf.sprintf "retarget recovers: %.3f -> %.3f" loaded final)
        true (final < loaded))
    r.Extensions.dht_names;
  check Alcotest.bool "movement happened" true (r.Extensions.coexist_added > 0)

let suite =
  [
    Alcotest.test_case "add_dht enrollment" `Quick test_add_dht_enrollment;
    Alcotest.test_case "two independent DHTs" `Quick test_two_dhts_independent;
    Alcotest.test_case "name collision" `Quick test_name_collision;
    Alcotest.test_case "external load validation" `Quick
      test_external_load_validation;
    Alcotest.test_case "effective shares" `Quick test_effective_shares;
    Alcotest.test_case "retarget shifts enrollment" `Quick
      test_retarget_shifts_enrollment;
    Alcotest.test_case "retarget bookkeeping" `Quick test_retarget_bookkeeping;
    Alcotest.test_case "unknown name" `Quick test_unknown_name;
    Alcotest.test_case "coexist experiment" `Quick test_coexist_experiment;
  ]
