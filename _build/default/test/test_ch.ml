(* Tests for Dht_ch.Ring (the Consistent Hashing baseline, §4.3). *)

module Ring = Dht_ch.Ring
module Space = Dht_hashspace.Space
module Rng = Dht_prng.Rng

let check = Alcotest.check
let sp = Space.create ~bits:30

let ring seed = Ring.create ~space:sp ~rng:(Rng.of_int seed) ()

let test_first_node_owns_everything () =
  let r = ring 1 in
  Ring.add_node r ~id:0 ~k:4 ();
  check Alcotest.int "one node" 1 (Ring.node_count r);
  check Alcotest.int "four points" 4 (Ring.point_count r);
  check (Alcotest.float 1e-12) "quota 1" 1. (Ring.quota r ~id:0)

let test_quotas_sum_to_one () =
  let r = ring 2 in
  for i = 0 to 49 do
    Ring.add_node r ~id:i ~k:8 ()
  done;
  check (Alcotest.float 1e-9) "sum" 1. (Dht_stats.Descriptive.sum (Ring.quotas r));
  check Alcotest.int "50 nodes" 50 (Array.length (Ring.quotas r))

(* Recompute every node's quota from the raw point list and compare with the
   incrementally maintained values — the strongest consistency check. *)
let recompute_quotas r =
  let pts = Array.of_list (Ring.points r) in
  let n = Array.length pts in
  let owned = Hashtbl.create 16 in
  let add id len =
    Hashtbl.replace owned id (len + Option.value ~default:0 (Hashtbl.find_opt owned id))
  in
  Array.iteri
    (fun i (pos, id) ->
      let prev = fst pts.((i + n - 1) mod n) in
      let len =
        if n = 1 then Space.size sp
        else ((pos - prev) mod Space.size sp + Space.size sp) mod Space.size sp
      in
      add id len)
    pts;
  owned

let test_incremental_matches_recomputation () =
  let r = ring 3 in
  for i = 0 to 29 do
    Ring.add_node r ~id:i ~k:5 ();
    let owned = recompute_quotas r in
    for id = 0 to i do
      let expected =
        Space.quota sp (Option.value ~default:0 (Hashtbl.find_opt owned id))
      in
      check
        (Alcotest.float 1e-12)
        (Printf.sprintf "node %d after %d joins" id (i + 1))
        expected (Ring.quota r ~id)
    done
  done

let test_owner_agrees_with_arcs () =
  let r = ring 4 in
  for i = 0 to 9 do
    Ring.add_node r ~id:i ~k:8 ()
  done;
  (* Sample many points; the empirical ownership fraction must track the
     maintained quotas. *)
  let rng = Rng.of_int 99 in
  let hits = Array.make 10 0 in
  let trials = 40_000 in
  for _ = 1 to trials do
    let p = Rng.int rng (Space.size sp) in
    let id = Ring.owner r p in
    hits.(id) <- hits.(id) + 1
  done;
  Array.iteri
    (fun id h ->
      let observed = float_of_int h /. float_of_int trials in
      let q = Ring.quota r ~id in
      check Alcotest.bool
        (Printf.sprintf "node %d: %.4f vs %.4f" id observed q)
        true
        (abs_float (observed -. q) < 0.02))
    hits

let test_remove_node () =
  let r = ring 5 in
  Ring.add_node r ~id:0 ~k:4 ();
  Ring.add_node r ~id:1 ~k:4 ();
  Ring.remove_node r ~id:1;
  check Alcotest.int "one node left" 1 (Ring.node_count r);
  check Alcotest.int "four points left" 4 (Ring.point_count r);
  check (Alcotest.float 1e-12) "survivor owns all" 1. (Ring.quota r ~id:0);
  Alcotest.check_raises "remove absent" Not_found (fun () ->
      Ring.remove_node r ~id:42)

let test_remove_middle_node_conserves () =
  let r = ring 6 in
  for i = 0 to 19 do
    Ring.add_node r ~id:i ~k:6 ()
  done;
  Ring.remove_node r ~id:7;
  Ring.remove_node r ~id:13;
  check (Alcotest.float 1e-9) "sum after removals" 1.
    (Dht_stats.Descriptive.sum (Ring.quotas r));
  let owned = recompute_quotas r in
  Hashtbl.iter
    (fun id len ->
      check (Alcotest.float 1e-12) (Printf.sprintf "node %d" id)
        (Space.quota sp len) (Ring.quota r ~id))
    owned

let test_validation () =
  let r = ring 7 in
  Ring.add_node r ~id:0 ~k:4 ();
  Alcotest.check_raises "duplicate id" (Invalid_argument "Ring.add_node: duplicate node id")
    (fun () -> Ring.add_node r ~id:0 ~k:4 ());
  Alcotest.check_raises "k = 0"
    (Invalid_argument "Ring.add_node: point count must be positive") (fun () ->
      Ring.add_node r ~id:1 ~k:0 ());
  Alcotest.check_raises "owner outside space"
    (Invalid_argument "Ring.owner: point outside space") (fun () ->
      ignore (Ring.owner r (-1)))

let test_empty_ring_owner () =
  let r = ring 8 in
  Alcotest.check_raises "empty ring" Not_found (fun () -> ignore (Ring.owner r 0))

let test_heterogeneous_points () =
  let r = ring 9 in
  Ring.add_node r ~id:0 ~k:4 ~points:64 ();
  Ring.add_node r ~id:1 ~k:4 ~points:16 ();
  check Alcotest.int "point counts" 80 (Ring.point_count r);
  (* More points -> larger expected quota. *)
  check Alcotest.bool "weighting works" true
    (Ring.quota r ~id:0 > Ring.quota r ~id:1)

let test_more_points_balance_better () =
  (* sigma(Qn) must drop as the per-node point count grows (the k·log N
     requirement of CH) — averaged over a few rings to avoid flakes. *)
  let avg_sigma k =
    let acc = ref 0. in
    for seed = 0 to 4 do
      let r = ring (100 + seed) in
      for i = 0 to 63 do
        Ring.add_node r ~id:i ~k ()
      done;
      acc := !acc +. Ring.sigma_qn r
    done;
    !acc /. 5.
  in
  let s1 = avg_sigma 1 and s16 = avg_sigma 16 and s64 = avg_sigma 64 in
  check Alcotest.bool (Printf.sprintf "%.1f > %.1f > %.1f" s1 s16 s64) true
    (s1 > s16 && s16 > s64)

let test_sigma_qn_edge () =
  let r = ring 10 in
  check (Alcotest.float 0.) "empty ring sigma" 0. (Ring.sigma_qn r);
  Ring.add_node r ~id:0 ~k:3 ();
  check (Alcotest.float 0.) "single node sigma" 0. (Ring.sigma_qn r)

let test_determinism () =
  let sigma seed =
    let r = ring seed in
    for i = 0 to 31 do
      Ring.add_node r ~id:i ~k:8 ()
    done;
    Ring.sigma_qn r
  in
  check (Alcotest.float 1e-12) "same seed" (sigma 55) (sigma 55)

let suite =
  [
    Alcotest.test_case "first node owns everything" `Quick
      test_first_node_owns_everything;
    Alcotest.test_case "quotas sum to 1" `Quick test_quotas_sum_to_one;
    Alcotest.test_case "incremental quota = recomputation" `Quick
      test_incremental_matches_recomputation;
    Alcotest.test_case "owner agrees with arcs" `Quick test_owner_agrees_with_arcs;
    Alcotest.test_case "remove node" `Quick test_remove_node;
    Alcotest.test_case "remove middle nodes conserves" `Quick
      test_remove_middle_node_conserves;
    Alcotest.test_case "validation" `Quick test_validation;
    Alcotest.test_case "empty ring owner" `Quick test_empty_ring_owner;
    Alcotest.test_case "heterogeneous point counts" `Quick
      test_heterogeneous_points;
    Alcotest.test_case "more points balance better" `Quick
      test_more_points_balance_better;
    Alcotest.test_case "sigma edge cases" `Quick test_sigma_qn_edge;
    Alcotest.test_case "determinism" `Quick test_determinism;
  ]
