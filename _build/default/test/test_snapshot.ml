(* Tests for Dht_core.Snapshot: persistence roundtrips and rejection of
   corrupted state. *)

open Dht_core
module Rng = Dht_prng.Rng

let check = Alcotest.check
let vid i = Vnode_id.make ~snode:i ~vnode:0

let grow_local ?(pmin = 8) ?(vmin = 8) ?(seed = 3) n =
  let dht = Local_dht.create ~pmin ~vmin ~rng:(Rng.of_int seed) ~first:(vid 0) () in
  for i = 1 to n - 1 do
    ignore (Local_dht.add_vnode dht ~id:(vid i))
  done;
  dht

let test_local_roundtrip () =
  let dht = grow_local 200 in
  let text = Snapshot.save_local dht in
  match Snapshot.load_local ~rng:(Rng.of_int 99) text with
  | Error m -> Alcotest.failf "load failed: %s" m
  | Ok restored ->
      check Alcotest.int "vnode count" (Local_dht.vnode_count dht)
        (Local_dht.vnode_count restored);
      check Alcotest.int "group count" (Local_dht.group_count dht)
        (Local_dht.group_count restored);
      check (Alcotest.float 1e-12) "sigma(Qv)" (Local_dht.sigma_qv dht)
        (Local_dht.sigma_qv restored);
      check (Alcotest.float 1e-12) "sigma(Qg)" (Local_dht.sigma_qg dht)
        (Local_dht.sigma_qg restored);
      (match Audit.check_local restored with
      | Ok () -> ()
      | Error es -> Alcotest.failf "audit: %s" (String.concat "\n" es));
      (* Save of the restored DHT is byte-identical (canonical order). *)
      check Alcotest.string "stable serialization" text
        (Snapshot.save_local restored)

let test_restored_dht_keeps_working () =
  let dht = grow_local 100 in
  let text = Snapshot.save_local dht in
  match Snapshot.load_local ~rng:(Rng.of_int 5) text with
  | Error m -> Alcotest.failf "load failed: %s" m
  | Ok restored ->
      for i = 100 to 199 do
        ignore (Local_dht.add_vnode restored ~id:(vid i))
      done;
      check Alcotest.int "grew" 200 (Local_dht.vnode_count restored);
      (match Audit.check_local restored with
      | Ok () -> ()
      | Error es -> Alcotest.failf "audit after growth: %s" (String.concat "\n" es))

let test_global_roundtrip () =
  let dht = Global_dht.create ~pmin:16 ~first:(vid 0) () in
  for i = 1 to 76 do
    ignore (Global_dht.add_vnode dht ~id:(vid i))
  done;
  let text = Snapshot.save_global dht in
  match Snapshot.load_global text with
  | Error m -> Alcotest.failf "load failed: %s" m
  | Ok restored ->
      check Alcotest.int "vnode count" 77 (Global_dht.vnode_count restored);
      check (Alcotest.float 1e-12) "sigma" (Global_dht.sigma_qv dht)
        (Global_dht.sigma_qv restored);
      check Alcotest.int "level" (Global_dht.level dht) (Global_dht.level restored);
      (match Audit.check_global restored with
      | Ok () -> ()
      | Error es -> Alcotest.failf "audit: %s" (String.concat "\n" es))

let test_file_roundtrip () =
  let dht = grow_local 30 in
  let path = Filename.temp_file "dht_snapshot" ".txt" in
  Fun.protect
    ~finally:(fun () -> Sys.remove path)
    (fun () ->
      Snapshot.write_file ~path (Snapshot.save_local dht);
      match Snapshot.load_local ~rng:(Rng.of_int 1) (Snapshot.read_file ~path) with
      | Ok restored ->
          check Alcotest.int "count" 30 (Local_dht.vnode_count restored)
      | Error m -> Alcotest.failf "file roundtrip: %s" m)

let expect_error label text =
  match Snapshot.load_local ~rng:(Rng.of_int 1) text with
  | Ok _ -> Alcotest.failf "%s: corrupted snapshot accepted" label
  | Error _ -> ()

let test_rejects_garbage () =
  expect_error "empty" "";
  expect_error "wrong magic" "not a snapshot\nspace 52\n";
  expect_error "global header for local" "balanced-dht-snapshot v1 global\n";
  expect_error "missing end"
    "balanced-dht-snapshot v1 local\nspace 20\npmin 8\nvmin 8\ngroup 0:0 level 3\nvnode 0.0 3:0\n";
  expect_error "bad pmin"
    "balanced-dht-snapshot v1 local\nspace 20\npmin banana\nvmin 8\nend\n"

let test_rejects_inconsistent_state () =
  (* Structurally well-formed text whose spans do not tile the space. *)
  expect_error "coverage gap"
    "balanced-dht-snapshot v1 local\n\
     space 20\npmin 2\nvmin 2\n\
     group 0:0 level 1\n\
     vnode 0.0 1:0 1:0\n\
     end\n";
  (* Overlapping spans. *)
  expect_error "overlap"
    "balanced-dht-snapshot v1 local\n\
     space 20\npmin 2\nvmin 2\n\
     group 0:0 level 1\n\
     vnode 0.0 1:0 1:1\n\
     group 1:1 level 1\n\
     vnode 1.0 1:0 1:1\n\
     end\n";
  (* Count outside [Pmin, Pmax]. *)
  expect_error "count bounds"
    "balanced-dht-snapshot v1 local\n\
     space 20\npmin 8\nvmin 2\n\
     group 0:0 level 1\n\
     vnode 0.0 1:0 1:1\n\
     end\n";
  (* Span at the wrong level for its group. *)
  expect_error "level mismatch"
    "balanced-dht-snapshot v1 local\n\
     space 20\npmin 2\nvmin 2\n\
     group 0:0 level 1\n\
     vnode 0.0 1:0 2:2 2:3\n\
     end\n"

let prop_roundtrip_random_sizes =
  QCheck.Test.make ~name:"snapshot roundtrip for random DHTs" ~count:20
    QCheck.(pair small_int (int_range 1 120))
    (fun (seed, n) ->
      let dht = grow_local ~seed n in
      match Snapshot.load_local ~rng:(Rng.of_int 7) (Snapshot.save_local dht) with
      | Error m -> QCheck.Test.fail_reportf "load: %s" m
      | Ok restored ->
          abs_float (Local_dht.sigma_qv dht -. Local_dht.sigma_qv restored) < 1e-12
          && Local_dht.vnode_count restored = n)

let suite =
  [
    Alcotest.test_case "local roundtrip" `Quick test_local_roundtrip;
    Alcotest.test_case "restored DHT keeps working" `Quick
      test_restored_dht_keeps_working;
    Alcotest.test_case "global roundtrip" `Quick test_global_roundtrip;
    Alcotest.test_case "file roundtrip" `Quick test_file_roundtrip;
    Alcotest.test_case "rejects garbage" `Quick test_rejects_garbage;
    Alcotest.test_case "rejects inconsistent state" `Quick
      test_rejects_inconsistent_state;
    QCheck_alcotest.to_alcotest prop_roundtrip_random_sizes;
  ]
