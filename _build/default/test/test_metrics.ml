(* Tests for Dht_core.Metrics and Dht_core.Distribution_record. *)

open Dht_core

let check = Alcotest.check
let checkf msg = Alcotest.check (Alcotest.float 1e-9) msg

let test_sigma_percent_known () =
  checkf "perfect balance" 0. (Metrics.sigma_percent [| 0.25; 0.25; 0.25; 0.25 |]);
  (* Quotas 2/3 and 1/3 against ideal 1/2: sigma = (1/6)/(1/2) = 33.33%. *)
  checkf "two-thirds split" (100. /. 3.)
    (Metrics.sigma_percent [| 2. /. 3.; 1. /. 3. |]);
  checkf "singleton" 0. (Metrics.sigma_percent [| 1. |]);
  checkf "empty" 0. (Metrics.sigma_percent [||])

let test_sigma_counts_vs_quotas () =
  (* When quotas are proportional to counts the two metrics coincide
     (the global-approach equivalence of §2.4). *)
  let counts = [| 40; 41; 41; 40; 41 |] in
  let total = Array.fold_left ( + ) 0 counts in
  let quotas = Array.map (fun c -> float_of_int c /. float_of_int total) counts in
  checkf "consistent" (Metrics.sigma_percent quotas)
    (Metrics.sigma_counts_percent counts)

let test_sigma_counts_edge () =
  checkf "uniform counts" 0. (Metrics.sigma_counts_percent [| 7; 7; 7 |]);
  checkf "single" 0. (Metrics.sigma_counts_percent [| 3 |])

let test_gideal_validation () =
  Alcotest.check_raises "vnodes 0" (Invalid_argument "Metrics.gideal: vnodes < 1")
    (fun () -> ignore (Metrics.gideal ~vnodes:0 ~vmax:16));
  check Alcotest.int "just above vmax doubles" 2 (Metrics.gideal ~vnodes:17 ~vmax:16);
  check Alcotest.int "power-of-two ladder" 8 (Metrics.gideal ~vnodes:100 ~vmax:16)

(* --- Distribution_record --- *)

let record_of_counts counts =
  let sp = Dht_hashspace.Space.create ~bits:20 in
  let params = Params.global ~space:sp ~pmin:(Array.length counts |> fun _ -> 8) () in
  ignore params;
  (* Build a record through a balancer to exercise of_balancer: grow a
     global DHT until it has as many vnodes as requested. *)
  let dht =
    Global_dht.create ~space:sp ~pmin:8
      ~first:(Vnode_id.make ~snode:0 ~vnode:0)
      ()
  in
  for i = 1 to Array.length counts - 1 do
    ignore (Global_dht.add_vnode dht ~id:(Vnode_id.make ~snode:i ~vnode:0))
  done;
  Global_dht.gpdr dht

let test_record_find_and_size () =
  let r = record_of_counts (Array.make 5 0) in
  check Alcotest.int "cardinal" 5 (Distribution_record.cardinal r);
  check Alcotest.int "size bytes" (16 + (16 * 5)) (Distribution_record.size_bytes r);
  (match Distribution_record.find r (Vnode_id.make ~snode:2 ~vnode:0) with
  | Some n -> check Alcotest.bool "positive count" true (n > 0)
  | None -> Alcotest.fail "vnode missing from record");
  check Alcotest.bool "absent vnode" true
    (Distribution_record.find r (Vnode_id.make ~snode:99 ~vnode:0) = None)

let test_record_empty_victim () =
  let sp = Dht_hashspace.Space.create ~bits:20 in
  let params = Params.global ~space:sp ~pmin:8 () in
  let v = Vnode.make ~id:(Vnode_id.make ~snode:0 ~vnode:0) ~group:Group_id.root in
  let b = Balancer.bootstrap ~params ~group:Group_id.root ~vnode:v ~notify:(fun _ -> ()) in
  let r = Distribution_record.of_balancer ~scope:Distribution_record.Global b in
  match Distribution_record.victim r with
  | Some e -> check Alcotest.int "victim count" 8 e.Distribution_record.partitions
  | None -> Alcotest.fail "bootstrap record has a victim"

let test_record_pp () =
  let r = record_of_counts (Array.make 3 0) in
  let s = Format.asprintf "%a" Distribution_record.pp r in
  check Alcotest.bool "mentions GPDR" true
    (String.length s > 4 && String.sub s 0 4 = "GPDR")

let suite =
  [
    Alcotest.test_case "sigma_percent known values" `Quick test_sigma_percent_known;
    Alcotest.test_case "sigma over counts = sigma over quotas" `Quick
      test_sigma_counts_vs_quotas;
    Alcotest.test_case "sigma counts edge cases" `Quick test_sigma_counts_edge;
    Alcotest.test_case "gideal validation" `Quick test_gideal_validation;
    Alcotest.test_case "record find/size" `Quick test_record_find_and_size;
    Alcotest.test_case "record victim" `Quick test_record_empty_victim;
    Alcotest.test_case "record pretty-printing" `Quick test_record_pp;
  ]
