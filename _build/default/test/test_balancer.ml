(* Tests for Dht_core.Balancer: the per-group creation algorithm and its
   invariants (G2-G5 / G2'-G5'). *)

open Dht_core
module Space = Dht_hashspace.Space
module Span = Dht_hashspace.Span
module Coverage = Dht_hashspace.Coverage

let check = Alcotest.check
let sp = Space.create ~bits:30
let vid i = Vnode_id.make ~snode:i ~vnode:0

let make_global ?(pmin = 8) () =
  let params = Params.global ~space:sp ~pmin () in
  let vnode = Vnode.make ~id:(vid 0) ~group:Group_id.root in
  let b =
    Balancer.bootstrap ~params ~group:Group_id.root ~vnode ~notify:(fun _ -> ())
  in
  (params, b)

let all_spans b =
  Array.to_list (Balancer.vnodes b)
  |> List.concat_map (fun v -> v.Vnode.spans)

let test_bootstrap () =
  let _, b = make_global ~pmin:8 () in
  check Alcotest.int "one vnode" 1 (Balancer.vnode_count b);
  check Alcotest.int "level log2 pmin" 3 (Balancer.level b);
  check Alcotest.int "pmin partitions" 8 (Balancer.total_partitions b);
  check (Alcotest.float 1e-12) "group quota 1" 1. (Balancer.quota b);
  (match Coverage.check sp (all_spans b) with
  | Ok () -> ()
  | Error e -> Alcotest.failf "coverage: %a" Coverage.pp_error e);
  let v = (Balancer.vnodes b).(0) in
  check Alcotest.int "first vnode holds all" 8 v.Vnode.count

let test_bootstrap_rejects_nonempty () =
  let params = Params.global ~space:sp ~pmin:8 () in
  let vnode = Vnode.make ~id:(vid 0) ~group:Group_id.root in
  Vnode.add_span vnode Span.root;
  Alcotest.check_raises "non-empty vnode"
    (Invalid_argument "Balancer.bootstrap: vnode already owns partitions")
    (fun () ->
      ignore
        (Balancer.bootstrap ~params ~group:Group_id.root ~vnode
           ~notify:(fun _ -> ())))

let test_invariants_through_growth () =
  let params, b = make_global ~pmin:8 () in
  let pmin = params.Params.pmin and pmax = Params.pmax params in
  for i = 1 to 199 do
    Balancer.add_vnode b (Vnode.make ~id:(vid i) ~group:Group_id.root);
    let counts = Balancer.counts b in
    let total = Array.fold_left ( + ) 0 counts in
    (* G2: total is a power of two. *)
    check Alcotest.bool
      (Printf.sprintf "G2 at V=%d" (i + 1))
      true
      (Params.is_power_of_two total);
    check Alcotest.int "total bookkeeping" total (Balancer.total_partitions b);
    (* G4: all counts within [Pmin, Pmax]. *)
    Array.iter
      (fun c ->
        check Alcotest.bool
          (Printf.sprintf "G4 at V=%d (count %d)" (i + 1) c)
          true
          (c >= pmin && c <= pmax))
      counts;
    (* G5: V a power of two -> all counts = Pmin. *)
    if Params.is_power_of_two (i + 1) then
      Array.iter
        (fun c -> check Alcotest.int (Printf.sprintf "G5 at V=%d" (i + 1)) pmin c)
        counts
  done

let test_greedy_equalizes () =
  (* After every creation, max - min <= 1: the greedy victim selection
     cannot leave a gap of 2 (it would still decrease sigma). *)
  let _, b = make_global ~pmin:16 () in
  for i = 1 to 100 do
    Balancer.add_vnode b (Vnode.make ~id:(vid i) ~group:Group_id.root);
    let counts = Balancer.counts b in
    let mn = Array.fold_left min max_int counts in
    let mx = Array.fold_left max 0 counts in
    check Alcotest.bool (Printf.sprintf "V=%d spread <= 1" (i + 1)) true (mx - mn <= 1)
  done

let test_coverage_through_growth () =
  let _, b = make_global ~pmin:8 () in
  for i = 1 to 40 do
    Balancer.add_vnode b (Vnode.make ~id:(vid i) ~group:Group_id.root);
    match Coverage.check sp (all_spans b) with
    | Ok () -> ()
    | Error e -> Alcotest.failf "V=%d coverage: %a" (i + 1) Coverage.pp_error e
  done

let test_add_rejects_nonempty () =
  let _, b = make_global () in
  let v = Vnode.make ~id:(vid 1) ~group:Group_id.root in
  Vnode.add_span v (Span.make sp ~level:3 ~index:0);
  Alcotest.check_raises "non-empty newcomer"
    (Invalid_argument "Balancer.add_vnode: vnode already owns partitions")
    (fun () -> Balancer.add_vnode b v)

let test_events_stream () =
  let events = ref [] in
  let params = Params.global ~space:sp ~pmin:8 () in
  let vnode = Vnode.make ~id:(vid 0) ~group:Group_id.root in
  let b =
    Balancer.bootstrap ~params ~group:Group_id.root ~vnode ~notify:(fun e ->
        events := e :: !events)
  in
  Balancer.add_vnode b (Vnode.make ~id:(vid 1) ~group:Group_id.root);
  let splits, transfers =
    List.partition (function Balancer.Split _ -> true | _ -> false) !events
  in
  (* V=1 -> all at pmin -> split-all fires: 8 splits; then the newcomer
     receives exactly 8 of the 16 halves. *)
  check Alcotest.int "8 splits" 8 (List.length splits);
  check Alcotest.int "8 transfers" 8 (List.length transfers);
  List.iter
    (function
      | Balancer.Transfer { dst; _ } ->
          check Alcotest.bool "dst is the newcomer" true
            (Vnode_id.equal dst.Vnode.id (vid 1))
      | Balancer.Split _ -> ())
    transfers

let test_of_vnodes_validation () =
  let params = Params.make ~space:sp ~pmin:8 ~vmin:4 () in
  Alcotest.check_raises "empty" (Invalid_argument "Balancer.of_vnodes: no vnodes")
    (fun () ->
      ignore
        (Balancer.of_vnodes ~params ~group:Group_id.root ~level:3
           ~notify:(fun _ -> ())
           [||]));
  let poor = Vnode.make ~id:(vid 0) ~group:Group_id.root in
  Vnode.add_span poor (Span.make sp ~level:3 ~index:0);
  Alcotest.check_raises "count below pmin"
    (Invalid_argument "Balancer.of_vnodes: vnode count outside [Pmin, Pmax]")
    (fun () ->
      ignore
        (Balancer.of_vnodes ~params ~group:Group_id.root ~level:3
           ~notify:(fun _ -> ())
           [| poor |]))

let test_of_vnodes_adopts () =
  let params = Params.make ~space:sp ~pmin:4 ~vmin:2 () in
  let g = Group_id.make ~value:1 ~bits:1 in
  let mk i offset =
    let v = Vnode.make ~id:(vid i) ~group:Group_id.root in
    for j = 0 to 3 do
      Vnode.add_span v (Span.make sp ~level:3 ~index:(offset + j))
    done;
    v
  in
  let a = mk 0 0 and b = mk 1 4 in
  let bal =
    Balancer.of_vnodes ~params ~group:g ~level:3 ~notify:(fun _ -> ()) [| a; b |]
  in
  check Alcotest.int "two vnodes" 2 (Balancer.vnode_count bal);
  check Alcotest.int "total 8" 8 (Balancer.total_partitions bal);
  check Alcotest.bool "group field updated" true (Group_id.equal a.Vnode.group g);
  check (Alcotest.float 1e-12) "group quota 1" 1. (Balancer.quota bal)

let test_move_decreases_sigma_matches_float () =
  (* The integer predicate must agree with literally recomputing sigma. *)
  let float_sigma counts =
    Dht_stats.Descriptive.stddev_population (Array.map float_of_int counts)
  in
  let cases =
    [ ([| 5; 5; 0 |], 0, 2); ([| 4; 3; 3 |], 0, 1); ([| 6; 2 |], 0, 1);
      ([| 3; 3 |], 0, 1); ([| 4; 2 |], 0, 1); ([| 10; 9; 0 |], 0, 2) ]
  in
  List.iter
    (fun (counts, src, dst) ->
      let before = float_sigma counts in
      let after = Array.copy counts in
      after.(src) <- after.(src) - 1;
      after.(dst) <- after.(dst) + 1;
      let predicted =
        Balancer.move_decreases_sigma ~from_count:counts.(src)
          ~to_count:counts.(dst)
      in
      check Alcotest.bool
        (Printf.sprintf "predicate agrees on %s" (String.concat ";" (Array.to_list (Array.map string_of_int counts))))
        (float_sigma after < before -. 1e-12)
        predicted)
    cases

let prop_move_predicate =
  QCheck.Test.make ~name:"sigma-move predicate equals float recomputation"
    ~count:300
    QCheck.(
      pair
        (array_of_size (QCheck.Gen.int_range 2 20) (int_range 0 50))
        (pair (int_bound 19) (int_bound 19)))
    (fun (counts, (i, j)) ->
      let n = Array.length counts in
      let src = i mod n and dst = j mod n in
      QCheck.assume (src <> dst && counts.(src) > 0);
      let float_sigma c =
        Dht_stats.Descriptive.stddev_population (Array.map float_of_int c)
      in
      let before = float_sigma counts in
      let after = Array.copy counts in
      after.(src) <- after.(src) - 1;
      after.(dst) <- after.(dst) + 1;
      Balancer.move_decreases_sigma ~from_count:counts.(src)
        ~to_count:counts.(dst)
      = (float_sigma after < before -. 1e-12))

let test_determinism () =
  let grow () =
    let _, b = make_global ~pmin:16 () in
    for i = 1 to 60 do
      Balancer.add_vnode b (Vnode.make ~id:(vid i) ~group:Group_id.root)
    done;
    Balancer.counts b
  in
  check Alcotest.(array int) "same counts twice" (grow ()) (grow ())

let suite =
  [
    Alcotest.test_case "bootstrap" `Quick test_bootstrap;
    Alcotest.test_case "bootstrap rejects non-empty" `Quick
      test_bootstrap_rejects_nonempty;
    Alcotest.test_case "invariants G2/G4/G5 through growth" `Quick
      test_invariants_through_growth;
    Alcotest.test_case "greedy equalizes counts" `Quick test_greedy_equalizes;
    Alcotest.test_case "coverage through growth" `Quick
      test_coverage_through_growth;
    Alcotest.test_case "add rejects non-empty vnode" `Quick
      test_add_rejects_nonempty;
    Alcotest.test_case "event stream on creation" `Quick test_events_stream;
    Alcotest.test_case "of_vnodes validation" `Quick test_of_vnodes_validation;
    Alcotest.test_case "of_vnodes adopts members" `Quick test_of_vnodes_adopts;
    Alcotest.test_case "sigma-move predicate (known cases)" `Quick
      test_move_decreases_sigma_matches_float;
    QCheck_alcotest.to_alcotest prop_move_predicate;
    Alcotest.test_case "determinism" `Quick test_determinism;
  ]
