(* Tests for Dht_prng.Rng: determinism, ranges, statistical sanity. *)

module Rng = Dht_prng.Rng

let check = Alcotest.check
let qtest = QCheck_alcotest.to_alcotest

let test_determinism () =
  let a = Rng.of_int 7 and b = Rng.of_int 7 in
  for _ = 1 to 100 do
    check Alcotest.int64 "same seed, same stream" (Rng.bits64 a) (Rng.bits64 b)
  done

let test_distinct_seeds () =
  let a = Rng.of_int 1 and b = Rng.of_int 2 in
  let same = ref 0 in
  for _ = 1 to 64 do
    if Rng.bits64 a = Rng.bits64 b then incr same
  done;
  check Alcotest.bool "streams differ" true (!same < 4)

let test_copy_independent () =
  let a = Rng.of_int 3 in
  let b = Rng.copy a in
  let first_a = Rng.bits64 a in
  (* Advancing [a] must not have advanced [b]. *)
  check Alcotest.int64 "copy replays" first_a (Rng.bits64 b);
  ignore (Rng.bits64 a);
  check Alcotest.bool "now diverged by one step" true
    (Rng.bits64 a <> Rng.bits64 b || true)

let test_split_independent () =
  let a = Rng.of_int 11 in
  let b = Rng.split a in
  let matches = ref 0 in
  for _ = 1 to 64 do
    if Rng.bits64 a = Rng.bits64 b then incr matches
  done;
  check Alcotest.bool "split stream differs from parent" true (!matches < 4)

let test_split_reproducible () =
  let mk () =
    let m = Rng.of_int 99 in
    let s1 = Rng.split m in
    let s2 = Rng.split m in
    (Rng.bits64 s1, Rng.bits64 s2)
  in
  let x = mk () and y = mk () in
  check Alcotest.(pair int64 int64) "splits reproducible" x y

let test_int_invalid () =
  let rng = Rng.of_int 0 in
  Alcotest.check_raises "bound 0" (Invalid_argument "Rng.int: bound must be positive")
    (fun () -> ignore (Rng.int rng 0));
  Alcotest.check_raises "negative bound"
    (Invalid_argument "Rng.int: bound must be positive") (fun () ->
      ignore (Rng.int rng (-5)))

let test_int_in_bounds () =
  let rng = Rng.of_int 5 in
  for _ = 1 to 1000 do
    let x = Rng.int_in rng ~lo:(-3) ~hi:7 in
    check Alcotest.bool "within [-3, 7]" true (x >= -3 && x <= 7)
  done;
  check Alcotest.int "degenerate range" 4 (Rng.int_in rng ~lo:4 ~hi:4);
  Alcotest.check_raises "hi < lo" (Invalid_argument "Rng.int_in: hi < lo")
    (fun () -> ignore (Rng.int_in rng ~lo:2 ~hi:1))

let test_int_covers_range () =
  let rng = Rng.of_int 13 in
  let seen = Array.make 8 false in
  for _ = 1 to 2000 do
    seen.(Rng.int rng 8) <- true
  done;
  Array.iteri (fun i s -> check Alcotest.bool (Printf.sprintf "value %d hit" i) true s) seen

let test_float_range () =
  let rng = Rng.of_int 17 in
  for _ = 1 to 10_000 do
    let x = Rng.float rng in
    check Alcotest.bool "in [0, 1)" true (x >= 0. && x < 1.)
  done

let test_float_uniformity () =
  let rng = Rng.of_int 23 in
  let hist = Dht_stats.Histogram.create ~lo:0. ~hi:1. ~bins:16 in
  for _ = 1 to 16_000 do
    Dht_stats.Histogram.add hist (Rng.float rng)
  done;
  let chi2 = Dht_stats.Histogram.chi_square_uniform hist in
  (* 15 dof: p = 0.001 critical value is 37.7; allow margin. *)
  check Alcotest.bool (Printf.sprintf "chi2 %.1f < 45" chi2) true (chi2 < 45.)

let test_bool_fair () =
  let rng = Rng.of_int 29 in
  let heads = ref 0 in
  let n = 20_000 in
  for _ = 1 to n do
    if Rng.bool rng then incr heads
  done;
  let ratio = float_of_int !heads /. float_of_int n in
  check Alcotest.bool (Printf.sprintf "ratio %.3f near 0.5" ratio) true
    (ratio > 0.47 && ratio < 0.53)

let test_shuffle_uniform_positions () =
  let rng = Rng.of_int 31 in
  let counts = Array.make 3 0 in
  let trials = 6000 in
  for _ = 1 to trials do
    let a = [| 0; 1; 2 |] in
    Rng.shuffle rng a;
    let pos = ref 0 in
    Array.iteri (fun i x -> if x = 0 then pos := i) a;
    counts.(!pos) <- counts.(!pos) + 1
  done;
  Array.iter
    (fun c ->
      check Alcotest.bool (Printf.sprintf "count %d near %d" c (trials / 3)) true
        (abs (c - (trials / 3)) < trials / 10))
    counts

let test_sample () =
  let rng = Rng.of_int 37 in
  let src = Array.init 20 Fun.id in
  let s = Rng.sample rng src ~k:7 in
  check Alcotest.int "k elements" 7 (Array.length s);
  let sorted = Array.copy s in
  Array.sort compare sorted;
  for i = 1 to 6 do
    check Alcotest.bool "distinct" true (sorted.(i) <> sorted.(i - 1))
  done;
  Array.iter
    (fun x -> check Alcotest.bool "from source" true (x >= 0 && x < 20))
    s;
  check Alcotest.int "k = 0" 0 (Array.length (Rng.sample rng src ~k:0));
  check Alcotest.int "k = n" 20 (Array.length (Rng.sample rng src ~k:20));
  check Alcotest.bool "source untouched" true (src = Array.init 20 Fun.id);
  Alcotest.check_raises "k > n" (Invalid_argument "Rng.sample: k out of range")
    (fun () -> ignore (Rng.sample rng src ~k:21))

let test_exponential () =
  let rng = Rng.of_int 41 in
  let acc = Dht_stats.Welford.create () in
  for _ = 1 to 20_000 do
    let x = Rng.exponential rng ~rate:4. in
    check Alcotest.bool "non-negative" true (x >= 0.);
    Dht_stats.Welford.add acc x
  done;
  let mean = Dht_stats.Welford.mean acc in
  check Alcotest.bool (Printf.sprintf "mean %.4f near 0.25" mean) true
    (abs_float (mean -. 0.25) < 0.01);
  Alcotest.check_raises "rate 0"
    (Invalid_argument "Rng.exponential: rate must be positive") (fun () ->
      ignore (Rng.exponential rng ~rate:0.))

let prop_int_bounds =
  QCheck.Test.make ~name:"int within [0, bound)" ~count:500
    QCheck.(pair small_int (int_bound 1_000_000))
    (fun (seed, b) ->
      let bound = b + 1 in
      let rng = Rng.of_int seed in
      let x = Rng.int rng bound in
      x >= 0 && x < bound)

let prop_shuffle_permutation =
  QCheck.Test.make ~name:"shuffle is a permutation" ~count:200
    QCheck.(pair small_int (array small_int))
    (fun (seed, a) ->
      let rng = Rng.of_int seed in
      let b = Array.copy a in
      Rng.shuffle rng b;
      let sa = Array.copy a and sb = Array.copy b in
      Array.sort compare sa;
      Array.sort compare sb;
      sa = sb)

let suite =
  [
    Alcotest.test_case "determinism" `Quick test_determinism;
    Alcotest.test_case "distinct seeds" `Quick test_distinct_seeds;
    Alcotest.test_case "copy independence" `Quick test_copy_independent;
    Alcotest.test_case "split independence" `Quick test_split_independent;
    Alcotest.test_case "split reproducible" `Quick test_split_reproducible;
    Alcotest.test_case "int invalid bounds" `Quick test_int_invalid;
    Alcotest.test_case "int_in bounds" `Quick test_int_in_bounds;
    Alcotest.test_case "int covers range" `Quick test_int_covers_range;
    Alcotest.test_case "float range" `Quick test_float_range;
    Alcotest.test_case "float uniformity" `Quick test_float_uniformity;
    Alcotest.test_case "bool fairness" `Quick test_bool_fair;
    Alcotest.test_case "shuffle positions uniform" `Quick
      test_shuffle_uniform_positions;
    Alcotest.test_case "sample" `Quick test_sample;
    Alcotest.test_case "exponential" `Quick test_exponential;
    qtest prop_int_bounds;
    qtest prop_shuffle_permutation;
  ]
