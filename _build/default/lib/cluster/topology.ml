module Rng = Dht_prng.Rng

type t = { nodes : Profile.t array }

let homogeneous ~n profile =
  if n <= 0 then invalid_arg "Topology.homogeneous: n must be positive";
  { nodes = Array.make n profile }

let generations ~counts =
  if counts = [] then invalid_arg "Topology.generations: empty cluster";
  let groups =
    List.mapi
      (fun gen (count, scale) ->
        if count <= 0 then
          invalid_arg "Topology.generations: non-positive count";
        let profile =
          Profile.scale
            { Profile.reference with Profile.name = Printf.sprintf "gen%d" gen }
            scale
        in
        Array.make count profile)
      counts
  in
  { nodes = Array.concat groups }

let random ~rng ~n ~min_scale ~max_scale =
  if n <= 0 then invalid_arg "Topology.random: n must be positive";
  if min_scale <= 0. || max_scale < min_scale then
    invalid_arg "Topology.random: bad scale range";
  let node i =
    let scale = min_scale +. (Rng.float rng *. (max_scale -. min_scale)) in
    Profile.scale
      { Profile.reference with Profile.name = Printf.sprintf "node%d" i }
      scale
  in
  { nodes = Array.init n node }

let size t = Array.length t.nodes
let scores t = Array.map Profile.score t.nodes
let total_score t = Array.fold_left ( +. ) 0. (scores t)

let pp ppf t =
  Format.fprintf ppf "cluster of %d nodes (total score %.2f)" (size t)
    (total_score t)
