lib/cluster/topology.ml: Array Dht_prng Format List Printf Profile
