lib/cluster/profile.mli: Format
