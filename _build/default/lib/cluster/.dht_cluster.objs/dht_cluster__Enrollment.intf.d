lib/cluster/enrollment.mli: Profile
