lib/cluster/profile.ml: Format
