lib/cluster/topology.mli: Dht_prng Format Profile
