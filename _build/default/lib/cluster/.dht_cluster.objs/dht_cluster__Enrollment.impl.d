lib/cluster/enrollment.ml: Array Profile Seq Stdlib
