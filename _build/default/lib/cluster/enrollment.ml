let ideal_shares scores =
  let total = Array.fold_left ( +. ) 0. scores in
  Array.map (fun s -> s /. total) scores

let apportion ?(min_vnodes = 1) ~total scores =
  let n = Array.length scores in
  if n = 0 then invalid_arg "Enrollment.apportion: no nodes";
  Array.iter
    (fun s ->
      if s <= 0. then invalid_arg "Enrollment.apportion: non-positive score")
    scores;
  if total < min_vnodes * n then
    invalid_arg "Enrollment.apportion: total below the per-node floor";
  let shares = ideal_shares scores in
  (* Largest-remainder apportionment of the whole total, so well-separated
     scores yield exactly proportional counts... *)
  let exact = Array.map (fun s -> s *. float_of_int total) shares in
  let base = Array.map (fun e -> int_of_float (floor e)) exact in
  let assigned = Array.fold_left ( + ) 0 base in
  let leftovers = total - assigned in
  let order = Array.init n (fun i -> i) in
  Array.sort
    (fun a b ->
      Stdlib.compare
        (exact.(b) -. floor exact.(b))
        (exact.(a) -. floor exact.(a)))
    order;
  for r = 0 to leftovers - 1 do
    let i = order.(r) in
    base.(i) <- base.(i) + 1
  done;
  (* ... then enforce the per-node floor by taking from the largest holder
     (total >= min_vnodes * n guarantees termination). *)
  let rec enforce () =
    match Array.to_seqi base |> Seq.find (fun (_, c) -> c < min_vnodes) with
    | None -> ()
    | Some (poor, _) ->
        let rich = ref 0 in
        Array.iteri (fun i c -> if c > base.(!rich) then rich := i) base;
        assert (base.(!rich) > min_vnodes);
        base.(!rich) <- base.(!rich) - 1;
        base.(poor) <- base.(poor) + 1;
        enforce ()
  in
  enforce ();
  base

let vnodes_of_profiles ?min_vnodes ~total profiles =
  apportion ?min_vnodes ~total (Array.map Profile.score profiles)
