(** Cluster compositions used by the experiments.

    Builders for common cluster shapes: homogeneous racks and
    mixed-generation clusters (the paper's economic-heterogeneity scenario:
    "economical reasons may impose the coexistence of machines from
    different generations"). *)

type t = { nodes : Profile.t array }

val homogeneous : n:int -> Profile.t -> t
(** [n] identical nodes. @raise Invalid_argument if [n <= 0]. *)

val generations : counts:(int * float) list -> t
(** [generations ~counts] builds a cluster from [(count, scale)] pairs: each
    pair contributes [count] nodes that are [scale]× the reference profile
    (e.g. [\[ (8, 1.0); (4, 2.0); (2, 4.0) \]] — old, mid, new).
    @raise Invalid_argument if empty or any count is non-positive. *)

val random :
  rng:Dht_prng.Rng.t -> n:int -> min_scale:float -> max_scale:float -> t
(** [n] nodes with scales drawn uniformly in [\[min_scale, max_scale\]]. *)

val size : t -> int

val scores : t -> float array

val total_score : t -> float

val pp : Format.formatter -> t -> unit
