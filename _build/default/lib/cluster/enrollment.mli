(** Coarse-grain enrollment policy (§2.1.2).

    The number of vnodes each cluster node contributes to a DHT translates
    its enrollment level: it should be proportional to the node's share of
    the cluster's total {!Profile.score}. Apportionment uses the
    largest-remainder method so the counts sum exactly to the requested
    total, with every node getting at least [min_vnodes]. *)

val apportion :
  ?min_vnodes:int -> total:int -> float array -> int array
(** [apportion ~total scores] distributes [total] vnodes proportionally to
    [scores]. [min_vnodes] (default 1) is the floor per node.
    @raise Invalid_argument if [total < min_vnodes * n], any score is not
    strictly positive, or the array is empty. *)

val vnodes_of_profiles :
  ?min_vnodes:int -> total:int -> Profile.t array -> int array
(** {!apportion} over {!Profile.score}s. *)

val ideal_shares : float array -> float array
(** Normalized scores: the quota each node {e should} hold. *)
