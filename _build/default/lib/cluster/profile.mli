(** Cluster node profiles (§1, §2.1.2).

    Heterogeneity in a cluster comes from "the coexistence of machines from
    different generations" and from specialized nodes; a node's enrollment
    level in a DHT "primarily depends on the amount of local resources bound
    to the DHT" and on "the relative performance between the cluster nodes".
    A profile captures those resources; {!score} is the scalar the
    enrollment policy divides proportionally. *)

type t = {
  name : string;
  cpu : float;  (** relative CPU performance (1.0 = reference node) *)
  memory_gb : float;
  storage_gb : float;  (** storage bound to the DHT *)
}

val make :
  ?name:string -> cpu:float -> memory_gb:float -> storage_gb:float -> unit -> t
(** @raise Invalid_argument if any resource is not strictly positive. *)

val reference : t
(** The reference machine: cpu 1.0, 4 GB memory, 100 GB storage. *)

val scale : t -> float -> t
(** [scale p f] multiplies every resource by [f] (a newer generation). *)

val score : t -> float
(** Scalar enrollment score: geometric mean of the resources normalized to
    {!reference}. Strictly positive. *)

val with_storage : t -> storage_gb:float -> t
(** Same node with a different amount of storage bound to the DHT (the
    paper's on-line repartitioning / hot-swap scenario). *)

val pp : Format.formatter -> t -> unit
