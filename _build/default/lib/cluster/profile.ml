type t = { name : string; cpu : float; memory_gb : float; storage_gb : float }

let make ?(name = "node") ~cpu ~memory_gb ~storage_gb () =
  if cpu <= 0. || memory_gb <= 0. || storage_gb <= 0. then
    invalid_arg "Profile.make: resources must be strictly positive";
  { name; cpu; memory_gb; storage_gb }

let reference = make ~name:"reference" ~cpu:1.0 ~memory_gb:4.0 ~storage_gb:100.0 ()

let scale t f =
  if f <= 0. then invalid_arg "Profile.scale: factor must be strictly positive";
  {
    t with
    cpu = t.cpu *. f;
    memory_gb = t.memory_gb *. f;
    storage_gb = t.storage_gb *. f;
  }

let score t =
  let c = t.cpu /. reference.cpu in
  let m = t.memory_gb /. reference.memory_gb in
  let s = t.storage_gb /. reference.storage_gb in
  (c *. m *. s) ** (1. /. 3.)

let with_storage t ~storage_gb =
  if storage_gb <= 0. then invalid_arg "Profile.with_storage: must be positive";
  { t with storage_gb }

let pp ppf t =
  Format.fprintf ppf "%s{cpu=%.2f mem=%.1fGB disk=%.0fGB score=%.3f}" t.name
    t.cpu t.memory_gb t.storage_gb (score t)
