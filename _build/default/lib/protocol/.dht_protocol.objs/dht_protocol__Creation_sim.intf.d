lib/protocol/creation_sim.mli: Dht_event_sim
