lib/protocol/creation_sim.ml: Array Balancer Dht_core Dht_event_sim Dht_hashspace Dht_prng Dht_stats Fun Global_dht Group_id Hashtbl List Local_dht Option Params Queue Vnode Vnode_id
