(** Pure creation planner: the §2.5 algorithm over an LPDR snapshot.

    In the distributed runtime the coordinator of a balancing event decides
    {e from its replicated LPDR copy alone} (counts per vnode — no partition
    identities) which vnodes hand over how many partitions to a newcomer.
    This module is that decision as a pure function, so every snode could
    re-derive it and so it can be property-tested against the live
    {!Dht_core.Balancer} (same final count multiset). *)

open Dht_core

type assignment = { donor : Vnode_id.t; give : int }

type t = {
  split_all : bool;
      (** every vnode first binary-splits its partitions (G4 escape, §2.5) *)
  assignments : assignment list;
      (** how many partitions each donor hands to the newcomer; donors with
          [give = 0] are omitted. Sorted by vnode id. *)
  newcomer_count : int;  (** partitions the newcomer ends with *)
  final_counts : (Vnode_id.t * int) list;
      (** resulting LPDR (including the newcomer), sorted by vnode id *)
}

val creation :
  pmin:int -> counts:(Vnode_id.t * int) list -> newcomer:Vnode_id.t -> t
(** [creation ~pmin ~counts ~newcomer] plans the §2.5 greedy: if every count
    equals [pmin], all vnodes split first (counts double); then one
    partition at a time moves from the most-loaded vnode (ties broken by
    smaller vnode id) to the newcomer while that decreases σ(Pv).
    @raise Invalid_argument if [counts] is empty, contains the newcomer, or
    any count is outside [\[pmin, 2·pmin\]] (after accounting for the
    split). *)

type move = { src : Vnode_id.t; dst : Vnode_id.t; n : int }

type removal = {
  moves : move list;
      (** partition movements: first the departing vnode drains to the
          least-loaded survivors, then max→min equalization transfers.
          Grouped per (src, dst) pair, in execution order. *)
  removal_counts : (Vnode_id.t * int) list;
      (** resulting LPDR (without the departed vnode), sorted by id *)
}

val removal :
  pmin:int ->
  counts:(Vnode_id.t * int) list ->
  leaving:Vnode_id.t ->
  (removal, [ `Last_vnode | `Insufficient_capacity ]) result
(** Plans a departure, mirroring {!Dht_core.Balancer.remove_vnode}: hand
    each partition of [leaving] to the currently least-loaded survivor,
    then equalize max→min while σ(Pv) decreases.
    @raise Invalid_argument if [leaving] is absent or counts are out of
    bounds. *)
