open Dht_core

type assignment = { donor : Vnode_id.t; give : int }

type t = {
  split_all : bool;
  assignments : assignment list;
  newcomer_count : int;
  final_counts : (Vnode_id.t * int) list;
}

let creation ~pmin ~counts ~newcomer =
  if counts = [] then invalid_arg "Plan.creation: empty LPDR";
  if List.exists (fun (id, _) -> Vnode_id.equal id newcomer) counts then
    invalid_arg "Plan.creation: newcomer already in LPDR";
  let pmax = 2 * pmin in
  List.iter
    (fun (_, c) ->
      if c < pmin || c > pmax then
        invalid_arg "Plan.creation: count outside [Pmin, Pmax]")
    counts;
  let split_all = List.for_all (fun (_, c) -> c = pmin) counts in
  let working =
    List.map (fun (id, c) -> (id, ref (if split_all then 2 * c else c))) counts
  in
  let newcomer_count = ref 0 in
  (* Greedy §2.5: take from the current maximum (smallest id on ties) while
     handing one more partition to the newcomer decreases σ(Pv). *)
  let rec settle () =
    let victim =
      List.fold_left
        (fun best (id, c) ->
          match best with
          | Some (_, bc) when !bc > !c -> best
          | Some (bid, bc) when !bc = !c && Vnode_id.compare bid id <= 0 -> best
          | Some _ | None -> Some (id, c))
        None working
    in
    match victim with
    | None -> ()
    | Some (_, c) ->
        if Balancer.move_decreases_sigma ~from_count:!c ~to_count:!newcomer_count
        then begin
          decr c;
          incr newcomer_count;
          settle ()
        end
  in
  settle ();
  let assignments =
    List.filter_map
      (fun ((id, before), (_, after)) ->
        let gave = (if split_all then 2 * before else before) - !after in
        if gave > 0 then Some { donor = id; give = gave } else None)
      (List.combine counts working)
    |> List.sort (fun a b -> Vnode_id.compare a.donor b.donor)
  in
  let final_counts =
    (newcomer, !newcomer_count) :: List.map (fun (id, c) -> (id, !c)) working
    |> List.sort (fun (a, _) (b, _) -> Vnode_id.compare a b)
  in
  { split_all; assignments; newcomer_count = !newcomer_count; final_counts }

type move = { src : Vnode_id.t; dst : Vnode_id.t; n : int }

type removal = {
  moves : move list;
  removal_counts : (Vnode_id.t * int) list;
}

let removal ~pmin ~counts ~leaving =
  if not (List.exists (fun (id, _) -> Vnode_id.equal id leaving) counts) then
    invalid_arg "Plan.removal: leaving vnode not in LPDR";
  let pmax = 2 * pmin in
  List.iter
    (fun (_, c) ->
      if c < pmin || c > pmax then
        invalid_arg "Plan.removal: count outside [Pmin, Pmax]")
    counts;
  if List.length counts = 1 then Error `Last_vnode
  else begin
    let total = List.fold_left (fun acc (_, c) -> acc + c) 0 counts in
    if total > (List.length counts - 1) * pmax then Error `Insufficient_capacity
    else begin
      let survivors =
        List.filter_map
          (fun (id, c) ->
            if Vnode_id.equal id leaving then None else Some (id, ref c))
          counts
      in
      let give =
        ref (List.assoc leaving (List.map (fun (i, c) -> (i, c)) counts))
      in
      (* Record movements in order, coalescing consecutive same-pair moves. *)
      let moves = ref [] in
      let record src dst =
        match !moves with
        | { src = s; dst = d; n } :: rest
          when Vnode_id.equal s src && Vnode_id.equal d dst ->
            moves := { src; dst; n = n + 1 } :: rest
        | _ -> moves := { src; dst; n = 1 } :: !moves
      in
      let extreme ~smallest =
        List.fold_left
          (fun best (id, c) ->
            match best with
            | Some (_, bc) when (if smallest then !bc < !c else !bc > !c) -> best
            | Some (bid, bc)
              when !bc = !c && Vnode_id.compare bid id <= 0 ->
                Some (bid, bc)
            | Some _ | None -> Some (id, c))
          None survivors
      in
      (* Drain the departing vnode into the least-loaded survivors. *)
      while !give > 0 do
        match extreme ~smallest:true with
        | None -> assert false
        | Some (id, c) ->
            incr c;
            decr give;
            record leaving id
      done;
      (* Equalize, mirroring Balancer.remove_vnode. *)
      let continue = ref true in
      while !continue do
        match (extreme ~smallest:false, extreme ~smallest:true) with
        | Some (mx_id, mx), Some (mn_id, mn)
          when Balancer.move_decreases_sigma ~from_count:!mx ~to_count:!mn ->
            decr mx;
            incr mn;
            record mx_id mn_id
        | _ -> continue := false
      done;
      Ok
        {
          moves = List.rev !moves;
          removal_counts =
            List.map (fun (id, c) -> (id, !c)) survivors
            |> List.sort (fun (a, _) (b, _) -> Vnode_id.compare a b);
        }
    end
  end
