lib/snode/wire.mli: Dht_core Dht_hashspace Group_id Plan Span Vnode_id
