lib/snode/wire.ml: Dht_core Dht_hashspace Group_id List Option Plan Span String Vnode_id
