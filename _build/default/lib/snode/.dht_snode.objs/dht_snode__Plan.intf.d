lib/snode/plan.mli: Dht_core Vnode_id
