lib/snode/runtime.mli: Dht_core Dht_event_sim Dht_hashspace Vnode_id
