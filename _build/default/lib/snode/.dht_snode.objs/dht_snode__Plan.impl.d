lib/snode/plan.ml: Balancer Dht_core List Vnode_id
