(* Log source for the core model; enable with
   Logs.Src.set_level Dht_core.Log.src (Some Logs.Debug). *)

let src = Logs.Src.create "dht.core" ~doc:"Cluster-oriented DHT core model"

module L = (val Logs.src_log src : Logs.LOG)
