(** Virtual nodes (§2.1.2): the coarse-grain balancing unit.

    A vnode owns a set of partitions — dyadic {!Dht_hashspace.Span.t}s that
    all share the group's split level (invariant G3'). The record is mutable
    because ownership changes on every balancing event; mutation is performed
    by {!Balancer} and {!Local_dht} only. *)

open Dht_hashspace

type t = {
  id : Vnode_id.t;
  mutable group : Group_id.t;  (** the group currently containing this vnode *)
  mutable spans : Span.t list;  (** owned partitions, unordered *)
  mutable count : int;  (** [List.length spans], maintained incrementally *)
}

val make : id:Vnode_id.t -> group:Group_id.t -> t
(** A vnode with no partitions yet. *)

val quota : Space.t -> t -> float
(** Fraction of [R_h] covered by the vnode's partitions (the paper's [Qv]).
    All spans of a vnode share one level, so this is
    [count / 2^level]. [0.] when the vnode has no partitions. *)

val add_span : t -> Span.t -> unit
(** Gives one partition to the vnode. *)

val take_span : t -> Span.t
(** Removes and returns one of the vnode's partitions (the "victim
    partition" of the creation algorithm, §2.5 step 4a).
    @raise Invalid_argument if the vnode has no partitions. *)

val remove_span : t -> Span.t -> bool
(** [remove_span t s] removes the specific partition [s]; [false] if the
    vnode does not own it. *)

val split_spans : Space.t -> t -> previous:(Span.t -> unit) -> unit
(** Binary-splits every partition of the vnode, doubling [count]; calls
    [previous] on each pre-split span (so the caller can update routing
    structures). *)

val pp : Space.t -> Format.formatter -> t -> unit
