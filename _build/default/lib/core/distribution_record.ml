type entry = { vnode : Vnode_id.t; partitions : int }
type scope = Global | Local of Group_id.t
type t = { scope : scope; level : int; entries : entry array }

let of_balancer ~scope b =
  let entries =
    Array.map
      (fun v -> { vnode = v.Vnode.id; partitions = v.Vnode.count })
      (Balancer.vnodes b)
  in
  { scope; level = Balancer.level b; entries }

let entries_sorted t =
  let sorted = Array.copy t.entries in
  Array.sort
    (fun a b ->
      let c = Stdlib.compare b.partitions a.partitions in
      if c <> 0 then c else Vnode_id.compare a.vnode b.vnode)
    sorted;
  sorted

let victim t =
  Array.fold_left
    (fun best e ->
      match best with
      | Some b when b.partitions >= e.partitions -> best
      | Some _ | None -> Some e)
    None t.entries

let total_partitions t =
  Array.fold_left (fun acc e -> acc + e.partitions) 0 t.entries

let cardinal t = Array.length t.entries

let find t id =
  Array.fold_left
    (fun acc e -> if Vnode_id.equal e.vnode id then Some e.partitions else acc)
    None t.entries

let size_bytes t = 16 + (16 * Array.length t.entries)

let pp ppf t =
  (match t.scope with
  | Global -> Format.fprintf ppf "GPDR"
  | Local g -> Format.fprintf ppf "LPDR[%a]" Group_id.pp g);
  Format.fprintf ppf " level=%d:" t.level;
  Array.iter
    (fun e -> Format.fprintf ppf " %a=%d" Vnode_id.pp e.vnode e.partitions)
    (entries_sorted t)
