(** The per-group balancing algorithm (§2.5, restricted to one group in the
    local approach, §3.1).

    A balancer owns the vnodes of one group and maintains the group's common
    partition split level (invariant G3'). Creating a vnode follows the
    paper's algorithm: if no vnode can hand over a partition without
    violating [Pv >= Pmin] (which, by G5/G5', happens exactly when the vnode
    count is a power of two and all vnodes hold [Pmin] partitions), every
    vnode first binary-splits all its partitions; then partitions move one at
    a time from the currently most-loaded vnode (the {e victim}) to the
    newcomer for as long as this decreases σ(Pv).

    The global approach is this balancer applied to a single group over the
    whole table (built with {!Params.global}). *)

type event =
  | Split of { vnode : Vnode.t; before : Dht_hashspace.Span.t }
      (** [before] was replaced by its two halves, same owner. *)
  | Transfer of { src : Vnode.t; dst : Vnode.t; span : Dht_hashspace.Span.t }
      (** [span] changed owner, boundaries unchanged. *)

type t

val bootstrap :
  params:Params.t ->
  group:Group_id.t ->
  vnode:Vnode.t ->
  notify:(event -> unit) ->
  t
(** [bootstrap] creates the very first group of a DHT: the given (empty)
    vnode receives [Pmin] partitions that tile the whole of [R_h] (level
    [log2 Pmin]). [notify] is invoked on every subsequent balancing event;
    none is emitted for the initial allocation — read it back with {!vnodes}.
    @raise Invalid_argument if [vnode] already owns partitions. *)

val of_vnodes :
  params:Params.t ->
  group:Group_id.t ->
  level:int ->
  notify:(event -> unit) ->
  Vnode.t array ->
  t
(** [of_vnodes ~level vnodes] wraps existing vnodes (keeping their spans)
    into a new balancer after a group split; updates each vnode's [group]
    field.
    @raise Invalid_argument if the array is empty or some vnode count is
    outside [\[Pmin, Pmax\]]. *)

val add_vnode : t -> Vnode.t -> unit
(** Runs the creation algorithm for a vnode that currently owns no
    partitions, emitting [Split] and [Transfer] events as they happen.
    @raise Invalid_argument if the vnode already owns partitions. *)

val params : t -> Params.t

val group : t -> Group_id.t

val level : t -> int
(** The common split level [l_g] of all partitions of the group (G3'). *)

val vnode_count : t -> int
(** [Vg], the number of vnodes in the group. *)

val total_partitions : t -> int
(** [Pg], the total number of partitions of the group (a power of two,
    invariant G2'). *)

val vnodes : t -> Vnode.t array
(** Snapshot of the group's vnodes (fresh array, shared vnode records). *)

val iter_vnodes : t -> (Vnode.t -> unit) -> unit
(** Iterates over the group's vnodes without copying (hot path for metric
    sampling). *)

val counts : t -> int array
(** Partition counts per vnode, in internal order. *)

val quota : t -> float
(** The group quota [Qg = Pg / 2^lg] (§4.2.1). *)

val remove_vnode : t -> Vnode.t -> (unit, [ `Insufficient_capacity | `Last_vnode ]) result
(** Departure of a vnode (the model's "cluster nodes may dynamically leave
    the DHT"). The paper does not spell the algorithm out; we use the
    symmetric inverse of creation: the departing vnode's partitions go one
    at a time to the currently least-loaded vnode, followed by max→min
    transfers while they decrease σ(Pv), so the group ends within one
    partition of perfectly even.

    Removal relaxes G5/G5' from "all counts equal [Pmin]" to "all counts
    equal" (same perfect quota balance, possibly at a deeper split level);
    creations remain correct on such states because the split-all trigger
    fires on [Pv = Pmin], not on population counts.

    Errors: [`Last_vnode] when the group would become empty;
    [`Insufficient_capacity] when the surviving vnodes cannot absorb the
    partitions within [Pmax] (only reachable after repeated removals at tiny
    populations — the caller should grow the DHT first).
    @raise Invalid_argument if the vnode is not a member of this group. *)

val transfer_span :
  t ->
  src:Vnode.t ->
  dst:Vnode.t ->
  Dht_hashspace.Span.t ->
  (unit, [ `Src_at_pmin | `Dst_at_pmax | `Not_owner | `Not_member ]) result
(** Policy-driven fine-grain move of one specific partition between two
    vnodes of the group (the §6 future-work hook: reacting to non-uniform
    access). Refuses moves that would violate G4' ([`Src_at_pmin],
    [`Dst_at_pmax]); emits the usual [Transfer] event on success. Note that
    a successful move intentionally trades σ(Pv) balance for whatever the
    caller is optimising — it may un-do G5's perfect balance. *)

val swap_spans :
  t ->
  a:Vnode.t ->
  b:Vnode.t ->
  span_a:Dht_hashspace.Span.t ->
  span_b:Dht_hashspace.Span.t ->
  (unit, [ `Not_owner | `Not_member | `Same_vnode ]) result
(** Exchange two partitions between two vnodes of the group. Counts are
    unchanged, so a swap is admissible in {e any} state — including the
    all-at-[Pmin] state of G5 where {!transfer_span} has no slack — which
    makes it the workhorse of access-aware balancing. Emits two [Transfer]
    events. *)

val move_decreases_sigma : from_count:int -> to_count:int -> bool
(** The paper's step-4 test: does moving one partition from a vnode holding
    [from_count] to one holding [to_count] decrease σ(Pv)? Since the total
    is unchanged, σ decreases iff the sum of squares does, i.e. iff
    [to_count < from_count - 1]. *)
