(** The global approach (§2): one balancing domain for the whole DHT.

    Every snode holds the GPDR and takes part in every vnode creation; the
    balancing algorithm is {!Balancer} applied to a single group that never
    splits. High balance quality, serialized creations. *)

open Dht_hashspace

type t

val create :
  ?space:Space.t ->
  ?on_event:(Balancer.event -> unit) ->
  pmin:int ->
  first:Vnode_id.t ->
  unit ->
  t
(** [create ~pmin ~first ()] builds a DHT whose first vnode [first] owns the
    whole hash range as [pmin] partitions. [on_event] observes every
    balancing event (partition splits and transfers), e.g. to drive data
    migration. *)

val add_vnode : t -> id:Vnode_id.t -> Vnode.t
(** Creates a vnode and rebalances (§2.5). Returns the new vnode.
    @raise Invalid_argument if a vnode with this id already exists. *)

val find_vnode : t -> Vnode_id.t -> Vnode.t option
(** The live vnode with this canonical name, if any. *)

val restore :
  ?space:Space.t ->
  ?on_event:(Balancer.event -> unit) ->
  pmin:int ->
  level:int ->
  vnodes:(Vnode_id.t * Span.t list) list ->
  unit ->
  t
(** Rebuilds a DHT from persisted state (see {!Snapshot}): one member per
    entry, all partitions at the given split [level].
    @raise Invalid_argument on structurally inconsistent state. *)

val remove_vnode :
  t -> id:Vnode_id.t -> (unit, [ `Insufficient_capacity | `Last_vnode ]) result
(** Departure of a vnode: partitions are handed to the least-loaded
    survivors and the table re-equalizes (see {!Balancer.remove_vnode}).
    @raise Invalid_argument if no vnode has this id. *)

val params : t -> Params.t

val vnode_count : t -> int

val level : t -> int
(** Common split level of all partitions (invariant G3). *)

val vnodes : t -> Vnode.t array
(** Snapshot, in creation order. *)

val counts : t -> int array
(** Partitions per vnode (the GPDR content), in creation order. *)

val quotas : t -> float array
(** [Qv] per vnode, in creation order. *)

val sigma_qv : t -> float
(** σ̄(Qv, Q̄v) in percent — the paper's quality metric. *)

val sigma_pv : t -> float
(** σ̄(Pv, P̄v) in percent; equal to {!sigma_qv} in the global approach
    (§2.4). *)

val gpdr : t -> Distribution_record.t
(** Snapshot of the global partition distribution record. *)

val lookup : t -> int -> Span.t * Vnode.t
(** [lookup t p] routes hash index [p] to its partition and owner.
    @raise Invalid_argument if [p] is outside the space. *)

val map : t -> Vnode.t Point_map.t
(** The live routing map (read-only use expected). *)

val balancer : t -> Balancer.t
(** The single underlying balancing domain. *)
