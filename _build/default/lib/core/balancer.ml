open Dht_hashspace

type event =
  | Split of { vnode : Vnode.t; before : Span.t }
  | Transfer of { src : Vnode.t; dst : Vnode.t; span : Span.t }

type t = {
  params : Params.t;
  group : Group_id.t;
  notify : event -> unit;
  mutable level : int;
  mutable vnodes : Vnode.t array;
  mutable nv : int;  (* used prefix of [vnodes] *)
  buckets : Vnode.t list array;  (* buckets.(c) = vnodes holding c partitions *)
  mutable max_count : int;  (* largest c with buckets.(c) non-empty *)
  mutable total : int;  (* Pg, the group's partition total *)
}

let params t = t.params
let group t = t.group
let level t = t.level
let vnode_count t = t.nv
let total_partitions t = t.total
let vnodes t = Array.sub t.vnodes 0 t.nv

let iter_vnodes t f =
  for i = 0 to t.nv - 1 do
    f t.vnodes.(i)
  done
let counts t = Array.map (fun v -> v.Vnode.count) (vnodes t)
let quota t = ldexp (float_of_int t.total) (-t.level)

let move_decreases_sigma ~from_count ~to_count =
  (* Moving one partition keeps the total (hence the mean) unchanged, so
     σ(Pv) decreases iff Σ Pv² does. The move changes Σ Pv² by
     (a-1)² + (b+1)² - a² - b² = 2(b - a + 1), negative iff b < a - 1. *)
  to_count < from_count - 1

let push_vnode t v =
  if t.nv = Array.length t.vnodes then begin
    let bigger = Array.make (max 8 (2 * t.nv)) v in
    Array.blit t.vnodes 0 bigger 0 t.nv;
    t.vnodes <- bigger
  end;
  t.vnodes.(t.nv) <- v;
  t.nv <- t.nv + 1

let bucket_add t v =
  let c = v.Vnode.count in
  t.buckets.(c) <- v :: t.buckets.(c);
  if c > t.max_count then t.max_count <- c

(* Lower max_count to the largest non-empty bucket. *)
let refresh_max t =
  while t.max_count > 0 && t.buckets.(t.max_count) = [] do
    t.max_count <- t.max_count - 1
  done

let rebuild_buckets t =
  Array.fill t.buckets 0 (Array.length t.buckets) [];
  t.max_count <- 0;
  for i = 0 to t.nv - 1 do
    bucket_add t t.vnodes.(i)
  done

let make_empty ~params ~group ~level ~notify =
  {
    params;
    group;
    notify;
    level;
    vnodes = [||];
    nv = 0;
    buckets = Array.make (Params.pmax params + 1) [];
    max_count = 0;
    total = 0;
  }

let bootstrap ~params ~group ~vnode ~notify =
  if vnode.Vnode.count <> 0 then
    invalid_arg "Balancer.bootstrap: vnode already owns partitions";
  let space = params.Params.space in
  let pmin = params.Params.pmin in
  let level = Params.log2_exact pmin in
  let t = make_empty ~params ~group ~level ~notify in
  vnode.Vnode.group <- group;
  for i = 0 to pmin - 1 do
    Vnode.add_span vnode (Span.make space ~level ~index:i)
  done;
  push_vnode t vnode;
  bucket_add t vnode;
  t.total <- pmin;
  t

let of_vnodes ~params ~group ~level ~notify members =
  if Array.length members = 0 then invalid_arg "Balancer.of_vnodes: no vnodes";
  let pmin = params.Params.pmin and pmax = Params.pmax params in
  let t = make_empty ~params ~group ~level ~notify in
  Array.iter
    (fun v ->
      if v.Vnode.count < pmin || v.Vnode.count > pmax then
        invalid_arg "Balancer.of_vnodes: vnode count outside [Pmin, Pmax]";
      assert (List.for_all (fun s -> Span.level s = level) v.Vnode.spans);
      v.Vnode.group <- group;
      push_vnode t v;
      bucket_add t v;
      t.total <- t.total + v.Vnode.count)
    members;
  t

(* Invariant-G4 escape hatch (§2.5): when every vnode is at Pmin, nobody can
   donate, so all vnodes binary-split their partitions, doubling to Pmax. *)
let split_all t =
  let space = t.params.Params.space in
  if t.level >= Space.max_level space then
    failwith "Balancer: hash space exhausted (level = Bh)";
  Log.L.debug (fun m ->
      m "group %a: split-all, level %d -> %d (Vg=%d)" Group_id.pp t.group
        t.level (t.level + 1) t.nv);
  for i = 0 to t.nv - 1 do
    let v = t.vnodes.(i) in
    Vnode.split_spans space v ~previous:(fun s ->
        t.notify (Split { vnode = v; before = s }))
  done;
  t.level <- t.level + 1;
  t.total <- 2 * t.total;
  rebuild_buckets t

let bucket_remove t v =
  let c = v.Vnode.count in
  t.buckets.(c) <- List.filter (fun w -> w != v) t.buckets.(c)

let member t v =
  let rec scan i = i < t.nv && (t.vnodes.(i) == v || scan (i + 1)) in
  scan 0

(* Least-loaded member, scanning buckets upward (counts are bounded by Pmax,
   so this is O(Pmax) worst case). *)
let min_count_vnode t =
  let rec scan c =
    if c >= Array.length t.buckets then None
    else
      match t.buckets.(c) with v :: _ -> Some v | [] -> scan (c + 1)
  in
  scan 0

(* Move one (arbitrary) partition from [src] to [dst], keeping buckets in
   sync and notifying. *)
let move_one t ~src ~dst =
  bucket_remove t src;
  bucket_remove t dst;
  let span = Vnode.take_span src in
  Vnode.add_span dst span;
  bucket_add t src;
  bucket_add t dst;
  t.notify (Transfer { src; dst; span })

(* Max→min transfers while they decrease σ(Pv): ends with every count within
   one partition of the mean. *)
let equalize t =
  let continue = ref true in
  while !continue do
    refresh_max t;
    match min_count_vnode t with
    | None -> continue := false
    | Some min_v ->
        if
          move_decreases_sigma ~from_count:t.max_count
            ~to_count:min_v.Vnode.count
        then begin
          match t.buckets.(t.max_count) with
          | [] -> assert false
          | src :: _ ->
              (* Counts differ by at least 2, so src cannot be min_v. *)
              assert (src != min_v);
              move_one t ~src ~dst:min_v
        end
        else continue := false
  done

let remove_vnode t v =
  if not (member t v) then
    invalid_arg "Balancer.remove_vnode: vnode is not a member of this group";
  if t.nv = 1 then Error `Last_vnode
  else if t.total > (t.nv - 1) * Params.pmax t.params then
    Error `Insufficient_capacity
  else begin
    Log.L.debug (fun m ->
        m "group %a: vnode %a leaving with %d partitions" Group_id.pp t.group
          Vnode_id.pp v.Vnode.id v.Vnode.count);
    (* Detach the departing vnode from the structures first so it cannot be
       selected as a transfer destination. *)
    bucket_remove t v;
    let rec index i = if t.vnodes.(i) == v then i else index (i + 1) in
    let idx = index 0 in
    Array.blit t.vnodes (idx + 1) t.vnodes idx (t.nv - idx - 1);
    t.nv <- t.nv - 1;
    (* Hand every partition to the currently least-loaded survivor. The
       capacity check guarantees a receiver below Pmax exists while any
       partition is left. *)
    while v.Vnode.count > 0 do
      match min_count_vnode t with
      | None -> assert false
      | Some dst ->
          assert (dst.Vnode.count < Params.pmax t.params);
          bucket_remove t dst;
          let span = Vnode.take_span v in
          Vnode.add_span dst span;
          bucket_add t dst;
          t.notify (Transfer { src = v; dst; span })
    done;
    equalize t;
    Ok ()
  end

let transfer_span t ~src ~dst span =
  if not (member t src && member t dst) then Error `Not_member
  else if src.Vnode.count <= t.params.Params.pmin then Error `Src_at_pmin
  else if dst.Vnode.count >= Params.pmax t.params then Error `Dst_at_pmax
  else begin
    bucket_remove t src;
    bucket_remove t dst;
    if Vnode.remove_span src span then begin
      Vnode.add_span dst span;
      bucket_add t src;
      bucket_add t dst;
      t.notify (Transfer { src; dst; span });
      Ok ()
    end
    else begin
      (* Restore the buckets untouched. *)
      bucket_add t src;
      bucket_add t dst;
      Error `Not_owner
    end
  end

let swap_spans t ~a ~b ~span_a ~span_b =
  if a == b then Error `Same_vnode
  else if not (member t a && member t b) then Error `Not_member
  else if
    not
      (List.exists (Span.equal span_a) a.Vnode.spans
      && List.exists (Span.equal span_b) b.Vnode.spans)
  then Error `Not_owner
  else begin
    (* Counts are unchanged, so the buckets need no maintenance. *)
    ignore (Vnode.remove_span a span_a);
    ignore (Vnode.remove_span b span_b);
    Vnode.add_span a span_b;
    Vnode.add_span b span_a;
    t.notify (Transfer { src = a; dst = b; span = span_a });
    t.notify (Transfer { src = b; dst = a; span = span_b });
    Ok ()
  end

let add_vnode t newcomer =
  if newcomer.Vnode.count <> 0 then
    invalid_arg "Balancer.add_vnode: vnode already owns partitions";
  refresh_max t;
  if t.max_count = t.params.Params.pmin then split_all t;
  newcomer.Vnode.group <- t.group;
  push_vnode t newcomer;
  let rec settle () =
    refresh_max t;
    if move_decreases_sigma ~from_count:t.max_count ~to_count:newcomer.Vnode.count
    then begin
      match t.buckets.(t.max_count) with
      | [] -> assert false (* refresh_max guarantees non-empty *)
      | victim :: rest ->
          t.buckets.(t.max_count) <- rest;
          let span = Vnode.take_span victim in
          Vnode.add_span newcomer span;
          t.notify (Transfer { src = victim; dst = newcomer; span });
          t.buckets.(victim.Vnode.count) <-
            victim :: t.buckets.(victim.Vnode.count);
          settle ()
    end
  in
  settle ();
  bucket_add t newcomer;
  (* G4': every vnode, including the newcomer, ends within [Pmin, Pmax]. *)
  assert (newcomer.Vnode.count >= t.params.Params.pmin);
  assert (newcomer.Vnode.count <= Params.pmax t.params)
