(** The paper's quality metrics (§2.3, §3.5, §4.2.1).

    All sigmas are {e relative} standard deviations against the {e ideal}
    average (1/N for N quota holders), expressed in percent, using the
    population convention — exactly the quantity plotted in figures 4, 6, 8
    and 9. *)

val sigma_percent : float array -> float
(** [sigma_percent quotas] is [100 · σ(q, 1/n) / (1/n)] where [n] is the
    array length — σ̄(Qv, Q̄v) when applied to vnode quotas, σ̄(Qg, Q̄g)
    when applied to group quotas, σ̄(Qn, Q̄n) for physical-node quotas.
    Returns [0.] for arrays of length 0 or 1. *)

val sigma_counts_percent : int array -> float
(** σ̄(Pv, P̄v) over partition counts — valid as a quality metric only under
    the global approach, where all partitions share one size (§2.4). *)

val gideal : vnodes:int -> vmax:int -> int
(** The ideal number of groups after [vnodes] creations (figure 7): 1 while
    [V <= Vmax], doubling each time [V] crosses a power-of-two boundary,
    i.e. [2^max(0, ceil(log2 V) - log2 Vmax)].
    @raise Invalid_argument if [vnodes < 1] or [vmax] is not a positive
    power of two. *)
