module D = Dht_stats.Descriptive

let sigma_percent quotas =
  let n = Array.length quotas in
  if n <= 1 then 0.
  else
    let ideal = 1. /. float_of_int n in
    100. *. D.rel_stddev_about quotas ~about:ideal

let sigma_counts_percent counts =
  let n = Array.length counts in
  if n <= 1 then 0.
  else
    let floats = Array.map float_of_int counts in
    (* The ideal average count is total/n (the empirical mean): under the
       global approach quotas are proportional to counts, so the ideal quota
       1/n corresponds exactly to the mean count. *)
    let ideal = D.mean floats in
    100. *. D.rel_stddev_about floats ~about:ideal

let gideal ~vnodes ~vmax =
  if vnodes < 1 then invalid_arg "Metrics.gideal: vnodes < 1";
  if not (Params.is_power_of_two vmax) then
    invalid_arg "Metrics.gideal: vmax not a power of two";
  if vnodes <= vmax then 1
  else begin
    (* ceil(log2 vnodes) *)
    let rec ceil_log2 acc n = if n <= 1 then acc else ceil_log2 (acc + 1) ((n + 1) / 2) in
    let exp = ceil_log2 0 vnodes - Params.log2_exact vmax in
    1 lsl exp
  end
