(** Canonical vnode names.

    "Vnodes in the LPDR are identified by their canonical name, which follows
    the generic format snode_id.vnode_id" (§3.6, footnote 2). *)

type t = { snode : int; vnode : int }

val make : snode:int -> vnode:int -> t
(** @raise Invalid_argument if either component is negative. *)

val compare : t -> t -> int

val equal : t -> t -> bool

val hash : t -> int

val pp : Format.formatter -> t -> unit
(** Prints the canonical [snode.vnode] form. *)

val to_string : t -> string
