type t = { value : int; bits : int }

let root = { value = 0; bits = 0 }

let make ~value ~bits =
  if bits < 0 || bits > 60 then invalid_arg "Group_id.make: bits outside [0, 60]";
  if value < 0 || (bits < 60 && value >= 1 lsl bits) then
    invalid_arg "Group_id.make: value outside [0, 2^bits)";
  { value; bits }

let split g =
  if g.bits >= 60 then invalid_arg "Group_id.split: identifier overflow";
  ( { value = g.value; bits = g.bits + 1 },
    { value = g.value lor (1 lsl g.bits); bits = g.bits + 1 } )

let value g = g.value
let bits g = g.bits

let compare a b =
  let c = Stdlib.compare a.bits b.bits in
  if c <> 0 then c else Stdlib.compare a.value b.value

let equal a b = a.bits = b.bits && a.value = b.value
let hash t = Hashtbl.hash (t.value, t.bits)

let pp ppf g =
  if g.bits = 0 then Format.fprintf ppf "0b(=0)"
  else begin
    for i = g.bits - 1 downto 0 do
      Format.pp_print_char ppf (if g.value land (1 lsl i) <> 0 then '1' else '0')
    done;
    Format.fprintf ppf "b(=%d)" g.value
  end

let to_string g = Format.asprintf "%a" pp g
