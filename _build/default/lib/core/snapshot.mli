(** Persistence: textual snapshots of a DHT's distribution state.

    The format is a line-oriented, human-diffable text (version-tagged), so
    operators can checkpoint a DHT's partition layout and restore it later
    — the dynamic state a deployed system would store on its metadata
    volume. Data (keys/values) is not part of the snapshot; only the
    distribution structure is.

    Restoring validates the structure fully (coverage, bounds, levels) and
    yields a DHT that behaves identically to the original one modulo the
    supplied RNG stream. *)

module Rng = Dht_prng.Rng

val save_local : Local_dht.t -> string
(** Serializes parameters, groups, members and partitions. *)

val load_local :
  ?on_event:(Balancer.event -> unit) ->
  ?selection:Local_dht.selection ->
  rng:Rng.t ->
  string ->
  (Local_dht.t, string) result
(** Parses and rebuilds a local-approach DHT. Returns [Error reason] on any
    syntax or consistency problem (never raises on bad input). *)

val save_global : Global_dht.t -> string

val load_global :
  ?on_event:(Balancer.event -> unit) ->
  string ->
  (Global_dht.t, string) result
(** Rebuilding a global DHT re-inserts its vnodes into a fresh single
    balancing domain restored from the snapshot. *)

val write_file : path:string -> string -> unit

val read_file : path:string -> string
