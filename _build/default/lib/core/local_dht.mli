(** The local approach (§3): the DHT divided into independently evolving
    groups of vnodes.

    Vnode creation picks a victim group by drawing a uniform hash index and
    routing it (§3.6), so a group is chosen with probability equal to its
    quota. A full group ([Vg = Vmax]) splits into two groups of [Vmin]
    randomly-selected vnodes, one of which (chosen at random) receives the
    newcomer (§3.7). Group identifiers follow the binary-prefix scheme of
    §3.7.1. *)

open Dht_hashspace
module Rng = Dht_prng.Rng

type t

type split_info = {
  parent : Group_id.t;
  left : Group_id.t;
  right : Group_id.t;
  at_vnodes : int;  (** total vnode count of the DHT when the split fired *)
}

type selection =
  | Quota_lookup
      (** §3.6: route a uniform hash index; groups are hit with probability
          equal to their quota (the paper's design). *)
  | Uniform_group
      (** Ablation: pick a live group uniformly at random, ignoring quotas.
          Used to quantify how much the lookup-based selection contributes
          to balance. *)

val create :
  ?space:Space.t ->
  ?on_event:(Balancer.event -> unit) ->
  ?on_group_split:(split_info -> unit) ->
  ?selection:selection ->
  pmin:int ->
  vmin:int ->
  rng:Rng.t ->
  first:Vnode_id.t ->
  unit ->
  t
(** [create ~pmin ~vmin ~rng ~first ()] builds a DHT with one group (group 0)
    containing the vnode [first], which owns the whole hash range as [pmin]
    partitions. [rng] drives victim-group selection and group splitting; it
    is owned by the DHT afterwards. [selection] defaults to
    {!Quota_lookup}. *)

val add_vnode : t -> id:Vnode_id.t -> Vnode.t
(** Creates a vnode per §3.6/§3.7 and rebalances its victim group.
    Equivalent to {!select_victim} on a fresh uniform point followed by
    {!add_vnode_routed} (under the default {!Quota_lookup} selection).
    @raise Invalid_argument if a vnode with this id already exists. *)

val restore :
  ?space:Space.t ->
  ?on_event:(Balancer.event -> unit) ->
  ?on_group_split:(split_info -> unit) ->
  ?selection:selection ->
  pmin:int ->
  vmin:int ->
  rng:Rng.t ->
  groups:(Group_id.t * int * (Vnode_id.t * Dht_hashspace.Span.t list) list) list ->
  unit ->
  t
(** [restore ~groups ()] rebuilds a DHT from persisted state: one
    [(group id, split level, members)] triple per group, each member with
    its partitions. Used by {!Snapshot}. The state is validated
    structurally (full coverage, no overlap, count bounds, level
    consistency); callers wanting the complete invariant battery should run
    {!Audit.check_local} on the result.
    @raise Invalid_argument on any inconsistent state. *)

val find_vnode : t -> Vnode_id.t -> Vnode.t option
(** The live vnode with this canonical name, if any. *)

type removal_error =
  | Last_vnode  (** the DHT cannot become empty *)
  | Group_at_minimum of Group_id.t
      (** the vnode's group is at [Vmin] and may not shrink (invariant L2);
          shrinking further would require a group merge, which the model
          does not define — grow elsewhere first or retire whole groups *)
  | Group_capacity of Group_id.t
      (** the surviving vnodes of the group cannot absorb the partitions
          within [Pmax] *)

val pp_removal_error : Format.formatter -> removal_error -> unit

val remove_vnode : t -> id:Vnode_id.t -> (unit, removal_error) result
(** Departure of a vnode (dynamic leave, §1): its partitions are handed to
    the least-loaded vnodes of its group and the group re-equalizes (see
    {!Balancer.remove_vnode}). While group 0 is the only group it may
    shrink to a single vnode (the L2 exception); otherwise groups never go
    below [Vmin].
    @raise Invalid_argument if no vnode has this id. *)

val select_victim : t -> point:int -> Vnode.t
(** [select_victim t ~point] is the vnode owning the hash index [point] —
    the {e victim vnode} of §3.6; its current group is the victim group.
    @raise Invalid_argument if [point] is outside the space. *)

type creation_report = {
  vnode : Vnode.t;  (** the vnode that was created *)
  victim_group : Group_id.t;  (** group of the victim at selection time *)
  target_group : Group_id.t;  (** group that received the newcomer *)
  split : split_info option;  (** set when the victim group was full *)
  group_members : Vnode.t array;
      (** members of the target group after the creation (the vnodes whose
          snodes take part in the balancing event) *)
}

val add_vnode_routed : t -> id:Vnode_id.t -> victim:Vnode.t -> creation_report
(** The execution half of a creation, for callers (such as the protocol
    simulator) that perform the victim lookup themselves: balances the
    victim vnode's current group, splitting it first if full. *)

val params : t -> Params.t

val vnode_count : t -> int
(** Total vnodes across all groups. *)

val group_count : t -> int
(** [Greal], the current number of groups. *)

val gideal : t -> int
(** [Gideal] for the current vnode count (figure 7). *)

val group_splits : t -> split_info list
(** History of group splits, most recent first. *)

val groups : t -> Balancer.t list
(** The live balancing domains, in ascending group-id order. *)

val find_group : t -> Group_id.t -> Balancer.t option

val vnodes : t -> Vnode.t array
(** All vnodes of the DHT, grouped by group, ascending group-id order. *)

val quotas : t -> float array
(** [Qv] of every vnode (same order as {!vnodes}). *)

val sigma_qv : t -> float
(** σ̄(Qv, Q̄v) in percent — the only valid quality metric under the local
    approach (§3.5). *)

val group_quotas : t -> float array
(** [Qg] per group, ascending group-id order. *)

val sigma_qg : t -> float
(** σ̄(Qg, Q̄g) in percent — quality of the balancement between groups
    (§4.2.1, figure 8). *)

val lpdr : t -> Group_id.t -> Distribution_record.t option
(** Snapshot of one group's LPDR. *)

val lookup : t -> int -> Span.t * Vnode.t
(** Routes a hash index to its partition and owning vnode. *)

val map : t -> Vnode.t Point_map.t
(** The live routing map (read-only use expected). *)
