(** Keeping the partition→vnode routing map in sync with balancing events.

    Both DHT flavours own a {!Dht_hashspace.Point_map} from spans to vnodes;
    this module translates {!Balancer.event}s into map updates: a [Split]
    halves a registered span (same owner), a [Transfer] re-owns a span
    without moving its boundaries. *)

open Dht_hashspace

val apply : Vnode.t Point_map.t -> Balancer.event -> unit
(** Applies one balancing event to the routing map. *)

val register_vnode : Vnode.t Point_map.t -> Vnode.t -> unit
(** Inserts all spans currently owned by a vnode (used once, after
    {!Balancer.bootstrap}). *)

val chain :
  (Balancer.event -> unit) ->
  (Balancer.event -> unit) ->
  Balancer.event ->
  unit
(** [chain f g] runs both handlers, [f] first. *)
