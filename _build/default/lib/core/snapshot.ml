module Rng = Dht_prng.Rng
module Space = Dht_hashspace.Space
module Span = Dht_hashspace.Span

let magic = "balanced-dht-snapshot v1"

let span_to_string s = Printf.sprintf "%d:%d" (Span.level s) (Span.index s)

let buf_vnode buf space v =
  Buffer.add_string buf (Printf.sprintf "vnode %s" (Vnode_id.to_string v.Vnode.id));
  ignore space;
  List.iter
    (fun s ->
      Buffer.add_char buf ' ';
      Buffer.add_string buf (span_to_string s))
    (List.sort Span.compare v.Vnode.spans);
  Buffer.add_char buf '\n'

let save_local dht =
  let params = Local_dht.params dht in
  let buf = Buffer.create 4096 in
  Buffer.add_string buf (magic ^ " local\n");
  Buffer.add_string buf (Printf.sprintf "space %d\n" (Space.bits params.Params.space));
  Buffer.add_string buf (Printf.sprintf "pmin %d\n" params.Params.pmin);
  Buffer.add_string buf (Printf.sprintf "vmin %d\n" params.Params.vmin);
  List.iter
    (fun b ->
      let gid = Balancer.group b in
      Buffer.add_string buf
        (Printf.sprintf "group %d:%d level %d\n" (Group_id.value gid)
           (Group_id.bits gid) (Balancer.level b));
      Array.iter (buf_vnode buf params.Params.space) (Balancer.vnodes b))
    (Local_dht.groups dht);
  Buffer.add_string buf "end\n";
  Buffer.contents buf

let save_global dht =
  let params = Global_dht.params dht in
  let buf = Buffer.create 4096 in
  Buffer.add_string buf (magic ^ " global\n");
  Buffer.add_string buf (Printf.sprintf "space %d\n" (Space.bits params.Params.space));
  Buffer.add_string buf (Printf.sprintf "pmin %d\n" params.Params.pmin);
  Buffer.add_string buf (Printf.sprintf "level %d\n" (Global_dht.level dht));
  Array.iter (buf_vnode buf params.Params.space) (Global_dht.vnodes dht);
  Buffer.add_string buf "end\n";
  Buffer.contents buf

(* ---------------- parsing ---------------- *)

exception Bad of string

let fail fmt = Printf.ksprintf (fun s -> raise (Bad s)) fmt

let int_of s ~what =
  match int_of_string_opt s with
  | Some n -> n
  | None -> fail "bad %s: %S" what s

let parse_span space token =
  match String.split_on_char ':' token with
  | [ l; i ] -> (
      let level = int_of l ~what:"span level" in
      let index = int_of i ~what:"span index" in
      try Span.make space ~level ~index
      with Invalid_argument m -> fail "bad span %S: %s" token m)
  | _ -> fail "bad span token: %S" token

let parse_vnode_line space line =
  match String.split_on_char ' ' line with
  | "vnode" :: id :: spans -> (
      match String.split_on_char '.' id with
      | [ s; v ] ->
          let id =
            try
              Vnode_id.make ~snode:(int_of s ~what:"snode id")
                ~vnode:(int_of v ~what:"vnode id")
            with Invalid_argument m -> fail "bad vnode id %S: %s" id m
          in
          (id, List.map (parse_span space) (List.filter (fun t -> t <> "") spans))
      | _ -> fail "bad vnode id: %S" id)
  | _ -> fail "expected a vnode line, got %S" line

let parse_header lines ~flavour =
  match lines with
  | first :: rest when first = magic ^ " " ^ flavour -> rest
  | first :: _ -> fail "bad header (expected %s %s): %S" magic flavour first
  | [] -> fail "empty snapshot"

let parse_kv lines ~key =
  match lines with
  | line :: rest -> (
      match String.split_on_char ' ' line with
      | [ k; v ] when k = key -> (int_of v ~what:key, rest)
      | _ -> fail "expected %S line, got %S" key line)
  | [] -> fail "truncated snapshot (expected %S)" key

let nonempty_lines text =
  String.split_on_char '\n' text
  |> List.map String.trim
  |> List.filter (fun l -> l <> "")

let load_local ?on_event ?selection ~rng text =
  try
    let lines = nonempty_lines text in
    let lines = parse_header lines ~flavour:"local" in
    let bits, lines = parse_kv lines ~key:"space" in
    let pmin, lines = parse_kv lines ~key:"pmin" in
    let vmin, lines = parse_kv lines ~key:"vmin" in
    let space =
      try Space.create ~bits with Invalid_argument m -> fail "bad space: %s" m
    in
    let rec groups acc current = function
      | [] -> fail "truncated snapshot (missing end)"
      | [ "end" ] -> (
          match current with
          | Some g -> List.rev (g :: acc)
          | None -> List.rev acc)
      | line :: rest when String.length line >= 5 && String.sub line 0 5 = "group"
        -> (
          let acc = match current with Some g -> g :: acc | None -> acc in
          match String.split_on_char ' ' line with
          | [ "group"; gid; "level"; l ] -> (
              match String.split_on_char ':' gid with
              | [ value; b ] ->
                  let g =
                    try
                      Group_id.make
                        ~value:(int_of value ~what:"group value")
                        ~bits:(int_of b ~what:"group bits")
                    with Invalid_argument m -> fail "bad group id: %s" m
                  in
                  groups acc
                    (Some (g, int_of l ~what:"group level", []))
                    rest
              | _ -> fail "bad group id: %S" gid)
          | _ -> fail "bad group line: %S" line)
      | line :: rest -> (
          match current with
          | None -> fail "vnode line before any group: %S" line
          | Some (g, l, members) ->
              let member = parse_vnode_line space line in
              groups acc (Some (g, l, members @ [ member ])) rest)
    in
    let group_specs = groups [] None lines in
    try
      Ok
        (Local_dht.restore ~space ?on_event ?selection ~pmin ~vmin ~rng
           ~groups:group_specs ())
    with Invalid_argument m -> Error m
  with Bad m -> Error m

let load_global ?on_event text =
  try
    let lines = nonempty_lines text in
    let lines = parse_header lines ~flavour:"global" in
    let bits, lines = parse_kv lines ~key:"space" in
    let pmin, lines = parse_kv lines ~key:"pmin" in
    let level, lines = parse_kv lines ~key:"level" in
    let space =
      try Space.create ~bits with Invalid_argument m -> fail "bad space: %s" m
    in
    let rec members acc = function
      | [] -> fail "truncated snapshot (missing end)"
      | [ "end" ] -> List.rev acc
      | line :: rest -> members (parse_vnode_line space line :: acc) rest
    in
    let vnodes = members [] lines in
    try Ok (Global_dht.restore ~space ?on_event ~pmin ~level ~vnodes ())
    with Invalid_argument m -> Error m
  with Bad m -> Error m

let write_file ~path text =
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () -> output_string oc text)

let read_file ~path =
  let ic = open_in path in
  Fun.protect
    ~finally:(fun () -> close_in ic)
    (fun () -> really_input_string ic (in_channel_length ic))
