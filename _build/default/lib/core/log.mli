(** Log source for the core model. Enable with
    [Logs.Src.set_level Dht_core.Log.src (Some Logs.Debug)] (or the
    [DHT_LOG] environment variable of [dht_sim]). *)

val src : Logs.src

module L : Logs.LOG
