(** Decentralized group identifiers (§3.7.1).

    The first group is [0] on zero bits of history; each split prefixes the
    binary identifier with the digit 0 or 1 (most significant bit), so the
    two children of a [k]-bit group with value [v] are [(v, k+1)] and
    [(v + 2^k, k+1)]. Only the snode coordinating a split is involved, and
    identifiers remain globally unique. *)

type t = private { value : int; bits : int }

val root : t
(** The first group, group [0] (zero split history). *)

val make : value:int -> bits:int -> t
(** @raise Invalid_argument if [bits < 0], [bits > 60], or [value] outside
    [\[0, 2^bits)]. *)

val split : t -> t * t
(** [split g] is the two identifiers inheriting [g]'s binary identifier
    prefixed by 0 and by 1 respectively.
    @raise Invalid_argument after 60 generations (identifier overflow). *)

val value : t -> int

val bits : t -> int

val compare : t -> t -> int

val equal : t -> t -> bool

val hash : t -> int

val pp : Format.formatter -> t -> unit
(** Prints as in the paper's figure 3, e.g. [110b(=6)]. *)

val to_string : t -> string
