lib/core/distribution_record.mli: Balancer Format Group_id Vnode_id
