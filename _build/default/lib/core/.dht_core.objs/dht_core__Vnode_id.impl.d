lib/core/vnode_id.ml: Format Hashtbl Stdlib
