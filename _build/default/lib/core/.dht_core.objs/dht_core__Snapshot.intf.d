lib/core/snapshot.mli: Balancer Dht_prng Global_dht Local_dht
