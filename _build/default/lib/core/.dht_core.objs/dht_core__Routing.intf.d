lib/core/routing.mli: Balancer Dht_hashspace Point_map Vnode
