lib/core/balancer.mli: Dht_hashspace Group_id Params Vnode
