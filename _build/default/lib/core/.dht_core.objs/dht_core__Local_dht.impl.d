lib/core/local_dht.ml: Array Balancer Dht_hashspace Dht_prng Distribution_record Format Group_id Hashtbl List Log Map Metrics Option Params Point_map Routing Space Span Vnode Vnode_id
