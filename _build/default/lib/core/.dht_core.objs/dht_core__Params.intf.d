lib/core/params.mli: Dht_hashspace Format
