lib/core/vnode_id.mli: Format
