lib/core/global_dht.mli: Balancer Dht_hashspace Distribution_record Params Point_map Space Span Vnode Vnode_id
