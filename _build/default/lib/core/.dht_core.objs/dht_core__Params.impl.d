lib/core/params.ml: Dht_hashspace Format
