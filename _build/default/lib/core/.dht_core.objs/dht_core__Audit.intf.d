lib/core/audit.mli: Balancer Global_dht Local_dht
