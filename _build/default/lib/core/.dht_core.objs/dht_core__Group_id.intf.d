lib/core/group_id.mli: Format
