lib/core/metrics.mli:
