lib/core/metrics.ml: Array Dht_stats Params
