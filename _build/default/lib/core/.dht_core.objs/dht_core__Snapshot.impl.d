lib/core/snapshot.ml: Array Balancer Buffer Dht_hashspace Dht_prng Fun Global_dht Group_id List Local_dht Params Printf String Vnode Vnode_id
