lib/core/vnode.ml: Dht_hashspace Format Group_id List Span Vnode_id
