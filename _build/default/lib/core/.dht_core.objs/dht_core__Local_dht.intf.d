lib/core/local_dht.mli: Balancer Dht_hashspace Dht_prng Distribution_record Format Group_id Params Point_map Space Span Vnode Vnode_id
