lib/core/group_id.ml: Format Hashtbl Stdlib
