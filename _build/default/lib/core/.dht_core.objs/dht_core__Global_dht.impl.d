lib/core/global_dht.ml: Array Balancer Dht_hashspace Distribution_record Format Group_id Hashtbl List Metrics Params Point_map Routing Vnode Vnode_id
