lib/core/routing.ml: Balancer Dht_hashspace List Point_map Vnode
