lib/core/vnode.mli: Dht_hashspace Format Group_id Space Span Vnode_id
