lib/core/audit.ml: Array Balancer Coverage Dht_hashspace Dht_stats Format Global_dht Group_id Hashtbl List Local_dht Params Point_map Span Vnode Vnode_id
