lib/core/balancer.ml: Array Dht_hashspace Group_id List Log Params Space Span Vnode Vnode_id
