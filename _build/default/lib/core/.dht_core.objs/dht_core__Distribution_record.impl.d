lib/core/distribution_record.ml: Array Balancer Format Group_id Stdlib Vnode Vnode_id
