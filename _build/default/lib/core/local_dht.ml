open Dht_hashspace
module Rng = Dht_prng.Rng

type split_info = {
  parent : Group_id.t;
  left : Group_id.t;
  right : Group_id.t;
  at_vnodes : int;
}

type selection = Quota_lookup | Uniform_group

module Gmap = Map.Make (Group_id)
module Vtbl = Hashtbl.Make (Vnode_id)

type t = {
  params : Params.t;
  rng : Rng.t;
  selection : selection;
  notify : Balancer.event -> unit;
  on_group_split : split_info -> unit;
  map : Vnode.t Point_map.t;
  index : Vnode.t Vtbl.t;  (* canonical name -> live vnode *)
  mutable groups : Balancer.t Gmap.t;
  mutable vnode_total : int;
  mutable splits : split_info list;
}

let create ?space ?(on_event = fun _ -> ()) ?(on_group_split = fun _ -> ())
    ?(selection = Quota_lookup) ~pmin ~vmin ~rng ~first () =
  let params = Params.make ?space ~pmin ~vmin () in
  let map = Point_map.create params.Params.space in
  let notify = Routing.chain (Routing.apply map) on_event in
  let vnode = Vnode.make ~id:first ~group:Group_id.root in
  let b = Balancer.bootstrap ~params ~group:Group_id.root ~vnode ~notify in
  Routing.register_vnode map vnode;
  let index = Vtbl.create 64 in
  Vtbl.add index first vnode;
  {
    params;
    rng;
    selection;
    notify;
    on_group_split;
    map;
    index;
    groups = Gmap.singleton Group_id.root b;
    vnode_total = 1;
    splits = [];
  }

let restore ?space ?(on_event = fun _ -> ()) ?(on_group_split = fun _ -> ())
    ?(selection = Quota_lookup) ~pmin ~vmin ~rng ~groups:group_specs () =
  if group_specs = [] then invalid_arg "Local_dht.restore: no groups";
  let params = Params.make ?space ~pmin ~vmin () in
  let map = Point_map.create params.Params.space in
  let notify = Routing.chain (Routing.apply map) on_event in
  let index = Vtbl.create 64 in
  let total = ref 0 in
  let groups =
    List.fold_left
      (fun acc (gid, level, members) ->
        if Gmap.mem gid acc then
          invalid_arg "Local_dht.restore: duplicate group id";
        let vnodes =
          List.map
            (fun (id, spans) ->
              if Vtbl.mem index id then
                invalid_arg "Local_dht.restore: duplicate vnode id";
              let v = Vnode.make ~id ~group:gid in
              List.iter
                (fun s ->
                  if Span.level s <> level then
                    invalid_arg "Local_dht.restore: span level mismatch";
                  Vnode.add_span v s)
                spans;
              Vtbl.add index id v;
              (* Point_map.add rejects overlaps, covering G1' partially. *)
              Routing.register_vnode map v;
              incr total;
              v)
            members
        in
        let b =
          Balancer.of_vnodes ~params ~group:gid ~level ~notify
            (Array.of_list vnodes)
        in
        Gmap.add gid b acc)
      Gmap.empty group_specs
  in
  let t =
    {
      params;
      rng;
      selection;
      notify;
      on_group_split;
      map;
      index;
      groups;
      vnode_total = !total;
      splits = [];
    }
  in
  (* Full-coverage check (gaps are not caught by pairwise overlap tests). *)
  (match Dht_hashspace.Coverage.check params.Params.space (Point_map.spans map)
   with
  | Ok () -> ()
  | Error e ->
      invalid_arg
        (Format.asprintf "Local_dht.restore: %a" Dht_hashspace.Coverage.pp_error
           e));
  t

(* §3.7: a full victim group splits into two groups of Vmin vnodes each,
   randomly selected; the newcomer's destination is one of the two, chosen
   at random. *)
let split_group t b =
  let g = Balancer.group b in
  let members = Balancer.vnodes b in
  let vmin = t.params.Params.vmin in
  assert (Array.length members = Params.vmax t.params);
  Rng.shuffle t.rng members;
  let left_members = Array.sub members 0 vmin in
  let right_members = Array.sub members vmin vmin in
  let gl, gr = Group_id.split g in
  let level = Balancer.level b in
  let bl =
    Balancer.of_vnodes ~params:t.params ~group:gl ~level ~notify:t.notify
      left_members
  in
  let br =
    Balancer.of_vnodes ~params:t.params ~group:gr ~level ~notify:t.notify
      right_members
  in
  t.groups <- Gmap.add gl bl (Gmap.add gr br (Gmap.remove g t.groups));
  Log.L.debug (fun m ->
      m "group %a split into %a and %a at V=%d" Group_id.pp g Group_id.pp gl
        Group_id.pp gr t.vnode_total);
  let info = { parent = g; left = gl; right = gr; at_vnodes = t.vnode_total } in
  t.splits <- info :: t.splits;
  t.on_group_split info;
  if Rng.bool t.rng then bl else br

type creation_report = {
  vnode : Vnode.t;
  victim_group : Group_id.t;
  target_group : Group_id.t;
  split : split_info option;
  group_members : Vnode.t array;
}

let select_victim t ~point = snd (Point_map.find_point t.map point)

let find_vnode t id = Vtbl.find_opt t.index id

let add_vnode_routed t ~id ~victim =
  if Vtbl.mem t.index id then
    invalid_arg "Local_dht: duplicate vnode id";
  let v = Vnode.make ~id ~group:Group_id.root in
  let victim_gid = victim.Vnode.group in
  let victim_group = Gmap.find victim_gid t.groups in
  let split_before = t.splits in
  let target =
    if Balancer.vnode_count victim_group = Params.vmax t.params then
      split_group t victim_group
    else victim_group
  in
  Balancer.add_vnode target v;
  Vtbl.add t.index id v;
  t.vnode_total <- t.vnode_total + 1;
  let split =
    match t.splits with
    | info :: _ when t.splits != split_before -> Some info
    | _ -> None
  in
  {
    vnode = v;
    victim_group = victim_gid;
    target_group = Balancer.group target;
    split;
    group_members = Balancer.vnodes target;
  }

let add_vnode t ~id =
  let victim =
    match t.selection with
    | Quota_lookup ->
        (* §3.6: draw r uniformly in R_h; the owner of r is the victim
           vnode, its group the victim group. *)
        let r = Rng.int t.rng (Space.size t.params.Params.space) in
        select_victim t ~point:r
    | Uniform_group ->
        (* Ablation: every live group equally likely, whatever its quota. *)
        let n = Gmap.cardinal t.groups in
        let k = Rng.int t.rng n in
        let _, b =
          List.nth (Gmap.bindings t.groups) k
        in
        (Balancer.vnodes b).(0)
  in
  (add_vnode_routed t ~id ~victim).vnode

type removal_error =
  | Last_vnode
  | Group_at_minimum of Group_id.t
  | Group_capacity of Group_id.t

let pp_removal_error ppf = function
  | Last_vnode -> Format.fprintf ppf "the DHT cannot become empty"
  | Group_at_minimum g ->
      Format.fprintf ppf "group %a is at Vmin and may not shrink (L2)"
        Group_id.pp g
  | Group_capacity g ->
      Format.fprintf ppf
        "group %a cannot absorb the departing partitions within Pmax"
        Group_id.pp g

let remove_vnode t ~id =
  match Vtbl.find_opt t.index id with
  | None -> invalid_arg "Local_dht.remove_vnode: unknown vnode id"
  | Some v ->
      if t.vnode_total = 1 then Error Last_vnode
      else begin
        let gid = v.Vnode.group in
        let b = Gmap.find gid t.groups in
        (* L2: groups never shrink below Vmin — except group 0 while it is
           the only group (the bootstrap exception). *)
        let sole_group = Gmap.cardinal t.groups = 1 in
        if (not sole_group) && Balancer.vnode_count b <= t.params.Params.vmin
        then Error (Group_at_minimum gid)
        else
          match Balancer.remove_vnode b v with
          | Ok () ->
              Vtbl.remove t.index id;
              t.vnode_total <- t.vnode_total - 1;
              Ok ()
          | Error `Insufficient_capacity -> Error (Group_capacity gid)
          | Error `Last_vnode ->
              (* Unreachable: vnode_total > 1 and the sole group holds all
                 vnodes, or Vg > Vmin >= 1. *)
              assert false
      end

let params t = t.params
let vnode_count t = t.vnode_total
let group_count t = Gmap.cardinal t.groups

let gideal t =
  Metrics.gideal ~vnodes:t.vnode_total ~vmax:(Params.vmax t.params)

let group_splits t = t.splits
let groups t = List.map snd (Gmap.bindings t.groups)
let find_group t g = Gmap.find_opt g t.groups

let vnodes t =
  groups t |> List.map Balancer.vnodes |> Array.concat

let quotas t =
  let space = t.params.Params.space in
  Array.map (Vnode.quota space) (vnodes t)

(* Equivalent to [Metrics.sigma_percent (quotas t)] but allocation-free:
   this runs after every creation when sampling figure curves. *)
let sigma_qv t =
  let n = t.vnode_total in
  if n <= 1 then 0.
  else begin
    let space = t.params.Params.space in
    let ideal = 1. /. float_of_int n in
    let acc = ref 0. in
    Gmap.iter
      (fun _ b ->
        Balancer.iter_vnodes b (fun v ->
            let d = Vnode.quota space v -. ideal in
            acc := !acc +. (d *. d)))
      t.groups;
    100. *. sqrt (!acc /. float_of_int n) /. ideal
  end

let group_quotas t = groups t |> List.map Balancer.quota |> Array.of_list

let sigma_qg t = Metrics.sigma_percent (group_quotas t)

let lpdr t g =
  Option.map
    (fun b ->
      Distribution_record.of_balancer ~scope:(Distribution_record.Local g) b)
    (find_group t g)

let lookup t p = Point_map.find_point t.map p
let map t = t.map
