open Dht_hashspace

type t = {
  id : Vnode_id.t;
  mutable group : Group_id.t;
  mutable spans : Span.t list;
  mutable count : int;
}

let make ~id ~group = { id; group; spans = []; count = 0 }

let quota space t =
  match t.spans with
  | [] -> 0.
  | s :: _ -> float_of_int t.count *. Span.quota space s

let add_span t span =
  t.spans <- span :: t.spans;
  t.count <- t.count + 1

let take_span t =
  match t.spans with
  | [] -> invalid_arg "Vnode.take_span: vnode owns no partition"
  | s :: rest ->
      t.spans <- rest;
      t.count <- t.count - 1;
      s

let remove_span t span =
  if List.exists (Span.equal span) t.spans then begin
    t.spans <- List.filter (fun s -> not (Span.equal s span)) t.spans;
    t.count <- t.count - 1;
    true
  end
  else false

let split_spans space t ~previous =
  let halves =
    List.concat_map
      (fun s ->
        previous s;
        let a, b = Span.split space s in
        [ a; b ])
      t.spans
  in
  t.spans <- halves;
  t.count <- 2 * t.count

let pp space ppf t =
  Format.fprintf ppf "vnode %a in %a: %d partitions (quota %.5f)" Vnode_id.pp
    t.id Group_id.pp t.group t.count (quota space t)
