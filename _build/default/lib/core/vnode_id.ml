type t = { snode : int; vnode : int }

let make ~snode ~vnode =
  if snode < 0 || vnode < 0 then invalid_arg "Vnode_id.make: negative component";
  { snode; vnode }

let compare a b =
  let c = Stdlib.compare a.snode b.snode in
  if c <> 0 then c else Stdlib.compare a.vnode b.vnode

let equal a b = compare a b = 0
let hash t = Hashtbl.hash (t.snode, t.vnode)
let pp ppf t = Format.fprintf ppf "%d.%d" t.snode t.vnode
let to_string t = Format.asprintf "%a" pp t
