(** Partition distribution records: GPDR (§2.1.4) and LPDR (§3.2).

    A distribution record is "a table that registers the number of partitions
    per each vnode". The LPDR of a group is "a downsized version of the GPDR,
    having its same basic structure"; both are therefore the same type here,
    distinguished by scope. Records are immutable snapshots taken from a
    {!Balancer}; the protocol simulator uses their {!size_bytes} to model
    synchronization traffic. *)

type entry = { vnode : Vnode_id.t; partitions : int }

type scope =
  | Global  (** a GPDR: covers the whole DHT (global approach) *)
  | Local of Group_id.t  (** the LPDR of one group (local approach) *)

type t = private { scope : scope; level : int; entries : entry array }

val of_balancer : scope:scope -> Balancer.t -> t
(** Snapshot of a balancer's current distribution. *)

val entries_sorted : t -> entry array
(** Entries sorted by decreasing partition count, vnode id as tie-break —
    the "sort the entrances ... by the number of partitions" step of the
    creation algorithm (§2.5 step 3). Fresh array. *)

val victim : t -> entry option
(** The vnode with the most partitions, i.e. the head of
    {!entries_sorted}; [None] for an empty record. *)

val total_partitions : t -> int

val cardinal : t -> int
(** Number of vnodes registered. *)

val find : t -> Vnode_id.t -> int option
(** Partition count registered for a vnode, if present. *)

val size_bytes : t -> int
(** Wire size estimate used by the protocol simulator: 16 bytes per entry
    (two 4-byte ids + an 8-byte count) plus a 16-byte header. *)

val pp : Format.formatter -> t -> unit
