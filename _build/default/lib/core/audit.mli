(** Run-time verification of the model's invariants.

    These checks re-derive every invariant of §2.2 and §3.3 from the live
    state (never from cached counters) and report all violations found. They
    are meant for tests and debugging; they are O(total partitions). *)

val check_balancer : Balancer.t -> string list
(** Violations of the per-group invariants: G2'/G2 (group partition total a
    power of two), G3'/G3 (all partitions at the group's split level, hence
    equal-sized), G4'/G4 (counts within [\[Pmin, Pmax\]]), G5'/G5 (vnode
    count a power of two ⇒ all counts equal, i.e. perfect quota balance —
    the removal-tolerant form, see {!Balancer.remove_vnode}), plus internal
    consistency ([count] = number of spans, vnode [group] field matches). *)

val check_global : Global_dht.t -> (unit, string list) result
(** All balancer checks plus G1 (the routing map tiles [R_h] exactly) and
    map/ownership consistency. *)

val check_local : Local_dht.t -> (unit, string list) result
(** All balancer checks per group plus G1', L1 (groups partition the vnode
    set — every routed vnode belongs to exactly one live group), L2 (group
    sizes within [\[Vmin, Vmax\]], with the paper's group-0 exception while
    it is the only group), unique group ids, and quota conservation
    (ΣQv = ΣQg = 1). *)
