open Dht_hashspace

let errf fmt = Format.asprintf fmt

let check_balancer b =
  let params = Balancer.params b in
  let pmin = params.Params.pmin and pmax = Params.pmax params in
  let level = Balancer.level b in
  let members = Balancer.vnodes b in
  let issues = ref [] in
  let fail msg = issues := msg :: !issues in
  let total = ref 0 in
  Array.iter
    (fun v ->
      total := !total + v.Vnode.count;
      if List.length v.Vnode.spans <> v.Vnode.count then
        fail (errf "vnode %a: count %d <> %d spans" Vnode_id.pp v.Vnode.id
                v.Vnode.count (List.length v.Vnode.spans));
      if not (Group_id.equal v.Vnode.group (Balancer.group b)) then
        fail (errf "vnode %a: group field %a <> balancer group %a" Vnode_id.pp
                v.Vnode.id Group_id.pp v.Vnode.group Group_id.pp
                (Balancer.group b));
      if v.Vnode.count < pmin || v.Vnode.count > pmax then
        fail (errf "G4: vnode %a holds %d partitions, outside [%d, %d]"
                Vnode_id.pp v.Vnode.id v.Vnode.count pmin pmax);
      List.iter
        (fun s ->
          if Span.level s <> level then
            fail (errf "G3: vnode %a has %a at level <> group level %d"
                    Vnode_id.pp v.Vnode.id Span.pp s level))
        v.Vnode.spans)
    members;
  if !total <> Balancer.total_partitions b then
    fail (errf "Pg bookkeeping: cached %d <> recomputed %d"
            (Balancer.total_partitions b) !total);
  if not (Params.is_power_of_two !total) then
    fail (errf "G2: group %a has %d partitions (not a power of two)"
            Group_id.pp (Balancer.group b) !total);
  (* G5/G5', in the form that survives removals: a power-of-two population
     is perfectly balanced (all counts equal). Creation-only histories
     additionally have that common count equal to Pmin (covered by the
     creation tests); after removals the common count may sit deeper. *)
  if Params.is_power_of_two (Array.length members) && Array.length members > 0
  then begin
    let c0 = members.(0).Vnode.count in
    Array.iter
      (fun v ->
        if v.Vnode.count <> c0 then
          fail (errf "G5: Vg=%d is a power of two but counts differ (%d vs %d)"
                  (Array.length members) v.Vnode.count c0))
      members
  end;
  List.rev !issues

let check_map space map owners =
  let issues = ref [] in
  let fail msg = issues := msg :: !issues in
  (match Coverage.check space (Point_map.spans map) with
  | Ok () -> ()
  | Error e -> fail (errf "G1: routing map does not tile R_h: %a" Coverage.pp_error e));
  (* Every mapped span must be held by its owner, and conversely every span
     owned by a vnode must route back to it. *)
  Point_map.iter map (fun s v ->
      if not (List.exists (Span.equal s) v.Vnode.spans) then
        fail (errf "map: %a routed to %a which does not own it" Span.pp s
                Vnode_id.pp v.Vnode.id));
  Array.iter
    (fun v ->
      List.iter
        (fun s ->
          match Point_map.find_point map (Span.start space s) with
          | s', v' when Span.equal s s' && v' == v -> ()
          | _ -> fail (errf "map: %a owned by %a not routed to it" Span.pp s
                         Vnode_id.pp v.Vnode.id)
          | exception Not_found ->
              fail (errf "map: %a owned by %a missing from map" Span.pp s
                      Vnode_id.pp v.Vnode.id))
        v.Vnode.spans)
    owners;
  List.rev !issues

let result_of = function [] -> Ok () | issues -> Error issues

let check_global dht =
  let params = Global_dht.params dht in
  let issues =
    check_balancer (Global_dht.balancer dht)
    @ check_map params.Params.space (Global_dht.map dht) (Global_dht.vnodes dht)
  in
  result_of issues

let check_local dht =
  let params = Local_dht.params dht in
  let vmin = params.Params.vmin and vmax = Params.vmax params in
  let balancers = Local_dht.groups dht in
  let issues = ref [] in
  let fail msg = issues := msg :: !issues in
  List.iter (fun b -> issues := !issues @ check_balancer b) balancers;
  issues :=
    !issues
    @ check_map params.Params.space (Local_dht.map dht) (Local_dht.vnodes dht);
  (* L2, with the paper's exception: while group 0 is alone, 1 <= V0 <= Vmax. *)
  let single = List.length balancers = 1 in
  List.iter
    (fun b ->
      let vg = Balancer.vnode_count b in
      if single then begin
        if vg < 1 || vg > vmax then
          fail (errf "L2: sole group %a has Vg=%d outside [1, %d]" Group_id.pp
                  (Balancer.group b) vg vmax)
      end
      else if vg < vmin || vg > vmax then
        fail (errf "L2: group %a has Vg=%d outside [%d, %d]" Group_id.pp
                (Balancer.group b) vg vmin vmax))
    balancers;
  (* L1: groups partition the vnode set. Group-id keys are unique by
     construction of the map; check vnode ids are globally unique and the
     total matches. *)
  let all = Local_dht.vnodes dht in
  let seen = Hashtbl.create (Array.length all) in
  Array.iter
    (fun v ->
      let key = Vnode_id.to_string v.Vnode.id in
      if Hashtbl.mem seen key then
        fail (errf "L1: vnode %a appears in more than one group" Vnode_id.pp
                v.Vnode.id)
      else Hashtbl.add seen key ())
    all;
  if Array.length all <> Local_dht.vnode_count dht then
    fail (errf "L1: %d vnodes in groups <> %d created" (Array.length all)
            (Local_dht.vnode_count dht));
  (* Quota conservation. *)
  let sum_qv = Dht_stats.Descriptive.sum (Local_dht.quotas dht) in
  if abs_float (sum_qv -. 1.) > 1e-9 then
    fail (errf "quotas: sum Qv = %.12f <> 1" sum_qv);
  let sum_qg = Dht_stats.Descriptive.sum (Local_dht.group_quotas dht) in
  if abs_float (sum_qg -. 1.) > 1e-9 then
    fail (errf "quotas: sum Qg = %.12f <> 1" sum_qg);
  result_of (List.rev !issues)
