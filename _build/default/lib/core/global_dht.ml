open Dht_hashspace

module Vtbl = Hashtbl.Make (Vnode_id)

type t = {
  params : Params.t;
  balancer : Balancer.t;
  map : Vnode.t Point_map.t;
  index : Vnode.t Vtbl.t;
}

let create ?space ?(on_event = fun _ -> ()) ~pmin ~first () =
  let params = Params.global ?space ~pmin () in
  let map = Point_map.create params.Params.space in
  let notify = Routing.chain (Routing.apply map) on_event in
  let vnode = Vnode.make ~id:first ~group:Group_id.root in
  let balancer =
    Balancer.bootstrap ~params ~group:Group_id.root ~vnode ~notify
  in
  Routing.register_vnode map vnode;
  let index = Vtbl.create 64 in
  Vtbl.add index first vnode;
  { params; balancer; map; index }

let add_vnode t ~id =
  if Vtbl.mem t.index id then invalid_arg "Global_dht: duplicate vnode id";
  let v = Vnode.make ~id ~group:Group_id.root in
  Balancer.add_vnode t.balancer v;
  Vtbl.add t.index id v;
  v

let find_vnode t id = Vtbl.find_opt t.index id

let restore ?space ?(on_event = fun _ -> ()) ~pmin ~level ~vnodes:members () =
  if members = [] then invalid_arg "Global_dht.restore: no vnodes";
  let params = Params.global ?space ~pmin () in
  let map = Point_map.create params.Params.space in
  let notify = Routing.chain (Routing.apply map) on_event in
  let index = Vtbl.create 64 in
  let records =
    List.map
      (fun (id, spans) ->
        if Vtbl.mem index id then
          invalid_arg "Global_dht.restore: duplicate vnode id";
        let v = Vnode.make ~id ~group:Group_id.root in
        List.iter
          (fun s ->
            if Dht_hashspace.Span.level s <> level then
              invalid_arg "Global_dht.restore: span level mismatch";
            Vnode.add_span v s)
          spans;
        Vtbl.add index id v;
        Routing.register_vnode map v;
        v)
      members
  in
  let balancer =
    Balancer.of_vnodes ~params ~group:Group_id.root ~level ~notify
      (Array.of_list records)
  in
  (match Dht_hashspace.Coverage.check params.Params.space (Point_map.spans map)
   with
  | Ok () -> ()
  | Error e ->
      invalid_arg
        (Format.asprintf "Global_dht.restore: %a" Dht_hashspace.Coverage.pp_error
           e));
  { params; balancer; map; index }

let remove_vnode t ~id =
  match Vtbl.find_opt t.index id with
  | None -> invalid_arg "Global_dht.remove_vnode: unknown vnode id"
  | Some v -> (
      match Balancer.remove_vnode t.balancer v with
      | Ok () ->
          Vtbl.remove t.index id;
          Ok ()
      | Error _ as e -> e)

let params t = t.params
let vnode_count t = Balancer.vnode_count t.balancer
let level t = Balancer.level t.balancer
let vnodes t = Balancer.vnodes t.balancer
let counts t = Balancer.counts t.balancer

let quotas t =
  let space = t.params.Params.space in
  Array.map (Vnode.quota space) (vnodes t)

let sigma_qv t = Metrics.sigma_percent (quotas t)
let sigma_pv t = Metrics.sigma_counts_percent (counts t)

let gpdr t =
  Distribution_record.of_balancer ~scope:Distribution_record.Global t.balancer

let lookup t p = Point_map.find_point t.map p
let map t = t.map
let balancer t = t.balancer
