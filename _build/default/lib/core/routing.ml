open Dht_hashspace

let apply map = function
  | Balancer.Split { before; _ } -> Point_map.split map before
  | Balancer.Transfer { dst; span; _ } -> Point_map.replace_owner map span dst

let register_vnode map v =
  List.iter (fun s -> Point_map.add map s v) v.Vnode.spans

let chain f g event =
  f event;
  g event
