let needs_quoting s =
  String.exists (fun c -> c = ',' || c = '"' || c = '\n' || c = '\r') s

let escape s =
  if needs_quoting s then
    "\"" ^ String.concat "\"\"" (String.split_on_char '"' s) ^ "\""
  else s

let line fields = String.concat "," (List.map escape fields)

let write ~path ~header rows =
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () ->
      output_string oc (line header);
      output_char oc '\n';
      List.iter
        (fun row ->
          output_string oc (line row);
          output_char oc '\n')
        rows)

let write_columns ~path ~header columns =
  match columns with
  | [] -> invalid_arg "Csv.write_columns: no columns"
  | first :: rest ->
      let len = Array.length first in
      if List.exists (fun c -> Array.length c <> len) rest then
        invalid_arg "Csv.write_columns: ragged columns";
      let rows =
        List.init len (fun i ->
            List.map (fun col -> Printf.sprintf "%.6g" col.(i)) columns)
      in
      write ~path ~header rows
