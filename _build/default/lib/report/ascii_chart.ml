type series = { label : string; xs : float array; ys : float array }

let series ~label ~xs ~ys =
  if Array.length xs = 0 || Array.length xs <> Array.length ys then
    invalid_arg "Ascii_chart.series: empty or mismatched arrays";
  { label; xs; ys }

let glyphs = [| '*'; 'o'; '+'; 'x'; '#'; '@'; '%'; '&'; '$'; '~' |]

let bounds all =
  let lo = ref infinity and hi = ref neg_infinity in
  List.iter
    (Array.iter (fun v ->
         if v < !lo then lo := v;
         if v > !hi then hi := v))
    all;
  if !lo = !hi then (!lo -. 1., !hi +. 1.) else (!lo, !hi)

let render ?(width = 72) ?(height = 20) ?(x_label = "x") ?(y_label = "y")
    series_list =
  if series_list = [] then invalid_arg "Ascii_chart.render: no series";
  let xmin, xmax = bounds (List.map (fun s -> s.xs) series_list) in
  let ymin, ymax = bounds (List.map (fun s -> s.ys) series_list) in
  let grid = Array.make_matrix height width ' ' in
  let plot_x x =
    int_of_float
      (Float.round ((x -. xmin) /. (xmax -. xmin) *. float_of_int (width - 1)))
  in
  let plot_y y =
    height - 1
    - int_of_float
        (Float.round
           ((y -. ymin) /. (ymax -. ymin) *. float_of_int (height - 1)))
  in
  List.iteri
    (fun si s ->
      let glyph = glyphs.(si mod Array.length glyphs) in
      Array.iteri
        (fun i x ->
          let col = plot_x x and row = plot_y s.ys.(i) in
          if row >= 0 && row < height && col >= 0 && col < width then
            grid.(row).(col) <- glyph)
        s.xs)
    series_list;
  let buf = Buffer.create (width * height * 2) in
  Buffer.add_string buf
    (Printf.sprintf "%s vs %s  [y: %.4g .. %.4g]\n" y_label x_label ymin ymax);
  Array.iteri
    (fun row line ->
      let y_of_row =
        ymax -. (float_of_int row /. float_of_int (height - 1) *. (ymax -. ymin))
      in
      Buffer.add_string buf (Printf.sprintf "%10.3g |" y_of_row);
      Buffer.add_string buf (String.init width (fun c -> line.(c)));
      Buffer.add_char buf '\n')
    grid;
  Buffer.add_string buf (String.make 11 ' ');
  Buffer.add_char buf '+';
  Buffer.add_string buf (String.make width '-');
  Buffer.add_char buf '\n';
  Buffer.add_string buf
    (Printf.sprintf "%11s %-*.4g%*.4g\n" "" (width / 2) xmin (width - (width / 2))
       xmax);
  List.iteri
    (fun si s ->
      Buffer.add_string buf
        (Printf.sprintf "  %c %s\n" glyphs.(si mod Array.length glyphs) s.label))
    series_list;
  Buffer.contents buf

let print ?width ?height ?x_label ?y_label series_list =
  print_string (render ?width ?height ?x_label ?y_label series_list)
