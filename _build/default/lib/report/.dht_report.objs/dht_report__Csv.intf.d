lib/report/csv.mli:
