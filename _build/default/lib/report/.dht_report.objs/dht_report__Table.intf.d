lib/report/table.mli:
