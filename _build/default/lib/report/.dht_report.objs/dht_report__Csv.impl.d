lib/report/csv.ml: Array Fun List Printf String
