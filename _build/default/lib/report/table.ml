type t = { headers : string list; mutable rows : string list list }

let create ~headers =
  if headers = [] then invalid_arg "Table.create: no headers";
  { headers; rows = [] }

let add_row t row =
  if List.length row <> List.length t.headers then
    invalid_arg "Table.add_row: width mismatch";
  t.rows <- row :: t.rows

let add_rowf t row = add_row t (List.map (Printf.sprintf "%.3f") row)
let row_count t = List.length t.rows

let to_string t =
  let rows = List.rev t.rows in
  let all = t.headers :: rows in
  let ncols = List.length t.headers in
  let widths = Array.make ncols 0 in
  List.iter
    (List.iteri (fun i cell ->
         if String.length cell > widths.(i) then widths.(i) <- String.length cell))
    all;
  let buf = Buffer.create 256 in
  let put_row row =
    List.iteri
      (fun i cell ->
        if i > 0 then Buffer.add_string buf "  ";
        Buffer.add_string buf cell;
        Buffer.add_string buf (String.make (widths.(i) - String.length cell) ' '))
      row;
    Buffer.add_char buf '\n'
  in
  put_row t.headers;
  List.iteri
    (fun i w ->
      if i > 0 then Buffer.add_string buf "  ";
      Buffer.add_string buf (String.make w '-'))
    (Array.to_list widths);
  Buffer.add_char buf '\n';
  List.iter put_row rows;
  Buffer.contents buf

let print t = print_string (to_string t)
