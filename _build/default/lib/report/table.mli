(** Aligned plain-text tables for experiment output. *)

type t

val create : headers:string list -> t
(** @raise Invalid_argument on an empty header list. *)

val add_row : t -> string list -> unit
(** @raise Invalid_argument if the row width differs from the headers. *)

val add_rowf : t -> float list -> unit
(** Row of floats rendered with [%.3f]. *)

val row_count : t -> int

val to_string : t -> string
(** The rendered table, columns padded, header underlined. *)

val print : t -> unit
(** [to_string] to stdout, with a trailing newline. *)
