(** Minimal CSV output (RFC 4180 quoting) for experiment series. *)

val escape : string -> string
(** Quotes a field when it contains commas, quotes or newlines. *)

val line : string list -> string
(** One CSV record, without the trailing newline. *)

val write : path:string -> header:string list -> string list list -> unit
(** Writes a whole file. *)

val write_columns : path:string -> header:string list -> float array list -> unit
(** Writes columns of equal length as CSV rows ([%.6g]).
    @raise Invalid_argument if column lengths differ or no columns are
    given. *)
