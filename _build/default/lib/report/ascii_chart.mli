(** Terminal line charts, so every figure of the paper can be eyeballed
    straight from the experiment binary. *)

type series = { label : string; xs : float array; ys : float array }

val series : label:string -> xs:float array -> ys:float array -> series
(** @raise Invalid_argument if lengths differ or are zero. *)

val render :
  ?width:int ->
  ?height:int ->
  ?x_label:string ->
  ?y_label:string ->
  series list ->
  string
(** Plots the series on a [width]×[height] (default 72×20) character grid
    with axis ranges spanning all series, y-axis tick labels, and a legend
    mapping each series to its glyph.
    @raise Invalid_argument on an empty series list. *)

val print :
  ?width:int ->
  ?height:int ->
  ?x_label:string ->
  ?y_label:string ->
  series list ->
  unit
