module Space = Dht_hashspace.Space

let fnv_offset = 0xCBF29CE484222325L
let fnv_prime = 0x100000001B3L

let fnv1a64 s =
  let h = ref fnv_offset in
  String.iter
    (fun c ->
      h := Int64.logxor !h (Int64.of_int (Char.code c));
      h := Int64.mul !h fnv_prime)
    s;
  !h

let mix64 z =
  let open Int64 in
  let z = mul (logxor z (shift_right_logical z 33)) 0xFF51AFD7ED558CCDL in
  let z = mul (logxor z (shift_right_logical z 33)) 0xC4CEB9FE1A85EC53L in
  logxor z (shift_right_logical z 33)

let to_space sp h64 =
  Int64.to_int (Int64.shift_right_logical h64 (64 - Space.bits sp))

let string sp k = to_space sp (mix64 (fnv1a64 k))
let int sp k = to_space sp (mix64 (Int64.of_int k))
