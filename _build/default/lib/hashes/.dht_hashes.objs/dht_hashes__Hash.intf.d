lib/hashes/hash.mli: Dht_hashspace
