lib/hashes/hash.ml: Char Dht_hashspace Int64 String
