(** Key hashing for the DHT data plane.

    The model only assumes "a hash function h of range R_h" (§2.2); the data
    plane needs a concrete one to map application keys to hash indices. We
    provide FNV-1a (64-bit) for strings/bytes and a Murmur3-style finalizer
    for integers, both folded down to a given {!Space.t}. *)

val fnv1a64 : string -> int64
(** FNV-1a over the bytes of the string, full 64-bit result. *)

val mix64 : int64 -> int64
(** Murmur3/SplitMix finalizer: a bijective avalanche mix of a 64-bit word.
    Good for hashing integer keys that may be sequential. *)

val to_space : Dht_hashspace.Space.t -> int64 -> int
(** Folds a 64-bit hash into a hash index of the space (top bits, which are
    the best-mixed bits of both hash functions above). *)

val string : Dht_hashspace.Space.t -> string -> int
(** [string sp k] hashes a string key into the space. *)

val int : Dht_hashspace.Space.t -> int -> int
(** [int sp k] hashes an integer key into the space. *)
