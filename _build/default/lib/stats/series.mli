(** Point-wise averaging of equally-long curves across runs.

    Every figure in the paper is "an average of 100 runs of the same test"
    (§4): each run produces a curve (one sample per created vnode) and the
    plotted series is the per-index mean. *)

type t
(** Accumulator for curves of a fixed length. *)

val create : len:int -> t
(** [create ~len] accepts runs of exactly [len] points.
    @raise Invalid_argument if [len < 0]. *)

val length : t -> int
(** The expected curve length. *)

val runs : t -> int
(** Number of runs folded so far. *)

val add_run : t -> float array -> unit
(** [add_run t curve] folds one run.
    @raise Invalid_argument if [Array.length curve <> length t]. *)

val mean : t -> float array
(** Per-index mean across runs; zeros when no run was added. *)

val stddev : t -> float array
(** Per-index population standard deviation across runs. *)

val ci95_halfwidth : t -> float array
(** Per-index half-width of a normal-approximation 95% confidence interval
    ([1.96 · sd / sqrt runs]); zeros when fewer than 2 runs. *)
