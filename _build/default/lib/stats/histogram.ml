type t = {
  lo : float;
  hi : float;
  counts : int array;
  mutable total : int;
  mutable underflow : int;
  mutable overflow : int;
}

let create ~lo ~hi ~bins =
  if bins <= 0 then invalid_arg "Histogram.create: bins must be positive";
  if hi <= lo then invalid_arg "Histogram.create: hi <= lo";
  { lo; hi; counts = Array.make bins 0; total = 0; underflow = 0; overflow = 0 }

let add t x =
  if x < t.lo then t.underflow <- t.underflow + 1
  else if x >= t.hi then t.overflow <- t.overflow + 1
  else begin
    let bins = Array.length t.counts in
    let idx =
      int_of_float (float_of_int bins *. ((x -. t.lo) /. (t.hi -. t.lo)))
    in
    (* Rounding can land exactly on [bins] when x is just below hi. *)
    let idx = if idx >= bins then bins - 1 else idx in
    t.counts.(idx) <- t.counts.(idx) + 1;
    t.total <- t.total + 1
  end

let counts t = Array.copy t.counts
let total t = t.total
let underflow t = t.underflow
let overflow t = t.overflow

let chi_square_uniform t =
  if t.total = 0 then invalid_arg "Histogram.chi_square_uniform: empty";
  let bins = Array.length t.counts in
  let expected = float_of_int t.total /. float_of_int bins in
  Array.fold_left
    (fun acc c ->
      let d = float_of_int c -. expected in
      acc +. (d *. d /. expected))
    0. t.counts

let pp ppf t =
  Format.fprintf ppf "hist[%g,%g) n=%d under=%d over=%d" t.lo t.hi t.total
    t.underflow t.overflow
