(** Fixed-width-bin histograms and a chi-square uniformity check.

    Used to validate the PRNG and hash substrates and to characterise
    key-load distributions in the data-plane experiments. *)

type t

val create : lo:float -> hi:float -> bins:int -> t
(** [create ~lo ~hi ~bins] covers [\[lo, hi)] with [bins] equal bins.
    @raise Invalid_argument if [bins <= 0] or [hi <= lo]. *)

val add : t -> float -> unit
(** Adds an observation; values outside [\[lo, hi)] are counted separately as
    underflow/overflow. *)

val counts : t -> int array
(** Per-bin counts (a copy). *)

val total : t -> int
(** Total in-range observations. *)

val underflow : t -> int

val overflow : t -> int

val chi_square_uniform : t -> float
(** Chi-square statistic of the in-range counts against the uniform
    distribution over the bins. For [b] bins this has [b - 1] degrees of
    freedom under the null hypothesis.
    @raise Invalid_argument if no in-range observation was added. *)

val pp : Format.formatter -> t -> unit
