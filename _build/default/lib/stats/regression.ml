type fit = { slope : float; intercept : float; r2 : float }

let fit ~xs ~ys =
  let n = Array.length xs in
  if n <> Array.length ys then invalid_arg "Regression.fit: length mismatch";
  if n < 2 then invalid_arg "Regression.fit: need at least 2 points";
  let mx = Descriptive.mean xs and my = Descriptive.mean ys in
  let sxx = ref 0. and sxy = ref 0. and syy = ref 0. in
  for i = 0 to n - 1 do
    let dx = xs.(i) -. mx and dy = ys.(i) -. my in
    sxx := !sxx +. (dx *. dx);
    sxy := !sxy +. (dx *. dy);
    syy := !syy +. (dy *. dy)
  done;
  if !sxx = 0. then invalid_arg "Regression.fit: all xs equal";
  let slope = !sxy /. !sxx in
  let intercept = my -. (slope *. mx) in
  let r2 = if !syy = 0. then 1. else !sxy *. !sxy /. (!sxx *. !syy) in
  { slope; intercept; r2 }

let predict f x = (f.slope *. x) +. f.intercept
