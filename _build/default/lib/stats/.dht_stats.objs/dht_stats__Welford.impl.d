lib/stats/welford.ml: Format
