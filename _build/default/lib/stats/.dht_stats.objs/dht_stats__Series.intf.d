lib/stats/series.mli:
