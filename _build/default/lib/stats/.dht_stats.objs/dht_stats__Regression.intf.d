lib/stats/regression.mli:
