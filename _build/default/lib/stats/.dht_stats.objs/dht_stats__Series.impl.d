lib/stats/series.ml: Array Welford
