lib/stats/descriptive.mli:
