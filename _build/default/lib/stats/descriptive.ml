let sum xs =
  (* Kahan compensated summation: quotas are many small floats whose sum is
     compared against exactly 1.0 in tests. *)
  let total = ref 0. and comp = ref 0. in
  Array.iter
    (fun x ->
      let y = x -. !comp in
      let t = !total +. y in
      comp := t -. !total -. y;
      total := t)
    xs;
  !total

let mean xs =
  let n = Array.length xs in
  if n = 0 then 0. else sum xs /. float_of_int n

let min_max xs =
  if Array.length xs = 0 then invalid_arg "Descriptive.min_max: empty array";
  Array.fold_left
    (fun (mn, mx) x -> ((if x < mn then x else mn), if x > mx then x else mx))
    (xs.(0), xs.(0))
    xs

let moment2_about xs about =
  let acc = Array.map (fun x -> (x -. about) *. (x -. about)) xs in
  sum acc

let stddev_population xs =
  let n = Array.length xs in
  if n < 1 then 0. else sqrt (moment2_about xs (mean xs) /. float_of_int n)

let stddev_sample xs =
  let n = Array.length xs in
  if n < 2 then 0. else sqrt (moment2_about xs (mean xs) /. float_of_int (n - 1))

let stddev_about xs ~about =
  let n = Array.length xs in
  if n < 1 then 0. else sqrt (moment2_about xs about /. float_of_int n)

let rel_stddev xs =
  let m = mean xs in
  if m = 0. then 0. else stddev_population xs /. m

let rel_stddev_about xs ~about =
  if about = 0. then invalid_arg "Descriptive.rel_stddev_about: about = 0";
  stddev_about xs ~about /. about

let percentile xs ~p =
  let n = Array.length xs in
  if n = 0 then invalid_arg "Descriptive.percentile: empty array";
  if p < 0. || p > 1. then invalid_arg "Descriptive.percentile: p outside [0, 1]";
  let sorted = Array.copy xs in
  Array.sort compare sorted;
  let pos = p *. float_of_int (n - 1) in
  let lo = int_of_float (floor pos) and hi = int_of_float (ceil pos) in
  if lo = hi then sorted.(lo)
  else
    let frac = pos -. float_of_int lo in
    (sorted.(lo) *. (1. -. frac)) +. (sorted.(hi) *. frac)

let median xs = percentile xs ~p:0.5
