type t = { mutable n : int; mutable mean : float; mutable m2 : float }

let create () = { n = 0; mean = 0.; m2 = 0. }

let add t x =
  t.n <- t.n + 1;
  let delta = x -. t.mean in
  t.mean <- t.mean +. (delta /. float_of_int t.n);
  t.m2 <- t.m2 +. (delta *. (x -. t.mean))

let count t = t.n
let mean t = if t.n = 0 then 0. else t.mean
let variance_population t = if t.n < 1 then 0. else t.m2 /. float_of_int t.n
let variance_sample t = if t.n < 2 then 0. else t.m2 /. float_of_int (t.n - 1)
let stddev_population t = sqrt (variance_population t)
let stddev_sample t = sqrt (variance_sample t)

let merge a b =
  if a.n = 0 then { n = b.n; mean = b.mean; m2 = b.m2 }
  else if b.n = 0 then { n = a.n; mean = a.mean; m2 = a.m2 }
  else begin
    let n = a.n + b.n in
    let na = float_of_int a.n and nb = float_of_int b.n in
    let delta = b.mean -. a.mean in
    let mean = a.mean +. (delta *. nb /. float_of_int n) in
    let m2 = a.m2 +. b.m2 +. (delta *. delta *. na *. nb /. float_of_int n) in
    { n; mean; m2 }
  end

let pp ppf t =
  Format.fprintf ppf "welford{n=%d; mean=%g; sd=%g}" t.n (mean t)
    (stddev_population t)
