(** Online mean/variance accumulation (Welford's algorithm).

    Numerically stable single-pass accumulation, used by the simulators to
    track metric streams without storing them. *)

type t
(** Mutable accumulator. *)

val create : unit -> t
(** A fresh, empty accumulator. *)

val add : t -> float -> unit
(** [add t x] folds the observation [x] into [t]. *)

val count : t -> int
(** Number of observations so far. *)

val mean : t -> float
(** Arithmetic mean of the observations; [0.] when empty. *)

val variance_population : t -> float
(** Population variance (divide by [n]); [0.] when fewer than 1 observation. *)

val variance_sample : t -> float
(** Sample variance (divide by [n - 1]); [0.] when fewer than 2 observations. *)

val stddev_population : t -> float
(** Square root of {!variance_population}. *)

val stddev_sample : t -> float
(** Square root of {!variance_sample}. *)

val merge : t -> t -> t
(** [merge a b] is a fresh accumulator equivalent to having folded all
    observations of [a] and [b] (Chan's parallel combination). *)

val pp : Format.formatter -> t -> unit
