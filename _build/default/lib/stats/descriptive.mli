(** Descriptive statistics over float arrays.

    The paper's quality metric is the {e relative} standard deviation of
    quotas against an {e ideal} mean (§2.3): these helpers make both the
    population σ and the against-an-ideal variants explicit. *)

val sum : float array -> float
(** Compensated (Kahan) summation. *)

val mean : float array -> float
(** Arithmetic mean; [0.] for an empty array. *)

val min_max : float array -> float * float
(** Smallest and largest elements.
    @raise Invalid_argument on an empty array. *)

val stddev_population : float array -> float
(** Population standard deviation (divide by [n]); [0.] when [n < 1]. *)

val stddev_sample : float array -> float
(** Sample standard deviation (divide by [n - 1]); [0.] when [n < 2]. *)

val stddev_about : float array -> about:float -> float
(** [stddev_about xs ~about] is the root mean square deviation of [xs] from
    the fixed value [about] — the paper measures deviation from the ideal
    average quota rather than the empirical mean. *)

val rel_stddev : float array -> float
(** [σ(x)/x̄] using the population σ and the empirical mean; [0.] when the
    mean is [0.]. *)

val rel_stddev_about : float array -> about:float -> float
(** [stddev_about xs ~about /. about] — the paper's σ̄(Qv, Q̄v) with
    Q̄v the ideal average. Expressed as a fraction (multiply by 100 for %).
    @raise Invalid_argument if [about = 0.]. *)

val percentile : float array -> p:float -> float
(** [percentile xs ~p] with [p] in [\[0, 1\]], linear interpolation between
    order statistics.
    @raise Invalid_argument on an empty array or [p] outside [\[0, 1\]]. *)

val median : float array -> float
(** [percentile ~p:0.5]. *)
