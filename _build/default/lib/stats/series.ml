type t = { len : int; cells : Welford.t array }

let create ~len =
  if len < 0 then invalid_arg "Series.create: negative length";
  { len; cells = Array.init len (fun _ -> Welford.create ()) }

let length t = t.len
let runs t = if t.len = 0 then 0 else Welford.count t.cells.(0)

let add_run t curve =
  if Array.length curve <> t.len then
    invalid_arg "Series.add_run: curve length mismatch";
  Array.iteri (fun i x -> Welford.add t.cells.(i) x) curve

let mean t = Array.map Welford.mean t.cells
let stddev t = Array.map Welford.stddev_population t.cells

let ci95_halfwidth t =
  let n = runs t in
  if n < 2 then Array.make t.len 0.
  else
    let scale = 1.96 /. sqrt (float_of_int n) in
    Array.map (fun c -> scale *. Welford.stddev_sample c) t.cells
