(** Ordinary least-squares line fitting.

    Used by the experiment harness to characterise curve zones (e.g. the
    near-flat plateau of σ̄(Qv) in the paper's "2nd zone", §4.1.1). *)

type fit = { slope : float; intercept : float; r2 : float }

val fit : xs:float array -> ys:float array -> fit
(** Least-squares fit of [ys] against [xs].
    @raise Invalid_argument if lengths differ, fewer than 2 points are given,
    or all [xs] are equal. *)

val predict : fit -> float -> float
(** [predict f x] is [f.slope *. x +. f.intercept]. *)
