lib/registry/registry.ml: Array Dht_cluster Dht_core Dht_hashspace Dht_prng Hashtbl List Local_dht Vnode Vnode_id
