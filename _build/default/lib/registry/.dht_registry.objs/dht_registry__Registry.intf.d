lib/registry/registry.mli: Dht_cluster Dht_core Dht_hashspace Dht_prng Local_dht
