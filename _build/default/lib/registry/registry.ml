open Dht_core
module Rng = Dht_prng.Rng
module Cluster = Dht_cluster

type entry = {
  dht : Local_dht.t;
  mutable enrollment : int array;  (* vnodes per cluster node *)
  next_vnode : int array;  (* per-node allocator for fresh vnode ids *)
}

type t = {
  space : Dht_hashspace.Space.t;
  cluster : Cluster.Topology.t;
  rng : Rng.t;
  external_load : float array;
  dhts : (string, entry) Hashtbl.t;
}

let create ?(space = Dht_hashspace.Space.default) ~cluster ~seed () =
  {
    space;
    cluster;
    rng = Rng.of_int seed;
    external_load = Array.make (Cluster.Topology.size cluster) 0.;
    dhts = Hashtbl.create 4;
  }

let cluster t = t.cluster

let set_external_load t ~node f =
  if f < 0. || f >= 1. then
    invalid_arg "Registry.set_external_load: fraction outside [0, 1)";
  t.external_load.(node) <- f

let effective_scores t =
  Array.mapi
    (fun i s -> s *. (1. -. t.external_load.(i)))
    (Cluster.Topology.scores t.cluster)

let effective_shares t = Cluster.Enrollment.ideal_shares (effective_scores t)

let entry_exn t name =
  match Hashtbl.find_opt t.dhts name with
  | Some e -> e
  | None -> raise Not_found

let names t =
  Hashtbl.fold (fun name _ acc -> name :: acc) t.dhts [] |> List.sort compare

let dht t ~name = (entry_exn t name).dht

(* Create one fresh vnode of the named entry on the given node. *)
let spawn e node =
  let id = Vnode_id.make ~snode:node ~vnode:e.next_vnode.(node) in
  e.next_vnode.(node) <- e.next_vnode.(node) + 1;
  ignore (Local_dht.add_vnode e.dht ~id);
  e.enrollment.(node) <- e.enrollment.(node) + 1

let add_dht t ~name ~pmin ~vmin ~total_vnodes =
  if Hashtbl.mem t.dhts name then invalid_arg "Registry.add_dht: name taken";
  let n = Cluster.Topology.size t.cluster in
  let counts =
    Cluster.Enrollment.apportion ~total:total_vnodes (effective_scores t)
  in
  (* The very first vnode bootstraps the DHT; put it on the node with the
     largest allotment. *)
  let first_node = ref 0 in
  Array.iteri (fun i c -> if c > counts.(!first_node) then first_node := i) counts;
  let first = Vnode_id.make ~snode:!first_node ~vnode:0 in
  let dht =
    Local_dht.create ~space:t.space ~pmin ~vmin ~rng:(Rng.split t.rng) ~first ()
  in
  let e =
    { dht; enrollment = Array.make n 0; next_vnode = Array.make n 0 }
  in
  e.enrollment.(!first_node) <- 1;
  e.next_vnode.(!first_node) <- 1;
  Hashtbl.add t.dhts name e;
  (* Interleaved creation, round-robin over owed nodes. *)
  let owed = Array.mapi (fun i c -> c - e.enrollment.(i)) counts in
  let left = ref (Array.fold_left ( + ) 0 owed) in
  let cursor = ref 0 in
  while !left > 0 do
    let node = !cursor mod n in
    if owed.(node) > 0 then begin
      spawn e node;
      owed.(node) <- owed.(node) - 1;
      decr left
    end;
    incr cursor
  done

type retarget_report = { added : int; removed : int; blocked : int }

let retarget t ~name ~total_vnodes =
  let e = entry_exn t name in
  let n = Cluster.Topology.size t.cluster in
  let target =
    Cluster.Enrollment.apportion ~total:total_vnodes (effective_scores t)
  in
  let added = ref 0 and removed = ref 0 and blocked = ref 0 in
  (* Grow first so removals have somewhere to shed partitions to. *)
  for node = 0 to n - 1 do
    while e.enrollment.(node) < target.(node) do
      spawn e node;
      incr added
    done
  done;
  for node = 0 to n - 1 do
    if e.enrollment.(node) > target.(node) then begin
      (* Remove this node's highest-numbered vnodes, best effort: the L2
         floor may refuse (reported, not forced). *)
      let excess = ref (e.enrollment.(node) - target.(node)) in
      let candidate = ref (e.next_vnode.(node) - 1) in
      while !excess > 0 && !candidate >= 0 do
        let id = Vnode_id.make ~snode:node ~vnode:!candidate in
        (match Local_dht.find_vnode e.dht id with
        | None -> ()
        | Some _ -> (
            match Local_dht.remove_vnode e.dht ~id with
            | Ok () ->
                e.enrollment.(node) <- e.enrollment.(node) - 1;
                incr removed;
                decr excess
            | Error _ -> incr blocked));
        decr candidate
      done
    end
  done;
  { added = !added; removed = !removed; blocked = !blocked }

let node_quota t ~name ~node =
  let e = entry_exn t name in
  Array.fold_left
    (fun acc v ->
      if v.Vnode.id.Vnode_id.snode = node then acc +. Vnode.quota t.space v
      else acc)
    0.
    (Local_dht.vnodes e.dht)

let enrollment t ~name = Array.copy (entry_exn t name).enrollment

let tracking_error t ~name =
  let shares = effective_shares t in
  let n = Cluster.Topology.size t.cluster in
  let acc = ref 0. in
  for node = 0 to n - 1 do
    let q = node_quota t ~name ~node in
    let err = (q /. shares.(node)) -. 1. in
    acc := !acc +. (err *. err)
  done;
  sqrt (!acc /. float_of_int n)
