(** Multiple DHTs coexisting on one cluster (§2.1.1: "a cluster node may
    host several snodes, each one specific to a different DHT") with
    enrollment that tracks each node's {e free} capacity (§6 future work:
    "nodes may dedicate to several different user tasks, with variable
    resource demands... the balancement of a DHT should take into
    consideration its possible coexistence with other parallel/distributed
    applications").

    Each registered DHT gets, per cluster node, a number of vnodes
    proportional to the node's effective capacity — its {!Dht_cluster.Profile}
    score scaled down by the external load currently reported for the node.
    When external load changes, {!retarget} re-apportions: enrollment grows
    by creating vnodes and shrinks by removing them (removals blocked by
    the model's L2 floor are reported, not forced). *)

open Dht_core
module Rng = Dht_prng.Rng

type t

val create :
  ?space:Dht_hashspace.Space.t ->
  cluster:Dht_cluster.Topology.t ->
  seed:int ->
  unit ->
  t

val cluster : t -> Dht_cluster.Topology.t

val set_external_load : t -> node:int -> float -> unit
(** [set_external_load t ~node f] reports that fraction [f] of the node's
    resources is consumed by other applications (0 = idle, 0.9 = mostly
    busy). Takes effect at the next {!retarget}.
    @raise Invalid_argument unless [0 <= f < 1]. *)

val effective_shares : t -> float array
(** Current per-node share of the cluster's free capacity (sums to 1). *)

val add_dht :
  t -> name:string -> pmin:int -> vmin:int -> total_vnodes:int -> unit
(** Registers a DHT and enrolls every node proportionally to its current
    effective share.
    @raise Invalid_argument if the name is taken or [total_vnodes] is below
    the per-node floor. *)

val names : t -> string list

val dht : t -> name:string -> Local_dht.t
(** The underlying DHT (for lookups, metrics, audits).
    @raise Not_found if unknown. *)

type retarget_report = {
  added : int;  (** vnodes created to raise enrollments *)
  removed : int;  (** vnodes removed to lower enrollments *)
  blocked : int;  (** removals refused by the model (L2 floor/capacity) *)
}

val retarget : t -> name:string -> total_vnodes:int -> retarget_report
(** Re-apportions the DHT's [total_vnodes] to the current effective shares
    and applies the difference (creations, then best-effort removals).
    @raise Not_found if unknown. *)

val node_quota : t -> name:string -> node:int -> float
(** The fraction of the named DHT currently hosted by [node]. *)

val enrollment : t -> name:string -> int array
(** Current vnodes per node for the named DHT. *)

val tracking_error : t -> name:string -> float
(** RMS over nodes of [|quota/effective_share - 1|] — how well the DHT's
    placement tracks the free capacity. *)
