(** Internal binary min-heap keyed by [(time, sequence)].

    The sequence number makes the pop order deterministic (FIFO among
    equal-time events), which the engine relies on for reproducibility. *)

type 'a t

val create : unit -> 'a t

val length : 'a t -> int

val is_empty : 'a t -> bool

val push : 'a t -> time:float -> seq:int -> 'a -> unit

val pop : 'a t -> (float * int * 'a) option
(** Removes and returns the event with the smallest [(time, seq)]. *)

val peek_time : 'a t -> float option
