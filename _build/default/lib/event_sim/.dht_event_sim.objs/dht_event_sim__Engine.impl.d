lib/event_sim/engine.ml: Float Heap
