lib/event_sim/heap.ml: Array
