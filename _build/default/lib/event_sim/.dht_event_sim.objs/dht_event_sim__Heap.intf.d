lib/event_sim/heap.mli:
