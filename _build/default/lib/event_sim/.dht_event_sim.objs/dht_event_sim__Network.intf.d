lib/event_sim/network.mli: Engine
