lib/event_sim/network.ml: Engine
