lib/event_sim/engine.mli:
