lib/workload/trace.mli: Dht_prng
