lib/workload/keygen.ml: Array Dht_prng String
