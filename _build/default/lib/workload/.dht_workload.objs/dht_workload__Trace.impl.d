lib/workload/trace.ml: Array Dht_prng
