lib/workload/keygen.mli: Dht_prng
