module Rng = Dht_prng.Rng

let bulk ~n =
  if n < 0 then invalid_arg "Trace.bulk: negative n";
  Array.make n 0.

let uniform ~n ~period =
  if n < 0 then invalid_arg "Trace.uniform: negative n";
  if period <= 0. then invalid_arg "Trace.uniform: period must be positive";
  Array.init n (fun i -> float_of_int (i + 1) *. period)

let poisson ~rng ~n ~rate =
  if n < 0 then invalid_arg "Trace.poisson: negative n";
  let t = ref 0. in
  Array.init n (fun _ ->
      t := !t +. Rng.exponential rng ~rate;
      !t)
