(** Arrival traces for join/creation workloads. *)

module Rng = Dht_prng.Rng

val bulk : n:int -> float array
(** [n] simultaneous arrivals at time 0 (the paper's "consecutively
    created" setting — ordering is left to queueing).
    @raise Invalid_argument if [n < 0]. *)

val uniform : n:int -> period:float -> float array
(** One arrival every [period] seconds, starting at [period].
    @raise Invalid_argument if [n < 0] or [period <= 0.]. *)

val poisson : rng:Rng.t -> n:int -> rate:float -> float array
(** [n] Poisson arrivals with the given rate (per second); sorted.
    @raise Invalid_argument if [n < 0] or [rate <= 0.]. *)
