open Dht_hashspace
module Rng = Dht_prng.Rng
module Imap = Map.Make (Int)

type node = { mutable owned : int; mutable positions : int list }

type t = {
  space : Space.t;
  rng : Rng.t;
  mutable points : int Imap.t;  (* ring position -> node id *)
  nodes : (int, node) Hashtbl.t;
}

let create ?(space = Space.default) ~rng () =
  { space; rng; points = Imap.empty; nodes = Hashtbl.create 64 }

let space t = t.space
let node_count t = Hashtbl.length t.nodes
let point_count t = Imap.cardinal t.points

(* Wrapping distance along the ring from [a] (exclusive) to [b] (inclusive);
   the full ring when a = b. *)
let arc_len t a b =
  let size = Space.size t.space in
  if a = b then size else ((b - a) mod size + size) mod size

let pred_point t p =
  match Imap.find_last_opt (fun k -> k < p) t.points with
  | Some b -> b
  | None -> Imap.max_binding t.points

let succ_point_incl t p =
  match Imap.find_first_opt (fun k -> k >= p) t.points with
  | Some b -> b
  | None -> Imap.min_binding t.points

let node_state t id =
  match Hashtbl.find_opt t.nodes id with
  | Some n -> n
  | None -> raise Not_found

let add_point t id =
  let node = node_state t id in
  let size = Space.size t.space in
  (* Rejection loop: occupied positions are re-drawn (vanishingly rare). *)
  let rec fresh () =
    let p = Rng.int t.rng size in
    if Imap.mem p t.points then fresh () else p
  in
  let p = fresh () in
  if Imap.is_empty t.points then node.owned <- node.owned + size
  else begin
    let pred_pos, _ = pred_point t p in
    let _, succ_node = succ_point_incl t p in
    let len = arc_len t pred_pos p in
    (node_state t succ_node).owned <- (node_state t succ_node).owned - len;
    node.owned <- node.owned + len
  end;
  t.points <- Imap.add p id t.points;
  node.positions <- p :: node.positions

let remove_point t id p =
  let node = node_state t id in
  t.points <- Imap.remove p t.points;
  if Imap.is_empty t.points then node.owned <- node.owned - Space.size t.space
  else begin
    let pred_pos, _ = pred_point t p in
    let _, succ_node = succ_point_incl t p in
    let len = arc_len t pred_pos p in
    node.owned <- node.owned - len;
    (node_state t succ_node).owned <- (node_state t succ_node).owned + len
  end;
  node.positions <- List.filter (fun q -> q <> p) node.positions

let add_node t ?points ~id ~k () =
  let count = Option.value points ~default:k in
  if count <= 0 then invalid_arg "Ring.add_node: point count must be positive";
  if Hashtbl.mem t.nodes id then invalid_arg "Ring.add_node: duplicate node id";
  Hashtbl.add t.nodes id { owned = 0; positions = [] };
  for _ = 1 to count do
    add_point t id
  done

let remove_node t ~id =
  let node = node_state t id in
  List.iter (fun p -> remove_point t id p) node.positions;
  assert (node.owned = 0);
  Hashtbl.remove t.nodes id

let quota t ~id =
  Space.quota t.space (node_state t id).owned

let quotas t =
  let ids = Hashtbl.fold (fun id _ acc -> id :: acc) t.nodes [] in
  let ids = List.sort Stdlib.compare ids in
  Array.of_list (List.map (fun id -> quota t ~id) ids)

let sigma_qn t =
  let qs = quotas t in
  let n = Array.length qs in
  if n <= 1 then 0.
  else
    let ideal = 1. /. float_of_int n in
    100. *. Dht_stats.Descriptive.rel_stddev_about qs ~about:ideal

let points t = Imap.bindings t.points

let owner t p =
  if not (Space.contains t.space p) then invalid_arg "Ring.owner: point outside space";
  if Imap.is_empty t.points then raise Not_found;
  snd (succ_point_incl t p)
