(** Consistent Hashing reference model (Karger et al. '97), §4.3.

    The hash range is treated as a ring. Each node draws [k] random points
    ("virtual servers"); the point at position [q] owns the arc from its
    predecessor point (exclusive) to [q] (inclusive), and a node's quota
    [Qn] is the total length of its points' arcs divided by [2^Bh]. Node
    heterogeneity is expressed by giving nodes different numbers of points
    (as in CFS). Quotas are maintained incrementally in exact integer
    arithmetic. *)

open Dht_hashspace
module Rng = Dht_prng.Rng

type t

val create : ?space:Space.t -> rng:Rng.t -> unit -> t
(** An empty ring. [rng] drives point placement and is owned by the ring. *)

val space : t -> Space.t

val add_node : t -> ?points:int -> id:int -> k:int -> unit -> unit
(** [add_node t ~id ~k ()] joins node [id] with [k] ring points ([points]
    overrides [k] for heterogeneous setups — kept separate so sweeps can
    share a common [k] default).
    @raise Invalid_argument if [id] is already present or the effective
    point count is not positive. *)

val remove_node : t -> id:int -> unit
(** Removes a node; its arcs merge into their successors' owners.
    @raise Not_found if [id] is not present. *)

val node_count : t -> int

val point_count : t -> int

val quota : t -> id:int -> float
(** Current [Qn] of one node. @raise Not_found if absent. *)

val quotas : t -> float array
(** [Qn] of every node, in ascending node-id order. Sums to 1 when the ring
    is non-empty. *)

val sigma_qn : t -> float
(** σ̄(Qn, Q̄n) in percent, against the ideal average [1/N] — the metric of
    figure 9. *)

val points : t -> (int * int) list
(** All [(position, node id)] ring points in ascending position order —
    exposed for audits that recompute quotas from first principles. *)

val owner : t -> int -> int
(** [owner t p] is the node id responsible for hash index [p].
    @raise Not_found on an empty ring.
    @raise Invalid_argument if [p] is outside the space. *)
