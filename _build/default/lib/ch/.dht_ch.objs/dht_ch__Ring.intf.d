lib/ch/ring.mli: Dht_hashspace Dht_prng Space
