lib/ch/ring.ml: Array Dht_hashspace Dht_prng Dht_stats Hashtbl Int List Map Option Space Stdlib
