lib/hashspace/point_map.ml: Int List Map Seq Space Span
