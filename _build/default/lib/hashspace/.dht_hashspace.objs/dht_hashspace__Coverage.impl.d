lib/hashspace/coverage.ml: Format List Space Span
