lib/hashspace/space.mli: Format
