lib/hashspace/span.mli: Format Space
