lib/hashspace/space.ml: Format
