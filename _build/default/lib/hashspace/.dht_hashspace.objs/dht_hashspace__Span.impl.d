lib/hashspace/span.ml: Format Space Stdlib
