lib/hashspace/point_map.mli: Space Span
