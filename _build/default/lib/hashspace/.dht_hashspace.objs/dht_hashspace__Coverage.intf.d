lib/hashspace/coverage.mli: Format Space Span
