type t = { bits : int }

let create ~bits =
  if bits < 1 || bits > 62 then invalid_arg "Space.create: bits outside [1, 62]";
  { bits }

let default = create ~bits:52
let bits t = t.bits
let size t = 1 lsl t.bits
let contains t i = i >= 0 && i < size t
let max_level t = t.bits
let quota t width = float_of_int width /. float_of_int (size t)
let pp ppf t = Format.fprintf ppf "R_h[0, 2^%d)" t.bits
let equal a b = a.bits = b.bits
