(** Partitions of the hash range as dyadic spans.

    Every partition of the model "results from the binary split of another
    partition" starting from the whole range (§3.4), so a partition is fully
    described by its {e split level} [l] and its {e index} within level [l]:
    it covers [\[index·2^(Bh−l), (index+1)·2^(Bh−l))] and has size
    [2^Bh / 2^l]. This canonical form makes invariant G3/G3' (equal size
    within a level) and binary splitting structural. *)

type t = private { level : int; index : int }
(** A dyadic span. [level >= 0] and [0 <= index < 2^level]. *)

val root : t
(** Level 0, covering the whole of [R_h]. *)

val make : Space.t -> level:int -> index:int -> t
(** @raise Invalid_argument if [level] exceeds the space's max level or
    [index] is outside [\[0, 2^level)]. *)

val level : t -> int

val index : t -> int

val size : Space.t -> t -> int
(** Number of hash indices covered: [2^(Bh - level)]. *)

val start : Space.t -> t -> int
(** First hash index covered. *)

val stop : Space.t -> t -> int
(** One past the last hash index covered. *)

val quota : Space.t -> t -> float
(** Fraction of [R_h] covered: [1 / 2^level]. *)

val split : Space.t -> t -> t * t
(** [split sp t] is the two halves of [t] (left first).
    @raise Invalid_argument if [t] is already at the space's max level. *)

val parent : t -> t option
(** The span whose split produced [t]; [None] for {!root}. *)

val sibling : t -> t option
(** The other half of [parent t]; [None] for {!root}. *)

val contains : Space.t -> t -> int -> bool
(** [contains sp t p] — does span [t] cover hash index [p]? *)

val of_point : Space.t -> level:int -> int -> t
(** [of_point sp ~level p] is the unique level-[level] span containing [p].
    @raise Invalid_argument if [p] is outside the space or [level] invalid. *)

val overlap : t -> t -> bool
(** Whether two spans intersect (true iff one is an ancestor of, or equal
    to, the other). *)

val compare : t -> t -> int
(** Total order: by start position, then by level (coarser first). *)

val equal : t -> t -> bool

val pp : Format.formatter -> t -> unit
