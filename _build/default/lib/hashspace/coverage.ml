type error =
  | Empty
  | Gap of { after : int; before : int }
  | Overlap of { a : Span.t; b : Span.t }
  | Out_of_space of Span.t

let pp_error ppf = function
  | Empty -> Format.fprintf ppf "no spans"
  | Gap { after; before } -> Format.fprintf ppf "gap in [%d, %d)" after before
  | Overlap { a; b } ->
      Format.fprintf ppf "overlap between %a and %a" Span.pp a Span.pp b
  | Out_of_space s -> Format.fprintf ppf "%a deeper than the space" Span.pp s

let check sp spans =
  match spans with
  | [] -> Error Empty
  | _ -> (
      match List.find_opt (fun s -> Span.level s > Space.max_level sp) spans with
      | Some s -> Error (Out_of_space s)
      | None ->
          let sorted = List.sort Span.compare spans in
          let rec walk cursor = function
            | [] ->
                if cursor = Space.size sp then Ok ()
                else Error (Gap { after = cursor; before = Space.size sp })
            | s :: rest ->
                let st = Span.start sp s in
                if st < cursor then
                  (* sorted by start, so the previous span ran past us *)
                  let prev =
                    List.find (fun p -> Span.overlap p s) (List.filter (fun p -> p != s) spans)
                  in
                  Error (Overlap { a = prev; b = s })
                else if st > cursor then Error (Gap { after = cursor; before = st })
                else walk (Span.stop sp s) rest
          in
          walk 0 sorted)

let total_quota sp spans =
  List.fold_left (fun acc s -> acc +. Span.quota sp s) 0. spans
