(** The hash range [R_h = \[0, 2^Bh)] of the model (§2.2).

    [Bh] is the fixed number of bits of a hash index. The default used by the
    experiments is 52 bits so that every partition size is an exact OCaml
    integer and every quota [size / 2^Bh] is an exact float. *)

type t
(** A hash space; immutable. *)

val create : bits:int -> t
(** [create ~bits] is the space [\[0, 2^bits)].
    @raise Invalid_argument unless [1 <= bits <= 62]. *)

val default : t
(** The 52-bit space used throughout the experiments. *)

val bits : t -> int
(** The exponent [Bh]. *)

val size : t -> int
(** [2^Bh], the number of hash indices. *)

val contains : t -> int -> bool
(** [contains t i] is [0 <= i < size t]. *)

val max_level : t -> int
(** Deepest split level a partition can reach, i.e. [bits t]. *)

val quota : t -> int -> float
(** [quota t width] is [width / 2^Bh] — the fraction of the space a range of
    [width] indices represents. Exact when [bits t <= 52]. *)

val pp : Format.formatter -> t -> unit

val equal : t -> t -> bool
