type t = { level : int; index : int }

let root = { level = 0; index = 0 }

let make sp ~level ~index =
  if level < 0 || level > Space.max_level sp then
    invalid_arg "Span.make: level outside [0, Bh]";
  if index < 0 || index >= 1 lsl level then
    invalid_arg "Span.make: index outside [0, 2^level)";
  { level; index }

let level t = t.level
let index t = t.index
let size sp t = 1 lsl (Space.bits sp - t.level)
let start sp t = t.index * size sp t
let stop sp t = start sp t + size sp t
let quota _sp t = 1. /. float_of_int (1 lsl t.level)

let split sp t =
  if t.level >= Space.max_level sp then
    invalid_arg "Span.split: already at maximum level";
  ( { level = t.level + 1; index = 2 * t.index },
    { level = t.level + 1; index = (2 * t.index) + 1 } )

let parent t =
  if t.level = 0 then None
  else Some { level = t.level - 1; index = t.index / 2 }

let sibling t =
  if t.level = 0 then None else Some { t with index = t.index lxor 1 }

let contains sp t p =
  Space.contains sp p && p lsr (Space.bits sp - t.level) = t.index

let of_point sp ~level p =
  if not (Space.contains sp p) then invalid_arg "Span.of_point: point outside space";
  if level < 0 || level > Space.max_level sp then
    invalid_arg "Span.of_point: level outside [0, Bh]";
  { level; index = p lsr (Space.bits sp - level) }

let overlap a b =
  if a.level <= b.level then b.index lsr (b.level - a.level) = a.index
  else a.index lsr (a.level - b.level) = b.index

let compare a b =
  (* Compare fractional starts index/2^level without materialising a space:
     align both indices to the deeper of the two levels (the shifted values
     stay below 2^max_level <= 2^62, so no overflow). *)
  let lmax = if a.level > b.level then a.level else b.level in
  let sa = a.index lsl (lmax - a.level) and sb = b.index lsl (lmax - b.level) in
  let c = Stdlib.compare sa sb in
  if c <> 0 then c else Stdlib.compare a.level b.level

let equal a b = a.level = b.level && a.index = b.index
let pp ppf t = Format.fprintf ppf "span(l=%d, i=%d)" t.level t.index
