module Imap = Map.Make (Int)

type 'a t = { space : Space.t; mutable by_start : (Span.t * 'a) Imap.t }

let create space = { space; by_start = Imap.empty }
let space t = t.space
let cardinal t = Imap.cardinal t.by_start

let add t span v =
  let st = Span.start t.space span in
  (* Disjointness: the predecessor must end at or before our start and the
     successor must start at or after our stop. Exact-start collisions are
     overlaps too. *)
  (match Imap.find_last_opt (fun k -> k <= st) t.by_start with
  | Some (_, (prev, _)) when Span.stop t.space prev > st ->
      invalid_arg "Point_map.add: overlapping span"
  | _ -> ());
  (match Imap.find_first_opt (fun k -> k > st) t.by_start with
  | Some (k, (next, _)) when k < Span.stop t.space span ->
      ignore next;
      invalid_arg "Point_map.add: overlapping span"
  | _ -> ());
  t.by_start <- Imap.add st (span, v) t.by_start

let remove t span =
  let st = Span.start t.space span in
  match Imap.find_opt st t.by_start with
  | Some (s, _) when Span.equal s span -> t.by_start <- Imap.remove st t.by_start
  | Some _ | None -> raise Not_found

let find_point t p =
  if not (Space.contains t.space p) then
    invalid_arg "Point_map.find_point: point outside space";
  match Imap.find_last_opt (fun k -> k <= p) t.by_start with
  | Some (_, ((span, _) as binding)) when Span.contains t.space span p -> binding
  | Some _ | None -> raise Not_found

let replace_owner t span v =
  let st = Span.start t.space span in
  match Imap.find_opt st t.by_start with
  | Some (s, _) when Span.equal s span ->
      t.by_start <- Imap.add st (span, v) t.by_start
  | Some _ | None -> raise Not_found

let split t span =
  let st = Span.start t.space span in
  match Imap.find_opt st t.by_start with
  | Some (s, v) when Span.equal s span ->
      let left, right = Span.split t.space span in
      t.by_start <- Imap.remove st t.by_start;
      t.by_start <- Imap.add (Span.start t.space left) (left, v) t.by_start;
      t.by_start <- Imap.add (Span.start t.space right) (right, v) t.by_start
  | Some _ | None -> raise Not_found

let overlapping t span =
  let st = Span.start t.space span and sp = Span.stop t.space span in
  (* The predecessor binding may spill into [span]; all bindings starting
     inside [st, sp) overlap by construction. *)
  let before =
    match Imap.find_last_opt (fun k -> k < st) t.by_start with
    | Some (_, ((s, _) as b)) when Span.stop t.space s > st -> [ b ]
    | Some _ | None -> []
  in
  let inside =
    Imap.to_seq_from st t.by_start
    |> Seq.take_while (fun (k, _) -> k < sp)
    |> Seq.map snd |> List.of_seq
  in
  before @ inside

let iter t f = Imap.iter (fun _ (s, v) -> f s v) t.by_start
let to_list t = Imap.fold (fun _ b acc -> b :: acc) t.by_start [] |> List.rev
let spans t = List.map fst (to_list t)
