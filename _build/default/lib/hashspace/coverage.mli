(** Auditing invariant G1/G1': the hash range is fully divided into
    non-overlapping partitions.

    These checks are used by the test suite and by the DHT's [audit]
    functions; they are O(n log n) and not on any hot path. *)

type error =
  | Empty  (** no spans at all *)
  | Gap of { after : int; before : int }
      (** uncovered indices in [\[after, before)] *)
  | Overlap of { a : Span.t; b : Span.t }
  | Out_of_space of Span.t  (** span deeper than the space allows *)

val pp_error : Format.formatter -> error -> unit

val check : Space.t -> Span.t list -> (unit, error) result
(** [check sp spans] is [Ok ()] iff [spans] tile the whole of [R_h] exactly:
    no overlap, no gap, full coverage. *)

val total_quota : Space.t -> Span.t list -> float
(** Sum of the quotas of the spans (1.0 for an exact tiling). *)
