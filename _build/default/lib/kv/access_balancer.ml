open Dht_core
module Space = Dht_hashspace.Space
module Span = Dht_hashspace.Span
module Hash = Dht_hashes.Hash

type t = {
  wrapped : Local_store.t;
  (* Epoch access counts keyed by partition start index: the key survives
     ownership transfers (the partition keeps its boundaries) and, on a
     binary split, stays attached to the left half — an acceptable
     epoch-level approximation. *)
  counts : (int, int) Hashtbl.t;
  mutable total : int;
}

let create wrapped = { wrapped; counts = Hashtbl.create 256; total = 0 }
let store t = t.wrapped

let record t key =
  let dht = Local_store.dht t.wrapped in
  let space = (Local_dht.params dht).Params.space in
  let point = Hash.string space key in
  let span, _ = Local_dht.lookup dht point in
  let start = Span.start space span in
  Hashtbl.replace t.counts start
    (1 + Option.value ~default:0 (Hashtbl.find_opt t.counts start));
  t.total <- t.total + 1

let get t ~key =
  record t key;
  Local_store.get t.wrapped ~key

let put t ~key ~value =
  record t key;
  Local_store.put t.wrapped ~key ~value

let epoch_accesses t = t.total

let span_count t space span =
  Option.value ~default:0 (Hashtbl.find_opt t.counts (Span.start space span))

let access_of_vnode t v =
  let dht = Local_store.dht t.wrapped in
  let space = (Local_dht.params dht).Params.space in
  List.fold_left (fun acc s -> acc + span_count t space s) 0 v.Vnode.spans

let access_sigma t =
  if t.total = 0 then 0.
  else begin
    let dht = Local_store.dht t.wrapped in
    let vnodes = Local_dht.vnodes dht in
    let loads =
      Array.map (fun v -> float_of_int (access_of_vnode t v)) vnodes
    in
    let ideal = float_of_int t.total /. float_of_int (Array.length vnodes) in
    100. *. Dht_stats.Descriptive.rel_stddev_about loads ~about:ideal
  end

(* The hottest / coldest partition a vnode owns. *)
let extreme_span t space v ~hotter =
  List.fold_left
    (fun best s ->
      let c = span_count t space s in
      match best with
      | Some (_, bc) when if hotter then bc >= c else bc <= c -> best
      | Some _ | None -> Some (s, c))
    None v.Vnode.spans

let rebalance ?(threshold = 1.05) ?(max_moves = 64) t =
  if threshold < 1. then invalid_arg "Access_balancer.rebalance: threshold < 1";
  let dht = Local_store.dht t.wrapped in
  let space = (Local_dht.params dht).Params.space in
  let moves = ref 0 in
  let progress = ref true in
  while !progress && !moves < max_moves && t.total > 0 do
    progress := false;
    let vnodes = Local_dht.vnodes dht in
    let mean = float_of_int t.total /. float_of_int (Array.length vnodes) in
    (* Hottest vnode DHT-wide. *)
    let hot =
      Array.fold_left
        (fun best v ->
          match best with
          | Some (_, l) when l >= access_of_vnode t v -> best
          | Some _ | None -> Some (v, access_of_vnode t v))
        None vnodes
    in
    match hot with
    | None -> ()
    | Some (hot_v, hot_load) ->
        if float_of_int hot_load > threshold *. mean then begin
          match Local_dht.find_group dht hot_v.Vnode.group with
          | None -> ()
          | Some balancer -> (
              (* Coldest vnode of the same group. *)
              let cold = ref None in
              Balancer.iter_vnodes balancer (fun v ->
                  if v != hot_v then
                    match !cold with
                    | Some (_, l) when l <= access_of_vnode t v -> ()
                    | Some _ | None -> cold := Some (v, access_of_vnode t v));
              match !cold with
              | None -> ()
              | Some (cold_v, cold_load) -> (
                  (* Swap the hot vnode's hottest partition against the cold
                     vnode's coldest one: counts are untouched (always
                     G4'-admissible) and the pairwise imbalance strictly
                     shrinks when the swapped heats differ. *)
                  match
                    ( extreme_span t space hot_v ~hotter:true,
                      extreme_span t space cold_v ~hotter:false )
                  with
                  | Some (hot_span, h), Some (cold_span, c)
                    when h > c
                         && cold_load + h - c < hot_load ->
                      (match
                         Balancer.swap_spans balancer ~a:hot_v ~b:cold_v
                           ~span_a:hot_span ~span_b:cold_span
                       with
                      | Ok () ->
                          incr moves;
                          progress := true
                      | Error (`Not_owner | `Not_member | `Same_vnode) -> ())
                  | _ -> ())
              )
        end
  done;
  !moves

let reset_epoch t =
  Hashtbl.reset t.counts;
  t.total <- 0
