(** Access-aware fine-grain balancing — the paper's §6 future work: "the
    mechanisms of the model for fine-grain balancement should also evolve,
    to deal with situations where access to data ... is non-uniform".

    The balancer counts accesses per partition during an epoch and then
    swaps hot partitions of overloaded vnodes against cold partitions of
    the least-accessed vnodes {e of the same group}: partition sizes stay
    uniform within groups and partition counts are untouched, so every
    invariant (G1'-G5', L1-L2) survives while access load evens out.
    Partition access counts follow the partition when it moves. *)

open Dht_core

type t

val create : Local_store.t -> t
(** Wraps a local-approach store. Accesses made through {!get}/{!put} are
    counted; direct store access bypasses the accounting. *)

val store : t -> Local_store.t

val get : t -> key:string -> string option
(** Routed read, counted against the partition holding the key. *)

val put : t -> key:string -> value:string -> unit
(** Routed write, counted likewise. *)

val epoch_accesses : t -> int
(** Accesses recorded since the last {!reset_epoch}. *)

val access_of_vnode : t -> Vnode.t -> int
(** Epoch accesses to partitions currently owned by the vnode. *)

val access_sigma : t -> float
(** Relative standard deviation (percent, vs the ideal even share) of
    per-vnode access counts — the imbalance this module attacks. [0.] when
    no access was recorded. *)

val rebalance : ?threshold:float -> ?max_moves:int -> t -> int
(** [rebalance t] repeatedly {e swaps} the hottest partition of the
    most-accessed vnode against the coldest partition of its group's
    least-accessed vnode ({!Dht_core.Balancer.swap_spans} — counts are
    untouched, so the move is admissible even in the all-at-Pmin state of
    G5), while (a) the hot vnode's load exceeds [threshold] (default
    [1.05]) times the DHT-wide mean and (b) the swap strictly reduces the
    pairwise imbalance. Stops after [max_moves] swaps (default 64) or when
    no improving swap remains. Returns the number of swaps performed (keys
    migrate both ways).
    @raise Invalid_argument if [threshold < 1.]. *)

val reset_epoch : t -> unit
(** Forgets all access counts (start of a new observation window). *)
