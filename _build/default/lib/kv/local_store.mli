(** A {!Store} pre-wired to a local-approach DHT: rebalancing events migrate
    keys automatically and the router always reflects the current partition
    distribution. *)

open Dht_core

type t

val create :
  ?space:Dht_hashspace.Space.t ->
  pmin:int ->
  vmin:int ->
  rng:Dht_prng.Rng.t ->
  first:Vnode_id.t ->
  unit ->
  t

val dht : t -> Local_dht.t

val store : t -> Store.t

val add_vnode : t -> id:Vnode_id.t -> Vnode.t
(** Grows the DHT; stored keys migrate as partitions move. *)

val put : t -> key:string -> value:string -> unit

val get : t -> key:string -> string option

val remove : t -> key:string -> bool
