(** A {!Store} pre-wired to a global-approach DHT (single balancing
    domain). *)

open Dht_core

type t

val create :
  ?space:Dht_hashspace.Space.t -> pmin:int -> first:Vnode_id.t -> unit -> t

val dht : t -> Global_dht.t

val store : t -> Store.t

val add_vnode : t -> id:Vnode_id.t -> Vnode.t

val put : t -> key:string -> value:string -> unit

val get : t -> key:string -> string option

val remove : t -> key:string -> bool
