open Dht_core

type t = { dht : Global_dht.t; store : Store.t }

let create ?space ~pmin ~first () =
  let store = Store.create ?space () in
  let dht =
    Global_dht.create ?space ~on_event:(Store.handler store) ~pmin ~first ()
  in
  Store.set_router store (fun p -> snd (Global_dht.lookup dht p));
  { dht; store }

let dht t = t.dht
let store t = t.store
let add_vnode t ~id = Global_dht.add_vnode t.dht ~id
let put t ~key ~value = Store.put t.store ~key ~value
let get t ~key = Store.get t.store ~key
let remove t ~key = Store.remove t.store ~key
