lib/kv/access_balancer.mli: Dht_core Local_store Vnode
