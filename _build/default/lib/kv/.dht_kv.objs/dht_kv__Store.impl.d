lib/kv/store.ml: Array Balancer Dht_core Dht_hashes Dht_hashspace Dht_stats Hashtbl List Option Vnode Vnode_id
