lib/kv/local_store.ml: Dht_core Local_dht Store
