lib/kv/store.mli: Balancer Dht_core Dht_hashspace Vnode Vnode_id
