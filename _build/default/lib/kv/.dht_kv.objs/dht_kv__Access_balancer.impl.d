lib/kv/access_balancer.ml: Array Balancer Dht_core Dht_hashes Dht_hashspace Dht_stats Hashtbl List Local_dht Local_store Option Params Vnode
