lib/kv/local_store.mli: Dht_core Dht_hashspace Dht_prng Local_dht Store Vnode Vnode_id
