lib/kv/global_store.ml: Dht_core Global_dht Store
