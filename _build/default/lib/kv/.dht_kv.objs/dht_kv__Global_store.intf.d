lib/kv/global_store.mli: Dht_core Dht_hashspace Global_dht Store Vnode Vnode_id
