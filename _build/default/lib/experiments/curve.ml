type t = { label : string; xs : float array; ys : float array }

let make ~label ~xs ~ys =
  if Array.length xs = 0 || Array.length xs <> Array.length ys then
    invalid_arg "Curve.make: empty or mismatched arrays";
  { label; xs; ys }

let of_ys ~label ?(x0 = 1.) ys =
  make ~label ~xs:(Array.init (Array.length ys) (fun i -> x0 +. float_of_int i)) ~ys

let last t = t.ys.(Array.length t.ys - 1)

let at_x t x =
  let n = Array.length t.xs in
  let rec go i =
    if i >= n then raise Not_found
    else if t.xs.(i) >= x then t.ys.(i)
    else go (i + 1)
  in
  go 0
