open Dht_core

let sigma_sample dht = Local_dht.sigma_qv dht

let local_sigma_curve ~runs ~seed ~pmin ~vmin ~vnodes =
  Runs.mean_curve ~runs ~seed (fun rng ->
      Sims.local_curve ~pmin ~vmin ~vnodes ~sample:sigma_sample rng)

let fig4 ?(runs = 100) ?(vnodes = 1024) ?(pairs = [ 8; 16; 32; 64; 128 ])
    ~seed () =
  List.map
    (fun p ->
      let ys = local_sigma_curve ~runs ~seed ~pmin:p ~vmin:p ~vnodes in
      Curve.of_ys ~label:(Printf.sprintf "(Pmin,Vmin)=(%d,%d)" p p) ys)
    pairs

let fig5 ?(runs = 100) ?(vnodes = 1024) ?(vmins = [ 8; 16; 32; 64; 128 ])
    ?(alpha = 0.5) ~seed () =
  if alpha < 0. || alpha > 1. then invalid_arg "Figures.fig5: alpha outside [0, 1]";
  let finals =
    List.map
      (fun v ->
        let final =
          Runs.mean_value ~runs ~seed (fun rng ->
              let ys =
                Sims.local_curve ~pmin:v ~vmin:v ~vnodes ~sample:sigma_sample rng
              in
              ys.(vnodes - 1))
        in
        (v, final))
      vmins
  in
  let max_vmin = float_of_int (List.fold_left max 1 vmins) in
  let max_sigma = List.fold_left (fun acc (_, s) -> Float.max acc s) 0. finals in
  List.map
    (fun (v, s) ->
      let theta =
        (alpha *. (float_of_int v /. max_vmin))
        +. ((1. -. alpha) *. (s /. max_sigma))
      in
      (v, theta))
    finals

let argmin_theta thetas =
  match thetas with
  | [] -> invalid_arg "Figures.argmin_theta: empty"
  | (v0, t0) :: rest ->
      fst
        (List.fold_left
           (fun (bv, bt) (v, t) -> if t < bt then (v, t) else (bv, bt))
           (v0, t0) rest)

let fig6 ?(runs = 100) ?(vnodes = 1024) ?(pmin = 32)
    ?(vmins = [ 8; 16; 32; 64; 128; 256; 512 ]) ~seed () =
  List.map
    (fun vmin ->
      let ys = local_sigma_curve ~runs ~seed ~pmin ~vmin ~vnodes in
      Curve.of_ys ~label:(Printf.sprintf "Vmin=%d" vmin) ys)
    vmins

type group_dynamics = { greal : Curve.t; gideal : Curve.t; sigma_qg : Curve.t }

let fig7_fig8 ?(runs = 100) ?(vnodes = 1024) ?(pmin = 32) ?(vmin = 32) ~seed ()
    =
  let samples =
    [|
      (fun dht -> float_of_int (Local_dht.group_count dht));
      (fun dht -> Local_dht.sigma_qg dht);
    |]
  in
  let curves =
    Runs.mean_curves ~runs ~seed ~k:2 (fun rng ->
        Sims.local_curves ~pmin ~vmin ~vnodes ~samples rng)
  in
  let gideal =
    Array.init vnodes (fun i ->
        float_of_int (Metrics.gideal ~vnodes:(i + 1) ~vmax:(2 * vmin)))
  in
  {
    greal = Curve.of_ys ~label:"Greal" curves.(0);
    gideal = Curve.of_ys ~label:"Gideal" gideal;
    sigma_qg = Curve.of_ys ~label:"sigma(Qg)" curves.(1);
  }

let fig9 ?(runs = 100) ?(nodes = 1024) ?(pmin = 32)
    ?(vmins = [ 32; 64; 128; 256; 512 ]) ?(ch_points = [ 32; 64 ]) ~seed () =
  let ch =
    List.map
      (fun k ->
        let ys =
          Runs.mean_curve ~runs ~seed (fun rng ->
              Sims.ch_curve ~points_per_node:k ~nodes rng)
        in
        Curve.of_ys ~label:(Printf.sprintf "CH, %d partitions/node" k) ys)
      ch_points
  in
  let local =
    List.map
      (fun vmin ->
        let ys = local_sigma_curve ~runs ~seed ~pmin ~vmin ~vnodes:nodes in
        Curve.of_ys ~label:(Printf.sprintf "local approach, Vmin=%d" vmin) ys)
      vmins
  in
  ch @ local

let zone1 ?(runs = 100) ?(pmin_vmin = 32) ~seed () =
  let vmax = 2 * pmin_vmin in
  let local =
    Curve.of_ys ~label:"local (zone 1)"
      (local_sigma_curve ~runs ~seed ~pmin:pmin_vmin ~vmin:pmin_vmin
         ~vnodes:vmax)
  in
  let global =
    Curve.of_ys ~label:"global"
      (Sims.global_curve ~pmin:pmin_vmin ~vnodes:vmax
         ~sample:Global_dht.sigma_qv ())
  in
  (local, global)

let plateau_ratios curves =
  let rec go prev = function
    | [] -> []
    | (c : Curve.t) :: rest ->
        let final = Curve.last c in
        let ratio = match prev with None -> 1. | Some p -> final /. p in
        (c.Curve.label, final, ratio) :: go (Some final) rest
  in
  go None curves

type cost_row = {
  vmin : int;
  mean_group_size : float;
  group_count : float;
  lpdr_bytes : float;
  sync_snodes : float;
  final_sigma : float;
}

let cost ?(runs = 20) ?(vnodes = 1024) ?(pmin = 32)
    ?(vmins = [ 8; 16; 32; 64; 128; 256; 512 ]) ~seed () =
  let module Rng = Dht_prng.Rng in
  List.map
    (fun vmin ->
      let master = Rng.of_int seed in
      let acc_group = Dht_stats.Welford.create () in
      let acc_count = Dht_stats.Welford.create () in
      let acc_sigma = Dht_stats.Welford.create () in
      for _ = 1 to runs do
        let rng = Rng.split master in
        let vid i = Vnode_id.make ~snode:i ~vnode:0 in
        let dht = Local_dht.create ~pmin ~vmin ~rng ~first:(vid 0) () in
        for i = 1 to vnodes - 1 do
          ignore (Local_dht.add_vnode dht ~id:(vid i))
        done;
        let groups = Local_dht.groups dht in
        let g = List.length groups in
        Dht_stats.Welford.add acc_count (float_of_int g);
        List.iter
          (fun b ->
            Dht_stats.Welford.add acc_group
              (float_of_int (Balancer.vnode_count b)))
          groups;
        Dht_stats.Welford.add acc_sigma (Local_dht.sigma_qv dht)
      done;
      let mean_group_size = Dht_stats.Welford.mean acc_group in
      {
        vmin;
        mean_group_size;
        group_count = Dht_stats.Welford.mean acc_count;
        (* 16-byte header + 16 bytes per record (Distribution_record). *)
        lpdr_bytes = 16. +. (16. *. mean_group_size);
        (* One vnode per snode: every group member's snode synchronizes. *)
        sync_snodes = mean_group_size;
        final_sigma = Dht_stats.Welford.mean acc_sigma;
      })
    vmins

let stability ?(runs = 10) ?(vnodes = 8192) ?(pmin = 32) ?(vmin = 32) ~seed ()
    =
  let ys = local_sigma_curve ~runs ~seed ~pmin ~vmin ~vnodes in
  let curve = Curve.of_ys ~label:(Printf.sprintf "Vmin=%d" vmin) ys in
  let half = vnodes / 2 in
  let xs = Array.init (vnodes - half) (fun i -> float_of_int (half + i + 1)) in
  let tail = Array.sub ys half (vnodes - half) in
  let fit = Dht_stats.Regression.fit ~xs ~ys:tail in
  (curve, fit.Dht_stats.Regression.slope *. 1000.)
