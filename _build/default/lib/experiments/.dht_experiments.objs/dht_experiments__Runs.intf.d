lib/experiments/runs.mli: Dht_prng
