lib/experiments/sims.mli: Dht_core Dht_hashspace Dht_prng Global_dht Local_dht
