lib/experiments/figures.mli: Curve
