lib/experiments/sims.ml: Array Dht_ch Dht_core Dht_prng Global_dht Local_dht Vnode_id
