lib/experiments/curve.ml: Array
