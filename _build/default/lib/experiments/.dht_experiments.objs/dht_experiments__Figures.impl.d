lib/experiments/figures.ml: Array Balancer Curve Dht_core Dht_prng Dht_stats Float Global_dht List Local_dht Metrics Printf Runs Sims Vnode_id
