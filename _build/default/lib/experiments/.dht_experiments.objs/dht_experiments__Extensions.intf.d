lib/experiments/extensions.mli: Dht_protocol
