lib/experiments/runs.ml: Array Dht_prng Dht_stats
