lib/experiments/curve.mli:
