(** Drivers regenerating every figure of the paper's evaluation (§4).

    Defaults match the paper: 1024 vnodes created consecutively, metrics
    sampled after each creation, 100-run averages. All drivers are
    deterministic given [seed]. *)

val fig4 :
  ?runs:int -> ?vnodes:int -> ?pairs:int list -> seed:int -> unit -> Curve.t list
(** Figure 4 — σ̄(Qv) vs V with [Pmin = Vmin] for each value in [pairs]
    (default [\[8; 16; 32; 64; 128\]]). One curve per pair. *)

val fig5 :
  ?runs:int ->
  ?vnodes:int ->
  ?vmins:int list ->
  ?alpha:float ->
  seed:int ->
  unit ->
  (int * float) list
(** Figure 5 — the parameter-choice functional
    θ = α·Vmin/max(Vmin) + (1−α)·σ̄/max(σ̄) with [Pmin = Vmin], using each
    configuration's final σ̄(Qv) (default α = 0.5, Vmin over
    [\[8; 16; 32; 64; 128\]]). *)

val argmin_theta : (int * float) list -> int
(** The Vmin minimizing θ (the paper finds 32).
    @raise Invalid_argument on an empty list. *)

val fig6 :
  ?runs:int ->
  ?vnodes:int ->
  ?pmin:int ->
  ?vmins:int list ->
  seed:int ->
  unit ->
  Curve.t list
(** Figure 6 — degradation of σ̄(Qv) when [Pmin = 32] and Vmin spans
    [\[8 .. 512\]]; [Vmin = 512] never splits group 0 within 1024 creations
    and thus reproduces the global approach. *)

type group_dynamics = {
  greal : Curve.t;  (** mean number of groups per V (figure 7) *)
  gideal : Curve.t;  (** ideal number of groups per V (figure 7) *)
  sigma_qg : Curve.t;  (** mean σ̄(Qg) per V (figure 8) *)
}

val fig7_fig8 :
  ?runs:int ->
  ?vnodes:int ->
  ?pmin:int ->
  ?vmin:int ->
  seed:int ->
  unit ->
  group_dynamics
(** Figures 7 and 8 — group-count evolution and between-group balance from
    the same runs ([Pmin = Vmin = 32] by default). *)

val fig9 :
  ?runs:int ->
  ?nodes:int ->
  ?pmin:int ->
  ?vmins:int list ->
  ?ch_points:int list ->
  seed:int ->
  unit ->
  Curve.t list
(** Figure 9 — σ̄(Qn) for Consistent Hashing with 32 and 64 points per node
    versus the local approach with [Pmin = 32] and Vmin over
    [\[32 .. 512\]], homogeneous nodes, one vnode per snode. CH curves come
    first in the result. *)

val zone1 :
  ?runs:int -> ?pmin_vmin:int -> seed:int -> unit -> Curve.t * Curve.t
(** §4.1.1 "1st zone" claim — over [1 <= V <= Vmax] there is a single group
    and the local σ̄(Qv) matches the global approach point-wise. Returns
    (local average, global) curves of length [Vmax]. *)

val plateau_ratios : Curve.t list -> (string * float * float) list
(** §4.1.1 "30%" claim — for each consecutive pair of fig-4 curves, the
    final σ̄ and the ratio to the previous curve's final σ̄ (1.0 for the
    first). "Each time Pmin and Vmin double, σ̄(Qv) decreases by nearly
    30%", i.e. ratios ≈ 0.7. *)

type cost_row = {
  vmin : int;
  mean_group_size : float;  (** mean Vg — the LPDR record count (§4.1.2) *)
  group_count : float;  (** mean number of groups at the end *)
  lpdr_bytes : float;  (** mean serialized LPDR size *)
  sync_snodes : float;
      (** mean distinct snodes per balancing event (1 vnode/snode) — the
          synchronization fan-out §4.1.2 worries about *)
  final_sigma : float;  (** the balance quality bought with those resources *)
}

val cost :
  ?runs:int ->
  ?vnodes:int ->
  ?pmin:int ->
  ?vmins:int list ->
  seed:int ->
  unit ->
  cost_row list
(** §4.1.2's resource side of the θ tradeoff, measured: "if Vmin increases,
    there will be fewer, bigger groups of vnodes, with larger LPDR tables;
    the time consumed to sort a LPDR table will also grow...; bigger groups
    may require more synchronization". For each Vmin, grows the DHT and
    reports group sizes, LPDR bytes, synchronization fan-out and the final
    σ̄(Qv) they buy. *)

val stability :
  ?runs:int ->
  ?vnodes:int ->
  ?pmin:int ->
  ?vmin:int ->
  seed:int ->
  unit ->
  Curve.t * float
(** §4.1.1 8192-vnode claim — σ̄(Qv) remains "relatively stable" past the
    2nd-zone rise. Returns the curve and the least-squares slope (per 1000
    vnodes) of its second half; stability means a slope near 0. Defaults:
    8192 vnodes, 10 runs. *)
