open Dht_core
module Rng = Dht_prng.Rng

let vid i = Vnode_id.make ~snode:i ~vnode:0

let local_curves ?space ~pmin ~vmin ~vnodes ~samples rng =
  if vnodes < 1 then invalid_arg "Sims.local_curves: vnodes < 1";
  let dht = Local_dht.create ?space ~pmin ~vmin ~rng ~first:(vid 0) () in
  let curves = Array.map (fun _ -> Array.make vnodes 0.) samples in
  let record i =
    Array.iteri (fun k sample -> curves.(k).(i) <- sample dht) samples
  in
  record 0;
  for i = 1 to vnodes - 1 do
    ignore (Local_dht.add_vnode dht ~id:(vid i));
    record i
  done;
  curves

let local_curve ?space ~pmin ~vmin ~vnodes ~sample rng =
  (local_curves ?space ~pmin ~vmin ~vnodes ~samples:[| sample |] rng).(0)

let global_curve ?space ~pmin ~vnodes ~sample () =
  if vnodes < 1 then invalid_arg "Sims.global_curve: vnodes < 1";
  let dht = Global_dht.create ?space ~pmin ~first:(vid 0) () in
  let curve = Array.make vnodes 0. in
  curve.(0) <- sample dht;
  for i = 1 to vnodes - 1 do
    ignore (Global_dht.add_vnode dht ~id:(vid i));
    curve.(i) <- sample dht
  done;
  curve

let ch_curve ?space ~points_per_node ~nodes rng =
  if nodes < 1 then invalid_arg "Sims.ch_curve: nodes < 1";
  let ring = Dht_ch.Ring.create ?space ~rng () in
  let curve = Array.make nodes 0. in
  for i = 0 to nodes - 1 do
    Dht_ch.Ring.add_node ring ~id:i ~k:points_per_node ();
    curve.(i) <- Dht_ch.Ring.sigma_qn ring
  done;
  curve
