(** Single-run growth simulations: create vnodes/nodes consecutively and
    sample a metric after each creation (§4: "1024 vnodes were consecutively
    created and, after the creation of each vnode, the metric under analysis
    was measured"). Curves have one point per population size, starting at
    1. *)

open Dht_core
module Rng = Dht_prng.Rng

val local_curves :
  ?space:Dht_hashspace.Space.t ->
  pmin:int ->
  vmin:int ->
  vnodes:int ->
  samples:(Local_dht.t -> float) array ->
  Rng.t ->
  float array array
(** Grows a local-approach DHT to [vnodes] vnodes; returns one curve per
    sampling function, each of length [vnodes].
    @raise Invalid_argument if [vnodes < 1]. *)

val local_curve :
  ?space:Dht_hashspace.Space.t ->
  pmin:int ->
  vmin:int ->
  vnodes:int ->
  sample:(Local_dht.t -> float) ->
  Rng.t ->
  float array

val global_curve :
  ?space:Dht_hashspace.Space.t ->
  pmin:int ->
  vnodes:int ->
  sample:(Global_dht.t -> float) ->
  unit ->
  float array
(** Same for the global approach. Deterministic (no RNG is involved). *)

val ch_curve :
  ?space:Dht_hashspace.Space.t ->
  points_per_node:int ->
  nodes:int ->
  Rng.t ->
  float array
(** Joins [nodes] Consistent-Hashing nodes, each with [points_per_node]
    ring points, sampling σ̄(Qn) after each join. *)
