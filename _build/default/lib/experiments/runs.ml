module Rng = Dht_prng.Rng
module Series = Dht_stats.Series

let check_runs runs = if runs <= 0 then invalid_arg "Runs: runs must be positive"

let mean_curves ~runs ~seed ~k f =
  check_runs runs;
  let master = Rng.of_int seed in
  let acc = ref None in
  for _ = 1 to runs do
    let curves = f (Rng.split master) in
    if Array.length curves <> k then invalid_arg "Runs.mean_curves: wrong k";
    let series =
      match !acc with
      | Some s -> s
      | None ->
          let s = Array.map (fun c -> Series.create ~len:(Array.length c)) curves in
          acc := Some s;
          s
    in
    Array.iteri (fun i c -> Series.add_run series.(i) c) curves
  done;
  match !acc with
  | Some series -> Array.map Series.mean series
  | None -> assert false

let mean_curve ~runs ~seed f =
  (mean_curves ~runs ~seed ~k:1 (fun rng -> [| f rng |])).(0)

let mean_value ~runs ~seed f =
  (mean_curve ~runs ~seed (fun rng -> [| f rng |])).(0)
