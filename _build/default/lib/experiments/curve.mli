(** Labelled data series produced by the experiment drivers. *)

type t = { label : string; xs : float array; ys : float array }

val make : label:string -> xs:float array -> ys:float array -> t
(** @raise Invalid_argument if lengths differ or are zero. *)

val of_ys : label:string -> ?x0:float -> float array -> t
(** x values [x0, x0+1, ...] (default [x0 = 1.]). *)

val last : t -> float
(** Final y value. *)

val at_x : t -> float -> float
(** The y of the first point with x >= the given value.
    @raise Not_found if none. *)
