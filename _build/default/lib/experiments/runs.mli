(** Multi-run averaging machinery.

    "All the results presented are averages of 100 runs of the same test, in
    order to account for the random choice of a victim group" (§4). Each run
    receives an independent sub-stream of the master generator, so results
    are reproducible from a single seed. *)

module Rng = Dht_prng.Rng

val mean_curve : runs:int -> seed:int -> (Rng.t -> float array) -> float array
(** [mean_curve ~runs ~seed f] averages [runs] invocations of [f]
    point-wise. All invocations must return arrays of equal length.
    @raise Invalid_argument if [runs <= 0]. *)

val mean_curves :
  runs:int -> seed:int -> k:int -> (Rng.t -> float array array) -> float array array
(** Same, for runs that sample [k] metrics at once (e.g. Greal and σ̄(Qg)
    from a single simulation). [f rng] must return [k] arrays. *)

val mean_value : runs:int -> seed:int -> (Rng.t -> float) -> float
(** Scalar version (e.g. the final σ̄ only). *)
