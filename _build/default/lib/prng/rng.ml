type t = { mutable s0 : int64; mutable s1 : int64; mutable s2 : int64; mutable s3 : int64 }

(* SplitMix64: used only to expand the seed into the 256-bit xoshiro state.
   Constants from Steele, Lea & Flood, "Fast splittable pseudorandom number
   generators". *)
let splitmix64_next state =
  let open Int64 in
  state := add !state 0x9E3779B97F4A7C15L;
  let z = !state in
  let z = mul (logxor z (shift_right_logical z 30)) 0xBF58476D1CE4E5B9L in
  let z = mul (logxor z (shift_right_logical z 27)) 0x94D049BB133111EBL in
  logxor z (shift_right_logical z 31)

let create ~seed =
  let sm = ref seed in
  let s0 = splitmix64_next sm in
  let s1 = splitmix64_next sm in
  let s2 = splitmix64_next sm in
  let s3 = splitmix64_next sm in
  (* The all-zero state is a fixed point of xoshiro; SplitMix64 cannot emit
     four zero words in a row, but guard anyway. *)
  if s0 = 0L && s1 = 0L && s2 = 0L && s3 = 0L then
    { s0 = 1L; s1 = 2L; s2 = 3L; s3 = 4L }
  else { s0; s1; s2; s3 }

let of_int seed = create ~seed:(Int64.of_int seed)
let copy t = { s0 = t.s0; s1 = t.s1; s2 = t.s2; s3 = t.s3 }

let rotl x k =
  Int64.logor (Int64.shift_left x k) (Int64.shift_right_logical x (64 - k))

(* xoshiro256++ next step. *)
let bits64 t =
  let open Int64 in
  let result = add (rotl (add t.s0 t.s3) 23) t.s0 in
  let tmp = shift_left t.s1 17 in
  t.s2 <- logxor t.s2 t.s0;
  t.s3 <- logxor t.s3 t.s1;
  t.s1 <- logxor t.s1 t.s2;
  t.s0 <- logxor t.s0 t.s3;
  t.s2 <- logxor t.s2 tmp;
  t.s3 <- rotl t.s3 45;
  result

let split t = create ~seed:(bits64 t)

let int t bound =
  if bound <= 0 then invalid_arg "Rng.int: bound must be positive";
  (* Rejection sampling on the top 62 bits to avoid modulo bias. *)
  let mask = 0x3FFF_FFFF_FFFF_FFFFL in
  let bound64 = Int64.of_int bound in
  let limit = Int64.sub mask (Int64.rem mask bound64) in
  let rec draw () =
    let r = Int64.logand (bits64 t) mask in
    if r > limit then draw () else Int64.to_int (Int64.rem r bound64)
  in
  draw ()

let int_in t ~lo ~hi =
  if hi < lo then invalid_arg "Rng.int_in: hi < lo";
  lo + int t (hi - lo + 1)

let float t =
  (* 53 top bits scaled into [0, 1). *)
  let r = Int64.shift_right_logical (bits64 t) 11 in
  Int64.to_float r *. 0x1.0p-53

let bool t = Int64.logand (bits64 t) 1L = 1L

let shuffle t a =
  for i = Array.length a - 1 downto 1 do
    let j = int t (i + 1) in
    let tmp = a.(i) in
    a.(i) <- a.(j);
    a.(j) <- tmp
  done

let sample t a ~k =
  let n = Array.length a in
  if k < 0 || k > n then invalid_arg "Rng.sample: k out of range";
  let pool = Array.copy a in
  (* Partial Fisher–Yates: after i swaps, pool.(0..i-1) is a uniform sample. *)
  for i = 0 to k - 1 do
    let j = int_in t ~lo:i ~hi:(n - 1) in
    let tmp = pool.(i) in
    pool.(i) <- pool.(j);
    pool.(j) <- tmp
  done;
  Array.sub pool 0 k

let exponential t ~rate =
  if rate <= 0. then invalid_arg "Rng.exponential: rate must be positive";
  (* Inverse transform; 1. -. float t is in (0, 1] so log is finite. *)
  -.log (1. -. float t) /. rate

let pp ppf t =
  Format.fprintf ppf "xoshiro256++{%Lx;%Lx;%Lx;%Lx}" t.s0 t.s1 t.s2 t.s3
