(** Deterministic pseudo-random number generation.

    Every stochastic component of the repository draws its randomness from an
    explicit generator of type {!t}, so that simulations are reproducible
    bit-for-bit given a seed, and multi-run experiments can derive
    statistically independent sub-streams with {!split}.

    The generator is xoshiro256++ (Blackman & Vigna), seeded through
    SplitMix64 as its authors recommend. *)

type t
(** A mutable generator state. *)

val create : seed:int64 -> t
(** [create ~seed] builds a generator from a 64-bit seed. Distinct seeds give
    independent-looking streams; equal seeds give equal streams. *)

val of_int : int -> t
(** [of_int seed] is [create ~seed:(Int64.of_int seed)]. *)

val copy : t -> t
(** [copy t] is a generator with the same state; advancing one does not
    affect the other. *)

val split : t -> t
(** [split t] draws fresh state material from [t] and returns a new generator
    whose stream is independent of the subsequent output of [t]. Used to give
    each run of a multi-run experiment its own stream. *)

val bits64 : t -> int64
(** [bits64 t] is the next raw 64-bit output. *)

val int : t -> int -> int
(** [int t bound] is uniform in [\[0, bound)]. [bound] must be positive;
    rejection sampling removes modulo bias.
    @raise Invalid_argument if [bound <= 0]. *)

val int_in : t -> lo:int -> hi:int -> int
(** [int_in t ~lo ~hi] is uniform in the inclusive range [\[lo, hi\]].
    @raise Invalid_argument if [hi < lo]. *)

val float : t -> float
(** [float t] is uniform in [\[0, 1)], with 53 bits of precision. *)

val bool : t -> bool
(** [bool t] is a fair coin flip. *)

val shuffle : t -> 'a array -> unit
(** [shuffle t a] permutes [a] in place, uniformly (Fisher–Yates). *)

val sample : t -> 'a array -> k:int -> 'a array
(** [sample t a ~k] draws [k] distinct elements of [a] uniformly at random
    (partial Fisher–Yates); the order of the result is random. [a] is not
    modified.
    @raise Invalid_argument if [k < 0] or [k > Array.length a]. *)

val exponential : t -> rate:float -> float
(** [exponential t ~rate] draws from the exponential distribution with the
    given [rate] (mean [1. /. rate]). Used for Poisson arrival processes.
    @raise Invalid_argument if [rate <= 0.]. *)

val pp : Format.formatter -> t -> unit
(** Prints the current internal state, for debugging. *)
