lib/prng/rng.ml: Array Format Int64
